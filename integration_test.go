package smthill

import (
	"testing"

	"smthill/internal/core"
	"smthill/internal/experiment"
	"smthill/internal/metrics"
	"smthill/internal/policy"
	"smthill/internal/resource"
	"smthill/internal/workload"
)

// TestAllWorkloadsRun smoke-tests every Table 3 workload under every
// per-cycle policy for a short run: no panics, and forward progress.
func TestAllWorkloadsRun(t *testing.T) {
	if testing.Short() {
		t.Skip("long smoke test")
	}
	for _, w := range workload.All() {
		for _, pol := range []string{"ICOUNT", "FLUSH", "DCRA"} {
			m := w.NewMachine(policy.ByName(pol))
			m.CycleN(20_000)
			if m.Stats().Committed == 0 {
				t.Errorf("%s under %s committed nothing", w.Name(), pol)
			}
		}
	}
}

// TestEveryWorkloadProgressesPerThread verifies no thread is permanently
// starved under the default fetch policy with partitioning active.
func TestEveryWorkloadProgressesPerThread(t *testing.T) {
	if testing.Short() {
		t.Skip("long smoke test")
	}
	for _, w := range workload.TwoThread() {
		m := w.NewMachine(nil)
		m.Resources().SetShares(resource.EqualShares(w.Threads(), 256))
		m.CycleN(100_000)
		for th := 0; th < w.Threads(); th++ {
			if m.Committed(th) < 500 {
				t.Errorf("%s: thread %d (%s) committed only %d in 100K cycles",
					w.Name(), th, w.Apps[th], m.Committed(th))
			}
		}
	}
}

// TestExperimentDeterminism: the entire stack is deterministic — re-running
// an experiment yields bit-identical scores.
func TestExperimentDeterminism(t *testing.T) {
	cfg := experiment.Default()
	cfg.Epochs = 4
	cfg.WarmupEpochs = 1
	cfg.EpochSize = 8 * 1024
	cfg.SoloCycles = 16 * 1024
	cfg.OffLineStride = 64
	loads := []workload.Workload{workload.ByName("art-gzip")}
	a := experiment.Figure4(cfg, loads)
	b := experiment.Figure4(cfg, loads)
	for tech, v := range a[0].Scores {
		if b[0].Scores[tech] != v {
			t.Fatalf("%s scores differ across runs: %v vs %v", tech, v, b[0].Scores[tech])
		}
	}
}

// TestHillConvergesToSkewedOptimum builds a workload whose optimum is far
// from the equal split — a window-hungry streaming thread against a tiny
// pointer chaser — and checks that hill-climbing walks the anchor toward
// the hungry thread.
func TestHillConvergesToSkewedOptimum(t *testing.T) {
	w := workload.Workload{Apps: []string{"swim", "lucas"}, Group: "test"}
	m := w.NewMachine(nil)
	m.CycleN(2 * core.DefaultEpochSize)
	hill := core.NewHillClimber(2, 256, metrics.AvgIPC)
	r := core.NewRunner(m, hill, metrics.AvgIPC)
	r.Run(60)
	anchor := hill.Anchor()
	if anchor[0] <= 140 {
		t.Fatalf("anchor %v did not move toward the window-hungry thread", anchor)
	}
}

// TestOffLineNeverWorseThanEqualFixed: on the same machine trajectory,
// OFF-LINE's per-epoch winner must score at least what the equal
// partition scores, since the equal partition is in its search space.
func TestOffLineNeverWorseThanEqualFixed(t *testing.T) {
	w := workload.ByName("art-gzip")
	m := w.NewMachine(nil)
	m.CycleN(core.DefaultEpochSize)
	o := core.NewOffLine(m, metrics.AvgIPC, nil)
	o.EpochSize = 16 * 1024
	o.Stride = 8 // fine enough to include 128/128
	for e := 0; e < 3; e++ {
		res := o.RunEpoch()
		equalScore := -1.0
		for _, tr := range res.Trials {
			if tr.Shares[0] == 128 && tr.Shares[1] == 128 {
				equalScore = tr.Score
			}
		}
		if equalScore < 0 {
			t.Fatal("equal partition not in the search space")
		}
		if res.Score < equalScore {
			t.Fatalf("epoch %d: winner %f below equal split %f", e, res.Score, equalScore)
		}
	}
}

// TestSynchronizedBaselinesMatchFreeRunning verifies the Figure 5
// synchronization methodology does not grossly distort the baselines: a
// free-running ICOUNT and a checkpoint-synchronized ICOUNT see similar
// aggregate throughput on a steady workload (the paper verified the
// same).
func TestSynchronizedBaselinesMatchFreeRunning(t *testing.T) {
	cfg := experiment.Default()
	cfg.Epochs = 6
	cfg.WarmupEpochs = 1
	cfg.EpochSize = 16 * 1024
	cfg.SoloCycles = 32 * 1024
	cfg.OffLineStride = 48
	w := workload.ByName("gzip-bzip2") // steady ILP pair

	rows := experiment.Figure5(cfg, w)
	syncMean := 0.0
	for _, r := range rows {
		syncMean += r.Scores["ICOUNT"]
	}
	syncMean /= float64(len(rows))

	m := w.NewMachine(nil)
	m.CycleN(cfg.WarmupEpochs * cfg.EpochSize)
	r := core.NewRunner(m, core.None{Label: "ICOUNT"}, metrics.WeightedIPC)
	r.EpochSize = cfg.EpochSize
	r.SamplePeriod = 0
	r.ReferenceSingles = experiment.Singles(cfg, w)
	freeMean := 0.0
	for _, e := range r.Run(cfg.Epochs) {
		freeMean += e.Score
	}
	freeMean /= float64(cfg.Epochs)

	if syncMean < 0.7*freeMean || syncMean > 1.3*freeMean {
		t.Fatalf("synchronized ICOUNT %.3f vs free-running %.3f", syncMean, freeMean)
	}
}

// TestPartitionSumNeverExceedsTotal drives the full hill-climbing stack
// and asserts the machine-level partition invariant every epoch.
func TestPartitionSumNeverExceedsTotal(t *testing.T) {
	w := workload.ByName("art-mcf-vpr-swim")
	m := w.NewMachine(nil)
	hill := core.NewHillClimber(4, 256, metrics.AvgIPC)
	r := core.NewRunner(m, hill, metrics.AvgIPC)
	r.EpochSize = 8 * 1024
	for e := 0; e < 30; e++ {
		res := r.RunEpoch()
		if res.Shares == nil {
			continue
		}
		if res.Shares.Sum() != 256 {
			t.Fatalf("epoch %d shares %v sum %d", e, res.Shares, res.Shares.Sum())
		}
		total := 0
		for th := 0; th < 4; th++ {
			total += m.Resources().Limit(th, resource.IntRename)
		}
		if total != 256 {
			t.Fatalf("epoch %d rename limits sum to %d", e, total)
		}
	}
}

// TestDefaultConfigsByThreads ensures machines of 1..4 contexts share the
// Table 1 shell and run.
func TestDefaultConfigsByThreads(t *testing.T) {
	apps := []string{"gzip", "bzip2", "eon", "perlbmk"}
	for n := 1; n <= 4; n++ {
		w := workload.Workload{Apps: apps[:n], Group: "test"}
		m := w.NewMachine(nil)
		if m.Config().FetchWidth != 8 {
			t.Fatal("config drifted")
		}
		m.CycleN(10_000)
		if m.Stats().Committed == 0 {
			t.Fatalf("%d-thread machine made no progress", n)
		}
	}
}
