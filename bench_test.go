// Package smthill's top-level benchmarks regenerate every table and
// figure of the paper at a scaled-down size (see DESIGN.md): each
// Benchmark corresponds to one table/figure and reports the paper's
// headline numbers as custom benchmark metrics. cmd/experiments runs the
// same experiments at any scale and prints the full row sets.
//
// The per-workload benchmarks use representative subsets of Table 3 (a
// slice of every group) so the whole suite completes in minutes; pass
// -timeout accordingly when running everything.
package smthill

import (
	"context"
	"runtime"
	"testing"

	"smthill/internal/core"
	"smthill/internal/experiment"
	"smthill/internal/isa"
	"smthill/internal/metrics"
	"smthill/internal/multicore"
	"smthill/internal/obs"
	"smthill/internal/pipeline"
	"smthill/internal/telemetry"
	"smthill/internal/trace"
	"smthill/internal/workload"
)

// benchConfig is the scaled-down experiment size used by the benchmarks.
func benchConfig() experiment.Config {
	cfg := experiment.Default()
	cfg.Epochs = 24
	cfg.OffLineStride = 24
	cfg.RandHillIters = 12
	cfg.SoloCycles = 6 * cfg.EpochSize
	if testing.Short() {
		cfg.Epochs = 6
		cfg.OffLineStride = 64
		cfg.RandHillIters = 6
		cfg.SoloCycles = 2 * cfg.EpochSize
	}
	return cfg
}

// benchLoads2 returns three 2-thread workloads per Table 3 group.
func benchLoads2() []workload.Workload {
	names := []string{
		"gzip-bzip2", "fma3d-mesa", "apsi-eon", // ILP2
		"art-gzip", "mcf-eon", "lucas-crafty", // MIX2
		"art-mcf", "swim-twolf", "mcf-twolf", // MEM2
	}
	if testing.Short() {
		names = names[:3]
	}
	out := make([]workload.Workload, len(names))
	for i, n := range names {
		out[i] = workload.ByName(n)
	}
	return out
}

// benchLoads4 returns two 4-thread workloads per group.
func benchLoads4() []workload.Workload {
	names := []string{
		"apsi-eon-gzip-vortex", "fma3d-mesa-perlbmk-bzip2", // ILP4
		"art-mcf-fma3d-gcc", "mcf-mesa-lucas-gzip", // MIX4
		"art-mcf-swim-twolf", "equake-parser-mcf-lucas", // MEM4
	}
	if testing.Short() {
		names = names[:2]
	}
	out := make([]workload.Workload, len(names))
	for i, n := range names {
		out[i] = workload.ByName(n)
	}
	return out
}

func benchLoadsAll() []workload.Workload {
	return append(benchLoads2(), benchLoads4()...)
}

// BenchmarkTable2 regenerates the application characterisation (Table 2).
func BenchmarkTable2(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		rows := experiment.Table2(cfg)
		mem := 0
		for _, r := range rows {
			if r.Type == "MEM" {
				mem++
			}
		}
		b.ReportMetric(float64(len(rows)), "apps")
		b.ReportMetric(float64(mem), "mem_apps")
	}
}

// BenchmarkFigure2 regenerates the IPC-vs-distribution surface of the
// motivating example (Figure 2).
func BenchmarkFigure2(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		points := experiment.Figure2(cfg, 32)
		peak := experiment.Peak(points)
		worst := peak
		for _, p := range points {
			if p.IPC < worst.IPC {
				worst = p
			}
		}
		b.ReportMetric(peak.IPC, "peak_ipc")
		b.ReportMetric(peak.IPC/worst.IPC, "peak_over_worst")
	}
}

// BenchmarkFigure4 regenerates the limit study (Figure 4): OFF-LINE vs
// ICOUNT/FLUSH/DCRA under weighted IPC.
func BenchmarkFigure4(b *testing.B) {
	cfg := benchConfig()
	loads := benchLoads2()
	for i := 0; i < b.N; i++ {
		rows := experiment.Figure4(cfg, loads)
		b.ReportMetric(100*experiment.Gains(rows, "OFF-LINE", "ICOUNT"), "gain_vs_icount_%")
		b.ReportMetric(100*experiment.Gains(rows, "OFF-LINE", "FLUSH"), "gain_vs_flush_%")
		b.ReportMetric(100*experiment.Gains(rows, "OFF-LINE", "DCRA"), "gain_vs_dcra_%")
	}
}

// BenchmarkFigure5 regenerates the synchronized time-varying comparison
// on art-mcf (Figure 5).
func BenchmarkFigure5(b *testing.B) {
	cfg := benchConfig()
	w := workload.ByName("art-mcf")
	for i := 0; i < b.N; i++ {
		rows := experiment.Figure5(cfg, w)
		wins := experiment.WinFractions(rows)
		b.ReportMetric(100*wins["ICOUNT"], "win_vs_icount_%")
		b.ReportMetric(100*wins["DCRA"], "win_vs_dcra_%")
	}
}

// BenchmarkFigure7 regenerates the hill-width analysis (Figures 6 and 7).
func BenchmarkFigure7(b *testing.B) {
	cfg := benchConfig()
	loads := benchLoads2()
	for i := 0; i < b.N; i++ {
		rows := experiment.HillWidths(cfg, loads)
		// Mean width at the 0.99 and 0.90 levels across workloads.
		var w99, w90 float64
		for _, r := range rows {
			w99 += r.Width[0]
			w90 += r.Width[len(r.Width)-1]
		}
		b.ReportMetric(w99/float64(len(rows)), "mean_width_99_regs")
		b.ReportMetric(w90/float64(len(rows)), "mean_width_90_regs")
	}
}

// BenchmarkFigure9 regenerates the main on-line comparison (Figure 9):
// HILL-WIPC vs ICOUNT/FLUSH/DCRA.
func BenchmarkFigure9(b *testing.B) {
	cfg := benchConfig()
	cfg.Epochs = 40 // hill-climbing needs rounds to converge
	loads := benchLoadsAll()
	for i := 0; i < b.N; i++ {
		rows := experiment.Figure9(cfg, loads)
		b.ReportMetric(100*experiment.Gains(rows, "HILL", "ICOUNT"), "gain_vs_icount_%")
		b.ReportMetric(100*experiment.Gains(rows, "HILL", "FLUSH"), "gain_vs_flush_%")
		b.ReportMetric(100*experiment.Gains(rows, "HILL", "DCRA"), "gain_vs_dcra_%")
	}
}

// BenchmarkFigure10 regenerates the metric matrix (Figure 10).
func BenchmarkFigure10(b *testing.B) {
	cfg := benchConfig()
	loads := benchLoads2()
	for i := 0; i < b.N; i++ {
		cells := experiment.Figure10(cfg, loads)
		b.ReportMetric(100*experiment.MatchedMetricAdvantage(cells), "matched_metric_adv_%")
	}
}

// BenchmarkFigure11 regenerates the comparison against the idealised
// learners (Figure 11).
func BenchmarkFigure11(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		top := experiment.Figure11TwoThread(cfg, benchLoads2())
		bottom := experiment.Figure11FourThread(cfg, benchLoads4())
		b.ReportMetric(100*experiment.FractionOfIdeal(top, "OFF-LINE"), "hill_of_offline_%")
		b.ReportMetric(100*experiment.FractionOfIdeal(bottom, "RAND-HILL"), "hill_of_randhill_%")
	}
}

// BenchmarkFigure12 regenerates a time-varying behaviour trace
// (Figure 12; mcf-eon is the paper's TL example).
func BenchmarkFigure12(b *testing.B) {
	cfg := benchConfig()
	w := workload.ByName("mcf-eon")
	for i := 0; i < b.N; i++ {
		rows := experiment.Figure12(cfg, w)
		dist, frac := experiment.TrackingError(rows, cfg.OffLineStride)
		b.ReportMetric(dist, "mean_regs_from_peak")
		b.ReportMetric(100*frac, "of_epoch_ideal_%")
	}
}

// BenchmarkSection5 regenerates the phase detection/prediction extension
// comparison (Section 5).
func BenchmarkSection5(b *testing.B) {
	cfg := benchConfig()
	loads := benchLoads2()
	for i := 0; i < b.N; i++ {
		rows := experiment.Section5(cfg, loads)
		overall, tl := experiment.Section5Boost(rows)
		b.ReportMetric(100*overall, "boost_overall_%")
		b.ReportMetric(100*tl, "boost_tl_%")
	}
}

// ---------------------------------------------------------------------
// Ablations of the design choices called out in DESIGN.md.

// hillTotalIPC runs HILL-WIPC on w and returns the summed IPC.
func hillTotalIPC(w workload.Workload, epochSize, epochs, delta, overhead, samplePeriod int) float64 {
	m := w.NewMachine(nil)
	m.CycleN(2 * epochSize)
	hill := core.NewHillClimber(w.Threads(), 256, metrics.WeightedIPC)
	hill.Delta = delta
	hill.Overhead = overhead
	r := core.NewRunner(m, hill, metrics.WeightedIPC)
	r.EpochSize = epochSize
	r.SamplePeriod = samplePeriod
	r.Run(epochs)
	total := 0.0
	for _, v := range r.TotalsSince(0) {
		total += v
	}
	return total
}

// BenchmarkAblationEpochSize sweeps the epoch size (Section 3.1.1 found
// 64K cycles consistently good).
func BenchmarkAblationEpochSize(b *testing.B) {
	w := workload.ByName("art-mcf")
	for _, size := range []int{16 * 1024, 32 * 1024, 64 * 1024, 128 * 1024, 256 * 1024} {
		b.Run(sizeName(size), func(b *testing.B) {
			// Hold total simulated cycles constant across epoch sizes.
			epochs := (40 * 64 * 1024) / size
			for i := 0; i < b.N; i++ {
				b.ReportMetric(hillTotalIPC(w, size, epochs, core.DefaultDelta, core.HillOverheadCycles, core.DefaultSamplePeriod), "sum_ipc")
			}
		})
	}
}

func sizeName(n int) string {
	switch {
	case n >= 1<<20:
		return "1M"
	default:
		return map[int]string{16384: "16K", 32768: "32K", 65536: "64K", 131072: "128K", 262144: "256K"}[n]
	}
}

// BenchmarkAblationDelta sweeps the hill-climbing step size (Figure 8
// uses Delta = 4).
func BenchmarkAblationDelta(b *testing.B) {
	w := workload.ByName("art-mcf")
	for _, delta := range []int{1, 2, 4, 8, 16} {
		b.Run(map[int]string{1: "d1", 2: "d2", 4: "d4", 8: "d8", 16: "d16"}[delta], func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				b.ReportMetric(hillTotalIPC(w, 64*1024, 40, delta, core.HillOverheadCycles, core.DefaultSamplePeriod), "sum_ipc")
			}
		})
	}
}

// BenchmarkAblationStallCost sweeps the software cost charged per
// hill-climbing invocation (Section 4.2 charges 200 cycles).
func BenchmarkAblationStallCost(b *testing.B) {
	w := workload.ByName("art-mcf")
	for _, cost := range []int{0, 200, 2000} {
		b.Run(map[int]string{0: "c0", 200: "c200", 2000: "c2000"}[cost], func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				b.ReportMetric(hillTotalIPC(w, 64*1024, 40, core.DefaultDelta, cost, core.DefaultSamplePeriod), "sum_ipc")
			}
		})
	}
}

// BenchmarkAblationSamplePeriod sweeps the SingleIPC sampling period
// (Section 4.2 samples every 40 epochs).
func BenchmarkAblationSamplePeriod(b *testing.B) {
	w := workload.ByName("art-mcf")
	for _, period := range []int{10, 40, 0} {
		b.Run(map[int]string{10: "p10", 40: "p40", 0: "off"}[period], func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				b.ReportMetric(hillTotalIPC(w, 64*1024, 40, core.DefaultDelta, core.HillOverheadCycles, period), "sum_ipc")
			}
		})
	}
}

// BenchmarkAblationProportional compares the paper's proportional
// IQ/ROB partitioning against partitioning the rename registers alone
// (Section 3.1.2's simplification).
func BenchmarkAblationProportional(b *testing.B) {
	w := workload.ByName("art-mcf")
	run := func(renameOnly bool) float64 {
		m := w.NewMachine(nil)
		m.CycleN(2 * 64 * 1024)
		hill := core.NewHillClimber(w.Threads(), 256, metrics.WeightedIPC)
		r := core.NewRunner(m, hill, metrics.WeightedIPC)
		r.RenameOnly = renameOnly
		r.Run(40)
		total := 0.0
		for _, v := range r.TotalsSince(0) {
			total += v
		}
		return total
	}
	for _, mode := range []string{"proportional", "rename-only"} {
		b.Run(mode, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				b.ReportMetric(run(mode == "rename-only"), "sum_ipc")
			}
		})
	}
}

// benchCycleLoop is the shared cycle-loop benchmark body: a 2-thread
// art-gzip machine, optionally with a telemetry recorder attached,
// advanced b.N cycles. It reports allocations (the steady-state loop
// must stay at 0 allocs/op) and cycles/sec — the stable unit tracked by
// the BENCH_PR<N>.json trajectory (`make bench-json`).
func benchCycleLoop(b *testing.B, record bool) {
	w := workload.ByName("art-gzip")
	m := w.NewMachine(nil)
	if record {
		m.SetRecorder(telemetry.NewRecorder(m.Threads()))
	}
	b.ReportAllocs()
	b.ResetTimer()
	m.CycleN(b.N)
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "cycles/sec")
}

// BenchmarkSimulatorSpeed measures raw simulation throughput
// (one op = one simulated cycle) for a 2-thread machine.
func BenchmarkSimulatorSpeed(b *testing.B) {
	benchCycleLoop(b, false)
}

// BenchmarkMachineTelemetryOff is the telemetry overhead guard-rail: the
// identical loop to BenchmarkSimulatorSpeed with no recorder attached.
// The instrumentation contract (internal/telemetry package doc) is that a
// nil recorder costs the cycle loop one predictable branch, so this
// benchmark's ns/op must stay within 2% of BenchmarkSimulatorSpeed's.
// `make ci` runs it as a smoke test; the bench-gate target tracks both
// across PRs.
func BenchmarkMachineTelemetryOff(b *testing.B) {
	benchCycleLoop(b, false)
}

// BenchmarkMachineTelemetryOn measures the same loop with a recorder
// attached — the full price of stall attribution and occupancy
// histograms when tracing is requested.
func BenchmarkMachineTelemetryOn(b *testing.B) {
	benchCycleLoop(b, true)
}

// BenchmarkMachineTracingOff pins the PR 7 contract: with no tracer in
// the context, the obs hooks must stay completely inert — nil spans, a
// pass-through epoch sink, and the same zero-alloc cycle loop as
// BenchmarkMachineTelemetryOff.
func BenchmarkMachineTracingOff(b *testing.B) {
	ctx := context.Background()
	if _, span := obs.Start(ctx, "bench", obs.KindInternal); span != nil {
		b.Fatal("tracing unexpectedly enabled without a tracer in context")
	}
	if sink := obs.EpochSpans(ctx, nil); sink != nil {
		b.Fatal("EpochSpans must pass the sink through unchanged with tracing off")
	}
	benchCycleLoop(b, false)
}

// BenchmarkMultiCoreCyclesPerSec measures lock-step multi-core
// throughput (one op = one simulated cycle across all cores): a 2-core
// System — four threads behind the shared L3 — advanced b.N cycles.
// Tracked by the BENCH_PR<N>.json trajectory alongside the single-core
// cycle loops so L3/arbitration costs can't silently regress.
func BenchmarkMultiCoreCyclesPerSec(b *testing.B) {
	w, err := workload.Parse("art,mcf,fma3d,gcc")
	if err != nil {
		b.Fatal(err)
	}
	sys := multicore.New(multicore.DefaultConfig(2), w.Streams(), nil)
	b.ReportAllocs()
	b.ResetTimer()
	sys.CycleN(b.N)
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "cycles/sec")
}

// BenchmarkMachineSingleCoreUnchanged pins the PR 9 contract: adding
// the multicore package must leave the bare single-core Machine loop
// untouched — same zero-alloc steady state, ns/op within the
// bench-gate tolerance of BenchmarkSimulatorSpeed. The multicore
// integration points (stream address bases, L2-miss completion hooks)
// are all nil/no-op on a Machine built the classic way.
func BenchmarkMachineSingleCoreUnchanged(b *testing.B) {
	benchCycleLoop(b, false)
}

// batchBenchRound is the trial-loop shape both batch benchmarks time: a
// refill of every member from the source checkpoint followed by one
// epoch of lock-step execution — exactly what one OFF-LINE/steepest
// wave costs per candidate set.
const batchBenchK = 8
const batchBenchEpoch = 4096

// BenchmarkMachineBatchCyclesPerSec measures batched lock-step
// throughput: a K=8 MachineBatch repeatedly refilled from an art-gzip
// checkpoint and advanced an epoch per round. One op is one aggregate
// member-cycle, so ns/op compares directly with BenchmarkSimulatorSpeed
// and the cycles/sec metric is the aggregate across members
// (benchjson's BatchCyclesPerSec). The steady-state round — pooled
// refill, shared-window fill and trim, lock-step chunks — must not
// allocate.
func BenchmarkMachineBatchCyclesPerSec(b *testing.B) {
	w := workload.ByName("art-gzip")
	src := w.NewMachine(nil)
	src.CycleN(20_000)
	batch := pipeline.BatchFrom(src, batchBenchK)
	round := func() {
		batch.Refill(nil)
		batch.CycleAllN(batchBenchEpoch)
	}
	round() // reach every buffer's high-water mark before timing
	round()
	b.ReportAllocs()
	b.ResetTimer()
	done := 0
	for done < b.N {
		round()
		done += batchBenchK * batchBenchEpoch
	}
	b.ReportMetric(float64(done)/b.Elapsed().Seconds(), "cycles/sec")
}

// BenchmarkMachineBatchSequentialBaseline times the identical work
// without the batch: eight independent machines, each CloneInto-refilled
// from the same checkpoint and run the same epoch one after another —
// the pooled pattern the trial loops used before batching. The ratio of
// BenchmarkMachineBatchCyclesPerSec's aggregate cycles/sec to this
// benchmark's is the batching speedup on this host.
func BenchmarkMachineBatchSequentialBaseline(b *testing.B) {
	w := workload.ByName("art-gzip")
	src := w.NewMachine(nil)
	src.CycleN(20_000)
	members := make([]*pipeline.Machine, batchBenchK)
	round := func() {
		for i := range members {
			members[i] = src.CloneInto(members[i])
			members[i].CycleN(batchBenchEpoch)
		}
	}
	round()
	round()
	b.ReportAllocs()
	b.ResetTimer()
	done := 0
	for done < b.N {
		round()
		done += batchBenchK * batchBenchEpoch
	}
	b.ReportMetric(float64(done)/b.Elapsed().Seconds(), "cycles/sec")
}

// BenchmarkMachineBatchParallel is the same round shape with the batch's
// persistent workers spread across the host's CPUs. Skipped on a
// single-CPU host, where lock-step parallelism has nothing to run on —
// the serial benchmark above is the tracked metric precisely because it
// is host-shape independent.
func BenchmarkMachineBatchParallel(b *testing.B) {
	if runtime.GOMAXPROCS(0) < 2 {
		b.Skip("single-CPU host: parallel batch mode has no extra cores to use")
	}
	w := workload.ByName("art-gzip")
	src := w.NewMachine(nil)
	src.CycleN(20_000)
	batch := pipeline.BatchFrom(src, batchBenchK)
	batch.SetParallel(runtime.GOMAXPROCS(0))
	defer batch.Close()
	round := func() {
		batch.Refill(nil)
		batch.CycleAllN(batchBenchEpoch)
	}
	round()
	round()
	b.ResetTimer()
	done := 0
	for done < b.N {
		round()
		done += batchBenchK * batchBenchEpoch
	}
	b.ReportMetric(float64(done)/b.Elapsed().Seconds(), "cycles/sec")
}

// BenchmarkCheckpoint measures the cost of the checkpoint primitive as
// the probe-heavy learners use it: the first checkpoint allocates via
// Clone, every subsequent one reuses that machine's memory via
// CloneInto — the pooled pattern OFF-LINE and RAND-HILL run per trial.
func BenchmarkCheckpoint(b *testing.B) {
	w := workload.ByName("art-mcf")
	m := w.NewMachine(nil)
	m.CycleN(20_000)
	b.ReportAllocs()
	b.ResetTimer()
	var dst *pipeline.Machine
	for i := 0; i < b.N; i++ {
		dst = m.CloneInto(dst)
	}
	_ = dst
}

// BenchmarkTraceGen measures synthetic instruction generation throughput.
func BenchmarkTraceGen(b *testing.B) {
	g := trace.New(workload.Get("gcc").Profile)
	var in isa.Inst
	for i := 0; i < b.N; i++ {
		g.Next(&in)
	}
}
