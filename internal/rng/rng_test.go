package rng

import (
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a := New(42)
	b := New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("sequence diverged at step %d", i)
		}
	}
}

func TestSeedsDiffer(t *testing.T) {
	a := New(1)
	b := New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("seeds 1 and 2 produced %d/100 identical outputs", same)
	}
}

func TestCopyReplays(t *testing.T) {
	a := New(7)
	for i := 0; i < 17; i++ {
		a.Uint64()
	}
	b := a // value copy is a checkpoint
	var fromA, fromB [64]uint64
	for i := range fromA {
		fromA[i] = a.Uint64()
	}
	for i := range fromB {
		fromB[i] = b.Uint64()
	}
	if fromA != fromB {
		t.Fatal("copied generator did not replay the original sequence")
	}
}

func TestIntnRange(t *testing.T) {
	r := New(3)
	for _, n := range []int{1, 2, 7, 100, 1 << 20} {
		for i := 0; i < 200; i++ {
			v := r.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	r := New(1)
	r.Intn(0)
}

func TestFloat64Range(t *testing.T) {
	if err := quick.Check(func(seed uint64) bool {
		r := New(seed)
		for i := 0; i < 50; i++ {
			f := r.Float64()
			if f < 0 || f >= 1 {
				return false
			}
		}
		return true
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestFloat64Mean(t *testing.T) {
	r := New(9)
	const n = 100000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	mean := sum / n
	if mean < 0.49 || mean > 0.51 {
		t.Fatalf("mean of %d uniform draws = %f, want ~0.5", n, mean)
	}
}

func TestBoolProbability(t *testing.T) {
	r := New(11)
	const n = 100000
	hits := 0
	for i := 0; i < n; i++ {
		if r.Bool(0.25) {
			hits++
		}
	}
	frac := float64(hits) / n
	if frac < 0.23 || frac > 0.27 {
		t.Fatalf("Bool(0.25) hit rate = %f", frac)
	}
}

func TestGeometricMean(t *testing.T) {
	r := New(13)
	for _, m := range []float64{1, 2, 5, 20} {
		const n = 50000
		sum := 0
		for i := 0; i < n; i++ {
			sum += r.Geometric(m)
		}
		mean := float64(sum) / n
		if m == 1 {
			if mean != 1 {
				t.Fatalf("Geometric(1) mean = %f, want exactly 1", mean)
			}
			continue
		}
		if mean < 0.85*m || mean > 1.15*m {
			t.Fatalf("Geometric(%f) mean = %f", m, mean)
		}
	}
}

func TestGeometricBounded(t *testing.T) {
	r := New(17)
	for i := 0; i < 10000; i++ {
		if g := r.Geometric(4); g > 64 {
			t.Fatalf("Geometric(4) = %d exceeds 16*m bound", g)
		}
	}
}

func TestZeroStateGuard(t *testing.T) {
	// Whatever the seed, the internal state must be nonzero so the
	// generator does not get stuck emitting a constant.
	for seed := uint64(0); seed < 64; seed++ {
		r := New(seed)
		a, b := r.Uint64(), r.Uint64()
		if a == 0 && b == 0 {
			t.Fatalf("seed %d produced a stuck generator", seed)
		}
	}
}
