// Package rng provides a small, fast, deterministic pseudo-random number
// generator whose entire state is a plain value.
//
// The simulator checkpoints machine state by structurally copying it
// (see pipeline.Machine.Clone), so every stateful component must be
// copyable by assignment. math/rand's Source hides its state behind a
// pointer, which makes checkpointing awkward; this package instead
// implements xoshiro256** seeded via splitmix64. Copying an Rng value
// yields an independent generator that replays the identical sequence.
package rng

// Rng is a xoshiro256** generator. The zero value is not a valid
// generator; obtain one with New. Copying an Rng copies its state.
type Rng struct {
	s0, s1, s2, s3 uint64
}

// splitmix64 advances *x and returns the next splitmix64 output.
// It is used only to expand a seed into the xoshiro state.
func splitmix64(x *uint64) uint64 {
	*x += 0x9e3779b97f4a7c15
	z := *x
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// New returns a generator seeded from seed. Two generators built from the
// same seed produce identical sequences.
func New(seed uint64) Rng {
	var r Rng
	r.Seed(seed)
	return r
}

// Seed resets the generator to the state derived from seed.
func (r *Rng) Seed(seed uint64) {
	x := seed
	r.s0 = splitmix64(&x)
	r.s1 = splitmix64(&x)
	r.s2 = splitmix64(&x)
	r.s3 = splitmix64(&x)
	// xoshiro requires a nonzero state; splitmix64 of any seed yields one
	// with overwhelming probability, but guard against the pathological case.
	if r.s0|r.s1|r.s2|r.s3 == 0 {
		r.s0 = 0x9e3779b97f4a7c15
	}
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next value in the sequence.
func (r *Rng) Uint64() uint64 {
	result := rotl(r.s1*5, 7) * 9
	t := r.s1 << 17
	r.s2 ^= r.s0
	r.s3 ^= r.s1
	r.s1 ^= r.s2
	r.s0 ^= r.s3
	r.s2 ^= t
	r.s3 = rotl(r.s3, 45)
	return result
}

// Intn returns a value uniformly distributed in [0, n). It panics if n <= 0.
func (r *Rng) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn called with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Float64 returns a value uniformly distributed in [0, 1).
func (r *Rng) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Bool returns true with probability p.
func (r *Rng) Bool(p float64) bool {
	return r.Float64() < p
}

// Geometric returns a sample from a geometric distribution with mean m
// (m >= 1): the number of Bernoulli trials with success probability 1/m
// up to and including the first success. It is used to draw burst lengths
// and gap lengths in the synthetic application models.
func (r *Rng) Geometric(m float64) int {
	if m <= 1 {
		return 1
	}
	p := 1 / m
	n := 1
	for !r.Bool(p) && n < int(16*m) {
		n++
	}
	return n
}
