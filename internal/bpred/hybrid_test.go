package bpred

import "testing"

// TestMetaChooserPrefersGshare: a history-correlated branch that bimodal
// cannot learn (50/50 bias, perfectly history-determined) must migrate to
// the gshare component via the meta chooser.
func TestMetaChooserPrefersGshare(t *testing.T) {
	p := New(Default(1))
	pc := uint64(0x400700)
	// Outcome = parity of the last outcome: strictly alternating.
	// Bimodal saturates mid-scale (50% taken) while gshare keys off the
	// history register and becomes perfect.
	taken := false
	miss := 0
	const n = 4000
	for i := 0; i < n; i++ {
		if p.Update(0, pc, taken) {
			miss++
		}
		taken = !taken
	}
	if rate := float64(miss) / n; rate > 0.05 {
		t.Fatalf("alternating branch mispredict rate %.3f; meta chooser failed", rate)
	}
}

// TestBTBSeparatesAliases: branches in different sets never collide;
// same-set different-tag branches coexist up to associativity.
func TestBTBSeparatesAliases(t *testing.T) {
	cfg := Default(1)
	p := New(cfg)
	pcs := []uint64{0x1000, 0x2000, 0x3000, 0x4000}
	for i, pc := range pcs {
		p.BTBUpdate(pc, uint64(0x9000+i))
	}
	for i, pc := range pcs {
		tgt, ok := p.BTBLookup(pc)
		if !ok || tgt != uint64(0x9000+i) {
			t.Fatalf("pc %#x -> (%#x, %v)", pc, tgt, ok)
		}
	}
}

// TestHistoryLengthMatters: a pattern with period longer than the
// effective history cannot be learned perfectly, showing the predictor
// does not cheat by consulting the oracle outcome.
func TestHistoryLengthMatters(t *testing.T) {
	p := New(Default(1))
	pc := uint64(0x400900)
	// Period-97 pattern with a single not-taken per period defeats
	// neither component badly — but a truly random sequence must stay
	// hard. Verified elsewhere; here check the period-97 one is learned
	// decently by the loop-style hysteresis (mispredict ~1/97).
	miss := 0
	const n = 97 * 60
	for i := 0; i < n; i++ {
		taken := i%97 != 96
		if p.Update(0, pc, taken) {
			miss++
		}
	}
	if rate := float64(miss) / n; rate > 0.05 {
		t.Fatalf("loop-pattern mispredict rate %.3f", rate)
	}
}
