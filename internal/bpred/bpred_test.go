package bpred

import (
	"testing"

	"smthill/internal/rng"
)

func TestLearnsAlwaysTaken(t *testing.T) {
	p := New(Default(1))
	pc := uint64(0x400100)
	for i := 0; i < 16; i++ {
		p.Update(0, pc, true)
	}
	if !p.Predict(0, pc) {
		t.Fatal("did not learn an always-taken branch")
	}
}

func TestLearnsAlwaysNotTaken(t *testing.T) {
	p := New(Default(1))
	pc := uint64(0x400200)
	for i := 0; i < 16; i++ {
		p.Update(0, pc, false)
	}
	if p.Predict(0, pc) {
		t.Fatal("did not learn an always-not-taken branch")
	}
}

func TestLearnsPeriodicPattern(t *testing.T) {
	// gshare should learn a short repeating pattern almost perfectly;
	// the hybrid must therefore do so too.
	p := New(Default(1))
	pc := uint64(0x400300)
	pattern := []bool{true, true, false, true, false}
	miss := 0
	const n = 5000
	for i := 0; i < n; i++ {
		taken := pattern[i%len(pattern)]
		if p.Update(0, pc, taken) {
			miss++
		}
	}
	if rate := float64(miss) / n; rate > 0.05 {
		t.Fatalf("periodic pattern mispredict rate %.3f", rate)
	}
}

func TestRandomBranchesHardToPredict(t *testing.T) {
	p := New(Default(1))
	r := rng.New(5)
	pc := uint64(0x400400)
	miss := 0
	const n = 20000
	for i := 0; i < n; i++ {
		if p.Update(0, pc, r.Bool(0.5)) {
			miss++
		}
	}
	rate := float64(miss) / n
	if rate < 0.3 {
		t.Fatalf("random outcomes predicted with rate %.3f misses; predictor is cheating", rate)
	}
}

func TestContextsHaveIndependentHistory(t *testing.T) {
	p := New(Default(2))
	// Context 1's updates must not corrupt context 0's history-based
	// prediction of a learned pattern.
	r := rng.New(7)
	pcA, pcB := uint64(0x400500), uint64(0x500500)
	pattern := []bool{true, false, false, true}
	missA := 0
	const n = 8000
	for i := 0; i < n; i++ {
		if p.Update(0, pcA, pattern[i%len(pattern)]) {
			missA++
		}
		p.Update(1, pcB, r.Bool(0.5))
	}
	if rate := float64(missA) / n; rate > 0.15 {
		t.Fatalf("context 0 pattern mispredict rate %.3f with noisy context 1", rate)
	}
}

func TestBTBHitAfterUpdate(t *testing.T) {
	p := New(Default(1))
	p.BTBUpdate(0x400100, 0x400800)
	target, ok := p.BTBLookup(0x400100)
	if !ok || target != 0x400800 {
		t.Fatalf("BTB lookup = (%#x, %v)", target, ok)
	}
}

func TestBTBMissOnUnknown(t *testing.T) {
	p := New(Default(1))
	if _, ok := p.BTBLookup(0x999999); ok {
		t.Fatal("BTB hit on never-installed branch")
	}
}

func TestBTBEvictsLRU(t *testing.T) {
	cfg := Default(1)
	cfg.BTBSets = 1
	cfg.BTBWays = 2
	p := New(cfg)
	p.BTBUpdate(4, 100)
	p.BTBUpdate(8, 200)
	p.BTBLookup(4) // touch 4 so 8 is LRU
	p.BTBUpdate(12, 300)
	if _, ok := p.BTBLookup(8); ok {
		t.Fatal("LRU entry was not evicted")
	}
	if _, ok := p.BTBLookup(4); !ok {
		t.Fatal("MRU entry was evicted")
	}
	if tg, ok := p.BTBLookup(12); !ok || tg != 300 {
		t.Fatal("new entry missing")
	}
}

func TestRASLIFO(t *testing.T) {
	p := New(Default(2))
	p.Push(0, 100)
	p.Push(0, 200)
	p.Push(1, 999)
	if got := p.Pop(0); got != 200 {
		t.Fatalf("Pop = %d, want 200", got)
	}
	if got := p.Pop(0); got != 100 {
		t.Fatalf("Pop = %d, want 100", got)
	}
	if got := p.Pop(1); got != 999 {
		t.Fatalf("context 1 Pop = %d, want 999", got)
	}
}

func TestCloneIndependence(t *testing.T) {
	p := New(Default(2))
	pc := uint64(0x400100)
	for i := 0; i < 100; i++ {
		p.Update(0, pc, i%3 != 0)
	}
	p.BTBUpdate(pc, 0x400900)
	p.Push(0, 0x1234)

	c := p.Clone()
	// Diverge the original.
	for i := 0; i < 100; i++ {
		p.Update(0, pc, false)
	}
	p.BTBUpdate(pc, 0xdead)
	p.Pop(0)

	// Clone must retain the checkpointed behaviour.
	if got := c.Pop(0); got != 0x1234 {
		t.Fatalf("clone RAS Pop = %#x", got)
	}
	if tg, ok := c.BTBLookup(pc); !ok || tg != 0x400900 {
		t.Fatalf("clone BTB = (%#x, %v)", tg, ok)
	}
}

func TestCloneReplaysIdentically(t *testing.T) {
	mk := func() *Predictor { return New(Default(1)) }
	warm := func(p *Predictor, r *rng.Rng, n int) {
		for i := 0; i < n; i++ {
			pc := uint64(0x400000 + 4*(r.Intn(512)))
			p.Update(0, pc, r.Bool(0.6))
		}
	}
	p := mk()
	r := rng.New(3)
	warm(p, &r, 5000)
	c := p.Clone()
	r2 := r // replay same stimulus
	missP, missC := 0, 0
	for i := 0; i < 5000; i++ {
		pc := uint64(0x400000 + 4*(r.Intn(512)))
		if p.Update(0, pc, r.Bool(0.6)) {
			missP++
		}
	}
	for i := 0; i < 5000; i++ {
		pc := uint64(0x400000 + 4*(r2.Intn(512)))
		if c.Update(0, pc, r2.Bool(0.6)) {
			missC++
		}
	}
	if missP != missC {
		t.Fatalf("clone diverged: %d vs %d mispredicts", missP, missC)
	}
}

func TestMispredictRate(t *testing.T) {
	p := New(Default(1))
	if p.MispredictRate() != 0 {
		t.Fatal("rate nonzero before any update")
	}
	for i := 0; i < 1000; i++ {
		p.Update(0, 0x400100, true)
	}
	if r := p.MispredictRate(); r < 0 || r > 0.1 {
		t.Fatalf("always-taken rate = %f", r)
	}
}
