// Package bpred implements the branch predictor of the paper's SMT model
// (Table 1): a hybrid predictor with an 8192-entry gshare component, a
// 2048-entry bimodal component, an 8192-entry meta chooser, a 2048-entry
// 4-way set-associative BTB, and a 64-entry return address stack.
//
// In an SMT processor the predictor tables are shared across hardware
// contexts, but each context keeps its own global history register and
// return address stack; this package follows that organisation.
//
// All state lives in plain slices so a Predictor can be deep-copied for
// machine checkpointing (Clone).
package bpred

// Config sizes the predictor components. The zero value is invalid; use
// Default for the paper's Table 1 configuration.
type Config struct {
	GshareEntries  int // pattern history table entries (power of two)
	BimodalEntries int // bimodal table entries (power of two)
	MetaEntries    int // meta chooser entries (power of two)
	BTBSets        int // BTB sets
	BTBWays        int // BTB associativity
	RASEntries     int // return address stack depth per context
	Contexts       int // hardware thread contexts
}

// Default returns the Table 1 configuration for the given number of
// hardware contexts.
func Default(contexts int) Config {
	return Config{
		GshareEntries:  8192,
		BimodalEntries: 2048,
		MetaEntries:    8192,
		BTBSets:        2048 / 4,
		BTBWays:        4,
		RASEntries:     64,
		Contexts:       contexts,
	}
}

type btbEntry struct {
	tag    uint64
	target uint64
	lru    uint32
	valid  bool
}

// Predictor is the hybrid gshare/bimodal predictor with BTB and per-context
// RAS and history.
type Predictor struct {
	cfg     Config
	gshare  []uint8 // 2-bit counters
	bimodal []uint8
	meta    []uint8 // 2-bit chooser: >=2 selects gshare
	btb     []btbEntry
	history []uint64 // per-context global history
	ras     [][]uint64
	rasTop  []int
	lruTick uint32

	// Statistics (monotonic; survive Clone).
	Lookups     uint64
	Mispredicts uint64
}

// New returns a predictor with all counters initialised to weakly taken.
func New(cfg Config) *Predictor {
	p := &Predictor{
		cfg:     cfg,
		gshare:  make([]uint8, cfg.GshareEntries),
		bimodal: make([]uint8, cfg.BimodalEntries),
		meta:    make([]uint8, cfg.MetaEntries),
		btb:     make([]btbEntry, cfg.BTBSets*cfg.BTBWays),
		history: make([]uint64, cfg.Contexts),
		ras:     make([][]uint64, cfg.Contexts),
		rasTop:  make([]int, cfg.Contexts),
	}
	for i := range p.gshare {
		p.gshare[i] = 2
	}
	for i := range p.bimodal {
		p.bimodal[i] = 2
	}
	for i := range p.meta {
		p.meta[i] = 2
	}
	for i := range p.ras {
		p.ras[i] = make([]uint64, cfg.RASEntries)
	}
	return p
}

// Clone returns a deep copy for checkpointing.
func (p *Predictor) Clone() *Predictor {
	c := *p
	c.gshare = append([]uint8(nil), p.gshare...)
	c.bimodal = append([]uint8(nil), p.bimodal...)
	c.meta = append([]uint8(nil), p.meta...)
	c.btb = append([]btbEntry(nil), p.btb...)
	c.history = append([]uint64(nil), p.history...)
	c.rasTop = append([]int(nil), p.rasTop...)
	c.ras = make([][]uint64, len(p.ras))
	for i := range p.ras {
		c.ras[i] = append([]uint64(nil), p.ras[i]...)
	}
	return &c
}

// CloneInto copies p's state into dst, reusing dst's tables, and returns
// dst. A nil or differently-shaped dst falls back to an allocating Clone.
func (p *Predictor) CloneInto(dst *Predictor) *Predictor {
	if dst == nil || dst == p ||
		len(dst.gshare) != len(p.gshare) || len(dst.bimodal) != len(p.bimodal) ||
		len(dst.meta) != len(p.meta) || len(dst.btb) != len(p.btb) ||
		len(dst.history) != len(p.history) || len(dst.ras) != len(p.ras) {
		return p.Clone()
	}
	gshare, bimodal, meta, btb, history, rasTop, ras := dst.gshare, dst.bimodal, dst.meta, dst.btb, dst.history, dst.rasTop, dst.ras
	*dst = *p
	dst.gshare = gshare
	dst.bimodal = bimodal
	dst.meta = meta
	dst.btb = btb
	dst.history = history
	dst.rasTop = append(rasTop[:0], p.rasTop...)
	dst.ras = ras
	copy(dst.gshare, p.gshare)
	copy(dst.bimodal, p.bimodal)
	copy(dst.meta, p.meta)
	copy(dst.btb, p.btb)
	copy(dst.history, p.history)
	for i := range p.ras {
		dst.ras[i] = append(dst.ras[i][:0], p.ras[i]...)
	}
	return dst
}

func (p *Predictor) gshareIndex(ctx int, pc uint64) int {
	return int((pc>>2)^p.history[ctx]) & (p.cfg.GshareEntries - 1)
}

func (p *Predictor) bimodalIndex(pc uint64) int {
	return int(pc>>2) & (p.cfg.BimodalEntries - 1)
}

func (p *Predictor) metaIndex(pc uint64) int {
	return int(pc>>2) & (p.cfg.MetaEntries - 1)
}

// Predict returns the predicted direction for a conditional branch at pc
// executed by hardware context ctx. It does not update any state.
func (p *Predictor) Predict(ctx int, pc uint64) bool {
	g := p.gshare[p.gshareIndex(ctx, pc)] >= 2
	b := p.bimodal[p.bimodalIndex(pc)] >= 2
	if p.meta[p.metaIndex(pc)] >= 2 {
		return g
	}
	return b
}

func bump(c *uint8, taken bool) {
	if taken {
		if *c < 3 {
			*c++
		}
	} else if *c > 0 {
		*c--
	}
}

// Update trains the predictor with the resolved outcome of a conditional
// branch and reports whether the pre-update prediction was wrong.
// The caller passes the same (ctx, pc) it predicted with; Update also
// advances the context's global history.
func (p *Predictor) Update(ctx int, pc uint64, taken bool) (mispredicted bool) {
	gi := p.gshareIndex(ctx, pc)
	bi := p.bimodalIndex(pc)
	mi := p.metaIndex(pc)
	g := p.gshare[gi] >= 2
	b := p.bimodal[bi] >= 2
	pred := b
	if p.meta[mi] >= 2 {
		pred = g
	}
	mispredicted = pred != taken

	// Train the chooser toward whichever component was right (only when
	// they disagree).
	if g != b {
		bump(&p.meta[mi], g == taken)
	}
	bump(&p.gshare[gi], taken)
	bump(&p.bimodal[bi], taken)
	p.history[ctx] = (p.history[ctx] << 1) | boolBit(taken)

	p.Lookups++
	if mispredicted {
		p.Mispredicts++
	}
	return mispredicted
}

func boolBit(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}

// BTBLookup returns the predicted target for a taken branch at pc, or
// ok=false on a BTB miss.
func (p *Predictor) BTBLookup(pc uint64) (target uint64, ok bool) {
	set := int(pc>>2) % p.cfg.BTBSets
	base := set * p.cfg.BTBWays
	for i := 0; i < p.cfg.BTBWays; i++ {
		e := &p.btb[base+i]
		if e.valid && e.tag == pc {
			p.lruTick++
			e.lru = p.lruTick
			return e.target, true
		}
	}
	return 0, false
}

// BTBUpdate installs or refreshes the target for the branch at pc,
// evicting the least recently used way on a conflict.
func (p *Predictor) BTBUpdate(pc, target uint64) {
	set := int(pc>>2) % p.cfg.BTBSets
	base := set * p.cfg.BTBWays
	victim := base
	for i := 0; i < p.cfg.BTBWays; i++ {
		e := &p.btb[base+i]
		if e.valid && e.tag == pc {
			victim = base + i
			break
		}
		if !e.valid {
			victim = base + i
			break
		}
		if e.lru < p.btb[victim].lru {
			victim = base + i
		}
	}
	p.lruTick++
	p.btb[victim] = btbEntry{tag: pc, target: target, lru: p.lruTick, valid: true}
}

// Push records a call's return address on context ctx's RAS.
func (p *Predictor) Push(ctx int, ret uint64) {
	top := &p.rasTop[ctx]
	p.ras[ctx][*top] = ret
	*top = (*top + 1) % p.cfg.RASEntries
}

// Pop predicts a return target from context ctx's RAS.
func (p *Predictor) Pop(ctx int) uint64 {
	top := &p.rasTop[ctx]
	*top = (*top - 1 + p.cfg.RASEntries) % p.cfg.RASEntries
	return p.ras[ctx][*top]
}

// MispredictRate returns the fraction of updated branches that were
// mispredicted, or 0 before any update.
func (p *Predictor) MispredictRate() float64 {
	if p.Lookups == 0 {
		return 0
	}
	return float64(p.Mispredicts) / float64(p.Lookups)
}
