package pipeline

import (
	"sort"

	"smthill/internal/isa"
	"smthill/internal/resource"
)

// Cycle advances the machine by one cycle: commit, writeback, issue,
// dispatch, fetch, then the attached policy's per-cycle hook. With a
// telemetry recorder attached, the cycle's stall attribution is recorded
// last, after all stages have settled.
//
// The steady-state loop is allocation-free: every slice it touches
// (ROB, pending buffers, ready queue, completion ring, slab free list)
// reaches a stable capacity and is recycled in place. The smtlint
// hotalloc rule guards that contract statically; the AllocsPerRun test
// in alloc_test.go guards it dynamically.
func (m *Machine) Cycle() {
	stalled := m.now < m.stallUntil
	m.commit(stalled)
	m.writeback()
	if !stalled {
		m.issue()
		m.dispatch()
		m.fetch()
		m.policy.Cycle(m)
	}
	if m.rec != nil {
		m.record(stalled)
	}
	m.now++
	m.cycles++
	if m.inv != nil {
		m.checkCycle()
	}
}

// CycleN advances the machine by n cycles.
func (m *Machine) CycleN(n int) {
	for i := 0; i < n; i++ {
		m.Cycle()
	}
}

// Done reports whether every stream is exhausted and the pipeline has
// drained. Machines running unbounded synthetic streams never finish.
func (m *Machine) Done() bool {
	for i := range m.threads {
		t := &m.threads[i]
		if !t.exhausted || len(t.rob) > t.robHead || t.fetchCur < len(t.pending) || t.dispatchCur < t.fetchCur {
			return false
		}
	}
	return true
}

// ---------------------------------------------------------------- commit

func (m *Machine) commit(stalled bool) {
	if stalled {
		return
	}
	budget := m.cfg.CommitWidth
	n := len(m.threads)
	start := int(m.now) % n
	// Round-robin across threads, draining each thread's ready head run.
	progress := true
	for budget > 0 && progress {
		progress = false
		for i := 0; i < n && budget > 0; i++ {
			th := (start + i) % n
			if m.commitOne(th) {
				budget--
				progress = true
			}
		}
	}
}

// commitOne retires thread th's oldest instruction if it has completed.
func (m *Machine) commitOne(th int) bool {
	t := &m.threads[th]
	if t.robHead >= len(t.rob) {
		return false
	}
	r := t.rob[t.robHead]
	e := m.get(r)
	if e == nil {
		panic("pipeline: stale ref at ROB head")
	}
	if !e.done {
		return false
	}
	in := &e.inst
	if m.inv != nil {
		m.checkCommit(th, in.Seq)
	}
	if in.Class == isa.Store {
		m.mem.Store(th, t.addrBase+in.Addr)
	}
	// Release held resources.
	if e.holdsLSQ {
		m.res.Free(th, resource.LSQ)
	}
	if e.holdsIntR {
		m.res.Free(th, resource.IntRename)
	}
	if e.holdsFpR {
		m.res.Free(th, resource.FpRename)
	}
	m.res.Free(th, resource.ROB)
	t.robHead++
	// Compact the ROB's dead prefix in place instead of re-slicing from
	// the front: advancing the slice start would burn backing-array
	// capacity linearly and force a fresh allocation every few hundred
	// commits.
	if t.robHead >= 256 {
		n := copy(t.rob, t.rob[t.robHead:])
		t.rob = t.rob[:n]
		t.robHead = 0
	}
	m.release(r)

	t.bbv[int(in.BB)%BBVEntries]++
	t.stats.Committed++
	t.pendingHead++
	// Compact the pending buffer once the dead prefix grows.
	if t.pendingHead >= 512 {
		copied := copy(t.pending, t.pending[t.pendingHead:])
		t.pending = t.pending[:copied]
		t.dispatchCur -= t.pendingHead
		t.fetchCur -= t.pendingHead
		t.pendingHead = 0
	}
	return true
}

// ------------------------------------------------------------- writeback

func (m *Machine) writeback() {
	slot := int(m.now % uint64(len(m.doneRing)))
	events := m.doneRing[slot]
	if len(events) == 0 {
		return
	}
	for _, r := range events {
		e := m.get(r)
		if e == nil || e.done || !e.issued {
			continue // squashed and possibly reallocated; drop the event
		}
		e.done = true
		m.wake(e)
		th := int(e.thread)
		t := &m.threads[th]
		switch e.inst.Class {
		case isa.Branch:
			pc := t.addrBase + e.inst.PC
			m.bp.Update(th, pc, e.inst.Taken)
			if e.inst.Taken {
				m.bp.BTBUpdate(pc, t.addrBase+e.inst.Target)
			}
			if e.mispredicted {
				t.stats.Mispredicts++
				t.fetchStall = m.now + uint64(m.cfg.MispredictPenalty)
				t.fetchStallICache = false
				if t.mispredictPending && t.mispredictSeq == e.inst.Seq {
					t.mispredictPending = false
				}
			}
		case isa.Load:
			if e.dmiss {
				t.outstandingDMiss--
			}
			if e.l2miss {
				t.outstandingL2--
				m.policy.OnL2MissDone(m, th, e.inst.Seq)
			}
		}
	}
	m.doneRing[slot] = events[:0]
}

// schedule enqueues completion of r after lat cycles (lat >= 1).
func (m *Machine) schedule(r ref, lat int) {
	if lat < 1 {
		lat = 1
	}
	if lat >= len(m.doneRing) {
		lat = len(m.doneRing) - 1 // ring bounds the maximum modelled latency
	}
	slot := int((m.now + uint64(lat)) % uint64(len(m.doneRing)))
	//smtlint:ignore hotalloc ring slot reaches its high-water capacity and is recycled with events[:0]
	m.doneRing[slot] = append(m.doneRing[slot], r)
}

// --------------------------------------------------------------- wakeup

// subscribe registers the consumer (r, e) on the wakeup chain of the
// producer guarding operand slot (0 = src1, 1 = src2). It is a no-op
// when the operand is already available (producer completed, committed,
// or squashed). The chain is intrusive: the link for a registration
// lives in the consumer's wakeNext[slot], so no memory is allocated.
func (m *Machine) subscribe(r ref, e *inflight, slot uint8, src ref) {
	p := m.get(src)
	if p == nil || p.done {
		return
	}
	e.wakeNext[slot] = p.wakeHead
	p.wakeHead = wakeRef{idx: r.idx, gen: r.gen, slot: slot}
	e.waitMask |= 1 << slot
}

// unsubscribe removes the consumer (r, e)'s registration for operand
// slot from its producer's wakeup chain. Called on squash, before the
// consumer's slot is released; the producer is necessarily still live
// and incomplete (a completed producer would already have woken and
// deregistered the consumer).
func (m *Machine) unsubscribe(r ref, e *inflight, slot uint8) {
	src := e.src1
	if slot == 1 {
		src = e.src2
	}
	p := m.get(src)
	if p == nil {
		panic("pipeline: registered operand has no live producer")
	}
	tgt := wakeRef{idx: r.idx, gen: r.gen, slot: slot}
	if p.wakeHead == tgt {
		p.wakeHead = e.wakeNext[slot]
	} else {
		l := p.wakeHead
		for {
			if l.gen == 0 {
				panic("pipeline: wakeup registration missing from producer chain")
			}
			n := &m.slab[l.idx].wakeNext[l.slot]
			if *n == tgt {
				*n = e.wakeNext[slot]
				break
			}
			l = *n
		}
	}
	e.wakeNext[slot] = wakeRef{}
	e.waitMask &^= 1 << slot
}

// wake walks the completing instruction's consumer chain, clearing each
// consumer's wait bit; a consumer whose last pending operand this was
// enters the ready queue. Chains contain only live registrations —
// squash deregisters explicitly — so a generation mismatch is a
// bookkeeping bug, not a benign stale ref.
func (m *Machine) wake(e *inflight) {
	l := e.wakeHead
	e.wakeHead = wakeRef{}
	for l.gen != 0 {
		c := &m.slab[l.idx]
		if c.gen != l.gen {
			panic("pipeline: stale wakeup link")
		}
		next := c.wakeNext[l.slot]
		c.wakeNext[l.slot] = wakeRef{}
		c.waitMask &^= 1 << l.slot
		if c.waitMask == 0 {
			m.pushReady(ref{idx: l.idx, gen: l.gen}, c.stamp)
		}
		l = next
	}
}

// pushReady inserts a woken instruction into the ready queue, keeping
// the queue sorted by dispatch stamp so issue scans strictly oldest
// first — the same age priority the former full-window scan had.
func (m *Machine) pushReady(r ref, stamp uint64) {
	q := m.readyQ
	i := sort.Search(len(q), func(j int) bool { return q[j].stamp > stamp })
	//smtlint:ignore hotalloc queue capacity is bounded by window occupancy and recycled via readyQ[:0]
	q = append(q, readyEnt{})
	copy(q[i+1:], q[i:])
	q[i] = readyEnt{r: r, stamp: stamp}
	m.readyQ = q
}

// ----------------------------------------------------------------- issue

// issue scans only the ready queue — instructions whose operands have
// all been produced — in dispatch-age order. Entries it cannot issue
// (functional unit contention, issue-width exhaustion) stay queued;
// squashed entries are dropped. Waiting instructions whose operands are
// still in flight never reach this loop: they sit on their producers'
// wakeup chains, so the per-cycle cost is O(ready), not O(window).
func (m *Machine) issue() {
	budget := m.cfg.IssueWidth
	fu := m.cfg.FUs // per-cycle copy; decremented as units are claimed
	out := m.readyQ[:0]
	for i, ent := range m.readyQ {
		e := m.get(ent.r)
		if e == nil || e.issued {
			continue // squashed (and possibly reallocated); drop the entry
		}
		if budget == 0 {
			//smtlint:ignore hotalloc out reuses readyQ's backing array and never outgrows it
			out = append(out, m.readyQ[i:]...)
			break
		}
		if m.tryIssue(ent.r, e, &fu) {
			budget--
			continue
		}
		//smtlint:ignore hotalloc out reuses readyQ's backing array and never outgrows it
		out = append(out, ent)
	}
	m.readyQ = out
}

// tryIssue issues one ready instruction if a functional unit of its
// class is free. It returns true when the instruction left the window.
// Operand readiness is a precondition: only woken instructions are in
// the ready queue.
func (m *Machine) tryIssue(r ref, e *inflight, fu *FUConfig) bool {
	th := int(e.thread)
	t := &m.threads[th]
	in := &e.inst
	lat := in.Class.ExecLatency()
	switch in.Class {
	case isa.IntAlu, isa.Branch:
		if fu.IntAlu == 0 {
			return false
		}
		fu.IntAlu--
	case isa.IntMul, isa.IntDiv:
		if fu.IntMul == 0 {
			return false
		}
		fu.IntMul--
	case isa.FpAlu:
		if fu.FpAlu == 0 {
			return false
		}
		fu.FpAlu--
	case isa.FpMul, isa.FpDiv:
		if fu.FpMul == 0 {
			return false
		}
		fu.FpMul--
	case isa.Load:
		if fu.MemPorts == 0 {
			return false
		}
		fu.MemPorts--
		memLat, l2miss := m.mem.Load(th, t.addrBase+in.Addr)
		lat += memLat
		if memLat > m.cfg.Mem.DL1.Latency {
			e.dmiss = true
			t.outstandingDMiss++
		}
		if l2miss {
			e.l2miss = true
			t.outstandingL2++
			m.policy.OnL2Miss(m, th, in.Seq)
		}
	case isa.Store:
		if fu.MemPorts == 0 {
			return false
		}
		fu.MemPorts--
	}
	e.issued = true
	if e.holdsIQ == resource.IntIQ || e.holdsIQ == resource.FpIQ {
		m.res.Free(th, e.holdsIQ)
		e.holdsIQ = resource.NumKinds
	}
	m.schedule(r, lat)
	t.stats.Issued++
	return true
}

// -------------------------------------------------------------- dispatch

// neededIQ returns the issue-queue structure an instruction occupies
// between dispatch and issue, or NumKinds for memory operations (which
// wait in the LSQ instead).
func neededIQ(c isa.Class) resource.Kind {
	switch c {
	case isa.IntAlu, isa.IntMul, isa.IntDiv, isa.Branch:
		return resource.IntIQ
	case isa.FpAlu, isa.FpMul, isa.FpDiv:
		return resource.FpIQ
	default:
		return resource.NumKinds
	}
}

func (m *Machine) dispatch() {
	budget := m.cfg.FetchWidth // dispatch width equals fetch width
	n := len(m.threads)
	start := int(m.now) % n
	progress := true
	for budget > 0 && progress {
		progress = false
		for i := 0; i < n && budget > 0; i++ {
			th := (start + i) % n
			if m.dispatchOne(th) {
				budget--
				progress = true
			}
		}
	}
}

// dispatchOne moves thread th's next fetched instruction into the window
// if every structure it needs can be allocated. Threads dispatch in
// order, so a blocked head blocks only its own thread.
func (m *Machine) dispatchOne(th int) bool {
	t := &m.threads[th]
	if t.dispatchCur >= t.fetchCur {
		return false
	}
	in := &t.pending[t.dispatchCur]
	iq := neededIQ(in.Class)

	if !m.res.CanAlloc(th, resource.ROB) {
		return false
	}
	if iq != resource.NumKinds && !m.res.CanAlloc(th, iq) {
		return false
	}
	if in.Class.IsMem() && !m.res.CanAlloc(th, resource.LSQ) {
		return false
	}
	needIntR := in.HasDest() && !in.DestIsFp()
	needFpR := in.HasDest() && in.DestIsFp()
	if needIntR && !m.res.CanAlloc(th, resource.IntRename) {
		return false
	}
	if needFpR && !m.res.CanAlloc(th, resource.FpRename) {
		return false
	}

	r, e := m.alloc()
	*e = inflight{
		gen:     e.gen,
		inst:    *in,
		thread:  int8(th),
		src1:    noRef,
		src2:    noRef,
		holdsIQ: resource.NumKinds,
		stamp:   m.dispStamp,
	}
	m.dispStamp++

	m.res.Alloc(th, resource.ROB)
	if iq != resource.NumKinds {
		m.res.Alloc(th, iq)
		e.holdsIQ = iq
	}
	if in.Class.IsMem() {
		m.res.Alloc(th, resource.LSQ)
		e.holdsLSQ = true
	}
	if needIntR {
		m.res.Alloc(th, resource.IntRename)
		e.holdsIntR = true
	}
	if needFpR {
		m.res.Alloc(th, resource.FpRename)
		e.holdsFpR = true
	}

	// Resolve source operands against the rename map and register on the
	// producers' wakeup chains. FP arithmetic reads the FP file; loads
	// and stores address (and, for stores, source their data) through
	// the integer file.
	srcFp := in.Class.IsFp()
	if in.Src1 != isa.NoReg {
		e.src1 = t.rename[renameIdx(in.Src1, srcFp)]
		m.subscribe(r, e, 0, e.src1)
	}
	if in.Src2 != isa.NoReg {
		e.src2 = t.rename[renameIdx(in.Src2, srcFp)]
		m.subscribe(r, e, 1, e.src2)
	}
	// Claim the destination.
	if in.HasDest() {
		di := renameIdx(in.Dest, in.DestIsFp())
		e.prevDest = t.rename[di]
		t.rename[di] = r
	}
	if t.mispredictPending && in.Class == isa.Branch && in.Seq == t.mispredictSeq {
		e.mispredicted = true
	}

	//smtlint:ignore hotalloc ROB capacity is bounded by the partition limits and recycled by the robHead compaction
	t.rob = append(t.rob, r)
	if e.waitMask == 0 {
		// All operands available at dispatch. The stamp just assigned is
		// the global maximum, so appending preserves the ready queue's
		// age order.
		//smtlint:ignore hotalloc queue capacity is bounded by window occupancy and recycled via readyQ[:0]
		m.readyQ = append(m.readyQ, readyEnt{r: r, stamp: e.stamp})
	}
	t.dispatchCur++
	t.stats.Dispatched++
	return true
}

// renameIdx maps an architectural register to its rename-table slot.
func renameIdx(reg int8, fp bool) int {
	if fp {
		return int(reg) + isa.RegsPerFile
	}
	return int(reg)
}

// ----------------------------------------------------------------- fetch

// canFetch reports whether thread th may fetch this cycle.
func (m *Machine) canFetch(th int) bool {
	t := &m.threads[th]
	if m.fetchDisabled[th] || (t.exhausted && t.fetchCur >= len(t.pending)) {
		return false
	}
	if t.mispredictPending || t.fetchStall > m.now {
		return false
	}
	if t.fetchCur-t.dispatchCur >= m.cfg.IFQSize {
		return false
	}
	if m.res.AtPartitionLimit(th) {
		return false
	}
	return !m.policy.FetchLocked(m, th)
}

// maxContexts bounds the hardware contexts a single machine may have;
// it exists only to keep fetch's thread-ranking scratch off the heap.
const maxContexts = 16

func (m *Machine) fetch() {
	// Rank eligible threads by ICOUNT (fewest in-flight instructions
	// first) and fetch from the best FetchThreads of them.
	var order [maxContexts]int
	var counts [maxContexts]int
	n := 0
	for th := range m.threads {
		if !m.canFetch(th) {
			continue
		}
		c := m.ICount(th)
		i := n
		for i > 0 && counts[i-1] > c {
			order[i] = order[i-1]
			counts[i] = counts[i-1]
			i--
		}
		order[i] = th
		counts[i] = c
		n++
	}
	if n > m.cfg.FetchThreads {
		n = m.cfg.FetchThreads
	}
	budget := m.cfg.FetchWidth
	for i := 0; i < n && budget > 0; i++ {
		budget = m.fetchThread(order[i], budget)
	}
}

// fetchThread fetches up to budget instructions from thread th and
// returns the remaining budget.
func (m *Machine) fetchThread(th int, budget int) int {
	t := &m.threads[th]
	for budget > 0 {
		if !m.canFetch(th) {
			break
		}
		// Refill the pending buffer from the stream if needed. The stream
		// decodes straight into the appended slot: a local scratch Inst
		// would escape through the interface call and put one heap
		// allocation on every fetch.
		if t.fetchCur >= len(t.pending) {
			//smtlint:ignore hotalloc pending capacity is bounded by the in-flight window plus the compaction threshold
			t.pending = append(t.pending, isa.Inst{})
			if !t.stream.Next(&t.pending[len(t.pending)-1]) {
				t.exhausted = true
				t.pending = t.pending[:len(t.pending)-1]
				break
			}
		}
		in := &t.pending[t.fetchCur]
		pc := t.addrBase + in.PC

		// Charge instruction-cache misses on block transitions.
		block := pc >> 6
		if block != t.lastFetchBlock {
			if lat := m.mem.Fetch(th, pc); lat > m.cfg.Mem.IL1.Latency {
				t.fetchStall = m.now + uint64(lat)
				t.fetchStallICache = true
				break
			}
			t.lastFetchBlock = block
		}

		t.fetchCur++
		t.stats.Fetched++
		budget--

		if in.Class == isa.Branch {
			predTaken := m.bp.Predict(th, pc)
			_, btbHit := m.bp.BTBLookup(pc)
			mispredict := predTaken != in.Taken || (in.Taken && !btbHit)
			if mispredict {
				t.mispredictPending = true
				t.mispredictSeq = in.Seq
				break // fetch cannot proceed past an unresolved mispredict
			}
			if in.Taken {
				break // taken-branch fetch break within the cycle
			}
		}
	}
	return budget
}

// ----------------------------------------------------------------- flush

// FlushAfter squashes every in-flight instruction of thread th younger
// than sequence number seq and rewinds the thread's fetch point so the
// squashed instructions are re-fetched later. This is the recovery action
// of the FLUSH policy (Tullsen & Brown) and the paper's Section 2.
func (m *Machine) FlushAfter(th int, seq uint64) {
	t := &m.threads[th]
	// Walk the ROB tail (youngest first), squashing while Seq > seq.
	squashed := 0
	for len(t.rob) > t.robHead {
		r := t.rob[len(t.rob)-1]
		e := m.get(r)
		if e == nil {
			panic("pipeline: stale ref in ROB tail")
		}
		if e.inst.Seq <= seq {
			break
		}
		m.squash(th, r, e)
		t.rob = t.rob[:len(t.rob)-1]
		squashed++
	}
	if squashed > 0 {
		t.stats.Flushed += uint64(squashed)
	}
	t.stats.Flushes++

	// Rewind the fetch/dispatch cursors to just past seq. pending is in
	// sequence order, so locate the first instruction with Seq > seq.
	lo := t.pendingHead
	cur := t.fetchCur
	for cur > lo && t.pending[cur-1].Seq > seq {
		cur--
	}
	t.fetchCur = cur
	if t.dispatchCur > cur {
		t.dispatchCur = cur
	}
	// Any fetched-but-unresolved mispredict past the flush point is gone.
	if t.mispredictPending && t.mispredictSeq > seq {
		t.mispredictPending = false
	}
	t.lastFetchBlock = 0 // refetch the flushed block
}

// squash undoes one in-flight instruction: restores the rename map,
// deregisters pending wakeups, releases occupancy, and frees the slab
// slot (which invalidates any ready-queue or completion-ring references).
func (m *Machine) squash(th int, r ref, e *inflight) {
	t := &m.threads[th]
	in := &e.inst
	if in.HasDest() {
		di := renameIdx(in.Dest, in.DestIsFp())
		if cur := t.rename[di]; cur == r {
			t.rename[di] = e.prevDest
		}
	}
	// A flush squashes the ROB tail youngest-first and dependences only
	// point backwards within a thread, so every consumer of e was
	// squashed (and deregistered) before e itself; its chain must be
	// empty by now.
	if e.wakeHead.gen != 0 {
		panic("pipeline: squashing a producer with live consumers")
	}
	if e.waitMask&1 != 0 {
		m.unsubscribe(r, e, 0)
	}
	if e.waitMask&2 != 0 {
		m.unsubscribe(r, e, 1)
	}
	if e.holdsIQ == resource.IntIQ || e.holdsIQ == resource.FpIQ {
		m.res.Free(th, e.holdsIQ)
	}
	if e.holdsLSQ {
		m.res.Free(th, resource.LSQ)
	}
	if e.holdsIntR {
		m.res.Free(th, resource.IntRename)
	}
	if e.holdsFpR {
		m.res.Free(th, resource.FpRename)
	}
	m.res.Free(th, resource.ROB)
	if e.dmiss && !e.done {
		t.outstandingDMiss--
	}
	if e.l2miss && !e.done {
		t.outstandingL2--
	}
	m.release(r)
}
