package pipeline

import (
	"bufio"
	"flag"
	"fmt"
	"hash/fnv"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"smthill/internal/isa"
)

// updateGolden regenerates the wakeup golden traces in testdata. Run
//
//	go test ./internal/pipeline -run TestWakeupGolden -update-wakeup
//
// ONLY against a pipeline whose issue behaviour is known-good: the golden
// files pin the exact per-cycle issue/commit timing that the
// dependency-driven wakeup refactor must preserve.
var updateGolden = flag.Bool("update-wakeup", false, "rewrite wakeup golden traces")

// scriptStream replays a fixed instruction slice; it implements
// isa.Stream so directed dependency fixtures can drive the machine.
type scriptStream struct {
	insts []isa.Inst
	pos   int
}

func (s *scriptStream) Next(out *isa.Inst) bool {
	if s.pos >= len(s.insts) {
		return false
	}
	*out = s.insts[s.pos]
	s.pos++
	return true
}

func (s *scriptStream) CloneStream() isa.Stream {
	c := *s
	return &c
}

// fixtureBuilder assembles a directed-dependency instruction sequence
// with explicit producer→consumer edges.
type fixtureBuilder struct {
	insts []isa.Inst
	seq   uint64
	pc    uint64
}

func (b *fixtureBuilder) add(in isa.Inst) {
	in.Seq = b.seq
	in.PC = b.pc
	in.BB = uint16(b.pc >> 5)
	b.seq++
	b.pc += 4
	b.insts = append(b.insts, in)
}

func (b *fixtureBuilder) alu(dest, src1, src2 int8) {
	b.add(isa.Inst{Class: isa.IntAlu, Dest: dest, Src1: src1, Src2: src2})
}

func (b *fixtureBuilder) mul(dest, src1, src2 int8) {
	b.add(isa.Inst{Class: isa.IntMul, Dest: dest, Src1: src1, Src2: src2})
}

func (b *fixtureBuilder) load(dest, addrSrc int8, addr uint64) {
	b.add(isa.Inst{Class: isa.Load, Dest: dest, Src1: addrSrc, Addr: addr})
}

func (b *fixtureBuilder) store(addrSrc, dataSrc int8, addr uint64) {
	b.add(isa.Inst{Class: isa.Store, Src1: addrSrc, Src2: dataSrc, Addr: addr, Dest: isa.NoReg})
}

func (b *fixtureBuilder) branch(taken bool, target uint64) {
	b.add(isa.Inst{Class: isa.Branch, Taken: taken, Target: target, Dest: isa.NoReg, Src1: isa.NoReg, Src2: isa.NoReg})
}

// chainFixture: serial producer→consumer chains of varying length
// interleaved with independent work, so issue must respect both true
// dependences and oldest-first priority under FU contention.
func chainFixture(n int) []isa.Inst {
	b := &fixtureBuilder{}
	b.alu(1, isa.NoReg, isa.NoReg) // seed r1
	for len(b.insts) < n {
		// A long serial chain through r1 (multiplies stretch the chain
		// latency so consumers camp in the window).
		for i := 0; i < 6; i++ {
			if i%3 == 0 {
				b.mul(1, 1, isa.NoReg)
			} else {
				b.alu(1, 1, isa.NoReg)
			}
		}
		// Independent two-operand work competing for ALUs.
		for i := int8(2); i < 8; i++ {
			b.alu(i, isa.NoReg, isa.NoReg)
			b.alu(i, i, 1) // joins the chain value
		}
	}
	return b.insts
}

// l2missFixture: pointer-chase-style loads guaranteed to miss in the L2
// (fresh 64-byte blocks across a 64MB region), each followed by
// consumers that must wait for the miss, plus stores carrying data
// dependences. Several independent chains keep multiple misses in
// flight, so wakeups arrive long after dispatch and out of dispatch
// order.
func l2missFixture(n int) []isa.Inst {
	b := &fixtureBuilder{}
	const region = uint64(0x4000_0000) // beyond any cached set reuse
	var addr [4]uint64
	for i := range addr {
		addr[i] = region + uint64(i)*(16<<20)
	}
	for c := int8(0); len(b.insts) < n; c = (c + 1) % 4 {
		r := int8(10 + c)
		addr[c] += 64 // new block every time: always misses
		b.load(r, isa.NoReg, addr[c])
		b.alu(r, r, isa.NoReg)   // waits on the miss
		b.alu(20+c, r, isa.NoReg) // second-level consumer
		b.store(isa.NoReg, 20+c, addr[c]+8)
		b.alu(2, isa.NoReg, isa.NoReg) // independent filler
	}
	return b.insts
}

// squashFixture mixes chains, missing loads, and biased branches; the
// test driver injects FlushAfter calls mid-execution so squashes land
// while wakeups are pending.
func squashFixture(n int) []isa.Inst {
	b := &fixtureBuilder{}
	const region = uint64(0x5000_0000)
	addr := region
	i := 0
	for len(b.insts) < n {
		addr += 64
		b.load(4, isa.NoReg, addr)
		b.mul(5, 4, isa.NoReg)
		b.alu(6, 5, 4)
		b.branch(i%3 == 0, b.pc+64)
		b.alu(7, 6, isa.NoReg)
		b.store(isa.NoReg, 7, addr+8)
		i++
	}
	return b.insts
}

// traceHash folds the machine's full architectural timing state for the
// cycle into h: per-thread stage counters plus every live ROB entry's
// sequence number and status flags. Any change to issue order, wakeup
// timing, or squash behaviour perturbs it.
func traceHash(m *Machine) uint64 {
	h := fnv.New64a()
	var buf [8]byte
	put := func(v uint64) {
		for i := 0; i < 8; i++ {
			buf[i] = byte(v >> (8 * i))
		}
		h.Write(buf[:])
	}
	put(m.now)
	for th := range m.threads {
		t := &m.threads[th]
		put(t.stats.Fetched)
		put(t.stats.Dispatched)
		put(t.stats.Issued)
		put(t.stats.Committed)
		put(t.stats.Flushed)
		put(t.stats.Mispredicts)
		put(uint64(t.outstandingL2))
		put(uint64(t.outstandingDMiss))
		for _, r := range t.liveROB() {
			e := m.get(r)
			if e == nil {
				panic("wakeup_test: stale ROB ref")
			}
			flags := uint64(0)
			if e.issued {
				flags |= 1
			}
			if e.done {
				flags |= 2
			}
			if e.dmiss {
				flags |= 4
			}
			if e.l2miss {
				flags |= 8
			}
			put(e.inst.Seq<<4 | flags)
		}
	}
	return h.Sum64()
}

// wakeupScenario is one golden-trace run.
type wakeupScenario struct {
	name    string
	streams func() []isa.Stream
	cycles  int
	// flushEvery, when non-zero, injects FlushAfter(0, committed+keep)
	// on thread 0 every flushEvery cycles (squash-mid-wakeup coverage).
	flushEvery int
	keep       uint64
}

func wakeupScenarios() []wakeupScenario {
	return []wakeupScenario{
		{
			name: "chain",
			streams: func() []isa.Stream {
				return []isa.Stream{
					&scriptStream{insts: chainFixture(4000)},
					&scriptStream{insts: chainFixture(4000)},
				}
			},
			cycles: 3000,
		},
		{
			name: "l2miss",
			streams: func() []isa.Stream {
				return []isa.Stream{
					&scriptStream{insts: l2missFixture(3000)},
					&scriptStream{insts: chainFixture(3000)},
				}
			},
			cycles: 5000,
		},
		{
			name: "squash",
			streams: func() []isa.Stream {
				return []isa.Stream{
					&scriptStream{insts: squashFixture(3000)},
					&scriptStream{insts: l2missFixture(3000)},
				}
			},
			cycles:     5000,
			flushEvery: 257,
			keep:       3,
		},
	}
}

// runWakeupTrace executes a scenario and renders its golden trace: a
// sampled per-cycle hash stream, a cumulative hash over every cycle, and
// the final per-thread counters.
func runWakeupTrace(s wakeupScenario) []string {
	m := New(DefaultConfig(2), s.streams(), nil)
	cum := fnv.New64a()
	var lines []string
	var buf [8]byte
	for c := 0; c < s.cycles; c++ {
		if s.flushEvery > 0 && c > 0 && c%s.flushEvery == 0 {
			cut := m.Committed(0) + s.keep
			m.FlushAfter(0, cut)
		}
		m.Cycle()
		h := traceHash(m)
		for i := 0; i < 8; i++ {
			buf[i] = byte(h >> (8 * i))
		}
		cum.Write(buf[:])
		if c < 512 || c%64 == 0 {
			lines = append(lines, fmt.Sprintf("cycle %d hash %016x", c, h))
		}
	}
	lines = append(lines, fmt.Sprintf("cumulative %016x", cum.Sum64()))
	for th := 0; th < m.Threads(); th++ {
		st := m.ThreadStats(th)
		lines = append(lines, fmt.Sprintf(
			"final th%d fetched %d dispatched %d issued %d committed %d flushes %d flushed %d mispredicts %d",
			th, st.Fetched, st.Dispatched, st.Issued, st.Committed, st.Flushes, st.Flushed, st.Mispredicts))
	}
	return lines
}

// TestWakeupGolden pins the exact cycle-by-cycle issue and commit timing
// of directed dependency fixtures (serial chains, loads with pending L2
// misses, squash-mid-wakeup via FlushAfter) against golden traces in
// testdata. The dependency-driven wakeup path must reproduce the
// age-ordered issue priority of the original window scan bit-for-bit.
func TestWakeupGolden(t *testing.T) {
	for _, s := range wakeupScenarios() {
		t.Run(s.name, func(t *testing.T) {
			got := runWakeupTrace(s)
			path := filepath.Join("testdata", "wakeup_"+s.name+".golden")
			if *updateGolden {
				if err := os.MkdirAll("testdata", 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, []byte(strings.Join(got, "\n")+"\n"), 0o644); err != nil {
					t.Fatal(err)
				}
				t.Logf("wrote %s (%d lines)", path, len(got))
				return
			}
			f, err := os.Open(path)
			if err != nil {
				t.Fatalf("missing golden (regenerate with -update-wakeup against a known-good pipeline): %v", err)
			}
			defer f.Close()
			var want []string
			sc := bufio.NewScanner(f)
			for sc.Scan() {
				want = append(want, sc.Text())
			}
			if err := sc.Err(); err != nil {
				t.Fatal(err)
			}
			if len(got) != len(want) {
				t.Fatalf("trace length %d, golden %d", len(got), len(want))
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("trace diverges at line %d:\n  got  %s\n  want %s", i+1, got[i], want[i])
				}
			}
		})
	}
}

// TestWakeupGoldenInvariants reruns the squash scenario (the one that
// exercises every wakeup transition) with per-cycle invariant checking
// enabled; any conservation or bookkeeping slip panics.
func TestWakeupGoldenInvariants(t *testing.T) {
	for _, s := range wakeupScenarios() {
		t.Run(s.name, func(t *testing.T) {
			m := New(DefaultConfig(2), s.streams(), nil)
			m.SetInvariantChecks(true)
			for c := 0; c < s.cycles; c++ {
				if s.flushEvery > 0 && c > 0 && c%s.flushEvery == 0 {
					m.FlushAfter(0, m.Committed(0)+s.keep)
				}
				m.Cycle()
			}
			if err := m.CheckInvariants(); err != nil {
				t.Fatal(err)
			}
		})
	}
}
