package pipeline

import (
	"testing"

	"smthill/internal/isa"
	"smthill/internal/resource"
	"smthill/internal/trace"
)

// ilpProfile is a compute-bound, cache-friendly application model.
func ilpProfile(seed uint64) trace.Profile {
	return trace.Profile{
		Name: "ilp", Seed: seed,
		A: trace.Params{
			FracLoad: 0.2, FracStore: 0.1,
			FracFp: 0.2, FracMulDiv: 0.05,
			ChainDep: 0.15, WorkingSet: 16 << 10, StridePct: 0.8,
			BranchNoise: 0.02,
		},
	}
}

// memProfile is a memory-bound model with pointer chasing and miss bursts.
func memProfile(seed uint64) trace.Profile {
	return trace.Profile{
		Name: "mem", Seed: seed,
		A: trace.Params{
			FracLoad: 0.3, FracStore: 0.1,
			FracFp: 0.1, FracMulDiv: 0.05,
			ChainDep: 0.2, WorkingSet: 8 << 20, StridePct: 0.2,
			PointerChase: 0.1, MissBurstProb: 0.02, BurstLen: 4,
			BranchNoise: 0.03,
		},
	}
}

func newMachine(t *testing.T, threads int, profs []trace.Profile, pol Policy) *Machine {
	t.Helper()
	streams := make([]isa.Stream, threads)
	for i := range streams {
		streams[i] = trace.New(profs[i])
	}
	return New(DefaultConfig(threads), streams, pol)
}

func ipc(m *Machine, th int, cycles uint64) float64 {
	return float64(m.Committed(th)) / float64(cycles)
}

func TestSingleThreadMakesProgress(t *testing.T) {
	m := newMachine(t, 1, []trace.Profile{ilpProfile(1)}, nil)
	m.CycleN(50_000)
	got := ipc(m, 0, 50_000)
	if got < 0.5 {
		t.Fatalf("ILP thread IPC = %.3f, machine is nearly stalled", got)
	}
	if got > 8 {
		t.Fatalf("IPC = %.3f exceeds machine width", got)
	}
}

func TestMemBoundSlowerThanIlp(t *testing.T) {
	mi := newMachine(t, 1, []trace.Profile{ilpProfile(1)}, nil)
	mm := newMachine(t, 1, []trace.Profile{memProfile(1)}, nil)
	mi.CycleN(100_000)
	mm.CycleN(100_000)
	ilpIPC, memIPC := ipc(mi, 0, 100_000), ipc(mm, 0, 100_000)
	if memIPC >= ilpIPC {
		t.Fatalf("memory-bound IPC %.3f >= ILP IPC %.3f", memIPC, ilpIPC)
	}
	if memIPC <= 0.01 {
		t.Fatalf("memory-bound thread fully stalled: IPC %.4f", memIPC)
	}
}

func TestTwoThreadsBothProgress(t *testing.T) {
	m := newMachine(t, 2, []trace.Profile{ilpProfile(1), ilpProfile(2)}, nil)
	m.CycleN(100_000)
	for th := 0; th < 2; th++ {
		if got := ipc(m, th, 100_000); got < 0.2 {
			t.Fatalf("thread %d IPC = %.3f", th, got)
		}
	}
}

func TestSMTThroughputExceedsAlternation(t *testing.T) {
	// Two ILP threads co-scheduled should outperform a single thread
	// alone (SMT exploits issue slots a single thread leaves idle).
	solo := newMachine(t, 1, []trace.Profile{ilpProfile(1)}, nil)
	solo.CycleN(100_000)
	smt := newMachine(t, 2, []trace.Profile{ilpProfile(1), ilpProfile(2)}, nil)
	smt.CycleN(100_000)
	soloIPC := ipc(solo, 0, 100_000)
	smtIPC := ipc(smt, 0, 100_000) + ipc(smt, 1, 100_000)
	if smtIPC <= soloIPC*1.05 {
		t.Fatalf("SMT throughput %.3f does not beat solo %.3f", smtIPC, soloIPC)
	}
}

func TestThreeAndFourThreadsProgress(t *testing.T) {
	// Regression: power-of-two per-thread address bases aliased every
	// context onto the same cache sets, deadlocking fetch with more than
	// two contexts.
	for _, n := range []int{3, 4} {
		profs := make([]trace.Profile, n)
		for i := range profs {
			profs[i] = ilpProfile(uint64(i + 1))
		}
		m := newMachine(t, n, profs, nil)
		m.CycleN(30_000)
		for th := 0; th < n; th++ {
			if m.Committed(th) < 1000 {
				t.Fatalf("%d threads: thread %d committed only %d", n, th, m.Committed(th))
			}
		}
	}
}

func TestStatsConsistency(t *testing.T) {
	m := newMachine(t, 2, []trace.Profile{ilpProfile(1), memProfile(2)}, nil)
	m.CycleN(50_000)
	s := m.Stats()
	if s.Cycles != 50_000 {
		t.Fatalf("Cycles = %d", s.Cycles)
	}
	if s.Committed > s.Dispatched || s.Dispatched > s.Fetched {
		t.Fatalf("pipeline counters inverted: fetched %d dispatched %d committed %d",
			s.Fetched, s.Dispatched, s.Committed)
	}
	if s.Committed != m.Committed(0)+m.Committed(1) {
		t.Fatal("aggregate committed != per-thread sum")
	}
	if s.Issued < s.Committed {
		t.Fatalf("issued %d < committed %d", s.Issued, s.Committed)
	}
}

func TestOccupancyNeverExceedsLimits(t *testing.T) {
	m := newMachine(t, 2, []trace.Profile{memProfile(1), ilpProfile(2)}, nil)
	m.Resources().SetShares(resource.Shares{64, 192})
	sizes := resource.DefaultSizes()
	for c := 0; c < 30_000; c++ {
		m.Cycle()
		for k := resource.Kind(0); k < resource.NumKinds; k++ {
			total := 0
			for th := 0; th < 2; th++ {
				occ := m.Resources().Occ(th, k)
				total += occ
				if occ < 0 {
					t.Fatalf("cycle %d: negative occupancy of %v by thread %d", c, k, th)
				}
			}
			if total > sizes[k] {
				t.Fatalf("cycle %d: %v total occupancy %d exceeds capacity %d", c, k, total, sizes[k])
			}
		}
	}
	// Partition enforcement: fetch-locked threads can transiently hold
	// at most their limit (allocation stops at the limit).
	for th := 0; th < 2; th++ {
		for _, k := range []resource.Kind{resource.IntIQ, resource.IntRename, resource.ROB} {
			if occ, lim := m.Resources().Occ(th, k), m.Resources().Limit(th, k); occ > lim {
				t.Fatalf("thread %d %v occupancy %d exceeds partition %d", th, k, occ, lim)
			}
		}
	}
}

func TestPartitionStarvationHurtsThread(t *testing.T) {
	// Give thread 0 a tiny partition: its IPC must drop versus an equal
	// split, and thread 1's must not drop.
	run := func(shares resource.Shares) (float64, float64) {
		m := newMachine(t, 2, []trace.Profile{ilpProfile(1), ilpProfile(2)}, nil)
		m.Resources().SetShares(shares)
		m.CycleN(100_000)
		return ipc(m, 0, 100_000), ipc(m, 1, 100_000)
	}
	eq0, _ := run(resource.Shares{128, 128})
	sm0, sm1 := run(resource.Shares{16, 240})
	if sm0 >= eq0*0.8 {
		t.Fatalf("starved thread IPC %.3f not clearly below equal-share IPC %.3f", sm0, eq0)
	}
	if sm1 < 0.2 {
		t.Fatalf("favored thread collapsed: IPC %.3f", sm1)
	}
}

func TestCloneReplaysIdentically(t *testing.T) {
	m := newMachine(t, 2, []trace.Profile{memProfile(1), ilpProfile(2)}, nil)
	m.CycleN(20_000) // reach a messy mid-execution state
	c := m.Clone()

	m.CycleN(30_000)
	c.CycleN(30_000)

	if a, b := m.Stats(), c.Stats(); a != b {
		t.Fatalf("clone stats diverged:\n original %+v\n clone    %+v", a, b)
	}
	for th := 0; th < 2; th++ {
		if m.Committed(th) != c.Committed(th) {
			t.Fatalf("thread %d committed %d vs clone %d", th, m.Committed(th), c.Committed(th))
		}
	}
}

func TestCloneIsIndependent(t *testing.T) {
	m := newMachine(t, 2, []trace.Profile{ilpProfile(1), memProfile(2)}, nil)
	m.CycleN(10_000)
	c := m.Clone()
	base := c.Stats()
	m.CycleN(10_000) // advancing the original must not move the clone
	if c.Stats() != base {
		t.Fatal("advancing the original changed the clone")
	}
}

func TestCloneUnderDifferentSharesDiverges(t *testing.T) {
	// The point of checkpointing: restore the same state, apply a
	// different partitioning, observe different performance.
	m := newMachine(t, 2, []trace.Profile{memProfile(1), ilpProfile(2)}, nil)
	m.CycleN(20_000)
	a := m.Clone()
	b := m.Clone()
	a.Resources().SetShares(resource.Shares{32, 224})
	b.Resources().SetShares(resource.Shares{224, 32})
	a.CycleN(64_000)
	b.CycleN(64_000)
	if a.Committed(0) == b.Committed(0) && a.Committed(1) == b.Committed(1) {
		t.Fatal("radically different partitionings produced identical executions")
	}
}

func TestFlushAfterSquashesAndReplays(t *testing.T) {
	m := newMachine(t, 2, []trace.Profile{memProfile(1), ilpProfile(2)}, nil)
	m.CycleN(5_000)
	before := m.Committed(0)

	// Flush everything of thread 0 younger than its oldest in-flight
	// instruction's seq + 1.
	tst := &m.threads[0]
	if len(tst.liveROB()) < 4 {
		t.Skip("thread 0 has too few in-flight instructions to flush")
	}
	headSeq := m.slab[tst.liveROB()[0].idx].inst.Seq
	m.FlushAfter(0, headSeq)
	if got := len(tst.liveROB()); got != 1 {
		t.Fatalf("ROB holds %d entries after flush, want 1", got)
	}
	if m.Stats().Squashed == 0 {
		t.Fatal("flush squashed nothing")
	}
	// Execution must continue and re-commit the squashed instructions.
	m.CycleN(50_000)
	if m.Committed(0) <= before+1 {
		t.Fatalf("thread 0 did not make progress after flush: %d -> %d", before, m.Committed(0))
	}
}

func TestFlushPreservesDeterminism(t *testing.T) {
	// A flush must leave the machine in a state that still replays
	// identically from a clone.
	m := newMachine(t, 2, []trace.Profile{memProfile(3), ilpProfile(4)}, nil)
	m.CycleN(8_000)
	if len(m.threads[0].liveROB()) > 2 {
		headSeq := m.slab[m.threads[0].liveROB()[0].idx].inst.Seq
		m.FlushAfter(0, headSeq)
	}
	c := m.Clone()
	m.CycleN(20_000)
	c.CycleN(20_000)
	if m.Stats() != c.Stats() {
		t.Fatal("post-flush clone diverged")
	}
}

func TestSetFetchEnabled(t *testing.T) {
	m := newMachine(t, 2, []trace.Profile{ilpProfile(1), ilpProfile(2)}, nil)
	m.SetFetchEnabled(1, false)
	m.CycleN(30_000)
	if m.Committed(1) > 100 {
		t.Fatalf("disabled thread committed %d instructions", m.Committed(1))
	}
	if m.Committed(0) < 10_000 {
		t.Fatalf("enabled thread starved: %d", m.Committed(0))
	}
	if !m.FetchEnabled(0) || m.FetchEnabled(1) {
		t.Fatal("FetchEnabled flags wrong")
	}
	// Re-enable and verify recovery.
	m.SetFetchEnabled(1, true)
	at := m.Committed(1)
	m.CycleN(30_000)
	if m.Committed(1) <= at {
		t.Fatal("re-enabled thread did not resume")
	}
}

func TestStallFreezesCommit(t *testing.T) {
	m := newMachine(t, 1, []trace.Profile{ilpProfile(1)}, nil)
	m.CycleN(10_000)
	before := m.Committed(0)
	m.Stall(200)
	m.CycleN(200)
	if got := m.Committed(0) - before; got != 0 {
		t.Fatalf("committed %d instructions during a full stall", got)
	}
	m.CycleN(10_000)
	if m.Committed(0) == before {
		t.Fatal("machine did not resume after stall")
	}
}

func TestMispredictsHappenAndArePenalized(t *testing.T) {
	noisy := ilpProfile(1)
	noisy.A.BranchNoise = 0.3
	clean := ilpProfile(1)
	clean.A.BranchNoise = 0.0

	mn := newMachine(t, 1, []trace.Profile{noisy}, nil)
	mc := newMachine(t, 1, []trace.Profile{clean}, nil)
	mn.CycleN(100_000)
	mc.CycleN(100_000)
	if mn.Stats().Mispredicts < 100 {
		t.Fatalf("noisy branches produced only %d mispredicts", mn.Stats().Mispredicts)
	}
	if ipc(mn, 0, 100_000) >= ipc(mc, 0, 100_000) {
		t.Fatalf("mispredicts did not hurt IPC: %.3f vs %.3f",
			ipc(mn, 0, 100_000), ipc(mc, 0, 100_000))
	}
}

func TestOutstandingL2Tracking(t *testing.T) {
	m := newMachine(t, 1, []trace.Profile{memProfile(1)}, nil)
	sawOutstanding := false
	for i := 0; i < 50_000; i++ {
		m.Cycle()
		o := m.OutstandingL2(0)
		if o < 0 {
			t.Fatalf("cycle %d: negative outstanding L2 count", i)
		}
		if o > 0 {
			sawOutstanding = true
		}
	}
	if !sawOutstanding {
		t.Fatal("memory-bound thread never had an outstanding L2 miss")
	}
}

func TestFiniteStreamDrains(t *testing.T) {
	streams := []isa.Stream{trace.NewLimited(ilpProfile(1), 5_000)}
	m := New(DefaultConfig(1), streams, nil)
	for i := 0; i < 200_000 && !m.Done(); i++ {
		m.Cycle()
	}
	if !m.Done() {
		t.Fatal("finite stream did not drain")
	}
	if m.Committed(0) != 5_000 {
		t.Fatalf("committed %d, want 5000", m.Committed(0))
	}
}

func TestICountReflectsOccupancy(t *testing.T) {
	m := newMachine(t, 2, []trace.Profile{memProfile(1), ilpProfile(2)}, nil)
	m.CycleN(20_000)
	// The memory-bound thread accumulates in-flight instructions; its
	// ICOUNT should generally exceed the ILP thread's.
	if m.ICount(0) == 0 && m.ICount(1) == 0 {
		t.Fatal("both ICOUNTs are zero mid-execution")
	}
	for th := 0; th < 2; th++ {
		if m.ICount(th) < 0 {
			t.Fatalf("negative ICOUNT for thread %d", th)
		}
	}
}

func TestNewValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("stream/context mismatch did not panic")
		}
	}()
	New(DefaultConfig(2), []isa.Stream{trace.New(ilpProfile(1))}, nil)
}

func TestDefaultConfigMatchesTable1(t *testing.T) {
	cfg := DefaultConfig(2)
	if cfg.FetchWidth != 8 || cfg.IssueWidth != 8 || cfg.CommitWidth != 8 {
		t.Fatal("bandwidths differ from Table 1")
	}
	fu := cfg.FUs
	if fu.IntAlu != 6 || fu.IntMul != 3 || fu.MemPorts != 4 || fu.FpAlu != 3 || fu.FpMul != 3 {
		t.Fatal("functional units differ from Table 1")
	}
	if cfg.Resources[resource.ROB] != 512 || cfg.Resources[resource.IntRename] != 256 {
		t.Fatal("window sizes differ from Table 1")
	}
}
