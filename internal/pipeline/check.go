package pipeline

import (
	"fmt"

	"smthill/internal/resource"
)

// fullCheckInterval is how often (in cycles) the per-cycle checking mode
// runs the full slab cross-check on top of the cheap per-cycle asserts.
const fullCheckInterval = 1024

// invariantState is the bookkeeping behind SetInvariantChecks. It exists
// only while checking is on, so the unchecked hot loop pays a single
// nil-test per cycle.
type invariantState struct {
	// lastCommitSeq holds each thread's most recently committed sequence
	// number plus one (0 = nothing committed yet; sequence numbers start
	// at 0), enforcing program-order commit.
	lastCommitSeq []uint64
	// prevOcc snapshots every occupancy counter at the end of the previous
	// checked cycle; resVersion is the partition-table version that
	// snapshot was taken under.
	prevOcc    []int
	resVersion uint64
}

func (s *invariantState) clone() *invariantState {
	c := &invariantState{resVersion: s.resVersion}
	c.lastCommitSeq = append([]uint64(nil), s.lastCommitSeq...)
	c.prevOcc = append([]int(nil), s.prevOcc...)
	return c
}

// SetInvariantChecks turns per-cycle invariant checking on or off. When
// on, every Cycle ends with resource-conservation and counter-sanity
// asserts, commits are verified to retire in program order, occupancy
// above a shrunken partition limit is verified to drain (never grow), and
// every fullCheckInterval cycles the full slab cross-check
// (CheckInvariants) runs. A violation panics with the failing cycle.
//
// Checking is off by default and costs one nil-test per cycle when off;
// cmd/smtsim exposes it as -check.
func (m *Machine) SetInvariantChecks(on bool) {
	if !on {
		m.inv = nil
		return
	}
	if m.inv == nil {
		m.inv = &invariantState{lastCommitSeq: make([]uint64, len(m.threads))}
	}
}

// InvariantChecks reports whether per-cycle checking is on.
func (m *Machine) InvariantChecks() bool { return m.inv != nil }

// checkCommit asserts that thread th is retiring sequence numbers
// strictly in program order. Called from commitOne under m.inv != nil.
func (m *Machine) checkCommit(th int, seq uint64) {
	if next := seq + 1; next <= m.inv.lastCommitSeq[th] {
		panic(fmt.Sprintf("pipeline: cycle %d: thread %d commits seq %d after seq %d (program order violated)",
			m.now, th, seq, m.inv.lastCommitSeq[th]-1))
	}
	m.inv.lastCommitSeq[th] = seq + 1
}

// checkCycle runs the cheap end-of-cycle asserts and, periodically, the
// full slab cross-check. Called from Cycle under m.inv != nil.
func (m *Machine) checkCycle() {
	if err := m.res.CheckConservation(); err != nil {
		panic(fmt.Sprintf("pipeline: cycle %d: %v", m.now, err))
	}
	for th := range m.threads {
		st := &m.threads[th].stats
		if st.Committed > st.Issued || st.Issued > st.Dispatched || st.Dispatched > st.Fetched {
			panic(fmt.Sprintf("pipeline: cycle %d: thread %d stage counters not monotonic (fetched %d >= dispatched %d >= issued %d >= committed %d violated)",
				m.now, th, st.Fetched, st.Dispatched, st.Issued, st.Committed))
		}
	}
	m.checkDrain()
	if m.cycles%fullCheckInterval == 0 {
		if err := m.CheckInvariants(); err != nil {
			panic(fmt.Sprintf("pipeline: cycle %d: %v", m.now, err))
		}
	}
}

// checkDrain enforces the over-limit drain property: a thread's occupancy
// may sit above its partition limit right after the limit shrank (the
// entries drain as they commit), but while the partition programming is
// unchanged it must never grow further past the limit. The
// resource.Table version tells the two apart.
func (m *Machine) checkDrain() {
	inv := m.inv
	n := len(m.threads) * int(resource.NumKinds)
	if cap(inv.prevOcc) < n {
		inv.prevOcc = make([]int, n)
		inv.resVersion = 0 // force a fresh baseline
	}
	sameProgramming := inv.resVersion == m.res.Version() && inv.resVersion != 0
	i := 0
	for th := range m.threads {
		for k := resource.Kind(0); k < resource.NumKinds; k++ {
			occ := m.res.Occ(th, k)
			if sameProgramming && occ > m.res.Limit(th, k) && occ > inv.prevOcc[i] {
				panic(fmt.Sprintf("pipeline: cycle %d: thread %d %v occupancy grew %d -> %d past limit %d (over-limit occupancy must drain)",
					m.now, th, k, inv.prevOcc[i], occ, m.res.Limit(th, k)))
			}
			inv.prevOcc[i] = occ
			i++
		}
	}
	inv.resVersion = m.res.Version()
}

// liveSlots returns the set of slab indices not on the free list.
func (m *Machine) liveSlots() map[int32]bool {
	free := map[int32]bool{}
	for _, idx := range m.free {
		free[idx] = true
	}
	live := map[int32]bool{}
	for i := range m.slab {
		if !free[int32(i)] {
			live[int32(i)] = true
		}
	}
	return live
}

// CheckInvariants cross-checks the machine's entire bookkeeping against
// ground truth recomputed from the slab: ROB entries are live, owned by
// the right thread, and in increasing sequence order; no live slot is
// orphaned outside a ROB; every occupancy counter matches the holds-flags
// in the slab; outstanding-miss counters match in-flight misses; the
// resource table conserves entries (CheckConservation); and the
// machine-level Stats equal the per-thread aggregation. It returns the
// first violation found, or nil.
//
// The walk is O(slab) with map allocations — debugging speed, not
// simulation speed. SetInvariantChecks runs it periodically; tests run it
// directly.
func (m *Machine) CheckInvariants() error {
	live := m.liveSlots()

	// Every ROB entry references a live slot with a matching generation,
	// in increasing sequence order per thread.
	robSet := map[int32]bool{}
	for th := range m.threads {
		var prevSeq uint64
		for i, r := range m.threads[th].liveROB() {
			e := m.get(r)
			if e == nil {
				return fmt.Errorf("thread %d ROB[%d] is stale", th, i)
			}
			if !live[r.idx] {
				return fmt.Errorf("thread %d ROB[%d] references a freed slot", th, i)
			}
			if int(e.thread) != th {
				return fmt.Errorf("thread %d ROB entry belongs to thread %d", th, e.thread)
			}
			if i > 0 && e.inst.Seq <= prevSeq {
				return fmt.Errorf("thread %d ROB out of order at %d", th, i)
			}
			prevSeq = e.inst.Seq
			robSet[r.idx] = true
		}
	}
	// Every live slot is in some ROB (no orphans).
	if len(robSet) != len(live) {
		return fmt.Errorf("%d live slots but %d ROB entries", len(live), len(robSet))
	}

	// Recompute occupancy per thread and kind.
	var occ [maxContexts][resource.NumKinds]int
	for idx := range live {
		e := &m.slab[idx]
		th := int(e.thread)
		occ[th][resource.ROB]++
		if e.holdsIQ == resource.IntIQ || e.holdsIQ == resource.FpIQ {
			occ[th][e.holdsIQ]++
		}
		if e.holdsLSQ {
			occ[th][resource.LSQ]++
		}
		if e.holdsIntR {
			occ[th][resource.IntRename]++
		}
		if e.holdsFpR {
			occ[th][resource.FpRename]++
		}
	}
	for th := range m.threads {
		for k := resource.Kind(0); k < resource.NumKinds; k++ {
			if got := m.res.Occ(th, k); got != occ[th][k] {
				return fmt.Errorf("thread %d %v occupancy %d, slab says %d", th, k, got, occ[th][k])
			}
		}
	}

	// Outstanding-miss counters match the slab.
	for th := range m.threads {
		l2, dm := 0, 0
		for idx := range live {
			e := &m.slab[idx]
			if int(e.thread) != th || e.done {
				continue
			}
			if e.l2miss {
				l2++
			}
			if e.dmiss {
				dm++
			}
		}
		if m.threads[th].outstandingL2 != l2 {
			return fmt.Errorf("thread %d outstandingL2 %d, slab says %d", th, m.threads[th].outstandingL2, l2)
		}
		if m.threads[th].outstandingDMiss != dm {
			return fmt.Errorf("thread %d outstandingDMiss %d, slab says %d", th, m.threads[th].outstandingDMiss, dm)
		}
	}

	// Wakeup bookkeeping. Walk every live producer's consumer chain:
	// each link must name a live consumer whose wait bit for the linked
	// operand slot is set and whose source ref for that slot points back
	// at the producer.
	registered := map[wakeRef]bool{}
	for i := range m.slab {
		pIdx := int32(i)
		if !live[pIdx] {
			continue
		}
		p := &m.slab[pIdx]
		for l := p.wakeHead; l.gen != 0; {
			c := m.get(ref{idx: l.idx, gen: l.gen})
			if c == nil {
				return fmt.Errorf("slot %d wakeup chain holds a stale link", pIdx)
			}
			if c.waitMask&(1<<l.slot) == 0 {
				return fmt.Errorf("slot %d wakeup chain links slot %d operand %d whose wait bit is clear", pIdx, l.idx, l.slot)
			}
			src := c.src1
			if l.slot == 1 {
				src = c.src2
			}
			if src.idx != pIdx || m.slab[pIdx].gen != src.gen {
				return fmt.Errorf("slot %d wakeup chain links slot %d operand %d which reads a different producer", pIdx, l.idx, l.slot)
			}
			if registered[l] {
				return fmt.Errorf("slot %d operand %d registered twice", l.idx, l.slot)
			}
			registered[l] = true
			l = c.wakeNext[l.slot]
		}
	}
	// Conversely: every live instruction's set wait bit has exactly one
	// chain registration (counted above), its producer is live and not
	// done, and done or issued instructions wait on nothing. Live,
	// unissued instructions with no pending operands must be in the ready
	// queue.
	inReady := map[ref]int{}
	var prevStamp uint64
	for i, ent := range m.readyQ {
		inReady[ent.r]++
		if i > 0 && ent.stamp <= prevStamp {
			return fmt.Errorf("ready queue out of stamp order at %d", i)
		}
		prevStamp = ent.stamp
	}
	for i := range m.slab {
		idx := int32(i)
		if !live[idx] {
			continue
		}
		e := &m.slab[idx]
		r := ref{idx: idx, gen: e.gen}
		if (e.issued || e.done) && e.waitMask != 0 {
			return fmt.Errorf("slot %d issued/done but still waiting on operands (mask %#x)", idx, e.waitMask)
		}
		for slot := uint8(0); slot < 2; slot++ {
			reg := wakeRef{idx: idx, gen: e.gen, slot: slot}
			if e.waitMask&(1<<slot) != 0 {
				if !registered[reg] {
					return fmt.Errorf("slot %d operand %d wait bit set but not on its producer's chain", idx, slot)
				}
				src := e.src1
				if slot == 1 {
					src = e.src2
				}
				p := m.get(src)
				if p == nil || p.done {
					return fmt.Errorf("slot %d operand %d waits on an unavailable producer", idx, slot)
				}
			} else if registered[reg] {
				return fmt.Errorf("slot %d operand %d on a wakeup chain but wait bit clear", idx, slot)
			}
		}
		if !e.issued && e.waitMask == 0 && inReady[r] != 1 {
			return fmt.Errorf("slot %d ready but has %d ready-queue entries", idx, inReady[r])
		}
		if e.issued && inReady[r] != 0 {
			return fmt.Errorf("slot %d issued but still in the ready queue", idx)
		}
	}

	// Resource-table conservation and stats aggregation.
	if err := m.res.CheckConservation(); err != nil {
		return err
	}
	want := Total(m.PerThreadStats())
	want.Cycles = m.cycles
	if got := m.Stats(); got != want {
		return fmt.Errorf("machine stats %+v do not aggregate per-thread stats %+v", got, want)
	}
	return nil
}
