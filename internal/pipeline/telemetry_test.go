package pipeline

import (
	"testing"

	"smthill/internal/telemetry"
	"smthill/internal/trace"
)

// TestRecorderCountsCycles checks the basic accounting identities of an
// attached recorder: every cycle is recorded, every cycle contributes one
// occupancy sample per thread, and per-thread stall attributions never
// exceed the cycle count.
func TestRecorderCountsCycles(t *testing.T) {
	m := newMachine(t, 2, []trace.Profile{ilpProfile(1), memProfile(2)}, nil)
	rec := telemetry.NewRecorder(2)
	m.SetRecorder(rec)

	const cycles = 30_000
	m.CycleN(cycles)

	if rec.Cycles != cycles {
		t.Fatalf("rec.Cycles = %d, want %d", rec.Cycles, cycles)
	}
	for th := range rec.Threads {
		tc := &rec.Threads[th]
		if tc.IQOcc.Count != cycles || tc.ROBOcc.Count != cycles {
			t.Errorf("thread %d occupancy samples = %d/%d, want %d each",
				th, tc.IQOcc.Count, tc.ROBOcc.Count, cycles)
		}
		var fetch, dispatch uint64
		for _, v := range tc.Fetch {
			fetch += v
		}
		for _, v := range tc.Dispatch {
			dispatch += v
		}
		if fetch > cycles || dispatch > cycles {
			t.Errorf("thread %d attributes more stalls than cycles: fetch=%d dispatch=%d",
				th, fetch, dispatch)
		}
	}
	// A memory-bound thread sharing the machine must show *some* stall
	// attribution: a fully clean run means the classifier is dead code.
	tot := rec.Totals()
	var stalls uint64
	for k, v := range tot {
		if k != "cycles" && k != "occ.iq" && k != "occ.rob" {
			stalls += v
		}
	}
	if stalls == 0 {
		t.Fatal("no stall attribution recorded over a contended run")
	}
}

// TestRecorderStalledMachine checks that whole-machine stalls (the
// hill-climber's charged software overhead) are counted and excluded from
// per-thread attribution.
func TestRecorderStalledMachine(t *testing.T) {
	m := newMachine(t, 1, []trace.Profile{ilpProfile(3)}, nil)
	rec := telemetry.NewRecorder(1)
	m.SetRecorder(rec)

	m.Stall(200)
	m.CycleN(1000)

	if rec.Stalled != 200 {
		t.Fatalf("rec.Stalled = %d, want 200", rec.Stalled)
	}
	if rec.Cycles != 1000 {
		t.Fatalf("rec.Cycles = %d, want 1000", rec.Cycles)
	}
}

// TestCloneDropsRecorder: speculative trial clones must not pollute the
// parent run's attribution.
func TestCloneDropsRecorder(t *testing.T) {
	m := newMachine(t, 1, []trace.Profile{ilpProfile(4)}, nil)
	m.SetRecorder(telemetry.NewRecorder(1))
	m.CycleN(100)

	c := m.Clone()
	if c.Recorder() != nil {
		t.Fatal("Clone kept the parent's recorder")
	}
	before := m.Recorder().Cycles
	c.CycleN(500)
	if got := m.Recorder().Cycles; got != before {
		t.Fatalf("clone cycles leaked into parent recorder: %d -> %d", before, got)
	}
}

// TestPerThreadStatsAggregate checks the satellite split: per-thread
// stats exist, are individually plausible, and Total() reproduces the
// aggregate Stats the rest of the codebase compares.
func TestPerThreadStatsAggregate(t *testing.T) {
	m := newMachine(t, 2, []trace.Profile{ilpProfile(5), memProfile(6)}, nil)
	m.CycleN(30_000)

	per := m.PerThreadStats()
	if len(per) != 2 {
		t.Fatalf("PerThreadStats returned %d entries", len(per))
	}
	agg := Total(per)
	agg.Cycles = m.Stats().Cycles
	if agg != m.Stats() {
		t.Fatalf("Total(PerThreadStats()) = %+v != Stats() = %+v", agg, m.Stats())
	}
	for th, ts := range per {
		if ts != m.ThreadStats(th) {
			t.Errorf("ThreadStats(%d) disagrees with PerThreadStats()[%d]", th, th)
		}
		if ts.Committed == 0 {
			t.Errorf("thread %d committed nothing", th)
		}
		if ts.Committed != m.Committed(th) {
			t.Errorf("thread %d: stats.Committed=%d, Committed()=%d", th, ts.Committed, m.Committed(th))
		}
	}
}

// TestSetRecorderThreadMismatchPanics pins the misuse guard.
func TestSetRecorderThreadMismatchPanics(t *testing.T) {
	m := newMachine(t, 2, []trace.Profile{ilpProfile(7), ilpProfile(8)}, nil)
	defer func() {
		if recover() == nil {
			t.Fatal("SetRecorder with wrong thread count did not panic")
		}
	}()
	m.SetRecorder(telemetry.NewRecorder(1))
}
