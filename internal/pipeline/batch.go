// Batched lock-step simulation. The learning loops of internal/core are
// dominated by evaluating *sibling* configurations of the same workload
// prefix: the checkpoint-based searchers re-simulate an identical
// committed-path instruction sequence under K slightly different
// resource partitions. Run independently, those K machines each pay the
// full trace-generation and decode cost for byte-identical instruction
// content. A MachineBatch advances the K siblings in lock-step chunks
// over one shared decoded stream (isa.Fanout), so production happens
// once per fetched instruction instead of K times, and lays the members'
// hot state out member-major in shared arenas so each member's chunk
// walks a contiguous region instead of K scattered heaps.
//
// Divergence contract: members may diverge in fetch *timing* (a member
// with a tighter partition stalls on different cycles) but never in
// fetch *content* — every member consumes the identical decoded prefix,
// by construction of the fan-out, and a member that somehow fell behind
// a trimmed window fails loudly. The per-cycle FNV golden tests pin a
// batch member's execution to a standalone machine's, cycle for cycle.
package pipeline

import (
	"fmt"

	"smthill/internal/isa"
	"smthill/internal/resource"
)

// DefaultBatchChunk is the lock-step granularity of CycleAllN: each
// member advances this many cycles before the next member runs. Small
// enough that the shared fan-out window stays hot in cache between the
// leader producing it and the laggards re-reading it; large enough that
// a member's ~0.5MB private state is not reloaded per handful of cycles.
const DefaultBatchChunk = 512

// Slack mirrored from the compaction thresholds in stages.go: rob is
// compacted once robHead reaches 256, pending once pendingHead reaches
// 512. Arena capacities add them so steady-state compaction never
// outgrows the carved backing. (Outgrowing is safe — the slice detaches
// onto its own allocation — just no longer arena-resident.)
const (
	robArenaSlack     = 256 + 16
	pendingArenaSlack = 512 + 64
)

// MachineBatch is K clones of a source machine advancing in lock-step
// over a shared decoded instruction stream. Members are refilled in
// place from a source checkpoint via the pooled CloneInto path, run
// together through CycleAll/CycleAllN, and individually detached (Swap)
// when a trial wins adoption.
type MachineBatch struct {
	src     *Machine
	members []*Machine
	// feeds holds one shared fan-out per hardware context seat.
	feeds []*isa.Fanout
	chunk int

	// workers > 1 runs each lock-step chunk's members on persistent
	// worker goroutines (multi-core hosts); 1 runs them serially.
	workers int
	work    chan batchSpan
	ack     chan struct{}
}

// batchSpan is one worker's assignment for one lock-step chunk.
type batchSpan struct {
	lo, hi, cycles int
}

// BatchFrom builds a K-member batch over src. It takes over src's
// instruction streams, re-binding each to a shared fan-out reader (the
// sequence src observes is unchanged); src itself is NOT a member and is
// never advanced by the batch — it is the refill checkpoint. Members
// are created immediately as clones of src with arena-backed hot state.
func BatchFrom(src *Machine, k int) *MachineBatch {
	if k < 1 {
		panic(fmt.Sprintf("pipeline: BatchFrom with %d members", k))
	}
	b := &MachineBatch{
		src:     src,
		members: make([]*Machine, k),
		chunk:   DefaultBatchChunk,
		workers: 1,
	}
	b.adoptSource(src)
	ar := newBatchArena(src, k)
	for i := range b.members {
		b.members[i] = cloneIntoArena(src, ar, i)
	}
	return b
}

// adoptSource re-derives the per-seat fan-outs from src's streams,
// wrapping any stream that is not already a fan-out reader. Adopting a
// machine whose readers already sit on this batch's fan-outs (the usual
// trial-winner promotion) is a no-op beyond bookkeeping.
func (b *MachineBatch) adoptSource(src *Machine) {
	b.src = src
	if cap(b.feeds) < len(src.threads) {
		b.feeds = make([]*isa.Fanout, len(src.threads))
	}
	b.feeds = b.feeds[:len(src.threads)]
	for t := range src.threads {
		s := src.threads[t].stream
		if r, ok := s.(*isa.FanoutReader); ok {
			b.feeds[t] = r.Fanout()
			continue
		}
		f := isa.NewFanout(s)
		src.threads[t].stream = f.Origin()
		b.feeds[t] = f
	}
}

// K returns the member count.
func (b *MachineBatch) K() int { return len(b.members) }

// Member returns member i. Callers may configure it (shares, recorder,
// policy) between Refill and CycleAllN, and read its statistics after.
func (b *MachineBatch) Member(i int) *Machine { return b.members[i] }

// Src returns the current refill checkpoint.
func (b *MachineBatch) Src() *Machine { return b.src }

// SetChunk overrides the lock-step granularity (DefaultBatchChunk).
func (b *MachineBatch) SetChunk(n int) {
	if n < 1 {
		n = 1
	}
	b.chunk = n
}

// Refill overwrites every member with a fresh checkpoint of src via the
// pooled CloneInto path and trims the shared windows to the checkpoint
// position. Passing nil refills from the current source.
func (b *MachineBatch) Refill(src *Machine) { b.RefillN(src, len(b.members)) }

// RefillN refills only the first n members — a partial wave when fewer
// candidates remain than the batch holds. The remaining members keep
// their stale state and must not be advanced.
func (b *MachineBatch) RefillN(src *Machine, n int) {
	if src == nil {
		src = b.src
	}
	if src != b.src || b.feedsStale(src) {
		b.adoptSource(src)
	}
	for i := 0; i < n; i++ {
		if b.members[i] == nil {
			b.members[i] = src.Clone()
		} else {
			src.CloneInto(b.members[i])
		}
	}
	b.trimToSource()
}

// feedsStale reports whether any of src's streams is no longer a reader
// of the recorded per-seat fan-out. Context migration (multicore thread
// swaps) replaces a seat's stream wholesale; refilling re-adopts so the
// batch follows the seat's current stream instead of trimming a fan-out
// the source no longer reads.
func (b *MachineBatch) feedsStale(src *Machine) bool {
	if len(b.feeds) != len(src.threads) {
		return true
	}
	for t := range src.threads {
		r, ok := src.threads[t].stream.(*isa.FanoutReader)
		if !ok || r.Fanout() != b.feeds[t] {
			return true
		}
	}
	return false
}

// trimToSource discards fan-out window prefixes below the checkpoint's
// read positions. Every live reader outside the batch was cloned from
// the source at or after this position, so nothing can read below it.
func (b *MachineBatch) trimToSource() {
	for t, f := range b.feeds {
		if f == nil {
			continue
		}
		if r, ok := b.src.threads[t].stream.(*isa.FanoutReader); ok {
			f.TrimTo(r.Pos())
		}
	}
}

// Swap replaces member i with repl (which must be shaped like the other
// members, or nil to leave the slot empty until the next Refill clones
// it afresh) and returns the outgoing member. This is how a winning
// trial is promoted to the live machine: the caller takes the winner out
// and hands the dethroned live machine back as the replacement.
func (b *MachineBatch) Swap(i int, repl *Machine) *Machine {
	out := b.members[i]
	b.members[i] = repl
	return out
}

// CycleAll advances every member one cycle, member-major. It is the
// batch's hot entry point and must not allocate in the steady state
// (enforced by the hotalloc lint root and the alloc regression test).
func (b *MachineBatch) CycleAll() {
	for _, m := range b.members {
		m.Cycle()
	}
}

// CycleAllN advances every member n cycles in lock-step chunks.
func (b *MachineBatch) CycleAllN(n int) { b.CycleFirstN(len(b.members), n) }

// CycleFirstN advances only members [0, k) by n cycles in lock-step
// chunks — the partial-wave companion of RefillN.
func (b *MachineBatch) CycleFirstN(k, n int) {
	if k > len(b.members) {
		k = len(b.members)
	}
	for done := 0; done < n; {
		c := b.chunk
		if c > n-done {
			c = n - done
		}
		if b.workers > 1 && k > 1 {
			b.chunkParallel(k, c)
		} else {
			for i := 0; i < k; i++ {
				b.members[i].CycleN(c)
			}
		}
		done += c
	}
}

// SetParallel runs each lock-step chunk's members on w persistent worker
// goroutines. The fan-out windows are pre-filled and frozen for the
// duration of a chunk, so workers share only read-only state; execution
// is bit-identical to the serial order because members never communicate.
// w <= 1 restores serial mode. Call Close when done with a parallel
// batch to stop the workers. Machines attached to a shared L3 refuse
// parallel mode: the L3 is mutable shared state.
func (b *MachineBatch) SetParallel(w int) {
	if w > len(b.members) {
		w = len(b.members)
	}
	if w <= 1 {
		b.Close()
		b.workers = 1
		return
	}
	for _, m := range b.members {
		if m != nil && m.mem.L3() != nil {
			panic("pipeline: parallel MachineBatch over a shared L3")
		}
	}
	b.Close()
	b.workers = w
	b.work = make(chan batchSpan)
	b.ack = make(chan struct{})
	for i := 0; i < w; i++ {
		go b.worker()
	}
}

// Close stops the persistent workers of a parallel batch (no-op in
// serial mode). The batch remains usable serially afterwards.
func (b *MachineBatch) Close() {
	if b.work != nil {
		close(b.work)
		b.work, b.ack = nil, nil
	}
	b.workers = 1
}

func (b *MachineBatch) worker() {
	for s := range b.work {
		for i := s.lo; i < s.hi; i++ {
			b.members[i].CycleN(s.cycles)
		}
		b.ack <- struct{}{}
	}
}

// chunkParallel runs one chunk of c cycles for members [0, k) across the
// persistent workers. The fetch stage pulls at most FetchWidth
// instructions per seat per cycle, so pre-filling each window to
// maxPos + c*FetchWidth guarantees no worker ever touches the source.
func (b *MachineBatch) chunkParallel(k, c int) {
	for t, f := range b.feeds {
		if f == nil {
			continue
		}
		var maxPos uint64
		for i := 0; i < k; i++ {
			if r, ok := b.members[i].threads[t].stream.(*isa.FanoutReader); ok && r.Pos() > maxPos {
				maxPos = r.Pos()
			}
		}
		f.Ensure(maxPos + uint64(c*b.src.cfg.FetchWidth))
		f.Freeze(true)
	}
	per := (k + b.workers - 1) / b.workers
	spans := 0
	for lo := 0; lo < k; lo += per {
		hi := lo + per
		if hi > k {
			hi = k
		}
		b.work <- batchSpan{lo: lo, hi: hi, cycles: c}
		spans++
	}
	for ; spans > 0; spans-- {
		<-b.ack
	}
	for _, f := range b.feeds {
		if f != nil {
			f.Freeze(false)
		}
	}
}

// batchArena owns the member-major backing arrays of a batch's hot
// state: conceptually a structure of arrays indexed [member][slot], so
// member i's slab, free list, ready queue, completion ring, and
// per-thread buffers occupy one contiguous stripe.
type batchArena struct {
	slabSize  int
	freeCap   int
	readyCap  int
	ringSlots int
	robCap    int
	pendCap   int
	threads   int

	slab  []inflight
	free  []int32
	ready []readyEnt
	ring  []ref
	rob   []ref
	pend  []isa.Inst
}

func newBatchArena(src *Machine, k int) *batchArena {
	a := &batchArena{
		slabSize:  len(src.slab),
		freeCap:   len(src.slab),
		readyCap:  len(src.slab),
		ringSlots: len(src.doneRing),
		robCap:    src.cfg.Resources[resource.ROB] + robArenaSlack,
		pendCap:   src.cfg.Resources[resource.ROB] + src.cfg.IFQSize + pendingArenaSlack,
		threads:   len(src.threads),
	}
	a.slab = make([]inflight, k*a.slabSize)
	a.free = make([]int32, k*a.freeCap)
	a.ready = make([]readyEnt, k*a.readyCap)
	a.ring = make([]ref, k*a.ringSlots*ringSlotCap)
	a.rob = make([]ref, k*a.threads*a.robCap)
	a.pend = make([]isa.Inst, k*a.threads*a.pendCap)
	return a
}

// stripe carves [i*size, (i+1)*size) with a hard capacity so an
// overflowing append detaches onto its own backing instead of bleeding
// into the next member's stripe.
func stripe[T any](arena []T, i, size int) []T {
	return arena[i*size : i*size : (i+1)*size]
}

// cloneIntoArena builds member i of a batch: a deep copy of src whose
// hot slices are carved from the arena's member-major stripes. It
// mirrors Machine.Clone except for where the backing arrays live.
func cloneIntoArena(src *Machine, a *batchArena, i int) *Machine {
	c := *src
	c.rec = nil
	c.res = src.res.Clone()
	c.mem = src.mem.Clone()
	c.bp = src.bp.Clone()

	c.slab = append(stripe(a.slab, i, a.slabSize), src.slab...)
	c.free = append(stripe(a.free, i, a.freeCap), src.free...)
	c.readyQ = append(stripe(a.ready, i, a.readyCap), src.readyQ...)
	c.doneRing = make([][]ref, a.ringSlots)
	for s := range c.doneRing {
		slot := stripe(a.ring, i*a.ringSlots+s, ringSlotCap)
		c.doneRing[s] = append(slot, src.doneRing[s]...)
	}
	c.policy = src.policy.Clone()
	c.fetchDisabled = append([]bool(nil), src.fetchDisabled...)
	if src.inv != nil {
		c.inv = src.inv.clone()
	}
	c.threads = make([]threadState, len(src.threads))
	for t := range src.threads {
		ts := src.threads[t]
		ts.pending = append(stripe(a.pend, i*a.threads+t, a.pendCap), ts.pending...)
		ts.rob = append(stripe(a.rob, i*a.threads+t, a.robCap), ts.rob...)
		ts.stream = ts.stream.CloneStream()
		c.threads[t] = ts
	}
	return &c
}
