package pipeline

import (
	"smthill/internal/isa"
	"smthill/internal/trace"
	"testing"
)

func BenchmarkCycleSpeed(b *testing.B) {
	streams := []isa.Stream{trace.New(ilpProfile(1)), trace.New(memProfile(2))}
	m := New(DefaultConfig(2), streams, nil)
	b.ResetTimer()
	m.CycleN(b.N)
}

func TestReportIPCs(t *testing.T) {
	for _, p := range []trace.Profile{ilpProfile(1), memProfile(2)} {
		m := New(DefaultConfig(1), []isa.Stream{trace.New(p)}, nil)
		m.CycleN(200_000)
		t.Logf("%s solo IPC = %.3f mispredict=%.3f dl1miss=%.3f l2miss=%.3f",
			p.Name, float64(m.Committed(0))/200_000, m.MispredictRate(),
			m.Mem().DL1.Stats.MissRate(), m.Mem().UL2.Stats.MissRate())
	}
}
