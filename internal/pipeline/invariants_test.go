package pipeline

import (
	"strings"
	"testing"

	"smthill/internal/isa"
	"smthill/internal/resource"
	"smthill/internal/rng"
	"smthill/internal/trace"
)

// TestInvariantsUnderRandomizedStress runs random machines with random
// partition changes and random policy flushes, checking the full
// bookkeeping every few cycles. Per-cycle checking (the -check mode) is
// enabled on top, so its cheap asserts run every cycle of every trial.
func TestInvariantsUnderRandomizedStress(t *testing.T) {
	r := rng.New(2024)
	for trial := 0; trial < 6; trial++ {
		threads := 1 + r.Intn(4)
		profs := make([]trace.Profile, threads)
		streams := make([]isa.Stream, threads)
		for i := range profs {
			if r.Bool(0.5) {
				profs[i] = memProfile(r.Uint64())
			} else {
				profs[i] = ilpProfile(r.Uint64())
			}
			streams[i] = trace.New(profs[i])
		}
		m := New(DefaultConfig(threads), streams, nil)
		m.SetInvariantChecks(true)
		total := m.Resources().Sizes()[resource.IntRename]
		for c := 0; c < 6_000; c++ {
			m.Cycle()
			if c%97 == 0 {
				// Random partition move.
				shares := resource.EqualShares(threads, total)
				for k := 0; k < 5; k++ {
					shares = shares.Shift(r.Intn(threads), 4+r.Intn(8))
				}
				m.Resources().SetShares(shares)
			}
			if c%211 == 0 {
				// Random flush of a random thread.
				th := r.Intn(threads)
				if rob := m.threads[th].liveROB(); len(rob) > 1 {
					cut := rob[r.Intn(len(rob))]
					if e := m.get(cut); e != nil {
						m.FlushAfter(th, e.inst.Seq)
					}
				}
			}
			if c%53 == 0 {
				if err := m.CheckInvariants(); err != nil {
					t.Fatalf("trial %d cycle %d: %v", trial, c, err)
				}
			}
		}
		// Final deep check plus clone equivalence.
		if err := m.CheckInvariants(); err != nil {
			t.Fatalf("trial %d final: %v", trial, err)
		}
		c := m.Clone()
		if !c.InvariantChecks() {
			t.Fatal("clone dropped invariant-checking mode")
		}
		if err := c.CheckInvariants(); err != nil {
			t.Fatalf("trial %d clone: %v", trial, err)
		}
	}
}

// TestCorruptedSharesTripConservationCheck programs a share vector whose
// sum does not match the rename file and expects the per-cycle
// conservation check to catch it.
func TestCorruptedSharesTripConservationCheck(t *testing.T) {
	threads := 2
	streams := []isa.Stream{
		trace.New(ilpProfile(1)),
		trace.New(memProfile(2)),
	}
	m := New(DefaultConfig(threads), streams, nil)
	m.SetInvariantChecks(true)
	m.CycleN(100)

	total := m.Resources().Sizes()[resource.IntRename]
	bad := resource.EqualShares(threads, total)
	bad[0] -= 16 // sum now short by 16: registers leaked out of the machine
	m.Resources().SetShares(bad)

	defer func() {
		rec := recover()
		if rec == nil {
			t.Fatal("corrupted share vector did not trip the conservation check")
		}
		msg, ok := rec.(string)
		if !ok || !strings.Contains(msg, "shares sum") {
			panic(rec) // not our panic; let it propagate
		}
	}()
	m.Cycle()
}

// TestCheckInvariantsReportsCorruption corrupts bookkeeping directly and
// expects CheckInvariants to return an error rather than nil.
func TestCheckInvariantsReportsCorruption(t *testing.T) {
	m := New(DefaultConfig(2), []isa.Stream{
		trace.New(ilpProfile(3)),
		trace.New(ilpProfile(4)),
	}, nil)
	m.CycleN(500)
	if err := m.CheckInvariants(); err != nil {
		t.Fatalf("healthy machine failed check: %v", err)
	}
	// Leak one ROB entry's worth of occupancy.
	m.res.Free(0, resource.ROB)
	if err := m.CheckInvariants(); err == nil {
		t.Fatal("CheckInvariants missed a leaked ROB entry")
	}
}

// TestInvariantChecksOffByDefault pins the zero-cost-when-off contract's
// functional half: no checking state exists unless requested.
func TestInvariantChecksOffByDefault(t *testing.T) {
	m := New(DefaultConfig(1), []isa.Stream{trace.New(ilpProfile(5))}, nil)
	if m.InvariantChecks() {
		t.Fatal("invariant checks on by default")
	}
	m.SetInvariantChecks(true)
	if !m.InvariantChecks() {
		t.Fatal("SetInvariantChecks(true) did not enable checking")
	}
	m.SetInvariantChecks(false)
	if m.InvariantChecks() {
		t.Fatal("SetInvariantChecks(false) did not disable checking")
	}
}
