package pipeline

import (
	"fmt"
	"testing"

	"smthill/internal/isa"
	"smthill/internal/resource"
	"smthill/internal/rng"
	"smthill/internal/trace"
)

// liveSlots returns the set of slab indices not on the free list.
func (m *Machine) liveSlots() map[int32]bool {
	free := map[int32]bool{}
	for _, idx := range m.free {
		free[idx] = true
	}
	live := map[int32]bool{}
	for i := range m.slab {
		if !free[int32(i)] {
			live[int32(i)] = true
		}
	}
	return live
}

// checkInvariants recomputes all occupancy counters from the slab and
// cross-checks the machine's bookkeeping.
func (m *Machine) checkInvariants() error {
	live := m.liveSlots()

	// Every ROB entry references a live slot with a matching generation,
	// in increasing sequence order per thread.
	robSet := map[int32]bool{}
	for th := range m.threads {
		var prevSeq uint64
		for i, r := range m.threads[th].rob {
			e := m.get(r)
			if e == nil {
				return fmt.Errorf("thread %d ROB[%d] is stale", th, i)
			}
			if !live[r.idx] {
				return fmt.Errorf("thread %d ROB[%d] references a freed slot", th, i)
			}
			if int(e.thread) != th {
				return fmt.Errorf("thread %d ROB entry belongs to thread %d", th, e.thread)
			}
			if i > 0 && e.inst.Seq <= prevSeq {
				return fmt.Errorf("thread %d ROB out of order at %d", th, i)
			}
			prevSeq = e.inst.Seq
			robSet[r.idx] = true
		}
	}
	// Every live slot is in some ROB (no orphans).
	if len(robSet) != len(live) {
		return fmt.Errorf("%d live slots but %d ROB entries", len(live), len(robSet))
	}

	// Recompute occupancy per thread and kind.
	var occ [maxContexts][resource.NumKinds]int
	for idx := range live {
		e := &m.slab[idx]
		th := int(e.thread)
		occ[th][resource.ROB]++
		if e.holdsIQ == resource.IntIQ || e.holdsIQ == resource.FpIQ {
			occ[th][e.holdsIQ]++
		}
		if e.holdsLSQ {
			occ[th][resource.LSQ]++
		}
		if e.holdsIntR {
			occ[th][resource.IntRename]++
		}
		if e.holdsFpR {
			occ[th][resource.FpRename]++
		}
	}
	for th := range m.threads {
		for k := resource.Kind(0); k < resource.NumKinds; k++ {
			if got := m.res.Occ(th, k); got != occ[th][k] {
				return fmt.Errorf("thread %d %v occupancy %d, slab says %d", th, k, got, occ[th][k])
			}
		}
	}

	// Outstanding-miss counters match the slab.
	for th := range m.threads {
		l2, dm := 0, 0
		for idx := range live {
			e := &m.slab[idx]
			if int(e.thread) != th || e.done {
				continue
			}
			if e.l2miss {
				l2++
			}
			if e.dmiss {
				dm++
			}
		}
		if m.threads[th].outstandingL2 != l2 {
			return fmt.Errorf("thread %d outstandingL2 %d, slab says %d", th, m.threads[th].outstandingL2, l2)
		}
		if m.threads[th].outstandingDMiss != dm {
			return fmt.Errorf("thread %d outstandingDMiss %d, slab says %d", th, m.threads[th].outstandingDMiss, dm)
		}
	}
	return nil
}

// TestInvariantsUnderRandomizedStress runs random machines with random
// partition changes and random policy flushes, checking the full
// bookkeeping every few cycles.
func TestInvariantsUnderRandomizedStress(t *testing.T) {
	r := rng.New(2024)
	for trial := 0; trial < 6; trial++ {
		threads := 1 + r.Intn(4)
		profs := make([]trace.Profile, threads)
		streams := make([]isa.Stream, threads)
		for i := range profs {
			if r.Bool(0.5) {
				profs[i] = memProfile(r.Uint64())
			} else {
				profs[i] = ilpProfile(r.Uint64())
			}
			streams[i] = trace.New(profs[i])
		}
		m := New(DefaultConfig(threads), streams, nil)
		total := m.Resources().Sizes()[resource.IntRename]
		for c := 0; c < 6_000; c++ {
			m.Cycle()
			if c%97 == 0 {
				// Random partition move.
				shares := resource.EqualShares(threads, total)
				for k := 0; k < 5; k++ {
					shares = shares.Shift(r.Intn(threads), 4+r.Intn(8))
				}
				m.Resources().SetShares(shares)
			}
			if c%211 == 0 {
				// Random flush of a random thread.
				th := r.Intn(threads)
				if rob := m.threads[th].rob; len(rob) > 1 {
					cut := rob[r.Intn(len(rob))]
					if e := m.get(cut); e != nil {
						m.FlushAfter(th, e.inst.Seq)
					}
				}
			}
			if c%53 == 0 {
				if err := m.checkInvariants(); err != nil {
					t.Fatalf("trial %d cycle %d: %v", trial, c, err)
				}
			}
		}
		// Final deep check plus clone equivalence.
		if err := m.checkInvariants(); err != nil {
			t.Fatalf("trial %d final: %v", trial, err)
		}
		c := m.Clone()
		if err := c.checkInvariants(); err != nil {
			t.Fatalf("trial %d clone: %v", trial, err)
		}
	}
}
