package pipeline

import (
	"smthill/internal/bpred"
	"smthill/internal/cache"
	"smthill/internal/resource"
)

// FUConfig counts the functional units available each cycle (Table 1).
type FUConfig struct {
	IntAlu   int // integer adders/logic (branches execute here too)
	IntMul   int // integer multiply/divide units
	MemPorts int // load/store ports
	FpAlu    int // floating-point adders
	FpMul    int // floating-point multiply/divide units
}

// DefaultFUs returns the Table 1 functional-unit mix: 6 integer ALUs,
// 3 integer mul/div, 4 memory ports, 3 FP adders, 3 FP mul/div.
func DefaultFUs() FUConfig {
	return FUConfig{IntAlu: 6, IntMul: 3, MemPorts: 4, FpAlu: 3, FpMul: 3}
}

// Config describes the simulated SMT processor. DefaultConfig reproduces
// the paper's Table 1 machine.
type Config struct {
	// Threads is the number of hardware contexts.
	Threads int
	// FetchWidth, IssueWidth, CommitWidth are the per-cycle bandwidths
	// (8/8/8 in Table 1).
	FetchWidth  int
	IssueWidth  int
	CommitWidth int
	// FetchThreads is the number of threads fetch may draw from each
	// cycle (the "2" of an ICOUNT2.8-style front end).
	FetchThreads int
	// IFQSize is the per-thread instruction fetch queue depth. Table 1's
	// 32-entry IFQ is divided evenly across contexts.
	IFQSize int
	// MispredictPenalty is the front-end redirect latency charged when a
	// mispredicted branch resolves. Because the simulator is
	// trace-driven it does not execute wrong-path instructions; the
	// penalty subsumes the refill of the front end.
	MispredictPenalty int
	// Resources sizes the shared structures (Table 1).
	Resources resource.Sizes
	// FUs counts the functional units.
	FUs FUConfig
	// Bpred configures the branch predictor.
	Bpred bpred.Config
	// Mem configures the cache hierarchy.
	Mem cache.HierarchyConfig
}

// DefaultConfig returns the paper's Table 1 machine with the given number
// of hardware contexts.
func DefaultConfig(threads int) Config {
	ifq := 32 / threads
	if ifq < 8 {
		ifq = 8
	}
	return Config{
		Threads:           threads,
		FetchWidth:        8,
		IssueWidth:        8,
		CommitWidth:       8,
		FetchThreads:      2,
		IFQSize:           ifq,
		MispredictPenalty: 12,
		Resources:         resource.DefaultSizes(),
		FUs:               DefaultFUs(),
		Bpred:             bpred.Default(threads),
		Mem:               cache.DefaultHierarchy(),
	}
}
