package pipeline

import (
	"fmt"

	"smthill/internal/isa"
)

// ContextState is a thread's architectural state lifted out of a
// hardware context so it can be re-installed on another core: the point
// in its instruction stream (with any fetched-but-uncommitted
// instructions folded back in as a replay prefix) and its address-space
// base. Pipeline statistics deliberately stay with the hardware context
// — they are monotonic seat counters, and the multicore System does the
// per-logical-thread accounting across moves.
type ContextState struct {
	// Stream continues the thread's committed-path instruction sequence
	// exactly where the source core left off.
	Stream isa.Stream
	// AddrBase is the thread's address-space offset; it must travel
	// with the thread so its working set stays in one place in the
	// shared last-level cache.
	AddrBase uint64
}

// ExtractContext drains thread th out of the machine: every in-flight
// instruction is squashed (this is a migration, not a misprediction, so
// no flush statistics are charged), the fetched-but-uncommitted
// instructions become a replay prefix on the returned stream, and the
// hardware context is left empty and fetch-idle (exhausted). The
// returned ContextState owns the thread's stream; install it on another
// machine with InstallContext.
//
// This is the multicore migration primitive. It is never called on the
// single-core hot path.
func (m *Machine) ExtractContext(th int) ContextState {
	t := &m.threads[th]

	// Squash the whole ROB tail, youngest first, exactly as FlushAfter
	// does — but unconditionally and without charging flush stats.
	for len(t.rob) > t.robHead {
		r := t.rob[len(t.rob)-1]
		e := m.get(r)
		if e == nil {
			panic("pipeline: stale ref in ROB tail")
		}
		// A squashed in-flight L2 miss will never complete; tell the
		// policy so FLUSH/STALL-style triggers armed on it release.
		if e.l2miss && !e.done {
			m.policy.OnL2MissDone(m, th, e.inst.Seq)
		}
		m.squash(th, r, e)
		t.rob = t.rob[:len(t.rob)-1]
	}

	// Everything decoded but uncommitted replays on the new core.
	var prefix []isa.Inst
	if n := len(t.pending) - t.pendingHead; n > 0 {
		prefix = make([]isa.Inst, n)
		copy(prefix, t.pending[t.pendingHead:])
	}
	cs := ContextState{
		Stream:   isa.Prefixed(prefix, t.stream),
		AddrBase: t.addrBase,
	}

	if t.outstandingL2 != 0 || t.outstandingDMiss != 0 {
		panic(fmt.Sprintf("pipeline: ExtractContext(%d) left outstanding misses (L2=%d DL1=%d)",
			th, t.outstandingL2, t.outstandingDMiss))
	}

	// Leave the seat empty: no stream, no fetch, clean front end.
	t.stream = nil
	t.pending = t.pending[:0]
	t.pendingHead, t.dispatchCur, t.fetchCur = 0, 0, 0
	t.rob = t.rob[:0]
	t.robHead = 0
	t.exhausted = true
	t.fetchStall = 0
	t.mispredictPending = false
	t.fetchStallICache = false
	t.lastFetchBlock = 0
	for i := range t.rename {
		t.rename[i] = noRef
	}
	return cs
}

// InstallContext binds an extracted thread context to hardware context
// th, which must be empty (freshly built, or drained by a prior
// ExtractContext). The thread resumes fetching from the context's
// stream on the next cycle; its BBV restarts from zero on the new core.
func (m *Machine) InstallContext(th int, cs ContextState) {
	t := &m.threads[th]
	if len(t.rob) > t.robHead || len(t.pending) > t.pendingHead {
		panic(fmt.Sprintf("pipeline: InstallContext(%d) into a non-empty context", th))
	}
	if cs.Stream == nil {
		panic("pipeline: InstallContext with a nil stream")
	}
	t.stream = cs.Stream
	t.addrBase = cs.AddrBase
	t.pending = t.pending[:0]
	t.pendingHead, t.dispatchCur, t.fetchCur = 0, 0, 0
	t.rob = t.rob[:0]
	t.robHead = 0
	t.exhausted = false
	t.fetchStall = 0
	t.mispredictPending = false
	t.fetchStallICache = false
	t.lastFetchBlock = 0
	for i := range t.rename {
		t.rename[i] = noRef
	}
	t.bbv = [BBVEntries]uint32{}
	// The seat's program-order watermark belongs to the departed thread;
	// the incoming one has its own sequence numbering.
	if m.inv != nil {
		m.inv.lastCommitSeq[th] = 0
	}
}

// SetAddrBase overrides hardware context th's address-space base before
// simulation starts. The multicore System uses it to give every logical
// thread a globally disjoint region: the per-machine default bases
// repeat across cores and would alias different threads' working sets
// in the shared L3.
func (m *Machine) SetAddrBase(th int, base uint64) {
	m.threads[th].addrBase = base
}

// GlobalAddrBase returns the canonical address-space base for global
// logical thread g — the same stagger New applies per context, indexed
// by the system-wide thread id.
func GlobalAddrBase(g int) uint64 {
	return uint64(g)<<44 + uint64(g)*37*64
}
