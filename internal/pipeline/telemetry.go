package pipeline

import (
	"smthill/internal/resource"
	"smthill/internal/telemetry"
)

// record fills the attached telemetry recorder for the cycle that just
// ran: per-thread occupancy samples, L2-miss exposure, and one stall
// attribution each for fetch and dispatch. It runs only when a recorder
// is attached (one nil-check branch in Cycle), so the uninstrumented hot
// loop stays within the <2% overhead contract pinned by
// BenchmarkMachineTelemetryOff.
func (m *Machine) record(stalled bool) {
	rec := m.rec
	if rec == nil {
		return
	}
	rec.Cycles++
	if stalled {
		rec.Stalled++
	}
	for th := range m.threads {
		t := &m.threads[th]
		c := &rec.Threads[th]
		c.IQOcc.Observe(m.res.Occ(th, resource.IntIQ) + m.res.Occ(th, resource.FpIQ))
		c.ROBOcc.Observe(m.res.Occ(th, resource.ROB))
		if t.outstandingL2 > 0 {
			c.L2Outstanding++
		}
		if stalled {
			continue // the whole machine stalled; per-stage reasons don't apply
		}
		if r, ok := m.fetchStallReason(th); ok {
			c.Fetch[r]++
		}
		if r, ok := m.dispatchStallReason(th); ok {
			c.Dispatch[r]++
		}
	}
}

// fetchStallReason classifies why thread th could not fetch this cycle,
// mirroring canFetch's conditions in priority order. ok is false when
// fetch was not structurally blocked (the thread fetched, or merely lost
// the ICOUNT ranking / ran out of fetch bandwidth this cycle).
func (m *Machine) fetchStallReason(th int) (telemetry.FetchStall, bool) {
	t := &m.threads[th]
	switch {
	case m.fetchDisabled[th]:
		return telemetry.FetchDisabled, true
	case t.exhausted && t.fetchCur >= len(t.pending):
		return telemetry.FetchExhausted, true
	case t.mispredictPending:
		return telemetry.FetchMispredict, true
	case t.fetchStall > m.now:
		if t.fetchStallICache {
			return telemetry.FetchICache, true
		}
		return telemetry.FetchMispredict, true
	case t.fetchCur-t.dispatchCur >= m.cfg.IFQSize:
		return telemetry.FetchIFQFull, true
	case m.res.AtPartitionLimit(th):
		return telemetry.FetchPartition, true
	case m.policy.FetchLocked(m, th):
		return telemetry.FetchPolicy, true
	}
	return 0, false
}

// dispatchStallReason classifies which structure blocks thread th's
// in-order dispatch head, mirroring dispatchOne's allocation checks. ok
// is false when nothing is waiting to dispatch or the head is
// dispatchable (it was bandwidth-limited, not resource-blocked).
func (m *Machine) dispatchStallReason(th int) (telemetry.DispatchStall, bool) {
	t := &m.threads[th]
	if t.dispatchCur >= t.fetchCur {
		return 0, false
	}
	in := &t.pending[t.dispatchCur]
	if !m.res.CanAlloc(th, resource.ROB) {
		return telemetry.DispatchROBFull, true
	}
	if iq := neededIQ(in.Class); iq != resource.NumKinds && !m.res.CanAlloc(th, iq) {
		return telemetry.DispatchIQFull, true
	}
	if in.Class.IsMem() && !m.res.CanAlloc(th, resource.LSQ) {
		return telemetry.DispatchLSQFull, true
	}
	if in.HasDest() {
		k := resource.IntRename
		if in.DestIsFp() {
			k = resource.FpRename
		}
		if !m.res.CanAlloc(th, k) {
			return telemetry.DispatchRenameFull, true
		}
	}
	return 0, false
}
