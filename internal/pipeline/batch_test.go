package pipeline

import (
	"fmt"
	"hash"
	"hash/fnv"
	"testing"

	"smthill/internal/isa"
	"smthill/internal/resource"
)

// climberShares enumerates the share configurations a Delta-step hill
// climber can reach from the equal split within a few rounds: the
// breadth-first closure of Shares.Shift over all directions. These are
// exactly the sibling configurations the batched trial loops evaluate.
func climberShares(threads, total, delta, rounds int) []resource.Shares {
	seen := map[string]bool{}
	var out []resource.Shares
	add := func(s resource.Shares) bool {
		key := fmt.Sprint(s)
		if seen[key] {
			return false
		}
		seen[key] = true
		out = append(out, s)
		return true
	}
	frontier := []resource.Shares{resource.EqualShares(threads, total)}
	add(frontier[0])
	for r := 0; r < rounds; r++ {
		var next []resource.Shares
		for _, a := range frontier {
			for d := 0; d < threads; d++ {
				if s := a.Shift(d, delta); add(s) {
					next = append(next, s)
				}
			}
		}
		frontier = next
	}
	return out
}

// TestBatchMatchesIndependentMachines is the K-member-vs-K-machines
// determinism golden: a MachineBatch whose members run every
// climber-reachable share configuration must be per-cycle FNV-identical
// to K independently built and independently decoded machines running
// the same configurations. Fetch timing diverges across configurations;
// fetch content may not.
func TestBatchMatchesIndependentMachines(t *testing.T) {
	for _, s := range wakeupScenarios() {
		t.Run(s.name, func(t *testing.T) {
			shares := climberShares(2, DefaultConfig(2).Resources[resource.IntRename], 4, 2)
			k := len(shares)
			if k < 5 {
				t.Fatalf("only %d climber-reachable configurations", k)
			}

			// Independent reference: each machine owns a private copy of
			// the fixture streams, so decode genuinely happens K times.
			refs := make([]*Machine, k)
			for i := range refs {
				refs[i] = New(DefaultConfig(2), s.streams(), nil)
				refs[i].Resources().SetShares(shares[i])
			}

			src := New(DefaultConfig(2), s.streams(), nil)
			b := BatchFrom(src, k)
			for i := 0; i < k; i++ {
				b.Member(i).Resources().SetShares(shares[i])
			}

			for c := 0; c < s.cycles; c++ {
				b.CycleAll()
				for i := 0; i < k; i++ {
					refs[i].Cycle()
					got, want := traceHash(b.Member(i)), traceHash(refs[i])
					if got != want {
						t.Fatalf("member %d (shares %v) diverges at cycle %d: %016x != %016x",
							i, shares[i], c, got, want)
					}
				}
			}
		})
	}
}

// TestBatchSingleMemberReproducesGoldens replays the committed wakeup
// golden traces through a one-member batch: the batch path must
// reproduce the pinned standalone per-cycle hashes bit for bit, shared
// decode and arena layout notwithstanding.
func TestBatchSingleMemberReproducesGoldens(t *testing.T) {
	for _, s := range wakeupScenarios() {
		t.Run(s.name, func(t *testing.T) {
			want := runWakeupTrace(s)

			b := BatchFrom(New(DefaultConfig(2), s.streams(), nil), 1)
			m := b.Member(0)
			var got []string
			cum := newCumHash()
			for c := 0; c < s.cycles; c++ {
				if s.flushEvery > 0 && c > 0 && c%s.flushEvery == 0 {
					m.FlushAfter(0, m.Committed(0)+s.keep)
				}
				b.CycleAll()
				h := traceHash(m)
				cum.add(h)
				if c < 512 || c%64 == 0 {
					got = append(got, fmt.Sprintf("cycle %d hash %016x", c, h))
				}
			}
			got = append(got, fmt.Sprintf("cumulative %016x", cum.sum()))
			for th := 0; th < m.Threads(); th++ {
				st := m.ThreadStats(th)
				got = append(got, fmt.Sprintf(
					"final th%d fetched %d dispatched %d issued %d committed %d flushes %d flushed %d mispredicts %d",
					th, st.Fetched, st.Dispatched, st.Issued, st.Committed, st.Flushes, st.Flushed, st.Mispredicts))
			}

			if len(got) != len(want) {
				t.Fatalf("trace length %d, standalone %d", len(got), len(want))
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("batch trace diverges from standalone at line %d:\n  got  %s\n  want %s", i+1, got[i], want[i])
				}
			}
		})
	}
}

// TestBatchParallelMatchesSerial runs the same configured batch twice —
// serial and with 4 workers over frozen pre-filled windows — and
// requires identical per-member final hashes. Under -race this also
// proves the freeze discipline leaves workers sharing only read-only
// state.
func TestBatchParallelMatchesSerial(t *testing.T) {
	shares := climberShares(2, DefaultConfig(2).Resources[resource.IntRename], 4, 1)
	k := len(shares)
	run := func(workers int) []uint64 {
		s := wakeupScenarios()[0]
		b := BatchFrom(New(DefaultConfig(2), s.streams(), nil), k)
		defer b.Close()
		if workers > 1 {
			b.SetParallel(workers)
		}
		for i := 0; i < k; i++ {
			b.Member(i).Resources().SetShares(shares[i])
		}
		b.CycleAllN(2500)
		out := make([]uint64, k)
		for i := range out {
			out[i] = traceHash(b.Member(i))
		}
		return out
	}
	serial, parallel := run(1), run(4)
	for i := range serial {
		if serial[i] != parallel[i] {
			t.Fatalf("member %d: parallel hash %016x != serial %016x", i, parallel[i], serial[i])
		}
	}
}

// TestBatchRefillSwapAdoption exercises the trial-loop protocol: refill
// members from a checkpoint, advance, promote a winner via Swap (handing
// the dethroned source back as the replacement), refill the next wave
// from the winner. Every member must stay per-cycle identical to an
// independently maintained reference machine.
func TestBatchRefillSwapAdoption(t *testing.T) {
	s := wakeupScenarios()[1]
	shares := climberShares(2, DefaultConfig(2).Resources[resource.IntRename], 4, 1)
	k := len(shares)

	src := New(DefaultConfig(2), s.streams(), nil)
	ref := New(DefaultConfig(2), s.streams(), nil)
	b := BatchFrom(src, k)

	const epoch = 700
	winner := 0
	for round := 0; round < 3; round++ {
		b.Refill(nil)
		for i := 0; i < k; i++ {
			b.Member(i).Resources().SetShares(shares[i])
		}
		b.CycleAllN(epoch)

		// Reference: clone the reference checkpoint, run the winning
		// configuration independently, adopt it.
		winner = (winner + 2) % k
		refTrial := ref.Clone()
		refTrial.Resources().SetShares(shares[winner])
		refTrial.CycleN(epoch)
		ref = refTrial

		promoted := b.Swap(winner, b.Src())
		if got, want := traceHash(promoted), traceHash(ref); got != want {
			t.Fatalf("round %d: promoted winner hash %016x != reference %016x", round, got, want)
		}
		b.RefillN(promoted, 0) // adopt as source without touching members yet
	}
}

// cumHashT accumulates per-cycle hashes exactly as runWakeupTrace does.
type cumHashT struct{ h hash.Hash64 }

func newCumHash() cumHashT { return cumHashT{h: fnv.New64a()} }

func (c cumHashT) add(v uint64) {
	var buf [8]byte
	for i := 0; i < 8; i++ {
		buf[i] = byte(v >> (8 * i))
	}
	c.h.Write(buf[:])
}

func (c cumHashT) sum() uint64 { return c.h.Sum64() }

// TestBatchSteadyStateAllocFree pins the batch trial loop's
// zero-allocation contract: after the first refill+run round has grown
// every buffer to its high-water mark, further rounds (pooled refill,
// shared-window fill, lock-step chunks) allocate nothing.
func TestBatchSteadyStateAllocFree(t *testing.T) {
	streams := func() []isa.Stream {
		return []isa.Stream{
			newLoopStream(chainFixture(4000)),
			newLoopStream(l2missFixture(3000)),
		}
	}
	src := New(DefaultConfig(2), streams(), nil)
	src.CycleN(5000) // reach pipeline steady state before batching
	b := BatchFrom(src, 4)
	round := func() {
		b.Refill(nil)
		b.CycleAllN(2000)
	}
	round()
	round()
	if allocs := testing.AllocsPerRun(10, round); allocs != 0 {
		t.Fatalf("steady-state batch round allocates %.1f, want 0", allocs)
	}
}

// loopStream repeats a fixture forever with re-stamped monotonic
// sequence numbers, so alloc tests can run unbounded.
type loopStream struct {
	insts []isa.Inst
	pos   int
	seq   uint64
}

func newLoopStream(insts []isa.Inst) *loopStream { return &loopStream{insts: insts} }

func (s *loopStream) Next(out *isa.Inst) bool {
	*out = s.insts[s.pos]
	s.pos = (s.pos + 1) % len(s.insts)
	s.seq++
	out.Seq = s.seq
	return true
}

func (s *loopStream) CloneStream() isa.Stream {
	c := *s
	return &c
}
