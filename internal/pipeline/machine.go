// Package pipeline implements the cycle-level out-of-order SMT processor
// model that the paper's resource distribution techniques run on.
//
// The model is trace-driven: each hardware context is bound to an
// isa.Stream supplying its committed-path instructions. Every cycle the
// machine commits, writes back, issues, dispatches, and fetches, subject
// to the Table 1 bandwidths, functional units, and shared-structure
// capacities tracked by internal/resource. Fetch bandwidth is distributed
// with the ICOUNT policy; explicit resource partitions (set through
// Resources().SetShares) fetch-lock a thread that has reached its limit in
// any partitioned structure, exactly as described in Section 3.2 of the
// paper.
//
// The entire machine state is deep-copyable via Clone, which is the
// checkpoint primitive used by the paper's OFF-LINE exhaustive learning
// and RAND-HILL algorithms: a clone replays the identical future
// execution. To keep cloning structural, in-flight instructions live in a
// flat slab and refer to each other through index+generation references.
package pipeline

import (
	"fmt"

	"smthill/internal/bpred"
	"smthill/internal/cache"
	"smthill/internal/isa"
	"smthill/internal/resource"
	"smthill/internal/telemetry"
)

// ref identifies an in-flight instruction slot; gen detects slot reuse, so
// a stale ref (its producer has committed or been squashed) simply reads
// as "ready".
type ref struct {
	idx int32
	gen uint32
}

// noRef is the canonical "no producer / ready" reference (gen 0 is never a
// live generation).
var noRef = ref{-1, 0}

// wakeRef is one link in a producer's intrusive wakeup chain: it names a
// consumer slot plus which of the consumer's two source operands the
// producer feeds, so the chain can continue through the consumer's
// wakeNext[slot]. The zero value (gen 0) terminates a chain.
type wakeRef struct {
	idx  int32
	gen  uint32
	slot uint8
}

// readyEnt is one ready-queue entry: an instruction whose operands are
// all available, keyed by its dispatch stamp for age ordering.
type readyEnt struct {
	r     ref
	stamp uint64
}

// inflight is one instruction between dispatch and commit.
type inflight struct {
	gen    uint32
	inst   isa.Inst
	thread int8

	issued bool
	done   bool

	// src1, src2 point at the producing in-flight instructions (noRef or
	// stale = operand ready).
	src1, src2 ref
	// prevDest is the rename-table entry displaced by this instruction's
	// destination, restored on squash.
	prevDest ref

	// stamp is the instruction's global dispatch order, the age key of
	// the ready queue.
	stamp uint64
	// wakeHead is the head of this instruction's consumer chain: in-flight
	// instructions to wake when it completes. wakeNext holds this
	// instruction's own links within its producers' chains, one per
	// source operand; waitMask has bit s set while operand s's
	// registration is outstanding (waitMask == 0 means all operands
	// available).
	wakeHead wakeRef
	wakeNext [2]wakeRef
	waitMask uint8

	// dmiss marks a load that missed in the DL1; l2miss marks a load
	// that also missed in the L2 (memory-bound).
	dmiss  bool
	l2miss bool
	// mispredicted marks a branch whose fetch-time prediction was wrong.
	mispredicted bool

	// Occupancy held, freed at commit or squash.
	holdsIQ   resource.Kind // IntIQ or FpIQ; freed at issue
	holdsLSQ  bool
	holdsIntR bool
	holdsFpR  bool
}

// thread is the per-context front-end and ROB state.
type threadState struct {
	stream isa.Stream

	// pending buffers instructions pulled from the stream but not yet
	// committed, enabling replay after a policy flush. Indices into it:
	// pendingHead marks the oldest uncommitted instruction, dispatchCur
	// the next to dispatch, fetchCur the next to fetch; instructions in
	// [dispatchCur, fetchCur) occupy the thread's fetch queue.
	pending     []isa.Inst
	pendingHead int
	dispatchCur int
	fetchCur    int

	// mispredictSeq is the sequence number of the fetched-but-unresolved
	// mispredicted branch when mispredictPending is set.
	mispredictSeq uint64

	// rob holds refs in dispatch order awaiting commit; entries before
	// robHead are retired and reclaimed by periodic in-place compaction
	// (re-slicing from the front would leak backing-array capacity and
	// re-allocate in steady state).
	rob     []ref
	robHead int

	// Rename map: architectural register -> producing in-flight
	// instruction. Index 0..31 integer, 32..63 floating point.
	rename [2 * isa.RegsPerFile]ref

	// fetchStall is the cycle until which fetch is stalled (mispredict
	// redirect or instruction-cache miss).
	fetchStall uint64
	// mispredictPending stops fetch after a mispredicted branch until it
	// resolves.
	mispredictPending bool
	// fetchStallICache records whether fetchStall was last armed by an
	// instruction-cache miss (vs a mispredict redirect), so telemetry can
	// attribute the stalled cycles to the right cause.
	fetchStallICache bool
	// lastFetchBlock is the instruction-cache block of the last fetched
	// instruction, for charging I-cache misses on block transitions.
	lastFetchBlock uint64
	// exhausted marks a finite stream that has ended.
	exhausted bool

	// addrBase offsets this thread's data addresses into a disjoint
	// region of the shared cache hierarchy's address space.
	addrBase uint64

	// outstandingL2 counts this thread's in-flight L2-missing loads;
	// outstandingDMiss counts in-flight loads that missed the DL1
	// (DCRA's fast/slow classification signal).
	outstandingL2    int
	outstandingDMiss int

	// bbv accumulates the thread's Basic Block Vector: committed
	// instructions per (hashed) basic block. Phase detection (Section 5)
	// snapshots and resets it each epoch.
	bbv [BBVEntries]uint32

	// stats holds the thread's pipeline counters.
	stats ThreadStats
}

// liveROB returns the thread's in-flight ROB entries, oldest first.
func (t *threadState) liveROB() []ref { return t.rob[t.robHead:] }

// ThreadStats aggregates one thread's pipeline counters (monotonic).
// Machine-wide totals are derived with Total.
type ThreadStats struct {
	// Fetched, Dispatched, Issued, and Committed count instructions
	// passing each stage.
	Fetched    uint64
	Dispatched uint64
	Issued     uint64
	Committed  uint64
	// Flushes counts policy-initiated flush events against the thread;
	// Flushed counts the instructions those flushes squashed.
	Flushes uint64
	Flushed uint64
	// Mispredicts counts resolved branch mispredictions.
	Mispredicts uint64
}

// Stats aggregates machine-level counters (monotonic).
type Stats struct {
	Cycles      uint64
	Fetched     uint64
	Dispatched  uint64
	Issued      uint64
	Committed   uint64
	Flushes     uint64
	Squashed    uint64
	Mispredicts uint64
}

// Total sums per-thread counters into the machine-level aggregate.
// Cycles is a machine property, not a thread one; Machine.Stats fills it.
func Total(per []ThreadStats) Stats {
	var s Stats
	for i := range per {
		t := &per[i]
		s.Fetched += t.Fetched
		s.Dispatched += t.Dispatched
		s.Issued += t.Issued
		s.Committed += t.Committed
		s.Flushes += t.Flushes
		s.Squashed += t.Flushed
		s.Mispredicts += t.Mispredicts
	}
	return s
}

// Machine is the simulated SMT processor.
type Machine struct {
	cfg Config

	now     uint64
	threads []threadState
	res     *resource.Table
	mem     *cache.Hierarchy
	bp      *bpred.Predictor

	// fetchDisabled masks contexts whose fetch is administratively off
	// (SingleIPC sampling disables all other threads for an epoch).
	fetchDisabled []bool

	// slab of in-flight instructions plus its free list.
	slab []inflight
	free []int32

	// readyQ holds dispatched, unissued instructions whose operands are
	// all available, sorted by dispatch stamp; the issue stage scans it
	// oldest-first. Instructions still waiting on operands are not queued
	// anywhere — they sit on their producers' wakeup chains until the
	// writeback stage wakes them.
	readyQ []readyEnt
	// dispStamp is the next global dispatch stamp.
	dispStamp uint64

	// done[c % len(done)] lists instructions completing at cycle c.
	doneRing [][]ref

	policy Policy

	// cycles counts simulated cycles (per-thread counters live in each
	// threadState; Stats aggregates both).
	cycles uint64

	// rec, when non-nil, receives per-cycle stall-attribution and
	// occupancy telemetry (see record in telemetry.go). The hot loop pays
	// one predictable nil-check branch per cycle when tracing is off.
	rec *telemetry.Recorder

	// stallUntil globally stalls the whole machine (used to charge the
	// software cost of the hill-climbing algorithm, Section 4.2).
	stallUntil uint64

	// inv, when non-nil, enables the per-cycle invariant checks of
	// SetInvariantChecks (see check.go). Like rec, the off state costs one
	// nil-test per cycle.
	inv *invariantState
}

// Policy is a per-cycle resource distribution mechanism (FLUSH, STALL,
// DCRA, ...). The epoch-level learning algorithms in internal/core are
// layered above policies and are not Policies themselves.
//
// Implementations must be deep-copyable so the machine can be
// checkpointed.
type Policy interface {
	// Name identifies the policy in reports.
	Name() string
	// Cycle runs once per simulated cycle, after all pipeline stages.
	Cycle(m *Machine)
	// FetchLocked reports whether the policy forbids fetch for thread th
	// this cycle (in addition to the machine's structural conditions).
	FetchLocked(m *Machine, th int) bool
	// OnL2Miss fires when thread th's load with sequence number seq is
	// found to miss in the L2 (at issue time).
	OnL2Miss(m *Machine, th int, seq uint64)
	// OnL2MissDone fires when that load completes.
	OnL2MissDone(m *Machine, th int, seq uint64)
	// Clone returns an independent deep copy.
	Clone() Policy
}

// NilPolicy is the no-op policy: plain ICOUNT fetch with fully shared
// resources.
type NilPolicy struct{}

// Name implements Policy.
func (NilPolicy) Name() string { return "ICOUNT" }

// Cycle implements Policy.
func (NilPolicy) Cycle(*Machine) {}

// FetchLocked implements Policy.
func (NilPolicy) FetchLocked(*Machine, int) bool { return false }

// OnL2Miss implements Policy.
func (NilPolicy) OnL2Miss(*Machine, int, uint64) {}

// OnL2MissDone implements Policy.
func (NilPolicy) OnL2MissDone(*Machine, int, uint64) {}

// Clone implements Policy.
func (NilPolicy) Clone() Policy { return NilPolicy{} }

// New builds a machine running one stream per hardware context under the
// given policy (nil means NilPolicy/plain ICOUNT).
func New(cfg Config, streams []isa.Stream, pol Policy) *Machine {
	if len(streams) != cfg.Threads {
		panic(fmt.Sprintf("pipeline: %d streams for %d contexts", len(streams), cfg.Threads))
	}
	if cfg.Threads < 1 || cfg.Threads > maxContexts {
		panic(fmt.Sprintf("pipeline: %d contexts outside [1, %d]", cfg.Threads, maxContexts))
	}
	if pol == nil {
		pol = NilPolicy{}
	}
	slabSize := cfg.Resources[resource.ROB] + cfg.Threads*cfg.IFQSize + 16
	m := &Machine{
		cfg:           cfg,
		res:           resource.NewTable(cfg.Threads, cfg.Resources),
		mem:           cache.NewHierarchy(cfg.Mem, cfg.Threads),
		bp:            bpred.New(cfg.Bpred),
		slab:          make([]inflight, slabSize),
		free:          make([]int32, 0, slabSize),
		doneRing:      newRing(512),
		policy:        pol,
		threads:       make([]threadState, cfg.Threads),
		fetchDisabled: make([]bool, cfg.Threads),
	}
	for i := slabSize - 1; i >= 0; i-- {
		m.slab[i].gen = 1
		m.free = append(m.free, int32(i))
	}
	for t := range m.threads {
		th := &m.threads[t]
		th.stream = streams[t]
		// Disjoint per-thread address regions. The sub-region stagger is
		// an odd number of cache lines so different threads' hot blocks
		// spread across cache sets — a pure power-of-two offset would
		// alias every thread onto the same sets and thrash the shared
		// 2-way caches once more than two contexts run.
		th.addrBase = uint64(t)<<44 + uint64(t)*37*64
		for i := range th.rename {
			th.rename[i] = noRef
		}
	}
	return m
}

// ringSlotCap is each completion-ring slot's pre-provisioned capacity,
// carved from one shared arena. A slot holds the instructions completing
// at one cycle; the observed high-water mark is about half this, so
// steady state never grows a slot (append past the arena cap would
// detach the slot onto its own backing — correct, just allocating).
const ringSlotCap = 32

// newRing builds an n-slot completion ring whose slot backings all live
// in a single arena allocation, each with length 0 and fixed capacity
// ringSlotCap (three-index slicing keeps an overflowing append from
// bleeding into the next slot).
func newRing(n int) [][]ref {
	arena := make([]ref, n*ringSlotCap)
	ring := make([][]ref, n)
	for i := range ring {
		ring[i] = arena[i*ringSlotCap : i*ringSlotCap : (i+1)*ringSlotCap]
	}
	return ring
}

// Clone returns a deep copy of the machine: an execution checkpoint.
// Advancing the clone and the original produces identical, independent
// executions. The telemetry recorder is deliberately NOT carried over: a
// recorder observes one machine, and the checkpoint-based learners run
// many speculative clones whose counters would pollute the real run's
// attribution. Attach a fresh recorder to a clone if it should be traced.
func (m *Machine) Clone() *Machine {
	c := *m
	c.rec = nil
	c.res = m.res.Clone()
	c.mem = m.mem.Clone()
	c.bp = m.bp.Clone()
	c.slab = append([]inflight(nil), m.slab...)
	// Give the free list its full steady-state capacity up front so the
	// clone's release path never re-allocates it.
	c.free = make([]int32, len(m.free), len(m.slab))
	copy(c.free, m.free)
	c.readyQ = append([]readyEnt(nil), m.readyQ...)
	c.doneRing = newRing(len(m.doneRing))
	for i, evs := range m.doneRing {
		c.doneRing[i] = append(c.doneRing[i], evs...)
	}
	c.policy = m.policy.Clone()
	c.fetchDisabled = append([]bool(nil), m.fetchDisabled...)
	if m.inv != nil {
		c.inv = m.inv.clone()
	}
	c.threads = make([]threadState, len(m.threads))
	for i := range m.threads {
		t := m.threads[i]
		t.pending = append([]isa.Inst(nil), t.pending...)
		t.rob = append([]ref(nil), t.rob...)
		t.stream = t.stream.CloneStream()
		c.threads[i] = t
	}
	return &c
}

// CloneInto copies the machine's state into dst, a machine previously
// produced by Clone or CloneInto of a same-shaped machine (same config,
// thread count, and structure sizes), and returns dst. It is the pooled
// variant of Clone: every slice and table in dst is overwritten in place,
// so a checkpoint loop that recycles trial machines performs no
// steady-state allocation. dst's previous contents are destroyed; like
// Clone, the telemetry recorder is not carried over. A nil dst falls back
// to a fresh Clone, so `dst = src.CloneInto(dst)` is the idiomatic loop
// body.
func (m *Machine) CloneInto(dst *Machine) *Machine {
	if dst == nil || dst == m {
		return m.Clone()
	}
	if len(dst.threads) != len(m.threads) || len(dst.slab) != len(m.slab) ||
		len(dst.doneRing) != len(m.doneRing) {
		panic("pipeline: CloneInto destination shape mismatch")
	}
	dst.cfg = m.cfg
	dst.now = m.now
	dst.cycles = m.cycles
	dst.stallUntil = m.stallUntil
	dst.dispStamp = m.dispStamp
	dst.rec = nil
	dst.res = m.res.CloneInto(dst.res)
	dst.mem = m.mem.CloneInto(dst.mem)
	dst.bp = m.bp.CloneInto(dst.bp)
	copy(dst.slab, m.slab)
	dst.free = append(dst.free[:0], m.free...)
	dst.readyQ = append(dst.readyQ[:0], m.readyQ...)
	for i := range m.doneRing {
		dst.doneRing[i] = append(dst.doneRing[i][:0], m.doneRing[i]...)
	}
	dst.policy = m.policy.Clone()
	copy(dst.fetchDisabled, m.fetchDisabled)
	if m.inv != nil {
		dst.inv = m.inv.clone()
	} else {
		dst.inv = nil
	}
	for i := range m.threads {
		s := &m.threads[i]
		d := &dst.threads[i]
		pending, rob, stream := d.pending, d.rob, d.stream
		*d = *s
		d.pending = append(pending[:0], s.pending...)
		d.rob = append(rob[:0], s.rob...)
		d.stream = cloneStreamInto(s.stream, stream)
	}
	return dst
}

// cloneStreamInto copies src's stream state into dst's backing storage
// when the stream supports in-place cloning and dst is compatible,
// falling back to an allocating CloneStream otherwise.
func cloneStreamInto(src, dst isa.Stream) isa.Stream {
	if r, ok := src.(isa.ReusableStream); ok && dst != nil {
		if r.CloneStreamInto(dst) {
			return dst
		}
	}
	return src.CloneStream()
}

// Config returns the machine configuration.
func (m *Machine) Config() Config { return m.cfg }

// Now returns the current cycle.
func (m *Machine) Now() uint64 { return m.now }

// Threads returns the number of hardware contexts.
func (m *Machine) Threads() int { return len(m.threads) }

// Resources exposes the occupancy/partition table. Learning algorithms
// program partitions through Resources().SetShares.
func (m *Machine) Resources() *resource.Table { return m.res }

// Mem exposes the cache hierarchy (for policy classification and stats).
func (m *Machine) Mem() *cache.Hierarchy { return m.mem }

// Bpred exposes the branch predictor.
func (m *Machine) Bpred() *bpred.Predictor { return m.bp }

// Stats returns the machine-level counters, aggregated over threads.
func (m *Machine) Stats() Stats {
	s := Total(m.PerThreadStats())
	s.Cycles = m.cycles
	return s
}

// ThreadStats returns thread th's pipeline counters.
func (m *Machine) ThreadStats(th int) ThreadStats { return m.threads[th].stats }

// PerThreadStats returns a copy of every thread's counters, in context
// order. Total aggregates them back into machine-level Stats.
func (m *Machine) PerThreadStats() []ThreadStats {
	out := make([]ThreadStats, len(m.threads))
	for i := range m.threads {
		out[i] = m.threads[i].stats
	}
	return out
}

// SetRecorder attaches (or with nil detaches) a telemetry recorder that
// accumulates per-cycle stall-attribution counters and occupancy
// histograms. The recorder's thread count must match the machine's.
func (m *Machine) SetRecorder(r *telemetry.Recorder) {
	if r != nil && len(r.Threads) != len(m.threads) {
		panic(fmt.Sprintf("pipeline: recorder has %d threads, machine has %d",
			len(r.Threads), len(m.threads)))
	}
	m.rec = r
}

// Recorder returns the attached telemetry recorder (nil when tracing is
// off).
func (m *Machine) Recorder() *telemetry.Recorder { return m.rec }

// Committed returns the instructions committed so far by thread th.
func (m *Machine) Committed(th int) uint64 { return m.threads[th].stats.Committed }

// Flushed returns the instructions squashed so far by flushes of thread th.
func (m *Machine) Flushed(th int) uint64 { return m.threads[th].stats.Flushed }

// OutstandingL2 returns thread th's in-flight L2-missing load count.
func (m *Machine) OutstandingL2(th int) int { return m.threads[th].outstandingL2 }

// OutstandingDMiss returns thread th's in-flight DL1-missing load count —
// the signal DCRA uses to classify threads as memory-bound ("slow").
func (m *Machine) OutstandingDMiss(th int) int { return m.threads[th].outstandingDMiss }

// BBVEntries is the Basic Block Vector length per context (Section 5
// uses 64 entries per SMT context).
const BBVEntries = 64

// BBV returns a copy of thread th's accumulated Basic Block Vector.
func (m *Machine) BBV(th int) [BBVEntries]uint32 { return m.threads[th].bbv }

// ResetBBV zeroes thread th's Basic Block Vector (called at epoch
// boundaries by phase detection).
func (m *Machine) ResetBBV(th int) { m.threads[th].bbv = [BBVEntries]uint32{} }

// MispredictRate returns the branch predictor's lifetime mispredict rate.
func (m *Machine) MispredictRate() float64 { return m.bp.MispredictRate() }

// ICount returns thread th's ICOUNT metric: instructions in the front end
// (fetched, not yet dispatched) plus issue-queue occupancy.
func (m *Machine) ICount(th int) int {
	t := &m.threads[th]
	frontEnd := t.fetchCur - t.dispatchCur
	return frontEnd + m.res.Occ(th, resource.IntIQ) + m.res.Occ(th, resource.FpIQ) + m.res.Occ(th, resource.LSQ)
}

// Policy returns the attached per-cycle policy.
func (m *Machine) Policy() Policy { return m.policy }

// SetPolicy replaces the per-cycle policy (nil restores plain ICOUNT).
// The experiment harness uses it to run different techniques forward from
// the same checkpoint ("synchronized" comparisons, Section 3.3).
func (m *Machine) SetPolicy(p Policy) {
	if p == nil {
		p = NilPolicy{}
	}
	m.policy = p
}

// Stall suspends all pipeline activity for n cycles starting now. The
// paper charges the software implementation of the hill-climbing
// algorithm 200 stall cycles per epoch (Section 4.2).
func (m *Machine) Stall(n int) {
	until := m.now + uint64(n)
	if until > m.stallUntil {
		m.stallUntil = until
	}
}

// SetFetchEnabled disables or re-enables fetch for a context. The
// learning algorithms use this to sample a thread's stand-alone IPC
// (SingleIPC) by disabling the other threads for one epoch (Section 4.2).
// Instructions already in flight for a disabled thread drain normally.
func (m *Machine) SetFetchEnabled(th int, enabled bool) {
	m.fetchDisabled[th] = !enabled
}

// FetchEnabled reports whether fetch is administratively enabled for th.
func (m *Machine) FetchEnabled(th int) bool { return !m.fetchDisabled[th] }

// get returns the slab entry for r, or nil if the ref is stale.
func (m *Machine) get(r ref) *inflight {
	if r.idx < 0 {
		return nil
	}
	e := &m.slab[r.idx]
	if e.gen != r.gen {
		return nil
	}
	return e
}

// alloc takes a slot from the slab. The slab is sized so that allocation
// can only fail if bookkeeping leaked slots, which is a bug.
func (m *Machine) alloc() (ref, *inflight) {
	n := len(m.free)
	if n == 0 {
		panic("pipeline: in-flight slab exhausted (slot leak)")
	}
	idx := m.free[n-1]
	m.free = m.free[:n-1]
	e := &m.slab[idx]
	return ref{idx: idx, gen: e.gen}, e
}

// release returns a slot to the slab, bumping its generation so stale
// refs read as ready.
func (m *Machine) release(r ref) {
	e := &m.slab[r.idx]
	e.gen++
	//smtlint:ignore hotalloc free list capacity is fixed at the slab size; this append never grows it
	m.free = append(m.free, r.idx)
}

// ready reports whether the operand guarded by r is available.
func (m *Machine) ready(r ref) bool {
	e := m.get(r)
	return e == nil || e.done
}
