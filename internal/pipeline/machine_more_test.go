package pipeline

import (
	"testing"

	"smthill/internal/isa"
	"smthill/internal/resource"
	"smthill/internal/trace"
)

// TestPendingCompaction drives a thread far enough that the pending
// replay buffer's dead prefix is compacted (the >= 512 path in
// commitOne), then verifies execution and flush-replay still behave.
func TestPendingCompaction(t *testing.T) {
	m := newMachine(t, 1, []trace.Profile{ilpProfile(1)}, nil)
	m.CycleN(10_000) // thousands of commits -> several compactions
	if m.Committed(0) < 2_000 {
		t.Fatalf("committed %d; compaction path not exercised", m.Committed(0))
	}
	// Flush after compaction must still rewind correctly.
	tst := &m.threads[0]
	if len(tst.liveROB()) > 2 {
		headSeq := m.slab[tst.liveROB()[0].idx].inst.Seq
		before := m.Committed(0)
		m.FlushAfter(0, headSeq)
		m.CycleN(5_000)
		if m.Committed(0) <= before {
			t.Fatal("no progress after post-compaction flush")
		}
	}
}

func TestBBVAccumulatesAndResets(t *testing.T) {
	m := newMachine(t, 2, []trace.Profile{ilpProfile(1), ilpProfile(2)}, nil)
	m.CycleN(10_000)
	bbv := m.BBV(0)
	sum := uint64(0)
	for _, v := range bbv {
		sum += uint64(v)
	}
	if sum != m.Committed(0) {
		t.Fatalf("BBV sums to %d, committed %d", sum, m.Committed(0))
	}
	m.ResetBBV(0)
	if m.BBV(0) != [BBVEntries]uint32{} {
		t.Fatal("ResetBBV left residue")
	}
	// Thread 1's vector is untouched by thread 0's reset.
	if m.BBV(1) == [BBVEntries]uint32{} {
		t.Fatal("thread 1 BBV empty after activity")
	}
}

func TestSetPolicySwitch(t *testing.T) {
	m := newMachine(t, 2, []trace.Profile{memProfile(1), ilpProfile(2)}, nil)
	m.CycleN(10_000)
	if m.Policy().Name() != "ICOUNT" {
		t.Fatal("default policy wrong")
	}
	m.SetPolicy(nil)
	if m.Policy().Name() != "ICOUNT" {
		t.Fatal("nil SetPolicy did not restore ICOUNT")
	}
	// Swapping policies mid-run keeps the machine consistent.
	m.SetPolicy(stubPolicy{})
	m.CycleN(10_000)
	if m.Stats().Committed == 0 {
		t.Fatal("machine stopped after policy swap")
	}
}

// stubPolicy locks nothing and counts nothing; it exists to exercise the
// policy plumbing.
type stubPolicy struct{}

func (stubPolicy) Name() string                       { return "stub" }
func (stubPolicy) Cycle(*Machine)                     {}
func (stubPolicy) FetchLocked(*Machine, int) bool     { return false }
func (stubPolicy) OnL2Miss(*Machine, int, uint64)     {}
func (stubPolicy) OnL2MissDone(*Machine, int, uint64) {}
func (stubPolicy) Clone() Policy                      { return stubPolicy{} }

func TestStallExtendsNotShortens(t *testing.T) {
	m := newMachine(t, 1, []trace.Profile{ilpProfile(1)}, nil)
	m.Stall(100)
	m.Stall(50) // must not shorten the pending stall
	before := m.Committed(0)
	m.CycleN(90)
	if m.Committed(0) != before {
		t.Fatal("stall was shortened by a smaller request")
	}
}

func TestSlabNeverLeaks(t *testing.T) {
	// Run a flush-heavy configuration and verify the slab free list
	// recovers all slots once the pipeline drains.
	streams := []isa.Stream{trace.NewLimited(memProfile(1), 20_000)}
	m := New(DefaultConfig(1), streams, nil)
	for i := 0; i < 400_000 && !m.Done(); i++ {
		m.Cycle()
		if i%5_000 == 0 && len(m.threads[0].liveROB()) > 1 {
			headSeq := m.slab[m.threads[0].liveROB()[0].idx].inst.Seq
			m.FlushAfter(0, headSeq)
		}
	}
	if !m.Done() {
		t.Fatal("machine did not drain")
	}
	if got := len(m.free); got != len(m.slab) {
		t.Fatalf("slab leaked: %d/%d slots free after drain", got, len(m.slab))
	}
	for k := resource.Kind(0); k < resource.NumKinds; k++ {
		if m.res.TotalOcc(k) != 0 {
			t.Fatalf("%v occupancy %d after drain", k, m.res.TotalOcc(k))
		}
	}
}

func TestMachineRejectsTooManyContexts(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for too many contexts")
		}
	}()
	streams := make([]isa.Stream, maxContexts+1)
	for i := range streams {
		streams[i] = trace.New(ilpProfile(1))
	}
	New(DefaultConfig(maxContexts+1), streams, nil)
}

func TestProportionalLimitsProgrammedTogether(t *testing.T) {
	m := newMachine(t, 2, []trace.Profile{ilpProfile(1), ilpProfile(2)}, nil)
	m.Resources().SetShares(resource.Shares{64, 192})
	// 64/256 of the machine: IQ 20, ROB 128.
	if got := m.Resources().Limit(0, resource.IntIQ); got != 20 {
		t.Fatalf("IQ limit %d", got)
	}
	if got := m.Resources().Limit(0, resource.ROB); got != 128 {
		t.Fatalf("ROB limit %d", got)
	}
	m.CycleN(30_000)
	// Under pressure the thread respects all three limits.
	if occ := m.Resources().Occ(0, resource.ROB); occ > 128 {
		t.Fatalf("ROB occupancy %d over proportional limit", occ)
	}
}

func TestFlushAtSeqZeroBoundary(t *testing.T) {
	m := newMachine(t, 1, []trace.Profile{memProfile(5)}, nil)
	m.CycleN(2_000)
	// Flushing after seq 0 squashes everything but instruction 0 (if in
	// flight); the machine must recover.
	m.FlushAfter(0, 0)
	m.CycleN(30_000)
	if m.Committed(0) < 1_000 {
		t.Fatalf("machine crippled after aggressive flush: %d", m.Committed(0))
	}
}

func TestMispredictPenaltyConfigurable(t *testing.T) {
	noisy := ilpProfile(1)
	noisy.A.BranchNoise = 0.2
	run := func(penalty int) uint64 {
		cfg := DefaultConfig(1)
		cfg.MispredictPenalty = penalty
		m := New(cfg, []isa.Stream{trace.New(noisy)}, nil)
		m.CycleN(60_000)
		return m.Committed(0)
	}
	if run(40) >= run(4) {
		t.Fatal("larger mispredict penalty did not reduce throughput")
	}
}
