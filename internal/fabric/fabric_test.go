package fabric

import (
	"bytes"
	"context"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"smthill/internal/experiment"
	"smthill/internal/sweep"
)

// fabricCfg keeps the integration sweeps cheap; it mirrors the
// experiment package's own scaled-down test configuration.
func fabricCfg() experiment.Config {
	return experiment.Config{
		EpochSize:     8 * 1024,
		Epochs:        4,
		WarmupEpochs:  1,
		OffLineStride: 64,
		RandHillIters: 6,
		SoloCycles:    16 * 1024,
	}
}

// namedRun regenerates one named experiment on the installed global
// engine and returns its exact output bytes.
func namedRun(t *testing.T, cfg experiment.Config, name string, opts experiment.RunOptions) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := experiment.RunNamed(cfg, name, opts, &buf); err != nil {
		t.Fatalf("%s: %v", name, err)
	}
	return buf.Bytes()
}

// testNode is one in-process fabric worker: its own engine, its own
// read-through store client, and an httptest exec endpoint.
type testNode struct {
	id     string
	w      *Worker
	srv    *httptest.Server
	cancel context.CancelFunc
}

// startTestWorker brings up a worker against the coordinator. The exec
// server must exist before the worker (the worker advertises its URL),
// so the handler late-binds through an atomic pointer — the same shape
// cmd/smtserved uses when the listener comes up before the worker.
func startTestWorker(t *testing.T, id, coordURL string) *testNode {
	t.Helper()
	wp := new(atomic.Pointer[Worker])
	srv := httptest.NewServer(http.HandlerFunc(func(rw http.ResponseWriter, r *http.Request) {
		if w := wp.Load(); w != nil {
			w.Handler().ServeHTTP(rw, r)
			return
		}
		http.Error(rw, "worker not ready", http.StatusServiceUnavailable)
	}))
	eng := sweep.NewEngine(2)
	store := NewStoreClient(coordURL, NewMemStore(), nil)
	eng.SetBackend(store)
	w := NewWorker(WorkerConfig{
		ID: id, CoordinatorURL: coordURL, AdvertiseURL: srv.URL,
		HeartbeatEvery: 25 * time.Millisecond, Logf: t.Logf,
	}, eng, store)
	wp.Store(w)
	ctx, cancel := context.WithCancel(context.Background())
	w.Start(ctx)
	n := &testNode{id: id, w: w, srv: srv, cancel: cancel}
	t.Cleanup(n.kill)
	return n
}

// kill simulates a worker crash: the control loop stops and the exec
// endpoint drops connections.
func (n *testNode) kill() {
	n.cancel()
	n.srv.Close()
}

// waitAlive blocks until the coordinator sees `want` live workers.
func waitAlive(t *testing.T, c *Coordinator, want int) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		alive := 0
		for _, p := range c.Peers() {
			if p.Alive {
				alive++
			}
		}
		if alive == want {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("coordinator never saw %d live workers (peers: %+v)", want, c.Peers())
}

// startFabric builds a coordinator with its engine installed as the
// experiment engine, so RunNamed dispatches over the fabric.
func startFabric(t *testing.T) (*Coordinator, string) {
	t.Helper()
	coord := NewCoordinator(CoordinatorConfig{HeartbeatTimeout: 2 * time.Second, Logf: t.Logf})
	srv := httptest.NewServer(coord.Handler())
	t.Cleanup(srv.Close)
	eng := sweep.NewEngine(2)
	eng.SetBackend(coord.Backend())
	eng.SetRemote(coord)
	experiment.SetEngine(eng)
	t.Cleanup(func() { experiment.SetEngine(sweep.NewEngine(0)) })
	return coord, srv.URL
}

// TestFabricClusterByteIdentical is the tentpole acceptance test: a
// coordinator plus two workers produce fig4, fig9, and table2 byte for
// byte identical to a serial single-engine run.
func TestFabricClusterByteIdentical(t *testing.T) {
	cfg := fabricCfg()
	runs := []struct {
		name string
		opts experiment.RunOptions
	}{
		{"fig4", experiment.RunOptions{Workloads: "gzip-bzip2,art-mcf"}},
		{"fig9", experiment.RunOptions{Workloads: "art-gzip,swim-twolf"}},
		{"table2", experiment.RunOptions{}},
		{"mcpair", experiment.RunOptions{}},
	}

	// Serial reference: one plain engine, no fabric.
	experiment.SetEngine(sweep.NewEngine(0))
	want := map[string][]byte{}
	for _, r := range runs {
		want[r.name] = namedRun(t, cfg, r.name, r.opts)
	}

	coord, coordURL := startFabric(t)
	startTestWorker(t, "w1", coordURL)
	startTestWorker(t, "w2", coordURL)
	waitAlive(t, coord, 2)

	for _, r := range runs {
		got := namedRun(t, cfg, r.name, r.opts)
		if !bytes.Equal(got, want[r.name]) {
			t.Errorf("%s over the fabric differs from serial:\nserial:\n%s\nfabric:\n%s",
				r.name, want[r.name], got)
		}
	}

	// The fabric must actually have carried the work: every job the
	// engine saw was dispatched (owner, stolen, or affinity), none failed
	// through to local fallback.
	dispatched := coord.dispatches.With("owner").Value() +
		coord.dispatches.With("stolen").Value() +
		coord.dispatches.With("affinity").Value()
	failed, fellBack := coord.dispatchFailed.Value(), coord.localFallback.Value()
	if dispatched == 0 {
		t.Error("no jobs were dispatched; the fabric sat idle")
	}
	if failed != 0 || fellBack != 0 {
		t.Errorf("healthy cluster had dispatchFailed=%d localFallback=%d, want 0", failed, fellBack)
	}
	if h := coord.Health(); h["fabric_store_keys"].(uint64) == 0 {
		t.Error("shared store is empty after a full sweep")
	}

	var metrics strings.Builder
	coord.WriteMetrics(&metrics)
	for _, want := range []string{
		"smtserved_fabric_peers{state=\"alive\"} 2",
		"smtserved_fabric_dispatch_total{kind=\"owner\"}",
		"smtserved_fabric_store_requests_total",
	} {
		if !strings.Contains(metrics.String(), want) {
			t.Errorf("coordinator metrics missing %q:\n%s", want, metrics.String())
		}
	}
}

// TestFabricWorkerDeathMidSweep kills one of two workers while a sweep
// is in flight, then restarts it, checking byte-identical output
// throughout — the re-dispatch acceptance criterion.
func TestFabricWorkerDeathMidSweep(t *testing.T) {
	cfg := fabricCfg()
	fig9 := experiment.RunOptions{Workloads: "art-mcf,gzip-bzip2,art-gzip,swim-twolf"}

	experiment.SetEngine(sweep.NewEngine(0))
	wantFig9 := namedRun(t, cfg, "fig9", fig9)
	wantTable2 := namedRun(t, cfg, "table2", experiment.RunOptions{})

	coord, coordURL := startFabric(t)
	victim := startTestWorker(t, "w1", coordURL)
	startTestWorker(t, "w2", coordURL)
	waitAlive(t, coord, 2)

	// Kill the victim shortly into the sweep. Whether the kill lands
	// mid-dispatch or between jobs is timing-dependent; the output must
	// be byte-identical either way, and the suspect/re-dispatch path is
	// exercised whenever a dispatch was in flight or routed to the dead
	// worker afterwards.
	killed := make(chan struct{})
	go func() {
		defer close(killed)
		time.Sleep(50 * time.Millisecond)
		victim.kill()
	}()
	got := namedRun(t, cfg, "fig9", fig9)
	<-killed
	if !bytes.Equal(got, wantFig9) {
		t.Errorf("fig9 with a worker dying mid-sweep differs from serial:\nserial:\n%s\nfabric:\n%s",
			wantFig9, got)
	}

	// Restart the dead worker under its old identity; it must rejoin the
	// ring via its register/heartbeat with no special handshake, and the
	// next sweep must again match serial bytes.
	startTestWorker(t, "w1", coordURL)
	waitAlive(t, coord, 2)
	if got := namedRun(t, cfg, "table2", experiment.RunOptions{}); !bytes.Equal(got, wantTable2) {
		t.Errorf("table2 after worker restart differs from serial:\nserial:\n%s\nfabric:\n%s",
			wantTable2, got)
	}
}
