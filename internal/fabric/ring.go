package fabric

import (
	"hash/fnv"
	"sort"
	"strconv"
)

// ringVnodes is the default number of virtual nodes per member. Virtual
// nodes smooth the key distribution: with a handful of physical workers
// a single hash point each would routinely give one worker most of the
// circle.
const ringVnodes = 64

// Ring is a consistent-hash ring mapping job keys to member IDs. Adding
// or removing one member moves only the keys that member owned (plus
// 1/n of the circle on an add) — the property that keeps the
// coordinator's placement stable, and therefore its dispatch affinity
// useful, while workers join and die.
//
// Ring is not safe for concurrent use; the Coordinator guards it with
// its own mutex.
type Ring struct {
	vnodes int
	ids    map[string]bool
	points []ringPoint // sorted by hash
}

type ringPoint struct {
	hash uint64
	id   string
}

// NewRing returns an empty ring with the given virtual-node count per
// member (<= 0 selects the default).
func NewRing(vnodes int) *Ring {
	if vnodes <= 0 {
		vnodes = ringVnodes
	}
	return &Ring{vnodes: vnodes, ids: map[string]bool{}}
}

// Add inserts a member (no-op if present).
func (r *Ring) Add(id string) {
	if r.ids[id] {
		return
	}
	r.ids[id] = true
	for i := 0; i < r.vnodes; i++ {
		r.points = append(r.points, ringPoint{hash: hash64(id + "#" + strconv.Itoa(i)), id: id})
	}
	sort.Slice(r.points, func(a, b int) bool {
		if r.points[a].hash != r.points[b].hash {
			return r.points[a].hash < r.points[b].hash
		}
		return r.points[a].id < r.points[b].id // total order even on hash collision
	})
}

// Remove deletes a member (no-op if absent).
func (r *Ring) Remove(id string) {
	if !r.ids[id] {
		return
	}
	delete(r.ids, id)
	kept := r.points[:0]
	for _, p := range r.points {
		if p.id != id {
			kept = append(kept, p)
		}
	}
	r.points = kept
}

// Has reports membership.
func (r *Ring) Has(id string) bool { return r.ids[id] }

// Len returns the number of members.
func (r *Ring) Len() int { return len(r.ids) }

// Owners returns up to n distinct members in preference order for key:
// the first point at or clockwise of the key's hash, then successive
// distinct members continuing clockwise. With n >= Len it is a total
// preference order over the membership, which the coordinator walks
// when earlier choices fail.
func (r *Ring) Owners(key string, n int) []string {
	if len(r.points) == 0 || n <= 0 {
		return nil
	}
	if n > len(r.ids) {
		n = len(r.ids)
	}
	h := hash64(key)
	start := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	out := make([]string, 0, n)
	seen := make(map[string]bool, n)
	for i := 0; i < len(r.points) && len(out) < n; i++ {
		p := r.points[(start+i)%len(r.points)]
		if !seen[p.id] {
			seen[p.id] = true
			out = append(out, p.id)
		}
	}
	return out
}

func hash64(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	return h.Sum64()
}
