package fabric

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"

	"smthill/internal/sweep"
)

// maxResultBytes bounds one stored result on the wire. The largest real
// payloads (per-epoch IPC vectors at paper scale) are a few hundred KB;
// 32 MB leaves two orders of magnitude of headroom while keeping a
// misbehaving client from ballooning a node.
const maxResultBytes = 32 << 20

// MemStore is an in-memory sweep.Backend: the coordinator's default
// result store when no disk cache is configured, and the test double
// throughout the package. All methods are safe for concurrent use.
type MemStore struct {
	mu sync.Mutex
	m  map[string]json.RawMessage
}

// NewMemStore returns an empty store.
func NewMemStore() *MemStore { return &MemStore{m: map[string]json.RawMessage{}} }

// Get implements sweep.Backend.
func (s *MemStore) Get(key string) (json.RawMessage, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	raw, ok := s.m[key]
	if !ok {
		return nil, false
	}
	return append(json.RawMessage(nil), raw...), true
}

// Put implements sweep.Backend.
func (s *MemStore) Put(key string, raw json.RawMessage) error {
	cp := append(json.RawMessage(nil), raw...)
	s.mu.Lock()
	s.m[key] = cp
	s.mu.Unlock()
	return nil
}

// Len returns the number of stored results.
func (s *MemStore) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.m)
}

// etagFor is the strong validator of a stored result: a quoted sha256
// of the exact bytes. Because results are content-addressed and
// deterministic, any node can recompute the ETag of its local copy —
// conditional revalidation needs no validator bookkeeping.
func etagFor(raw []byte) string {
	sum := sha256.Sum256(raw)
	return `"` + hex.EncodeToString(sum[:]) + `"`
}

// etagMatches implements If-None-Match: a "*" or any listed entity tag
// equal to etag matches.
func etagMatches(header, etag string) bool {
	for _, part := range strings.Split(header, ",") {
		part = strings.TrimSpace(part)
		if part == "*" || part == etag {
			return true
		}
	}
	return false
}

// StoreServer serves a sweep.Backend over HTTP as the fabric's shared
// content-addressed result store:
//
//	GET  /fabric/v1/store?key=K   200 body + ETag, 304 on If-None-Match, 404 miss
//	PUT  /fabric/v1/store?key=K   204 + ETag of the stored bytes
//
// Results are immutable under the determinism contract, so the server
// never needs invalidation; conditional GETs exist so gossip-triggered
// revalidation costs a header exchange, not a body transfer.
type StoreServer struct {
	backend sweep.Backend

	mu            sync.Mutex
	getHits       uint64
	getMisses     uint64
	notModified   uint64
	puts          uint64
	putErrors     uint64
	badRequests   uint64
	bytesServed   uint64
	bytesReceived uint64
}

// NewStoreServer serves backend. The Coordinator wraps its backend so
// PUTs land in the gossip log; standalone use works with any Backend.
func NewStoreServer(backend sweep.Backend) *StoreServer {
	return &StoreServer{backend: backend}
}

// ServeHTTP implements http.Handler.
func (s *StoreServer) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	key := r.URL.Query().Get("key")
	if key == "" {
		s.count(&s.badRequests)
		http.Error(w, "missing key parameter", http.StatusBadRequest)
		return
	}
	switch r.Method {
	case http.MethodGet, http.MethodHead:
		s.handleGet(w, r, key)
	case http.MethodPut:
		s.handlePut(w, r, key)
	default:
		w.Header().Set("Allow", "GET, HEAD, PUT")
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
	}
}

func (s *StoreServer) handleGet(w http.ResponseWriter, r *http.Request, key string) {
	raw, ok := s.backend.Get(key)
	if !ok {
		s.count(&s.getMisses)
		http.Error(w, "no result for key", http.StatusNotFound)
		return
	}
	etag := etagFor(raw)
	w.Header().Set("ETag", etag)
	if inm := r.Header.Get("If-None-Match"); inm != "" && etagMatches(inm, etag) {
		s.count(&s.notModified)
		w.WriteHeader(http.StatusNotModified)
		return
	}
	s.mu.Lock()
	s.getHits++
	s.bytesServed += uint64(len(raw))
	s.mu.Unlock()
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	if r.Method != http.MethodHead {
		_, _ = w.Write(raw)
	}
}

func (s *StoreServer) handlePut(w http.ResponseWriter, r *http.Request, key string) {
	raw, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxResultBytes))
	if err != nil {
		s.count(&s.badRequests)
		http.Error(w, fmt.Sprintf("read body: %v", err), http.StatusBadRequest)
		return
	}
	if !json.Valid(raw) {
		s.count(&s.badRequests)
		http.Error(w, "body is not valid JSON", http.StatusBadRequest)
		return
	}
	if err := s.backend.Put(key, raw); err != nil {
		s.count(&s.putErrors)
		http.Error(w, fmt.Sprintf("store: %v", err), http.StatusInternalServerError)
		return
	}
	s.mu.Lock()
	s.puts++
	s.bytesReceived += uint64(len(raw))
	s.mu.Unlock()
	w.Header().Set("ETag", etagFor(raw))
	w.WriteHeader(http.StatusNoContent)
}

func (s *StoreServer) count(c *uint64) {
	s.mu.Lock()
	*c++
	s.mu.Unlock()
}

// WriteMetrics renders the server's counters in exposition format.
func (s *StoreServer) WriteMetrics(w io.Writer) {
	s.mu.Lock()
	defer s.mu.Unlock()
	fmt.Fprintf(w, "smtserved_fabric_store_requests_total{op=\"get\",outcome=\"hit\"} %d\n", s.getHits)
	fmt.Fprintf(w, "smtserved_fabric_store_requests_total{op=\"get\",outcome=\"miss\"} %d\n", s.getMisses)
	fmt.Fprintf(w, "smtserved_fabric_store_requests_total{op=\"get\",outcome=\"not_modified\"} %d\n", s.notModified)
	fmt.Fprintf(w, "smtserved_fabric_store_requests_total{op=\"put\",outcome=\"stored\"} %d\n", s.puts)
	fmt.Fprintf(w, "smtserved_fabric_store_requests_total{op=\"put\",outcome=\"error\"} %d\n", s.putErrors)
	fmt.Fprintf(w, "smtserved_fabric_store_requests_total{op=\"any\",outcome=\"bad_request\"} %d\n", s.badRequests)
	fmt.Fprintf(w, "smtserved_fabric_store_bytes_total{dir=\"served\"} %d\n", s.bytesServed)
	fmt.Fprintf(w, "smtserved_fabric_store_bytes_total{dir=\"received\"} %d\n", s.bytesReceived)
}
