package fabric

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"

	"smthill/internal/obs"
	"smthill/internal/sweep"
)

// maxResultBytes bounds one stored result on the wire. The largest real
// payloads (per-epoch IPC vectors at paper scale) are a few hundred KB;
// 32 MB leaves two orders of magnitude of headroom while keeping a
// misbehaving client from ballooning a node.
const maxResultBytes = 32 << 20

// MemStore is an in-memory sweep.Backend: the coordinator's default
// result store when no disk cache is configured, and the test double
// throughout the package. All methods are safe for concurrent use.
type MemStore struct {
	mu sync.Mutex
	m  map[string]json.RawMessage // guarded by mu
}

// NewMemStore returns an empty store.
func NewMemStore() *MemStore { return &MemStore{m: map[string]json.RawMessage{}} }

// Get implements sweep.Backend.
func (s *MemStore) Get(_ context.Context, key string) (json.RawMessage, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	raw, ok := s.m[key]
	if !ok {
		return nil, false
	}
	return append(json.RawMessage(nil), raw...), true
}

// Put implements sweep.Backend.
func (s *MemStore) Put(_ context.Context, key string, raw json.RawMessage) error {
	cp := append(json.RawMessage(nil), raw...)
	s.mu.Lock()
	s.m[key] = cp
	s.mu.Unlock()
	return nil
}

// Len returns the number of stored results.
func (s *MemStore) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.m)
}

// etagFor is the strong validator of a stored result: a quoted sha256
// of the exact bytes. Because results are content-addressed and
// deterministic, any node can recompute the ETag of its local copy —
// conditional revalidation needs no validator bookkeeping.
func etagFor(raw []byte) string {
	sum := sha256.Sum256(raw)
	return `"` + hex.EncodeToString(sum[:]) + `"`
}

// etagMatches implements If-None-Match: a "*" or any listed entity tag
// equal to etag matches.
func etagMatches(header, etag string) bool {
	for _, part := range strings.Split(header, ",") {
		part = strings.TrimSpace(part)
		if part == "*" || part == etag {
			return true
		}
	}
	return false
}

// StoreServer serves a sweep.Backend over HTTP as the fabric's shared
// content-addressed result store:
//
//	GET  /fabric/v1/store?key=K   200 body + ETag, 304 on If-None-Match, 404 miss
//	PUT  /fabric/v1/store?key=K   204 + ETag of the stored bytes
//
// Results are immutable under the determinism contract, so the server
// never needs invalidation; conditional GETs exist so gossip-triggered
// revalidation costs a header exchange, not a body transfer.
type StoreServer struct {
	backend sweep.Backend
	tracer  *obs.Tracer

	reg      *obs.Registry
	requests *obs.CounterVec // op, outcome
	bytes    *obs.CounterVec // dir
}

// NewStoreServer serves backend. The Coordinator wraps its backend so
// PUTs land in the gossip log; standalone use works with any Backend.
func NewStoreServer(backend sweep.Backend) *StoreServer {
	reg := obs.NewRegistry()
	s := &StoreServer{
		backend: backend,
		reg:     reg,
		requests: reg.CounterVec("smtserved_fabric_store_requests_total",
			"store requests by op and outcome", "op", "outcome"),
		bytes: reg.CounterVec("smtserved_fabric_store_bytes_total",
			"result bytes moved by direction", "dir"),
	}
	// Materialize every series up front so a scrape shows the full
	// outcome vocabulary at zero.
	for _, pair := range [][2]string{
		{"get", "hit"}, {"get", "miss"}, {"get", "not_modified"},
		{"put", "stored"}, {"put", "error"}, {"any", "bad_request"},
	} {
		s.requests.With(pair[0], pair[1])
	}
	s.bytes.With("served")
	s.bytes.With("received")
	return s
}

// SetTracer enables server-side spans on store requests.
func (s *StoreServer) SetTracer(t *obs.Tracer) { s.tracer = t }

// Registry returns the server's metric registry, for attachment into a
// node-wide one.
func (s *StoreServer) Registry() *obs.Registry { return s.reg }

// ServeHTTP implements http.Handler.
func (s *StoreServer) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	key := r.URL.Query().Get("key")
	if key == "" {
		s.requests.With("any", "bad_request").Inc()
		http.Error(w, "missing key parameter", http.StatusBadRequest)
		return
	}
	ctx, span := s.tracer.StartRemote(r.Context(), obs.Extract(r.Header),
		"store."+strings.ToLower(r.Method), obs.KindServer)
	span.SetAttr("key", key)
	r = r.WithContext(ctx)
	switch r.Method {
	case http.MethodGet, http.MethodHead:
		s.handleGet(w, r, key, span)
	case http.MethodPut:
		s.handlePut(w, r, key, span)
	default:
		w.Header().Set("Allow", "GET, HEAD, PUT")
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		span.End(fmt.Errorf("method %s not allowed", r.Method))
		return
	}
}

func (s *StoreServer) handleGet(w http.ResponseWriter, r *http.Request, key string, span *obs.Span) {
	raw, ok := s.backend.Get(r.Context(), key)
	if !ok {
		s.requests.With("get", "miss").Inc()
		span.SetAttr("outcome", "miss")
		span.End(nil)
		http.Error(w, "no result for key", http.StatusNotFound)
		return
	}
	etag := etagFor(raw)
	w.Header().Set("ETag", etag)
	if inm := r.Header.Get("If-None-Match"); inm != "" && etagMatches(inm, etag) {
		s.requests.With("get", "not_modified").Inc()
		span.SetAttr("outcome", "not_modified")
		span.End(nil)
		w.WriteHeader(http.StatusNotModified)
		return
	}
	s.requests.With("get", "hit").Inc()
	s.bytes.With("served").Add(uint64(len(raw)))
	span.SetAttr("outcome", "hit")
	span.End(nil)
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	if r.Method != http.MethodHead {
		_, _ = w.Write(raw)
	}
}

func (s *StoreServer) handlePut(w http.ResponseWriter, r *http.Request, key string, span *obs.Span) {
	raw, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxResultBytes))
	if err != nil {
		s.requests.With("any", "bad_request").Inc()
		span.End(err)
		http.Error(w, fmt.Sprintf("read body: %v", err), http.StatusBadRequest)
		return
	}
	if !json.Valid(raw) {
		s.requests.With("any", "bad_request").Inc()
		span.End(fmt.Errorf("body is not valid JSON"))
		http.Error(w, "body is not valid JSON", http.StatusBadRequest)
		return
	}
	if err := s.backend.Put(r.Context(), key, raw); err != nil {
		s.requests.With("put", "error").Inc()
		span.End(err)
		http.Error(w, fmt.Sprintf("store: %v", err), http.StatusInternalServerError)
		return
	}
	s.requests.With("put", "stored").Inc()
	s.bytes.With("received").Add(uint64(len(raw)))
	span.End(nil)
	w.Header().Set("ETag", etagFor(raw))
	w.WriteHeader(http.StatusNoContent)
}

// WriteMetrics renders the server's counters in exposition format.
func (s *StoreServer) WriteMetrics(w io.Writer) { s.reg.Write(w) }
