package fabric

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"
)

// fakeWorker is a canned exec endpoint: it answers every key with a
// fixed result and records what it served.
type fakeWorker struct {
	srv    *httptest.Server
	result json.RawMessage
	served []string
}

func newFakeWorker(t *testing.T, result json.RawMessage) *fakeWorker {
	t.Helper()
	f := &fakeWorker{result: result}
	f.srv = httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		var req ExecRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		f.served = append(f.served, req.Key)
		writeProtoJSON(w, ExecResponse{Version: ProtocolVersion, Key: req.Key, Result: f.result})
	}))
	t.Cleanup(f.srv.Close)
	return f
}

// testClock is an injectable wall clock for liveness tests (advanced
// only between coordinator calls, never concurrently).
type testClock struct{ now time.Time }

func (c *testClock) time() time.Time         { return c.now }
func (c *testClock) advance(d time.Duration) { c.now = c.now.Add(d) }

// keyOwnedBy finds a key whose ring owner is id, so dispatch-path tests
// can force the first placement choice.
func keyOwnedBy(t *testing.T, c *Coordinator, id string) string {
	t.Helper()
	for i := 0; i < 10000; i++ {
		key := fmt.Sprintf("v1|solo|app=probe-%d|cycles=1024", i)
		c.mu.Lock()
		owners := c.ring.Owners(key, 1)
		c.mu.Unlock()
		if len(owners) == 1 && owners[0] == id {
			return key
		}
	}
	t.Fatalf("no key owned by %s in 10000 probes", id)
	return ""
}

// TestFabricRedispatchAfterMissedHeartbeats is the worker-death unit
// test: a worker that stops heartbeating is reaped from the ring, and a
// job that would have been its lands on a surviving worker.
func TestFabricRedispatchAfterMissedHeartbeats(t *testing.T) {
	clock := &testClock{now: time.Unix(1_000_000, 0)}
	c := NewCoordinator(CoordinatorConfig{HeartbeatTimeout: time.Second, Logf: t.Logf})
	c.now = clock.time

	survivor := newFakeWorker(t, json.RawMessage(`{"ok":true}`))
	c.admit("dead", "http://127.0.0.1:1", 0) // nothing listens there
	c.admit("live", survivor.srv.URL, 0)

	key := keyOwnedBy(t, c, "dead")

	// The dead worker misses its heartbeats; the survivor keeps beating.
	clock.advance(1500 * time.Millisecond)
	c.admit("live", survivor.srv.URL, 0)
	c.reap()

	c.mu.Lock()
	reaped, inRing := c.reapedTotal.Value(), c.ring.Has("dead")
	c.mu.Unlock()
	if reaped != 1 || inRing {
		t.Fatalf("after missed heartbeats: reaped=%d inRing=%v, want 1 and false", reaped, inRing)
	}

	raw, handled, err := c.Exec(context.Background(), key)
	if err != nil || !handled {
		t.Fatalf("Exec after reap: handled=%v err=%v", handled, err)
	}
	if !bytes.Equal(raw, []byte(`{"ok":true}`)) {
		t.Fatalf("Exec result = %s", raw)
	}
	if len(survivor.served) != 1 || survivor.served[0] != key {
		t.Fatalf("survivor served %v, want [%s]", survivor.served, key)
	}

	// The dead worker's next heartbeat readmits it.
	c.admit("dead", "http://127.0.0.1:1", 0)
	c.mu.Lock()
	back := c.ring.Has("dead")
	c.mu.Unlock()
	if !back {
		t.Fatal("re-heartbeating worker did not rejoin the ring")
	}
}

// TestFabricRedispatchOnConnectionFailure covers the faster path: the
// worker is still believed alive, but the dispatch connection fails, so
// the job re-dispatches immediately and the worker is marked dead
// without waiting for the liveness timeout.
func TestFabricRedispatchOnConnectionFailure(t *testing.T) {
	c := NewCoordinator(CoordinatorConfig{Logf: t.Logf})
	survivor := newFakeWorker(t, json.RawMessage(`7`))
	c.admit("dead", "http://127.0.0.1:1", 0)
	c.admit("live", survivor.srv.URL, 0)
	key := keyOwnedBy(t, c, "dead")

	raw, handled, err := c.Exec(context.Background(), key)
	if err != nil || !handled || !bytes.Equal(raw, []byte(`7`)) {
		t.Fatalf("Exec = %s, %v, %v", raw, handled, err)
	}
	c.mu.Lock()
	redispatched, deadAlive := c.redispatched.Value(), c.members["dead"].alive
	c.mu.Unlock()
	if redispatched != 1 {
		t.Fatalf("redispatched = %d, want 1", redispatched)
	}
	if deadAlive {
		t.Fatal("unreachable worker still marked alive")
	}
}

// TestFabricExecDeclinesWithNoWorkers: an empty fabric falls back to
// local computation, never errors.
func TestFabricExecDeclinesWithNoWorkers(t *testing.T) {
	c := NewCoordinator(CoordinatorConfig{Logf: t.Logf})
	raw, handled, err := c.Exec(context.Background(), "v1|solo|app=art|cycles=1024")
	if raw != nil || handled || err != nil {
		t.Fatalf("Exec on empty fabric = %s, %v, %v; want declined", raw, handled, err)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.localFallback.Value() != 1 {
		t.Fatalf("localFallback = %d, want 1", c.localFallback.Value())
	}
}

// TestFabricWorkerRejectionEndsDispatch: a 4xx from a worker means the
// key itself is bad; the coordinator must not retry it around the ring.
func TestFabricWorkerRejectionEndsDispatch(t *testing.T) {
	rejections := 0
	rejecting := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		rejections++
		http.Error(w, "unknown key family", http.StatusNotFound)
	}))
	defer rejecting.Close()
	c := NewCoordinator(CoordinatorConfig{Logf: t.Logf})
	other := newFakeWorker(t, json.RawMessage(`1`))
	c.admit("rejector", rejecting.URL, 0)
	c.admit("other", other.srv.URL, 0)
	key := keyOwnedBy(t, c, "rejector")

	raw, handled, err := c.Exec(context.Background(), key)
	if raw != nil || handled || err != nil {
		t.Fatalf("Exec = %s, %v, %v; want local fallback", raw, handled, err)
	}
	if rejections != 1 || len(other.served) != 0 {
		t.Fatalf("rejections=%d otherServed=%v; a deterministic rejection must not ring-walk",
			rejections, other.served)
	}
}

// TestFabricStealing: a deeply queued owner loses the job to the
// least-loaded worker; affinity overrides the steal.
func TestFabricStealing(t *testing.T) {
	c := NewCoordinator(CoordinatorConfig{StealDepth: 4, Logf: t.Logf})
	c.admit("deep", "http://deep", 10)
	c.admit("idle", "http://idle", 0)
	key := keyOwnedBy(t, c, "deep")

	plan := c.plan(key)
	if len(plan) != 2 || plan[0].id != "idle" || plan[0].kind != "stolen" {
		t.Fatalf("plan with deep owner = %+v, want idle stolen first", plan)
	}

	// Equal load: the ring owner keeps the job.
	c.admit("deep", "http://deep", 1)
	plan = c.plan(key)
	if plan[0].id != "deep" || plan[0].kind != "owner" {
		t.Fatalf("plan with balanced load = %+v, want deep owner first", plan)
	}

	// A memo-warm worker beats both placements.
	c.admit("deep", "http://deep", 10)
	c.absorbRecent("deep", []string{key})
	plan = c.plan(key)
	if plan[0].id != "deep" || plan[0].kind != "affinity" {
		t.Fatalf("plan with affinity = %+v, want deep affinity first", plan)
	}
}

// TestFabricHeartbeatGossip drives the HTTP control plane end to end:
// register, store writes, and the incremental key log across beats.
func TestFabricHeartbeatGossip(t *testing.T) {
	c := NewCoordinator(CoordinatorConfig{Logf: t.Logf})
	srv := httptest.NewServer(c.Handler())
	defer srv.Close()

	post := func(path string, body, out any) int {
		t.Helper()
		raw, _ := json.Marshal(body)
		resp, err := http.Post(srv.URL+path, "application/json", bytes.NewReader(raw))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode == http.StatusOK && out != nil {
			if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
				t.Fatal(err)
			}
		}
		return resp.StatusCode
	}

	var reg RegisterResponse
	if code := post("/fabric/v1/register",
		RegisterRequest{Version: ProtocolVersion, ID: "w1", Addr: "http://w1"}, &reg); code != http.StatusOK {
		t.Fatalf("register: HTTP %d", code)
	}
	if reg.StoreSeq != 0 {
		t.Fatalf("fresh store seq = %d", reg.StoreSeq)
	}

	// Version skew is refused at the door.
	if code := post("/fabric/v1/register",
		RegisterRequest{Version: ProtocolVersion + 1, ID: "w2", Addr: "http://w2"}, nil); code != http.StatusBadRequest {
		t.Fatalf("future-version register: HTTP %d, want 400", code)
	}

	// Results stored through the coordinator's backend appear in the
	// next heartbeat's gossip.
	if err := c.Backend().Put(context.Background(), "key-a", json.RawMessage(`1`)); err != nil {
		t.Fatal(err)
	}
	if err := c.Backend().Put(context.Background(), "key-b", json.RawMessage(`2`)); err != nil {
		t.Fatal(err)
	}
	var hb1 HeartbeatResponse
	post("/fabric/v1/heartbeat", Heartbeat{Version: ProtocolVersion, ID: "w1", Addr: "http://w1", Seq: reg.StoreSeq}, &hb1)
	if len(hb1.NewKeys) != 2 || hb1.NewKeys[0] != "key-a" || hb1.NewKeys[1] != "key-b" {
		t.Fatalf("first beat NewKeys = %v", hb1.NewKeys)
	}
	var hb2 HeartbeatResponse
	post("/fabric/v1/heartbeat", Heartbeat{Version: ProtocolVersion, ID: "w1", Addr: "http://w1", Seq: hb1.StoreSeq}, &hb2)
	if len(hb2.NewKeys) != 0 {
		t.Fatalf("caught-up beat NewKeys = %v", hb2.NewKeys)
	}

	// RecentKeys gossip feeds dispatch affinity.
	post("/fabric/v1/heartbeat", Heartbeat{
		Version: ProtocolVersion, ID: "w1", Addr: "http://w1",
		Seq: hb2.StoreSeq, RecentKeys: []string{"key-a"},
	}, nil)
	c.mu.Lock()
	aff := c.affinity["key-a"]
	c.mu.Unlock()
	if aff != "w1" {
		t.Fatalf("affinity[key-a] = %q, want w1", aff)
	}
}

func TestFabricStoreLogWindow(t *testing.T) {
	l := newStoreLog(NewMemStore())
	for i := 0; i < storeLogCap+10; i++ {
		if err := l.Put(context.Background(), fmt.Sprintf("k%d", i), json.RawMessage(`0`)); err != nil {
			t.Fatal(err)
		}
	}
	// A reader from the beginning only sees the retained window.
	keys, seq := l.since(0)
	if len(keys) != storeLogCap {
		t.Fatalf("since(0) returned %d keys, want the %d-key window", len(keys), storeLogCap)
	}
	if seq != uint64(storeLogCap+10) {
		t.Fatalf("seq = %d, want %d", seq, storeLogCap+10)
	}
	if keys[len(keys)-1] != fmt.Sprintf("k%d", storeLogCap+9) {
		t.Fatalf("window ends at %s", keys[len(keys)-1])
	}
	// A caught-up reader sees exactly the new keys.
	if err := l.Put(context.Background(), "fresh", json.RawMessage(`1`)); err != nil {
		t.Fatal(err)
	}
	keys, _ = l.since(seq)
	if len(keys) != 1 || keys[0] != "fresh" {
		t.Fatalf("incremental since = %v", keys)
	}
	// Consecutive duplicate puts log once.
	if err := l.Put(context.Background(), "fresh", json.RawMessage(`1`)); err != nil {
		t.Fatal(err)
	}
	if keys, _ := l.since(seq); len(keys) != 1 {
		t.Fatalf("duplicate put re-logged: %v", keys)
	}
}
