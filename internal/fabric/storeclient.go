package fabric

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"sync"

	"smthill/internal/obs"
	"smthill/internal/sweep"
)

// StoreClient is a sweep.Backend backed by a remote fabric store with a
// local read-through cache: Get consults the local backend first, then
// fetches from the store (caching what it finds); Put writes through to
// both. A worker plugs a StoreClient into its engine, so every memo
// miss transparently checks whether any other node already computed the
// key before burning cycles on it.
//
// The remote side is strictly best-effort: an unreachable store makes
// Get a local-only lookup and Put a local-only write. Nothing blocks on
// the network holding a lock, and no store failure can fail a job.
//
// Requests propagate the caller's trace context as a traceparent
// header, so store round-trips show up as client spans inside the
// job's distributed trace.
type StoreClient struct {
	base  string // store endpoint, e.g. "http://coord:8080/fabric/v1/store"
	local sweep.Backend
	hc    *http.Client

	mu    sync.Mutex
	known map[string]bool // guarded by mu; keys gossip says the store holds

	reg      *obs.Registry
	outcomes *obs.CounterVec // outcome
}

// NewStoreClient builds a client for the store mounted under baseURL
// (the node base, e.g. "http://coord:8080"; the store path is
// appended). local is the read-through cache — typically the node's
// disk cache, or a MemStore — and may be nil for remote-only operation.
// hc may be nil for http.DefaultClient.
func NewStoreClient(baseURL string, local sweep.Backend, hc *http.Client) *StoreClient {
	if hc == nil {
		hc = http.DefaultClient
	}
	reg := obs.NewRegistry()
	c := &StoreClient{
		base:  baseURL + "/fabric/v1/store",
		local: local,
		hc:    hc,
		known: map[string]bool{},
		reg:   reg,
		outcomes: reg.CounterVec("smtserved_fabric_store_client_total",
			"store client operations by outcome", "outcome"),
	}
	for _, o := range []string{
		"local_hit", "remote_hit", "miss", "put", "put_error",
		"revalidated", "refreshed", "net_error",
	} {
		c.outcomes.With(o)
	}
	reg.GaugeFunc("smtserved_fabric_store_known_keys",
		"distinct keys gossip or local puts say the store holds",
		func() float64 { return float64(c.KnownKeys()) })
	return c
}

// Registry returns the client's metric registry, for attachment into a
// node-wide one.
func (c *StoreClient) Registry() *obs.Registry { return c.reg }

func (c *StoreClient) keyURL(key string) string {
	return c.base + "?key=" + url.QueryEscape(key)
}

// Get implements sweep.Backend: local cache first, then the store; a
// store hit is written back locally so the next lookup is free.
func (c *StoreClient) Get(ctx context.Context, key string) (json.RawMessage, bool) {
	if c.local != nil {
		if raw, ok := c.local.Get(ctx, key); ok {
			c.outcomes.With("local_hit").Inc()
			return raw, true
		}
	}
	raw, ok := c.fetch(ctx, key, "")
	if !ok {
		return nil, false
	}
	c.outcomes.With("remote_hit").Inc()
	if c.local != nil {
		_ = c.local.Put(ctx, key, raw)
	}
	return raw, true
}

// fetch GETs one key, optionally conditionally. ok=false covers miss
// and network failure alike (each counted); a 304 returns ok=false with
// notModified=true.
func (c *StoreClient) fetch(ctx context.Context, key, ifNoneMatch string) (raw json.RawMessage, ok bool) {
	ctx, span := obs.Start(ctx, "store.get", obs.KindClient)
	span.SetAttr("key", key)
	outcome := func(o string, err error) {
		span.SetAttr("outcome", o)
		span.End(err)
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.keyURL(key), nil)
	if err != nil {
		c.outcomes.With("net_error").Inc()
		outcome("net_error", err)
		return nil, false
	}
	obs.Inject(ctx, req.Header)
	if ifNoneMatch != "" {
		req.Header.Set("If-None-Match", ifNoneMatch)
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		c.outcomes.With("net_error").Inc()
		outcome("net_error", err)
		return nil, false
	}
	defer resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusOK:
		raw, err := io.ReadAll(io.LimitReader(resp.Body, maxResultBytes))
		if err != nil || !json.Valid(raw) {
			c.outcomes.With("net_error").Inc()
			outcome("net_error", fmt.Errorf("fabric: store get %s: bad body", key))
			return nil, false
		}
		outcome("remote_hit", nil)
		return raw, true
	case http.StatusNotModified:
		c.outcomes.With("revalidated").Inc()
		outcome("revalidated", nil)
		return nil, false
	case http.StatusNotFound:
		c.outcomes.With("miss").Inc()
		outcome("miss", nil)
		return nil, false
	default:
		c.outcomes.With("net_error").Inc()
		outcome("net_error", fmt.Errorf("fabric: store get %s: HTTP %d", key, resp.StatusCode))
		return nil, false
	}
}

// Put implements sweep.Backend: the local write always happens; the
// remote write is best-effort (the engine treats Put errors as
// non-fatal, and the gossip log means a missed upload only costs a
// recompute elsewhere).
func (c *StoreClient) Put(ctx context.Context, key string, raw json.RawMessage) error {
	if c.local != nil {
		_ = c.local.Put(ctx, key, raw)
	}
	ctx, span := obs.Start(ctx, "store.put", obs.KindClient)
	span.SetAttr("key", key)
	err := c.putRemote(ctx, key, raw)
	span.End(err)
	return err
}

func (c *StoreClient) putRemote(ctx context.Context, key string, raw json.RawMessage) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodPut, c.keyURL(key), bytes.NewReader(raw))
	if err != nil {
		c.outcomes.With("put_error").Inc()
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	obs.Inject(ctx, req.Header)
	resp, err := c.hc.Do(req)
	if err != nil {
		c.outcomes.With("put_error").Inc()
		return err
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent && resp.StatusCode != http.StatusOK {
		c.outcomes.With("put_error").Inc()
		return fmt.Errorf("fabric: store put %s: HTTP %d", key, resp.StatusCode)
	}
	c.outcomes.With("put").Inc()
	c.mu.Lock()
	c.known[key] = true
	c.mu.Unlock()
	return nil
}

// MarkKnown records gossiped keys (results some node has stored). Keys
// already held locally are revalidated with a conditional fetch — the
// ETag is the content hash, so the client recomputes it from its local
// copy and a match costs only headers. Keys not held locally are just
// remembered; they fetch lazily if the engine ever asks.
//
// ctx bounds the revalidation fetches: it is the heartbeat's context,
// so a worker shutting down mid-gossip abandons the network work
// instead of hanging on it (the keys are still recorded).
func (c *StoreClient) MarkKnown(ctx context.Context, keys []string) {
	for _, key := range keys {
		c.mu.Lock()
		seen := c.known[key]
		c.known[key] = true
		c.mu.Unlock()
		if seen || c.local == nil {
			continue
		}
		local, ok := c.local.Get(ctx, key)
		if !ok {
			continue
		}
		if raw, ok := c.fetch(ctx, key, etagFor(local)); ok {
			// The store holds different bytes than we do. Determinism
			// makes this near-impossible for a same-version cluster, but
			// the store is authoritative: adopt its copy.
			_ = c.local.Put(ctx, key, raw)
			c.outcomes.With("refreshed").Inc()
		}
	}
}

// KnownKeys returns how many distinct keys gossip (or our own puts)
// says the store holds.
func (c *StoreClient) KnownKeys() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.known)
}

// WriteMetrics renders the client's counters in exposition format. The
// outcome label says where a result came from, so an operator can read
// the local/remote hit split per node.
func (c *StoreClient) WriteMetrics(w io.Writer) { c.reg.Write(w) }
