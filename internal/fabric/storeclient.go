package fabric

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"sync"

	"smthill/internal/sweep"
)

// StoreClient is a sweep.Backend backed by a remote fabric store with a
// local read-through cache: Get consults the local backend first, then
// fetches from the store (caching what it finds); Put writes through to
// both. A worker plugs a StoreClient into its engine, so every memo
// miss transparently checks whether any other node already computed the
// key before burning cycles on it.
//
// The remote side is strictly best-effort: an unreachable store makes
// Get a local-only lookup and Put a local-only write. Nothing blocks on
// the network holding a lock, and no store failure can fail a job.
type StoreClient struct {
	base  string // store endpoint, e.g. "http://coord:8080/fabric/v1/store"
	local sweep.Backend
	hc    *http.Client

	mu          sync.Mutex
	known       map[string]bool // keys gossip says the store holds
	localHits   uint64
	remoteHits  uint64
	misses      uint64
	puts        uint64
	putErrors   uint64
	revalidated uint64
	refreshed   uint64
	netErrors   uint64
}

// NewStoreClient builds a client for the store mounted under baseURL
// (the node base, e.g. "http://coord:8080"; the store path is
// appended). local is the read-through cache — typically the node's
// disk cache, or a MemStore — and may be nil for remote-only operation.
// hc may be nil for http.DefaultClient.
func NewStoreClient(baseURL string, local sweep.Backend, hc *http.Client) *StoreClient {
	if hc == nil {
		hc = http.DefaultClient
	}
	return &StoreClient{
		base:  baseURL + "/fabric/v1/store",
		local: local,
		hc:    hc,
		known: map[string]bool{},
	}
}

func (c *StoreClient) keyURL(key string) string {
	return c.base + "?key=" + url.QueryEscape(key)
}

// Get implements sweep.Backend: local cache first, then the store; a
// store hit is written back locally so the next lookup is free.
func (c *StoreClient) Get(key string) (json.RawMessage, bool) {
	if c.local != nil {
		if raw, ok := c.local.Get(key); ok {
			c.count(&c.localHits)
			return raw, true
		}
	}
	raw, ok := c.fetch(key, "")
	if !ok {
		return nil, false
	}
	c.count(&c.remoteHits)
	if c.local != nil {
		_ = c.local.Put(key, raw)
	}
	return raw, true
}

// fetch GETs one key, optionally conditionally. ok=false covers miss
// and network failure alike (each counted); a 304 returns ok=false with
// notModified=true.
func (c *StoreClient) fetch(key, ifNoneMatch string) (raw json.RawMessage, ok bool) {
	req, err := http.NewRequest(http.MethodGet, c.keyURL(key), nil)
	if err != nil {
		c.count(&c.netErrors)
		return nil, false
	}
	if ifNoneMatch != "" {
		req.Header.Set("If-None-Match", ifNoneMatch)
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		c.count(&c.netErrors)
		return nil, false
	}
	defer resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusOK:
		raw, err := io.ReadAll(io.LimitReader(resp.Body, maxResultBytes))
		if err != nil || !json.Valid(raw) {
			c.count(&c.netErrors)
			return nil, false
		}
		return raw, true
	case http.StatusNotModified:
		c.count(&c.revalidated)
		return nil, false
	case http.StatusNotFound:
		c.count(&c.misses)
		return nil, false
	default:
		c.count(&c.netErrors)
		return nil, false
	}
}

// Put implements sweep.Backend: the local write always happens; the
// remote write is best-effort (the engine treats Put errors as
// non-fatal, and the gossip log means a missed upload only costs a
// recompute elsewhere).
func (c *StoreClient) Put(key string, raw json.RawMessage) error {
	if c.local != nil {
		_ = c.local.Put(key, raw)
	}
	req, err := http.NewRequest(http.MethodPut, c.keyURL(key), bytes.NewReader(raw))
	if err != nil {
		c.count(&c.putErrors)
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := c.hc.Do(req)
	if err != nil {
		c.count(&c.putErrors)
		return err
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent && resp.StatusCode != http.StatusOK {
		c.count(&c.putErrors)
		return fmt.Errorf("fabric: store put %s: HTTP %d", key, resp.StatusCode)
	}
	c.count(&c.puts)
	c.mu.Lock()
	c.known[key] = true
	c.mu.Unlock()
	return nil
}

// MarkKnown records gossiped keys (results some node has stored). Keys
// already held locally are revalidated with a conditional fetch — the
// ETag is the content hash, so the client recomputes it from its local
// copy and a match costs only headers. Keys not held locally are just
// remembered; they fetch lazily if the engine ever asks.
func (c *StoreClient) MarkKnown(keys []string) {
	for _, key := range keys {
		c.mu.Lock()
		seen := c.known[key]
		c.known[key] = true
		c.mu.Unlock()
		if seen || c.local == nil {
			continue
		}
		local, ok := c.local.Get(key)
		if !ok {
			continue
		}
		if raw, ok := c.fetch(key, etagFor(local)); ok {
			// The store holds different bytes than we do. Determinism
			// makes this near-impossible for a same-version cluster, but
			// the store is authoritative: adopt its copy.
			_ = c.local.Put(key, raw)
			c.count(&c.refreshed)
		}
	}
}

// KnownKeys returns how many distinct keys gossip (or our own puts)
// says the store holds.
func (c *StoreClient) KnownKeys() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.known)
}

func (c *StoreClient) count(u *uint64) {
	c.mu.Lock()
	*u++
	c.mu.Unlock()
}

// WriteMetrics renders the client's counters in exposition format. The
// outcome label says where a result came from, so an operator can read
// the local/remote hit split per node.
func (c *StoreClient) WriteMetrics(w io.Writer) {
	c.mu.Lock()
	defer c.mu.Unlock()
	fmt.Fprintf(w, "smtserved_fabric_store_client_total{outcome=\"local_hit\"} %d\n", c.localHits)
	fmt.Fprintf(w, "smtserved_fabric_store_client_total{outcome=\"remote_hit\"} %d\n", c.remoteHits)
	fmt.Fprintf(w, "smtserved_fabric_store_client_total{outcome=\"miss\"} %d\n", c.misses)
	fmt.Fprintf(w, "smtserved_fabric_store_client_total{outcome=\"put\"} %d\n", c.puts)
	fmt.Fprintf(w, "smtserved_fabric_store_client_total{outcome=\"put_error\"} %d\n", c.putErrors)
	fmt.Fprintf(w, "smtserved_fabric_store_client_total{outcome=\"revalidated\"} %d\n", c.revalidated)
	fmt.Fprintf(w, "smtserved_fabric_store_client_total{outcome=\"refreshed\"} %d\n", c.refreshed)
	fmt.Fprintf(w, "smtserved_fabric_store_client_total{outcome=\"net_error\"} %d\n", c.netErrors)
	fmt.Fprintf(w, "smtserved_fabric_store_known_keys %d\n", len(c.known))
}
