package fabric

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"smthill/internal/experiment"
	"smthill/internal/obs"
	"smthill/internal/simjob"
	"smthill/internal/sweep"
)

// tinyExecSpec is a simulation that completes in milliseconds, for
// exercising the exec hop directly.
func tinyExecSpec() simjob.Spec {
	return simjob.Spec{
		Workload: "art-mcf", Tech: "ICOUNT",
		Epochs: 2, EpochSize: 2048, Warmup: 1,
	}
}

// execOnce posts one exec request to a worker handler with the given
// headers and decodes the response.
func execOnce(t *testing.T, h http.Handler, key string, hdr http.Header) (ExecResponse, int) {
	t.Helper()
	body, _ := json.Marshal(ExecRequest{Version: ProtocolVersion, Key: key})
	req := httptest.NewRequest("POST", "/fabric/v1/exec", bytes.NewReader(body))
	for k, vs := range hdr {
		for _, v := range vs {
			req.Header.Add(k, v)
		}
	}
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	var er ExecResponse
	if rec.Code == http.StatusOK {
		if err := json.Unmarshal(rec.Body.Bytes(), &er); err != nil {
			t.Fatalf("exec response not JSON: %v", err)
		}
	}
	return er, rec.Code
}

// TestExecHopTraceRoundTrip drives the worker's exec endpoint through a
// real HTTP exchange: a sampled traceparent must come back as backhauled
// spans in the same trace, and a malformed or missing header must yield
// a fresh root span — never propagated garbage.
func TestExecHopTraceRoundTrip(t *testing.T) {
	tracer := obs.NewTracer(obs.TracerConfig{Node: "w1", SampleN: 1})
	eng := sweep.NewEngine(1)
	w := NewWorker(WorkerConfig{
		ID: "w1", CoordinatorURL: "http://unused", AdvertiseURL: "http://unused",
		Tracer: tracer,
	}, eng, nil)

	parent := obs.SpanContext{
		Trace:   "0123456789abcdef0123456789abcdef",
		Span:    "0123456789abcdef",
		Sampled: true,
	}
	hdr := make(http.Header)
	hdr.Set(obs.TraceparentHeader, parent.Traceparent())
	er, code := execOnce(t, w.Handler(), tinyExecSpec().Key(), hdr)
	if code != http.StatusOK {
		t.Fatalf("exec returned %d", code)
	}
	if len(er.Spans) == 0 {
		t.Fatal("sampled cross-node exec backhauled no spans")
	}
	names := map[string]bool{}
	for _, d := range er.Spans {
		if d.Trace != parent.Trace {
			t.Errorf("backhauled span %s is in trace %s, want %s", d.Name, d.Trace, parent.Trace)
		}
		if d.Node != "w1" {
			t.Errorf("backhauled span %s lacks the worker node label: %q", d.Name, d.Node)
		}
		names[d.Name] = true
	}
	if !names["fabric.exec"] || !names["sweep.exec"] {
		t.Errorf("backhauled spans missing the exec/compute pair: %v", names)
	}
	// The server span continues the remote parent directly.
	for _, d := range er.Spans {
		if d.Name == "fabric.exec" && d.Parent != parent.Span {
			t.Errorf("fabric.exec parent = %q, want %q", d.Parent, parent.Span)
		}
	}

	// Malformed traceparent: the worker opens a fresh root and backhauls
	// nothing (there is no sampled remote trace to join).
	badHdr := make(http.Header)
	badHdr.Set(obs.TraceparentHeader, "00-garbage-garbage-zz")
	before := tracer.Len()
	er, code = execOnce(t, w.Handler(), tinyExecSpec().Key(), badHdr)
	if code != http.StatusOK {
		t.Fatalf("exec with malformed traceparent returned %d", code)
	}
	if len(er.Spans) != 0 {
		t.Errorf("malformed traceparent backhauled %d spans, want 0", len(er.Spans))
	}
	fresh := tracer.Spans()[before:]
	var root *obs.SpanData
	for i := range fresh {
		if fresh[i].Name == "fabric.exec" {
			root = &fresh[i]
		}
	}
	if root == nil {
		t.Fatal("no fabric.exec span recorded for the malformed-header request")
	}
	if root.Parent != "" {
		t.Errorf("malformed traceparent did not yield a fresh root (parent=%q)", root.Parent)
	}
	if root.Trace == parent.Trace {
		t.Error("malformed traceparent joined the earlier trace")
	}

	// Missing header behaves the same as malformed.
	er, code = execOnce(t, w.Handler(), tinyExecSpec().Key(), nil)
	if code != http.StatusOK || len(er.Spans) != 0 {
		t.Errorf("missing traceparent: code=%d spans=%d, want 200/0", code, len(er.Spans))
	}
}

// startTracedWorker is startTestWorker plus a per-node tracer.
func startTracedWorker(t *testing.T, id, coordURL string, tracer *obs.Tracer) *testNode {
	t.Helper()
	wp := new(atomic.Pointer[Worker])
	srv := httptest.NewServer(http.HandlerFunc(func(rw http.ResponseWriter, r *http.Request) {
		if w := wp.Load(); w != nil {
			w.Handler().ServeHTTP(rw, r)
			return
		}
		http.Error(rw, "worker not ready", http.StatusServiceUnavailable)
	}))
	eng := sweep.NewEngine(2)
	store := NewStoreClient(coordURL, NewMemStore(), nil)
	eng.SetBackend(store)
	w := NewWorker(WorkerConfig{
		ID: id, CoordinatorURL: coordURL, AdvertiseURL: srv.URL,
		HeartbeatEvery: 25 * time.Millisecond, Logf: t.Logf, Tracer: tracer,
	}, eng, store)
	wp.Store(w)
	ctx, cancel := context.WithCancel(context.Background())
	w.Start(ctx)
	n := &testNode{id: id, w: w, srv: srv, cancel: cancel}
	t.Cleanup(n.kill)
	return n
}

// clusterMetrics renders the coordinator's federated exposition.
func clusterMetrics(t *testing.T, coord *Coordinator) string {
	t.Helper()
	rec := httptest.NewRecorder()
	coord.HandleClusterMetrics(rec, httptest.NewRequest("GET", "/metrics/cluster", nil))
	return rec.Body.String()
}

// waitClusterContains polls /metrics/cluster until every want substring
// appears (federation scrapes ride the heartbeat cadence).
func waitClusterContains(t *testing.T, coord *Coordinator, wants ...string) string {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	var out string
	for time.Now().Before(deadline) {
		out = clusterMetrics(t, coord)
		ok := true
		for _, w := range wants {
			if !strings.Contains(out, w) {
				ok = false
				break
			}
		}
		if ok {
			return out
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatalf("cluster exposition never contained %q:\n%s", wants, out)
	return ""
}

// TestObsSmoke is the CI observability smoke (make obs-smoke): an
// in-process coordinator and two traced workers run a traced fig4
// sweep; one trace ID must span submit-side dispatch, remote worker
// compute, and store write-back across at least two nodes, and the
// coordinator's /metrics/cluster must federate every live worker's
// series, marking a killed worker stale.
func TestObsSmoke(t *testing.T) {
	cfg := fabricCfg()

	coordTracer := obs.NewTracer(obs.TracerConfig{Node: "coord", SampleN: 1})
	coord := NewCoordinator(CoordinatorConfig{
		HeartbeatTimeout: 500 * time.Millisecond,
		ScrapeInterval:   25 * time.Millisecond,
		Tracer:           coordTracer,
		Logf:             t.Logf,
	})
	srv := httptest.NewServer(coord.Handler())
	t.Cleanup(srv.Close)
	eng := sweep.NewEngine(2)
	eng.SetBackend(coord.Backend())
	eng.SetRemote(coord)
	experiment.SetEngine(eng)
	t.Cleanup(func() { experiment.SetEngine(sweep.NewEngine(0)) })

	startTracedWorker(t, "w1", srv.URL, obs.NewTracer(obs.TracerConfig{Node: "w1", SampleN: 1}))
	w2 := startTracedWorker(t, "w2", srv.URL, obs.NewTracer(obs.TracerConfig{Node: "w2", SampleN: 1}))
	waitAlive(t, coord, 2)

	// One traced client request covering the whole fig4 sweep.
	ctx, root := coordTracer.StartRoot(context.Background(), "POST /v1/experiments", obs.KindServer)
	experiment.SetContext(ctx)
	t.Cleanup(func() { experiment.SetContext(context.Background()) })
	namedRun(t, cfg, "fig4", experiment.RunOptions{Workloads: "gzip-bzip2,art-mcf"})
	root.End(nil)

	traceID := root.Context().Trace
	spans := coordTracer.CollectTrace(traceID)
	names := map[string]bool{}
	nodes := map[string]bool{}
	for _, d := range spans {
		names[d.Name] = true
		nodes[d.Node] = true
	}
	for _, want := range []string{"POST /v1/experiments", "sweep.exec", "fabric.dispatch", "fabric.exec", "store.put"} {
		if !names[want] {
			t.Errorf("trace %s has no %q span (got %v)", traceID, want, names)
		}
	}
	if !nodes["coord"] || (!nodes["w1"] && !nodes["w2"]) {
		t.Errorf("trace does not span coordinator and a worker: nodes=%v", nodes)
	}

	// The same trace is visible through the debug endpoint.
	rec := httptest.NewRecorder()
	coordTracer.DebugHandler().ServeHTTP(rec,
		httptest.NewRequest("GET", "/debug/traces?trace="+traceID, nil))
	var dbg struct {
		Spans []obs.SpanData `json:"spans"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &dbg); err != nil {
		t.Fatalf("/debug/traces view not JSON: %v", err)
	}
	if len(dbg.Spans) != len(spans) {
		t.Errorf("/debug/traces shows %d spans, CollectTrace %d", len(dbg.Spans), len(spans))
	}

	// Federation: both workers' series appear node-labeled, live nodes
	// are up, and an aggregate row sums across them.
	out := waitClusterContains(t, coord,
		`smtserved_cluster_node_up{node="w1"} 1`,
		`smtserved_cluster_node_up{node="w2"} 1`,
		`smtserved_fabric_exec_served_total{node="w1",outcome="ok"}`,
		`smtserved_fabric_exec_served_total{node="w2",outcome="ok"}`,
		`smtserved_fabric_exec_served_total{outcome="ok"}`,
	)
	if !strings.Contains(out, `smtserved_cluster_node_stale{node="w1"} 0`) {
		t.Errorf("fresh worker rendered stale:\n%s", out)
	}
	if h := coord.Health(); h["cluster_nodes_fresh"] != 2 {
		t.Errorf("healthz cluster summary: %+v", h)
	}

	// Kill one worker; past the heartbeat timeout it must render stale
	// and drop out of the aggregates.
	w2.kill()
	waitClusterContains(t, coord,
		`smtserved_cluster_node_up{node="w2"} 0`,
		`smtserved_cluster_node_stale{node="w2"} 1`,
	)
	out = clusterMetrics(t, coord)
	if strings.Contains(out, `smtserved_fabric_exec_served_total{node="w2"`) {
		t.Errorf("dead worker's series still federated:\n%s", out)
	}
}
