package fabric

import (
	"os"
	"testing"

	"smthill/internal/lint/leakcheck"
)

// TestMain gates the suite on goroutine leaks: worker heartbeat loops,
// coordinator janitors, and store pollers must all stop with their
// owners.
func TestMain(m *testing.M) {
	os.Exit(leakcheck.Main(m))
}
