package fabric

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
)

func TestStoreServerGetPutETag(t *testing.T) {
	srv := httptest.NewServer(NewStoreServer(NewMemStore()))
	defer srv.Close()
	url := srv.URL + "?key=" + "v1%7Chill%7Cwl%3Dart-mcf"

	// Miss first.
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("GET before PUT: %d, want 404", resp.StatusCode)
	}

	// PUT stores and returns the content ETag.
	body := []byte(`{"ipc":[1.25,0.5]}`)
	req, _ := http.NewRequest(http.MethodPut, url, bytes.NewReader(body))
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("PUT: %d, want 204", resp.StatusCode)
	}
	etag := resp.Header.Get("ETag")
	if etag != etagFor(body) {
		t.Fatalf("PUT ETag = %q, want %q", etag, etagFor(body))
	}

	// GET returns the exact bytes and the same ETag.
	resp, err = http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	got, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !bytes.Equal(got, body) {
		t.Fatalf("GET = %d %q, want 200 %q", resp.StatusCode, got, body)
	}
	if resp.Header.Get("ETag") != etag {
		t.Fatalf("GET ETag = %q, want %q", resp.Header.Get("ETag"), etag)
	}

	// Conditional GET with the current ETag is a 304 without a body.
	req, _ = http.NewRequest(http.MethodGet, url, nil)
	req.Header.Set("If-None-Match", etag)
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	got, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotModified || len(got) != 0 {
		t.Fatalf("conditional GET = %d with %d body bytes, want 304 empty", resp.StatusCode, len(got))
	}

	// A stale validator still gets the full body.
	req, _ = http.NewRequest(http.MethodGet, url, nil)
	req.Header.Set("If-None-Match", `"0000"`)
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	got, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !bytes.Equal(got, body) {
		t.Fatalf("stale conditional GET = %d %q, want 200 body", resp.StatusCode, got)
	}
}

func TestStoreServerRejectsBadRequests(t *testing.T) {
	srv := httptest.NewServer(NewStoreServer(NewMemStore()))
	defer srv.Close()

	resp, err := http.Get(srv.URL) // no key
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("GET without key: %d, want 400", resp.StatusCode)
	}

	req, _ := http.NewRequest(http.MethodPut, srv.URL+"?key=k", strings.NewReader("not json"))
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("PUT invalid JSON: %d, want 400", resp.StatusCode)
	}
}

// storeTestServer mounts a StoreServer at the path StoreClient dials,
// mirroring the coordinator's mux topology.
func storeTestServer(backend *MemStore) *httptest.Server {
	mux := http.NewServeMux()
	mux.Handle("/fabric/v1/store", NewStoreServer(backend))
	return httptest.NewServer(mux)
}

func TestStoreClientReadThrough(t *testing.T) {
	remote := NewMemStore()
	srv := storeTestServer(remote)
	defer srv.Close()
	local := NewMemStore()
	c := NewStoreClient(srv.URL, local, nil)

	key := "v1|solo|app=art|cycles=1024"
	if _, ok := c.Get(context.Background(), key); ok {
		t.Fatal("Get on empty store succeeded")
	}

	want := json.RawMessage(`{"v":1}`)
	if err := remote.Put(context.Background(), key, want); err != nil {
		t.Fatal(err)
	}
	got, ok := c.Get(context.Background(), key)
	if !ok || !bytes.Equal(got, want) {
		t.Fatalf("Get after remote put = %q, %v", got, ok)
	}
	// The remote hit was written back locally: a second Get must not
	// need the network.
	srv.Close()
	got, ok = c.Get(context.Background(), key)
	if !ok || !bytes.Equal(got, want) {
		t.Fatalf("Get after server death = %q, %v; want local copy", got, ok)
	}
	c.mu.Lock()
	localHits, remoteHits := c.outcomes.With("local_hit").Value(), c.outcomes.With("remote_hit").Value()
	c.mu.Unlock()
	if localHits != 1 || remoteHits != 1 {
		t.Fatalf("hit counters local=%d remote=%d, want 1 and 1", localHits, remoteHits)
	}
}

func TestStoreClientPutWritesThrough(t *testing.T) {
	remote := NewMemStore()
	srv := storeTestServer(remote)
	defer srv.Close()
	local := NewMemStore()
	c := NewStoreClient(srv.URL, local, nil)

	key, raw := "k1", json.RawMessage(`[1,2,3]`)
	if err := c.Put(context.Background(), key, raw); err != nil {
		t.Fatal(err)
	}
	if got, ok := remote.Get(context.Background(), key); !ok || !bytes.Equal(got, raw) {
		t.Fatalf("remote after Put = %q, %v", got, ok)
	}
	if got, ok := local.Get(context.Background(), key); !ok || !bytes.Equal(got, raw) {
		t.Fatalf("local after Put = %q, %v", got, ok)
	}
}

func TestStoreClientOfflineDegradesToLocal(t *testing.T) {
	local := NewMemStore()
	c := NewStoreClient("http://127.0.0.1:1", local, nil) // nothing listens
	key, raw := "k", json.RawMessage(`true`)
	if err := c.Put(context.Background(), key, raw); err == nil {
		t.Fatal("Put against a dead store reported success")
	}
	if got, ok := c.Get(context.Background(), key); !ok || !bytes.Equal(got, raw) {
		t.Fatalf("local Get after offline Put = %q, %v", got, ok)
	}
}

func TestStoreClientMarkKnownRevalidates(t *testing.T) {
	remote := NewMemStore()
	srv := storeTestServer(remote)
	defer srv.Close()
	local := NewMemStore()
	c := NewStoreClient(srv.URL, local, nil)

	same := json.RawMessage(`{"x":1}`)
	if err := remote.Put(context.Background(), "same", same); err != nil {
		t.Fatal(err)
	}
	if err := local.Put(context.Background(), "same", same); err != nil {
		t.Fatal(err)
	}
	drifted := json.RawMessage(`{"x":2}`)
	if err := remote.Put(context.Background(), "drift", drifted); err != nil {
		t.Fatal(err)
	}
	if err := local.Put(context.Background(), "drift", json.RawMessage(`{"x":1}`)); err != nil {
		t.Fatal(err)
	}

	c.MarkKnown(context.Background(), []string{"same", "drift", "absent"})
	c.mu.Lock()
	revalidated, refreshed := c.outcomes.With("revalidated").Value(), c.outcomes.With("refreshed").Value()
	c.mu.Unlock()
	if revalidated != 1 {
		t.Errorf("revalidated = %d, want 1 (matching copy costs only headers)", revalidated)
	}
	if refreshed != 1 {
		t.Errorf("refreshed = %d, want 1 (drifted copy adopts store bytes)", refreshed)
	}
	if got, _ := local.Get(context.Background(), "drift"); !bytes.Equal(got, drifted) {
		t.Errorf("local drift copy = %q, want store's %q", got, drifted)
	}
	if got, ok := local.Get(context.Background(), "absent"); ok {
		t.Errorf("MarkKnown prefetched %q; gossip should stay lazy", got)
	}
	if c.KnownKeys() != 3 {
		t.Errorf("KnownKeys = %d, want 3", c.KnownKeys())
	}
	// Re-gossip of known keys is a no-op (no second revalidation).
	c.MarkKnown(context.Background(), []string{"same"})
	c.mu.Lock()
	if c.outcomes.With("revalidated").Value() != revalidated {
		t.Errorf("re-gossip revalidated again (%d)", c.outcomes.With("revalidated").Value())
	}
	c.mu.Unlock()
}

// TestStoreClientMarkKnownHonorsContext is the regression test for the
// ctxprop fix: MarkKnown used to mint context.Background() internally,
// so a worker shutting down mid-heartbeat could hang on revalidation
// fetches nothing would ever cancel. The heartbeat's context now bounds
// them: a cancelled ctx reaches the store client, the fetch aborts, and
// the keys are still recorded for lazy access.
func TestStoreClientMarkKnownHonorsContext(t *testing.T) {
	remote := NewMemStore()
	var hits int32
	mux := http.NewServeMux()
	mux.HandleFunc("/fabric/v1/store", func(w http.ResponseWriter, r *http.Request) {
		atomic.AddInt32(&hits, 1)
		NewStoreServer(remote).ServeHTTP(w, r)
	})
	srv := httptest.NewServer(mux)
	defer srv.Close()

	local := NewMemStore()
	if err := local.Put(context.Background(), "held", json.RawMessage(`{"x":1}`)); err != nil {
		t.Fatal(err)
	}
	c := NewStoreClient(srv.URL, local, nil)

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	c.MarkKnown(ctx, []string{"held"})

	if got := atomic.LoadInt32(&hits); got != 0 {
		t.Errorf("cancelled MarkKnown still reached the store (%d request(s))", got)
	}
	if c.outcomes.With("net_error").Value() != 1 {
		t.Errorf("net_error = %d, want 1 (aborted revalidation)", c.outcomes.With("net_error").Value())
	}
	if c.KnownKeys() != 1 {
		t.Error("cancelled MarkKnown dropped the gossiped key; recording must not depend on the fetch")
	}
}
