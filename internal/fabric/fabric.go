// Package fabric distributes the sweep engine across processes: a
// coordinator consistent-hashes job keys over registered worker nodes,
// workers execute keys on their local engines, and a shared
// content-addressed result store (plus memo-gossip piggybacked on
// heartbeats) lets every node serve what any node computed.
//
// The design leans entirely on the sweep package's determinism
// contract: a job key uniquely determines its result, and results
// round-trip JSON byte-exactly. Keys are therefore the only thing that
// crosses the wire — a worker rebuilds the job from its key
// (simjob.SpecFromKey, experiment.ExecKeyOn) and returns the engine's
// stored bytes, which the coordinator adopts verbatim. Distribution is
// an optimisation, never a correctness dependency: any failure
// (unreachable worker, version skew, unknown key family) falls back to
// local computation and produces the same bytes.
//
// Topology: the coordinator owns the result store and the hash ring.
// Workers register over HTTP, then heartbeat periodically; a heartbeat
// carries the worker's queue depth (feeding work-stealing), the keys it
// computed since the last beat (feeding the coordinator's dispatch
// affinity), and its store-log position (the response returns keys
// newly stored by other nodes, which the worker's store client
// revalidates with conditional fetches). A worker that misses
// heartbeats past the liveness timeout is reaped from the ring; jobs
// in flight to it are re-dispatched to surviving workers the moment
// the connection fails, so a mid-sweep worker death costs a retry,
// not the sweep.
//
// The package deliberately sits outside the simulator's determinism
// boundary (see internal/lint's nondeterminism rule): it reads the
// wall clock for liveness and latency only; nothing here feeds
// simulator state.
package fabric

import (
	"encoding/json"
	"fmt"

	"smthill/internal/obs"
)

// ProtocolVersion stamps every fabric wire message. A node receiving a
// message with a version it does not speak refuses it; the sender then
// treats the peer as unusable and computes locally, so a mixed-version
// cluster degrades to standalone behaviour instead of exchanging bytes
// with drifted semantics.
const ProtocolVersion = 1

// checkProtoVersion rejects messages from nodes speaking a different
// fabric protocol revision.
func checkProtoVersion(v int) error {
	if v != ProtocolVersion {
		return fmt.Errorf("fabric: protocol version %d, want %d", v, ProtocolVersion)
	}
	return nil
}

// RegisterRequest announces a worker to the coordinator.
type RegisterRequest struct {
	Version int    `json:"version"`
	ID      string `json:"id"`
	Addr    string `json:"addr"` // base URL the coordinator dials back
}

// RegisterResponse acknowledges registration and tells the worker where
// the store log currently ends, so its first heartbeat asks only for
// keys stored after it joined.
type RegisterResponse struct {
	Version  int    `json:"version"`
	StoreSeq uint64 `json:"store_seq"`
}

// Heartbeat is a worker's periodic liveness report. RecentKeys lists
// keys the worker computed (not cache hits) since its previous beat —
// the memo-gossip that feeds the coordinator's dispatch affinity. Seq
// is the store-log position from the previous HeartbeatResponse.
type Heartbeat struct {
	Version    int      `json:"version"`
	ID         string   `json:"id"`
	Addr       string   `json:"addr"`
	QueueDepth int      `json:"queue_depth"`
	Seq        uint64   `json:"seq"`
	RecentKeys []string `json:"recent_keys,omitempty"`
}

// HeartbeatResponse returns the gossip flowing the other way: keys the
// store gained since the worker's Seq (capped; a lagging worker catches
// up over several beats) and the new log position.
type HeartbeatResponse struct {
	Version  int      `json:"version"`
	StoreSeq uint64   `json:"store_seq"`
	NewKeys  []string `json:"new_keys,omitempty"`
}

// ExecRequest asks a worker to execute one job key.
type ExecRequest struct {
	Version int    `json:"version"`
	Key     string `json:"key"`
}

// ExecResponse carries the result bytes back. Result is the worker
// engine's stored JSON for the key, verbatim — the coordinator adopts
// it without re-encoding so distributed results stay byte-identical to
// local ones. QueueDepth lets every exec round-trip refresh the
// coordinator's load view between heartbeats. Spans backhauls the
// worker-side trace spans of this execution (server span, engine
// compute, learning epochs, store round-trips) when the request
// carried a sampled traceparent; the coordinator adopts them so its
// /debug/traces shows the whole cross-node trace.
type ExecResponse struct {
	Version    int             `json:"version"`
	Key        string          `json:"key"`
	Result     json.RawMessage `json:"result"`
	QueueDepth int             `json:"queue_depth"`
	Spans      []obs.SpanData  `json:"spans,omitempty"`
}
