package fabric

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"smthill/internal/experiment"
	"smthill/internal/obs"
	"smthill/internal/simjob"
	"smthill/internal/sweep"
)

// recentKeysCap bounds the computed-keys buffer between heartbeats; a
// worker churning faster than it can gossip drops the oldest hints.
const recentKeysCap = 1024

// WorkerConfig parameterises a Worker.
type WorkerConfig struct {
	// ID names this worker in the coordinator's membership (required;
	// usually host:port).
	ID string
	// CoordinatorURL is the coordinator's base URL (required).
	CoordinatorURL string
	// AdvertiseURL is the base URL the coordinator dials back for exec
	// requests (required).
	AdvertiseURL string
	// HeartbeatEvery is the beat interval (default 2s). Keep it well
	// under the coordinator's HeartbeatTimeout.
	HeartbeatEvery time.Duration
	// Client performs control-plane HTTP (default http.DefaultClient).
	Client *http.Client
	// Logf receives operational log lines (nil = discard).
	Logf func(format string, args ...any)
	// Tracer, when set, records a server span per exec request (with
	// engine and epoch child spans beneath it) and backhauls the spans
	// of sampled cross-node traces in the exec response for the
	// coordinator to adopt.
	Tracer *obs.Tracer
}

func (c WorkerConfig) withDefaults() WorkerConfig {
	if c.HeartbeatEvery <= 0 {
		c.HeartbeatEvery = 2 * time.Second
	}
	if c.Client == nil {
		c.Client = http.DefaultClient
	}
	if c.Logf == nil {
		c.Logf = func(string, ...any) {}
	}
	return c
}

// Worker is a fabric execution node: it registers with the coordinator,
// heartbeats liveness plus memo-gossip, and serves /fabric/v1/exec by
// rebuilding jobs from their keys on its local engine. Simulation specs
// resolve through simjob.SpecFromKey, experiment families through
// experiment.ExecKeyOn; a key neither recognises is refused (the
// coordinator then computes it locally).
type Worker struct {
	cfg     WorkerConfig
	eng     *sweep.Engine
	store   *StoreClient // may be nil (no shared store)
	handler http.Handler

	inflight atomic.Int64
	lastSeq  atomic.Uint64

	reg     *obs.Registry
	execVec *obs.CounterVec // outcome
	hbVec   *obs.CounterVec // outcome

	recentMu sync.Mutex
	recent   []string // guarded by recentMu
}

// NewWorker builds a worker around an engine. Like the engine's other
// configuration hooks it must be called before the engine's first Run —
// it installs an observer that collects computed keys for gossip. store
// may be nil; when set, it should also be the engine's backend so
// remote results read through it.
func NewWorker(cfg WorkerConfig, eng *sweep.Engine, store *StoreClient) *Worker {
	reg := obs.NewRegistry()
	w := &Worker{
		cfg: cfg.withDefaults(), eng: eng, store: store,
		reg: reg,
		execVec: reg.CounterVec("smtserved_fabric_exec_served_total",
			"exec requests by outcome", "outcome"),
		hbVec: reg.CounterVec("smtserved_fabric_heartbeats_total",
			"heartbeat round-trips by outcome", "outcome"),
	}
	for _, o := range []string{"ok", "error", "unknown"} {
		w.execVec.With(o)
	}
	w.hbVec.With("ok")
	w.hbVec.With("error")
	reg.GaugeFunc("smtserved_fabric_exec_inflight",
		"exec requests currently executing",
		func() float64 { return float64(w.inflight.Load()) })
	if store != nil {
		reg.Attach(store.Registry())
	}
	eng.AddObserver(func(ev sweep.Event) {
		if ev.Kind == sweep.JobDone && ev.Source == sweep.FromRun {
			w.noteRecent(ev.Key)
		}
	})
	mux := http.NewServeMux()
	mux.HandleFunc("POST /fabric/v1/exec", w.handleExec)
	// A worker's own exposition endpoint: this is what the coordinator's
	// federation scrapes (AdvertiseURL + /metrics). On a full smtserved
	// node the serve mux fronts this handler; standalone harnesses mount
	// Handler() directly and still federate.
	mux.HandleFunc("GET /metrics", func(rw http.ResponseWriter, _ *http.Request) {
		rw.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		w.reg.Write(rw)
	})
	w.handler = mux
	return w
}

func (w *Worker) noteRecent(key string) {
	w.recentMu.Lock()
	w.recent = append(w.recent, key)
	if len(w.recent) > recentKeysCap {
		w.recent = w.recent[len(w.recent)-recentKeysCap:]
	}
	w.recentMu.Unlock()
}

// drainRecent takes the gossip batch for one heartbeat.
func (w *Worker) drainRecent() []string {
	w.recentMu.Lock()
	defer w.recentMu.Unlock()
	out := w.recent
	w.recent = nil
	return out
}

// requeueRecent puts an unsent gossip batch back (heartbeat failed) so
// the hints survive a flaky beat.
func (w *Worker) requeueRecent(keys []string) {
	if len(keys) == 0 {
		return
	}
	w.recentMu.Lock()
	w.recent = append(keys, w.recent...)
	if len(w.recent) > recentKeysCap {
		w.recent = w.recent[:recentKeysCap]
	}
	w.recentMu.Unlock()
}

// Handler returns the worker's HTTP surface (exec, metrics).
func (w *Worker) Handler() http.Handler { return w.handler }

// Registry returns the worker's metric registry (exec and heartbeat
// series, plus the store client's when present), for attachment into a
// node-wide one.
func (w *Worker) Registry() *obs.Registry { return w.reg }

// handleExec executes one key and returns the engine's stored bytes.
// Status codes are the dispatch contract: 200 success, 404 unknown key
// family (coordinator computes locally), 422 the key failed to execute
// (deterministic — retrying elsewhere would fail identically), 400
// protocol mismatch.
//
// When the request carries a sampled traceparent, the whole execution
// runs under a server span continuing that trace, and every span this
// worker recorded for the trace rides back in the response for the
// coordinator to adopt.
func (w *Worker) handleExec(rw http.ResponseWriter, r *http.Request) {
	var req ExecRequest
	if err := json.NewDecoder(http.MaxBytesReader(rw, r.Body, 1<<20)).Decode(&req); err != nil {
		http.Error(rw, fmt.Sprintf("bad exec request: %v", err), http.StatusBadRequest)
		return
	}
	if err := checkProtoVersion(req.Version); err != nil {
		http.Error(rw, err.Error(), http.StatusBadRequest)
		return
	}
	if req.Key == "" {
		http.Error(rw, "exec requires key", http.StatusBadRequest)
		return
	}
	w.inflight.Add(1)
	defer w.inflight.Add(-1)
	parent := obs.Extract(r.Header)
	ctx, span := w.cfg.Tracer.StartRemote(r.Context(), parent, "fabric.exec", obs.KindServer)
	span.SetAttr("key", req.Key)
	raw, ok, err := w.execKey(ctx, req.Key)
	switch {
	case err != nil:
		w.execVec.With("error").Inc()
		span.SetAttr("outcome", "error")
		span.End(err)
		http.Error(rw, err.Error(), http.StatusUnprocessableEntity)
	case !ok:
		w.execVec.With("unknown").Inc()
		span.SetAttr("outcome", "unknown")
		span.End(fmt.Errorf("unknown key family: %s", req.Key))
		http.Error(rw, fmt.Sprintf("unknown key family: %s", req.Key), http.StatusNotFound)
	default:
		w.execVec.With("ok").Inc()
		span.SetAttr("outcome", "ok")
		span.End(nil)
		var spans []obs.SpanData
		if parent.Valid() && parent.Sampled {
			spans = w.cfg.Tracer.CollectTrace(parent.Trace)
		}
		writeProtoJSON(rw, ExecResponse{
			Version: ProtocolVersion, Key: req.Key, Result: raw,
			QueueDepth: int(w.inflight.Load()) - 1, // exclude this request
			Spans:      spans,
		})
	}
}

// execKey resolves one key: warm engine state first, then the simjob
// family, then the experiment families.
func (w *Worker) execKey(ctx context.Context, key string) (json.RawMessage, bool, error) {
	if raw, _, ok := w.eng.Lookup(ctx, key); ok {
		return raw, true, nil
	}
	spec, ok, err := simjob.SpecFromKey(key)
	if err != nil {
		return nil, true, err
	}
	if ok {
		jobs := []sweep.Job[simjob.Result]{{
			Key: key,
			Run: func(ctx context.Context) (simjob.Result, error) {
				// EpochSpans resolves the compute span into per-epoch
				// slices; with tracing off it returns the nil sink as-is.
				return simjob.Run(ctx, spec, obs.EpochSpans(ctx, nil))
			},
		}}
		if _, err := sweep.Run(ctx, w.eng, jobs); err != nil {
			return nil, true, err
		}
		raw, _, ok := w.eng.Lookup(ctx, key)
		if !ok {
			return nil, true, fmt.Errorf("fabric: %s produced no cacheable result", key)
		}
		return raw, true, nil
	}
	return experiment.ExecKeyOn(ctx, w.eng, key)
}

// Start registers with the coordinator (retrying until ctx ends) and
// then heartbeats until ctx ends. It returns immediately; the control
// loop runs in a goroutine. Exec requests are served regardless of
// registration state — the handler is mounted by the caller.
func (w *Worker) Start(ctx context.Context) {
	go func() {
		backoff := 100 * time.Millisecond
		for {
			err := w.Register(ctx)
			if err == nil {
				break
			}
			w.cfg.Logf("fabric: register with %s: %v (retrying in %s)", w.cfg.CoordinatorURL, err, backoff)
			select {
			case <-ctx.Done():
				return
			case <-time.After(backoff):
			}
			if backoff *= 2; backoff > 2*time.Second {
				backoff = 2 * time.Second
			}
		}
		w.cfg.Logf("fabric: registered with %s as %s", w.cfg.CoordinatorURL, w.cfg.ID)
		t := time.NewTicker(w.cfg.HeartbeatEvery)
		defer t.Stop()
		for {
			select {
			case <-ctx.Done():
				return
			case <-t.C:
				if err := w.Heartbeat(ctx); err != nil {
					w.cfg.Logf("fabric: heartbeat: %v", err)
				}
			}
		}
	}()
}

// Register performs one registration round-trip.
func (w *Worker) Register(ctx context.Context) error {
	var resp RegisterResponse
	err := w.post(ctx, "/fabric/v1/register",
		RegisterRequest{Version: ProtocolVersion, ID: w.cfg.ID, Addr: w.cfg.AdvertiseURL}, &resp)
	if err != nil {
		return err
	}
	if err := checkProtoVersion(resp.Version); err != nil {
		return err
	}
	w.lastSeq.Store(resp.StoreSeq)
	return nil
}

// Heartbeat performs one beat: liveness + queue depth + gossip up,
// store news down.
func (w *Worker) Heartbeat(ctx context.Context) error {
	recent := w.drainRecent()
	hb := Heartbeat{
		Version: ProtocolVersion, ID: w.cfg.ID, Addr: w.cfg.AdvertiseURL,
		QueueDepth: int(w.inflight.Load()), Seq: w.lastSeq.Load(), RecentKeys: recent,
	}
	var resp HeartbeatResponse
	if err := w.post(ctx, "/fabric/v1/heartbeat", hb, &resp); err != nil {
		w.hbVec.With("error").Inc()
		w.requeueRecent(recent)
		return err
	}
	if err := checkProtoVersion(resp.Version); err != nil {
		w.hbVec.With("error").Inc()
		return err
	}
	w.hbVec.With("ok").Inc()
	w.lastSeq.Store(resp.StoreSeq)
	if w.store != nil && len(resp.NewKeys) > 0 {
		w.store.MarkKnown(ctx, resp.NewKeys)
	}
	return nil
}

func (w *Worker) post(ctx context.Context, path string, body, out any) error {
	raw, err := json.Marshal(body)
	if err != nil {
		return err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost,
		w.cfg.CoordinatorURL+path, bytes.NewReader(raw))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := w.cfg.Client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return fmt.Errorf("%s: HTTP %d: %s", path, resp.StatusCode, msg)
	}
	return json.NewDecoder(io.LimitReader(resp.Body, 8<<20)).Decode(out)
}

// Health returns the worker's /healthz contribution.
func (w *Worker) Health() map[string]any {
	h := map[string]any{
		"fabric_role":          "worker",
		"fabric_coordinator":   w.cfg.CoordinatorURL,
		"fabric_exec_inflight": w.inflight.Load(),
		"fabric_heartbeats_ok": w.hbVec.With("ok").Value(),
	}
	if w.store != nil {
		h["fabric_store_known_keys"] = w.store.KnownKeys()
	}
	return h
}

// WriteMetrics renders the worker's counters (plus its store client's,
// when present) in exposition format.
func (w *Worker) WriteMetrics(out io.Writer) { w.reg.Write(out) }
