package fabric

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"sync"
	"time"

	"smthill/internal/sweep"
	"smthill/internal/telemetry"
)

// CoordinatorConfig parameterises a Coordinator. The zero value of
// every field selects a default.
type CoordinatorConfig struct {
	// Store is the backing result store (default: a fresh MemStore).
	// Wire the coordinator's disk cache here to persist across runs.
	Store sweep.Backend
	// HeartbeatTimeout is how long a silent worker stays in the ring
	// before being reaped (default 10s).
	HeartbeatTimeout time.Duration
	// ExecTimeout bounds one dispatched job execution (default 10m,
	// matching serve's job timeout).
	ExecTimeout time.Duration
	// StealDepth triggers work-stealing: when the ring owner's reported
	// queue is more than StealDepth jobs deeper than the least-loaded
	// worker's, the job goes to the latter (default 4).
	StealDepth int
	// Vnodes is the ring's virtual-node count per worker (default 64).
	Vnodes int
	// AffinityKeys caps the key->worker affinity index (default 65536).
	AffinityKeys int
	// Client performs dispatch HTTP (default http.DefaultClient).
	Client *http.Client
	// Logf receives operational log lines (nil = discard).
	Logf func(format string, args ...any)
}

func (c CoordinatorConfig) withDefaults() CoordinatorConfig {
	if c.Store == nil {
		c.Store = NewMemStore()
	}
	if c.HeartbeatTimeout <= 0 {
		c.HeartbeatTimeout = 10 * time.Second
	}
	if c.ExecTimeout <= 0 {
		c.ExecTimeout = 10 * time.Minute
	}
	if c.StealDepth <= 0 {
		c.StealDepth = 4
	}
	if c.AffinityKeys <= 0 {
		c.AffinityKeys = 65536
	}
	if c.Client == nil {
		c.Client = http.DefaultClient
	}
	if c.Logf == nil {
		c.Logf = func(string, ...any) {}
	}
	return c
}

// member is the coordinator's view of one worker.
type member struct {
	id       string
	addr     string
	lastSeen time.Time
	depth    int
	alive    bool
}

// Coordinator owns the fabric's control plane: worker membership and
// liveness, the consistent-hash ring, the shared result store (served
// over HTTP with a gossip log), and job dispatch. It implements
// sweep.Remote, so installing it on an engine (sweep.SetRemote) makes
// every engine job transparently eligible for distribution; any
// dispatch failure falls back to local execution in the engine.
type Coordinator struct {
	cfg CoordinatorConfig
	now func() time.Time // injectable for liveness tests

	store    *storeLog
	storeSrv *StoreServer
	handler  http.Handler

	mu       sync.Mutex
	members  map[string]*member
	ring     *Ring
	affinity map[string]string
	affOrder []string // affinity insertion order, for cap eviction

	// counters (guarded by mu)
	dispatchOwner    uint64
	dispatchStolen   uint64
	dispatchAffinity uint64
	redispatched     uint64
	dispatchFailed   uint64
	localFallback    uint64
	reaped           uint64
	registered       uint64
	execMS           telemetry.Hist
}

// NewCoordinator builds a coordinator. Mount Handler under /fabric/v1/
// next to the serve API, install the coordinator on the serving
// engine with SetRemote(c) and SetBackend(c.Backend()), and workers do
// the rest.
func NewCoordinator(cfg CoordinatorConfig) *Coordinator {
	cfg = cfg.withDefaults()
	c := &Coordinator{
		cfg:      cfg,
		now:      time.Now,
		store:    newStoreLog(cfg.Store),
		members:  map[string]*member{},
		ring:     NewRing(cfg.Vnodes),
		affinity: map[string]string{},
	}
	c.storeSrv = NewStoreServer(c.store)
	mux := http.NewServeMux()
	mux.HandleFunc("POST /fabric/v1/register", c.handleRegister)
	mux.HandleFunc("POST /fabric/v1/heartbeat", c.handleHeartbeat)
	mux.Handle("/fabric/v1/store", c.storeSrv)
	c.handler = mux
	return c
}

// Handler returns the coordinator's HTTP surface (register, heartbeat,
// store).
func (c *Coordinator) Handler() http.Handler { return c.handler }

// Backend returns the result store as a sweep.Backend. Install it on
// the coordinator's own engine so locally computed results enter the
// store (and its gossip log) exactly like worker uploads.
func (c *Coordinator) Backend() sweep.Backend { return c.store }

func (c *Coordinator) handleRegister(w http.ResponseWriter, r *http.Request) {
	var req RegisterRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20)).Decode(&req); err != nil {
		http.Error(w, fmt.Sprintf("bad register request: %v", err), http.StatusBadRequest)
		return
	}
	if err := checkProtoVersion(req.Version); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	if req.ID == "" || req.Addr == "" {
		http.Error(w, "register requires id and addr", http.StatusBadRequest)
		return
	}
	c.admit(req.ID, req.Addr, 0)
	writeProtoJSON(w, RegisterResponse{Version: ProtocolVersion, StoreSeq: c.store.seq()})
}

func (c *Coordinator) handleHeartbeat(w http.ResponseWriter, r *http.Request) {
	var hb Heartbeat
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 8<<20)).Decode(&hb); err != nil {
		http.Error(w, fmt.Sprintf("bad heartbeat: %v", err), http.StatusBadRequest)
		return
	}
	if err := checkProtoVersion(hb.Version); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	if hb.ID == "" || hb.Addr == "" {
		http.Error(w, "heartbeat requires id and addr", http.StatusBadRequest)
		return
	}
	c.admit(hb.ID, hb.Addr, hb.QueueDepth)
	c.absorbRecent(hb.ID, hb.RecentKeys)
	c.reap()
	newKeys, seq := c.store.since(hb.Seq)
	writeProtoJSON(w, HeartbeatResponse{Version: ProtocolVersion, StoreSeq: seq, NewKeys: newKeys})
}

func writeProtoJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	_ = json.NewEncoder(w).Encode(v)
}

// admit registers or refreshes a member: a register, a heartbeat, and a
// re-appearing reaped worker all land here, so a worker that restarts
// (or outlives a coordinator restart) rejoins on its next beat with no
// special handshake.
func (c *Coordinator) admit(id, addr string, depth int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	m, ok := c.members[id]
	if !ok {
		m = &member{id: id}
		c.members[id] = m
		c.registered++
	}
	if !m.alive {
		c.ring.Add(id)
		if ok {
			c.cfg.Logf("fabric: worker %s back, rejoining ring (%d live)", id, c.ring.Len())
		} else {
			c.cfg.Logf("fabric: worker %s registered at %s (%d live)", id, addr, c.ring.Len())
		}
	}
	m.addr = addr
	m.depth = depth
	m.alive = true
	m.lastSeen = c.now()
}

// absorbRecent updates dispatch affinity from gossiped recently
// computed keys: the next request for such a key prefers the worker
// whose memo is already warm.
func (c *Coordinator) absorbRecent(id string, keys []string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, k := range keys {
		c.noteAffinity(k, id)
	}
}

// noteAffinity records key->worker with FIFO eviction at the cap.
// Callers hold mu.
func (c *Coordinator) noteAffinity(key, id string) {
	if _, ok := c.affinity[key]; !ok {
		c.affOrder = append(c.affOrder, key)
		for len(c.affOrder) > c.cfg.AffinityKeys {
			delete(c.affinity, c.affOrder[0])
			c.affOrder = c.affOrder[1:]
		}
	}
	c.affinity[key] = id
}

// reap removes workers silent past the liveness timeout from the
// ring. It takes mu itself and must not be called with mu held.
func (c *Coordinator) reap() {
	now := c.now()
	c.mu.Lock()
	defer c.mu.Unlock()
	ids := make([]string, 0, len(c.members))
	for id := range c.members {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		m := c.members[id]
		if m.alive && now.Sub(m.lastSeen) > c.cfg.HeartbeatTimeout {
			m.alive = false
			c.ring.Remove(id)
			c.reaped++
			c.cfg.Logf("fabric: worker %s missed heartbeats for %s, reaped (%d live)",
				id, now.Sub(m.lastSeen).Round(time.Millisecond), c.ring.Len())
		}
	}
}

// suspect marks a worker dead after a failed dispatch, without waiting
// for the heartbeat timeout: the connection already told us.
func (c *Coordinator) suspect(id string, err error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if m, ok := c.members[id]; ok && m.alive {
		m.alive = false
		c.ring.Remove(id)
		c.cfg.Logf("fabric: worker %s unreachable (%v), re-dispatching (%d live)", id, err, c.ring.Len())
	}
}

// dispatchTarget is one placement choice, labelled with why it was
// chosen (for the dispatch counters).
type dispatchTarget struct {
	id   string
	addr string
	kind string // "affinity", "stolen", "owner"
}

// plan produces the preference-ordered dispatch targets for key:
// affinity first (a memo-warm worker beats everything), then the ring
// owner — replaced by the least-loaded worker when the owner's queue is
// StealDepth deeper —, then the remaining ring walk as re-dispatch
// candidates. Empty means no live workers: run locally.
func (c *Coordinator) plan(key string) []dispatchTarget {
	c.reap()
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.ring.Len() == 0 {
		return nil
	}
	order := c.ring.Owners(key, c.ring.Len())
	targets := make([]dispatchTarget, 0, len(order))
	for i, id := range order {
		kind := "owner"
		if i > 0 {
			kind = "redispatch"
		}
		targets = append(targets, dispatchTarget{id: id, addr: c.members[id].addr, kind: kind})
	}

	// Work-stealing: hand the job to the least-loaded live worker when
	// the owner is substantially deeper. Ties break by id so placement
	// is deterministic given the same load report.
	owner := c.members[targets[0].id]
	minID, minDepth := "", 0
	ids := make([]string, 0, len(order))
	ids = append(ids, order...)
	sort.Strings(ids)
	for _, id := range ids {
		if m := c.members[id]; minID == "" || m.depth < minDepth {
			minID, minDepth = id, m.depth
		}
	}
	if minID != "" && minID != targets[0].id && owner.depth-minDepth > c.cfg.StealDepth {
		targets = moveToFront(targets, minID, "stolen")
	}

	// Affinity: a worker that already computed this key serves it from
	// its memo; prefer it even over the steal choice.
	if id, ok := c.affinity[key]; ok {
		if m, live := c.members[id]; live && m.alive {
			targets = moveToFront(targets, id, "affinity")
		}
	}
	return targets
}

// moveToFront promotes the target with the given id (relabelled kind)
// to the head of the plan, preserving the relative order of the rest.
func moveToFront(ts []dispatchTarget, id, kind string) []dispatchTarget {
	for i, t := range ts {
		if t.id == id {
			t.kind = kind
			copy(ts[1:i+1], ts[:i])
			ts[0] = t
			return ts
		}
	}
	return ts
}

// Exec implements sweep.Remote: dispatch the key to a worker, walking
// the placement plan until one answers. Transport failures mark the
// worker dead and re-dispatch to the next candidate — this is the
// mid-sweep worker-death recovery path. A worker that *rejects* the key
// (bad key, execution error) ends dispatch with handled=false so the
// local engine computes it and surfaces the authoritative error.
// handled=false is always safe: the engine falls back to local
// execution, which produces identical bytes by the determinism
// contract.
func (c *Coordinator) Exec(ctx context.Context, key string) (json.RawMessage, bool, error) {
	plan := c.plan(key)
	if len(plan) == 0 {
		c.bump(&c.localFallback)
		return nil, false, nil
	}
	start := c.now()
	for i, t := range plan {
		if i > 0 {
			c.bump(&c.redispatched)
		}
		raw, retryable, err := c.execOn(ctx, t.addr, key)
		if err == nil {
			c.finishDispatch(t, key, start)
			return raw, true, nil
		}
		if !retryable {
			c.bump(&c.localFallback)
			return nil, false, nil
		}
		c.suspect(t.id, err)
		if ctx.Err() != nil {
			// The batch is being cancelled; let the engine see it locally.
			return nil, false, nil
		}
	}
	c.bump(&c.dispatchFailed)
	return nil, false, nil
}

// execOn performs one dispatch attempt. retryable distinguishes "this
// worker is broken, try another" (transport error, 5xx) from "this job
// is broken everywhere" (4xx: version skew, unknown or failing key),
// which must not burn through the whole ring.
func (c *Coordinator) execOn(ctx context.Context, addr, key string) (raw json.RawMessage, retryable bool, err error) {
	ctx, cancel := context.WithTimeout(ctx, c.cfg.ExecTimeout)
	defer cancel()
	body, _ := json.Marshal(ExecRequest{Version: ProtocolVersion, Key: key})
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, addr+"/fabric/v1/exec", bytes.NewReader(body))
	if err != nil {
		return nil, true, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := c.cfg.Client.Do(req)
	if err != nil {
		return nil, true, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		err := fmt.Errorf("fabric: exec %s on %s: HTTP %d: %s", key, addr, resp.StatusCode, bytes.TrimSpace(msg))
		return nil, resp.StatusCode >= 500, err
	}
	var er ExecResponse
	if err := json.NewDecoder(io.LimitReader(resp.Body, maxResultBytes)).Decode(&er); err != nil {
		return nil, true, fmt.Errorf("fabric: exec %s on %s: %v", key, addr, err)
	}
	if err := checkProtoVersion(er.Version); err != nil {
		return nil, false, err
	}
	if er.Key != key || len(er.Result) == 0 || !json.Valid(er.Result) {
		return nil, true, fmt.Errorf("fabric: exec %s on %s: malformed response", key, addr)
	}
	return er.Result, false, nil
}

// finishDispatch records a successful dispatch: counters by kind, the
// new affinity, and the end-to-end latency.
func (c *Coordinator) finishDispatch(t dispatchTarget, key string, start time.Time) {
	elapsed := c.now().Sub(start)
	c.mu.Lock()
	defer c.mu.Unlock()
	switch t.kind {
	case "affinity":
		c.dispatchAffinity++
	case "stolen":
		c.dispatchStolen++
	default:
		c.dispatchOwner++
	}
	c.noteAffinity(key, t.id)
	c.execMS.Observe(int(elapsed.Milliseconds()))
}

func (c *Coordinator) bump(u *uint64) {
	c.mu.Lock()
	*u++
	c.mu.Unlock()
}

// PeerStatus is one worker's liveness as reported by Health.
type PeerStatus struct {
	ID         string `json:"id"`
	Addr       string `json:"addr"`
	Alive      bool   `json:"alive"`
	QueueDepth int    `json:"queue_depth"`
	LastSeenMS int64  `json:"last_seen_ms"`
}

// Peers returns the membership sorted by id.
func (c *Coordinator) Peers() []PeerStatus {
	now := c.now()
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]PeerStatus, 0, len(c.members))
	for _, m := range c.members {
		out = append(out, PeerStatus{
			ID: m.id, Addr: m.addr, Alive: m.alive, QueueDepth: m.depth,
			LastSeenMS: now.Sub(m.lastSeen).Milliseconds(),
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Health returns the coordinator's /healthz contribution.
func (c *Coordinator) Health() map[string]any {
	peers := c.Peers()
	alive := 0
	for _, p := range peers {
		if p.Alive {
			alive++
		}
	}
	return map[string]any{
		"fabric_role":        "coordinator",
		"fabric_peers":       peers,
		"fabric_peers_alive": alive,
		"fabric_store_keys":  c.store.seq(),
	}
}

// WriteMetrics renders the coordinator's counters (dispatch outcomes,
// liveness, latency) plus its store server's, in exposition format.
func (c *Coordinator) WriteMetrics(w io.Writer) {
	peers := c.Peers()
	alive, dead := 0, 0
	for _, p := range peers {
		if p.Alive {
			alive++
		} else {
			dead++
		}
	}
	c.mu.Lock()
	fmt.Fprintf(w, "smtserved_fabric_peers{state=\"alive\"} %d\n", alive)
	fmt.Fprintf(w, "smtserved_fabric_peers{state=\"dead\"} %d\n", dead)
	fmt.Fprintf(w, "smtserved_fabric_dispatch_total{kind=\"owner\"} %d\n", c.dispatchOwner)
	fmt.Fprintf(w, "smtserved_fabric_dispatch_total{kind=\"stolen\"} %d\n", c.dispatchStolen)
	fmt.Fprintf(w, "smtserved_fabric_dispatch_total{kind=\"affinity\"} %d\n", c.dispatchAffinity)
	fmt.Fprintf(w, "smtserved_fabric_redispatch_total %d\n", c.redispatched)
	fmt.Fprintf(w, "smtserved_fabric_dispatch_failed_total %d\n", c.dispatchFailed)
	fmt.Fprintf(w, "smtserved_fabric_local_fallback_total %d\n", c.localFallback)
	fmt.Fprintf(w, "smtserved_fabric_workers_reaped_total %d\n", c.reaped)
	fmt.Fprintf(w, "smtserved_fabric_workers_registered_total %d\n", c.registered)
	hist := c.execMS
	c.mu.Unlock()
	writeHist(w, "smtserved_fabric_exec_ms", &hist)
	c.storeSrv.WriteMetrics(w)
}

// storeLog wraps the backing store with an append-only log of stored
// keys, the source of heartbeat gossip. Every write path — worker
// uploads through the HTTP store, the coordinator engine's own cache
// writes — funnels through Put, so the log sees everything.
type storeLog struct {
	backend sweep.Backend

	mu   sync.Mutex
	base uint64   // sequence number of log[0]; sequences start at 1
	log  []string // most recent stored keys, oldest first
	next uint64   // next sequence to assign (== total keys ever logged + 1)
}

// storeLogCap bounds the retained gossip window. A worker further than
// this behind simply misses the older keys — gossip is a hint; the
// store remains authoritative via ordinary Gets.
const storeLogCap = 8192

func newStoreLog(backend sweep.Backend) *storeLog {
	return &storeLog{backend: backend, base: 1, next: 1}
}

// Get implements sweep.Backend.
func (l *storeLog) Get(key string) (json.RawMessage, bool) { return l.backend.Get(key) }

// Put implements sweep.Backend, recording the key in the gossip log on
// success. Duplicate puts of a key (several nodes computing it
// concurrently) log once per burst: the log tail is checked, which
// suffices to keep steady-state re-logging out.
func (l *storeLog) Put(key string, raw json.RawMessage) error {
	if err := l.backend.Put(key, raw); err != nil {
		return err
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if n := len(l.log); n > 0 && l.log[n-1] == key {
		return nil
	}
	l.log = append(l.log, key)
	l.next++
	if len(l.log) > storeLogCap {
		drop := len(l.log) - storeLogCap
		l.log = l.log[drop:]
		l.base += uint64(drop)
	}
	return nil
}

// seq returns the latest assigned sequence (0 when nothing is stored).
func (l *storeLog) seq() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.next - 1
}

// since returns the keys stored after sequence s (capped to the
// retained window) and the latest sequence.
func (l *storeLog) since(s uint64) ([]string, uint64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	latest := l.next - 1
	if s >= latest {
		return nil, latest
	}
	from := 0
	if s+1 >= l.base {
		from = int(s + 1 - l.base)
	}
	out := append([]string(nil), l.log[from:]...)
	return out, latest
}
