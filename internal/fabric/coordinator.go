package fabric

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"sync"
	"time"

	"smthill/internal/obs"
	"smthill/internal/sweep"
)

// CoordinatorConfig parameterises a Coordinator. The zero value of
// every field selects a default.
type CoordinatorConfig struct {
	// Store is the backing result store (default: a fresh MemStore).
	// Wire the coordinator's disk cache here to persist across runs.
	Store sweep.Backend
	// HeartbeatTimeout is how long a silent worker stays in the ring
	// before being reaped (default 10s).
	HeartbeatTimeout time.Duration
	// ExecTimeout bounds one dispatched job execution (default 10m,
	// matching serve's job timeout).
	ExecTimeout time.Duration
	// StealDepth triggers work-stealing: when the ring owner's reported
	// queue is more than StealDepth jobs deeper than the least-loaded
	// worker's, the job goes to the latter (default 4).
	StealDepth int
	// Vnodes is the ring's virtual-node count per worker (default 64).
	Vnodes int
	// AffinityKeys caps the key->worker affinity index (default 65536).
	AffinityKeys int
	// Client performs dispatch HTTP (default http.DefaultClient).
	Client *http.Client
	// Logf receives operational log lines (nil = discard).
	Logf func(format string, args ...any)
	// Tracer, when set, records dispatch client spans (with placement
	// decisions as span events) and adopts the spans workers backhaul
	// in exec responses, so the coordinator's ring holds whole
	// cross-node traces.
	Tracer *obs.Tracer
	// ScrapeInterval rate-limits federation: a worker's /metrics is
	// scraped at most once per interval, triggered by its heartbeats
	// (default 2s, the default worker heartbeat cadence).
	ScrapeInterval time.Duration
}

func (c CoordinatorConfig) withDefaults() CoordinatorConfig {
	if c.Store == nil {
		c.Store = NewMemStore()
	}
	if c.HeartbeatTimeout <= 0 {
		c.HeartbeatTimeout = 10 * time.Second
	}
	if c.ExecTimeout <= 0 {
		c.ExecTimeout = 10 * time.Minute
	}
	if c.StealDepth <= 0 {
		c.StealDepth = 4
	}
	if c.AffinityKeys <= 0 {
		c.AffinityKeys = 65536
	}
	if c.Client == nil {
		c.Client = http.DefaultClient
	}
	if c.Logf == nil {
		c.Logf = func(string, ...any) {}
	}
	if c.ScrapeInterval <= 0 {
		c.ScrapeInterval = 2 * time.Second
	}
	return c
}

// member is the coordinator's view of one worker.
type member struct {
	id       string
	addr     string
	lastSeen time.Time
	depth    int
	alive    bool
}

// Coordinator owns the fabric's control plane: worker membership and
// liveness, the consistent-hash ring, the shared result store (served
// over HTTP with a gossip log), and job dispatch. It implements
// sweep.Remote, so installing it on an engine (sweep.SetRemote) makes
// every engine job transparently eligible for distribution; any
// dispatch failure falls back to local execution in the engine.
type Coordinator struct {
	cfg CoordinatorConfig
	now func() time.Time // injectable for liveness tests

	store    *storeLog
	storeSrv *StoreServer
	handler  http.Handler
	fed      *obs.Federator

	mu       sync.Mutex
	members  map[string]*member // guarded by mu
	ring     *Ring              // guarded by mu
	affinity map[string]string  // guarded by mu
	affOrder []string           // guarded by mu; affinity insertion order, for cap eviction

	reg            *obs.Registry
	peersGauge     *obs.GaugeVec   // state
	dispatches     *obs.CounterVec // kind
	redispatched   *obs.Counter
	dispatchFailed *obs.Counter
	localFallback  *obs.Counter
	reapedTotal    *obs.Counter
	registeredTot  *obs.Counter
	execMS         *obs.Hist
}

// NewCoordinator builds a coordinator. Mount Handler under /fabric/v1/
// next to the serve API, install the coordinator on the serving
// engine with SetRemote(c) and SetBackend(c.Backend()), and workers do
// the rest.
func NewCoordinator(cfg CoordinatorConfig) *Coordinator {
	cfg = cfg.withDefaults()
	reg := obs.NewRegistry()
	c := &Coordinator{
		cfg:      cfg,
		now:      time.Now,
		store:    newStoreLog(cfg.Store),
		fed:      obs.NewFederator(cfg.Client),
		members:  map[string]*member{},
		ring:     NewRing(cfg.Vnodes),
		affinity: map[string]string{},
		reg:      reg,
		peersGauge: reg.GaugeVec("smtserved_fabric_peers",
			"registered workers by liveness state", "state"),
		dispatches: reg.CounterVec("smtserved_fabric_dispatch_total",
			"successful dispatches by placement kind", "kind"),
		redispatched: reg.Counter("smtserved_fabric_redispatch_total",
			"dispatch attempts after the first, per job"),
		dispatchFailed: reg.Counter("smtserved_fabric_dispatch_failed_total",
			"jobs every candidate worker failed to serve"),
		localFallback: reg.Counter("smtserved_fabric_local_fallback_total",
			"jobs declined to the local engine (no live workers or non-retryable rejection)"),
		reapedTotal: reg.Counter("smtserved_fabric_workers_reaped_total",
			"workers removed after missing heartbeats"),
		registeredTot: reg.Counter("smtserved_fabric_workers_registered_total",
			"distinct workers ever registered"),
		execMS: reg.Hist("smtserved_fabric_exec_ms",
			"end-to-end dispatch latency in milliseconds"),
	}
	// Materialize the full label vocabulary so zero-valued series render.
	c.peersGauge.With("alive")
	c.peersGauge.With("dead")
	for _, k := range []string{"owner", "stolen", "affinity"} {
		c.dispatches.With(k)
	}
	c.storeSrv = NewStoreServer(c.store)
	c.storeSrv.SetTracer(cfg.Tracer)
	reg.Attach(c.storeSrv.Registry())
	mux := http.NewServeMux()
	mux.HandleFunc("POST /fabric/v1/register", c.handleRegister)
	mux.HandleFunc("POST /fabric/v1/heartbeat", c.handleHeartbeat)
	mux.Handle("/fabric/v1/store", c.storeSrv)
	c.handler = mux
	return c
}

// Handler returns the coordinator's HTTP surface (register, heartbeat,
// store).
func (c *Coordinator) Handler() http.Handler { return c.handler }

// Backend returns the result store as a sweep.Backend. Install it on
// the coordinator's own engine so locally computed results enter the
// store (and its gossip log) exactly like worker uploads.
func (c *Coordinator) Backend() sweep.Backend { return c.store }

// Registry returns the coordinator's metric registry (dispatch,
// liveness, and store-server series), for attachment into a node-wide
// registry.
func (c *Coordinator) Registry() *obs.Registry { return c.reg }

func (c *Coordinator) handleRegister(w http.ResponseWriter, r *http.Request) {
	_, span := c.cfg.Tracer.StartFrom(r.Context(), obs.Extract(r.Header), "fabric.register", obs.KindServer)
	var req RegisterRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20)).Decode(&req); err != nil {
		http.Error(w, fmt.Sprintf("bad register request: %v", err), http.StatusBadRequest)
		span.End(err)
		return
	}
	if err := checkProtoVersion(req.Version); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		span.End(err)
		return
	}
	if req.ID == "" || req.Addr == "" {
		http.Error(w, "register requires id and addr", http.StatusBadRequest)
		span.End(fmt.Errorf("register missing id/addr"))
		return
	}
	c.admit(req.ID, req.Addr, 0)
	span.SetAttr("worker", req.ID)
	span.End(nil)
	writeProtoJSON(w, RegisterResponse{Version: ProtocolVersion, StoreSeq: c.store.seq()})
}

func (c *Coordinator) handleHeartbeat(w http.ResponseWriter, r *http.Request) {
	_, span := c.cfg.Tracer.StartFrom(r.Context(), obs.Extract(r.Header), "fabric.heartbeat", obs.KindServer)
	var hb Heartbeat
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 8<<20)).Decode(&hb); err != nil {
		http.Error(w, fmt.Sprintf("bad heartbeat: %v", err), http.StatusBadRequest)
		span.End(err)
		return
	}
	if err := checkProtoVersion(hb.Version); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		span.End(err)
		return
	}
	if hb.ID == "" || hb.Addr == "" {
		http.Error(w, "heartbeat requires id and addr", http.StatusBadRequest)
		span.End(fmt.Errorf("heartbeat missing id/addr"))
		return
	}
	c.admit(hb.ID, hb.Addr, hb.QueueDepth)
	c.absorbRecent(hb.ID, hb.RecentKeys)
	c.reap()
	// Federation rides the heartbeat cadence: each beat may trigger one
	// asynchronous scrape of the worker's /metrics, rate-limited per
	// node so heartbeat retry bursts don't multiply scrapes.
	now := c.now()
	if c.fed.Due(hb.ID, now, c.cfg.ScrapeInterval) {
		metricsURL := hb.Addr + "/metrics"
		go func() {
			if err := c.fed.Scrape(hb.ID, metricsURL, now); err != nil {
				c.cfg.Logf("fabric: federation scrape of %s failed: %v", hb.ID, err)
			}
		}()
	}
	newKeys, seq := c.store.since(hb.Seq)
	span.SetAttr("worker", hb.ID)
	span.End(nil)
	writeProtoJSON(w, HeartbeatResponse{Version: ProtocolVersion, StoreSeq: seq, NewKeys: newKeys})
}

// peerLiveness returns id->alive for every registered member.
func (c *Coordinator) peerLiveness() map[string]bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make(map[string]bool, len(c.members))
	for id, m := range c.members {
		out[id] = m.alive
	}
	return out
}

// HandleClusterMetrics serves GET /metrics/cluster: every fresh node's
// scraped series re-labeled with node="<id>", aggregates across fresh
// nodes, and staleness markers for suspect or silent peers. Mount it
// next to /metrics on a coordinator node.
func (c *Coordinator) HandleClusterMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	c.fed.WriteCluster(w, c.peerLiveness(), c.now(), c.cfg.HeartbeatTimeout)
}

func writeProtoJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	_ = json.NewEncoder(w).Encode(v)
}

// admit registers or refreshes a member: a register, a heartbeat, and a
// re-appearing reaped worker all land here, so a worker that restarts
// (or outlives a coordinator restart) rejoins on its next beat with no
// special handshake.
func (c *Coordinator) admit(id, addr string, depth int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	m, ok := c.members[id]
	if !ok {
		m = &member{id: id}
		c.members[id] = m
		c.registeredTot.Inc()
	}
	if !m.alive {
		c.ring.Add(id)
		if ok {
			c.cfg.Logf("fabric: worker %s back, rejoining ring (%d live)", id, c.ring.Len())
		} else {
			c.cfg.Logf("fabric: worker %s registered at %s (%d live)", id, addr, c.ring.Len())
		}
	}
	m.addr = addr
	m.depth = depth
	m.alive = true
	m.lastSeen = c.now()
	c.updatePeerGauges()
}

// updatePeerGauges refreshes the alive/dead membership gauges. Callers
// hold mu.
func (c *Coordinator) updatePeerGauges() {
	alive, dead := 0, 0
	for _, m := range c.members {
		if m.alive {
			alive++
		} else {
			dead++
		}
	}
	c.peersGauge.With("alive").Set(float64(alive))
	c.peersGauge.With("dead").Set(float64(dead))
}

// absorbRecent updates dispatch affinity from gossiped recently
// computed keys: the next request for such a key prefers the worker
// whose memo is already warm.
func (c *Coordinator) absorbRecent(id string, keys []string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, k := range keys {
		c.noteAffinity(k, id)
	}
}

// noteAffinity records key->worker with FIFO eviction at the cap.
// Callers hold mu.
func (c *Coordinator) noteAffinity(key, id string) {
	if _, ok := c.affinity[key]; !ok {
		c.affOrder = append(c.affOrder, key)
		for len(c.affOrder) > c.cfg.AffinityKeys {
			delete(c.affinity, c.affOrder[0])
			c.affOrder = c.affOrder[1:]
		}
	}
	c.affinity[key] = id
}

// reap removes workers silent past the liveness timeout from the
// ring. It takes mu itself and must not be called with mu held.
func (c *Coordinator) reap() {
	now := c.now()
	c.mu.Lock()
	defer c.mu.Unlock()
	ids := make([]string, 0, len(c.members))
	for id := range c.members {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		m := c.members[id]
		if m.alive && now.Sub(m.lastSeen) > c.cfg.HeartbeatTimeout {
			m.alive = false
			c.ring.Remove(id)
			c.reapedTotal.Inc()
			c.cfg.Logf("fabric: worker %s missed heartbeats for %s, reaped (%d live)",
				id, now.Sub(m.lastSeen).Round(time.Millisecond), c.ring.Len())
		}
	}
	c.updatePeerGauges()
}

// suspect marks a worker dead after a failed dispatch, without waiting
// for the heartbeat timeout: the connection already told us.
func (c *Coordinator) suspect(id string, err error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if m, ok := c.members[id]; ok && m.alive {
		m.alive = false
		c.ring.Remove(id)
		c.cfg.Logf("fabric: worker %s unreachable (%v), re-dispatching (%d live)", id, err, c.ring.Len())
	}
	c.updatePeerGauges()
}

// dispatchTarget is one placement choice, labelled with why it was
// chosen (for the dispatch counters).
type dispatchTarget struct {
	id   string
	addr string
	kind string // "affinity", "stolen", "owner"
}

// plan produces the preference-ordered dispatch targets for key:
// affinity first (a memo-warm worker beats everything), then the ring
// owner — replaced by the least-loaded worker when the owner's queue is
// StealDepth deeper —, then the remaining ring walk as re-dispatch
// candidates. Empty means no live workers: run locally.
func (c *Coordinator) plan(key string) []dispatchTarget {
	c.reap()
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.ring.Len() == 0 {
		return nil
	}
	order := c.ring.Owners(key, c.ring.Len())
	targets := make([]dispatchTarget, 0, len(order))
	for i, id := range order {
		kind := "owner"
		if i > 0 {
			kind = "redispatch"
		}
		targets = append(targets, dispatchTarget{id: id, addr: c.members[id].addr, kind: kind})
	}

	// Work-stealing: hand the job to the least-loaded live worker when
	// the owner is substantially deeper. Ties break by id so placement
	// is deterministic given the same load report.
	owner := c.members[targets[0].id]
	minID, minDepth := "", 0
	ids := make([]string, 0, len(order))
	ids = append(ids, order...)
	sort.Strings(ids)
	for _, id := range ids {
		if m := c.members[id]; minID == "" || m.depth < minDepth {
			minID, minDepth = id, m.depth
		}
	}
	if minID != "" && minID != targets[0].id && owner.depth-minDepth > c.cfg.StealDepth {
		targets = moveToFront(targets, minID, "stolen")
	}

	// Affinity: a worker that already computed this key serves it from
	// its memo; prefer it even over the steal choice.
	if id, ok := c.affinity[key]; ok {
		if m, live := c.members[id]; live && m.alive {
			targets = moveToFront(targets, id, "affinity")
		}
	}
	return targets
}

// moveToFront promotes the target with the given id (relabelled kind)
// to the head of the plan, preserving the relative order of the rest.
func moveToFront(ts []dispatchTarget, id, kind string) []dispatchTarget {
	for i, t := range ts {
		if t.id == id {
			t.kind = kind
			copy(ts[1:i+1], ts[:i])
			ts[0] = t
			return ts
		}
	}
	return ts
}

// Exec implements sweep.Remote: dispatch the key to a worker, walking
// the placement plan until one answers. Transport failures mark the
// worker dead and re-dispatch to the next candidate — this is the
// mid-sweep worker-death recovery path. A worker that *rejects* the key
// (bad key, execution error) ends dispatch with handled=false so the
// local engine computes it and surfaces the authoritative error.
// handled=false is always safe: the engine falls back to local
// execution, which produces identical bytes by the determinism
// contract.
//
// Placement decisions land on the dispatch span as events — plan order,
// steals, re-dispatches, suspects — and a successful response's
// backhauled worker spans are adopted into the coordinator tracer, so
// one /debug/traces lookup shows the whole cross-node journey.
func (c *Coordinator) Exec(ctx context.Context, key string) (json.RawMessage, bool, error) {
	plan := c.plan(key)
	if len(plan) == 0 {
		c.localFallback.Inc()
		return nil, false, nil
	}
	ctx, span := obs.Start(ctx, "fabric.dispatch", obs.KindClient)
	span.SetAttr("key", key)
	for _, t := range plan {
		span.Event("plan", "worker", t.id, "kind", t.kind)
	}
	start := c.now()
	for i, t := range plan {
		if i > 0 {
			c.redispatched.Inc()
			span.Event("redispatch", "worker", t.id)
		}
		raw, spans, retryable, err := c.execOn(ctx, t.addr, key)
		if err == nil {
			c.finishDispatch(t, key, start)
			span.SetAttr("worker", t.id)
			span.SetAttr("kind", t.kind)
			span.End(nil)
			c.cfg.Tracer.Adopt(spans)
			return raw, true, nil
		}
		if !retryable {
			c.localFallback.Inc()
			span.Event("rejected", "worker", t.id)
			span.End(nil)
			return nil, false, nil
		}
		c.suspect(t.id, err)
		span.Event("suspect", "worker", t.id)
		if ctx.Err() != nil {
			// The batch is being cancelled; let the engine see it locally.
			span.End(nil)
			return nil, false, nil
		}
	}
	c.dispatchFailed.Inc()
	span.End(fmt.Errorf("fabric: every candidate failed for %s", key))
	return nil, false, nil
}

// execOn performs one dispatch attempt. retryable distinguishes "this
// worker is broken, try another" (transport error, 5xx) from "this job
// is broken everywhere" (4xx: version skew, unknown or failing key),
// which must not burn through the whole ring.
func (c *Coordinator) execOn(ctx context.Context, addr, key string) (raw json.RawMessage, spans []obs.SpanData, retryable bool, err error) {
	ctx, cancel := context.WithTimeout(ctx, c.cfg.ExecTimeout)
	defer cancel()
	body, _ := json.Marshal(ExecRequest{Version: ProtocolVersion, Key: key})
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, addr+"/fabric/v1/exec", bytes.NewReader(body))
	if err != nil {
		return nil, nil, true, err
	}
	req.Header.Set("Content-Type", "application/json")
	obs.Inject(ctx, req.Header)
	resp, err := c.cfg.Client.Do(req)
	if err != nil {
		return nil, nil, true, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		err := fmt.Errorf("fabric: exec %s on %s: HTTP %d: %s", key, addr, resp.StatusCode, bytes.TrimSpace(msg))
		return nil, nil, resp.StatusCode >= 500, err
	}
	var er ExecResponse
	if err := json.NewDecoder(io.LimitReader(resp.Body, maxResultBytes)).Decode(&er); err != nil {
		return nil, nil, true, fmt.Errorf("fabric: exec %s on %s: %v", key, addr, err)
	}
	if err := checkProtoVersion(er.Version); err != nil {
		return nil, nil, false, err
	}
	if er.Key != key || len(er.Result) == 0 || !json.Valid(er.Result) {
		return nil, nil, true, fmt.Errorf("fabric: exec %s on %s: malformed response", key, addr)
	}
	return er.Result, er.Spans, false, nil
}

// finishDispatch records a successful dispatch: counters by kind, the
// new affinity, and the end-to-end latency.
func (c *Coordinator) finishDispatch(t dispatchTarget, key string, start time.Time) {
	elapsed := c.now().Sub(start)
	switch t.kind {
	case "affinity", "stolen":
		c.dispatches.With(t.kind).Inc()
	default:
		c.dispatches.With("owner").Inc()
	}
	c.execMS.Observe(int(elapsed.Milliseconds()))
	c.mu.Lock()
	c.noteAffinity(key, t.id)
	c.mu.Unlock()
}

// PeerStatus is one worker's liveness as reported by Health.
type PeerStatus struct {
	ID         string `json:"id"`
	Addr       string `json:"addr"`
	Alive      bool   `json:"alive"`
	QueueDepth int    `json:"queue_depth"`
	LastSeenMS int64  `json:"last_seen_ms"`
}

// Peers returns the membership sorted by id.
func (c *Coordinator) Peers() []PeerStatus {
	now := c.now()
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]PeerStatus, 0, len(c.members))
	for _, m := range c.members {
		out = append(out, PeerStatus{
			ID: m.id, Addr: m.addr, Alive: m.alive, QueueDepth: m.depth,
			LastSeenMS: now.Sub(m.lastSeen).Milliseconds(),
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Health returns the coordinator's /healthz contribution, including the
// federation roll-up (node freshness and scraped-series counts).
func (c *Coordinator) Health() map[string]any {
	peers := c.Peers()
	alive := 0
	for _, p := range peers {
		if p.Alive {
			alive++
		}
	}
	h := map[string]any{
		"fabric_role":        "coordinator",
		"fabric_peers":       peers,
		"fabric_peers_alive": alive,
		"fabric_store_keys":  c.store.seq(),
	}
	for k, v := range c.fed.Summary(c.peerLiveness(), c.now(), c.cfg.HeartbeatTimeout) {
		h[k] = v
	}
	return h
}

// WriteMetrics renders the coordinator's counters (dispatch outcomes,
// liveness, latency) plus its store server's, in exposition format.
func (c *Coordinator) WriteMetrics(w io.Writer) { c.reg.Write(w) }

// storeLog wraps the backing store with an append-only log of stored
// keys, the source of heartbeat gossip. Every write path — worker
// uploads through the HTTP store, the coordinator engine's own cache
// writes — funnels through Put, so the log sees everything.
type storeLog struct {
	backend sweep.Backend

	mu   sync.Mutex
	base uint64   // guarded by mu; sequence number of log[0]; sequences start at 1
	log  []string // guarded by mu; most recent stored keys, oldest first
	next uint64   // guarded by mu; next sequence to assign (== total keys ever logged + 1)
}

// storeLogCap bounds the retained gossip window. A worker further than
// this behind simply misses the older keys — gossip is a hint; the
// store remains authoritative via ordinary Gets.
const storeLogCap = 8192

func newStoreLog(backend sweep.Backend) *storeLog {
	return &storeLog{backend: backend, base: 1, next: 1}
}

// Get implements sweep.Backend.
func (l *storeLog) Get(ctx context.Context, key string) (json.RawMessage, bool) {
	return l.backend.Get(ctx, key)
}

// Put implements sweep.Backend, recording the key in the gossip log on
// success. Duplicate puts of a key (several nodes computing it
// concurrently) log once per burst: the log tail is checked, which
// suffices to keep steady-state re-logging out.
func (l *storeLog) Put(ctx context.Context, key string, raw json.RawMessage) error {
	if err := l.backend.Put(ctx, key, raw); err != nil {
		return err
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if n := len(l.log); n > 0 && l.log[n-1] == key {
		return nil
	}
	l.log = append(l.log, key)
	l.next++
	if len(l.log) > storeLogCap {
		drop := len(l.log) - storeLogCap
		l.log = l.log[drop:]
		l.base += uint64(drop)
	}
	return nil
}

// seq returns the latest assigned sequence (0 when nothing is stored).
func (l *storeLog) seq() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.next - 1
}

// since returns the keys stored after sequence s (capped to the
// retained window) and the latest sequence.
func (l *storeLog) since(s uint64) ([]string, uint64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	latest := l.next - 1
	if s >= latest {
		return nil, latest
	}
	from := 0
	if s+1 >= l.base {
		from = int(s + 1 - l.base)
	}
	out := append([]string(nil), l.log[from:]...)
	return out, latest
}
