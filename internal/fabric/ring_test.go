package fabric

import (
	"fmt"
	"reflect"
	"testing"
)

func ringKeys(n int) []string {
	keys := make([]string, n)
	for i := range keys {
		keys[i] = fmt.Sprintf("v1|hill|wl=wl-%d|es=1024", i)
	}
	return keys
}

func TestRingOwnersDeterministic(t *testing.T) {
	build := func() *Ring {
		r := NewRing(32)
		r.Add("a")
		r.Add("b")
		r.Add("c")
		return r
	}
	r1, r2 := build(), build()
	for _, k := range ringKeys(50) {
		o1, o2 := r1.Owners(k, 3), r2.Owners(k, 3)
		if !reflect.DeepEqual(o1, o2) {
			t.Fatalf("Owners(%q) differs across identical rings: %v vs %v", k, o1, o2)
		}
		if len(o1) != 3 {
			t.Fatalf("Owners(%q) = %v, want 3 distinct members", k, o1)
		}
		seen := map[string]bool{}
		for _, id := range o1 {
			if seen[id] {
				t.Fatalf("Owners(%q) repeats %s: %v", k, id, o1)
			}
			seen[id] = true
		}
	}
}

// TestRingRemoveIsConsistent is the property the fabric's placement
// stability rests on: removing one member must not move keys between
// surviving members.
func TestRingRemoveIsConsistent(t *testing.T) {
	r := NewRing(64)
	for _, id := range []string{"a", "b", "c", "d"} {
		r.Add(id)
	}
	keys := ringKeys(300)
	before := map[string]string{}
	for _, k := range keys {
		before[k] = r.Owners(k, 1)[0]
	}
	r.Remove("b")
	moved := 0
	for _, k := range keys {
		after := r.Owners(k, 1)[0]
		if after == "b" {
			t.Fatalf("removed member still owns %q", k)
		}
		if before[k] != "b" && after != before[k] {
			t.Errorf("key %q moved %s -> %s though its owner survived", k, before[k], after)
		}
		if before[k] == "b" {
			moved++
		}
	}
	if moved == 0 {
		t.Fatal("test is vacuous: b owned no keys")
	}
}

func TestRingBalance(t *testing.T) {
	r := NewRing(0) // default vnodes
	members := []string{"a", "b", "c"}
	for _, id := range members {
		r.Add(id)
	}
	counts := map[string]int{}
	keys := ringKeys(3000)
	for _, k := range keys {
		counts[r.Owners(k, 1)[0]]++
	}
	// With the default vnode count the split is not uniform, only
	// bounded: no member may be starved or own most of the circle.
	for _, id := range members {
		if frac := float64(counts[id]) / float64(len(keys)); frac < 0.08 || frac > 0.70 {
			t.Errorf("member %s owns %.1f%% of keys; ring is badly unbalanced", id, 100*frac)
		}
	}
}

func TestRingAddRemoveIdempotent(t *testing.T) {
	r := NewRing(8)
	r.Add("a")
	r.Add("a")
	if r.Len() != 1 || len(r.points) != 8 {
		t.Fatalf("double Add: Len=%d points=%d", r.Len(), len(r.points))
	}
	r.Remove("a")
	r.Remove("a")
	if r.Len() != 0 || len(r.points) != 0 {
		t.Fatalf("double Remove: Len=%d points=%d", r.Len(), len(r.points))
	}
	if got := r.Owners("k", 1); got != nil {
		t.Fatalf("Owners on empty ring = %v", got)
	}
}
