// Package stats provides the small summary-statistics helpers the
// experiment harness uses to aggregate per-epoch series.
package stats

import (
	"math"
	"sort"
)

// Summary describes a sample of float64 values.
type Summary struct {
	N         int
	Mean, Std float64
	Min, Max  float64
	Median    float64
}

// Summarize computes a Summary of xs. An empty input yields a zero
// Summary.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	s := Summary{N: len(xs), Min: xs[0], Max: xs[0]}
	sum := 0.0
	for _, x := range xs {
		sum += x
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
	}
	s.Mean = sum / float64(len(xs))
	ss := 0.0
	for _, x := range xs {
		d := x - s.Mean
		ss += d * d
	}
	if len(xs) > 1 {
		s.Std = math.Sqrt(ss / float64(len(xs)-1))
	}
	s.Median = Percentile(xs, 50)
	return s
}

// Percentile returns the p-th percentile (0..100) of xs using linear
// interpolation between closest ranks. It does not modify xs.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[len(sorted)-1]
	}
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(rank)
	frac := rank - float64(lo)
	if lo+1 >= len(sorted) {
		return sorted[lo]
	}
	return sorted[lo]*(1-frac) + sorted[lo+1]*frac
}

// Mean returns the arithmetic mean of xs (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// GeoMean returns the geometric mean of xs; all values must be positive.
func GeoMean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	logSum := 0.0
	for _, x := range xs {
		logSum += math.Log(x)
	}
	return math.Exp(logSum / float64(len(xs)))
}
