package stats

import (
	"math"
	"testing"
	"testing/quick"

	"smthill/internal/rng"
)

func almost(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4})
	if s.N != 4 || !almost(s.Mean, 2.5) || !almost(s.Min, 1) || !almost(s.Max, 4) {
		t.Fatalf("summary = %+v", s)
	}
	want := math.Sqrt((2.25 + 0.25 + 0.25 + 2.25) / 3)
	if !almost(s.Std, want) {
		t.Fatalf("std = %f, want %f", s.Std, want)
	}
	if !almost(s.Median, 2.5) {
		t.Fatalf("median = %f", s.Median)
	}
}

func TestSummarizeEmpty(t *testing.T) {
	if s := Summarize(nil); s.N != 0 || s.Mean != 0 {
		t.Fatalf("empty summary = %+v", s)
	}
}

func TestSummarizeSingle(t *testing.T) {
	s := Summarize([]float64{7})
	if s.Std != 0 || s.Mean != 7 || s.Median != 7 {
		t.Fatalf("single summary = %+v", s)
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{10, 20, 30, 40, 50}
	cases := []struct{ p, want float64 }{
		{0, 10}, {100, 50}, {50, 30}, {25, 20}, {75, 40}, {12.5, 15},
	}
	for _, c := range cases {
		if got := Percentile(xs, c.p); !almost(got, c.want) {
			t.Fatalf("P%.1f = %f, want %f", c.p, got, c.want)
		}
	}
}

func TestPercentileDoesNotMutate(t *testing.T) {
	xs := []float64{3, 1, 2}
	Percentile(xs, 50)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Fatal("input mutated")
	}
}

func TestMeanAndGeoMean(t *testing.T) {
	if !almost(Mean([]float64{2, 4}), 3) {
		t.Fatal("mean wrong")
	}
	if !almost(GeoMean([]float64{1, 4}), 2) {
		t.Fatal("geomean wrong")
	}
	if Mean(nil) != 0 || GeoMean(nil) != 0 {
		t.Fatal("empty inputs")
	}
}

func TestBoundsProperty(t *testing.T) {
	if err := quick.Check(func(seed uint64) bool {
		r := rng.New(seed)
		n := 1 + r.Intn(50)
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = r.Float64()*100 - 50
		}
		s := Summarize(xs)
		if s.Mean < s.Min || s.Mean > s.Max {
			return false
		}
		if s.Median < s.Min || s.Median > s.Max {
			return false
		}
		for _, p := range []float64{0, 10, 50, 90, 100} {
			v := Percentile(xs, p)
			if v < s.Min || v > s.Max {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestGeoMeanBelowMeanProperty(t *testing.T) {
	if err := quick.Check(func(seed uint64) bool {
		r := rng.New(seed)
		n := 1 + r.Intn(20)
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = 0.1 + r.Float64()*10
		}
		return GeoMean(xs) <= Mean(xs)+1e-9
	}, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
