package isa

// Prefixed returns a Stream that replays prefix first, then continues
// with rest. The multicore migration path uses it to carry a thread's
// fetched-but-uncommitted instructions across a core move: the window
// is squashed on the source core, and the destination re-fetches those
// instructions from the prefix before resuming the underlying stream.
//
// Prefixed takes ownership of both arguments; the caller must not
// advance rest or mutate prefix afterwards. An empty prefix returns
// rest unchanged.
func Prefixed(prefix []Inst, rest Stream) Stream {
	if len(prefix) == 0 {
		return rest
	}
	return &prefixedStream{prefix: prefix, rest: rest}
}

type prefixedStream struct {
	prefix []Inst
	pos    int
	rest   Stream
}

func (p *prefixedStream) Next(out *Inst) bool {
	if p.pos < len(p.prefix) {
		*out = p.prefix[p.pos]
		p.pos++
		return true
	}
	return p.rest.Next(out)
}

func (p *prefixedStream) CloneStream() Stream {
	n := &prefixedStream{
		prefix: append([]Inst(nil), p.prefix...),
		pos:    p.pos,
		rest:   p.rest.CloneStream(),
	}
	return n
}
