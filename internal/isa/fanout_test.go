package isa

import (
	"testing"
)

// countStream is a deterministic finite test stream: instruction i has
// Seq i+1 and PC 8*i. It counts Next calls so tests can prove production
// happened once, not once per reader.
type countStream struct {
	n     uint64
	limit uint64
	calls int
}

func (c *countStream) Next(out *Inst) bool {
	c.calls++
	if c.n >= c.limit {
		return false
	}
	*out = Inst{Seq: c.n + 1, PC: 8 * c.n, Class: IntAlu, Dest: int8(c.n % 31)}
	c.n++
	return true
}

func (c *countStream) CloneStream() Stream {
	cp := *c
	return &cp
}

func TestFanoutReadersSeeIdenticalContent(t *testing.T) {
	src := &countStream{limit: 1000}
	ref := src.CloneStream()
	f := NewFanout(src)

	r0 := f.Origin()
	r1 := r0.CloneStream().(*FanoutReader)
	r2 := r0.CloneStream().(*FanoutReader)
	readers := []*FanoutReader{r0, r1, r2}

	// Advance the readers with skewed interleaving: r0 leads, r1 lags by
	// up to 7, r2 crawls one per round — divergent timing, same content.
	var got [3][]Inst
	for step := 0; ; step++ {
		var in Inst
		advanced := false
		for k, n := range []int{3, 2, 1} {
			for i := 0; i < n; i++ {
				if readers[k].Next(&in) {
					got[k] = append(got[k], in)
					advanced = true
				}
			}
		}
		if !advanced {
			break
		}
	}

	var want []Inst
	var in Inst
	for ref.Next(&in) {
		want = append(want, in)
	}
	for k := range got {
		if len(got[k]) != len(want) {
			t.Fatalf("reader %d consumed %d insts, want %d", k, len(got[k]), len(want))
		}
		for i := range want {
			if got[k][i] != want[i] {
				t.Fatalf("reader %d inst %d = %+v, want %+v", k, i, got[k][i], want[i])
			}
		}
	}
	// Production happened once per instruction (+1 for the exhausting
	// call), not once per reader.
	if src.calls != int(src.limit)+1 {
		t.Fatalf("source Next called %d times, want %d (shared decode)", src.calls, src.limit+1)
	}
}

func TestFanoutTrimBoundsWindow(t *testing.T) {
	src := &countStream{limit: 100000}
	f := NewFanout(src)
	r := f.Origin()

	var in Inst
	for chunk := 0; chunk < 50; chunk++ {
		for i := 0; i < 100; i++ {
			if !r.Next(&in) {
				t.Fatal("unexpected exhaustion")
			}
		}
		f.TrimTo(r.Pos())
		if f.Retained() != 0 {
			t.Fatalf("after full trim, %d insts retained", f.Retained())
		}
	}
	if f.Frontier() != r.Pos() {
		t.Fatalf("frontier %d, reader pos %d", f.Frontier(), r.Pos())
	}

	// A reader left behind the trim point must fail loudly, not silently
	// read wrong content.
	stale := &FanoutReader{f: f, pos: 0}
	defer func() {
		if recover() == nil {
			t.Fatal("stale reader read below the trimmed window without panicking")
		}
	}()
	stale.Next(&in)
}

func TestFanoutCloneStreamIntoRetargets(t *testing.T) {
	fa := NewFanout(&countStream{limit: 10})
	fb := NewFanout(&countStream{limit: 10})
	ra := fa.Origin()
	rb := fb.Origin()
	var in Inst
	ra.Next(&in)
	ra.Next(&in)

	if !ra.CloneStreamInto(rb) {
		t.Fatal("CloneStreamInto(FanoutReader) returned false")
	}
	if rb.Fanout() != fa || rb.Pos() != ra.Pos() {
		t.Fatalf("retargeted reader at (%p,%d), want (%p,%d)", rb.Fanout(), rb.Pos(), fa, ra.Pos())
	}
	if ra.CloneStreamInto(&countStream{}) {
		t.Fatal("CloneStreamInto(non-reader) must report false")
	}
}

func TestFanoutFreezeForbidsFill(t *testing.T) {
	f := NewFanout(&countStream{limit: 1000})
	r := f.Origin()
	f.Ensure(64)
	if f.Retained() != 64 {
		t.Fatalf("Ensure(64) retained %d", f.Retained())
	}
	f.Freeze(true)
	var in Inst
	for i := 0; i < 64; i++ {
		if !r.Next(&in) {
			t.Fatalf("frozen read %d inside pre-filled window failed", i)
		}
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("read past the pre-filled window of a frozen fanout must panic")
			}
		}()
		r.Next(&in)
	}()
	f.Freeze(false)
	if !r.Next(&in) {
		t.Fatal("thawed fanout failed to fill")
	}
}

func TestFanoutExhaustion(t *testing.T) {
	f := NewFanout(&countStream{limit: 5})
	r := f.Origin()
	r2 := r.CloneStream().(*FanoutReader)
	var in Inst
	n := 0
	for r.Next(&in) {
		n++
	}
	if n != 5 || !f.Exhausted() {
		t.Fatalf("leader consumed %d (exhausted=%v), want 5", n, f.Exhausted())
	}
	// The trailing reader still drains the full retained tail.
	n = 0
	for r2.Next(&in) {
		n++
	}
	if n != 5 {
		t.Fatalf("trailer consumed %d, want 5", n)
	}
}

func TestFanoutSteadyStateDoesNotAllocate(t *testing.T) {
	f := NewFanout(&countStream{limit: 1 << 30})
	r := f.Origin()
	var in Inst
	// Reach the high-water window size once.
	for i := 0; i < 4096; i++ {
		r.Next(&in)
	}
	f.TrimTo(r.Pos())
	allocs := testing.AllocsPerRun(50, func() {
		for i := 0; i < 4096; i++ {
			r.Next(&in)
		}
		f.TrimTo(r.Pos())
	})
	if allocs != 0 {
		t.Fatalf("steady-state fill/trim allocates %.1f per round, want 0", allocs)
	}
}
