// Package isa defines the instruction model shared by the synthetic
// application generators (internal/trace) and the SMT pipeline
// (internal/pipeline).
//
// The simulator is trace-driven: each thread supplies its committed-path
// instruction stream, and instructions carry everything the timing model
// needs — operation class, register dependences, the effective address of
// memory operations, and the outcome of branches.
package isa

import "fmt"

// Class identifies the functional-unit class and timing behaviour of an
// instruction.
type Class uint8

const (
	// IntAlu is a single-cycle integer operation (add, logical, shift,
	// compare). It executes on an integer ALU.
	IntAlu Class = iota
	// IntMul is an integer multiply.
	IntMul
	// IntDiv is an integer divide.
	IntDiv
	// FpAlu is a floating-point add/subtract/compare.
	FpAlu
	// FpMul is a floating-point multiply.
	FpMul
	// FpDiv is a floating-point divide or square root.
	FpDiv
	// Load reads memory; its latency depends on the cache hierarchy.
	Load
	// Store writes memory; it retires the write at commit.
	Store
	// Branch is a conditional branch; Taken records the committed-path
	// outcome, which the branch predictor is checked against.
	Branch
	// NumClasses is the number of instruction classes.
	NumClasses
)

// String returns the mnemonic-style name of the class.
func (c Class) String() string {
	switch c {
	case IntAlu:
		return "int-alu"
	case IntMul:
		return "int-mul"
	case IntDiv:
		return "int-div"
	case FpAlu:
		return "fp-alu"
	case FpMul:
		return "fp-mul"
	case FpDiv:
		return "fp-div"
	case Load:
		return "load"
	case Store:
		return "store"
	case Branch:
		return "branch"
	default:
		return fmt.Sprintf("class(%d)", uint8(c))
	}
}

// IsMem reports whether the class accesses data memory.
func (c Class) IsMem() bool { return c == Load || c == Store }

// IsFp reports whether the class executes on the floating-point side of
// the machine (and therefore consumes a floating-point rename register
// when it has a destination).
func (c Class) IsFp() bool { return c == FpAlu || c == FpMul || c == FpDiv }

// ExecLatency returns the execution latency of the class in cycles,
// excluding memory-hierarchy latency for loads (which the cache model
// supplies) and excluding issue/wakeup overheads (which the pipeline
// models structurally).
func (c Class) ExecLatency() int {
	switch c {
	case IntAlu, Branch, Store:
		return 1
	case IntMul:
		return 3
	case IntDiv:
		return 20
	case FpAlu:
		return 2
	case FpMul:
		return 4
	case FpDiv:
		return 12
	case Load:
		return 1 // address generation; cache latency is added on top
	default:
		return 1
	}
}

// Register-file shape. Architectural registers are thread-private; the
// integer and floating-point files each hold RegsPerFile registers.
const (
	// RegsPerFile is the number of architectural registers in each of
	// the integer and floating-point files.
	RegsPerFile = 32
	// NoReg marks an absent register operand.
	NoReg = int8(-1)
)

// Inst is one committed-path instruction.
//
// Register operands are architectural indices in [0, RegsPerFile). For
// integer-side classes they name integer registers; for floating-point
// classes they name FP registers. Loads may target either file (FpDest
// distinguishes); stores carry their data dependence in Src2.
type Inst struct {
	// Seq is the per-thread dynamic sequence number, starting at 0.
	Seq uint64
	// PC is the instruction's address. The synthetic generators lay
	// static code out over a few basic blocks, so PCs repeat with
	// realistic locality for the branch predictor and the BBV phase
	// detector.
	PC uint64
	// BB is the basic-block identifier, used by phase detection.
	BB uint16
	// Class selects the timing behaviour.
	Class Class
	// FpDest marks a Load whose destination is a floating-point
	// register. Ignored for other classes.
	FpDest bool
	// Dest is the destination architectural register, or NoReg.
	Dest int8
	// Src1, Src2 are source architectural registers, or NoReg.
	Src1, Src2 int8
	// Addr is the effective address for Load/Store.
	Addr uint64
	// Taken is the committed outcome for Branch.
	Taken bool
	// Target is the branch target address for Branch.
	Target uint64
}

// HasDest reports whether the instruction writes a register.
func (in *Inst) HasDest() bool { return in.Dest != NoReg }

// DestIsFp reports whether the destination register, if any, is in the
// floating-point file.
func (in *Inst) DestIsFp() bool {
	if in.Class == Load {
		return in.FpDest
	}
	return in.Class.IsFp()
}

// Stream produces a thread's committed-path instruction stream.
//
// Implementations must be deterministic and copyable: CloneStream must
// return an independent Stream that continues the identical sequence, so
// the simulator can checkpoint and replay execution (required by the
// paper's OFF-LINE and RAND-HILL learning algorithms).
type Stream interface {
	// Next writes the next instruction into *out and returns true, or
	// returns false if the stream is exhausted.
	Next(out *Inst) bool
	// CloneStream returns a deep copy positioned at the same point.
	CloneStream() Stream
}

// ReusableStream is an optional Stream extension for allocation-free
// checkpointing: CloneStreamInto overwrites dst — a stream previously
// produced by CloneStream (or CloneStreamInto) of the same source — with
// a deep copy positioned at the receiver's point, reusing dst's backing
// storage. It reports false, leaving dst untouched, when dst is not a
// compatible destination, and the caller must fall back to CloneStream.
type ReusableStream interface {
	Stream
	CloneStreamInto(dst Stream) bool
}
