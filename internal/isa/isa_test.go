package isa

import "testing"

func TestClassString(t *testing.T) {
	seen := map[string]bool{}
	for c := Class(0); c < NumClasses; c++ {
		s := c.String()
		if s == "" {
			t.Fatalf("class %d has empty name", c)
		}
		if seen[s] {
			t.Fatalf("duplicate class name %q", s)
		}
		seen[s] = true
	}
	if got := Class(200).String(); got != "class(200)" {
		t.Fatalf("unknown class name = %q", got)
	}
}

func TestIsMem(t *testing.T) {
	for c := Class(0); c < NumClasses; c++ {
		want := c == Load || c == Store
		if c.IsMem() != want {
			t.Fatalf("%v.IsMem() = %v", c, c.IsMem())
		}
	}
}

func TestIsFp(t *testing.T) {
	fp := map[Class]bool{FpAlu: true, FpMul: true, FpDiv: true}
	for c := Class(0); c < NumClasses; c++ {
		if c.IsFp() != fp[c] {
			t.Fatalf("%v.IsFp() = %v", c, c.IsFp())
		}
	}
}

func TestExecLatencyPositive(t *testing.T) {
	for c := Class(0); c < NumClasses; c++ {
		if c.ExecLatency() < 1 {
			t.Fatalf("%v latency %d < 1", c, c.ExecLatency())
		}
	}
}

func TestExecLatencyOrdering(t *testing.T) {
	// Divides must be slower than multiplies, which are slower than adds.
	if !(IntDiv.ExecLatency() > IntMul.ExecLatency() && IntMul.ExecLatency() > IntAlu.ExecLatency()) {
		t.Fatal("integer latency ordering violated")
	}
	if !(FpDiv.ExecLatency() > FpMul.ExecLatency() && FpMul.ExecLatency() > FpAlu.ExecLatency()) {
		t.Fatal("floating-point latency ordering violated")
	}
}

func TestDestIsFp(t *testing.T) {
	cases := []struct {
		in   Inst
		want bool
	}{
		{Inst{Class: IntAlu, Dest: 1}, false},
		{Inst{Class: FpMul, Dest: 1}, true},
		{Inst{Class: Load, Dest: 1, FpDest: false}, false},
		{Inst{Class: Load, Dest: 1, FpDest: true}, true},
		{Inst{Class: Store}, false},
	}
	for i, c := range cases {
		if got := c.in.DestIsFp(); got != c.want {
			t.Fatalf("case %d: DestIsFp = %v, want %v", i, got, c.want)
		}
	}
}

func TestHasDest(t *testing.T) {
	in := Inst{Dest: NoReg}
	if in.HasDest() {
		t.Fatal("NoReg reported as destination")
	}
	in.Dest = 0
	if !in.HasDest() {
		t.Fatal("register 0 not reported as destination")
	}
}
