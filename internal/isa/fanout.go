package isa

import "fmt"

// Fanout lets many readers consume the identical instruction sequence of
// one source Stream while production — trace generation and decode —
// happens exactly once per instruction. It is the shared-decode half of
// batched lock-step simulation: sibling configuration trials re-simulate
// the same committed-path prefix under different resource partitions, so
// without a fan-out every trial would re-run the generator's per-
// instruction work K times for byte-identical results.
//
// The fan-out keeps a sliding window of produced instructions:
//
//	absolute position:  0 ....... base ............. frontier
//	                    (trimmed) [ buf, len(buf) )  (not yet produced)
//
// Positions are absolute indices into the sequence counted from the
// source's position at NewFanout time. Readers hold only their absolute
// position; reading past the frontier pulls more instructions from the
// source into the window, and TrimTo discards the prefix every live
// reader has passed. The window therefore stays bounded as long as the
// orchestrator (pipeline.MachineBatch) trims between lock-step chunks.
//
// A Fanout is not safe for concurrent use. For parallel lock-step
// execution the orchestrator pre-fills the window (Ensure) and freezes
// the fan-out; frozen reads never touch the source, so readers on
// distinct goroutines only share read-only state.
type Fanout struct {
	src Stream
	buf []Inst
	// base is the absolute position of buf[0].
	base uint64
	// exhausted is set when src has run dry; frontier is then final.
	exhausted bool
	// frozen forbids filling from src (parallel read-only window).
	frozen bool
}

// NewFanout wraps src, taking ownership of it: the caller must not
// advance src directly afterwards. Absolute position 0 is src's position
// at the time of the call.
func NewFanout(src Stream) *Fanout {
	return &Fanout{src: src}
}

// Origin returns a reader at the oldest retained position — position 0
// on a freshly built fan-out. Further readers come from CloneStream on
// an existing one.
func (f *Fanout) Origin() *FanoutReader {
	return &FanoutReader{f: f, pos: f.base}
}

// Frontier returns the absolute position one past the newest produced
// instruction.
func (f *Fanout) Frontier() uint64 { return f.base + uint64(len(f.buf)) }

// Retained returns the number of instructions currently buffered.
func (f *Fanout) Retained() int { return len(f.buf) }

// Exhausted reports whether the source ran dry; the frontier is final.
func (f *Fanout) Exhausted() bool { return f.exhausted }

// fill produces instructions from the source until the window covers
// absolute position pos, reporting whether it does. The window's backing
// array is retained across trims, so steady-state filling does not
// allocate once the high-water window size has been reached.
func (f *Fanout) fill(pos uint64) bool {
	if f.frozen {
		panic("isa: fanout fill inside a frozen window (pre-fill bound too small)")
	}
	for !f.exhausted && pos >= f.Frontier() {
		f.buf = append(f.buf, Inst{})
		if !f.src.Next(&f.buf[len(f.buf)-1]) {
			f.buf = f.buf[:len(f.buf)-1]
			f.exhausted = true
		}
	}
	return pos < f.Frontier()
}

// Ensure pre-fills the window so reads below absolute position pos are
// satisfied without touching the source (or the source is exhausted).
func (f *Fanout) Ensure(pos uint64) {
	if pos > f.Frontier() {
		f.fill(pos - 1)
	}
}

// Freeze toggles the read-only window mode used during parallel
// lock-step chunks: a frozen fan-out panics instead of filling, so an
// undersized pre-fill is a loud bug rather than a data race.
func (f *Fanout) Freeze(on bool) { f.frozen = on }

// TrimTo discards the window prefix below absolute position pos,
// reclaiming space once every live reader has advanced past it. Readers
// behind the trim point become invalid and panic on their next read.
// Positions beyond the frontier are clamped to it.
func (f *Fanout) TrimTo(pos uint64) {
	if pos <= f.base {
		return
	}
	if fr := f.Frontier(); pos > fr {
		pos = fr
	}
	n := int(pos - f.base)
	copy(f.buf, f.buf[n:])
	f.buf = f.buf[:len(f.buf)-n]
	f.base = pos
}

// FanoutReader is one consumer's cursor into a Fanout. It implements
// ReusableStream: CloneStream yields another reader of the same fan-out
// (this is what makes checkpoint clones share decode), and
// CloneStreamInto retargets a pooled reader without allocating.
type FanoutReader struct {
	f   *Fanout
	pos uint64
}

// Pos returns the reader's absolute position: the index of the next
// instruction it will consume.
func (r *FanoutReader) Pos() uint64 { return r.pos }

// Fanout returns the shared fan-out this reader consumes.
func (r *FanoutReader) Fanout() *Fanout { return r.f }

// Next implements Stream.
func (r *FanoutReader) Next(out *Inst) bool {
	f := r.f
	if r.pos < f.base {
		panic(fmt.Sprintf("isa: fanout reader at %d behind trimmed window base %d", r.pos, f.base))
	}
	if r.pos >= f.base+uint64(len(f.buf)) && !f.fill(r.pos) {
		return false
	}
	*out = f.buf[r.pos-f.base]
	r.pos++
	return true
}

// CloneStream implements Stream. The clone shares the fan-out, so a
// checkpointed sibling replays the identical decoded sequence without
// re-running the generator.
func (r *FanoutReader) CloneStream() Stream {
	return &FanoutReader{f: r.f, pos: r.pos}
}

// CloneStreamInto implements ReusableStream: any existing FanoutReader
// (even of a different fan-out — pooled machines are retargeted wholesale)
// is redirected to the receiver's fan-out and position.
func (r *FanoutReader) CloneStreamInto(dst Stream) bool {
	d, ok := dst.(*FanoutReader)
	if !ok {
		return false
	}
	d.f, d.pos = r.f, r.pos
	return true
}
