package policy

import (
	"testing"

	"smthill/internal/isa"
	"smthill/internal/pipeline"
	"smthill/internal/resource"
	"smthill/internal/trace"
)

// TestDCRAHysteresisHoldsClassification: after a thread's last miss
// clears, it stays classified slow for the hysteresis window, then
// reverts to fast.
func TestDCRAHysteresisHoldsClassification(t *testing.T) {
	// Build a machine that will never miss (tiny working set) so the
	// classification comes only from the knobs we poke.
	p := trace.Profile{Name: "t", Seed: 1, A: trace.Params{
		FracLoad: 0.1, FracStore: 0.05, ChainDep: 0.2,
		WorkingSet: 4 << 10, StridePct: 1.0, BranchNoise: 0,
	}}
	d := NewDCRA()
	d.Hysteresis = 50
	m := pipeline.New(pipeline.DefaultConfig(2),
		[]isa.Stream{trace.New(p), trace.New(p.Defaulted())}, d)
	m.CycleN(2_000) // warm: both threads all-hit, both fast

	if d.slow(m, 0) {
		t.Fatal("hit-only thread classified slow")
	}
	// Pretend thread 0 missed now.
	d.lastMiss[0] = m.Now() + 1
	m.CycleN(10)
	if !d.slow(m, 0) {
		t.Fatal("thread not held slow within the hysteresis window")
	}
	m.CycleN(100)
	if d.slow(m, 0) {
		t.Fatal("thread still slow after the hysteresis window")
	}
}

// TestDCRAEqualSplitWhenHomogeneous: when every thread has the same
// classification, DCRA's caps are equal.
func TestDCRAEqualSplitWhenHomogeneous(t *testing.T) {
	profs := []trace.Profile{ilpProfile(1), ilpProfile(2)}
	streams := []isa.Stream{trace.New(profs[0]), trace.New(profs[1])}
	m := pipeline.New(pipeline.DefaultConfig(2), streams, NewDCRA())
	m.CycleN(60_000) // past cold misses: both threads all-hit, both fast
	l0 := m.Resources().Limit(0, resource.IntRename)
	l1 := m.Resources().Limit(1, resource.IntRename)
	if l0 != l1 {
		t.Fatalf("homogeneous threads capped unevenly: %d vs %d", l0, l1)
	}
}
