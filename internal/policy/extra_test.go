package policy

import (
	"testing"

	"smthill/internal/isa"
	"smthill/internal/pipeline"
	"smthill/internal/trace"
)

func TestExtraPolicyNames(t *testing.T) {
	for _, n := range []string{"STALL-FLUSH", "DG", "PDG"} {
		if p := ByName(n); p.Name() != n {
			t.Fatalf("ByName(%q).Name() = %q", n, p.Name())
		}
	}
}

func TestStallFlushFlushesOnlyNearExhaustion(t *testing.T) {
	// On a mildly memory-bound pair, STALL-FLUSH should flush far less
	// than FLUSH while still protecting the co-scheduled thread.
	const cycles = 150_000
	profs := []trace.Profile{memProfile(1), ilpProfile(2)}
	run := func(pol pipeline.Policy) *pipeline.Machine {
		streams := []isa.Stream{trace.New(profs[0]), trace.New(profs[1])}
		m := pipeline.New(pipeline.DefaultConfig(2), streams, pol)
		m.CycleN(cycles)
		return m
	}
	flush := run(NewFlush())
	hybrid := run(NewStallFlush())
	if hybrid.Stats().Squashed >= flush.Stats().Squashed {
		t.Fatalf("hybrid squashed %d >= FLUSH's %d", hybrid.Stats().Squashed, flush.Stats().Squashed)
	}
	icount := run(nil)
	if hybrid.Committed(1) <= icount.Committed(1) {
		t.Fatalf("hybrid did not protect the ILP thread: %d vs ICOUNT %d",
			hybrid.Committed(1), icount.Committed(1))
	}
}

func TestDGGatesOnOutstandingMisses(t *testing.T) {
	profs := []trace.Profile{memProfile(1), ilpProfile(2)}
	streams := []isa.Stream{trace.New(profs[0]), trace.New(profs[1])}
	d := NewDG()
	m := pipeline.New(pipeline.DefaultConfig(2), streams, d)
	gated := 0
	for i := 0; i < 100_000; i++ {
		m.Cycle()
		if d.FetchLocked(m, 0) {
			gated++
			if m.OutstandingDMiss(0) <= d.Threshold {
				t.Fatal("DG gated below its threshold")
			}
		}
	}
	if gated == 0 {
		t.Fatal("DG never gated the memory-bound thread")
	}
}

func TestDGProtectsCoScheduledThread(t *testing.T) {
	const cycles = 150_000
	profs := []trace.Profile{memProfile(1), ilpProfile(2)}
	run := func(pol pipeline.Policy) uint64 {
		streams := []isa.Stream{trace.New(profs[0]), trace.New(profs[1])}
		m := pipeline.New(pipeline.DefaultConfig(2), streams, pol)
		m.CycleN(cycles)
		return m.Committed(1)
	}
	if dg, ic := run(NewDG()), run(nil); dg <= ic {
		t.Fatalf("DG ILP commits %d <= ICOUNT's %d", dg, ic)
	}
}

func TestPDGGatesAtLeastAsEarlyAsDG(t *testing.T) {
	profs := []trace.Profile{memProfile(1), ilpProfile(2)}
	mk := func(pol pipeline.Policy) *pipeline.Machine {
		streams := []isa.Stream{trace.New(profs[0]), trace.New(profs[1])}
		return pipeline.New(pipeline.DefaultConfig(2), streams, pol)
	}
	dg, pdg := NewDG(), NewPDG()
	mdg, mpdg := mk(dg), mk(pdg)
	dgGated, pdgGated := 0, 0
	for i := 0; i < 120_000; i++ {
		mdg.Cycle()
		mpdg.Cycle()
		if dg.FetchLocked(mdg, 0) {
			dgGated++
		}
		if pdg.FetchLocked(mpdg, 0) {
			pdgGated++
		}
	}
	if pdgGated == 0 {
		t.Fatal("PDG never gated")
	}
	// The predictive variant gates earlier, so (on its own trajectory)
	// it should gate at least as many cycles as reactive DG within
	// a generous factor.
	if float64(pdgGated) < 0.5*float64(dgGated) {
		t.Fatalf("PDG gated %d cycles vs DG %d", pdgGated, dgGated)
	}
}

func TestExtraPoliciesCloneReplay(t *testing.T) {
	profs := []trace.Profile{memProfile(1), ilpProfile(2)}
	for _, name := range []string{"STALL-FLUSH", "DG", "PDG"} {
		streams := []isa.Stream{trace.New(profs[0]), trace.New(profs[1])}
		m := pipeline.New(pipeline.DefaultConfig(2), streams, ByName(name))
		m.CycleN(20_000)
		c := m.Clone()
		m.CycleN(20_000)
		c.CycleN(20_000)
		if m.Stats() != c.Stats() {
			t.Fatalf("%s machine clone diverged", name)
		}
	}
}
