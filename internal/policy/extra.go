package policy

import (
	"smthill/internal/pipeline"
)

// This file implements the remaining fetch-gating techniques surveyed in
// the paper's Section 2: the STALL-FLUSH hybrid (Tullsen & Brown), and
// DG / PDG (El-Moursy & Albonesi), which gate fetch on data-cache miss
// counts rather than on L2 misses. They give the experiment harness a
// complete set of published baselines.

// StallFlush is the hybrid of Tullsen & Brown: first fetch-lock the
// thread with the long-latency load (STALL); resort to flushing only if
// the shared resources become nearly exhausted while stalled, minimising
// wasted fetch bandwidth.
type StallFlush struct {
	// ExhaustionFrac is the fraction of total ROB occupancy above which
	// a stalled thread is flushed.
	ExhaustionFrac float64

	flush Flush
}

// NewStallFlush returns the hybrid with the default exhaustion threshold.
func NewStallFlush() *StallFlush {
	return &StallFlush{ExhaustionFrac: 0.9}
}

// Name implements pipeline.Policy.
func (*StallFlush) Name() string { return "STALL-FLUSH" }

// Cycle implements pipeline.Policy: while a thread is stalled on an L2
// miss and the machine is nearly full, flush past the oldest missing
// load to free its resources.
func (s *StallFlush) Cycle(m *pipeline.Machine) {
	s.flush.ensure(m)
	sizes := m.Resources().Sizes()
	robFull := float64(m.Resources().TotalOcc(robKind)) >= s.ExhaustionFrac*float64(sizes[robKind])
	if !robFull {
		return
	}
	for th := 0; th < m.Threads(); th++ {
		if m.OutstandingL2(th) > 0 && s.flush.pending[th] && !s.flush.pendingDone[th] {
			seq := s.flush.pendSeq[th]
			if s.flush.locked[th] && seq >= s.flush.lockSeq[th] {
				continue
			}
			m.FlushAfter(th, seq)
			s.flush.locked[th] = true
			s.flush.lockSeq[th] = seq
			s.flush.pending[th] = false
		}
	}
}

// FetchLocked implements pipeline.Policy: STALL-style lock while any L2
// miss is outstanding, plus the flush lock.
func (s *StallFlush) FetchLocked(m *pipeline.Machine, th int) bool {
	s.flush.ensure(m)
	return m.OutstandingL2(th) > 0 || s.flush.locked[th]
}

// OnL2Miss implements pipeline.Policy: remember the oldest outstanding
// miss as the potential flush point.
func (s *StallFlush) OnL2Miss(m *pipeline.Machine, th int, seq uint64) {
	s.flush.ensure(m)
	if s.flush.pending[th] && !s.flush.pendingDone[th] && s.flush.pendSeq[th] <= seq {
		return
	}
	s.flush.pending[th] = true
	s.flush.pendingDone[th] = false
	s.flush.pendSeq[th] = seq
}

// OnL2MissDone implements pipeline.Policy.
func (s *StallFlush) OnL2MissDone(m *pipeline.Machine, th int, seq uint64) {
	s.flush.ensure(m)
	if s.flush.locked[th] && seq == s.flush.lockSeq[th] {
		s.flush.locked[th] = false
	}
	if s.flush.pending[th] && seq == s.flush.pendSeq[th] {
		s.flush.pendingDone[th] = true
	}
}

// Clone implements pipeline.Policy.
func (s *StallFlush) Clone() pipeline.Policy {
	c := &StallFlush{ExhaustionFrac: s.ExhaustionFrac}
	c.flush = *s.flush.Clone().(*Flush)
	return c
}

// DG (data gating, El-Moursy & Albonesi) fetch-locks a thread whenever
// its number of in-flight DL1 misses exceeds a threshold, anticipating
// resource clog earlier than L2-miss-triggered schemes.
type DG struct {
	// Threshold is the outstanding-DL1-miss count above which fetch is
	// gated (the original paper gates at a small count).
	Threshold int
}

// NewDG returns the DG policy with threshold 2.
func NewDG() *DG { return &DG{Threshold: 2} }

// Name implements pipeline.Policy.
func (*DG) Name() string { return "DG" }

// Cycle implements pipeline.Policy.
func (*DG) Cycle(*pipeline.Machine) {}

// FetchLocked implements pipeline.Policy.
func (d *DG) FetchLocked(m *pipeline.Machine, th int) bool {
	return m.OutstandingDMiss(th) > d.Threshold
}

// OnL2Miss implements pipeline.Policy.
func (*DG) OnL2Miss(*pipeline.Machine, int, uint64) {}

// OnL2MissDone implements pipeline.Policy.
func (*DG) OnL2MissDone(*pipeline.Machine, int, uint64) {}

// Clone implements pipeline.Policy.
func (d *DG) Clone() pipeline.Policy { c := *d; return &c }

// PDG (predictive data gating) augments DG with a miss predictor: a
// per-thread table of load PCs that recently missed. A thread is gated
// when its predicted in-flight misses (actual outstanding misses plus
// pending predicted-miss loads) exceed the threshold. This reproduces the
// earlier gating of El-Moursy & Albonesi's predictive scheme with a
// simple tagged predictor.
type PDG struct {
	Threshold int

	// predictor state: per-thread direct-mapped tables of load-PC tags
	// with 2-bit miss counters.
	tables [][]pdgEntry
}

type pdgEntry struct {
	tag     uint32
	counter uint8
}

const pdgTableSize = 1024

// NewPDG returns the PDG policy with threshold 2.
func NewPDG() *PDG { return &PDG{Threshold: 2} }

// Name implements pipeline.Policy.
func (*PDG) Name() string { return "PDG" }

func (p *PDG) ensure(m *pipeline.Machine) {
	if p.tables == nil {
		p.tables = make([][]pdgEntry, m.Threads())
		for i := range p.tables {
			p.tables[i] = make([]pdgEntry, pdgTableSize)
		}
	}
}

// Cycle implements pipeline.Policy.
func (p *PDG) Cycle(m *pipeline.Machine) { p.ensure(m) }

// FetchLocked implements pipeline.Policy. PDG gates on the same
// outstanding-miss signal as DG but with a lower effective threshold when
// the thread has been missing recently (the predictor's aggregate bias),
// firing before the misses accumulate.
func (p *PDG) FetchLocked(m *pipeline.Machine, th int) bool {
	p.ensure(m)
	out := m.OutstandingDMiss(th)
	if out > p.Threshold {
		return true
	}
	// Predicted pressure: if the thread's recent loads mostly missed,
	// gate one miss earlier.
	if out == p.Threshold && p.bias(th) {
		return true
	}
	return false
}

// bias reports whether the thread's predictor is predominantly "miss".
func (p *PDG) bias(th int) bool {
	hot, total := 0, 0
	// Sampling a fixed stripe of the table keeps the check O(1)-ish per
	// cycle while tracking the thread's aggregate behaviour.
	for i := 0; i < pdgTableSize; i += 64 {
		e := p.tables[th][i]
		if e.counter >= 2 {
			hot++
		}
		if e.counter > 0 || e.tag != 0 {
			total++
		}
	}
	return total > 0 && hot*2 >= total
}

// Observe trains the predictor with a load outcome. The machine does not
// call this hook itself; OnL2Miss feeds it for misses, and the policy
// decays entries periodically.
func (p *PDG) observe(th int, pc uint32, miss bool) {
	e := &p.tables[th][pc%pdgTableSize]
	if e.tag != pc {
		*e = pdgEntry{tag: pc}
	}
	if miss {
		if e.counter < 3 {
			e.counter++
		}
	} else if e.counter > 0 {
		e.counter--
	}
}

// OnL2Miss implements pipeline.Policy: train toward "miss" for this
// thread (the sequence number stands in for the load PC at this
// granularity).
func (p *PDG) OnL2Miss(m *pipeline.Machine, th int, seq uint64) {
	p.ensure(m)
	p.observe(th, uint32(seq), true)
}

// OnL2MissDone implements pipeline.Policy.
func (p *PDG) OnL2MissDone(m *pipeline.Machine, th int, seq uint64) {
	p.ensure(m)
	p.observe(th, uint32(seq), false)
}

// Clone implements pipeline.Policy.
func (p *PDG) Clone() pipeline.Policy {
	c := &PDG{Threshold: p.Threshold}
	if p.tables != nil {
		c.tables = make([][]pdgEntry, len(p.tables))
		for i := range p.tables {
			c.tables[i] = append([]pdgEntry(nil), p.tables[i]...)
		}
	}
	return c
}
