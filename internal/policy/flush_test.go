package policy

import (
	"testing"

	"smthill/internal/isa"
	"smthill/internal/pipeline"
	"smthill/internal/trace"
)

// TestFlushThresholdPreservesMissClustering: with the trigger delay,
// sibling misses already in the window issue before the flush fires, so
// a burst-heavy thread under FLUSH commits far more than it would with
// an instant trigger (threshold 0).
func TestFlushThresholdPreservesMissClustering(t *testing.T) {
	prof := trace.Profile{
		Name: "bursty", Seed: 9,
		A: trace.Params{
			FracLoad: 0.3, FracStore: 0.05, FracFp: 0.1,
			ChainDep: 0.1, WorkingSet: 8 << 20, StridePct: 0.3,
			MissBurstProb: 0.03, BurstLen: 6, BranchNoise: 0.01,
		},
	}
	run := func(threshold int) uint64 {
		f := NewFlush()
		f.Threshold = threshold
		m := pipeline.New(pipeline.DefaultConfig(1), []isa.Stream{trace.New(prof)}, f)
		m.CycleN(150_000)
		return m.Committed(0)
	}
	instant := run(0)
	delayed := run(DefaultFlushThreshold)
	if float64(delayed) < 1.2*float64(instant) {
		t.Fatalf("threshold did not preserve clustering: instant %d vs delayed %d", instant, delayed)
	}
}

// TestFlushDisarmsOnFastReturn: a load that returns before the threshold
// expires must not trigger a flush.
func TestFlushDisarmsOnFastReturn(t *testing.T) {
	f := NewFlush()
	f.Threshold = 10
	m := pipeline.New(pipeline.DefaultConfig(1), []isa.Stream{trace.New(memProfile(1))}, f)
	// Drive the hooks directly: miss detected, returns 3 cycles later.
	f.OnL2Miss(m, 0, 100)
	m.CycleN(3)
	f.OnL2MissDone(m, 0, 100)
	m.CycleN(20) // trigger window passes
	if m.Stats().Flushes != 0 {
		t.Fatal("flush fired for a load that had already returned")
	}
	if f.FetchLocked(m, 0) {
		t.Fatal("thread locked with no outstanding trigger")
	}
}

// TestFlushOlderMissRearms: a detected miss older than the armed trigger
// replaces it.
func TestFlushOlderMissRearms(t *testing.T) {
	f := NewFlush()
	m := pipeline.New(pipeline.DefaultConfig(1), []isa.Stream{trace.New(memProfile(1))}, f)
	f.OnL2Miss(m, 0, 200)
	f.OnL2Miss(m, 0, 150) // older load detected later
	if f.pendSeq[0] != 150 {
		t.Fatalf("pending trigger seq %d, want 150", f.pendSeq[0])
	}
	f.OnL2Miss(m, 0, 180) // younger: ignored
	if f.pendSeq[0] != 150 {
		t.Fatalf("younger miss replaced the trigger: %d", f.pendSeq[0])
	}
}

func TestFlushCloneCopiesPendingState(t *testing.T) {
	f := NewFlush()
	m := pipeline.New(pipeline.DefaultConfig(1), []isa.Stream{trace.New(memProfile(1))}, f)
	f.OnL2Miss(m, 0, 42)
	c := f.Clone().(*Flush)
	if !c.pending[0] || c.pendSeq[0] != 42 || c.Threshold != f.Threshold {
		t.Fatal("clone dropped pending trigger state")
	}
	// Mutating the clone must not affect the original.
	c.pending[0] = false
	if !f.pending[0] {
		t.Fatal("clone shares state with original")
	}
}
