package policy

import (
	"testing"

	"smthill/internal/isa"
	"smthill/internal/pipeline"
	"smthill/internal/resource"
	"smthill/internal/trace"
)

func ilpProfile(seed uint64) trace.Profile {
	return trace.Profile{
		Name: "ilp", Seed: seed,
		A: trace.Params{
			FracLoad: 0.2, FracStore: 0.1,
			FracFp: 0.2, FracMulDiv: 0.05,
			ChainDep: 0.15, WorkingSet: 16 << 10, StridePct: 0.8,
			BranchNoise: 0.02,
		},
	}
}

func memProfile(seed uint64) trace.Profile {
	return trace.Profile{
		Name: "mem", Seed: seed,
		A: trace.Params{
			FracLoad: 0.35, FracStore: 0.1,
			FracFp: 0.1, FracMulDiv: 0.05,
			ChainDep: 0.25, WorkingSet: 16 << 20, StridePct: 0.1,
			PointerChase: 0.25, BranchNoise: 0.03,
		},
	}
}

func run(t *testing.T, pol pipeline.Policy, profs []trace.Profile, cycles int) *pipeline.Machine {
	t.Helper()
	streams := make([]isa.Stream, len(profs))
	for i, p := range profs {
		streams[i] = trace.New(p)
	}
	m := pipeline.New(pipeline.DefaultConfig(len(profs)), streams, pol)
	m.CycleN(cycles)
	return m
}

func TestNames(t *testing.T) {
	if NewStall().Name() != "STALL" || NewFlush().Name() != "FLUSH" || NewDCRA().Name() != "DCRA" {
		t.Fatal("policy names wrong")
	}
}

func TestByName(t *testing.T) {
	for _, n := range []string{"ICOUNT", "STALL", "FLUSH", "DCRA"} {
		p := ByName(n)
		if p.Name() != n {
			t.Fatalf("ByName(%q).Name() = %q", n, p.Name())
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("unknown name did not panic")
		}
	}()
	ByName("bogus")
}

// TestFlushProtectsCoScheduledThread is the paper's core motivation for
// FLUSH: with a memory-bound thread clogging the shared window, flushing
// it should let the ILP thread run much faster than plain ICOUNT does.
func TestFlushProtectsCoScheduledThread(t *testing.T) {
	const cycles = 150_000
	profs := []trace.Profile{memProfile(1), ilpProfile(2)}
	icount := run(t, nil, profs, cycles)
	flush := run(t, NewFlush(), profs, cycles)
	icountILP := float64(icount.Committed(1)) / cycles
	flushILP := float64(flush.Committed(1)) / cycles
	if flushILP < icountILP*1.2 {
		t.Fatalf("FLUSH did not relieve clog: ILP thread %.3f (ICOUNT) vs %.3f (FLUSH)",
			icountILP, flushILP)
	}
	if flush.Stats().Flushes == 0 {
		t.Fatal("FLUSH never flushed")
	}
}

func TestStallProtectsCoScheduledThread(t *testing.T) {
	const cycles = 150_000
	profs := []trace.Profile{memProfile(1), ilpProfile(2)}
	icount := run(t, nil, profs, cycles)
	stall := run(t, NewStall(), profs, cycles)
	icountILP := float64(icount.Committed(1)) / cycles
	stallILP := float64(stall.Committed(1)) / cycles
	if stallILP < icountILP {
		t.Fatalf("STALL did not help the ILP thread: %.3f vs %.3f", icountILP, stallILP)
	}
	if stall.Stats().Flushes != 0 {
		t.Fatal("STALL must not flush")
	}
}

func TestFlushWastesFetchBandwidth(t *testing.T) {
	// FLUSH refetches squashed instructions: it must fetch strictly more
	// than it commits, and more than STALL fetches per committed
	// instruction (the paper's Section 2 notes flushing is wasteful).
	const cycles = 150_000
	profs := []trace.Profile{memProfile(1), ilpProfile(2)}
	flush := run(t, NewFlush(), profs, cycles)
	stall := run(t, NewStall(), profs, cycles)
	fw := float64(flush.Stats().Fetched) / float64(flush.Stats().Committed)
	sw := float64(stall.Stats().Fetched) / float64(stall.Stats().Committed)
	if fw <= sw {
		t.Fatalf("FLUSH fetch/commit ratio %.3f not above STALL's %.3f", fw, sw)
	}
}

func TestDCRAGivesSlowThreadsLargerPartitions(t *testing.T) {
	profs := []trace.Profile{memProfile(1), ilpProfile(2)}
	streams := []isa.Stream{trace.New(profs[0]), trace.New(profs[1])}
	m := pipeline.New(pipeline.DefaultConfig(2), streams, NewDCRA())
	slowLarger := 0
	samples := 0
	for i := 0; i < 100_000; i++ {
		m.Cycle()
		if m.OutstandingDMiss(0) > 0 && m.OutstandingDMiss(1) == 0 {
			samples++
			if m.Resources().Limit(0, resource.IntRename) > m.Resources().Limit(1, resource.IntRename) {
				slowLarger++
			}
		}
	}
	if samples == 0 {
		t.Fatal("never observed a slow/fast split")
	}
	// The classification hysteresis can briefly hold the other thread
	// "slow" after its misses clear, so allow a small overlap.
	if float64(slowLarger) < 0.9*float64(samples) {
		t.Fatalf("slow thread had the larger partition in only %d/%d samples", slowLarger, samples)
	}
}

func TestDCRALimitsSumWithinCapacity(t *testing.T) {
	profs := []trace.Profile{memProfile(1), memProfile(2), ilpProfile(3), ilpProfile(4)}
	streams := make([]isa.Stream, 4)
	for i, p := range profs {
		streams[i] = trace.New(p)
	}
	m := pipeline.New(pipeline.DefaultConfig(4), streams, NewDCRA())
	for i := 0; i < 50_000; i++ {
		m.Cycle()
		for _, k := range []resource.Kind{resource.IntIQ, resource.IntRename, resource.ROB} {
			sum := 0
			for th := 0; th < 4; th++ {
				sum += m.Resources().Limit(th, k)
			}
			if sum > m.Resources().Sizes()[k] {
				t.Fatalf("cycle %d: DCRA %v limits sum to %d > capacity %d",
					i, k, sum, m.Resources().Sizes()[k])
			}
		}
	}
}

func TestDCRAContainsClog(t *testing.T) {
	// DCRA's headline property: the memory-bound thread cannot fill the
	// machine, so the ILP thread keeps most of its throughput.
	const cycles = 150_000
	profs := []trace.Profile{memProfile(1), ilpProfile(2)}
	icount := run(t, nil, profs, cycles)
	dcra := run(t, NewDCRA(), profs, cycles)
	if float64(dcra.Committed(1)) < float64(icount.Committed(1))*1.1 {
		t.Fatalf("DCRA ILP commits %d not clearly above ICOUNT's %d",
			dcra.Committed(1), icount.Committed(1))
	}
}

func TestPolicyClonesAreIndependent(t *testing.T) {
	profs := []trace.Profile{memProfile(1), ilpProfile(2)}
	streams := []isa.Stream{trace.New(profs[0]), trace.New(profs[1])}
	m := pipeline.New(pipeline.DefaultConfig(2), streams, NewFlush())
	m.CycleN(20_000)
	c := m.Clone()
	m.CycleN(30_000)
	c.CycleN(30_000)
	if m.Stats() != c.Stats() {
		t.Fatalf("FLUSH machine clone diverged:\n %+v\n %+v", m.Stats(), c.Stats())
	}
}

func TestDCRACloneReplay(t *testing.T) {
	profs := []trace.Profile{memProfile(1), ilpProfile(2)}
	streams := []isa.Stream{trace.New(profs[0]), trace.New(profs[1])}
	m := pipeline.New(pipeline.DefaultConfig(2), streams, NewDCRA())
	m.CycleN(20_000)
	c := m.Clone()
	m.CycleN(30_000)
	c.CycleN(30_000)
	if m.Stats() != c.Stats() {
		t.Fatal("DCRA machine clone diverged")
	}
}

func TestStallLocksOnlyMissingThread(t *testing.T) {
	profs := []trace.Profile{memProfile(1), ilpProfile(2)}
	streams := []isa.Stream{trace.New(profs[0]), trace.New(profs[1])}
	s := NewStall()
	m := pipeline.New(pipeline.DefaultConfig(2), streams, s)
	lockedMem, lockedIlp := 0, 0
	for i := 0; i < 100_000; i++ {
		m.Cycle()
		if s.FetchLocked(m, 0) {
			lockedMem++
		}
		if s.FetchLocked(m, 1) {
			lockedIlp++
		}
	}
	if lockedMem == 0 {
		t.Fatal("memory-bound thread never fetch-locked under STALL")
	}
	// The caches are shared, so the thrashing thread's traffic also
	// evicts the ILP thread's lines and causes it some L2 misses; but
	// the memory-bound thread must be locked distinctly more often.
	if float64(lockedIlp) > 0.75*float64(lockedMem) {
		t.Fatalf("ILP thread locked %d cycles vs mem thread %d", lockedIlp, lockedMem)
	}
}
