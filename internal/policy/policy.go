// Package policy implements the previously published SMT resource
// distribution techniques the paper compares against (Section 2):
//
//   - ICOUNT (Tullsen et al., ISCA 1996): the fetch policy alone; the
//     pipeline's fetch stage always ranks threads by ICOUNT, so the
//     baseline is pipeline.NilPolicy and needs nothing from this package.
//   - STALL (Tullsen & Brown, MICRO 2001): fetch-lock a thread while it
//     has a long-latency (L2-missing) load outstanding.
//   - FLUSH (Tullsen & Brown, MICRO 2001): additionally squash the
//     stalled thread's instructions after the missing load, freeing the
//     shared resources it holds until the load returns.
//   - DCRA (Cazorla et al., MICRO 2004): continuously partition the
//     shared structures, giving memory-bound ("slow") threads larger
//     partitions while containing them so they cannot clog the pipeline.
//
// These run as pipeline.Policy per-cycle mechanisms. The paper's
// learning-based techniques live in internal/core and operate at epoch
// granularity instead.
package policy

import (
	"smthill/internal/pipeline"
	"smthill/internal/resource"
)

// robKind aliases the partitioned reorder buffer for the policies that
// monitor machine fullness.
const robKind = resource.ROB

// Stall fetch-locks any thread with an outstanding L2 miss. It is the
// STALL technique of Tullsen & Brown: the stalled thread stops consuming
// fetch bandwidth and new resources until its miss resolves, but the
// resources it already holds stay clogged.
type Stall struct{}

// NewStall returns the STALL policy.
func NewStall() *Stall { return &Stall{} }

// Name implements pipeline.Policy.
func (*Stall) Name() string { return "STALL" }

// Cycle implements pipeline.Policy.
func (*Stall) Cycle(*pipeline.Machine) {}

// FetchLocked implements pipeline.Policy: locked while any L2 miss is
// outstanding.
func (*Stall) FetchLocked(m *pipeline.Machine, th int) bool {
	return m.OutstandingL2(th) > 0
}

// OnL2Miss implements pipeline.Policy.
func (*Stall) OnL2Miss(*pipeline.Machine, int, uint64) {}

// OnL2MissDone implements pipeline.Policy.
func (*Stall) OnL2MissDone(*pipeline.Machine, int, uint64) {}

// Clone implements pipeline.Policy.
func (s *Stall) Clone() pipeline.Policy { c := *s; return &c }

// DefaultFlushThreshold is the number of cycles a long-latency load stays
// outstanding before FLUSH fires (Tullsen & Brown trigger once a load
// exceeds the L2 hit latency by a margin). The delay matters: it lets the
// sibling misses already in the window issue — preserving the thread's
// miss clustering — before the flush squashes the rest.
const DefaultFlushThreshold = 15

// Flush is the FLUSH technique of Tullsen & Brown: once a load has been
// outstanding past the threshold (an L2 miss), all of the thread's
// instructions younger than the load are squashed (releasing the shared
// resources they hold) and the thread is fetch-locked until the load's
// data returns.
type Flush struct {
	// Threshold is the trigger delay in cycles after L2-miss detection.
	Threshold int

	locked  []bool
	lockSeq []uint64
	// Pending trigger per thread: the oldest detected miss not yet
	// flushed, and the cycle its threshold expires.
	pending     []bool
	pendSeq     []uint64
	pendFire    []uint64
	pendingDone []bool // set when the pending load completed before firing
}

// NewFlush returns the FLUSH policy.
func NewFlush() *Flush { return &Flush{Threshold: DefaultFlushThreshold} }

// Name implements pipeline.Policy.
func (*Flush) Name() string { return "FLUSH" }

func (f *Flush) ensure(m *pipeline.Machine) {
	if f.locked == nil {
		t := m.Threads()
		f.locked = make([]bool, t)
		f.lockSeq = make([]uint64, t)
		f.pending = make([]bool, t)
		f.pendSeq = make([]uint64, t)
		f.pendFire = make([]uint64, t)
		f.pendingDone = make([]bool, t)
	}
}

// Cycle implements pipeline.Policy: fire expired triggers.
func (f *Flush) Cycle(m *pipeline.Machine) {
	f.ensure(m)
	for th := range f.pending {
		if !f.pending[th] || m.Now() < f.pendFire[th] {
			continue
		}
		f.pending[th] = false
		if f.pendingDone[th] {
			continue // the load returned before the threshold expired
		}
		seq := f.pendSeq[th]
		if f.locked[th] && seq >= f.lockSeq[th] {
			continue
		}
		m.FlushAfter(th, seq)
		f.locked[th] = true
		f.lockSeq[th] = seq
	}
}

// FetchLocked implements pipeline.Policy.
func (f *Flush) FetchLocked(m *pipeline.Machine, th int) bool {
	f.ensure(m)
	return f.locked[th]
}

// OnL2Miss implements pipeline.Policy: arm (or re-arm, for an older
// load) the thread's flush trigger.
func (f *Flush) OnL2Miss(m *pipeline.Machine, th int, seq uint64) {
	f.ensure(m)
	if f.locked[th] && seq >= f.lockSeq[th] {
		return
	}
	if f.pending[th] && !f.pendingDone[th] && f.pendSeq[th] <= seq {
		return // an older trigger is already armed
	}
	f.pending[th] = true
	f.pendingDone[th] = false
	f.pendSeq[th] = seq
	f.pendFire[th] = m.Now() + uint64(f.Threshold)
}

// OnL2MissDone implements pipeline.Policy: unlock when the load we are
// waiting on returns; disarm a pending trigger whose load returned.
func (f *Flush) OnL2MissDone(m *pipeline.Machine, th int, seq uint64) {
	f.ensure(m)
	if f.locked[th] && seq == f.lockSeq[th] {
		f.locked[th] = false
	}
	if f.pending[th] && seq == f.pendSeq[th] {
		f.pendingDone[th] = true
	}
}

// Clone implements pipeline.Policy.
func (f *Flush) Clone() pipeline.Policy {
	c := &Flush{Threshold: f.Threshold}
	c.locked = append([]bool(nil), f.locked...)
	c.lockSeq = append([]uint64(nil), f.lockSeq...)
	c.pending = append([]bool(nil), f.pending...)
	c.pendSeq = append([]uint64(nil), f.pendSeq...)
	c.pendFire = append([]uint64(nil), f.pendFire...)
	c.pendingDone = append([]bool(nil), f.pendingDone...)
	return c
}

// DCRA dynamically partitions the shared structures every cycle based on
// each thread's memory behaviour, following Cazorla et al.: a thread with
// an outstanding DL1 miss is "slow" and receives a partition C times the
// size of a "fast" thread's, letting it exploit parallelism beyond its
// stalled loads while containing it so it cannot clog the machine.
//
// The published DCRA derives per-structure sharing from activity
// vectors; this implementation applies the fast/slow weighting to the
// three structures the paper partitions (integer IQ, integer rename
// registers, ROB), which is the behaviour the paper's comparison depends
// on. The weight C is configurable (4 by default, mirroring the strong
// bias toward slow threads in the original).
type DCRA struct {
	// C is the slow:fast partition weight ratio.
	C int
	// Hysteresis is how long (in cycles) a thread stays classified
	// "slow" after its last outstanding DL1 miss clears. The original
	// DCRA classifies from hardware miss counters sampled over short
	// intervals; without this smoothing, a cycle-granular classifier
	// exploits sub-interval gaps between misses in a way the published
	// hardware could not.
	Hysteresis uint64

	lastMiss []uint64
}

// NewDCRA returns the DCRA policy with the default parameters.
func NewDCRA() *DCRA { return &DCRA{C: 4, Hysteresis: 64} }

// slow classifies thread th, applying the hysteresis window.
func (d *DCRA) slow(m *pipeline.Machine, th int) bool {
	if d.lastMiss == nil {
		d.lastMiss = make([]uint64, m.Threads())
	}
	if m.OutstandingDMiss(th) > 0 {
		d.lastMiss[th] = m.Now() + 1
		return true
	}
	return d.lastMiss[th] > 0 && m.Now()-(d.lastMiss[th]-1) < d.Hysteresis
}

// Name implements pipeline.Policy.
func (*DCRA) Name() string { return "DCRA" }

// partitioned lists the structures DCRA caps, matching the set the
// paper's learning techniques partition.
var partitioned = [...]resource.Kind{resource.IntIQ, resource.IntRename, resource.ROB}

// Cycle implements pipeline.Policy: reclassify threads and reprogram the
// partition limits.
func (d *DCRA) Cycle(m *pipeline.Machine) {
	t := m.Threads()
	res := m.Resources()
	slowCount := 0
	var isSlow [16]bool
	for th := 0; th < t; th++ {
		isSlow[th] = d.slow(m, th)
		if isSlow[th] {
			slowCount++
		}
	}
	fast := t - slowCount
	den := fast + d.C*slowCount
	for _, k := range partitioned {
		e := res.Sizes()[k]
		for th := 0; th < t; th++ {
			share := e / den
			if isSlow[th] {
				share = d.C * e / den
			}
			res.SetLimit(th, k, share)
		}
	}
}

// FetchLocked implements pipeline.Policy. DCRA's containment works
// through the partition limits (the machine fetch-locks a thread at its
// limit), so no extra locking is needed.
func (*DCRA) FetchLocked(*pipeline.Machine, int) bool { return false }

// OnL2Miss implements pipeline.Policy.
func (*DCRA) OnL2Miss(*pipeline.Machine, int, uint64) {}

// OnL2MissDone implements pipeline.Policy.
func (*DCRA) OnL2MissDone(*pipeline.Machine, int, uint64) {}

// Clone implements pipeline.Policy.
func (d *DCRA) Clone() pipeline.Policy {
	c := *d
	c.lastMiss = append([]uint64(nil), d.lastMiss...)
	return &c
}

// ByName returns a fresh policy instance for a report/CLI name:
// "ICOUNT", "STALL", "FLUSH", or "DCRA". It returns nil for "ICOUNT"
// (the machine's built-in fetch policy) and panics on unknown names.
func ByName(name string) pipeline.Policy {
	switch name {
	case "ICOUNT":
		return pipeline.NilPolicy{}
	case "STALL":
		return NewStall()
	case "FLUSH":
		return NewFlush()
	case "DCRA":
		return NewDCRA()
	case "STALL-FLUSH":
		return NewStallFlush()
	case "DG":
		return NewDG()
	case "PDG":
		return NewPDG()
	default:
		panic("policy: unknown policy " + name)
	}
}
