package sweep

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
	"time"
)

// TestCancellationPartialResults cancels a serial batch from inside job
// 2 and asserts the engine's contract: jobs completed before the
// cancellation are returned, jobs after it never run, and the batch
// error is the context's error — not a fabricated job failure.
func TestCancellationPartialResults(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var ran atomic.Int64
	jobs := make([]Job[int], 10)
	for i := range jobs {
		i := i
		jobs[i] = Job[int]{
			Key: fmt.Sprintf("job-%d", i),
			Run: func(context.Context) (int, error) {
				ran.Add(1)
				if i == 2 {
					cancel() // the batch is cancelled mid-flight...
				}
				return i * 10, nil // ...but this job itself completes
			},
		}
	}
	res, err := Run(ctx, NewEngine(1), jobs)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if got := ran.Load(); got != 3 {
		t.Fatalf("%d jobs ran after cancellation, want 3", got)
	}
	if len(res) != 3 {
		t.Fatalf("partial results = %v, want the 3 completed jobs", res)
	}
	for i := 0; i < 3; i++ {
		if res[fmt.Sprintf("job-%d", i)] != i*10 {
			t.Fatalf("completed job %d missing or wrong in %v", i, res)
		}
	}
}

// TestCancellationStopsWorkersPromptly parks every worker on ctx.Done
// and asserts that cancelling returns the whole batch quickly — workers
// must not keep pulling queued jobs after the context dies.
func TestCancellationStopsWorkersPromptly(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	started := make(chan struct{}, 4)
	jobs := make([]Job[int], 16)
	for i := range jobs {
		jobs[i] = Job[int]{
			Key: fmt.Sprintf("parked-%d", i),
			Run: func(c context.Context) (int, error) {
				started <- struct{}{}
				<-c.Done()
				return 0, c.Err()
			},
		}
	}
	done := make(chan error, 1)
	var res map[string]int
	go func() {
		var err error
		res, err = Run(ctx, NewEngine(4), jobs)
		done <- err
	}()
	for i := 0; i < 4; i++ {
		<-started
	}
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("err = %v, want context.Canceled", err)
		}
		if len(res) != 0 {
			t.Fatalf("no job completed, but results = %v", res)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Run did not return after cancellation")
	}
}

// TestDeadlineNotMisreported asserts a timed-out batch surfaces
// context.DeadlineExceeded, not a per-job failure.
func TestDeadlineNotMisreported(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	jobs := []Job[int]{
		{Key: "instant", Run: func(context.Context) (int, error) { return 1, nil }},
		{Key: "stuck", Run: func(c context.Context) (int, error) {
			<-c.Done()
			return 0, c.Err()
		}},
	}
	res, err := Run(ctx, NewEngine(2), jobs)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
	if res["instant"] != 1 {
		t.Fatalf("completed job dropped: %v", res)
	}
}
