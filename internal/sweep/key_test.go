package sweep

import "testing"

// TestKeyFromInsertionOrder checks the determinism property the result
// cache depends on: the same logical parameter set yields the same key
// no matter what order the map was built in.
func TestKeyFromInsertionOrder(t *testing.T) {
	build := func(order []string) string {
		m := map[string]string{}
		for _, k := range order {
			switch k {
			case "wl":
				m["wl"] = "art-mcf"
			case "pol":
				m["pol"] = "ICOUNT"
			case "es":
				m["es"] = "65536"
			case "ep":
				m["ep"] = "50"
			}
		}
		return KeyFrom("v3|baseline", m)
	}
	want := build([]string{"wl", "pol", "es", "ep"})
	orders := [][]string{
		{"ep", "es", "pol", "wl"},
		{"pol", "wl", "ep", "es"},
		{"es", "ep", "wl", "pol"},
	}
	// Go randomises map iteration per run; repeat to exercise different
	// internal orders as well as different insertion orders.
	for i := 0; i < 32; i++ {
		for _, o := range orders {
			if got := build(o); got != want {
				t.Fatalf("insertion order %v gave %q, want %q", o, got, want)
			}
		}
	}
	if want != "v3|baseline|ep=50|es=65536|pol=ICOUNT|wl=art-mcf" {
		t.Errorf("canonical form changed: %q", want)
	}
}

// TestKeyFromEscaping checks that separator characters in names or
// values cannot make two distinct parameter sets collide.
func TestKeyFromEscaping(t *testing.T) {
	a := KeyFrom("p", map[string]string{"a": "b|c=d"})
	b := KeyFrom("p", map[string]string{"a": "b", "c": "d"})
	if a == b {
		t.Fatalf("escaping failed: %q collides", a)
	}
	if got := KeyFrom("p", map[string]string{"x%": "50%"}); got != "p|x%25=50%25" {
		t.Errorf("percent escaping: %q", got)
	}
	if got := KeyFrom("p", nil); got != "p" {
		t.Errorf("empty params: %q", got)
	}
}
