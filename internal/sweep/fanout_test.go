package sweep

import (
	"context"
	"fmt"
	"sync"
	"testing"
)

// TestObserverFanOut subscribes several observers to one engine and
// asserts each sees the full, identical event stream — the contract the
// service daemon relies on to feed SSE subscribers, metrics, and
// progress reporting from one engine.
func TestObserverFanOut(t *testing.T) {
	e := NewEngine(2)
	var mu sync.Mutex
	var a, b []Event
	e.AddObserver(func(ev Event) { mu.Lock(); a = append(a, ev); mu.Unlock() })
	e.AddObserver(func(ev Event) { mu.Lock(); b = append(b, ev); mu.Unlock() })

	jobs := make([]Job[int], 6)
	for i := range jobs {
		i := i
		jobs[i] = Job[int]{
			Key: fmt.Sprintf("f-%d", i),
			Run: func(context.Context) (int, error) { return i, nil },
		}
	}
	if _, err := Run(context.Background(), e, jobs); err != nil {
		t.Fatal(err)
	}
	if len(a) == 0 || len(a) != len(b) {
		t.Fatalf("observers diverged: %d vs %d events", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("event %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
}

// TestSetObserverReplacesFanOut pins SetObserver's replace semantics
// against AddObserver's append semantics.
func TestSetObserverReplacesFanOut(t *testing.T) {
	e := NewEngine(1)
	var old, cur int
	e.AddObserver(func(Event) { old++ })
	e.SetObserver(func(Event) { cur++ })
	_, err := Run(context.Background(), e, []Job[int]{
		{Key: "x", Run: func(context.Context) (int, error) { return 0, nil }},
	})
	if err != nil {
		t.Fatal(err)
	}
	if old != 0 {
		t.Fatalf("replaced observer still saw %d events", old)
	}
	if cur == 0 {
		t.Fatal("installed observer saw nothing")
	}
	e.SetObserver(nil)
	cur = 0
	if _, err := Run(context.Background(), e, []Job[int]{
		{Key: "y", Run: func(context.Context) (int, error) { return 0, nil }},
	}); err != nil {
		t.Fatal(err)
	}
	if cur != 0 {
		t.Fatal("nil SetObserver did not detach observers")
	}
}
