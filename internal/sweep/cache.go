package sweep

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"syscall"
)

// SchemaVersion tags every cache file. Bump it when the on-disk entry
// format changes; entries written under another version are treated as
// misses. (Changes to what a job computes are versioned separately, in
// the job keys themselves — see internal/experiment's resultsVersion.)
const SchemaVersion = 1

// Cache is an on-disk, content-addressed result store. Each entry is one
// JSON file named by the SHA-256 of the schema version and job key, laid
// out in 256 fan-out directories to keep listings manageable. Writes are
// atomic (temp file + rename), so concurrent processes sharing a cache
// directory at worst redundantly compute and then write identical
// entries.
type Cache struct {
	dir  string
	logf func(format string, args ...any)
}

// SetLogf installs a logger for damaged-entry reports (nil, the default,
// keeps recovery silent). A truncated or otherwise corrupt entry is
// never an error — Get treats it as a miss and the engine recomputes —
// but an operator running a long-lived shared cache wants to know the
// disk is eating entries.
func (c *Cache) SetLogf(logf func(format string, args ...any)) { c.logf = logf }

// NewCache opens (creating if needed) a cache rooted at dir.
func NewCache(dir string) (*Cache, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("sweep: open cache: %w", err)
	}
	return &Cache{dir: dir}, nil
}

// Dir returns the cache's root directory.
func (c *Cache) Dir() string { return c.dir }

// entry is the cache file format. Key is stored verbatim so entries are
// debuggable with a text editor and so Get can reject the (cosmically
// unlikely) hash collision as well as any stale addressing scheme.
type entry struct {
	Schema int             `json:"schema"`
	Key    string          `json:"key"`
	Result json.RawMessage `json:"result"`
}

// path returns the content address of key.
func (c *Cache) path(key string) string {
	sum := sha256.Sum256([]byte(fmt.Sprintf("sweep-schema-%d|%s", SchemaVersion, key)))
	name := hex.EncodeToString(sum[:])
	return filepath.Join(c.dir, name[:2], name+".json")
}

// Get returns the stored raw JSON result for key, or ok=false on any
// miss: absent file, unreadable or corrupt entry, schema mismatch, or
// key mismatch. A corrupt entry is simply recomputed by the engine; when
// a logger is installed (SetLogf) the damage is reported, because a
// present-but-unusable file — unlike a plain absence — usually means a
// truncated write or bit rot worth an operator's attention.
func (c *Cache) Get(_ context.Context, key string) (json.RawMessage, bool) {
	p := c.path(key)
	b, err := os.ReadFile(p)
	if err != nil {
		if !os.IsNotExist(err) && c.logf != nil {
			c.logf("sweep cache: unreadable entry %s (treating as miss): %v", p, err)
		}
		return nil, false
	}
	var e entry
	switch {
	case json.Unmarshal(b, &e) != nil:
		if c.logf != nil {
			c.logf("sweep cache: corrupt entry %s (%d bytes, treating as miss)", p, len(b))
		}
		return nil, false
	case e.Schema != SchemaVersion:
		// A foreign schema version is expected after an upgrade, not
		// damage: stay silent, recompute, overwrite.
		return nil, false
	case e.Key != key:
		if c.logf != nil {
			c.logf("sweep cache: entry %s holds key %q, want %q (treating as miss)", p, e.Key, key)
		}
		return nil, false
	}
	return e.Result, true
}

// Put stores the raw JSON result for key atomically and durably: the
// entry is written to a temp file, fsynced, renamed into place, and the
// fan-out directory is fsynced so the rename itself survives a crash.
// A worker killed at any point can therefore never leave a truncated
// entry visible to a shared store — readers see the old entry (none)
// or the whole new one. (Get additionally treats a corrupt entry as a
// miss, so even bit rot downgrades to a recompute, never an error.)
func (c *Cache) Put(_ context.Context, key string, result json.RawMessage) error {
	p := c.path(key)
	if err := os.MkdirAll(filepath.Dir(p), 0o755); err != nil {
		return err
	}
	b, err := json.Marshal(entry{Schema: SchemaVersion, Key: key, Result: result})
	if err != nil {
		return err
	}
	tmp, err := os.CreateTemp(filepath.Dir(p), filepath.Base(p)+".tmp*")
	if err != nil {
		return err
	}
	if _, err := tmp.Write(b); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	// Flush file contents before the rename publishes the name: rename
	// is atomic for readers, but only the fsync makes the bytes behind
	// it durable — without it a crash can promote an empty file.
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	if err := os.Rename(tmp.Name(), p); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return syncDir(filepath.Dir(p))
}

// syncDir fsyncs a directory so a just-renamed entry's name is durable.
// Filesystems that reject directory fsync (some network mounts) are
// tolerated: the entry is still atomically visible, only crash
// durability is reduced to the filesystem's own guarantee.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	if err := d.Sync(); err != nil && !errors.Is(err, syscall.EINVAL) && !errors.Is(err, syscall.ENOTSUP) {
		return err
	}
	return nil
}
