package sweep

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
)

// job returns a trivial float job computing f(i) with a counted body.
func countedJob(i int, runs *atomic.Int64) Job[float64] {
	return Job[float64]{
		Key: fmt.Sprintf("job-%d", i),
		Run: func(context.Context) (float64, error) {
			runs.Add(1)
			return float64(i) * 1.5, nil
		},
	}
}

func TestRunAllJobs(t *testing.T) {
	var runs atomic.Int64
	jobs := make([]Job[float64], 50)
	for i := range jobs {
		jobs[i] = countedJob(i, &runs)
	}
	res, err := Run(context.Background(), NewEngine(4), jobs)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 50 || runs.Load() != 50 {
		t.Fatalf("%d results, %d runs", len(res), runs.Load())
	}
	for i := range jobs {
		if got := res[fmt.Sprintf("job-%d", i)]; got != float64(i)*1.5 {
			t.Fatalf("job-%d = %v", i, got)
		}
	}
}

func TestDuplicateKeysComputeOnce(t *testing.T) {
	var runs atomic.Int64
	jobs := []Job[float64]{countedJob(7, &runs), countedJob(7, &runs), countedJob(7, &runs)}
	res, err := Run(context.Background(), NewEngine(4), jobs)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 1 || runs.Load() != 1 {
		t.Fatalf("%d results, %d runs", len(res), runs.Load())
	}
}

func TestMemoAcrossBatches(t *testing.T) {
	var runs atomic.Int64
	e := NewEngine(2)
	jobs := []Job[float64]{countedJob(1, &runs), countedJob(2, &runs)}
	if _, err := Run(context.Background(), e, jobs); err != nil {
		t.Fatal(err)
	}
	res, err := Run(context.Background(), e, jobs)
	if err != nil {
		t.Fatal(err)
	}
	if runs.Load() != 2 {
		t.Fatalf("recomputed memoised jobs: %d runs", runs.Load())
	}
	if res["job-2"] != 3.0 {
		t.Fatalf("memo result = %v", res["job-2"])
	}
}

func TestPanicBecomesError(t *testing.T) {
	jobs := []Job[float64]{
		{Key: "ok", Run: func(context.Context) (float64, error) { return 1, nil }},
		{Key: "boom", Run: func(context.Context) (float64, error) { panic("diverged") }},
	}
	_, err := Run(context.Background(), NewEngine(2), jobs)
	if err == nil {
		t.Fatal("panic did not surface as error")
	}
	if !strings.Contains(err.Error(), "boom") || !strings.Contains(err.Error(), "diverged") {
		t.Fatalf("error missing key/cause: %v", err)
	}
}

func TestErrorIsEarliestJob(t *testing.T) {
	errA := errors.New("a failed")
	errB := errors.New("b failed")
	jobs := []Job[int]{
		{Key: "a", Run: func(context.Context) (int, error) { return 0, errA }},
		{Key: "b", Run: func(context.Context) (int, error) { return 0, errB }},
	}
	// Serial execution makes the outcome order deterministic; the engine
	// must report the earliest-submitted failure regardless.
	_, err := Run(context.Background(), NewEngine(1), jobs)
	if !errors.Is(err, errA) {
		t.Fatalf("got %v, want %v", err, errA)
	}
}

func TestCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	started := make(chan struct{})
	var once sync.Once
	block := make(chan struct{})
	jobs := make([]Job[int], 20)
	for i := range jobs {
		jobs[i] = Job[int]{
			Key: fmt.Sprintf("slow-%d", i),
			Run: func(context.Context) (int, error) {
				once.Do(func() { close(started) })
				<-block
				return 0, nil
			},
		}
	}
	done := make(chan error)
	go func() {
		_, err := Run(ctx, NewEngine(2), jobs)
		done <- err
	}()
	<-started
	cancel()
	close(block) // release the in-flight jobs so workers can drain
	if err := <-done; !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// TestWorkerPoolConcurrency drives genuinely concurrent jobs through one
// shared engine (memo map, counters, observer) so `go test -race` can
// see into every engine code path. This is the CI race check for the
// worker pool.
func TestWorkerPoolConcurrency(t *testing.T) {
	e := NewEngine(4)
	c, err := NewCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	e.SetCache(c)
	var events atomic.Int64
	e.SetObserver(func(Event) { events.Add(1) })

	// A rendezvous barrier: the first four jobs must all be in flight at
	// once before any may finish, proving the pool really is parallel.
	var arrived atomic.Int64
	release := make(chan struct{})
	jobs := make([]Job[[]float64], 32)
	for i := range jobs {
		i := i
		jobs[i] = Job[[]float64]{
			Key: fmt.Sprintf("conc-%d", i),
			Run: func(context.Context) ([]float64, error) {
				if arrived.Add(1) == 4 {
					close(release)
				}
				<-release
				return []float64{float64(i), float64(i) / 3}, nil
			},
		}
	}
	res, err := Run(context.Background(), e, jobs)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 32 {
		t.Fatalf("%d results", len(res))
	}
	if events.Load() == 0 {
		t.Fatal("observer never fired")
	}

	// Second pass: everything is memoised; a fresh engine on the same
	// cache dir gets disk hits. Both must reproduce identical values.
	var hits atomic.Int64
	e2 := NewEngine(4)
	e2.SetCache(c)
	e2.SetObserver(func(ev Event) {
		if ev.Kind == JobDone && ev.Source == FromCache {
			hits.Add(1)
		}
	})
	res2, err := Run(context.Background(), e2, jobs)
	if err != nil {
		t.Fatal(err)
	}
	if hits.Load() != 32 {
		t.Fatalf("%d disk-cache hits, want 32", hits.Load())
	}
	for k, v := range res {
		v2 := res2[k]
		if len(v2) != len(v) || v2[0] != v[0] || v2[1] != v[1] {
			t.Fatalf("%s: cache round-trip changed result: %v vs %v", k, v, v2)
		}
	}
}

func TestEmptyKeyRejected(t *testing.T) {
	_, err := Run(context.Background(), NewEngine(1), []Job[int]{{Key: "", Run: func(context.Context) (int, error) { return 0, nil }}})
	if err == nil {
		t.Fatal("empty key accepted")
	}
}

func TestNilEngineAndNoJobs(t *testing.T) {
	res, err := Run(context.Background(), nil, []Job[int]{})
	if err != nil || len(res) != 0 {
		t.Fatalf("res=%v err=%v", res, err)
	}
}
