package sweep

import (
	"context"
	"encoding/json"
	"fmt"
	"reflect"
	"sync"
	"testing"
)

// memBackend is a minimal in-memory Backend for tests.
type memBackend struct {
	mu sync.Mutex
	m  map[string]json.RawMessage
}

func newMemBackend() *memBackend { return &memBackend{m: map[string]json.RawMessage{}} }

func (b *memBackend) Get(_ context.Context, key string) (json.RawMessage, bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	raw, ok := b.m[key]
	return raw, ok
}

func (b *memBackend) Put(_ context.Context, key string, raw json.RawMessage) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.m[key] = append(json.RawMessage(nil), raw...)
	return nil
}

func TestParseKeyRoundTrip(t *testing.T) {
	cases := []struct {
		prefix string
		params map[string]string
	}{
		{"v1|simjob", map[string]string{"wl": "art-mcf", "tech": "HILL-WIPC", "ep": "50"}},
		{"v1|solo", map[string]string{"app": "art", "cycles": "65536"}},
		{"v1|hill", map[string]string{"wl": "ammp-applu-art-mcf", "metric": "WIPC"}},
		{"v2|weird", map[string]string{"a|b": "c=d", "pct": "100%"}},
		{"plain", map[string]string{}},
	}
	for _, c := range cases {
		key := KeyFrom(c.prefix, c.params)
		prefix, params, err := ParseKey(key)
		if err != nil {
			t.Fatalf("ParseKey(%q): %v", key, err)
		}
		if prefix != c.prefix || !reflect.DeepEqual(params, c.params) {
			t.Fatalf("ParseKey(%q) = %q %v, want %q %v", key, prefix, params, c.prefix, c.params)
		}
	}
}

func TestParseKeyRejectsMalformed(t *testing.T) {
	for _, key := range []string{
		"v1|a=1|loose", // prefix segment after parameters
		"v1|a=1|a=2",   // duplicate parameter
		"v1|a=%zz",     // unknown escape
		"v1|a=%2",      // truncated escape
	} {
		if _, _, err := ParseKey(key); err == nil {
			t.Errorf("ParseKey(%q) accepted, want error", key)
		}
	}
}

// TestParseKeySprintfGrammar pins that keys assembled with fmt.Sprintf
// in the experiment package's "name=value" grammar parse identically to
// KeyFrom-built ones — the fabric executes both families by key.
func TestParseKeySprintfGrammar(t *testing.T) {
	key := fmt.Sprintf("v%d|hillwidth|wl=%s|es=%d|ep=%d", 1, "art-mcf", 65536, 40)
	prefix, params, err := ParseKey(key)
	if err != nil {
		t.Fatal(err)
	}
	if prefix != "v1|hillwidth" {
		t.Fatalf("prefix = %q", prefix)
	}
	want := map[string]string{"wl": "art-mcf", "es": "65536", "ep": "40"}
	if !reflect.DeepEqual(params, want) {
		t.Fatalf("params = %v, want %v", params, want)
	}
}

func TestSetBackendServesHits(t *testing.T) {
	b := newMemBackend()
	if err := b.Put(context.Background(), "k", json.RawMessage(`42`)); err != nil {
		t.Fatal(err)
	}
	e := NewEngine(1)
	e.SetBackend(b)
	ran := false
	res, err := Run(context.Background(), e, []Job[int]{{
		Key: "k",
		Run: func(context.Context) (int, error) { ran = true; return 7, nil },
	}})
	if err != nil {
		t.Fatal(err)
	}
	if ran {
		t.Fatal("job ran despite backend hit")
	}
	if res["k"] != 42 {
		t.Fatalf("result = %d, want 42 from backend", res["k"])
	}
}

func TestSetBackendReceivesStores(t *testing.T) {
	b := newMemBackend()
	e := NewEngine(1)
	e.SetBackend(b)
	if _, err := Run(context.Background(), e, []Job[int]{{
		Key: "k",
		Run: func(context.Context) (int, error) { return 9, nil },
	}}); err != nil {
		t.Fatal(err)
	}
	raw, ok := b.Get(context.Background(), "k")
	if !ok || string(raw) != "9" {
		t.Fatalf("backend entry = %q, %v; want \"9\", true", raw, ok)
	}
}

// remoteFunc adapts a function to the Remote interface.
type remoteFunc func(ctx context.Context, key string) (json.RawMessage, bool, error)

func (f remoteFunc) Exec(ctx context.Context, key string) (json.RawMessage, bool, error) {
	return f(ctx, key)
}

func TestRemoteHandlesJob(t *testing.T) {
	e := NewEngine(1)
	var sources []Source
	e.SetObserver(func(ev Event) {
		if ev.Kind == JobDone {
			sources = append(sources, ev.Source)
		}
	})
	e.SetRemote(remoteFunc(func(_ context.Context, key string) (json.RawMessage, bool, error) {
		if key != "k" {
			t.Errorf("remote asked for %q", key)
		}
		return json.RawMessage(`123`), true, nil
	}))
	localRan := false
	res, err := Run(context.Background(), e, []Job[int]{{
		Key: "k",
		Run: func(context.Context) (int, error) { localRan = true; return -1, nil },
	}})
	if err != nil {
		t.Fatal(err)
	}
	if localRan {
		t.Fatal("local Run executed despite remote handling the job")
	}
	if res["k"] != 123 {
		t.Fatalf("result = %d, want remote 123", res["k"])
	}
	if len(sources) != 1 || sources[0] != FromRemote {
		t.Fatalf("done sources = %v, want [remote]", sources)
	}
	// The remote bytes are memoised: a second batch hits the memo.
	if raw, src, ok := e.Lookup(context.Background(), "k"); !ok || src != FromMemo || string(raw) != "123" {
		t.Fatalf("Lookup after remote = %q %v %v", raw, src, ok)
	}
}

func TestRemoteDeclinedFallsBackLocal(t *testing.T) {
	e := NewEngine(1)
	e.SetRemote(remoteFunc(func(context.Context, string) (json.RawMessage, bool, error) {
		return nil, false, nil
	}))
	res, err := Run(context.Background(), e, []Job[int]{{
		Key: "k",
		Run: func(context.Context) (int, error) { return 5, nil },
	}})
	if err != nil || res["k"] != 5 {
		t.Fatalf("res = %v, err = %v; want local 5", res, err)
	}
}

func TestRemoteMalformedFallsBackLocal(t *testing.T) {
	e := NewEngine(1)
	e.SetRemote(remoteFunc(func(context.Context, string) (json.RawMessage, bool, error) {
		return json.RawMessage(`{not json`), true, nil
	}))
	res, err := Run(context.Background(), e, []Job[int]{{
		Key: "k",
		Run: func(context.Context) (int, error) { return 5, nil },
	}})
	if err != nil || res["k"] != 5 {
		t.Fatalf("res = %v, err = %v; want local 5 after malformed remote answer", res, err)
	}
}
