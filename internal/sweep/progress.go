package sweep

import (
	"fmt"
	"io"
	"time"
)

// EventKind labels a job state change.
type EventKind int

const (
	// JobQueued fires once per unique job when the batch is submitted.
	JobQueued EventKind = iota
	// JobStarted fires when a worker picks the job up.
	JobStarted
	// JobDone fires when the job's result is available, whether computed
	// or served from the memo or disk cache (see Source).
	JobDone
)

// Source says where a completed job's result came from.
type Source string

const (
	// FromRun marks a freshly computed result.
	FromRun Source = "run"
	// FromMemo marks an in-process memoisation hit.
	FromMemo Source = "memo"
	// FromCache marks a backend (disk cache or shared store) hit.
	FromCache Source = "cache"
	// FromRemote marks a result computed by another node through the
	// engine's Remote delegate (see internal/fabric).
	FromRemote Source = "remote"
)

// Event is one observability sample from the engine. Counter fields are
// a consistent snapshot of the current batch at emission time.
type Event struct {
	Kind EventKind
	// Key is the job key the event concerns.
	Key string
	// Source is meaningful for JobDone events.
	Source Source
	// Duration is the wall-clock compute time of a JobDone/FromRun event
	// (zero for hits).
	Duration time.Duration
	// Queued, Running, Done, and Total describe the batch; CacheHits
	// counts Done jobs served from the memo or disk cache.
	Queued, Running, Done, Total, CacheHits int
}

// Reporter renders engine events as one line per completed job, suitable
// for stderr. Install with Engine.SetObserver(r.Observe). The engine
// serialises event delivery, so Observe needs no locking of its own.
type Reporter struct {
	w io.Writer
}

// NewReporter returns a Reporter writing to w.
func NewReporter(w io.Writer) *Reporter { return &Reporter{w: w} }

// Observe implements the engine's observer hook.
func (r *Reporter) Observe(ev Event) {
	if ev.Kind != JobDone {
		return
	}
	switch ev.Source {
	case FromRun:
		fmt.Fprintf(r.w, "[sweep] %*d/%d done, %d running, %d cached | %s (%.2fs)\n",
			digits(ev.Total), ev.Done, ev.Total, ev.Running, ev.CacheHits,
			ev.Key, ev.Duration.Seconds())
	default:
		fmt.Fprintf(r.w, "[sweep] %*d/%d done, %d running, %d cached | %s (%s hit)\n",
			digits(ev.Total), ev.Done, ev.Total, ev.Running, ev.CacheHits,
			ev.Key, ev.Source)
	}
}

// digits returns the print width of n, for aligned counters.
func digits(n int) int {
	d := 1
	for n >= 10 {
		n /= 10
		d++
	}
	return d
}
