package sweep

import (
	"context"
	"encoding/json"
)

// Backend is a pluggable result store behind the engine's in-process
// memo. The on-disk Cache is the canonical implementation; a fabric
// node substitutes an HTTP content-addressed store client (see
// internal/fabric) so every node in a cluster shares one warm store.
//
// Implementations must be safe for concurrent use. Get reports a miss
// for any entry it cannot serve verbatim (absent, corrupt, wrong
// schema); Put must be atomic — a concurrent reader sees either the
// whole entry or none of it — and idempotent, because the determinism
// contract makes every write of a key carry identical bytes.
//
// ctx carries cancellation and the active trace span to networked
// implementations (the fabric store client propagates it as a
// traceparent header); purely local backends may ignore it.
type Backend interface {
	// Get returns the stored raw JSON result for key, or ok=false on
	// any miss.
	Get(ctx context.Context, key string) (json.RawMessage, bool)
	// Put stores the raw JSON result for key. Failures are reported but
	// never treated as job failures by the engine.
	Put(ctx context.Context, key string, result json.RawMessage) error
}

// Remote lets the engine delegate a job's computation to another node
// by key alone (the key encodes everything the result depends on — see
// the package determinism contract). Exec returns handled=false to
// decline, in which case the engine computes the job locally; a
// non-nil error fails the job (reserve it for context cancellation —
// a remote-side failure should decline instead, keeping local compute
// as the fallback).
type Remote interface {
	Exec(ctx context.Context, key string) (raw json.RawMessage, handled bool, err error)
}

// SetBackend attaches a result store backend (nil detaches it). Like
// SetCache it must be called before the first Run.
func (e *Engine) SetBackend(b Backend) { e.cache = b }

// Lookup consults the in-process memo, then the backend, returning the
// stored raw JSON for key. A backend hit is promoted into the memo.
// Exported for fabric workers, which answer exec requests with the
// exact bytes the engine stored.
func (e *Engine) Lookup(ctx context.Context, key string) (json.RawMessage, Source, bool) {
	return e.lookup(ctx, key)
}

// SetRemote installs a remote execution delegate consulted before each
// local job run (nil removes it). Must be called before the first Run.
func (e *Engine) SetRemote(r Remote) { e.remote = r }
