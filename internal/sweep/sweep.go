// Package sweep runs batches of independent, deterministic simulation
// jobs on a worker pool, with optional content-addressed disk caching of
// results.
//
// The experiment suite (internal/experiment) is a schedulable sweep:
// every figure and table decomposes into dozens of fully independent
// cycle-level simulations, each owning its own pipeline.Machine and
// seeded rng state. The engine exploits that independence three ways:
//
//   - parallelism: jobs run on a bounded worker pool (default
//     runtime.GOMAXPROCS(0)) with per-job panic recovery and
//     context.Context cancellation;
//   - in-process memoisation: a job key identifies its result uniquely,
//     so shared sub-results (the stand-alone Singles runs, baseline runs
//     reused by several figures) are computed once per process;
//   - on-disk caching: an optional Cache persists results across
//     invocations, content-addressed by a hash of the job key and a
//     schema-version constant.
//
// Determinism contract: a Job's Run must be a pure function of its Key —
// two jobs with equal keys must produce identical results regardless of
// execution order, worker count, or which process computes them. Under
// that contract the engine guarantees byte-identical experiment output
// whether jobs run serially, in parallel, or out of a cache: results are
// returned keyed by job key and callers assemble output in their own
// deterministic order. Cached results round-trip through JSON, which is
// exact for float64 (encoding/json emits the shortest representation
// that round-trips) and for integer and string fields.
package sweep

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"time"

	"smthill/internal/obs"
)

// Job is one independent unit of simulation work producing a result of
// type R. Key must uniquely determine the result (see the package
// determinism contract): it should encode the workload, technique, and
// every configuration field the run depends on. R must marshal to JSON
// losslessly for memoisation and disk caching to preserve byte-identical
// output.
type Job[R any] struct {
	// Key is the stable identity of the job, used for deduplication,
	// memoisation, and cache addressing.
	Key string
	// Run computes the result. It must not depend on shared mutable
	// state; ctx is cancelled when the batch is aborted.
	Run func(ctx context.Context) (R, error)
}

// Engine executes job batches. The zero value is not usable; construct
// with NewEngine. Configure (SetCache, SetObserver) before the first Run
// call; an Engine may then be shared by concurrent Run calls and reused
// across batches, accumulating its in-process memo.
type Engine struct {
	workers   int
	cache     Backend
	remote    Remote
	observers []func(Event)

	mu   sync.Mutex
	memo map[string][]byte // guarded by mu; job key -> JSON result

	// eventMu serialises observer callbacks engine-wide, so an observer
	// needs no locking even when Run calls overlap.
	eventMu sync.Mutex
}

// NewEngine returns an engine running at most workers jobs concurrently;
// workers <= 0 selects runtime.GOMAXPROCS(0).
func NewEngine(workers int) *Engine {
	return &Engine{workers: workers, memo: map[string][]byte{}}
}

// Workers returns the effective worker-pool size.
func (e *Engine) Workers() int {
	if e.workers <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return e.workers
}

// SetCache attaches an on-disk result cache (nil detaches it). It is
// shorthand for SetBackend with the canonical disk implementation.
func (e *Engine) SetCache(c *Cache) {
	if c == nil {
		e.cache = nil // avoid a typed-nil Backend
		return
	}
	e.cache = c
}

// SetObserver installs fn as the only progress hook, replacing any
// observers added so far (nil removes them all). Events are delivered
// serially (never concurrently), but from worker goroutines.
func (e *Engine) SetObserver(fn func(Event)) {
	if fn == nil {
		e.observers = nil
		return
	}
	e.observers = []func(Event){fn}
}

// AddObserver subscribes an additional progress hook; every installed
// observer sees every event, in subscription order. Like SetObserver and
// SetCache it must be called before the first Run — the observer list is
// read without locking by running batches.
func (e *Engine) AddObserver(fn func(Event)) {
	if fn != nil {
		e.observers = append(e.observers, fn)
	}
}

// emit fans an event out to every observer. Callers hold eventMu.
func (e *Engine) emit(ev Event) {
	for _, fn := range e.observers {
		fn(ev)
	}
}

// lookup consults the in-process memo, then the disk cache. A disk hit
// is promoted into the memo.
func (e *Engine) lookup(ctx context.Context, key string) ([]byte, Source, bool) {
	e.mu.Lock()
	raw, ok := e.memo[key]
	e.mu.Unlock()
	if ok {
		return raw, FromMemo, true
	}
	if e.cache != nil {
		if raw, ok := e.cache.Get(ctx, key); ok {
			e.remember(key, raw)
			return raw, FromCache, true
		}
	}
	return nil, FromRun, false
}

func (e *Engine) remember(key string, raw []byte) {
	e.mu.Lock()
	e.memo[key] = raw
	e.mu.Unlock()
}

// store records a freshly computed result in the memo and, best-effort,
// the disk cache. Marshal failures (e.g. NaN scores) skip caching: the
// caller still gets the in-memory value, only reuse is lost.
func (e *Engine) store(ctx context.Context, key string, val any) {
	raw, err := json.Marshal(val)
	if err != nil {
		return
	}
	e.remember(key, raw)
	if e.cache != nil {
		_ = e.cache.Put(ctx, key, raw) // cache write failure is not a job failure
	}
}

// batch tracks the counters reported in Events for one Run call. mu is
// the owning engine's eventMu, shared across batches.
type batch struct {
	mu        *sync.Mutex
	emit      func(Event)
	total     int // immutable after newBatch
	running   int // guarded by mu
	done      int // guarded by mu
	cacheHits int // guarded by mu
}

func (b *batch) event(kind EventKind, key string, src Source, dur time.Duration) {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch kind {
	case JobStarted:
		b.running++
	case JobDone:
		b.done++
		if src == FromRun || src == FromRemote {
			b.running-- // the job occupied a worker slot either way
		} else {
			b.cacheHits++
		}
	}
	if b.emit == nil {
		return
	}
	b.emit(Event{
		Kind: kind, Key: key, Source: src, Duration: dur,
		Queued: b.total - b.done - b.running, Running: b.running,
		Done: b.done, Total: b.total, CacheHits: b.cacheHits,
	})
}

// Run executes the batch on e's worker pool and returns the results
// keyed by job key. Jobs sharing a key are computed once (the first
// occurrence wins). On the first job error — including a recovered
// panic — the remaining jobs are cancelled and the error of the
// earliest-submitted failing job is returned, so the failure surfaced is
// deterministic. When ctx is cancelled (or times out) the batch stops
// promptly — workers finish their current job and drain the rest without
// running them — and Run returns the results of every job completed
// before the cancellation together with the context's error, never
// misreporting the cancellation as a job failure.
func Run[R any](ctx context.Context, e *Engine, jobs []Job[R]) (map[string]R, error) {
	if e == nil {
		e = NewEngine(0)
	}
	uniq := make([]Job[R], 0, len(jobs))
	seen := make(map[string]bool, len(jobs))
	for _, j := range jobs {
		if j.Key == "" {
			return nil, fmt.Errorf("sweep: job with empty key")
		}
		if !seen[j.Key] {
			seen[j.Key] = true
			uniq = append(uniq, j)
		}
	}

	var emit func(Event)
	if len(e.observers) > 0 {
		emit = e.emit
	}
	st := &batch{mu: &e.eventMu, emit: emit, total: len(uniq)}
	results := make(map[string]R, len(uniq))

	// Resolve memo and cache hits up front so workers only see jobs that
	// must execute. A hit that fails to unmarshal (stale or corrupt
	// entry) falls through to recomputation.
	var pending []Job[R]
	for _, j := range uniq {
		st.event(JobQueued, j.Key, FromRun, 0)
		if raw, src, ok := e.lookup(ctx, j.Key); ok {
			var r R
			if err := json.Unmarshal(raw, &r); err == nil {
				results[j.Key] = r
				st.event(JobDone, j.Key, src, 0)
				continue
			}
		}
		pending = append(pending, j)
	}
	if len(pending) == 0 {
		return results, ctx.Err()
	}

	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	type indexed struct {
		idx int
		job Job[R]
	}
	type outcome struct {
		idx int
		key string
		val R
		err error
	}
	in := make(chan indexed)
	out := make(chan outcome)

	var wg sync.WaitGroup
	for w := 0; w < min(e.Workers(), len(pending)); w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for ij := range in {
				if err := ctx.Err(); err != nil {
					out <- outcome{idx: ij.idx, key: ij.job.Key, err: err}
					continue
				}
				st.event(JobStarted, ij.job.Key, FromRun, 0)
				start := time.Now()
				// One span per executed job: the "compute" segment of a
				// distributed trace. With no span in ctx this is a nil
				// no-op (see internal/obs).
				sctx, span := obs.Start(ctx, "sweep.exec", obs.KindInternal)
				span.SetAttr("key", ij.job.Key)
				val, src, err := execute(sctx, e, ij.job)
				span.SetAttr("source", string(src))
				span.End(err)
				st.event(JobDone, ij.job.Key, src, time.Since(start))
				out <- outcome{idx: ij.idx, key: ij.job.Key, val: val, err: err}
			}
		}()
	}
	go func() {
		defer close(in)
		for i, j := range pending {
			select {
			case in <- indexed{i, j}:
			case <-ctx.Done():
				return
			}
		}
	}()
	go func() {
		wg.Wait()
		close(out)
	}()

	// Report the earliest-submitted genuine failure. Once a job fails,
	// the remaining jobs drain with context.Canceled; those must not
	// mask the root cause.
	firstErrIdx := -1
	var firstErr, cancelErr error
	for oc := range out {
		if oc.err != nil {
			if errors.Is(oc.err, context.Canceled) || errors.Is(oc.err, context.DeadlineExceeded) {
				cancelErr = oc.err
			} else if firstErrIdx < 0 || oc.idx < firstErrIdx {
				firstErrIdx, firstErr = oc.idx, oc.err
			}
			cancel()
			continue
		}
		results[oc.key] = oc.val
	}
	if firstErr != nil {
		return nil, firstErr
	}
	if cancelErr != nil {
		// Cancellation is not a job failure: completed jobs' results are
		// returned alongside the context error so callers can keep partial
		// work (and cached entries already written stay valid).
		return results, cancelErr
	}
	return results, ctx.Err()
}

// execute computes one job, preferring the engine's remote delegate
// when one is installed. A remote result is adopted only if it
// unmarshals as R; its exact bytes are remembered (and offered to the
// backend) so a later local lookup serves what the remote computed,
// byte for byte. A declined or malformed remote answer falls back to
// the local run — distribution is an optimisation, never a correctness
// dependency.
func execute[R any](ctx context.Context, e *Engine, j Job[R]) (R, Source, error) {
	if e.remote != nil {
		raw, handled, err := e.remote.Exec(ctx, j.Key)
		if err != nil {
			var zero R
			return zero, FromRemote, err
		}
		if handled {
			var val R
			if uerr := json.Unmarshal(raw, &val); uerr == nil {
				e.remember(j.Key, raw)
				if e.cache != nil {
					_ = e.cache.Put(ctx, j.Key, raw)
				}
				return val, FromRemote, nil
			}
		}
	}
	val, err := runSafe(ctx, j)
	if err == nil {
		e.store(ctx, j.Key, val)
	}
	return val, FromRun, err
}

// runSafe invokes the job, converting a panic into an error carrying the
// job key and stack so one diverging simulation cannot take down the
// whole sweep.
func runSafe[R any](ctx context.Context, j Job[R]) (val R, err error) {
	defer func() {
		if p := recover(); p != nil {
			err = fmt.Errorf("sweep: job %s panicked: %v\n%s", j.Key, p, debug.Stack())
		}
	}()
	return j.Run(ctx)
}
