package sweep

import (
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestCacheRoundTrip(t *testing.T) {
	c, err := NewCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := c.Get("k1"); ok {
		t.Fatal("hit on empty cache")
	}
	want := json.RawMessage(`[1.5,0.3333333333333333]`)
	if err := c.Put("k1", want); err != nil {
		t.Fatal(err)
	}
	got, ok := c.Get("k1")
	if !ok || string(got) != string(want) {
		t.Fatalf("got %s ok=%v", got, ok)
	}
	// Distinct keys address distinct files.
	if _, ok := c.Get("k2"); ok {
		t.Fatal("k2 aliased k1")
	}
}

func TestCacheFloatExactness(t *testing.T) {
	c, err := NewCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	// Awkward values must survive the JSON round-trip bit-exactly — the
	// engine's byte-identical-output guarantee depends on it.
	vals := []float64{1.0 / 3.0, 0.1, 2.0 / 7.0, 1e-17, 123456.789012345678}
	raw, err := json.Marshal(vals)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Put("floats", raw); err != nil {
		t.Fatal(err)
	}
	got, ok := c.Get("floats")
	if !ok {
		t.Fatal("miss")
	}
	var back []float64
	if err := json.Unmarshal(got, &back); err != nil {
		t.Fatal(err)
	}
	for i, v := range vals {
		if back[i] != v {
			t.Fatalf("value %d changed: %v -> %v", i, v, back[i])
		}
	}
}

// corruptOnly rewrites every cache file under dir with the given bytes.
func corruptAll(t *testing.T, dir string, content []byte) int {
	t.Helper()
	n := 0
	err := filepath.Walk(dir, func(path string, info os.FileInfo, err error) error {
		if err != nil {
			return err
		}
		if !info.IsDir() && strings.HasSuffix(path, ".json") {
			n++
			return os.WriteFile(path, content, 0o644)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return n
}

func TestCacheRejectsCorruptAndMismatchedEntries(t *testing.T) {
	dir := t.TempDir()
	c, err := NewCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Put("k", json.RawMessage(`1`)); err != nil {
		t.Fatal(err)
	}

	// Corrupt JSON -> miss.
	if n := corruptAll(t, dir, []byte("{not json")); n != 1 {
		t.Fatalf("%d files", n)
	}
	if _, ok := c.Get("k"); ok {
		t.Fatal("corrupt entry served")
	}

	// Wrong schema version -> miss.
	bad, _ := json.Marshal(entry{Schema: SchemaVersion + 1, Key: "k", Result: json.RawMessage(`1`)})
	corruptAll(t, dir, bad)
	if _, ok := c.Get("k"); ok {
		t.Fatal("wrong-schema entry served")
	}

	// Wrong key (as after a collision or addressing change) -> miss.
	bad, _ = json.Marshal(entry{Schema: SchemaVersion, Key: "other", Result: json.RawMessage(`1`)})
	corruptAll(t, dir, bad)
	if _, ok := c.Get("k"); ok {
		t.Fatal("wrong-key entry served")
	}
}

func TestEngineRecomputesCorruptEntry(t *testing.T) {
	dir := t.TempDir()
	c, err := NewCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	// A stale entry whose payload no longer unmarshals as the job's
	// result type must be recomputed, not served.
	if err := c.Put("job", json.RawMessage(`"not a number"`)); err != nil {
		t.Fatal(err)
	}
	e := NewEngine(1)
	e.SetCache(c)
	ran := false
	res, err := Run(context.Background(), e, []Job[float64]{{
		Key: "job",
		Run: func(context.Context) (float64, error) { ran = true; return 4.5, nil },
	}})
	if err != nil {
		t.Fatal(err)
	}
	if !ran || res["job"] != 4.5 {
		t.Fatalf("ran=%v res=%v", ran, res)
	}
	// The recomputation overwrote the stale entry.
	got, ok := c.Get("job")
	if !ok || string(got) != "4.5" {
		t.Fatalf("cache after recompute: %s ok=%v", got, ok)
	}
}
