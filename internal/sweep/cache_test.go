package sweep

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestCacheRoundTrip(t *testing.T) {
	c, err := NewCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := c.Get(context.Background(), "k1"); ok {
		t.Fatal("hit on empty cache")
	}
	want := json.RawMessage(`[1.5,0.3333333333333333]`)
	if err := c.Put(context.Background(), "k1", want); err != nil {
		t.Fatal(err)
	}
	got, ok := c.Get(context.Background(), "k1")
	if !ok || string(got) != string(want) {
		t.Fatalf("got %s ok=%v", got, ok)
	}
	// Distinct keys address distinct files.
	if _, ok := c.Get(context.Background(), "k2"); ok {
		t.Fatal("k2 aliased k1")
	}
}

func TestCacheFloatExactness(t *testing.T) {
	c, err := NewCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	// Awkward values must survive the JSON round-trip bit-exactly — the
	// engine's byte-identical-output guarantee depends on it.
	vals := []float64{1.0 / 3.0, 0.1, 2.0 / 7.0, 1e-17, 123456.789012345678}
	raw, err := json.Marshal(vals)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Put(context.Background(), "floats", raw); err != nil {
		t.Fatal(err)
	}
	got, ok := c.Get(context.Background(), "floats")
	if !ok {
		t.Fatal("miss")
	}
	var back []float64
	if err := json.Unmarshal(got, &back); err != nil {
		t.Fatal(err)
	}
	for i, v := range vals {
		if back[i] != v {
			t.Fatalf("value %d changed: %v -> %v", i, v, back[i])
		}
	}
}

// corruptOnly rewrites every cache file under dir with the given bytes.
func corruptAll(t *testing.T, dir string, content []byte) int {
	t.Helper()
	n := 0
	err := filepath.Walk(dir, func(path string, info os.FileInfo, err error) error {
		if err != nil {
			return err
		}
		if !info.IsDir() && strings.HasSuffix(path, ".json") {
			n++
			return os.WriteFile(path, content, 0o644)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return n
}

func TestCacheRejectsCorruptAndMismatchedEntries(t *testing.T) {
	dir := t.TempDir()
	c, err := NewCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Put(context.Background(), "k", json.RawMessage(`1`)); err != nil {
		t.Fatal(err)
	}

	// Corrupt JSON -> miss.
	if n := corruptAll(t, dir, []byte("{not json")); n != 1 {
		t.Fatalf("%d files", n)
	}
	if _, ok := c.Get(context.Background(), "k"); ok {
		t.Fatal("corrupt entry served")
	}

	// Wrong schema version -> miss.
	bad, _ := json.Marshal(entry{Schema: SchemaVersion + 1, Key: "k", Result: json.RawMessage(`1`)})
	corruptAll(t, dir, bad)
	if _, ok := c.Get(context.Background(), "k"); ok {
		t.Fatal("wrong-schema entry served")
	}

	// Wrong key (as after a collision or addressing change) -> miss.
	bad, _ = json.Marshal(entry{Schema: SchemaVersion, Key: "other", Result: json.RawMessage(`1`)})
	corruptAll(t, dir, bad)
	if _, ok := c.Get(context.Background(), "k"); ok {
		t.Fatal("wrong-key entry served")
	}
}

// TestCacheTruncatedEntryLogsAndRecovers simulates the classic failure
// of an interrupted cache write that bypassed the atomic rename (or disk
// damage after it): the entry file exists but holds half a JSON object.
// The read must degrade to a logged miss and the engine must recompute
// and repair the entry in place.
func TestCacheTruncatedEntryLogsAndRecovers(t *testing.T) {
	dir := t.TempDir()
	c, err := NewCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	var logs []string
	c.SetLogf(func(format string, args ...any) {
		logs = append(logs, fmt.Sprintf(format, args...))
	})
	if err := c.Put(context.Background(), "k", json.RawMessage(`[1,2,3]`)); err != nil {
		t.Fatal(err)
	}

	// Truncate the entry mid-file.
	var full []byte
	err = filepath.Walk(dir, func(path string, info os.FileInfo, err error) error {
		if err == nil && !info.IsDir() && strings.HasSuffix(path, ".json") {
			full, err = os.ReadFile(path)
			if err != nil {
				return err
			}
			return os.WriteFile(path, full[:len(full)/2], 0o644)
		}
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(full) == 0 {
		t.Fatal("no cache entry written")
	}

	if _, ok := c.Get(context.Background(), "k"); ok {
		t.Fatal("truncated entry served")
	}
	if len(logs) != 1 || !strings.Contains(logs[0], "corrupt entry") {
		t.Fatalf("corruption not logged: %q", logs)
	}

	// The engine path: a batch over the damaged key recomputes and
	// repairs the entry.
	e := NewEngine(1)
	e.SetCache(c)
	res, err := Run(context.Background(), e, []Job[[]int]{{
		Key: "k",
		Run: func(context.Context) ([]int, error) { return []int{1, 2, 3}, nil },
	}})
	if err != nil {
		t.Fatal(err)
	}
	if len(res["k"]) != 3 {
		t.Fatalf("recompute result = %v", res)
	}
	// Both reads of the damaged entry (ours and the engine's lookup)
	// logged; the repaired entry reads silently.
	repaired := len(logs)
	if got, ok := c.Get(context.Background(), "k"); !ok || string(got) != "[1,2,3]" {
		t.Fatalf("entry not repaired: %s ok=%v", got, ok)
	}
	if len(logs) != repaired {
		t.Fatalf("healthy reread logged spuriously: %q", logs[repaired:])
	}
}

// TestCacheKeyMismatchLogged covers the key-mismatch miss (hash
// collision or stale addressing): recoverable, but logged.
func TestCacheKeyMismatchLogged(t *testing.T) {
	dir := t.TempDir()
	c, err := NewCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	var logs []string
	c.SetLogf(func(format string, args ...any) {
		logs = append(logs, fmt.Sprintf(format, args...))
	})
	if err := c.Put(context.Background(), "k", json.RawMessage(`1`)); err != nil {
		t.Fatal(err)
	}
	bad, _ := json.Marshal(entry{Schema: SchemaVersion, Key: "other", Result: json.RawMessage(`1`)})
	corruptAll(t, dir, bad)
	if _, ok := c.Get(context.Background(), "k"); ok {
		t.Fatal("wrong-key entry served")
	}
	if len(logs) != 1 || !strings.Contains(logs[0], `"other"`) {
		t.Fatalf("mismatch not logged: %q", logs)
	}
	// A schema-version miss is expected churn (after upgrades), never
	// logged as damage.
	logs = nil
	stale, _ := json.Marshal(entry{Schema: SchemaVersion + 1, Key: "k", Result: json.RawMessage(`1`)})
	corruptAll(t, dir, stale)
	if _, ok := c.Get(context.Background(), "k"); ok {
		t.Fatal("wrong-schema entry served")
	}
	if len(logs) != 0 {
		t.Fatalf("schema miss logged as damage: %q", logs)
	}
}

func TestEngineRecomputesCorruptEntry(t *testing.T) {
	dir := t.TempDir()
	c, err := NewCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	// A stale entry whose payload no longer unmarshals as the job's
	// result type must be recomputed, not served.
	if err := c.Put(context.Background(), "job", json.RawMessage(`"not a number"`)); err != nil {
		t.Fatal(err)
	}
	e := NewEngine(1)
	e.SetCache(c)
	ran := false
	res, err := Run(context.Background(), e, []Job[float64]{{
		Key: "job",
		Run: func(context.Context) (float64, error) { ran = true; return 4.5, nil },
	}})
	if err != nil {
		t.Fatal(err)
	}
	if !ran || res["job"] != 4.5 {
		t.Fatalf("ran=%v res=%v", ran, res)
	}
	// The recomputation overwrote the stale entry.
	got, ok := c.Get(context.Background(), "job")
	if !ok || string(got) != "4.5" {
		t.Fatalf("cache after recompute: %s ok=%v", got, ok)
	}
}
