package sweep

import (
	"context"
	"sync/atomic"
	"testing"
	"time"

	"smthill/internal/telemetry"
)

func TestMeterObserveAndSummarize(t *testing.T) {
	var sink telemetry.MemorySink
	m := NewMeter(&sink, 4)

	m.Observe(Event{Kind: JobStarted, Key: "x"}) // non-terminal: ignored
	m.Observe(Event{Kind: JobDone, Key: "a", Source: FromRun, Duration: 100 * time.Millisecond})
	m.Observe(Event{Kind: JobDone, Key: "b", Source: FromMemo})
	m.Observe(Event{Kind: JobDone, Key: "c", Source: FromCache})
	sum := m.Summarize()

	evs := sink.Events()
	if len(evs) != 4 {
		t.Fatalf("emitted %d events, want 3 jobs + 1 summary", len(evs))
	}
	first := evs[0]
	if first.Type != telemetry.TypeJob || first.Kind != "run" || first.Key != "a" || first.Seconds != 0.1 {
		t.Fatalf("job event = %s", first)
	}
	if evs[1].Kind != "memo" || evs[2].Kind != "cache" {
		t.Fatalf("hit kinds = %q,%q", evs[1].Kind, evs[2].Kind)
	}
	if sum.Type != telemetry.TypeSummary || sum.Jobs != 3 || sum.CacheHits != 2 || sum.Workers != 4 {
		t.Fatalf("summary = %s", sum)
	}
	if last := evs[3]; last.Jobs != sum.Jobs || last.CacheHits != sum.CacheHits {
		t.Fatalf("emitted summary %s disagrees with returned %s", last, sum)
	}
}

// TestMeterOnEngine runs a real batch twice: the second pass is all memo
// hits, and the meter must see every completion either way.
func TestMeterOnEngine(t *testing.T) {
	var sink telemetry.MemorySink
	e := NewEngine(2)
	m := NewMeter(&sink, e.Workers())
	e.SetObserver(m.Observe)

	var runs atomic.Int64
	jobs := []Job[float64]{countedJob(1, &runs), countedJob(2, &runs)}
	for pass := 0; pass < 2; pass++ {
		if _, err := Run(context.Background(), e, jobs); err != nil {
			t.Fatal(err)
		}
	}
	sum := m.Summarize()
	if sum.Jobs != 4 || sum.CacheHits != 2 {
		t.Fatalf("summary = %s, want 4 jobs with 2 memo hits", sum)
	}
	if runs.Load() != 2 {
		t.Fatalf("jobs computed %d times", runs.Load())
	}
}
