package sweep

import (
	"sync"
	"time"

	"smthill/internal/telemetry"
)

// Meter bridges the engine's observer hook onto a telemetry sink: every
// completed job becomes a telemetry job event (key, result source, wall
// time), and Summarize reports batch-level totals — job count, cache
// hits, busy and wall seconds, and worker utilisation. Install with
// Engine.SetObserver(m.Observe); it composes with other observers by
// plain function chaining.
type Meter struct {
	sink    telemetry.Sink
	workers int

	// mu guards the accumulators: the engine serialises Observe calls,
	// but Summarize is called from the coordinating goroutine.
	mu        sync.Mutex
	started   time.Time     // guarded by mu
	last      time.Time     // guarded by mu
	jobs      int           // guarded by mu
	cacheHits int           // guarded by mu
	busy      time.Duration // guarded by mu
}

// NewMeter returns a meter emitting to sink for an engine running
// workers parallel jobs (used for the utilisation denominator).
func NewMeter(sink telemetry.Sink, workers int) *Meter {
	if workers < 1 {
		workers = 1
	}
	return &Meter{sink: sink, workers: workers}
}

// Observe implements the engine's observer hook.
func (m *Meter) Observe(ev Event) {
	m.mu.Lock()
	now := time.Now()
	if m.started.IsZero() {
		m.started = now // first event of any kind opens the wall clock
	}
	if ev.Kind != JobDone {
		m.mu.Unlock()
		return
	}
	m.last = now
	m.jobs++
	if ev.Source != FromRun {
		m.cacheHits++
	}
	m.busy += ev.Duration
	m.mu.Unlock()

	m.sink.Emit(telemetry.Event{
		Type:    telemetry.TypeJob,
		Epoch:   telemetry.None,
		Kind:    string(ev.Source),
		Thread:  telemetry.None,
		Key:     ev.Key,
		Seconds: ev.Duration.Seconds(),
	})
}

// Summarize emits one summary event covering everything observed so far
// and returns it. Utilisation is busy-time over wall-time times workers:
// 1.0 means every worker computed for the whole batch, lower values
// expose pool idling (cache hits, tail latency, batch skew).
func (m *Meter) Summarize() telemetry.Event {
	m.mu.Lock()
	defer m.mu.Unlock()
	wall := 0.0
	if !m.started.IsZero() {
		wall = m.last.Sub(m.started).Seconds()
	}
	util := 0.0
	if wall > 0 {
		util = m.busy.Seconds() / (wall * float64(m.workers))
	}
	ev := telemetry.Event{
		Type:        telemetry.TypeSummary,
		Epoch:       telemetry.None,
		Thread:      telemetry.None,
		Jobs:        m.jobs,
		CacheHits:   m.cacheHits,
		Workers:     m.workers,
		Seconds:     wall,
		Utilization: util,
	}
	m.sink.Emit(ev)
	return ev
}
