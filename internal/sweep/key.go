package sweep

import (
	"fmt"
	"sort"
	"strings"
)

// KeyFrom builds a canonical job key from a prefix and a parameter map.
// Parameters are emitted as "|name=value" in sorted name order, so the
// key is independent of map insertion (and therefore iteration) order —
// the property the content-addressed result cache depends on. The
// separator characters '%', '|', and '=' are percent-escaped in names
// and values, so distinct parameter maps can never collide on one key.
func KeyFrom(prefix string, params map[string]string) string {
	names := make([]string, 0, len(params))
	for n := range params {
		names = append(names, n)
	}
	sort.Strings(names)
	var b strings.Builder
	b.WriteString(prefix)
	for _, n := range names {
		b.WriteByte('|')
		b.WriteString(escapeKeyPart(n))
		b.WriteByte('=')
		b.WriteString(escapeKeyPart(params[n]))
	}
	return b.String()
}

// ParseKey inverts KeyFrom: it splits a canonical job key into its
// prefix (every leading '|'-separated segment that is not a
// "name=value" pair) and its parameter map. Keys are the wire currency
// of the distributed fabric — a worker reconstructs the job to run
// from its key alone — so the grammar must round-trip:
// ParseKey(KeyFrom(p, m)) == (p, m) for every escapable p and m.
func ParseKey(key string) (prefix string, params map[string]string, err error) {
	segs := strings.Split(key, "|")
	params = map[string]string{}
	inParams := false
	var pre []string
	for _, seg := range segs {
		eq := strings.IndexByte(seg, '=')
		if eq < 0 {
			if inParams {
				return "", nil, fmt.Errorf("sweep: malformed key %q: prefix segment %q after parameters", key, seg)
			}
			pre = append(pre, seg)
			continue
		}
		inParams = true
		name, uerr := unescapeKeyPart(seg[:eq])
		if uerr != nil {
			return "", nil, fmt.Errorf("sweep: malformed key %q: %v", key, uerr)
		}
		val, uerr := unescapeKeyPart(seg[eq+1:])
		if uerr != nil {
			return "", nil, fmt.Errorf("sweep: malformed key %q: %v", key, uerr)
		}
		if _, dup := params[name]; dup {
			return "", nil, fmt.Errorf("sweep: malformed key %q: duplicate parameter %q", key, name)
		}
		params[name] = val
	}
	return strings.Join(pre, "|"), params, nil
}

// escapeKeyPart makes a string safe to embed between KeyFrom's '|' and
// '=' separators. '%' must be escaped first so escapes stay reversible.
func escapeKeyPart(s string) string {
	if !strings.ContainsAny(s, "%|=") {
		return s
	}
	s = strings.ReplaceAll(s, "%", "%25")
	s = strings.ReplaceAll(s, "|", "%7C")
	return strings.ReplaceAll(s, "=", "%3D")
}

// unescapeKeyPart reverses escapeKeyPart, rejecting escapes it never
// emits so a forged key cannot alias a legitimate one.
func unescapeKeyPart(s string) (string, error) {
	if !strings.ContainsRune(s, '%') {
		return s, nil
	}
	var b strings.Builder
	for i := 0; i < len(s); i++ {
		if s[i] != '%' {
			b.WriteByte(s[i])
			continue
		}
		if i+2 >= len(s) {
			return "", fmt.Errorf("truncated escape in %q", s)
		}
		switch s[i+1 : i+3] {
		case "25":
			b.WriteByte('%')
		case "7C":
			b.WriteByte('|')
		case "3D":
			b.WriteByte('=')
		default:
			return "", fmt.Errorf("unknown escape %%%s in %q", s[i+1:i+3], s)
		}
		i += 2
	}
	return b.String(), nil
}
