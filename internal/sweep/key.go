package sweep

import (
	"sort"
	"strings"
)

// KeyFrom builds a canonical job key from a prefix and a parameter map.
// Parameters are emitted as "|name=value" in sorted name order, so the
// key is independent of map insertion (and therefore iteration) order —
// the property the content-addressed result cache depends on. The
// separator characters '%', '|', and '=' are percent-escaped in names
// and values, so distinct parameter maps can never collide on one key.
func KeyFrom(prefix string, params map[string]string) string {
	names := make([]string, 0, len(params))
	for n := range params {
		names = append(names, n)
	}
	sort.Strings(names)
	var b strings.Builder
	b.WriteString(prefix)
	for _, n := range names {
		b.WriteByte('|')
		b.WriteString(escapeKeyPart(n))
		b.WriteByte('=')
		b.WriteString(escapeKeyPart(params[n]))
	}
	return b.String()
}

// escapeKeyPart makes a string safe to embed between KeyFrom's '|' and
// '=' separators. '%' must be escaped first so escapes stay reversible.
func escapeKeyPart(s string) string {
	if !strings.ContainsAny(s, "%|=") {
		return s
	}
	s = strings.ReplaceAll(s, "%", "%25")
	s = strings.ReplaceAll(s, "|", "%7C")
	return strings.ReplaceAll(s, "=", "%3D")
}
