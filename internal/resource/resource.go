// Package resource tracks the shared SMT pipeline structures that
// learning-based distribution partitions across hardware threads: the
// per-thread occupancy counters, the partition (limit) registers, and the
// arithmetic on partition shares used by the learning algorithms.
//
// Following Section 3.1.2 of the paper, the explicitly partitioned
// resources are the integer issue queue, the integer rename registers, and
// the reorder buffer. A partition is expressed as a division of the
// integer rename registers (the paper's canonical axis); the integer IQ
// and ROB limits are derived proportionally. The floating-point IQ and
// rename registers are tracked for capacity but never partitioned.
package resource

import "fmt"

// Kind identifies one shared hardware structure.
type Kind int

const (
	// IntIQ is the integer issue queue (partitioned, proportionally).
	IntIQ Kind = iota
	// FpIQ is the floating-point issue queue (capacity only).
	FpIQ
	// LSQ is the load/store queue (capacity only).
	LSQ
	// IntRename is the integer rename register file (the partition axis).
	IntRename
	// FpRename is the floating-point rename register file (capacity only).
	FpRename
	// ROB is the shared reorder buffer (partitioned, proportionally).
	ROB
	// NumKinds is the number of tracked structures.
	NumKinds
)

// String returns the structure's name.
func (k Kind) String() string {
	switch k {
	case IntIQ:
		return "int-iq"
	case FpIQ:
		return "fp-iq"
	case LSQ:
		return "lsq"
	case IntRename:
		return "int-rename"
	case FpRename:
		return "fp-rename"
	case ROB:
		return "rob"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// Partitioned reports whether the structure is explicitly partitioned by
// the learning-based distribution mechanisms.
func (k Kind) Partitioned() bool { return k == IntIQ || k == IntRename || k == ROB }

// Sizes holds the total entry count of each structure.
type Sizes [NumKinds]int

// DefaultSizes returns the Table 1 configuration: 80-entry integer and FP
// issue queues, 256-entry LSQ, 256 integer and 256 FP rename registers,
// and a 512-entry shared ROB.
func DefaultSizes() Sizes {
	var s Sizes
	s[IntIQ] = 80
	s[FpIQ] = 80
	s[LSQ] = 256
	s[IntRename] = 256
	s[FpRename] = 256
	s[ROB] = 512
	return s
}

// MinShare is the smallest rename-register share any thread may hold, so
// every thread is guaranteed forward progress (Section 3.1: "partitioning
// guarantees every thread receives some fraction of each shared resource").
const MinShare = 8

// Shares is a division of the integer rename registers across threads;
// len(Shares) is the thread count and the elements sum to the rename file
// size.
type Shares []int

// EqualShares returns the equal division of total across t threads (the
// initial anchor of the hill-climbing algorithm).
func EqualShares(t, total int) Shares {
	s := make(Shares, t)
	base := total / t
	rem := total - base*t
	for i := range s {
		s[i] = base
		if i < rem {
			s[i]++
		}
	}
	return s
}

// Clone returns a copy of s.
func (s Shares) Clone() Shares { return append(Shares(nil), s...) }

// Sum returns the total of all shares.
func (s Shares) Sum() int {
	n := 0
	for _, v := range s {
		n += v
	}
	return n
}

// Valid reports whether every share is at least MinShare and the total
// equals total.
func (s Shares) Valid(total int) bool {
	for _, v := range s {
		if v < MinShare {
			return false
		}
	}
	return s.Sum() == total
}

// Shift returns a copy of s with delta registers moved to thread favored
// from every other thread (the sampling move of the paper's Figure 8,
// lines 17–21). Shares are clamped at MinShare; registers that cannot be
// taken from a clamped thread are taken from the largest remaining donors
// so the total is preserved.
func (s Shares) Shift(favored, delta int) Shares {
	n := s.Clone()
	if len(n) < 2 || delta <= 0 {
		return n
	}
	moved := 0
	for i := range n {
		if i == favored {
			continue
		}
		take := delta
		if n[i]-take < MinShare {
			take = n[i] - MinShare
			if take < 0 {
				take = 0
			}
		}
		n[i] -= take
		moved += take
	}
	n[favored] += moved
	return n
}

// shareMode records how the partition registers were last programmed, so
// CheckConservation can re-derive and cross-check them.
type shareMode uint8

const (
	// modeNone: no share vector is in force (ClearPartitions or direct
	// SetLimit programming).
	modeNone shareMode = iota
	// modeProportional: SetShares derived the IQ and ROB limits from the
	// rename shares.
	modeProportional
	// modeRenameOnly: SetSharesRenameOnly left IQ and ROB fully shared.
	modeRenameOnly
)

// Table tracks per-thread occupancy and partition limits for every shared
// structure. It is a plain value type aside from its slices; Clone
// produces an independent deep copy for checkpointing.
type Table struct {
	sizes   Sizes
	threads int
	occ     []int // threads*NumKinds occupancy counters
	limit   []int // threads*NumKinds partition limits
	total   Sizes // aggregate occupancy per structure

	// shares remembers the last share vector programmed through SetShares
	// or SetSharesRenameOnly (nil under modeNone); mode records which
	// derivation produced the current limits; version counts every
	// reprogramming, letting per-cycle checks tell "occupancy exceeds a
	// just-shrunk limit" (legal, drains) from "occupancy grew past its
	// limit" (a conservation bug).
	shares  Shares
	mode    shareMode
	version uint64
}

// NewTable returns a table for the given thread count with partitioning
// disabled (every thread limited only by total capacity).
func NewTable(threads int, sizes Sizes) *Table {
	t := &Table{
		sizes:   sizes,
		threads: threads,
		occ:     make([]int, threads*int(NumKinds)),
		limit:   make([]int, threads*int(NumKinds)),
	}
	t.ClearPartitions()
	return t
}

// Clone returns a deep copy.
func (t *Table) Clone() *Table {
	c := *t
	c.occ = append([]int(nil), t.occ...)
	c.limit = append([]int(nil), t.limit...)
	c.shares = t.shares.Clone()
	return &c
}

// CloneInto copies t's state into dst, reusing dst's backing storage, and
// returns dst. A nil or differently-shaped dst falls back to an
// allocating Clone.
func (t *Table) CloneInto(dst *Table) *Table {
	if dst == nil || dst == t || len(dst.occ) != len(t.occ) {
		return t.Clone()
	}
	occ, limit, shares := dst.occ, dst.limit, dst.shares
	*dst = *t
	dst.occ = append(occ[:0], t.occ...)
	dst.limit = append(limit[:0], t.limit...)
	dst.shares = append(shares[:0], t.shares...)
	if t.shares == nil {
		dst.shares = nil
	}
	return dst
}

// Threads returns the number of hardware contexts tracked.
func (t *Table) Threads() int { return t.threads }

// Sizes returns the structure capacities.
func (t *Table) Sizes() Sizes { return t.sizes }

func (t *Table) idx(th int, k Kind) int { return th*int(NumKinds) + int(k) }

// Occ returns thread th's occupancy of structure k.
func (t *Table) Occ(th int, k Kind) int { return t.occ[t.idx(th, k)] }

// TotalOcc returns the aggregate occupancy of structure k.
func (t *Table) TotalOcc(k Kind) int { return t.total[k] }

// Limit returns thread th's current limit for structure k.
func (t *Table) Limit(th int, k Kind) int { return t.limit[t.idx(th, k)] }

// ClearPartitions removes all partition limits: every thread may consume
// up to the full structure (the ICOUNT/FLUSH sharing model).
func (t *Table) ClearPartitions() {
	for th := 0; th < t.threads; th++ {
		for k := Kind(0); k < NumKinds; k++ {
			t.limit[t.idx(th, k)] = t.sizes[k]
		}
	}
	t.shares, t.mode = nil, modeNone
	t.version++
}

// SetShares programs the partition registers from a division of the
// integer rename registers, deriving the integer IQ and ROB limits
// proportionally (Section 3.1.2). Non-partitioned structures keep
// full-capacity limits. SetShares panics if len(shares) != Threads().
func (t *Table) SetShares(shares Shares) {
	if len(shares) != t.threads {
		panic(fmt.Sprintf("resource: %d shares for %d threads", len(shares), t.threads))
	}
	renameTotal := t.sizes[IntRename]
	for th, share := range shares {
		t.limit[t.idx(th, IntRename)] = share
		t.limit[t.idx(th, IntIQ)] = proportional(share, renameTotal, t.sizes[IntIQ])
		t.limit[t.idx(th, ROB)] = proportional(share, renameTotal, t.sizes[ROB])
	}
	t.shares, t.mode = shares.Clone(), modeProportional
	t.version++
}

// SetSharesRenameOnly programs the partition registers for the integer
// rename registers only, leaving the integer IQ and ROB fully shared. It
// is the ablation counterpart of SetShares for evaluating the paper's
// proportional-partitioning simplification (Section 3.1.2).
func (t *Table) SetSharesRenameOnly(shares Shares) {
	if len(shares) != t.threads {
		panic(fmt.Sprintf("resource: %d shares for %d threads", len(shares), t.threads))
	}
	for th, share := range shares {
		t.limit[t.idx(th, IntRename)] = share
		t.limit[t.idx(th, IntIQ)] = t.sizes[IntIQ]
		t.limit[t.idx(th, ROB)] = t.sizes[ROB]
	}
	t.shares, t.mode = shares.Clone(), modeRenameOnly
	t.version++
}

// SetLimit programs one thread's limit for one structure directly. It is
// used by the independent-partitioning ablation and by DCRA, which derives
// its own per-structure caps.
func (t *Table) SetLimit(th int, k Kind, limit int) {
	if limit > t.sizes[k] {
		limit = t.sizes[k]
	}
	if limit < 1 {
		limit = 1
	}
	t.limit[t.idx(th, k)] = limit
	t.shares, t.mode = nil, modeNone
	t.version++
}

// proportional scales share/total onto a structure with size entries,
// rounding to nearest and keeping at least one entry.
func proportional(share, total, size int) int {
	v := (share*size + total/2) / total
	if v < 1 {
		v = 1
	}
	if v > size {
		v = size
	}
	return v
}

// CanAlloc reports whether thread th may allocate one entry of structure k
// right now: the structure has a free entry and the thread is under its
// partition limit.
func (t *Table) CanAlloc(th int, k Kind) bool {
	return t.total[k] < t.sizes[k] && t.occ[t.idx(th, k)] < t.limit[t.idx(th, k)]
}

// Alloc claims one entry of structure k for thread th. It panics if the
// allocation is not permitted; callers must check CanAlloc first.
func (t *Table) Alloc(th int, k Kind) {
	if !t.CanAlloc(th, k) {
		panic(fmt.Sprintf("resource: invalid alloc of %v by thread %d (occ %d/%d, total %d/%d)",
			k, th, t.occ[t.idx(th, k)], t.limit[t.idx(th, k)], t.total[k], t.sizes[k]))
	}
	t.occ[t.idx(th, k)]++
	t.total[k]++
}

// Free releases one entry of structure k held by thread th.
func (t *Table) Free(th int, k Kind) {
	i := t.idx(th, k)
	if t.occ[i] == 0 {
		panic(fmt.Sprintf("resource: free of %v by thread %d with zero occupancy", k, th))
	}
	t.occ[i]--
	t.total[k]--
}

// AtPartitionLimit reports whether thread th has reached its limit in any
// partitioned structure — the fetch-lock condition of Section 3.2.
func (t *Table) AtPartitionLimit(th int) bool {
	return t.occ[t.idx(th, IntIQ)] >= t.limit[t.idx(th, IntIQ)] ||
		t.occ[t.idx(th, IntRename)] >= t.limit[t.idx(th, IntRename)] ||
		t.occ[t.idx(th, ROB)] >= t.limit[t.idx(th, ROB)]
}

// Version returns a counter that increments on every partition
// reprogramming (SetShares, SetSharesRenameOnly, SetLimit,
// ClearPartitions). Per-cycle invariant checks use it to distinguish
// occupancy legitimately draining down to a just-shrunk limit from
// occupancy growing past its limit.
func (t *Table) Version() uint64 { return t.version }

// ProgrammedShares returns a copy of the share vector currently in force
// and true, or nil and false when the table is not under share-based
// partitioning (ClearPartitions or direct SetLimit programming).
func (t *Table) ProgrammedShares() (Shares, bool) {
	if t.mode == modeNone {
		return nil, false
	}
	return t.shares.Clone(), true
}

// CheckConservation verifies the table's bookkeeping against the
// capacities and the programmed share vector: occupancies are
// non-negative, the per-structure totals equal the per-thread sums and
// fit the capacity, limits lie in [1, size], and — when a share vector is
// in force — the shares respect MinShare, sum exactly to the rename file
// size, and the limit registers match the recorded derivation
// (proportional or rename-only). It returns the first violation found.
func (t *Table) CheckConservation() error {
	for k := Kind(0); k < NumKinds; k++ {
		sum := 0
		for th := 0; th < t.threads; th++ {
			occ, lim := t.occ[t.idx(th, k)], t.limit[t.idx(th, k)]
			if occ < 0 {
				return fmt.Errorf("resource: thread %d %v occupancy %d is negative", th, k, occ)
			}
			if lim < 1 || lim > t.sizes[k] {
				return fmt.Errorf("resource: thread %d %v limit %d outside [1, %d]", th, k, lim, t.sizes[k])
			}
			sum += occ
		}
		if sum != t.total[k] {
			return fmt.Errorf("resource: %v total occupancy %d, per-thread sum %d", k, t.total[k], sum)
		}
		if t.total[k] > t.sizes[k] {
			return fmt.Errorf("resource: %v total occupancy %d exceeds capacity %d", k, t.total[k], t.sizes[k])
		}
	}
	if t.mode == modeNone {
		return nil
	}
	if len(t.shares) != t.threads {
		return fmt.Errorf("resource: %d programmed shares for %d threads", len(t.shares), t.threads)
	}
	renameTotal := t.sizes[IntRename]
	if got := t.shares.Sum(); got != renameTotal {
		return fmt.Errorf("resource: programmed shares sum to %d, rename file holds %d", got, renameTotal)
	}
	for th, share := range t.shares {
		if share < MinShare {
			return fmt.Errorf("resource: thread %d share %d below MinShare %d", th, share, MinShare)
		}
		if lim := t.limit[t.idx(th, IntRename)]; lim != share {
			return fmt.Errorf("resource: thread %d rename limit %d does not match share %d", th, lim, share)
		}
		wantIQ, wantROB := t.sizes[IntIQ], t.sizes[ROB]
		if t.mode == modeProportional {
			wantIQ = proportional(share, renameTotal, t.sizes[IntIQ])
			wantROB = proportional(share, renameTotal, t.sizes[ROB])
		}
		if lim := t.limit[t.idx(th, IntIQ)]; lim != wantIQ {
			return fmt.Errorf("resource: thread %d int-iq limit %d, share derivation says %d", th, lim, wantIQ)
		}
		if lim := t.limit[t.idx(th, ROB)]; lim != wantROB {
			return fmt.Errorf("resource: thread %d rob limit %d, share derivation says %d", th, lim, wantROB)
		}
	}
	return nil
}
