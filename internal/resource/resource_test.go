package resource

import (
	"testing"
	"testing/quick"

	"smthill/internal/rng"
)

func TestDefaultSizesMatchTable1(t *testing.T) {
	s := DefaultSizes()
	want := map[Kind]int{IntIQ: 80, FpIQ: 80, LSQ: 256, IntRename: 256, FpRename: 256, ROB: 512}
	for k, v := range want {
		if s[k] != v {
			t.Errorf("%v size = %d, want %d", k, s[k], v)
		}
	}
}

func TestPartitionedKinds(t *testing.T) {
	want := map[Kind]bool{IntIQ: true, IntRename: true, ROB: true}
	for k := Kind(0); k < NumKinds; k++ {
		if k.Partitioned() != want[k] {
			t.Errorf("%v.Partitioned() = %v", k, k.Partitioned())
		}
	}
}

func TestEqualShares(t *testing.T) {
	for _, tc := range []struct {
		threads, total int
	}{{2, 256}, {3, 256}, {4, 256}, {7, 100}} {
		s := EqualShares(tc.threads, tc.total)
		if s.Sum() != tc.total {
			t.Errorf("EqualShares(%d,%d) sums to %d", tc.threads, tc.total, s.Sum())
		}
		for _, v := range s {
			if v < tc.total/tc.threads || v > tc.total/tc.threads+1 {
				t.Errorf("EqualShares(%d,%d) uneven: %v", tc.threads, tc.total, s)
			}
		}
	}
}

func TestShiftPreservesSum(t *testing.T) {
	if err := quick.Check(func(seed uint64) bool {
		r := rng.New(seed)
		n := 2 + r.Intn(3)
		s := EqualShares(n, 256)
		for step := 0; step < 50; step++ {
			s = s.Shift(r.Intn(n), 4)
			if s.Sum() != 256 {
				return false
			}
			for _, v := range s {
				if v < MinShare {
					return false
				}
			}
		}
		return true
	}, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestShiftMovesTowardFavored(t *testing.T) {
	s := EqualShares(4, 256)
	n := s.Shift(2, 4)
	if n[2] != s[2]+12 {
		t.Fatalf("favored share %d, want %d", n[2], s[2]+12)
	}
	for i := range n {
		if i != 2 && n[i] != s[i]-4 {
			t.Fatalf("donor %d share %d, want %d", i, n[i], s[i]-4)
		}
	}
}

func TestShiftClampsAtMinShare(t *testing.T) {
	s := Shares{MinShare, 256 - MinShare}
	n := s.Shift(1, 4)
	if n[0] != MinShare {
		t.Fatalf("clamped donor went to %d", n[0])
	}
	if n.Sum() != 256 {
		t.Fatalf("sum = %d", n.Sum())
	}
	// Nothing could be taken, so the favored share is unchanged.
	if n[1] != 256-MinShare {
		t.Fatalf("favored share changed to %d with no donor capacity", n[1])
	}
}

func TestValid(t *testing.T) {
	if !EqualShares(2, 256).Valid(256) {
		t.Fatal("equal shares reported invalid")
	}
	if (Shares{0, 256}).Valid(256) {
		t.Fatal("sub-MinShare shares reported valid")
	}
	if (Shares{128, 100}).Valid(256) {
		t.Fatal("wrong-sum shares reported valid")
	}
}

func TestAllocFreeOccupancy(t *testing.T) {
	tab := NewTable(2, DefaultSizes())
	tab.Alloc(0, ROB)
	tab.Alloc(0, ROB)
	tab.Alloc(1, ROB)
	if tab.Occ(0, ROB) != 2 || tab.Occ(1, ROB) != 1 || tab.TotalOcc(ROB) != 3 {
		t.Fatalf("occupancy wrong: %d %d %d", tab.Occ(0, ROB), tab.Occ(1, ROB), tab.TotalOcc(ROB))
	}
	tab.Free(0, ROB)
	if tab.Occ(0, ROB) != 1 || tab.TotalOcc(ROB) != 2 {
		t.Fatal("free did not decrement")
	}
}

func TestCapacityExhaustion(t *testing.T) {
	sizes := DefaultSizes()
	tab := NewTable(2, sizes)
	for i := 0; i < sizes[IntIQ]; i++ {
		if !tab.CanAlloc(0, IntIQ) {
			t.Fatalf("alloc %d refused below capacity", i)
		}
		tab.Alloc(0, IntIQ)
	}
	if tab.CanAlloc(0, IntIQ) || tab.CanAlloc(1, IntIQ) {
		t.Fatal("allocation allowed beyond total capacity")
	}
}

func TestSetSharesProportionality(t *testing.T) {
	tab := NewTable(2, DefaultSizes())
	tab.SetShares(Shares{64, 192})
	if got := tab.Limit(0, IntRename); got != 64 {
		t.Fatalf("rename limit = %d", got)
	}
	// 64/256 of the 80-entry IQ = 20; of the 512-entry ROB = 128.
	if got := tab.Limit(0, IntIQ); got != 20 {
		t.Fatalf("IQ limit = %d, want 20", got)
	}
	if got := tab.Limit(0, ROB); got != 128 {
		t.Fatalf("ROB limit = %d, want 128", got)
	}
	if got := tab.Limit(1, ROB); got != 384 {
		t.Fatalf("thread 1 ROB limit = %d, want 384", got)
	}
	// Non-partitioned structures stay at capacity.
	if got := tab.Limit(0, LSQ); got != 256 {
		t.Fatalf("LSQ limit = %d", got)
	}
	if got := tab.Limit(0, FpRename); got != 256 {
		t.Fatalf("FP rename limit = %d", got)
	}
}

func TestPartitionBlocksAllocation(t *testing.T) {
	tab := NewTable(2, DefaultSizes())
	tab.SetShares(Shares{16, 240})
	for i := 0; i < 16; i++ {
		tab.Alloc(0, IntRename)
	}
	if tab.CanAlloc(0, IntRename) {
		t.Fatal("thread 0 allocated past its partition")
	}
	if !tab.CanAlloc(1, IntRename) {
		t.Fatal("thread 1 blocked by thread 0's partition")
	}
	if !tab.AtPartitionLimit(0) {
		t.Fatal("thread 0 not reported at partition limit")
	}
	if tab.AtPartitionLimit(1) {
		t.Fatal("thread 1 wrongly at partition limit")
	}
}

func TestClearPartitions(t *testing.T) {
	tab := NewTable(2, DefaultSizes())
	tab.SetShares(Shares{16, 240})
	tab.ClearPartitions()
	if tab.Limit(0, IntRename) != 256 || tab.Limit(0, ROB) != 512 {
		t.Fatal("ClearPartitions did not restore capacity limits")
	}
}

func TestAllocPanicsWhenDisallowed(t *testing.T) {
	tab := NewTable(1, DefaultSizes())
	tab.SetLimit(0, IntIQ, 1)
	tab.Alloc(0, IntIQ)
	defer func() {
		if recover() == nil {
			t.Fatal("over-limit alloc did not panic")
		}
	}()
	tab.Alloc(0, IntIQ)
}

func TestFreePanicsAtZero(t *testing.T) {
	tab := NewTable(1, DefaultSizes())
	defer func() {
		if recover() == nil {
			t.Fatal("free at zero occupancy did not panic")
		}
	}()
	tab.Free(0, ROB)
}

func TestSetLimitClamps(t *testing.T) {
	tab := NewTable(1, DefaultSizes())
	tab.SetLimit(0, ROB, 10_000)
	if tab.Limit(0, ROB) != 512 {
		t.Fatalf("limit not clamped to capacity: %d", tab.Limit(0, ROB))
	}
	tab.SetLimit(0, ROB, -5)
	if tab.Limit(0, ROB) != 1 {
		t.Fatalf("limit not clamped to 1: %d", tab.Limit(0, ROB))
	}
}

func TestCloneIndependence(t *testing.T) {
	tab := NewTable(2, DefaultSizes())
	tab.SetShares(Shares{100, 156})
	tab.Alloc(0, ROB)
	c := tab.Clone()
	tab.Alloc(0, ROB)
	tab.SetShares(Shares{128, 128})
	if c.Occ(0, ROB) != 1 {
		t.Fatalf("clone occupancy changed: %d", c.Occ(0, ROB))
	}
	if c.Limit(0, IntRename) != 100 {
		t.Fatalf("clone limit changed: %d", c.Limit(0, IntRename))
	}
}

func TestSetSharesPanicsOnWrongLength(t *testing.T) {
	tab := NewTable(2, DefaultSizes())
	defer func() {
		if recover() == nil {
			t.Fatal("wrong-length SetShares did not panic")
		}
	}()
	tab.SetShares(Shares{256})
}

func TestCheckConservation(t *testing.T) {
	tab := NewTable(2, DefaultSizes())
	if err := tab.CheckConservation(); err != nil {
		t.Fatalf("fresh table fails conservation: %v", err)
	}
	if _, ok := tab.ProgrammedShares(); ok {
		t.Fatal("fresh table reports programmed shares")
	}

	v := tab.Version()
	tab.SetShares(EqualShares(2, 256))
	if tab.Version() == v {
		t.Fatal("SetShares did not bump the version")
	}
	if err := tab.CheckConservation(); err != nil {
		t.Fatalf("equal shares fail conservation: %v", err)
	}
	got, ok := tab.ProgrammedShares()
	if !ok || got.Sum() != 256 {
		t.Fatalf("ProgrammedShares = %v, %v", got, ok)
	}

	// A short share vector must be reported.
	tab.SetShares(Shares{120, 120})
	if err := tab.CheckConservation(); err == nil {
		t.Fatal("short share vector passed conservation")
	}

	// A share below MinShare must be reported.
	tab.SetShares(Shares{256 - 4, 4})
	if err := tab.CheckConservation(); err == nil {
		t.Fatal("sub-MinShare share passed conservation")
	}

	// Direct limit programming leaves share checks out of force.
	tab.SetLimit(0, IntIQ, 40)
	if err := tab.CheckConservation(); err != nil {
		t.Fatalf("direct limits fail conservation: %v", err)
	}
	if _, ok := tab.ProgrammedShares(); ok {
		t.Fatal("SetLimit left stale programmed shares in force")
	}

	// Rename-only programming keeps IQ/ROB at capacity.
	tab.SetSharesRenameOnly(EqualShares(2, 256))
	if err := tab.CheckConservation(); err != nil {
		t.Fatalf("rename-only shares fail conservation: %v", err)
	}
	if tab.Limit(0, ROB) != DefaultSizes()[ROB] {
		t.Fatalf("rename-only left ROB limit %d", tab.Limit(0, ROB))
	}

	// A mutilated limit register under share programming is caught.
	tab.SetShares(EqualShares(2, 256))
	tab.limit[tab.idx(1, ROB)]--
	if err := tab.CheckConservation(); err == nil {
		t.Fatal("tampered ROB limit passed conservation")
	}
}
