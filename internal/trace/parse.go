package trace

import (
	"fmt"
	"math"
	"strconv"
	"strings"
)

// ParseProfile parses the textual profile format: whitespace-separated
// key=value tokens describing one application model. Structural keys are
//
//	name=<string>  seed=<uint64>  kind=no|high|low
//	seglen=<uint>  blocks=<int>   blocklen=<int>
//
// and behaviour-pole parameters take an "a." or "b." prefix:
//
//	a.load a.store a.branch a.fp a.muldiv a.chain     (fractions)
//	a.ws a.stride                                     (bytes)
//	a.stridepct a.chase a.burstprob a.noise a.addrready (fractions)
//	a.chains a.burstlen                               (counts)
//
// Unset keys keep their zero values, which Defaulted later fills; tokens
// after a '#' on a line are comments. The format round-trips: for any
// successfully parsed profile p, ParseProfile(p.Spec()) reproduces p
// exactly.
func ParseProfile(s string) (Profile, error) {
	var p Profile
	seen := map[string]bool{}
	for _, line := range strings.Split(s, "\n") {
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = line[:i]
		}
		for _, tok := range strings.Fields(line) {
			key, val, ok := strings.Cut(tok, "=")
			if !ok {
				return Profile{}, fmt.Errorf("trace: token %q is not key=value", tok)
			}
			if key == "" || val == "" {
				return Profile{}, fmt.Errorf("trace: empty key or value in %q", tok)
			}
			if seen[key] {
				return Profile{}, fmt.Errorf("trace: duplicate key %q", key)
			}
			seen[key] = true
			if err := p.setKey(key, val); err != nil {
				return Profile{}, err
			}
		}
	}
	if err := p.validate(); err != nil {
		return Profile{}, err
	}
	return p, nil
}

// setKey applies one key=value token to the profile.
func (p *Profile) setKey(key, val string) error {
	switch key {
	case "name":
		p.Name = val
		return nil
	case "seed":
		v, err := strconv.ParseUint(val, 10, 64)
		if err != nil {
			return fmt.Errorf("trace: seed: %w", err)
		}
		p.Seed = v
		return nil
	case "kind":
		switch val {
		case "no":
			p.Kind = PhaseNone
		case "high":
			p.Kind = PhaseHigh
		case "low":
			p.Kind = PhaseLow
		default:
			return fmt.Errorf("trace: kind %q is not no|high|low", val)
		}
		return nil
	case "seglen":
		v, err := strconv.ParseUint(val, 10, 64)
		if err != nil {
			return fmt.Errorf("trace: seglen: %w", err)
		}
		p.SegLen = v
		return nil
	case "blocks":
		v, err := parseCount(val, 1<<16)
		if err != nil {
			return fmt.Errorf("trace: blocks: %w", err)
		}
		p.Blocks = v
		return nil
	case "blocklen":
		v, err := parseCount(val, 1<<12)
		if err != nil {
			return fmt.Errorf("trace: blocklen: %w", err)
		}
		p.BlockLen = v
		return nil
	}
	pole, param, ok := strings.Cut(key, ".")
	if !ok || (pole != "a" && pole != "b") {
		return fmt.Errorf("trace: unknown key %q", key)
	}
	pp := &p.A
	if pole == "b" {
		pp = &p.B
	}
	return pp.setParam(param, val)
}

// setParam applies one pole parameter.
func (pp *Params) setParam(param, val string) error {
	switch param {
	case "ws":
		v, err := strconv.ParseUint(val, 10, 64)
		if err != nil {
			return fmt.Errorf("trace: %s: %w", param, err)
		}
		pp.WorkingSet = v
		return nil
	case "stride":
		v, err := strconv.ParseUint(val, 10, 64)
		if err != nil {
			return fmt.Errorf("trace: %s: %w", param, err)
		}
		pp.Stride = v
		return nil
	case "chains":
		v, err := parseCount(val, 12)
		if err != nil {
			return fmt.Errorf("trace: %s: %w", param, err)
		}
		pp.ChaseChains = v
		return nil
	}
	v, err := strconv.ParseFloat(val, 64)
	if err != nil {
		return fmt.Errorf("trace: %s: %w", param, err)
	}
	if math.IsNaN(v) || math.IsInf(v, 0) || v < 0 {
		return fmt.Errorf("trace: %s=%v must be finite and non-negative", param, v)
	}
	dst, frac := pp.floatParam(param)
	if dst == nil {
		return fmt.Errorf("trace: unknown parameter %q", param)
	}
	if frac && v > 1 {
		return fmt.Errorf("trace: %s=%v is not a fraction in [0, 1]", param, v)
	}
	*dst = v
	return nil
}

// floatParam maps a parameter name to its field and reports whether it
// must be a fraction in [0, 1].
func (pp *Params) floatParam(param string) (dst *float64, frac bool) {
	switch param {
	case "load":
		return &pp.FracLoad, true
	case "store":
		return &pp.FracStore, true
	case "branch":
		return &pp.FracBranch, true
	case "fp":
		return &pp.FracFp, true
	case "muldiv":
		return &pp.FracMulDiv, true
	case "chain":
		return &pp.ChainDep, true
	case "stridepct":
		return &pp.StridePct, true
	case "chase":
		return &pp.PointerChase, true
	case "burstprob":
		return &pp.MissBurstProb, true
	case "noise":
		return &pp.BranchNoise, true
	case "addrready":
		return &pp.AddrReady, true
	case "burstlen":
		return &pp.BurstLen, false
	default:
		return nil, false
	}
}

// parseCount parses a non-negative int bounded by max.
func parseCount(val string, max int) (int, error) {
	v, err := strconv.Atoi(val)
	if err != nil {
		return 0, err
	}
	if v < 0 || v > max {
		return 0, fmt.Errorf("%d outside [0, %d]", v, max)
	}
	return v, nil
}

// validate rejects parameter combinations the generator cannot run.
func (p *Profile) validate() error {
	poles := []struct {
		name string
		pp   *Params
	}{{"a", &p.A}, {"b", &p.B}}
	for _, pole := range poles {
		pp := pole.pp
		if sum := pp.FracLoad + pp.FracStore + pp.FracBranch; sum >= 1 {
			return fmt.Errorf("trace: %s.load+%s.store+%s.branch = %v must be < 1", pole.name, pole.name, pole.name, sum)
		}
		if pp.BurstLen > 1e4 {
			return fmt.Errorf("trace: %s.burstlen=%v is unreasonably large", pole.name, pp.BurstLen)
		}
	}
	return nil
}

// Spec renders the profile in the canonical form ParseProfile reads:
// structural keys first, then the set (non-zero) pole parameters in a
// fixed order. ParseProfile(p.Spec()) == p for any parsed p, which makes
// Spec a stable content key for caching and a lossless serialisation.
func (p Profile) Spec() string {
	var b strings.Builder
	emit := func(key, val string) {
		if b.Len() > 0 {
			b.WriteByte(' ')
		}
		b.WriteString(key)
		b.WriteByte('=')
		b.WriteString(val)
	}
	if p.Name != "" {
		emit("name", p.Name)
	}
	if p.Seed != 0 {
		emit("seed", strconv.FormatUint(p.Seed, 10))
	}
	if p.Kind != PhaseNone {
		emit("kind", strings.ToLower(p.Kind.String()))
	}
	if p.SegLen != 0 {
		emit("seglen", strconv.FormatUint(p.SegLen, 10))
	}
	if p.Blocks != 0 {
		emit("blocks", strconv.Itoa(p.Blocks))
	}
	if p.BlockLen != 0 {
		emit("blocklen", strconv.Itoa(p.BlockLen))
	}
	p.A.spec("a", emit)
	p.B.spec("b", emit)
	return b.String()
}

// spec emits the pole's non-zero parameters under the given prefix.
func (pp Params) spec(pole string, emit func(key, val string)) {
	f := func(param string, v float64) {
		if v != 0 {
			emit(pole+"."+param, strconv.FormatFloat(v, 'g', -1, 64))
		}
	}
	f("load", pp.FracLoad)
	f("store", pp.FracStore)
	f("branch", pp.FracBranch)
	f("fp", pp.FracFp)
	f("muldiv", pp.FracMulDiv)
	f("chain", pp.ChainDep)
	if pp.WorkingSet != 0 {
		emit(pole+".ws", strconv.FormatUint(pp.WorkingSet, 10))
	}
	f("stridepct", pp.StridePct)
	if pp.Stride != 0 {
		emit(pole+".stride", strconv.FormatUint(pp.Stride, 10))
	}
	f("chase", pp.PointerChase)
	if pp.ChaseChains != 0 {
		emit(pole+".chains", strconv.Itoa(pp.ChaseChains))
	}
	f("burstprob", pp.MissBurstProb)
	f("burstlen", pp.BurstLen)
	f("noise", pp.BranchNoise)
	f("addrready", pp.AddrReady)
}
