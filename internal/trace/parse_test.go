package trace

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"smthill/internal/isa"
)

func TestParseProfileBasic(t *testing.T) {
	p, err := ParseProfile(`
# comment line
name=demo seed=42 kind=high seglen=60000 blocks=96 blocklen=12
a.load=0.25 a.branch=0.15 a.ws=16384
b.load=0.4 b.chase=0.6 b.chains=3 # trailing comment
`)
	if err != nil {
		t.Fatal(err)
	}
	if p.Name != "demo" || p.Seed != 42 || p.Kind != PhaseHigh {
		t.Errorf("structural fields wrong: %+v", p)
	}
	if p.SegLen != 60000 || p.Blocks != 96 || p.BlockLen != 12 {
		t.Errorf("shape fields wrong: %+v", p)
	}
	if p.A.FracLoad != 0.25 || p.A.FracBranch != 0.15 || p.A.WorkingSet != 16384 {
		t.Errorf("pole a wrong: %+v", p.A)
	}
	if p.B.FracLoad != 0.4 || p.B.PointerChase != 0.6 || p.B.ChaseChains != 3 {
		t.Errorf("pole b wrong: %+v", p.B)
	}
}

func TestParseProfileErrors(t *testing.T) {
	cases := []struct {
		in, want string
	}{
		{"load 0.5", "not key=value"},
		{"=0.5", "empty key"},
		{"a.load=", "empty key or value"},
		{"seed=1 seed=2", "duplicate key"},
		{"seed=banana", "seed"},
		{"kind=medium", "not no|high|low"},
		{"blocks=-1", "outside"},
		{"blocks=100000", "outside"},
		{"c.load=0.5", "unknown key"},
		{"a.bogus=0.5", "unknown parameter"},
		{"a.load=1.5", "not a fraction"},
		{"a.load=-0.5", "non-negative"},
		{"a.load=NaN", "finite"},
		{"a.chain=Inf", "finite"},
		{"a.load=0.5 a.store=0.4 a.branch=0.2", "must be < 1"},
		{"a.burstlen=99999", "unreasonably large"},
	}
	for _, c := range cases {
		if _, err := ParseProfile(c.in); err == nil {
			t.Errorf("ParseProfile(%q) succeeded, want error containing %q", c.in, c.want)
		} else if !strings.Contains(err.Error(), c.want) {
			t.Errorf("ParseProfile(%q) = %v, want error containing %q", c.in, err, c.want)
		}
	}
}

// TestSpecRoundTrip checks the documented contract: for any parsed
// profile p, ParseProfile(p.Spec()) == p.
func TestSpecRoundTrip(t *testing.T) {
	specs := []string{
		"",
		"name=x",
		"seed=18446744073709551615",
		"kind=low seglen=1",
		"a.load=0.33333333333333331 a.addrready=0.6",
		"b.ws=18446744073709551615 b.stride=4096",
		"name=full seed=9 kind=high seglen=123 blocks=65536 blocklen=4096 " +
			"a.load=0.1 a.store=0.1 a.branch=0.1 a.fp=0.1 a.muldiv=0.1 a.chain=0.1 " +
			"a.ws=7 a.stridepct=0.5 a.stride=3 a.chase=0.5 a.chains=12 " +
			"a.burstprob=0.5 a.burstlen=10000 a.noise=0.5 a.addrready=0.5 " +
			"b.load=0.9 b.chase=1",
	}
	for _, s := range specs {
		p, err := ParseProfile(s)
		if err != nil {
			t.Fatalf("ParseProfile(%q): %v", s, err)
		}
		q, err := ParseProfile(p.Spec())
		if err != nil {
			t.Fatalf("reparse of Spec %q: %v", p.Spec(), err)
		}
		if q != p {
			t.Errorf("round trip of %q changed the profile:\n  spec %q\n  got  %+v\n  want %+v", s, p.Spec(), q, p)
		}
	}
}

// TestParseTestdataProfiles parses every seed profile, round-trips it,
// and generates a few instructions from it.
func TestParseTestdataProfiles(t *testing.T) {
	files, err := filepath.Glob(filepath.Join("testdata", "*.profile"))
	if err != nil || len(files) == 0 {
		t.Fatalf("no testdata profiles (err=%v)", err)
	}
	for _, f := range files {
		data, err := os.ReadFile(f)
		if err != nil {
			t.Fatal(err)
		}
		p, err := ParseProfile(string(data))
		if err != nil {
			t.Fatalf("%s: %v", f, err)
		}
		if q, err := ParseProfile(p.Spec()); err != nil || q != p {
			t.Errorf("%s: Spec round trip failed (err=%v)", f, err)
		}
		g := New(p)
		var in isa.Inst
		for i := 0; i < 256; i++ {
			if !g.Next(&in) {
				t.Fatalf("%s: stream ended at %d", f, i)
			}
		}
	}
}

// FuzzParseTrace fuzzes the profile parser. Accepted inputs must
// round-trip through Spec exactly, and the generator built from them
// must be deterministic: two independent generators over the same parsed
// profile produce identical instruction streams.
func FuzzParseTrace(f *testing.F) {
	files, _ := filepath.Glob(filepath.Join("testdata", "*.profile"))
	for _, fn := range files {
		if data, err := os.ReadFile(fn); err == nil {
			f.Add(string(data))
		}
	}
	f.Add("name=x seed=1 a.load=0.3")
	f.Add("kind=low seglen=100 blocks=4 blocklen=2 b.chase=1 b.chains=12")
	f.Add("a.load=0.5 a.store=0.4 a.branch=0.2") // invalid: fractions sum >= 1
	f.Add("seed=1 seed=2")                       // invalid: duplicate key
	f.Fuzz(func(t *testing.T, s string) {
		p, err := ParseProfile(s)
		if err != nil {
			return
		}
		spec := p.Spec()
		q, err := ParseProfile(spec)
		if err != nil {
			t.Fatalf("Spec %q of accepted input %q does not reparse: %v", spec, s, err)
		}
		if q != p {
			t.Fatalf("Spec round trip changed the profile: %q -> %+v vs %+v", s, q, p)
		}
		g1, g2 := New(p), New(p)
		var a, b isa.Inst
		for i := 0; i < 64; i++ {
			ok1, ok2 := g1.Next(&a), g2.Next(&b)
			if ok1 != ok2 || a != b {
				t.Fatalf("generator nondeterministic at inst %d for %q: %+v vs %+v", i, s, a, b)
			}
			if !ok1 {
				break
			}
		}
	})
}
