package trace

import (
	"testing"
	"testing/quick"

	"smthill/internal/isa"
)

func testProfile() Profile {
	return Profile{
		Name: "test",
		Seed: 1,
		A: Params{
			FracLoad: 0.25, FracStore: 0.1, FracBranch: 0.12,
			FracFp: 0.3, FracMulDiv: 0.1,
			ChainDep: 0.3, WorkingSet: 256 << 10, StridePct: 0.6,
			PointerChase: 0.05, MissBurstProb: 0.01, BurstLen: 4,
			BranchNoise: 0.05,
		},
		Kind: PhaseNone,
	}
}

func collect(g *Gen, n int) []isa.Inst {
	out := make([]isa.Inst, 0, n)
	var in isa.Inst
	for i := 0; i < n; i++ {
		if !g.Next(&in) {
			break
		}
		out = append(out, in)
	}
	return out
}

func TestDeterminism(t *testing.T) {
	a := collect(New(testProfile()), 5000)
	b := collect(New(testProfile()), 5000)
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("instruction %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
}

func TestCloneReplays(t *testing.T) {
	g := New(testProfile())
	collect(g, 1234) // advance to an arbitrary point
	c := g.CloneStream().(*Gen)
	a := collect(g, 3000)
	b := collect(c, 3000)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("clone diverged at instruction %d", i)
		}
	}
}

func TestCloneIsIndependent(t *testing.T) {
	g := New(testProfile())
	c := g.CloneStream().(*Gen)
	collect(g, 500) // advancing g must not disturb c
	a := collect(New(testProfile()), 100)
	b := collect(c, 100)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("clone was perturbed by original at instruction %d", i)
		}
	}
}

func TestSeqNumbers(t *testing.T) {
	g := New(testProfile())
	insts := collect(g, 1000)
	for i, in := range insts {
		if in.Seq != uint64(i) {
			t.Fatalf("instruction %d has Seq %d", i, in.Seq)
		}
	}
	if g.Seq() != 1000 {
		t.Fatalf("Seq() = %d", g.Seq())
	}
}

func TestLimit(t *testing.T) {
	g := NewLimited(testProfile(), 100)
	insts := collect(g, 1000)
	if len(insts) != 100 {
		t.Fatalf("limited stream produced %d instructions", len(insts))
	}
	var in isa.Inst
	if g.Next(&in) {
		t.Fatal("stream continued past its limit")
	}
}

func TestInstructionMix(t *testing.T) {
	g := New(testProfile())
	insts := collect(g, 200000)
	var loads, stores, branches int
	for _, in := range insts {
		switch in.Class {
		case isa.Load:
			loads++
		case isa.Store:
			stores++
		case isa.Branch:
			branches++
		}
	}
	n := float64(len(insts))
	// Branch fraction is set by the block-length geometry; with
	// BlockLen=8 roughly 1 in 8 instructions is a branch.
	if f := float64(branches) / n; f < 0.08 || f > 0.20 {
		t.Errorf("branch fraction = %.3f", f)
	}
	// Loads: FracLoad of non-branch slots, plus burst loads.
	if f := float64(loads) / n; f < 0.15 || f > 0.40 {
		t.Errorf("load fraction = %.3f", f)
	}
	if f := float64(stores) / n; f < 0.04 || f > 0.18 {
		t.Errorf("store fraction = %.3f", f)
	}
}

func TestOperandValidity(t *testing.T) {
	g := New(testProfile())
	var in isa.Inst
	for i := 0; i < 100000; i++ {
		if !g.Next(&in) {
			t.Fatal("unbounded stream ended")
		}
		for _, r := range []int8{in.Dest, in.Src1, in.Src2} {
			if r != isa.NoReg && (r < 0 || r >= isa.RegsPerFile) {
				t.Fatalf("instruction %d has register %d out of range: %+v", i, r, in)
			}
		}
		if in.Class.IsMem() && in.Addr == 0 {
			t.Fatalf("memory instruction %d has zero address", i)
		}
		if in.Class == isa.Branch && in.Dest != isa.NoReg {
			t.Fatalf("branch %d has a destination register", i)
		}
		if in.Class == isa.Store && in.Dest != isa.NoReg {
			t.Fatalf("store %d has a destination register", i)
		}
	}
}

func TestPointerChaseIsSerial(t *testing.T) {
	p := testProfile()
	p.A.PointerChase = 1.0 // every load chases
	p.A.MissBurstProb = 0
	g := New(p)
	insts := collect(g, 20000)
	for _, in := range insts {
		if in.Class == isa.Load {
			if in.Src1 != in.Dest {
				t.Fatalf("chase load not serially dependent: %+v", in)
			}
			if in.Addr < chaseBase {
				t.Fatalf("chase load address %x below chase region", in.Addr)
			}
		}
	}
}

func TestBurstLoadsAreIndependent(t *testing.T) {
	p := testProfile()
	p.A.MissBurstProb = 0.2
	p.A.PointerChase = 0
	g := New(p)
	insts := collect(g, 50000)
	burst := 0
	for _, in := range insts {
		if in.Class == isa.Load && in.Addr >= burstBase {
			burst++
			if in.Src1 == in.Dest {
				t.Fatalf("burst load is serially dependent: %+v", in)
			}
		}
	}
	if burst == 0 {
		t.Fatal("no burst loads generated")
	}
}

func TestPhaseSchedules(t *testing.T) {
	for _, kind := range []PhaseKind{PhaseHigh, PhaseLow} {
		p := testProfile()
		p.Kind = kind
		p.SegLen = 10000
		p.B = p.A
		p.B.WorkingSet = 8 << 20
		g := New(p)
		// Record the pole at each segment and verify both appear.
		seen := map[bool]int{}
		transitions := 0
		prev := false
		var in isa.Inst
		for i := 0; i < 400000; i++ {
			g.Next(&in)
			if i%int(p.SegLen) == 0 {
				seen[g.pole]++
				if i > 0 && g.pole != prev {
					transitions++
				}
				prev = g.pole
			}
		}
		if len(seen) != 2 {
			t.Fatalf("%v: only one pole observed over 40 segments", kind)
		}
		if kind == PhaseHigh && transitions < 10 {
			t.Errorf("high-frequency schedule made only %d transitions", transitions)
		}
		if kind == PhaseLow && transitions > 15 {
			t.Errorf("low-frequency schedule made %d transitions", transitions)
		}
	}
}

func TestPhasesUseDistinctBlocks(t *testing.T) {
	p := testProfile()
	p.Kind = PhaseLow
	p.SegLen = 5000
	p.Blocks = 64
	g := New(p)
	var in isa.Inst
	wrong, total := 0, 0
	for i := 0; i < 600000; i++ {
		g.Next(&in)
		total++
		// Pole A executes blocks [0, 32); pole B executes [32, 64).
		inUpper := in.BB >= 32
		if inUpper != g.pole {
			wrong++
		}
	}
	// A handful of instructions leak across each pole switch (the block
	// in flight when the segment boundary passes), but the signal must
	// dominate so phases have distinct BBV signatures.
	if f := float64(wrong) / float64(total); f > 0.02 {
		t.Fatalf("%.2f%% of instructions executed outside their pole's block window", 100*f)
	}
}

func TestBranchNoiseControlsIrregularity(t *testing.T) {
	// With zero noise each static branch is perfectly periodic.
	p := testProfile()
	p.A.BranchNoise = 0
	g := New(p)
	insts := collect(g, 100000)
	// Track outcomes per static branch (by BB) and verify periodicity.
	hist := map[uint16][]bool{}
	for _, in := range insts {
		if in.Class == isa.Branch {
			hist[in.BB] = append(hist[in.BB], in.Taken)
		}
	}
	checked := 0
	for bb, outcomes := range hist {
		if len(outcomes) < 40 {
			continue
		}
		// Find a period <= 40 that explains the whole sequence.
		found := false
		for period := 1; period <= 40; period++ {
			ok := true
			for i := period; i < len(outcomes); i++ {
				if outcomes[i] != outcomes[i-period] {
					ok = false
					break
				}
			}
			if ok {
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("branch in block %d is not periodic with noise 0", bb)
		}
		checked++
	}
	if checked == 0 {
		t.Fatal("no static branch executed often enough to check")
	}
}

func TestDefaulted(t *testing.T) {
	var p Profile
	d := p.Defaulted()
	if d.Blocks == 0 || d.BlockLen == 0 || d.SegLen == 0 || d.A.Stride == 0 || d.A.WorkingSet == 0 || d.A.BurstLen == 0 {
		t.Fatalf("Defaulted left zero fields: %+v", d)
	}
}

func TestPhaseHashDeterministic(t *testing.T) {
	if err := quick.Check(func(seed, seg uint64) bool {
		a := New(Profile{Seed: seed})
		b := New(Profile{Seed: seed})
		return a.phaseHash(seg) == b.phaseHash(seg)
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestWorkingSetBoundsAddresses(t *testing.T) {
	p := testProfile()
	p.A.PointerChase = 0
	p.A.MissBurstProb = 0
	p.A.WorkingSet = 4096
	g := New(p)
	insts := collect(g, 50000)
	for _, in := range insts {
		if in.Class.IsMem() {
			if in.Addr < heapBase || in.Addr >= heapBase+4096 {
				t.Fatalf("address %#x outside working set", in.Addr)
			}
		}
	}
}
