// Package trace generates synthetic committed-path instruction streams that
// stand in for the SPEC CPU2000 binaries driving the paper's experiments.
//
// The learning techniques under study observe only a thread's dynamic
// behaviour: instruction mix, dependence structure (ILP), branch
// predictability, cache-miss rates, memory-level parallelism, and how all
// of those vary over time. Each application model is therefore a small
// parameterised stochastic process — deterministic for a given seed — that
// reproduces those observable characteristics. internal/workload calibrates
// 22 such models against the paper's Table 2 (instruction type, resource
// requirement "Rsc", and requirement-variation frequency "Freq").
//
// Generators are plain values: copying a Gen checkpoints it, which the
// simulator's Clone/restore machinery (OFF-LINE and RAND-HILL learning)
// relies on.
package trace

import (
	"smthill/internal/isa"
	"smthill/internal/rng"
)

// Params are the dynamic-behaviour knobs of an application model. A
// Profile holds two Params poles (A and B); phase scheduling switches
// between them to create the paper's high-/low-frequency resource
// requirement variation.
type Params struct {
	// Instruction mix. FracLoad + FracStore + FracBranch must be < 1;
	// the remainder is compute, split by FracFp into floating-point vs
	// integer and by FracMulDiv into long-latency multiplies/divides.
	FracLoad   float64
	FracStore  float64
	FracBranch float64
	FracFp     float64
	FracMulDiv float64

	// ChainDep is the probability that a compute instruction's first
	// source is the most recently written register, forming serial
	// dependence chains that cap ILP regardless of cache behaviour.
	ChainDep float64

	// WorkingSet is the size in bytes of the region touched by ordinary
	// loads and stores; together with the cache geometry it sets the L1
	// and L2 miss rates.
	WorkingSet uint64
	// StridePct is the fraction of ordinary accesses that walk the
	// working set sequentially (high spatial locality); the rest are
	// uniform random within the working set.
	StridePct float64
	// Stride is the sequential access stride in bytes.
	Stride uint64

	// PointerChase is the probability that a load is a serially
	// dependent miss in a memory-sized region (an mcf-style pointer
	// chase): its address register is the previous chase load's
	// destination, so misses within a chain cannot overlap.
	PointerChase float64
	// ChaseChains is the number of independent pointer chains chase
	// loads rotate across (1..12, default 1). It caps the memory-level
	// parallelism of chase misses at ChaseChains regardless of window
	// size — the knob that gives pointer codes their bounded resource
	// requirement.
	ChaseChains int
	// MissBurstProb is the per-instruction probability of starting a
	// burst of independent far loads (cache-miss clustering). Exploiting
	// a burst requires a large window partition, which is the behaviour
	// hill-climbing learns and occupancy-driven heuristics miss.
	MissBurstProb float64
	// BurstLen is the mean number of independent far loads per burst.
	BurstLen float64

	// BranchNoise is the probability that a branch deviates from its
	// learned periodic pattern; it sets the floor on the branch
	// predictor's achievable accuracy.
	BranchNoise float64

	// AddrReady is the probability that an ordinary load or store takes
	// its address from a stable base register (always ready) rather than
	// a recent producer. It controls how much memory-level parallelism a
	// larger window can expose: high values (streaming array codes) make
	// independent misses overlap freely; low values serialise them
	// behind address computations. Defaulted to 0.6 when zero.
	AddrReady float64
}

// PhaseKind classifies how a model's resource requirements vary over
// time, mirroring the "Freq" column of the paper's Table 2.
type PhaseKind uint8

const (
	// PhaseNone: steady behaviour; pole A only.
	PhaseNone PhaseKind = iota
	// PhaseHigh: pole switches every segment or two (a change every one
	// or two 64K-cycle epochs at typical IPCs).
	PhaseHigh
	// PhaseLow: pole switches after several segments.
	PhaseLow
)

// String returns the Table 2 spelling of the phase kind.
func (k PhaseKind) String() string {
	switch k {
	case PhaseHigh:
		return "High"
	case PhaseLow:
		return "Low"
	default:
		return "No"
	}
}

// Profile is a complete application model: two behaviour poles plus the
// static code layout and phase schedule.
type Profile struct {
	// Name identifies the model (Table 2 benchmark name).
	Name string
	// Seed makes the model's stochastic process deterministic.
	Seed uint64
	// A is the primary behaviour; B is the alternate pole used by phase
	// variation (ignored when Kind == PhaseNone).
	A, B Params
	// Kind selects the phase schedule.
	Kind PhaseKind
	// SegLen is the phase segment length in instructions. High-frequency
	// models switch poles on (almost) every segment boundary;
	// low-frequency models hold a pole for several segments.
	SegLen uint64
	// Blocks is the number of static basic blocks; BlockLen is the mean
	// block length in instructions. Together they determine the static
	// code footprint seen by the branch predictor and the BBV phase
	// detector.
	Blocks   int
	BlockLen int
}

// Defaulted returns a copy of p with zero-valued structural fields
// replaced by sane defaults.
func (p Profile) Defaulted() Profile {
	if p.Blocks == 0 {
		p.Blocks = 64
	}
	if p.BlockLen == 0 {
		p.BlockLen = 8
	}
	if p.SegLen == 0 {
		p.SegLen = 80_000
	}
	if p.A.Stride == 0 {
		p.A.Stride = 8
	}
	if p.B.Stride == 0 {
		p.B.Stride = 8
	}
	if p.A.WorkingSet == 0 {
		p.A.WorkingSet = 32 << 10
	}
	if p.B.WorkingSet == 0 {
		p.B.WorkingSet = p.A.WorkingSet
	}
	if p.A.BurstLen == 0 {
		p.A.BurstLen = 4
	}
	if p.B.BurstLen == 0 {
		p.B.BurstLen = p.A.BurstLen
	}
	if p.A.AddrReady == 0 {
		p.A.AddrReady = 0.6
	}
	if p.B.AddrReady == 0 {
		p.B.AddrReady = p.A.AddrReady
	}
	p.A.ChaseChains = clampChains(p.A.ChaseChains)
	p.B.ChaseChains = clampChains(p.B.ChaseChains)
	return p
}

// clampChains bounds ChaseChains to the reserved registers 20..31.
func clampChains(k int) int {
	if k < 1 {
		return 1
	}
	if k > 12 {
		return 12
	}
	return k
}

// Address-space layout (per thread; the machine offsets each thread into
// a disjoint region).
const (
	codeBase  = 0x0040_0000 // static code
	heapBase  = 0x1000_0000 // ordinary working-set accesses
	chaseBase = 0x4000_0000 // pointer-chase region
	burstBase = 0x8000_0000 // miss-burst region
	chaseSize = 64 << 20    // far larger than L2: chases always miss
	burstSize = 64 << 20
)

// branchState is the per-static-branch pattern state. Each basic block
// ends in one conditional branch with a fixed taken-target (as real
// conditional branches have) and a periodic outcome pattern perturbed by
// the model's BranchNoise.
type branchState struct {
	period  uint16 // pattern period
	takenLo uint16 // taken for counter % period < takenLo
	counter uint16
	target  uint16 // taken-target block, fixed at construction
}

// Gen generates an application model's instruction stream. It implements
// isa.Stream. Copying a Gen (or calling CloneStream) checkpoints it.
type Gen struct {
	prof Profile
	rng  rng.Rng

	seq   uint64
	limit uint64 // 0 = unbounded

	// static code layout
	branches []branchState // one per block

	// dynamic position
	block     int    // current basic block
	blockPos  int    // instructions emitted in current block
	blockLen  int    // length of current block (varies around BlockLen)
	destInt   int8   // round-robin integer destination cursor
	destFp    int8   // round-robin FP destination cursor
	lastInt   int8   // most recent integer destination (chain deps)
	lastFp    int8   // most recent FP destination
	chaseIdx  uint32 // rotates chase loads across the parallel chains
	strideCur uint64 // sequential-access cursor
	burstLeft int    // independent far loads remaining in current burst

	pole bool // false = A, true = B (current phase pole)
}

// New returns a generator for profile p producing an unbounded stream.
func New(p Profile) *Gen {
	return NewLimited(p, 0)
}

// NewLimited returns a generator that ends after limit instructions
// (0 = unbounded).
func NewLimited(p Profile, limit uint64) *Gen {
	p = p.Defaulted()
	g := &Gen{
		prof:    p,
		rng:     rng.New(p.Seed),
		limit:   limit,
		destInt: 1,
		destFp:  1,
	}
	g.branches = make([]branchState, p.Blocks)
	half := p.Blocks / 2
	for i := range g.branches {
		// Compose a realistic static branch population: mostly loop
		// back-edges (taken except once per long period) and strongly
		// biased branches, which 2-bit counters predict well, plus some
		// short-pattern branches that exercise gshare. The model's
		// BranchNoise knob injects the residual mispredictions on top.
		// The fixed taken-target stays within the block's half of the
		// code so the two phase poles execute disjoint block sets.
		var period, takenLo uint16
		switch r := g.rng.Float64(); {
		case r < 0.55: // loop back-edge
			period = uint16(8 + g.rng.Intn(25))
			takenLo = period - 1
		case r < 0.80: // strongly biased
			period = 2
			if g.rng.Bool(0.5) {
				takenLo = 2 // always taken
			} else {
				takenLo = 0 // never taken
			}
		default: // short pattern
			period = uint16(2 + g.rng.Intn(6))
			takenLo = uint16(g.rng.Intn(int(period) + 1))
		}
		lo, span := 0, p.Blocks
		if half > 0 {
			span = half
			if i >= half {
				lo = half
				span = p.Blocks - half
			}
		}
		g.branches[i] = branchState{
			period:  period,
			takenLo: takenLo,
			target:  uint16(lo + g.rng.Intn(span)),
		}
	}
	g.blockLen = g.nextBlockLen()
	return g
}

// CloneStream implements isa.Stream.
func (g *Gen) CloneStream() isa.Stream {
	c := *g
	c.branches = make([]branchState, len(g.branches))
	copy(c.branches, g.branches)
	return &c
}

// CloneStreamInto implements isa.ReusableStream: it overwrites dst (a
// prior clone of this generator) in place, reusing its branch-state
// array, so checkpoint recycling performs no allocation.
func (g *Gen) CloneStreamInto(dst isa.Stream) bool {
	d, ok := dst.(*Gen)
	if !ok || d == g || len(d.branches) != len(g.branches) {
		return false
	}
	branches := d.branches
	*d = *g
	d.branches = branches
	copy(d.branches, g.branches)
	return true
}

// Profile returns the generator's (defaulted) profile.
func (g *Gen) Profile() Profile { return g.prof }

// Seq returns the number of instructions generated so far.
func (g *Gen) Seq() uint64 { return g.seq }

func (g *Gen) nextBlockLen() int {
	n := g.prof.BlockLen/2 + g.rng.Intn(g.prof.BlockLen+1)
	if n < 2 {
		n = 2
	}
	return n
}

// params returns the currently active behaviour pole.
func (g *Gen) params() *Params {
	if g.pole {
		return &g.prof.B
	}
	return &g.prof.A
}

// phaseHash deterministically maps a segment index to a pseudo-random
// 64-bit value, independent of the generator's RNG stream so that phase
// schedules never perturb instruction-level randomness.
func (g *Gen) phaseHash(seg uint64) uint64 {
	x := seg ^ (g.prof.Seed * 0x9e3779b97f4a7c15)
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x
}

// updatePhase recomputes the active pole from the instruction count.
func (g *Gen) updatePhase() {
	if g.prof.Kind == PhaseNone {
		g.pole = false
		return
	}
	seg := g.seq / g.prof.SegLen
	switch g.prof.Kind {
	case PhaseHigh:
		// Switch poles on most segment boundaries: pole is a hash bit of
		// the segment index, so consecutive segments usually differ.
		g.pole = g.phaseHash(seg)&1 == 1
	case PhaseLow:
		// Hold each pole for a run of ~6 segments.
		g.pole = g.phaseHash(seg/6)&1 == 1
	}
}

// blockWindow returns the half of the static blocks the current pole
// executes in, so that phases have distinct Basic Block Vector
// signatures (required for Section 5's phase detection to have a signal).
func (g *Gen) blockWindow() (lo, hi int) {
	half := g.prof.Blocks / 2
	if half == 0 {
		return 0, g.prof.Blocks
	}
	if g.pole {
		return half, g.prof.Blocks
	}
	return 0, half
}

// srcFar picks a source register written long ago (very likely ready),
// modelling an ILP-friendly operand.
func (g *Gen) srcFar(fp bool) int8 {
	cursor := g.destInt
	if fp {
		cursor = g.destFp
	}
	// Registers 1..27 are general; reach 8..24 writes back from the
	// cursor so the producer has almost certainly completed.
	off := int8(8 + g.rng.Intn(17))
	r := cursor - off
	for r < 1 {
		r += 27
	}
	return r
}

// srcStable returns an operand that is ready with probability pReady:
// register 0 models constants, immediates, and stable base registers
// (stack/global pointers, loop bases) that real code reads pervasively —
// without it, the 32-register file would chain every instruction to a
// recent producer and cap the useful window at ~100 instructions,
// destroying the large-window behaviour the MEM benchmarks exhibit.
// When the operand is not stable, it binds to a recent producer half the
// time (a genuine serialisation) and an old register otherwise.
func (g *Gen) srcStable(fp bool, pReady float64) int8 {
	if g.rng.Float64() < pReady {
		return 0
	}
	if g.rng.Bool(0.5) {
		last := g.lastInt
		if fp {
			last = g.lastFp
		}
		if last >= 1 {
			return last
		}
	}
	return g.srcFar(fp)
}

// allocDest advances the destination cursor, skipping reserved registers.
func (g *Gen) allocDest(fp bool) int8 {
	if fp {
		g.destFp++
		if g.destFp > 27 {
			g.destFp = 1
		}
		g.lastFp = g.destFp
		return g.destFp
	}
	g.destInt++
	if g.destInt > 27 {
		g.destInt = 1
	}
	g.lastInt = g.destInt
	return g.destInt
}

// memAddr produces the effective address of an ordinary (non-chase,
// non-burst) access under the active pole.
func (g *Gen) memAddr(p *Params) uint64 {
	ws := p.WorkingSet
	if ws < 64 {
		ws = 64
	}
	if g.rng.Float64() < p.StridePct {
		g.strideCur += p.Stride
		if g.strideCur >= ws {
			g.strideCur = 0
		}
		return heapBase + g.strideCur
	}
	return heapBase + (g.rng.Uint64() % ws &^ 7)
}

// Next implements isa.Stream.
func (g *Gen) Next(out *isa.Inst) bool {
	if g.limit != 0 && g.seq >= g.limit {
		return false
	}
	if g.prof.Kind != PhaseNone && g.seq%g.prof.SegLen == 0 {
		g.updatePhase()
	}
	p := g.params()

	*out = isa.Inst{
		Seq:  g.seq,
		PC:   codeBase + uint64(g.block)*256 + uint64(g.blockPos)*4,
		BB:   uint16(g.block),
		Dest: isa.NoReg,
		Src1: isa.NoReg,
		Src2: isa.NoReg,
	}
	g.seq++

	// Block-ending branch?
	if g.blockPos == g.blockLen-1 {
		g.emitBranch(out, p)
		g.blockPos = 0
		g.blockLen = g.nextBlockLen()
		return true
	}
	g.blockPos++

	// Inside a miss burst: emit independent far loads until it drains.
	if g.burstLeft > 0 {
		g.burstLeft--
		out.Class = isa.Load
		out.Addr = burstBase + (g.rng.Uint64() % burstSize &^ 7)
		out.Src1 = 0 // address from a stable base: bursts are independent
		out.Dest = g.allocDest(false)
		return true
	}
	if p.MissBurstProb > 0 && g.rng.Float64() < p.MissBurstProb {
		g.burstLeft = g.rng.Geometric(p.BurstLen)
	}

	r := g.rng.Float64()
	switch {
	case r < p.FracLoad:
		g.emitLoad(out, p)
	case r < p.FracLoad+p.FracStore:
		g.emitStore(out, p)
	default:
		g.emitCompute(out, p)
	}
	return true
}

func (g *Gen) emitLoad(out *isa.Inst, p *Params) {
	out.Class = isa.Load
	if p.PointerChase > 0 && g.rng.Float64() < p.PointerChase {
		// Serially dependent miss: the address comes from this chain's
		// previous chase load; the destination feeds the chain's next
		// one. Registers 31 down to 20 are reserved for the chains.
		reg := int8(31 - int(g.chaseIdx)%p.ChaseChains)
		g.chaseIdx++
		out.Src1 = reg
		out.Dest = reg
		out.Addr = chaseBase + (g.rng.Uint64() % chaseSize &^ 7)
		return
	}
	out.Addr = g.memAddr(p)
	out.Src1 = g.srcStable(false, p.AddrReady)
	fp := g.rng.Float64() < p.FracFp
	out.FpDest = fp
	out.Dest = g.allocDest(fp)
}

func (g *Gen) emitStore(out *isa.Inst, p *Params) {
	out.Class = isa.Store
	out.Addr = g.memAddr(p)
	out.Src1 = g.srcStable(false, p.AddrReady) // address operand
	// Data operand: usually the most recent result, binding stores into
	// the dependence fabric.
	if g.rng.Float64() < 0.5 {
		out.Src2 = g.lastInt
	} else {
		out.Src2 = g.srcFar(false)
	}
	if out.Src2 < 1 {
		out.Src2 = 1
	}
}

func (g *Gen) emitCompute(out *isa.Inst, p *Params) {
	fp := g.rng.Float64() < p.FracFp
	muldiv := g.rng.Float64() < p.FracMulDiv
	switch {
	case fp && muldiv:
		if g.rng.Float64() < 0.25 {
			out.Class = isa.FpDiv
		} else {
			out.Class = isa.FpMul
		}
	case fp:
		out.Class = isa.FpAlu
	case muldiv:
		if g.rng.Float64() < 0.25 {
			out.Class = isa.IntDiv
		} else {
			out.Class = isa.IntMul
		}
	default:
		out.Class = isa.IntAlu
	}

	last := g.lastInt
	if fp {
		last = g.lastFp
	}
	if last >= 1 && g.rng.Float64() < p.ChainDep {
		out.Src1 = last // serial chain
	} else {
		out.Src1 = g.srcStable(fp, 0.5)
	}
	if g.rng.Float64() < 0.5 {
		out.Src2 = g.srcStable(fp, 0.5)
	}
	out.Dest = g.allocDest(fp)
}

func (g *Gen) emitBranch(out *isa.Inst, p *Params) {
	out.Class = isa.Branch
	b := &g.branches[g.block]
	taken := b.counter%b.period < b.takenLo
	b.counter++
	if p.BranchNoise > 0 && g.rng.Float64() < p.BranchNoise {
		taken = !taken
	}
	out.Taken = taken

	lo, hi := g.blockWindow()
	span := hi - lo
	rel := g.block - lo
	if rel < 0 || rel >= span {
		// A phase switch moved the block window; re-enter it.
		rel = 0
	}
	var next int
	if taken {
		next = int(b.target)
		if next < lo || next >= hi {
			next = lo // migrate into the new pole's window
		}
	} else {
		next = lo + (rel+1)%span
	}
	out.Target = codeBase + uint64(next)*256
	g.block = next
}

var _ isa.Stream = (*Gen)(nil)
