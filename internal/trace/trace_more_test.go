package trace

import (
	"testing"

	"smthill/internal/isa"
)

func TestChaseChainsRotate(t *testing.T) {
	p := testProfile()
	p.A.PointerChase = 1.0
	p.A.ChaseChains = 4
	p.A.MissBurstProb = 0
	g := New(p)
	regs := map[int8]int{}
	var in isa.Inst
	for i := 0; i < 5000; i++ {
		g.Next(&in)
		if in.Class == isa.Load {
			regs[in.Dest]++
		}
	}
	if len(regs) != 4 {
		t.Fatalf("chase loads used %d registers, want 4 chains", len(regs))
	}
	for r := range regs {
		if r < 28 || r > 31 {
			t.Fatalf("chase register %d outside the reserved range", r)
		}
	}
}

func TestChaseChainsClamped(t *testing.T) {
	p := Profile{Seed: 1, A: Params{PointerChase: 1, ChaseChains: 99, FracLoad: 0.5}}
	g := New(p)
	if g.Profile().A.ChaseChains != 12 {
		t.Fatalf("ChaseChains clamped to %d", g.Profile().A.ChaseChains)
	}
	p.A.ChaseChains = -3
	if New(p).Profile().A.ChaseChains != 1 {
		t.Fatal("negative ChaseChains not clamped to 1")
	}
}

func TestAddrReadyControlsOperands(t *testing.T) {
	count := func(addrReady float64) (stable, total int) {
		p := testProfile()
		p.A.PointerChase = 0
		p.A.MissBurstProb = 0
		p.A.AddrReady = addrReady
		g := New(p)
		var in isa.Inst
		for i := 0; i < 50000; i++ {
			g.Next(&in)
			if in.Class == isa.Load {
				total++
				if in.Src1 == 0 {
					stable++
				}
			}
		}
		return stable, total
	}
	loStable, loTotal := count(0.1)
	hiStable, hiTotal := count(0.9)
	loFrac := float64(loStable) / float64(loTotal)
	hiFrac := float64(hiStable) / float64(hiTotal)
	if loFrac > 0.2 || hiFrac < 0.8 {
		t.Fatalf("AddrReady not respected: low=%.2f high=%.2f", loFrac, hiFrac)
	}
}

func TestDefaultedAddrReady(t *testing.T) {
	var p Profile
	d := p.Defaulted()
	if d.A.AddrReady != 0.6 || d.B.AddrReady != 0.6 {
		t.Fatalf("AddrReady defaults = %f/%f", d.A.AddrReady, d.B.AddrReady)
	}
	p.A.AddrReady = 0.25
	d = p.Defaulted()
	if d.B.AddrReady != 0.25 {
		t.Fatal("pole B did not inherit pole A's AddrReady")
	}
}

func TestStridePatternHasSpatialLocality(t *testing.T) {
	p := testProfile()
	p.A.StridePct = 1.0
	p.A.PointerChase = 0
	p.A.MissBurstProb = 0
	p.A.Stride = 8
	p.A.WorkingSet = 1 << 20
	g := New(p)
	var prev uint64
	sequential, total := 0, 0
	var in isa.Inst
	for i := 0; i < 30000; i++ {
		g.Next(&in)
		if in.Class == isa.Load || in.Class == isa.Store {
			if prev != 0 && (in.Addr == prev+8 || in.Addr < prev) {
				sequential++
			}
			prev = in.Addr
			total++
		}
	}
	if frac := float64(sequential) / float64(total); frac < 0.95 {
		t.Fatalf("stride-only accesses sequential fraction %.2f", frac)
	}
}

func TestBranchTargetsAreStable(t *testing.T) {
	g := New(testProfile())
	targets := map[uint16]map[uint64]bool{}
	var in isa.Inst
	for i := 0; i < 200000; i++ {
		g.Next(&in)
		if in.Class == isa.Branch && in.Taken {
			if targets[in.BB] == nil {
				targets[in.BB] = map[uint64]bool{}
			}
			targets[in.BB][in.Target] = true
		}
	}
	for bb, set := range targets {
		if len(set) > 1 {
			t.Fatalf("block %d's branch has %d distinct taken-targets", bb, len(set))
		}
	}
}

func TestCloneAfterPhaseSwitch(t *testing.T) {
	p := testProfile()
	p.Kind = PhaseHigh
	p.SegLen = 3000
	g := New(p)
	collect(g, 10_000) // cross several segment boundaries
	c := g.CloneStream().(*Gen)
	a := collect(g, 8000)
	b := collect(c, 8000)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("clone diverged at %d after phase switches", i)
		}
	}
}
