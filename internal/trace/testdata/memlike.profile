# A memory-intensive model: large working set, pointer chasing, and
# long-latency miss bursts, in the style of the paper's art/mcf class.
name=memlike seed=42 seglen=80000
a.load=0.34 a.store=0.12 a.branch=0.12
a.ws=4194304 a.stridepct=0.2 a.stride=64
a.chase=0.5 a.chains=2
a.burstprob=0.08 a.burstlen=4
a.noise=0.02 a.addrready=0.5
