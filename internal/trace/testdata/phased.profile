# A high-frequency phased model alternating between a compute pole (a)
# and a memory pole (b) every segment.
name=phased seed=99 kind=high seglen=60000 blocks=96 blocklen=12
a.load=0.25 a.branch=0.15 a.ws=16384 a.stridepct=0.95
b.load=0.4 b.store=0.1 b.branch=0.1 b.ws=8388608 b.chase=0.6 b.chains=3
