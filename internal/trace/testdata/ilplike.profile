# A high-ILP model: cache-resident working set, mostly strided access,
# shallow dependence chains.
name=ilplike seed=7
a.load=0.26 a.store=0.1 a.branch=0.14 a.fp=0.3 a.muldiv=0.05
a.chain=0.25 a.ws=24576 a.stridepct=0.9 a.stride=8
a.noise=0.01 a.addrready=0.8
