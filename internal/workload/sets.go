package workload

import (
	"strings"

	"smthill/internal/isa"
	"smthill/internal/pipeline"
	"smthill/internal/trace"
)

// Workload is one multiprogrammed combination of catalog applications.
type Workload struct {
	// Apps lists the member application names in context order.
	Apps []string
	// Group is the Table 3 group label ("ILP2", "MIX4", ...).
	Group string

	// profiles, when non-nil, overrides the catalog lookup with directly
	// supplied application models (built by Custom).
	profiles []trace.Profile
}

// Name returns the paper's hyphenated workload name, e.g. "art-mcf".
func (w Workload) Name() string { return strings.Join(w.Apps, "-") }

// Threads returns the hardware context count the workload needs.
func (w Workload) Threads() int { return len(w.Apps) }

// Profiles returns the member application profiles in context order:
// directly supplied models for a Custom workload, catalog lookups
// otherwise.
func (w Workload) Profiles() []trace.Profile {
	if w.profiles != nil {
		return append([]trace.Profile(nil), w.profiles...)
	}
	out := make([]trace.Profile, len(w.Apps))
	for i, n := range w.Apps {
		out[i] = Get(n).Profile
	}
	return out
}

// Streams builds fresh instruction streams for the workload.
func (w Workload) Streams() []isa.Stream {
	out := make([]isa.Stream, len(w.Apps))
	for i, p := range w.Profiles() {
		out[i] = trace.New(p)
	}
	return out
}

// CheckMachines, when set, enables per-cycle invariant checking
// (pipeline.SetInvariantChecks) on every machine NewMachine builds.
// Clones inherit the setting, so one switch covers every trial machine a
// checkpoint-based searcher derives from the original. It is a
// process-wide debug toggle (cmd/experiments -check); set it before
// starting any simulation, never concurrently with one.
var CheckMachines bool

// NewMachine builds a machine running the workload under the given
// policy (nil = plain ICOUNT) with the paper's Table 1 configuration.
func (w Workload) NewMachine(pol pipeline.Policy) *pipeline.Machine {
	m := pipeline.New(pipeline.DefaultConfig(w.Threads()), w.Streams(), pol)
	if CheckMachines {
		m.SetInvariantChecks(true)
	}
	return m
}

// RscSum returns the workload's summed per-application resource
// requirement classes (Table 3's "Rsc" column analogue).
func (w Workload) RscSum() int {
	sum := 0
	for _, n := range w.Apps {
		sum += Get(n).RscClass
	}
	return sum
}

// The Table 3 workload groups. A few 4-thread entries are illegible in
// the archival copy of the paper; those are reconstructed from the same
// benchmark pools and group definitions (high-ILP members for ILP4, a
// 2+2 split for MIX4) and flagged in DESIGN.md.
func mk(group string, lists ...string) []Workload {
	out := make([]Workload, len(lists))
	for i, l := range lists {
		out[i] = Workload{Apps: strings.Split(l, " "), Group: group}
	}
	return out
}

// ILP2 returns the 2-thread high-ILP workloads.
func ILP2() []Workload {
	return mk("ILP2",
		"apsi eon",
		"fma3d gcc",
		"gzip vortex",
		"gzip bzip2",
		"wupwise gcc",
		"fma3d mesa",
		"apsi gcc",
	)
}

// MIX2 returns the 2-thread mixed workloads.
func MIX2() []Workload {
	return mk("MIX2",
		"applu vortex",
		"art gzip",
		"wupwise twolf",
		"lucas crafty",
		"mcf eon",
		"twolf apsi",
		"equake bzip2",
	)
}

// MEM2 returns the 2-thread memory-intensive workloads.
func MEM2() []Workload {
	return mk("MEM2",
		"applu ammp",
		"art mcf",
		"swim twolf",
		"mcf twolf",
		"art vpr",
		"art twolf",
		"swim mcf",
	)
}

// ILP4 returns the 4-thread high-ILP workloads.
func ILP4() []Workload {
	return mk("ILP4",
		"apsi eon fma3d gcc",
		"apsi eon gzip vortex",
		"fma3d gcc gzip vortex",
		"mesa gzip bzip2 eon",
		"crafty fma3d apsi vortex",
		"apsi gap wupwise perlbmk",
		"fma3d mesa perlbmk bzip2",
	)
}

// MIX4 returns the 4-thread mixed workloads.
func MIX4() []Workload {
	return mk("MIX4",
		"ammp applu apsi eon",
		"art mcf fma3d gcc",
		"swim twolf gzip vortex",
		"gzip twolf bzip2 mcf",
		"mcf mesa lucas gzip",
		"art gap twolf crafty",
		"swim mesa vpr gzip",
	)
}

// MEM4 returns the 4-thread memory-intensive workloads.
func MEM4() []Workload {
	return mk("MEM4",
		"ammp applu art mcf",
		"art mcf swim twolf",
		"ammp applu swim twolf",
		"mcf twolf vpr parser",
		"art twolf equake mcf",
		"equake parser mcf lucas",
		"art mcf vpr swim",
	)
}

// TwoThread returns the 21 2-thread workloads in Table 3 order.
func TwoThread() []Workload {
	out := append([]Workload{}, ILP2()...)
	out = append(out, MIX2()...)
	return append(out, MEM2()...)
}

// FourThread returns the 21 4-thread workloads in Table 3 order.
func FourThread() []Workload {
	out := append([]Workload{}, ILP4()...)
	out = append(out, MIX4()...)
	return append(out, MEM4()...)
}

// All returns all 42 workloads.
func All() []Workload {
	return append(TwoThread(), FourThread()...)
}

// Groups returns the six group names in presentation order.
func Groups() []string { return []string{"ILP2", "MIX2", "MEM2", "ILP4", "MIX4", "MEM4"} }

// ByGroup returns the workloads of one group.
func ByGroup(name string) []Workload {
	switch name {
	case "ILP2":
		return ILP2()
	case "MIX2":
		return MIX2()
	case "MEM2":
		return MEM2()
	case "ILP4":
		return ILP4()
	case "MIX4":
		return MIX4()
	case "MEM4":
		return MEM4()
	default:
		panic("workload: unknown group " + name)
	}
}

// ByName returns the workload with the given hyphenated name, searching
// all 42.
func ByName(name string) Workload {
	for _, w := range All() {
		if w.Name() == name {
			return w
		}
	}
	panic("workload: unknown workload " + name)
}
