package workload

import (
	"fmt"
	"strings"

	"smthill/internal/trace"
)

// maxParseThreads bounds the context count a parsed workload may request;
// it mirrors the pipeline's hardware-context ceiling so errors surface at
// parse time instead of as a machine-construction panic.
const maxParseThreads = 16

// Parse resolves a workload specification without panicking: either a
// Table 3 workload name ("art-mcf") or a comma-separated list of catalog
// application names ("art,gzip,mcf,bzip2"; a single name runs one
// thread). Unknown names produce an error listing the valid choices, so
// command-line typos fail with guidance instead of a stack trace.
func Parse(spec string) (Workload, error) {
	spec = strings.TrimSpace(spec)
	if spec == "" {
		return Workload{}, fmt.Errorf("workload: empty specification")
	}
	if !strings.Contains(spec, ",") {
		for _, w := range All() {
			if w.Name() == spec {
				return w, nil
			}
		}
	}
	cat := Catalog()
	apps := strings.Split(spec, ",")
	if len(apps) > maxParseThreads {
		return Workload{}, fmt.Errorf("workload: %d applications exceed the %d-context machine", len(apps), maxParseThreads)
	}
	for _, a := range apps {
		if _, ok := cat[a]; !ok {
			return Workload{}, fmt.Errorf("workload: unknown name %q; valid workloads are Table 3 names (e.g. %s) and comma-separated lists of applications: %s",
				a, All()[0].Name(), strings.Join(Names(), " "))
		}
	}
	group := "custom"
	if len(apps) == 1 {
		group = "solo"
	}
	return Workload{Apps: apps, Group: group}, nil
}

// Custom builds a workload directly from application profiles, bypassing
// the catalog — the hook for running externally authored .profile models
// (see trace.ParseProfile) on the standard machine configuration. The
// workload's Apps take the profile names.
func Custom(profiles []trace.Profile) (Workload, error) {
	if len(profiles) == 0 {
		return Workload{}, fmt.Errorf("workload: no profiles")
	}
	if len(profiles) > maxParseThreads {
		return Workload{}, fmt.Errorf("workload: %d profiles exceed the %d-context machine", len(profiles), maxParseThreads)
	}
	w := Workload{Group: "custom", profiles: append([]trace.Profile(nil), profiles...)}
	for i, p := range profiles {
		name := p.Name
		if name == "" {
			name = fmt.Sprintf("app%d", i)
		}
		w.Apps = append(w.Apps, name)
	}
	return w, nil
}
