package workload

import (
	"reflect"
	"strings"
	"testing"

	"smthill/internal/isa"
	"smthill/internal/trace"
)

func TestParseTable3Name(t *testing.T) {
	w, err := Parse("art-mcf")
	if err != nil {
		t.Fatal(err)
	}
	if w.Group != "MEM2" || !reflect.DeepEqual(w.Apps, []string{"art", "mcf"}) {
		t.Errorf("Parse(art-mcf) = %+v", w)
	}
}

func TestParseAppList(t *testing.T) {
	w, err := Parse("art,gzip,mcf,bzip2")
	if err != nil {
		t.Fatal(err)
	}
	if w.Threads() != 4 || w.Group != "custom" {
		t.Errorf("Parse list = %+v", w)
	}
	if got := len(w.Profiles()); got != 4 {
		t.Errorf("Profiles() returned %d entries", got)
	}

	solo, err := Parse("mcf")
	if err != nil {
		t.Fatal(err)
	}
	if solo.Threads() != 1 || solo.Group != "solo" {
		t.Errorf("Parse(mcf) = %+v", solo)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		in, want string
	}{
		{"", "empty"},
		{"  ", "empty"},
		{"nosuch", "unknown name"},
		{"art,nosuch", "unknown name"},
		{"art-nosuch", "unknown name"}, // not a Table 3 name, not an app
		{strings.Repeat("art,", 16) + "art", "exceed"},
	}
	for _, c := range cases {
		if _, err := Parse(c.in); err == nil {
			t.Errorf("Parse(%q) succeeded, want error containing %q", c.in, c.want)
		} else if !strings.Contains(err.Error(), c.want) {
			t.Errorf("Parse(%q) = %v, want error containing %q", c.in, err, c.want)
		}
	}
}

func TestCustomWorkload(t *testing.T) {
	p1, err := trace.ParseProfile("name=left seed=1 a.load=0.3 a.ws=16384")
	if err != nil {
		t.Fatal(err)
	}
	p2, err := trace.ParseProfile("seed=2 b.load=0.4") // unnamed
	if err != nil {
		t.Fatal(err)
	}
	w, err := Custom([]trace.Profile{p1, p2})
	if err != nil {
		t.Fatal(err)
	}
	if w.Name() != "left-app1" {
		t.Errorf("Name() = %q", w.Name())
	}
	got := w.Profiles()
	if len(got) != 2 || got[0] != p1 || got[1] != p2 {
		t.Errorf("Profiles() did not return the supplied profiles: %+v", got)
	}
	streams := w.Streams()
	var in isa.Inst
	for i, s := range streams {
		if !s.Next(&in) {
			t.Fatalf("stream %d produced nothing", i)
		}
	}

	if _, err := Custom(nil); err == nil {
		t.Error("Custom(nil) succeeded")
	}
	if _, err := Custom(make([]trace.Profile, 17)); err == nil {
		t.Error("Custom of 17 profiles succeeded")
	}
}

// FuzzParseWorkload fuzzes the workload-spec resolver: any accepted spec
// must produce a runnable, deterministic workload, and parsing must be
// stable (same spec, same workload).
func FuzzParseWorkload(f *testing.F) {
	f.Add("art-mcf")
	f.Add("gzip-bzip2")
	f.Add("art,gzip,mcf,bzip2")
	f.Add("mcf")
	f.Add("")
	f.Add("nosuch")
	f.Add("art,,gzip")
	f.Fuzz(func(t *testing.T, s string) {
		w, err := Parse(s)
		if err != nil {
			return
		}
		if w.Threads() < 1 || w.Threads() > 16 {
			t.Fatalf("Parse(%q) accepted %d threads", s, w.Threads())
		}
		if len(w.Profiles()) != w.Threads() {
			t.Fatalf("Parse(%q): %d profiles for %d threads", s, len(w.Profiles()), w.Threads())
		}
		again, err := Parse(s)
		if err != nil || !reflect.DeepEqual(again, w) {
			t.Fatalf("Parse(%q) not stable: %+v vs %+v (err=%v)", s, again, w, err)
		}
	})
}
