package workload

import (
	"testing"

	"smthill/internal/trace"
)

// validateParams sanity-checks one behaviour pole.
func validateParams(t *testing.T, app, pole string, p trace.Params) {
	t.Helper()
	probs := map[string]float64{
		"FracLoad": p.FracLoad, "FracStore": p.FracStore, "FracFp": p.FracFp,
		"FracMulDiv": p.FracMulDiv, "ChainDep": p.ChainDep,
		"StridePct": p.StridePct, "PointerChase": p.PointerChase,
		"MissBurstProb": p.MissBurstProb, "BranchNoise": p.BranchNoise,
		"AddrReady": p.AddrReady,
	}
	for name, v := range probs {
		if v < 0 || v > 1 {
			t.Errorf("%s pole %s: %s = %f outside [0,1]", app, pole, name, v)
		}
	}
	if p.FracLoad+p.FracStore > 0.8 {
		t.Errorf("%s pole %s: memory fraction %.2f leaves too little compute",
			app, pole, p.FracLoad+p.FracStore)
	}
	if p.BurstLen < 0 {
		t.Errorf("%s pole %s: negative burst length", app, pole)
	}
}

func TestAllProfilesAreValid(t *testing.T) {
	for name, app := range Catalog() {
		if app.Name != name {
			t.Errorf("catalog key %q maps to app named %q", name, app.Name)
		}
		p := app.Profile.Defaulted()
		validateParams(t, name, "A", p.A)
		if p.Kind != trace.PhaseNone {
			validateParams(t, name, "B", p.B)
			if p.SegLen == 0 {
				t.Errorf("%s has phase variation but zero segment length", name)
			}
		}
		if app.RscClass < 32 || app.RscClass > 256 {
			t.Errorf("%s RscClass %d implausible", name, app.RscClass)
		}
	}
}

func TestRscClassOrderingsWithinTypes(t *testing.T) {
	// The paper's Table 2 orderings the calibration targets.
	leq := func(a, b string) {
		if Get(a).RscClass > Get(b).RscClass {
			t.Errorf("RscClass(%s)=%d > RscClass(%s)=%d", a, Get(a).RscClass, b, Get(b).RscClass)
		}
	}
	leq("perlbmk", "bzip2")
	leq("bzip2", "eon")
	leq("gzip", "parser")
	leq("vortex", "gcc")
	leq("crafty", "gap")
	leq("fma3d", "mesa")
	leq("mesa", "apsi")
	leq("apsi", "wupwise")
	leq("lucas", "mcf")
	leq("equake", "applu")
	leq("applu", "ammp")
	leq("art", "swim")
}

func TestEveryAppRunsSolo(t *testing.T) {
	if testing.Short() {
		t.Skip("long smoke test")
	}
	for _, name := range Names() {
		w := Workload{Apps: []string{name}}
		m := w.NewMachine(nil)
		m.CycleN(30_000)
		if m.Committed(0) < 500 {
			t.Errorf("%s committed only %d instructions in 30K cycles", name, m.Committed(0))
		}
	}
}

func TestProfileStreamsAreIndependent(t *testing.T) {
	// Two instances of the same app in different machines replay the
	// same stream (determinism across Workload constructions).
	a := ByName("art-mcf").Streams()
	b := ByName("art-mcf").Streams()
	for i := 0; i < 2; i++ {
		ga, gb := a[i].(*trace.Gen), b[i].(*trace.Gen)
		if ga == gb {
			t.Fatal("workload instances share a generator")
		}
	}
}
