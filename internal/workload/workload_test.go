package workload

import (
	"testing"

	"smthill/internal/trace"
)

func TestCatalogHas22Apps(t *testing.T) {
	if got := len(Catalog()); got != 22 {
		t.Fatalf("catalog has %d apps, want 22", got)
	}
}

func TestCatalogSeedsAreDistinct(t *testing.T) {
	seen := map[uint64]string{}
	for name, app := range Catalog() {
		if app.Profile.Seed == 0 {
			t.Fatalf("%s has zero seed", name)
		}
		if other, dup := seen[app.Profile.Seed]; dup {
			t.Fatalf("%s and %s share a seed", name, other)
		}
		seen[app.Profile.Seed] = name
	}
}

func TestCatalogClassesMatchTable2(t *testing.T) {
	wantMem := map[string]bool{
		"equake": true, "vpr": true, "mcf": true, "twolf": true, "art": true,
		"lucas": true, "ammp": true, "swim": true, "applu": true,
	}
	for name, app := range Catalog() {
		if (app.Type == MEM) != wantMem[name] {
			t.Errorf("%s classified %v", name, app.Type)
		}
	}
}

func TestCatalogFreqMatchesTable2(t *testing.T) {
	wantHigh := map[string]bool{
		"vortex": true, "gzip": true, "parser": true, "crafty": true,
		"gcc": true, "vpr": true, "twolf": true, "ammp": true,
	}
	for name, app := range Catalog() {
		kind := app.Profile.Kind
		switch {
		case name == "mcf":
			if kind != trace.PhaseLow {
				t.Errorf("mcf Freq = %v, want Low", kind)
			}
		case wantHigh[name]:
			if kind != trace.PhaseHigh {
				t.Errorf("%s Freq = %v, want High", name, kind)
			}
		default:
			if kind != trace.PhaseNone {
				t.Errorf("%s Freq = %v, want No", name, kind)
			}
		}
	}
}

func TestGetPanicsOnUnknown(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Get on unknown app did not panic")
		}
	}()
	Get("notanapp")
}

func TestSetsShape(t *testing.T) {
	if got := len(TwoThread()); got != 21 {
		t.Fatalf("%d 2-thread workloads, want 21", got)
	}
	if got := len(FourThread()); got != 21 {
		t.Fatalf("%d 4-thread workloads, want 21", got)
	}
	if got := len(All()); got != 42 {
		t.Fatalf("%d workloads, want 42", got)
	}
	for _, g := range Groups() {
		if got := len(ByGroup(g)); got != 7 {
			t.Fatalf("group %s has %d workloads, want 7", g, got)
		}
	}
}

func TestWorkloadMembersExist(t *testing.T) {
	for _, w := range All() {
		want := 2
		if w.Group[len(w.Group)-1] == '4' {
			want = 4
		}
		if w.Threads() != want {
			t.Errorf("%s (%s) has %d members", w.Name(), w.Group, w.Threads())
		}
		seen := map[string]bool{}
		for _, a := range w.Apps {
			Get(a) // panics on unknown names
			if seen[a] {
				t.Errorf("%s repeats %s", w.Name(), a)
			}
			seen[a] = true
		}
	}
}

func TestGroupTypesRespectDefinitions(t *testing.T) {
	// ILP groups contain only ILP members; MEM groups are mostly MEM
	// (the paper's MEM4 includes parser); MIX groups contain both.
	for _, w := range ILP2() {
		for _, a := range w.Apps {
			if Get(a).Type != ILP {
				t.Errorf("ILP2 workload %s contains MEM app %s", w.Name(), a)
			}
		}
	}
	for _, w := range ILP4() {
		for _, a := range w.Apps {
			if Get(a).Type != ILP {
				t.Errorf("ILP4 workload %s contains MEM app %s", w.Name(), a)
			}
		}
	}
	for _, grp := range [][]Workload{MIX2(), MIX4()} {
		for _, w := range grp {
			hasILP, hasMEM := false, false
			for _, a := range w.Apps {
				if Get(a).Type == ILP {
					hasILP = true
				} else {
					hasMEM = true
				}
			}
			if !hasILP || !hasMEM {
				t.Errorf("MIX workload %s is not mixed", w.Name())
			}
		}
	}
	for _, grp := range [][]Workload{MEM2(), MEM4()} {
		for _, w := range grp {
			mem := 0
			for _, a := range w.Apps {
				if Get(a).Type == MEM {
					mem++
				}
			}
			if mem*2 < len(w.Apps) {
				t.Errorf("MEM workload %s has only %d MEM members", w.Name(), mem)
			}
		}
	}
}

func TestByName(t *testing.T) {
	w := ByName("art-mcf")
	if w.Group != "MEM2" || w.Apps[0] != "art" || w.Apps[1] != "mcf" {
		t.Fatalf("ByName(art-mcf) = %+v", w)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("unknown workload did not panic")
		}
	}()
	ByName("foo-bar")
}

func TestNewMachineRuns(t *testing.T) {
	m := ByName("art-mcf").NewMachine(nil)
	m.CycleN(5_000)
	if m.Stats().Committed == 0 {
		t.Fatal("workload machine committed nothing")
	}
}

func TestRscSum(t *testing.T) {
	w := ByName("apsi-eon")
	if got := w.RscSum(); got != Get("apsi").RscClass+Get("eon").RscClass {
		t.Fatalf("RscSum = %d", got)
	}
}
