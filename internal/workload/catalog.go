// Package workload provides the synthetic counterparts of the paper's
// experimental setup: 22 application models named after the SPEC CPU2000
// benchmarks of Table 2, and the 42 multiprogrammed workloads of Table 3.
//
// Each application model is a trace.Profile calibrated to reproduce the
// paper's characterisation: its Type (high-ILP vs memory-intensive), its
// resource requirement class ("Rsc" — how many integer rename registers
// it needs to reach 95% of stand-alone performance), and its
// requirement-variation frequency ("Freq": High/Low/No). Absolute IPCs
// differ from SPEC on the authors' testbed; the classes and orderings —
// which drive every result in the paper — are preserved. cmd/appchar
// re-measures the characterisation from the models (the Table 2
// experiment).
package workload

import (
	"sort"

	"smthill/internal/trace"
)

// Class is the paper's benchmark type label.
type Class uint8

const (
	// ILP marks a high-ILP (compute-bound) application.
	ILP Class = iota
	// MEM marks a memory-intensive application.
	MEM
)

// String returns the Table 2 spelling.
func (c Class) String() string {
	if c == MEM {
		return "MEM"
	}
	return "ILP"
}

// App is one catalogued application model.
type App struct {
	// Name is the SPEC benchmark the model is calibrated after.
	Name string
	// Type is the paper's ILP/MEM classification.
	Type Class
	// FP marks floating-point benchmarks (Table 2's Int/FP column).
	FP bool
	// RscClass is the paper's reported resource requirement in integer
	// rename registers (Table 2's "Rsc" column); the models are
	// calibrated so measured requirements follow the same ordering.
	RscClass int
	// Profile is the synthetic model.
	Profile trace.Profile
}

// seedOf derives a stable per-application seed from its name.
func seedOf(name string) uint64 {
	h := uint64(1469598103934665603)
	for i := 0; i < len(name); i++ {
		h ^= uint64(name[i])
		h *= 1099511628211
	}
	return h
}

// Archetype builders. The knobs that matter for the paper:
//   - ChainDep caps ILP (window utility saturates early -> small Rsc).
//   - AddrReady and MissBurstProb/BurstLen control how much memory-level
//     parallelism a larger window exposes (-> large Rsc for MEM apps).
//   - PointerChase creates serial misses (low IPC, modest Rsc).
//   - WorkingSet sets the cache miss rates (ILP: fits DL1; MEM: larger).
//   - Phase poles A/B with different window appetite produce the High/Low
//     requirement variation of Table 2's Freq column.

func intIlp(name string, chain, noise float64, highFreq bool, rsc int) App {
	a := trace.Params{
		FracLoad: 0.23, FracStore: 0.1, FracFp: 0.03, FracMulDiv: 0.05,
		ChainDep: chain, WorkingSet: 32 << 10, StridePct: 0.7,
		BranchNoise: noise,
	}
	p := trace.Profile{Name: name, Seed: seedOf(name), A: a}
	if highFreq {
		p.Kind = trace.PhaseHigh
		p.SegLen = 90_000
		p.B = a
		// The alternate pole needs a smaller window (deeper chains). The
		// contrast is kept moderate: it must move the resource
		// requirement (Table 2's "High" variation) without swamping the
		// Delta-sized performance gradient hill-climbing follows.
		p.B.ChainDep = chain + 0.18
	}
	return App{Name: name, Type: ILP, RscClass: rsc, Profile: p}
}

func fpIlp(name string, ws uint64, chain, noise float64, rsc int) App {
	return App{Name: name, Type: ILP, FP: true, RscClass: rsc, Profile: trace.Profile{
		Name: name, Seed: seedOf(name),
		A: trace.Params{
			FracLoad: 0.24, FracStore: 0.1, FracFp: 0.6, FracMulDiv: 0.2,
			ChainDep: chain, WorkingSet: ws, StridePct: 0.8,
			BranchNoise: noise,
		},
	}}
}

func memStream(name string, fp bool, burst, burstLen, addrReady float64, rsc int) App {
	// Streaming/blocked MEM app: strides through a large array with
	// clustered independent misses (swim/art-like) — the workloads where
	// exploiting memory-level parallelism needs a big partition.
	return App{Name: name, Type: MEM, FP: fp, RscClass: rsc, Profile: trace.Profile{
		Name: name, Seed: seedOf(name),
		A: trace.Params{
			FracLoad: 0.3, FracStore: 0.1, FracFp: fpFrac(fp), FracMulDiv: 0.06,
			ChainDep: 0.12, WorkingSet: 6 << 20, StridePct: 0.7, Stride: 8,
			MissBurstProb: burst, BurstLen: burstLen, AddrReady: addrReady,
			BranchNoise: 0.01,
		},
	}}
}

func memChase(name string, fp bool, chase float64, chains int, ws uint64, rsc int) App {
	// Pointer-bound MEM app (mcf/equake/applu-like): misses come from a
	// bounded set of parallel dependent chains, so the useful window —
	// and hence the resource requirement — saturates at a size set by
	// the chain count.
	return App{Name: name, Type: MEM, FP: fp, RscClass: rsc, Profile: trace.Profile{
		Name: name, Seed: seedOf(name),
		A: trace.Params{
			FracLoad: 0.3, FracStore: 0.1, FracFp: fpFrac(fp), FracMulDiv: 0.05,
			ChainDep: 0.2, WorkingSet: ws, StridePct: 0.5,
			PointerChase: chase, ChaseChains: chains, AddrReady: 0.1,
			BranchNoise: 0.02,
		},
	}}
}

func memRandom(name string, fp bool, addrReady, bBurst float64, rsc int) App {
	// Irregular MEM app (twolf/vpr/ammp-like): random accesses over a
	// multi-megabyte set, mild pointer chasing, poor branch prediction,
	// high-frequency alternation with an MLP-rich pole.
	a := trace.Params{
		FracLoad: 0.28, FracStore: 0.12, FracFp: fpFrac(fp), FracMulDiv: 0.05,
		ChainDep: 0.22, WorkingSet: 3 << 20, StridePct: 0.25,
		PointerChase: 0.15, ChaseChains: 9, MissBurstProb: 0.004, BurstLen: 4,
		AddrReady:   addrReady,
		BranchNoise: 0.05,
	}
	p := trace.Profile{Name: name, Seed: seedOf(name), A: a,
		Kind: trace.PhaseHigh, SegLen: 26_000}
	p.B = a
	p.B.MissBurstProb = bBurst // MLP-richer pole: window appetite grows
	p.B.BurstLen = 4
	p.B.ChainDep = 0.10
	p.B.AddrReady = addrReady + 0.15
	return App{Name: name, Type: MEM, FP: fp, RscClass: rsc, Profile: p}
}

func fpFrac(fp bool) float64 {
	if fp {
		return 0.5
	}
	return 0.05
}

// Catalog returns the 22 application models of Table 2, keyed by name.
func Catalog() map[string]App {
	apps := []App{
		// Integer high-ILP, steady, small windows.
		intIlp("perlbmk", 0.45, 0.13, false, 59),
		intIlp("bzip2", 0.40, 0.10, false, 72),
		intIlp("eon", 0.38, 0.085, false, 82),
		// Integer high-ILP with high-frequency requirement variation.
		intIlp("gzip", 0.38, 0.08, true, 83),
		intIlp("parser", 0.36, 0.07, true, 90),
		intIlp("vortex", 0.32, 0.055, true, 102),
		intIlp("gcc", 0.30, 0.045, true, 112),
		intIlp("crafty", 0.26, 0.035, true, 125),
		// gap: large-window integer ILP (Rsc 208 in Table 2).
		{Name: "gap", Type: ILP, RscClass: 208, Profile: trace.Profile{
			Name: "gap", Seed: seedOf("gap"),
			A: trace.Params{
				FracLoad: 0.22, FracStore: 0.08, FracFp: 0.05, FracMulDiv: 0.18,
				ChainDep: 0.06, WorkingSet: 192 << 10, StridePct: 0.5,
				BranchNoise: 0.012,
			},
		}},
		// Floating-point high-ILP.
		fpIlp("fma3d", 32<<10, 0.45, 0.055, 72),
		fpIlp("mesa", 48<<10, 0.30, 0.030, 110),
		fpIlp("apsi", 64<<10, 0.20, 0.020, 127),
		fpIlp("wupwise", 128<<10, 0.10, 0.010, 161),
		// Memory-intensive pointer codes: bounded chain parallelism gives
		// them saturating, small-to-mid resource requirements.
		memChase("equake", true, 0.25, 5, 1<<20, 100),
		memChase("applu", true, 0.25, 6, 2<<20, 112),
		// Memory-intensive streaming codes: a continuous stream of
		// independent misses rewards the largest windows steadily (their
		// miss-level parallelism scales with the partition via Little's
		// law, rather than arriving in on/off bursts that per-cycle
		// policies could exploit between epochs).
		memStream("art", true, 0.004, 4, 0.45, 176),
		memStream("swim", true, 0.006, 5, 0.62, 213),
		// Irregular memory-intensive codes with high-frequency variation.
		memRandom("ammp", true, 0.12, 0.007, 173),
		memRandom("vpr", false, 0.14, 0.008, 180),
		memRandom("twolf", false, 0.16, 0.009, 184),
		// lucas: serial misses, small window appetite (Rsc 64).
		{Name: "lucas", Type: MEM, FP: true, RscClass: 64, Profile: trace.Profile{
			Name: "lucas", Seed: seedOf("lucas"),
			A: trace.Params{
				FracLoad: 0.3, FracStore: 0.1, FracFp: 0.5, FracMulDiv: 0.08,
				ChainDep: 0.35, WorkingSet: 2 << 20, StridePct: 0.4,
				PointerChase: 0.10, AddrReady: 0.2, BranchNoise: 0.01,
			},
		}},
		// mcf: the classic pointer chaser, with low-frequency phase
		// variation (Table 2's only "Low").
		{Name: "mcf", Type: MEM, RscClass: 97, Profile: trace.Profile{
			Name: "mcf", Seed: seedOf("mcf"),
			Kind: trace.PhaseLow, SegLen: 22_000,
			A: trace.Params{
				FracLoad: 0.32, FracStore: 0.08, FracFp: 0.02, FracMulDiv: 0.03,
				ChainDep: 0.25, WorkingSet: 512 << 10, StridePct: 0.2,
				PointerChase: 0.40, ChaseChains: 4, AddrReady: 0.1,
				BranchNoise: 0.06,
			},
			B: trace.Params{
				FracLoad: 0.32, FracStore: 0.08, FracFp: 0.02, FracMulDiv: 0.03,
				ChainDep: 0.10, WorkingSet: 512 << 10, StridePct: 0.2,
				PointerChase: 0.18, ChaseChains: 6, AddrReady: 0.2,
				BranchNoise: 0.04,
			},
		}},
	}
	m := make(map[string]App, len(apps))
	for _, a := range apps {
		m[a.Name] = a
	}
	return m
}

// Names returns the catalog's application names, sorted.
func Names() []string {
	c := Catalog()
	out := make([]string, 0, len(c))
	for n := range c {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Get returns the named application model; it panics on unknown names so
// workload-table typos fail loudly.
func Get(name string) App {
	a, ok := Catalog()[name]
	if !ok {
		panic("workload: unknown application " + name)
	}
	return a
}
