package core

import (
	"smthill/internal/metrics"
	"smthill/internal/pipeline"
	"smthill/internal/telemetry"
)

// DefaultEpochSize is the epoch length in cycles the paper settles on
// (Section 3.1.1).
const DefaultEpochSize = 64 * 1024

// DefaultSamplePeriod is how often (in epochs) a SingleIPC sample is
// taken when the feedback metric needs stand-alone IPCs; each thread is
// sampled once every DefaultSamplePeriod*T epochs (Section 4.2).
const DefaultSamplePeriod = 40

// Runner drives a machine through epochs under a Distributor, computing
// the feedback metric for each epoch and handling on-line SingleIPC
// sampling.
type Runner struct {
	// M is the machine being driven. OffLine replaces it as learning
	// advances; Runner only advances it.
	M *pipeline.Machine
	// Dist chooses partitions.
	Dist Distributor
	// Metric is the feedback metric used to score epochs.
	Metric metrics.Kind
	// EpochSize is the epoch length in cycles.
	EpochSize int
	// SamplePeriod controls SingleIPC sampling (0 disables it). Samples
	// are only taken when Metric.NeedsSingleIPC().
	SamplePeriod int
	// ReferenceSingles, when non-nil, supplies known stand-alone IPCs
	// and disables on-line sampling (used by the idealised algorithms
	// and by experiments that precompute solo runs).
	ReferenceSingles []float64
	// RenameOnly applies partitions to the integer rename registers
	// only, leaving the IQ and ROB fully shared — the ablation of the
	// paper's proportional-partitioning rule (Section 3.1.2).
	RenameOnly bool
	// Trace, when non-nil, receives one telemetry epoch event per
	// completed epoch: partition vector, per-thread IPC, metric score,
	// sampling markers, and — when the machine has a telemetry recorder
	// attached — the epoch's stall-attribution deltas.
	Trace telemetry.Sink
	// TraceLabel labels this run's events (typically
	// "workload/technique"), so interleaved traces stay attributable.
	TraceLabel string

	epoch      int
	sampleNext int
	singles    []float64
	lastCommit []uint64
	prev       *EpochResult
	results    []EpochResult
	prevStalls map[string]uint64
	pending    pendingEpoch
}

// pendingEpoch carries the decisions of PrepareEpoch across the cycle
// phase to FinishEpoch, so an external lock-step driver (the multicore
// System) can advance several runners' machines together between the
// two halves.
type pendingEpoch struct {
	active        bool
	sample        bool
	sampledThread int
	shares        []int
}

// NewRunner returns a Runner with the paper's default epoch size and
// sampling period.
func NewRunner(m *pipeline.Machine, dist Distributor, metric metrics.Kind) *Runner {
	return &Runner{
		M:            m,
		Dist:         dist,
		Metric:       metric,
		EpochSize:    DefaultEpochSize,
		SamplePeriod: DefaultSamplePeriod,
	}
}

// Results returns all epoch results recorded so far.
func (r *Runner) Results() []EpochResult { return r.results }

// Singles returns the current stand-alone IPC estimates (sampled or
// reference).
func (r *Runner) Singles() []float64 {
	if r.ReferenceSingles != nil {
		return r.ReferenceSingles
	}
	return r.singles
}

// Epoch returns the number of epochs run so far.
func (r *Runner) Epoch() int { return r.epoch }

func (r *Runner) ensure() {
	t := r.M.Threads()
	if r.singles == nil {
		r.singles = make([]float64, t)
	}
	if r.lastCommit == nil {
		r.lastCommit = make([]uint64, t)
		for th := 0; th < t; th++ {
			r.lastCommit[th] = r.M.Committed(th)
		}
		// Baseline the stall counters so the first epoch's delta excludes
		// warmup cycles run before the first RunEpoch.
		if rec := r.M.Recorder(); rec != nil && r.Trace != nil {
			r.prevStalls = rec.Totals()
		}
	}
}

// stallDelta returns the stall-attribution counts accumulated since the
// previous epoch boundary (nil when the machine has no recorder).
func (r *Runner) stallDelta() map[string]uint64 {
	rec := r.M.Recorder()
	if rec == nil {
		return nil
	}
	cur := rec.Totals()
	d := telemetry.Sub(cur, r.prevStalls)
	r.prevStalls = cur
	return d
}

// emitEpoch sends res to the trace sink as a telemetry epoch event.
func (r *Runner) emitEpoch(res *EpochResult) {
	if r.Trace == nil {
		return
	}
	kind, thread := telemetry.KindLearning, telemetry.None
	if res.Sample {
		kind, thread = telemetry.KindSample, res.SampledThread
	}
	r.Trace.Emit(telemetry.Event{
		Type:      telemetry.TypeEpoch,
		Run:       r.TraceLabel,
		Epoch:     res.Index,
		Kind:      kind,
		Thread:    thread,
		Shares:    res.Shares,
		IPC:       res.IPC,
		Committed: res.Committed,
		Score:     res.Score,
		Stalls:    r.stallDelta(),
	})
}

// needsSample reports whether the upcoming epoch should be a SingleIPC
// sampling epoch, and for which thread. The first T epochs sample each
// thread once — an unknown SingleIPC weights its thread neutrally, which
// biases the weighted-IPC gradient until every thread has been measured —
// and afterwards one thread is refreshed every SamplePeriod epochs in
// rotation, so each thread's SingleIPC refreshes every SamplePeriod*T
// epochs (Section 4.2).
func (r *Runner) needsSample() (int, bool) {
	if r.ReferenceSingles != nil || r.SamplePeriod <= 0 || !r.Metric.NeedsSingleIPC() {
		return 0, false
	}
	t := r.M.Threads()
	if t < 2 {
		return 0, false // a lone thread's IPC is its SingleIPC
	}
	if r.epoch < t {
		return r.epoch, true
	}
	if r.epoch%r.SamplePeriod == 0 {
		th := r.sampleNext % t
		return th, true
	}
	return 0, false
}

// epochIPCs measures per-thread committed counts and IPCs since the last
// epoch boundary.
func (r *Runner) epochIPCs() ([]uint64, []float64) {
	t := r.M.Threads()
	committed := make([]uint64, t)
	ipc := make([]float64, t)
	for th := 0; th < t; th++ {
		now := r.M.Committed(th)
		committed[th] = now - r.lastCommit[th]
		r.lastCommit[th] = now
		ipc[th] = float64(committed[th]) / float64(r.EpochSize)
	}
	return committed, ipc
}

// collectBBV snapshots and resets every thread's Basic Block Vector.
func (r *Runner) collectBBV() [][pipeline.BBVEntries]uint32 {
	t := r.M.Threads()
	out := make([][pipeline.BBVEntries]uint32, t)
	for th := 0; th < t; th++ {
		out[th] = r.M.BBV(th)
		r.M.ResetBBV(th)
	}
	return out
}

// RunEpoch executes one epoch (a sampling epoch when one is due,
// otherwise a learning epoch) and returns its result.
func (r *Runner) RunEpoch() EpochResult {
	r.PrepareEpoch()
	r.M.CycleN(r.EpochSize)
	return r.FinishEpoch()
}

// PrepareEpoch applies the upcoming epoch's decisions to the machine —
// the distributor's partition choice and overhead stall for a learning
// epoch, or the fetch-disable dance for a SingleIPC sampling epoch —
// without advancing it. The caller must then run the machine EpochSize
// cycles (directly, or in lock-step with sibling cores via
// multicore.System) and call FinishEpoch. RunEpoch is the single-core
// composition of the two.
func (r *Runner) PrepareEpoch() {
	r.ensure()
	if r.pending.active {
		panic("core: PrepareEpoch called twice without FinishEpoch")
	}
	if th, ok := r.needsSample(); ok {
		t := r.M.Threads()
		for i := 0; i < t; i++ {
			r.M.SetFetchEnabled(i, i == th)
		}
		r.M.Resources().ClearPartitions()
		r.pending = pendingEpoch{active: true, sample: true, sampledThread: th}
		return
	}
	shares := r.Dist.Decide(r.prev)
	switch {
	case shares == nil:
		r.M.Resources().ClearPartitions()
	case r.RenameOnly:
		r.M.Resources().SetSharesRenameOnly(shares)
	default:
		r.M.Resources().SetShares(shares)
	}
	if o := r.Dist.OverheadCycles(); o > 0 {
		r.M.Stall(o)
	}
	r.pending = pendingEpoch{active: true, shares: shares}
}

// FinishEpoch measures the epoch prepared by PrepareEpoch after the
// machine has run EpochSize cycles, records the result, and returns it.
func (r *Runner) FinishEpoch() EpochResult {
	p := r.pending
	if !p.active {
		panic("core: FinishEpoch called without PrepareEpoch")
	}
	r.pending = pendingEpoch{}
	if p.sample {
		return r.finishSampleEpoch(p.sampledThread)
	}
	committed, ipc := r.epochIPCs()
	res := EpochResult{
		Index:     r.epoch,
		Shares:    p.shares,
		Committed: committed,
		IPC:       ipc,
		Score:     r.Metric.Eval(ipc, r.Singles()),
		BBV:       r.collectBBV(),
	}
	r.epoch++
	r.prev = &res
	r.results = append(r.results, res)
	r.emitEpoch(&res)
	return res
}

// finishSampleEpoch completes a SingleIPC sampling epoch: re-enables
// fetch for every thread and records thread th's stand-alone IPC. The
// lost throughput of the disabled threads is the sampling cost the
// paper accounts for.
func (r *Runner) finishSampleEpoch(th int) EpochResult {
	t := r.M.Threads()
	for i := 0; i < t; i++ {
		r.M.SetFetchEnabled(i, true)
	}

	committed, ipc := r.epochIPCs()
	r.singles[th] = ipc[th]
	res := EpochResult{
		Index:         r.epoch,
		Committed:     committed,
		IPC:           ipc,
		Sample:        true,
		SampledThread: th,
		BBV:           r.collectBBV(),
	}
	r.epoch++
	// Sampling epochs do not feed the distributor: r.prev is unchanged.
	r.sampleNext++
	r.results = append(r.results, res)
	r.emitEpoch(&res)
	return res
}

// Run executes n epochs and returns their results.
func (r *Runner) Run(n int) []EpochResult {
	out := make([]EpochResult, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, r.RunEpoch())
	}
	return out
}

// TotalsSince aggregates per-thread IPCs over the recorded epochs
// [from, len). Sampling epochs are included in the denominator — their
// cost is real execution time.
func (r *Runner) TotalsSince(from int) []float64 {
	t := r.M.Threads()
	committed := make([]uint64, t)
	cycles := uint64(0)
	for _, e := range r.results[from:] {
		for th := 0; th < t; th++ {
			committed[th] += e.Committed[th]
		}
		cycles += uint64(r.EpochSize)
	}
	ipc := make([]float64, t)
	if cycles == 0 {
		return ipc
	}
	for th := 0; th < t; th++ {
		ipc[th] = float64(committed[th]) / float64(cycles)
	}
	return ipc
}

// SoloIPC runs a fresh machine containing only the given stream-factory's
// thread for cycles and returns its IPC. The experiment harness uses it
// to compute the reference SingleIPC of each application (end-to-end
// stand-alone run, Section 4.3).
func SoloIPC(m *pipeline.Machine, cycles int) float64 {
	start := m.Committed(0)
	m.CycleN(cycles)
	return float64(m.Committed(0)-start) / float64(cycles)
}
