package core

import (
	"testing"

	"smthill/internal/metrics"
	"smthill/internal/pipeline"
	"smthill/internal/resource"
)

// fakeEpoch builds an EpochResult with a BBV signature concentrated on
// one block, a score, and the shares used.
func fakeEpoch(block int, score float64, shares resource.Shares) *EpochResult {
	bbv := make([][pipeline.BBVEntries]uint32, 2)
	bbv[0][block%pipeline.BBVEntries] = 1000
	bbv[1][(block+7)%pipeline.BBVEntries] = 1000
	return &EpochResult{Score: score, Shares: shares, BBV: bbv}
}

// TestPhaseHillJumpsToLearnedAnchor drives the distributor with a
// synthetic periodic phase schedule and verifies that once both phases
// have learned partitions, a predicted phase change moves the anchor.
func TestPhaseHillJumpsToLearnedAnchor(t *testing.T) {
	ph := NewPhaseHill(2, 256, metrics.AvgIPC)
	// Alternate two phases in runs of 4 epochs each; phase 0 scores best
	// at skewed shares, phase 1 at the opposite skew. Feed many rounds
	// so the predictor learns the run lengths.
	var prev *EpochResult
	for e := 0; e < 120; e++ {
		s := ph.Decide(prev)
		phase := (e / 4) % 2
		block := 3
		score := 1.0
		if phase == 1 {
			block = 40
			// Reward shares favouring thread 1 in phase 1.
			score = 0.5 + float64(s[1])/256
		} else {
			score = 0.5 + float64(s[0])/256
		}
		prev = fakeEpoch(block, score, s)
	}
	if ph.Phases() < 2 {
		t.Fatalf("detected %d phases", ph.Phases())
	}
	if ph.Jumps == 0 {
		t.Fatal("no anchor jumps despite a learned periodic schedule")
	}
}

// TestPhaseHillNameAndOverhead checks the wrapper delegates to the
// underlying climber.
func TestPhaseHillNameAndOverhead(t *testing.T) {
	ph := NewPhaseHill(2, 256, metrics.WeightedIPC)
	if ph.Name() != "HILL-WIPC+PHASE" {
		t.Fatalf("name = %q", ph.Name())
	}
	if ph.OverheadCycles() != HillOverheadCycles {
		t.Fatalf("overhead = %d", ph.OverheadCycles())
	}
}

// TestConcatBBV flattens per-thread vectors in thread order.
func TestConcatBBV(t *testing.T) {
	bbv := make([][pipeline.BBVEntries]uint32, 2)
	bbv[0][0] = 1
	bbv[1][0] = 2
	flat := concatBBV(bbv)
	if len(flat) != 2*pipeline.BBVEntries {
		t.Fatalf("len = %d", len(flat))
	}
	if flat[0] != 1 || flat[pipeline.BBVEntries] != 2 {
		t.Fatal("order wrong")
	}
}
