package core

import (
	"smthill/internal/metrics"
	"smthill/internal/pipeline"
	"smthill/internal/resource"
	"smthill/internal/telemetry"
)

// DefaultTrialBatch is how many sibling trial machines the
// checkpoint-based searchers advance together in one lock-step wave.
// Each member is a full machine checkpoint (~0.5MB), so the batch size
// trades memory against shared-decode amortization; eight keeps the
// working set modest while decode runs once per instruction instead of
// once per trial.
const DefaultTrialBatch = 8

// trialBatch owns the pipeline.MachineBatch a searcher evaluates its
// candidate partitionings on. It replaces the former machinePool: the
// batch's members ARE the recycled trial machines (refilled in place via
// the pooled CloneInto path), and one spare machine circulates through
// Swap so promoting a wave's winner never leaves a hole.
type trialBatch struct {
	b     *pipeline.MachineBatch
	spare *pipeline.Machine
}

// startEpoch prepares the evaluation of one epoch's candidates from the
// checkpoint src, lazily creating the batch on first use.
func (tb *trialBatch) startEpoch(src *pipeline.Machine, epochSize int, base []uint64,
	metric metrics.Kind, singles []float64, trace telemetry.Sink) *epochEval {
	if tb.b == nil {
		tb.b = pipeline.BatchFrom(src, DefaultTrialBatch)
	}
	return &epochEval{
		tb: tb, src: src, epochSize: epochSize, base: base,
		metric: metric, singles: singles, trace: trace,
	}
}

// epochEval evaluates candidate partitionings of one epoch in lock-step
// waves over the shared-decode batch, tracking the running winner with
// exactly the serial loops' first-strictly-greater tie-break. Candidates
// are always scored in submission order, so a batched epoch selects the
// identical winner (and emits the identical Trials list) as the old
// one-clone-at-a-time loop.
type epochEval struct {
	tb        *trialBatch
	src       *pipeline.Machine
	epochSize int
	base      []uint64
	metric    metrics.Kind
	singles   []float64
	trace     telemetry.Sink

	trials    []Trial
	best      *pipeline.Machine
	bestTrial Trial
	one       oneShare
}

// oneShare is scratch for eval1's single-candidate waves.
type oneShare = [1]resource.Shares

// count returns the number of trials evaluated so far this epoch (the
// searchers' iteration budget).
func (e *epochEval) count() int { return len(e.trials) }

// eval1 evaluates a single candidate (the adaptive searchers' anchor and
// restart probes) and returns its trial.
func (e *epochEval) eval1(s resource.Shares) Trial {
	e.one[0] = s
	e.evalWave(e.one[:])
	return e.trials[len(e.trials)-1]
}

// evalWave runs every candidate for one epoch, at most a batch at a
// time: members are refilled in place from the checkpoint, configured,
// advanced together over the shared decoded stream, and scored in
// order. The returned slice holds this wave's trials.
func (e *epochEval) evalWave(cands []resource.Shares) []Trial {
	start := len(e.trials)
	b := e.tb.b
	for lo := 0; lo < len(cands); lo += b.K() {
		n := b.K()
		if n > len(cands)-lo {
			n = len(cands) - lo
		}
		b.RefillN(e.src, n)
		for j := 0; j < n; j++ {
			m := b.Member(j)
			if e.trace != nil {
				// Fresh per-trial recorder: the adopted winner's counters
				// are exactly this epoch's stall attribution.
				m.SetRecorder(telemetry.NewRecorder(m.Threads()))
			}
			m.Resources().SetShares(cands[lo+j])
		}
		b.CycleFirstN(n, e.epochSize)
		for j := 0; j < n; j++ {
			m := b.Member(j)
			_, ipc := measureEpoch(m, e.base, e.epochSize)
			tr := Trial{Shares: cands[lo+j], Score: e.metric.Eval(ipc, e.singles), IPC: ipc}
			e.trials = append(e.trials, tr)
			if e.best == nil || tr.Score > e.bestTrial.Score {
				// Promote member j to running winner; the dethroned
				// leader (or the circulating spare) fills its slot and is
				// overwritten by the next wave's refill.
				repl := e.best
				if repl == nil {
					repl = e.tb.spare
					e.tb.spare = nil
				}
				e.best = b.Swap(j, repl)
				e.bestTrial = tr
			}
		}
	}
	return e.trials[start:]
}

// adopt ends the epoch: the winning trial's machine is handed to the
// caller to advance along (the searcher must set it as its live
// machine), and the dethroned live machine becomes the spare that keeps
// the batch population closed.
func (e *epochEval) adopt() (*pipeline.Machine, Trial, []Trial) {
	if e.best == nil {
		panic("core: epoch evaluated no trials")
	}
	e.tb.spare = e.src
	return e.best, e.bestTrial, e.trials
}
