package core

import (
	"testing"

	"smthill/internal/metrics"
	"smthill/internal/pipeline"
	"smthill/internal/resource"
	"smthill/internal/workload"
)

// scoreShares runs one candidate partitioning for epoch cycles on a
// clone of m and returns the metric score — the same measurement the
// climbers themselves make, on an independent machine.
func scoreShares(m *pipeline.Machine, s resource.Shares, epoch int, metric metrics.Kind) float64 {
	base := commitCounts(m)
	trial := m.Clone()
	trial.Resources().SetShares(s)
	trial.CycleN(epoch)
	_, ipc := measureEpoch(trial, base, epoch)
	return metric.Eval(ipc, nil)
}

// TestSteepestNeverWorseThanSingleMove pins the steepest climber's
// defining property on one fig4 workload from each group: per epoch,
// from the same anchor and machine state, the move Steepest commits
// scores at least as well as the single ±Delta trial the round-robin
// HillClimber would have dedicated that epoch to. Steepest's candidate
// set (anchor plus every shift) is a superset of the single move, and
// the batch's determinism contract makes probe scores identical to
// standalone evaluation, so the inequality must hold exactly.
func TestSteepestNeverWorseThanSingleMove(t *testing.T) {
	const epoch = 8 * 1024
	for _, name := range []string{"gzip-bzip2", "art-gzip", "art-mcf"} {
		t.Run(name, func(t *testing.T) {
			w, err := workload.Parse(name)
			if err != nil {
				t.Fatal(err)
			}
			m := w.NewMachine(nil)
			m.CycleN(4 * epoch) // warm caches and predictors past cold start

			threads := m.Threads()
			st := NewSteepest(threads, m.Resources().Sizes()[resource.IntRename], metrics.AvgIPC)
			st.M = m
			st.ProbeCycles = epoch

			for e := 0; e < 5; e++ {
				anchor := st.Anchor()
				single := anchor.Shift(e%threads, st.Delta)
				chosen := st.Decide(nil)

				got := scoreShares(m, chosen, epoch, st.Metric)
				want := scoreShares(m, single, epoch, st.Metric)
				if got < want {
					t.Fatalf("epoch %d: steepest move %v scores %.6f, single-move trial %v scores %.6f",
						e, chosen, got, single, want)
				}

				// Advance the live machine along the committed move, as the
				// Runner would.
				m.Resources().SetShares(chosen)
				m.CycleN(epoch)
			}
		})
	}
}

// TestSteepestRunnerIntegration drives Steepest through a real Runner
// for a few epochs: it must implement Distributor cleanly (overhead
// charged, shares applied) and keep improving or holding its anchor
// without panicking on the pooled batch refill path.
func TestSteepestRunnerIntegration(t *testing.T) {
	w, err := workload.Parse("art-gzip")
	if err != nil {
		t.Fatal(err)
	}
	m := w.NewMachine(nil)
	st := NewSteepest(m.Threads(), m.Resources().Sizes()[resource.IntRename], metrics.WeightedIPC)
	st.M = m
	st.ProbeCycles = 4 * 1024
	r := NewRunner(m, st, metrics.WeightedIPC)
	r.EpochSize = 4 * 1024
	r.SamplePeriod = 0
	st.Singles = r.Singles

	total := m.Resources().Sizes()[resource.IntRename]
	for _, res := range r.Run(6) {
		if res.Shares == nil {
			t.Fatal("steepest epoch left the machine unpartitioned")
		}
		if got := res.Shares.Sum(); got != total {
			t.Fatalf("epoch %d shares %v sum %d, want %d", res.Index, res.Shares, got, total)
		}
	}
}
