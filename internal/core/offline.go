package core

import (
	"smthill/internal/metrics"
	"smthill/internal/pipeline"
	"smthill/internal/resource"
	"smthill/internal/rng"
	"smthill/internal/telemetry"
)

// EnumerateShares calls f with every division of total rename registers
// across threads where each share is at least MinShare and shares advance
// in steps of stride. The enumeration matches the paper's exhaustive
// search (stride 2 over 256 registers for 2 threads ≈ 127 trials).
func EnumerateShares(threads, total, stride int, f func(resource.Shares)) {
	if stride < 1 {
		stride = 1
	}
	s := make(resource.Shares, threads)
	var rec func(i, remaining int)
	rec = func(i, remaining int) {
		if i == threads-1 {
			if remaining >= resource.MinShare {
				s[i] = remaining
				f(s.Clone())
			}
			return
		}
		reserve := resource.MinShare * (threads - 1 - i)
		for v := resource.MinShare; remaining-v >= reserve; v += stride {
			s[i] = v
			rec(i+1, remaining-v)
		}
	}
	rec(0, total)
}

// Trial records one sampled partitioning of an epoch's search.
type Trial struct {
	Shares resource.Shares
	Score  float64
	IPC    []float64
}

// OffLineEpoch is one epoch of an idealised (checkpoint-based) learning
// run: the trials explored and the winner actually executed.
type OffLineEpoch struct {
	EpochResult
	// Trials lists every partitioning sampled for this epoch (in
	// enumeration order for OffLine; in visit order for RandHill).
	Trials []Trial
}

// OffLine is the Section 3.1 ideal: at each epoch boundary the machine is
// checkpointed, the epoch is executed once for every candidate
// partitioning, and the machine advances along the best-scoring trial.
// Only the winning trial's execution time is charged.
type OffLine struct {
	// M is the machine; it is replaced by the winning trial's machine
	// after each epoch.
	M *pipeline.Machine
	// Metric scores trials.
	Metric metrics.Kind
	// Singles are the stand-alone IPCs used by the weighted metrics
	// (known a priori in the ideal setting).
	Singles []float64
	// EpochSize is the epoch length in cycles.
	EpochSize int
	// Stride is the enumeration step in rename registers (the paper
	// uses 2; larger strides trade fidelity for simulation time).
	Stride int
	// Trace, when non-nil, receives one epoch event per epoch carrying
	// the winning partition vector and the winning trial's
	// stall-attribution counts (each trial clone gets a fresh recorder;
	// only the winner's — the execution actually kept — is reported).
	Trace telemetry.Sink
	// TraceLabel labels emitted events.
	TraceLabel string

	epoch      int
	lastCommit []uint64
	epochs     []OffLineEpoch
	tb         trialBatch
	cands      []resource.Shares
}

// NewOffLine returns an OffLine searcher over m with the paper's default
// epoch size and stride 2.
func NewOffLine(m *pipeline.Machine, metric metrics.Kind, singles []float64) *OffLine {
	return &OffLine{
		M:         m,
		Metric:    metric,
		Singles:   singles,
		EpochSize: DefaultEpochSize,
		Stride:    2,
	}
}

// Results returns the recorded epochs.
func (o *OffLine) Results() []OffLineEpoch { return o.epochs }

// measure computes the per-thread committed counts and IPCs of machine m
// for the epoch that just ran, relative to baseline counts.
func measureEpoch(m *pipeline.Machine, base []uint64, epochSize int) ([]uint64, []float64) {
	t := m.Threads()
	committed := make([]uint64, t)
	ipc := make([]float64, t)
	for th := 0; th < t; th++ {
		committed[th] = m.Committed(th) - base[th]
		ipc[th] = float64(committed[th]) / float64(epochSize)
	}
	return committed, ipc
}

func commitCounts(m *pipeline.Machine) []uint64 {
	out := make([]uint64, m.Threads())
	for th := range out {
		out[th] = m.Committed(th)
	}
	return out
}

// emitIdealEpoch reports one checkpoint-search epoch to a trace sink.
// The machine is the adopted winner; its fresh per-epoch recorder (if
// any) holds exactly this epoch's stall attribution.
func emitIdealEpoch(sink telemetry.Sink, label string, m *pipeline.Machine, res *EpochResult) {
	if sink == nil {
		return
	}
	var stalls map[string]uint64
	if rec := m.Recorder(); rec != nil {
		stalls = telemetry.Sub(rec.Totals(), nil)
	}
	sink.Emit(telemetry.Event{
		Type:      telemetry.TypeEpoch,
		Run:       label,
		Epoch:     res.Index,
		Kind:      telemetry.KindLearning,
		Thread:    telemetry.None,
		Shares:    res.Shares,
		IPC:       res.IPC,
		Committed: res.Committed,
		Score:     res.Score,
		Stalls:    stalls,
	})
}

// RunEpoch checkpoints the machine, tries every candidate partitioning
// for one epoch, advances along the best, and returns the epoch record.
// Candidates run in batched lock-step waves over a shared decoded
// stream, still scored in enumeration order with a first-strictly-
// greater tie-break, so the winner — and every figure derived from it —
// is identical to the old one-trial-at-a-time loop.
func (o *OffLine) RunEpoch() OffLineEpoch {
	base := commitCounts(o.M)
	total := o.M.Resources().Sizes()[resource.IntRename]

	o.cands = o.cands[:0]
	EnumerateShares(o.M.Threads(), total, o.Stride, func(s resource.Shares) {
		o.cands = append(o.cands, s)
	})
	if len(o.cands) == 0 {
		panic("core: share enumeration produced no trials")
	}

	ev := o.tb.startEpoch(o.M, o.EpochSize, base, o.Metric, o.Singles, o.Trace)
	ev.evalWave(o.cands)
	best, bestTrial, trials := ev.adopt()
	o.M = best // advance along the winning trial; others cost nothing
	committed, ipc := measureEpoch(o.M, base, o.EpochSize)
	res := OffLineEpoch{
		EpochResult: EpochResult{
			Index:     o.epoch,
			Shares:    bestTrial.Shares,
			Committed: committed,
			IPC:       ipc,
			Score:     bestTrial.Score,
		},
		Trials: trials,
	}
	o.epoch++
	o.epochs = append(o.epochs, res)
	emitIdealEpoch(o.Trace, o.TraceLabel, o.M, &res.EpochResult)
	return res
}

// Run executes n epochs.
func (o *OffLine) Run(n int) []OffLineEpoch {
	out := make([]OffLineEpoch, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, o.RunEpoch())
	}
	return out
}

// RandHill is the 4-thread ideal of Section 4.3: like OffLine it uses
// checkpointing to search the current epoch with zero charged overhead,
// but instead of exhaustive enumeration it performs hill-climbing passes
// restarted from random anchors, bounded by a total trial budget of
// MaxIters outer-loop iterations (the paper uses 128).
type RandHill struct {
	M         *pipeline.Machine
	Metric    metrics.Kind
	Singles   []float64
	EpochSize int
	// Delta is the hill step (Figure 8's 4).
	Delta int
	// MaxIters bounds the total number of trials per epoch.
	MaxIters int
	// Seed makes the random restarts deterministic.
	Seed uint64
	// Trace and TraceLabel mirror OffLine's epoch-event reporting.
	Trace      telemetry.Sink
	TraceLabel string

	rng        rng.Rng
	seeded     bool
	epoch      int
	epochs     []OffLineEpoch
	lastAnchor resource.Shares
	tb         trialBatch
	dirs       []resource.Shares
}

// NewRandHill returns a RandHill searcher with the paper's parameters.
func NewRandHill(m *pipeline.Machine, metric metrics.Kind, singles []float64) *RandHill {
	return &RandHill{
		M:         m,
		Metric:    metric,
		Singles:   singles,
		EpochSize: DefaultEpochSize,
		Delta:     DefaultDelta,
		MaxIters:  128,
		Seed:      1,
	}
}

// Results returns the recorded epochs.
func (r *RandHill) Results() []OffLineEpoch { return r.epochs }

// randomShares draws a random valid partitioning.
func (r *RandHill) randomShares(threads, total int) resource.Shares {
	// Draw T cut weights and scale to the distributable mass above the
	// MinShare floor.
	w := make([]float64, threads)
	sum := 0.0
	for i := range w {
		w[i] = r.rng.Float64() + 1e-3
		sum += w[i]
	}
	mass := total - resource.MinShare*threads
	s := make(resource.Shares, threads)
	used := 0
	for i := range s {
		extra := int(float64(mass) * w[i] / sum)
		s[i] = resource.MinShare + extra
		used += s[i]
	}
	s[threads-1] += total - used // absorb rounding
	return s
}

// RunEpoch searches the current epoch with multi-start hill climbing and
// advances the machine along the best partitioning found. The T shift
// directions of each pass run as one batched lock-step wave; trial visit
// order, the MaxIters budget, and the restart RNG draw order are exactly
// those of the old one-trial-at-a-time loop, so results are identical.
func (r *RandHill) RunEpoch() OffLineEpoch {
	if !r.seeded {
		r.rng = rng.New(r.Seed)
		r.seeded = true
	}
	base := commitCounts(r.M)
	threads := r.M.Threads()
	total := r.M.Resources().Sizes()[resource.IntRename]

	ev := r.tb.startEpoch(r.M, r.EpochSize, base, r.Metric, r.Singles, r.Trace)

	anchor := r.lastAnchor
	if anchor == nil {
		anchor = resource.EqualShares(threads, total)
	}
	anchorScore := ev.eval1(anchor).Score

	for ev.count() < r.MaxIters {
		// One hill-climbing pass: sample all T shift directions from the
		// anchor, move while improving; on a peak, restart randomly. The
		// wave is truncated where the serial loop would have run out of
		// iteration budget.
		improved := false
		bestDir, bestDirScore := -1, anchorScore
		r.dirs = r.dirs[:0]
		for d := 0; d < threads && ev.count()+len(r.dirs) < r.MaxIters; d++ {
			r.dirs = append(r.dirs, anchor.Shift(d, r.Delta))
		}
		for d, tr := range ev.evalWave(r.dirs) {
			if tr.Score > bestDirScore {
				bestDir, bestDirScore = d, tr.Score
			}
		}
		if bestDir >= 0 {
			anchor = anchor.Shift(bestDir, r.Delta)
			anchorScore = bestDirScore
			improved = true
		}
		if !improved && ev.count() < r.MaxIters {
			anchor = r.randomShares(threads, total)
			anchorScore = ev.eval1(anchor).Score
		}
	}

	best, bestTrial, trials := ev.adopt()
	r.M = best
	r.lastAnchor = bestTrial.Shares
	committed, ipc := measureEpoch(r.M, base, r.EpochSize)
	res := OffLineEpoch{
		EpochResult: EpochResult{
			Index:     r.epoch,
			Shares:    bestTrial.Shares,
			Committed: committed,
			IPC:       ipc,
			Score:     bestTrial.Score,
		},
		Trials: trials,
	}
	r.epoch++
	r.epochs = append(r.epochs, res)
	emitIdealEpoch(r.Trace, r.TraceLabel, r.M, &res.EpochResult)
	return res
}

// Run executes n epochs.
func (r *RandHill) Run(n int) []OffLineEpoch {
	out := make([]OffLineEpoch, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, r.RunEpoch())
	}
	return out
}
