package core

import (
	"math"

	"smthill/internal/metrics"
	"smthill/internal/pipeline"
	"smthill/internal/resource"
)

// Steepest is the batched steepest-ascent climber (ROADMAP item 3, made
// affordable by pipeline.MachineBatch). Where HillClimber dedicates one
// live epoch to each of the T trial directions — a round of T epochs per
// anchor move, during which the machine runs whatever it is testing —
// Steepest evaluates the anchor and all T ±Delta shifts simultaneously
// on a batch of speculative clones of the live machine, then partitions
// the next live epoch with the measured argmax. Every live epoch runs
// the best known move; the exploration happens off to the side on the
// shared decoded stream, where sibling trials cost ~1/K of a full
// re-simulation each.
//
// Steepest implements Distributor, so it drops into every harness a
// HillClimber fits: core.Runner, the phase extension, and the multicore
// per-core climbers (Driver.resetClimber recognises its SetAnchor).
type Steepest struct {
	// M is the live machine probes are cloned from. The Runner advances
	// it; Steepest never does. Rebind when the runner's machine changes.
	M *pipeline.Machine
	// Delta is the shift step in rename registers.
	Delta int
	// Metric scores probe trials.
	Metric metrics.Kind
	// Singles, when non-nil, supplies the stand-alone IPC estimates the
	// weighted metrics need (e.g. a Runner's Singles method); nil scores
	// probes unweighted.
	Singles func() []float64
	// Overhead is the per-invocation stall cost charged to the live
	// machine, modelling the software implementation.
	Overhead int
	// ProbeCycles is each probe's horizon; DefaultEpochSize when 0.
	ProbeCycles int

	threads int
	total   int
	anchor  resource.Shares
	b       *pipeline.MachineBatch
	cands   []resource.Shares
	base    []uint64
}

// NewSteepest returns a steepest-ascent climber for a machine with the
// given thread count and rename-register file size, with the paper's
// step size and overhead. The initial anchor is the equal partitioning.
// Bind M (the live machine probes clone from) before the first Decide.
func NewSteepest(threads, renameRegs int, metric metrics.Kind) *Steepest {
	return &Steepest{
		Delta:       DefaultDelta,
		Metric:      metric,
		Overhead:    HillOverheadCycles,
		ProbeCycles: DefaultEpochSize,
		threads:     threads,
		total:       renameRegs,
		anchor:      resource.EqualShares(threads, renameRegs),
	}
}

// Name implements Distributor.
func (s *Steepest) Name() string {
	switch s.Metric {
	case metrics.AvgIPC:
		return "STEEP-IPC"
	case metrics.HmeanWeightedIPC:
		return "STEEP-HWIPC"
	default:
		return "STEEP-WIPC"
	}
}

// OverheadCycles implements Distributor.
func (s *Steepest) OverheadCycles() int { return s.Overhead }

// Anchor returns the current best-known partitioning.
func (s *Steepest) Anchor() resource.Shares { return s.anchor.Clone() }

// SetAnchor moves the anchor — the phase extension restoring a learned
// partition, or the multicore driver resetting a migrated core's
// climber to the equal split.
func (s *Steepest) SetAnchor(shares resource.Shares) { s.anchor = shares.Clone() }

// Decide implements Distributor: probe the anchor and every ±Delta
// shift for ProbeCycles on batched clones of the live machine, adopt
// the argmax as the new anchor, and partition the next epoch with it.
// Ties keep the anchor (probe 0), so a flat neighbourhood does not
// wander.
func (s *Steepest) Decide(prev *EpochResult) resource.Shares {
	if s.M == nil {
		panic("core: Steepest.Decide with no machine bound; set M to the runner's machine")
	}
	if s.b == nil {
		s.b = pipeline.BatchFrom(s.M, s.threads+1)
	}
	probe := s.ProbeCycles
	if probe <= 0 {
		probe = DefaultEpochSize
	}
	s.cands = append(s.cands[:0], s.anchor)
	for d := 0; d < s.threads; d++ {
		s.cands = append(s.cands, s.anchor.Shift(d, s.Delta))
	}
	n := len(s.cands)

	if s.base == nil {
		s.base = make([]uint64, s.threads)
	}
	for th := range s.base {
		s.base[th] = s.M.Committed(th)
	}
	s.b.RefillN(s.M, n)
	for j := 0; j < n; j++ {
		m := s.b.Member(j)
		// Speculative probes must not pollute shared state: a multicore
		// member's phantom execution is cut off from the real system's L3.
		m.Mem().DetachL3()
		m.Resources().SetShares(s.cands[j])
	}
	s.b.CycleFirstN(n, probe)

	var singles []float64
	if s.Singles != nil {
		singles = s.Singles()
	}
	best, bestScore := 0, math.Inf(-1)
	for j := 0; j < n; j++ {
		_, ipc := measureEpoch(s.b.Member(j), s.base, probe)
		if score := s.Metric.Eval(ipc, singles); score > bestScore {
			best, bestScore = j, score
		}
	}
	s.anchor = s.cands[best]
	return s.anchor
}
