package core

import (
	"testing"

	"smthill/internal/metrics"
	"smthill/internal/resource"
	"smthill/internal/trace"
)

// recordingDist captures every prev result the Runner feeds to Decide.
type recordingDist struct {
	calls []*EpochResult
}

func (r *recordingDist) Name() string { return "REC" }
func (r *recordingDist) Decide(prev *EpochResult) resource.Shares {
	r.calls = append(r.calls, prev)
	return nil
}
func (r *recordingDist) OverheadCycles() int { return 0 }

// TestSamplingBootstrapAndRotation pins the Section 4.2 schedule: the
// first T epochs sample each thread once (one thread per epoch, in
// order), then one thread is refreshed every SamplePeriod epochs in
// rotation.
func TestSamplingBootstrapAndRotation(t *testing.T) {
	m := machineFor([]trace.Profile{ilpProfile(1), mlpProfile(2)}, nil)
	rec := &recordingDist{}
	r := NewRunner(m, rec, metrics.WeightedIPC)
	r.EpochSize = 4 * 1024
	r.SamplePeriod = 4
	res := r.Run(12)

	// Bootstrap: epochs 0..T-1 sample threads 0..T-1 in order.
	for th := 0; th < 2; th++ {
		if !res[th].Sample || res[th].SampledThread != th {
			t.Fatalf("epoch %d: Sample=%v thread=%d, want bootstrap sample of thread %d",
				th, res[th].Sample, res[th].SampledThread, th)
		}
	}
	// Rotation: epochs 4 and 8 are the only later samples, refreshing
	// threads 0 and 1 in turn.
	wantSamples := map[int]int{0: 0, 1: 1, 4: 0, 8: 1}
	for i, e := range res {
		wantTh, want := wantSamples[i]
		if e.Sample != want {
			t.Fatalf("epoch %d: Sample=%v, want %v", i, e.Sample, want)
		}
		if want && e.SampledThread != wantTh {
			t.Fatalf("epoch %d sampled thread %d, want %d", i, e.SampledThread, wantTh)
		}
	}
	// Both threads have a measured stand-alone IPC after the bootstrap.
	for th, s := range r.Singles() {
		if s <= 0 {
			t.Fatalf("thread %d SingleIPC not measured: %v", th, r.Singles())
		}
	}
}

// TestSamplingEpochsNeverFeedDecide verifies the runner's contract that
// sampling epochs are invisible to the distributor: Decide is called
// once per learning epoch only, and the prev it sees is always the most
// recent learning epoch, never a sampling one.
func TestSamplingEpochsNeverFeedDecide(t *testing.T) {
	m := machineFor([]trace.Profile{ilpProfile(3), mlpProfile(4)}, nil)
	rec := &recordingDist{}
	r := NewRunner(m, rec, metrics.WeightedIPC)
	r.EpochSize = 4 * 1024
	r.SamplePeriod = 4
	r.Run(12)

	// Samples land at epochs 0, 1, 4, 8 -> learning epochs are the other 8.
	if len(rec.calls) != 8 {
		t.Fatalf("Decide called %d times, want 8", len(rec.calls))
	}
	if rec.calls[0] != nil {
		t.Fatalf("first Decide saw prev %+v, want nil", rec.calls[0])
	}
	for i, prev := range rec.calls[1:] {
		if prev == nil {
			t.Fatalf("Decide call %d saw nil prev", i+1)
		}
		if prev.Sample {
			t.Fatalf("Decide call %d fed a sampling epoch (index %d)", i+1, prev.Index)
		}
	}
	// Across a sampling gap, prev is the last learning epoch: the call
	// for epoch 5 (after the epoch-4 sample) must see epoch 3.
	wantPrevIndex := []int{2, 3, 5, 6, 7, 9, 10}
	for i, want := range wantPrevIndex {
		if got := rec.calls[i+1].Index; got != want {
			t.Fatalf("Decide call %d saw prev index %d, want %d", i+1, got, want)
		}
	}
}

// TestNoSamplingWhenDisabled: sampling requires a weighted metric, a
// positive period, and no reference singles.
func TestNoSamplingWhenDisabled(t *testing.T) {
	cases := []struct {
		name  string
		tweak func(*Runner)
	}{
		{"avg-ipc metric", func(r *Runner) { r.Metric = metrics.AvgIPC }},
		{"period zero", func(r *Runner) { r.SamplePeriod = 0 }},
		{"reference singles", func(r *Runner) { r.ReferenceSingles = []float64{1, 1} }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			m := machineFor([]trace.Profile{ilpProfile(5), mlpProfile(6)}, nil)
			rec := &recordingDist{}
			r := NewRunner(m, rec, metrics.WeightedIPC)
			r.EpochSize = 4 * 1024
			r.SamplePeriod = 4
			tc.tweak(r)
			for _, e := range r.Run(6) {
				if e.Sample {
					t.Fatalf("%s: epoch %d is a sampling epoch", tc.name, e.Index)
				}
			}
			if len(rec.calls) != 6 {
				t.Fatalf("%s: Decide called %d times, want 6", tc.name, len(rec.calls))
			}
		})
	}
}
