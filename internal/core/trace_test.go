package core

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"smthill/internal/metrics"
	"smthill/internal/resource"
	"smthill/internal/telemetry"
	"smthill/internal/trace"
)

var update = flag.Bool("update", false, "rewrite golden files")

func sharesEqual(a resource.Shares, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// goldenRun is the fixed scenario behind the schema golden file: a small
// deterministic HILL-WIPC run with a recorder attached, covering epoch
// (learning and sample), and move (tried/accepted/reverted) events.
func goldenRun(sink telemetry.Sink) *HillClimber {
	m := machineFor([]trace.Profile{ilpProfile(1), mlpProfile(2)}, nil)
	m.SetRecorder(telemetry.NewRecorder(2))
	hill := NewHillClimber(2, m.Resources().Sizes()[resource.IntRename], metrics.WeightedIPC)
	hill.Trace = sink
	hill.TraceLabel = "golden/HILL-WIPC"
	r := NewRunner(m, hill, metrics.WeightedIPC)
	r.EpochSize = testEpoch
	r.Trace = sink
	r.TraceLabel = "golden/HILL-WIPC"
	r.Run(8)
	return hill
}

// TestEpochTraceGolden pins the JSONL event schema byte-for-byte. The
// simulator and the JSON encoding are both deterministic, so any diff
// here is a schema or semantics change: regenerate with -update and
// justify the diff in review. Extend the schema by adding fields, never
// by renaming or re-typing existing ones.
func TestEpochTraceGolden(t *testing.T) {
	var buf bytes.Buffer
	sink := telemetry.NewJSONL(&buf)
	goldenRun(sink)
	if err := sink.Close(); err != nil {
		t.Fatal(err)
	}

	golden := filepath.Join("testdata", "epoch_trace.golden.jsonl")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run `go test ./internal/core -run Golden -update` to create it)", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("trace deviates from %s (re-run with -update if intentional)\ngot:\n%s", golden, buf.String())
	}
}

// TestEpochEventsCarryStallsAndShares checks the fig4-style acceptance
// property on the in-memory stream: learning-epoch events carry a
// partition vector and stall-attribution totals including the cycle
// count.
func TestEpochEventsCarryStallsAndShares(t *testing.T) {
	var sink telemetry.MemorySink
	goldenRun(&sink)

	learning, samples, moves := 0, 0, 0
	for _, ev := range sink.Events() {
		switch {
		case ev.Type == telemetry.TypeEpoch && ev.Kind == telemetry.KindLearning:
			learning++
			if len(ev.Shares) != 2 {
				t.Errorf("epoch %d: learning event has shares %v", ev.Epoch, ev.Shares)
			}
			if ev.Stalls["cycles"] != testEpoch {
				t.Errorf("epoch %d: stall delta covers %d cycles, want %d", ev.Epoch, ev.Stalls["cycles"], testEpoch)
			}
			if len(ev.IPC) != 2 || ev.Score <= 0 {
				t.Errorf("epoch %d: ipc=%v score=%g", ev.Epoch, ev.IPC, ev.Score)
			}
		case ev.Type == telemetry.TypeEpoch && ev.Kind == telemetry.KindSample:
			samples++
			if ev.Thread == telemetry.None {
				t.Errorf("epoch %d: sample event has no thread", ev.Epoch)
			}
		case ev.Type == telemetry.TypeMove:
			moves++
		}
	}
	// WeightedIPC on 2 threads samples each thread once up front; the
	// remaining 6 epochs are learning epochs, each preceded by a tried
	// move.
	if samples != 2 || learning != 6 {
		t.Fatalf("got %d sample + %d learning epochs, want 2+6", samples, learning)
	}
	if moves == 0 {
		t.Fatal("no move events emitted")
	}
}

// TestMoveEventsReconstructAnchor replays the accepted move events from
// the equal-shares start and checks they rebuild the climber's final
// anchor exactly — the property that makes a trace a sufficient record
// of the learning trajectory.
func TestMoveEventsReconstructAnchor(t *testing.T) {
	var sink telemetry.MemorySink
	m := machineFor([]trace.Profile{ilpProfile(3), mlpProfile(4)}, nil)
	total := m.Resources().Sizes()[resource.IntRename]
	hill := NewHillClimber(2, total, metrics.AvgIPC)
	hill.Trace = &sink
	hill.TraceLabel = "replay/HILL-IPC"
	r := NewRunner(m, hill, metrics.AvgIPC)
	r.EpochSize = testEpoch
	r.Run(11) // AvgIPC never samples: 11 learning epochs, 5 full rounds

	anchor := resource.EqualShares(2, total)
	accepted := 0
	for _, ev := range sink.Events() {
		if ev.Type != telemetry.TypeMove || ev.Kind != telemetry.KindAccepted {
			continue
		}
		accepted++
		anchor = anchor.Shift(ev.Thread, ev.Delta)
		if !sharesEqual(anchor, ev.Shares) {
			t.Fatalf("accepted move %d: replayed anchor %v, event says %v", accepted, anchor, ev.Shares)
		}
	}
	if accepted != 5 {
		t.Fatalf("got %d accepted moves, want 5 (one per completed round)", accepted)
	}
	if !sharesEqual(hill.Anchor(), []int(anchor)) {
		t.Fatalf("replayed anchor %v != climber anchor %v", anchor, hill.Anchor())
	}
}
