package core

import (
	"smthill/internal/metrics"
	"smthill/internal/phase"
	"smthill/internal/pipeline"
	"smthill/internal/resource"
)

// PhaseHill is the Section 5 extension of hill-climbing: epochs are
// classified into phases by their BBV signatures, an RLE Markov predictor
// anticipates the next epoch's phase, and when the predicted phase has a
// previously learned partitioning the climber's anchor jumps straight to
// it instead of re-learning — attacking the finite-learning-time (TL)
// weakness of plain hill-climbing.
type PhaseHill struct {
	Hill *HillClimber

	det  *phase.Detector
	pred *phase.Predictor

	best      map[int]phaseBest
	lastPhase int
	// Jumps counts anchor restorations from the phase table (reported
	// by the Section 5 experiment).
	Jumps int
}

type phaseBest struct {
	shares resource.Shares
	score  float64
}

// NewPhaseHill returns a phase-aware hill climber.
func NewPhaseHill(threads, renameRegs int, metric metrics.Kind) *PhaseHill {
	return &PhaseHill{
		Hill:      NewHillClimber(threads, renameRegs, metric),
		det:       phase.NewDetector(),
		pred:      phase.NewPredictor(),
		best:      make(map[int]phaseBest),
		lastPhase: -1,
	}
}

// Name implements Distributor.
func (p *PhaseHill) Name() string { return p.Hill.Name() + "+PHASE" }

// OverheadCycles implements Distributor.
func (p *PhaseHill) OverheadCycles() int { return p.Hill.OverheadCycles() }

// Phases returns the number of distinct phases detected so far.
func (p *PhaseHill) Phases() int { return p.det.Phases() }

// concatBBV flattens the per-thread BBVs into one signature.
func concatBBV(bbv [][pipeline.BBVEntries]uint32) []uint32 {
	out := make([]uint32, 0, len(bbv)*pipeline.BBVEntries)
	for _, v := range bbv {
		out = append(out, v[:]...)
	}
	return out
}

// Decide implements Distributor.
func (p *PhaseHill) Decide(prev *EpochResult) resource.Shares {
	if prev == nil || len(prev.BBV) == 0 {
		return p.Hill.Decide(prev)
	}
	id := p.det.Classify(concatBBV(prev.BBV))
	p.pred.Observe(id)
	p.lastPhase = id

	// Remember the best partitioning seen inside each phase.
	if prev.Shares != nil {
		if b, ok := p.best[id]; !ok || prev.Score > b.score {
			p.best[id] = phaseBest{shares: prev.Shares.Clone(), score: prev.Score}
		}
	}

	// If a different phase is predicted next and we have learned it
	// before, jump the anchor to its best-known partitioning.
	if next := p.pred.Predict(); next != id {
		if b, ok := p.best[next]; ok {
			p.Hill.SetAnchor(b.shares)
			p.Jumps++
		}
	}
	return p.Hill.Decide(prev)
}
