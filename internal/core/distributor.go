// Package core implements the paper's contribution: learning-based SMT
// resource distribution. Execution is divided into fixed-size epochs
// (Section 3.1.1); at each epoch boundary a Distributor chooses a
// partitioning of the integer rename registers (applied proportionally to
// the integer IQ and ROB by internal/resource), informed by the measured
// performance of previous epochs.
//
// The package provides:
//
//   - Runner: the epoch framework, including on-line SingleIPC sampling
//     for the weighted feedback metrics (Section 4.2).
//   - HillClimber: the on-line learning algorithm of Figure 8.
//   - OffLine: the idealised exhaustive-search algorithm of Section 3.1,
//     built on machine checkpointing.
//   - RandHill: the multi-start hill-climbing ideal used for 4-thread
//     workloads (Section 4.3).
//   - PhaseHill: the Section 5 extension driven by phase detection and
//     prediction (internal/phase).
package core

import (
	"smthill/internal/pipeline"
	"smthill/internal/resource"
)

// EpochResult records one completed epoch.
type EpochResult struct {
	// Index is the epoch's ordinal within the run (sampling epochs
	// included).
	Index int
	// Shares is the partitioning in effect (nil = unpartitioned).
	Shares resource.Shares
	// Committed is the per-thread instruction count for the epoch.
	Committed []uint64
	// IPC is the per-thread IPC for the epoch.
	IPC []float64
	// Score is the feedback metric evaluated on this epoch.
	Score float64
	// Sample marks a SingleIPC sampling epoch (all other threads were
	// disabled); SampledThread is the thread measured.
	Sample        bool
	SampledThread int
	// BBV holds each thread's Basic Block Vector for the epoch.
	BBV [][pipeline.BBVEntries]uint32
}

// Distributor decides the resource partitioning for each upcoming epoch.
type Distributor interface {
	// Name identifies the technique in reports.
	Name() string
	// Decide returns the shares for the next epoch given the previous
	// learning epoch's result (nil before the first epoch). Returning
	// nil shares leaves the machine unpartitioned.
	Decide(prev *EpochResult) resource.Shares
	// OverheadCycles is the software cost charged as a full-machine
	// stall at each epoch boundary (the paper charges its hill-climbing
	// implementation 200 cycles).
	OverheadCycles() int
}

// None is the identity distributor: no partitioning, no overhead. Used to
// run the ICOUNT/FLUSH/STALL/DCRA baselines under the same epoch
// bookkeeping as the learning techniques.
type None struct{ Label string }

// Name implements Distributor.
func (n None) Name() string {
	if n.Label == "" {
		return "none"
	}
	return n.Label
}

// Decide implements Distributor.
func (None) Decide(*EpochResult) resource.Shares { return nil }

// OverheadCycles implements Distributor.
func (None) OverheadCycles() int { return 0 }

// Static partitions the machine equally and never adapts — the simplest
// explicit partitioning scheme (Raasch & Reinhardt), used as an ablation
// baseline.
type Static struct {
	shares resource.Shares
}

// NewStatic returns an equal static partitioning for the given machine
// geometry.
func NewStatic(threads, renameRegs int) *Static {
	return &Static{shares: resource.EqualShares(threads, renameRegs)}
}

// Name implements Distributor.
func (*Static) Name() string { return "STATIC" }

// Decide implements Distributor.
func (s *Static) Decide(*EpochResult) resource.Shares { return s.shares }

// OverheadCycles implements Distributor.
func (*Static) OverheadCycles() int { return 0 }

// Fixed always returns the given shares; it is the building block the
// experiment harness uses to evaluate one specific partitioning.
type Fixed struct {
	Shares resource.Shares
}

// Name implements Distributor.
func (*Fixed) Name() string { return "FIXED" }

// Decide implements Distributor.
func (f *Fixed) Decide(*EpochResult) resource.Shares { return f.Shares }

// OverheadCycles implements Distributor.
func (*Fixed) OverheadCycles() int { return 0 }
