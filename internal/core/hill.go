package core

import (
	"smthill/internal/metrics"
	"smthill/internal/resource"
	"smthill/internal/telemetry"
)

// DefaultDelta is the hill-climbing step size in integer rename registers
// (Figure 8 uses Delta = 4).
const DefaultDelta = 4

// HillOverheadCycles is the full-machine stall charged per hill-climbing
// invocation, modelling the software implementation (Section 4.2).
const HillOverheadCycles = 200

// HillClimber is the paper's on-line learning algorithm (Figure 8).
//
// Learning proceeds in rounds of T epochs. anchor is the
// best-performing partitioning found so far. Epoch (id mod T) of a round
// runs a trial that shifts Delta registers to thread (id mod T) from
// every other thread; at the end of a round the anchor moves in the
// direction of the best-scoring trial — the positive performance
// gradient.
type HillClimber struct {
	// Delta is the shift step in rename registers.
	Delta int
	// Metric is recorded for reporting; the Runner computes scores.
	Metric metrics.Kind
	// Overhead is the per-invocation stall cost; DefaultOverhead if
	// negative.
	Overhead int
	// Trace, when non-nil, receives move events: the gradient direction
	// tried each learning epoch, and each round's accepted/reverted
	// decisions. Replaying only the accepted moves from the equal-shares
	// start reconstructs the anchor exactly (pinned by
	// TestMoveEventsReconstructAnchor).
	Trace telemetry.Sink
	// TraceLabel labels emitted events.
	TraceLabel string

	threads int
	total   int
	anchor  resource.Shares
	perf    []float64
	epochID int
}

// NewHillClimber returns a hill climber for a machine with the given
// thread count and rename-register file size. The initial anchor is the
// equal partitioning (Figure 8's footnote).
func NewHillClimber(threads, renameRegs int, metric metrics.Kind) *HillClimber {
	return &HillClimber{
		Delta:    DefaultDelta,
		Metric:   metric,
		Overhead: HillOverheadCycles,
		threads:  threads,
		total:    renameRegs,
		anchor:   resource.EqualShares(threads, renameRegs),
		perf:     make([]float64, threads),
	}
}

// Name implements Distributor.
func (h *HillClimber) Name() string {
	switch h.Metric {
	case metrics.AvgIPC:
		return "HILL-IPC"
	case metrics.HmeanWeightedIPC:
		return "HILL-HWIPC"
	default:
		return "HILL-WIPC"
	}
}

// OverheadCycles implements Distributor.
func (h *HillClimber) OverheadCycles() int { return h.Overhead }

// Anchor returns the current best-known partitioning.
func (h *HillClimber) Anchor() resource.Shares { return h.anchor.Clone() }

// SetAnchor moves the anchor (used by the phase extension to restore a
// previously learned partitioning) and restarts the current round.
func (h *HillClimber) SetAnchor(s resource.Shares) {
	h.anchor = s.Clone()
	h.epochID -= h.epochID % h.threads // restart the round
}

// Decide implements Distributor: record the previous trial's score,
// move the anchor at round boundaries, and emit the next trial.
func (h *HillClimber) Decide(prev *EpochResult) resource.Shares {
	if prev != nil {
		h.perf[h.epochID%h.threads] = prev.Score
		if h.epochID%h.threads == h.threads-1 {
			best := 0
			for i, v := range h.perf {
				if v > h.perf[best] {
					best = i
				}
			}
			h.anchor = h.anchor.Shift(best, h.Delta)
			h.emitRound(best)
		}
		h.epochID++
	}
	trial := h.anchor.Shift(h.epochID%h.threads, h.Delta)
	if h.Trace != nil {
		h.Trace.Emit(telemetry.Event{
			Type:   telemetry.TypeMove,
			Run:    h.TraceLabel,
			Epoch:  h.epochID,
			Kind:   telemetry.KindTried,
			Thread: h.epochID % h.threads,
			Delta:  h.Delta,
			Shares: trial,
		})
	}
	return trial
}

// emitRound reports a completed round: every direction's score, the
// winner as accepted (with the anchor it produced), the rest as
// reverted.
func (h *HillClimber) emitRound(best int) {
	if h.Trace == nil {
		return
	}
	for i, score := range h.perf {
		kind := telemetry.KindReverted
		var shares []int
		if i == best {
			kind = telemetry.KindAccepted
			shares = h.anchor.Clone()
		}
		h.Trace.Emit(telemetry.Event{
			Type:   telemetry.TypeMove,
			Run:    h.TraceLabel,
			Epoch:  h.epochID,
			Kind:   kind,
			Thread: i,
			Delta:  h.Delta,
			Shares: shares,
			Score:  score,
		})
	}
}
