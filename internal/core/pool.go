package core

import "smthill/internal/pipeline"

// machinePool recycles trial checkpoint machines across epochs for the
// checkpoint-based searchers. OffLine and RandHill clone the live machine
// once per candidate partitioning — over a hundred times per epoch — and
// a fresh Clone copies half a megabyte of cache, predictor, and slab
// state into brand-new allocations every time. The pool keeps retired
// trial machines and refills them in place with CloneInto, so the steady
// state of a search epoch allocates almost nothing.
type machinePool struct {
	free []*pipeline.Machine
}

// cloneFrom returns an independent copy of src: a pooled machine refilled
// in place when one is available, a fresh Clone otherwise.
func (p *machinePool) cloneFrom(src *pipeline.Machine) *pipeline.Machine {
	if n := len(p.free); n > 0 {
		dst := p.free[n-1]
		p.free = p.free[:n-1]
		return src.CloneInto(dst)
	}
	return src.Clone()
}

// put returns a machine to the pool for reuse. nil is ignored so callers
// can recycle "previous best" pointers unconditionally.
func (p *machinePool) put(m *pipeline.Machine) {
	if m != nil {
		p.free = append(p.free, m)
	}
}
