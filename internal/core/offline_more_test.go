package core

import (
	"testing"

	"smthill/internal/metrics"
	"smthill/internal/resource"
	"smthill/internal/trace"
)

// TestOffLineAdvancesContinuously: the machine's committed counts across
// OFF-LINE epochs are monotone and consistent with the per-epoch records
// (the winner's state is carried forward, not re-simulated).
func TestOffLineAdvancesContinuously(t *testing.T) {
	o := NewOffLine(machineFor([]trace.Profile{mlpProfile(1), ilpProfile(2)}, nil), metrics.AvgIPC, nil)
	o.EpochSize = 8 * 1024
	o.Stride = 64
	var cum [2]uint64
	for e := 0; e < 4; e++ {
		res := o.RunEpoch()
		cum[0] += res.Committed[0]
		cum[1] += res.Committed[1]
		if o.M.Committed(0) != cum[0] || o.M.Committed(1) != cum[1] {
			t.Fatalf("epoch %d: machine committed (%d,%d), records sum (%d,%d)",
				e, o.M.Committed(0), o.M.Committed(1), cum[0], cum[1])
		}
	}
}

// TestOffLineWinnerSharesAreValid: every winning partition is a legal
// division of the rename registers.
func TestOffLineWinnerSharesAreValid(t *testing.T) {
	o := NewOffLine(machineFor([]trace.Profile{mlpProfile(3), ilpProfile(4)}, nil), metrics.AvgIPC, nil)
	o.EpochSize = 8 * 1024
	o.Stride = 48
	for e := 0; e < 3; e++ {
		res := o.RunEpoch()
		if !res.Shares.Valid(256) {
			t.Fatalf("epoch %d winner %v invalid", e, res.Shares)
		}
	}
}

// TestRandHillReusesLastAnchor: the second epoch's first trial starts
// from the previous epoch's winner, not from the equal split.
func TestRandHillReusesLastAnchor(t *testing.T) {
	r := NewRandHill(machineFor([]trace.Profile{mlpProfile(1), ilpProfile(2)}, nil), metrics.AvgIPC, nil)
	r.EpochSize = 4 * 1024
	r.MaxIters = 6
	first := r.RunEpoch()
	second := r.RunEpoch()
	got := second.Trials[0].Shares
	want := first.Shares
	if got[0] != want[0] || got[1] != want[1] {
		t.Fatalf("second epoch started from %v, want previous winner %v", got, want)
	}
}

// TestRandHillRandomSharesValid: the random restart generator always
// produces legal partitions.
func TestRandHillRandomSharesValid(t *testing.T) {
	r := NewRandHill(machineFor([]trace.Profile{mlpProfile(1), ilpProfile(2), mlpProfile(3), ilpProfile(4)}, nil), metrics.AvgIPC, nil)
	r.seeded = true
	for i := 0; i < 500; i++ {
		s := r.randomShares(4, 256)
		if s.Sum() != 256 {
			t.Fatalf("random shares %v sum %d", s, s.Sum())
		}
		for _, v := range s {
			if v < resource.MinShare {
				t.Fatalf("random shares %v below MinShare", s)
			}
		}
	}
}
