package core

import (
	"testing"

	"smthill/internal/isa"
	"smthill/internal/metrics"
	"smthill/internal/pipeline"
	"smthill/internal/resource"
	"smthill/internal/trace"
)

func ilpProfile(seed uint64) trace.Profile {
	return trace.Profile{
		Name: "ilp", Seed: seed,
		A: trace.Params{
			FracLoad: 0.2, FracStore: 0.1,
			FracFp: 0.2, FracMulDiv: 0.05,
			ChainDep: 0.15, WorkingSet: 16 << 10, StridePct: 0.8,
			BranchNoise: 0.02,
		},
	}
}

func mlpProfile(seed uint64) trace.Profile {
	// Memory-level-parallelism heavy: bursts of independent misses that
	// reward a large window partition.
	return trace.Profile{
		Name: "mlp", Seed: seed,
		A: trace.Params{
			FracLoad: 0.3, FracStore: 0.05,
			FracFp: 0.1, FracMulDiv: 0.02,
			ChainDep: 0.1, WorkingSet: 32 << 10, StridePct: 0.7,
			MissBurstProb: 0.03, BurstLen: 6,
			BranchNoise: 0.01,
		},
	}
}

func machineFor(profs []trace.Profile, pol pipeline.Policy) *pipeline.Machine {
	streams := make([]isa.Stream, len(profs))
	for i, p := range profs {
		streams[i] = trace.New(p)
	}
	return pipeline.New(pipeline.DefaultConfig(len(profs)), streams, pol)
}

const testEpoch = 16 * 1024 // shorter epochs keep the tests fast

func TestRunnerBasics(t *testing.T) {
	m := machineFor([]trace.Profile{ilpProfile(1), ilpProfile(2)}, nil)
	r := NewRunner(m, None{Label: "ICOUNT"}, metrics.AvgIPC)
	r.EpochSize = testEpoch
	results := r.Run(5)
	if len(results) != 5 || len(r.Results()) != 5 {
		t.Fatalf("recorded %d results", len(r.Results()))
	}
	for i, e := range results {
		if e.Index != i {
			t.Fatalf("epoch %d has index %d", i, e.Index)
		}
		if e.Score <= 0 {
			t.Fatalf("epoch %d score %f", i, e.Score)
		}
		if len(e.IPC) != 2 || len(e.Committed) != 2 {
			t.Fatal("per-thread vectors wrong length")
		}
		if e.Sample {
			t.Fatal("AvgIPC run should never sample SingleIPC")
		}
	}
	if m.Stats().Cycles != uint64(5*testEpoch) {
		t.Fatalf("machine ran %d cycles", m.Stats().Cycles)
	}
}

func TestRunnerSamplingSchedule(t *testing.T) {
	m := machineFor([]trace.Profile{ilpProfile(1), ilpProfile(2)}, nil)
	hill := NewHillClimber(2, 256, metrics.WeightedIPC)
	r := NewRunner(m, hill, metrics.WeightedIPC)
	r.EpochSize = testEpoch
	r.SamplePeriod = 10
	results := r.Run(25)
	var samples []int
	for _, e := range results {
		if e.Sample {
			samples = append(samples, e.Index)
		}
	}
	// Bootstrap samples for both threads, then one sample every
	// SamplePeriod epochs, rotating threads.
	want := []int{0, 1, 10, 20}
	if len(samples) != len(want) {
		t.Fatalf("sample epochs = %v, want %v", samples, want)
	}
	for i := range want {
		if samples[i] != want[i] {
			t.Fatalf("sample epochs = %v, want %v", samples, want)
		}
	}
	singles := r.Singles()
	if singles[0] <= 0 || singles[1] <= 0 {
		t.Fatalf("singles not learned: %v", singles)
	}
}

func TestRunnerReferenceSinglesDisableSampling(t *testing.T) {
	m := machineFor([]trace.Profile{ilpProfile(1), ilpProfile(2)}, nil)
	r := NewRunner(m, None{}, metrics.WeightedIPC)
	r.EpochSize = testEpoch
	r.ReferenceSingles = []float64{2, 2}
	for _, e := range r.Run(10) {
		if e.Sample {
			t.Fatal("sampled despite reference singles")
		}
	}
}

func TestSampleEpochMeasuresOnlyOneThread(t *testing.T) {
	m := machineFor([]trace.Profile{ilpProfile(1), ilpProfile(2)}, nil)
	r := NewRunner(m, NewHillClimber(2, 256, metrics.WeightedIPC), metrics.WeightedIPC)
	r.EpochSize = testEpoch
	e := r.RunEpoch() // epoch 0 is a bootstrap sample of thread 0
	if !e.Sample || e.SampledThread != 0 {
		t.Fatalf("first epoch = %+v, want sample of thread 0", e)
	}
	if e.Committed[1] > e.Committed[0]/10 {
		t.Fatalf("disabled thread committed %d vs sampled thread %d", e.Committed[1], e.Committed[0])
	}
}

func TestHillClimberRoundStructure(t *testing.T) {
	h := NewHillClimber(2, 256, metrics.AvgIPC)
	// First trial favours thread 0.
	s0 := h.Decide(nil)
	if s0[0] != 128+DefaultDelta || s0[1] != 128-DefaultDelta {
		t.Fatalf("first trial = %v", s0)
	}
	// Second favours thread 1.
	s1 := h.Decide(&EpochResult{Score: 1.0, Shares: s0})
	if s1[1] != 128+DefaultDelta || s1[0] != 128-DefaultDelta {
		t.Fatalf("second trial = %v", s1)
	}
	// Round ends: thread 1's trial scored higher, so the anchor moves
	// toward thread 1 and the next trial favours thread 0 again.
	s2 := h.Decide(&EpochResult{Score: 2.0, Shares: s1})
	anchor := h.Anchor()
	if anchor[1] != 128+DefaultDelta || anchor[0] != 128-DefaultDelta {
		t.Fatalf("anchor after round = %v", anchor)
	}
	if s2[0] != anchor[0]+DefaultDelta || s2[1] != anchor[1]-DefaultDelta {
		t.Fatalf("third trial = %v for anchor %v", s2, anchor)
	}
}

func TestHillClimberSumInvariant(t *testing.T) {
	h := NewHillClimber(4, 256, metrics.AvgIPC)
	var prev *EpochResult
	score := 1.0
	for i := 0; i < 200; i++ {
		s := h.Decide(prev)
		if s.Sum() != 256 {
			t.Fatalf("trial %d sums to %d", i, s.Sum())
		}
		for _, v := range s {
			if v < resource.MinShare {
				t.Fatalf("trial %d share below MinShare: %v", i, s)
			}
		}
		score = 1.0 + 0.1*float64(i%3)
		prev = &EpochResult{Score: score, Shares: s}
	}
}

// TestHillClimbsSyntheticHill drives the climber with a synthetic
// hill-shaped score (no simulation): it must walk the anchor to the peak.
func TestHillClimbsSyntheticHill(t *testing.T) {
	h := NewHillClimber(2, 256, metrics.AvgIPC)
	peak := 200.0
	score := func(s resource.Shares) float64 {
		d := float64(s[0]) - peak
		return 1 - d*d/65536
	}
	var prev *EpochResult
	for i := 0; i < 150; i++ {
		s := h.Decide(prev)
		prev = &EpochResult{Score: score(s), Shares: s}
	}
	if a := h.Anchor(); float64(a[0]) < peak-12 || float64(a[0]) > peak+12 {
		t.Fatalf("anchor %v did not reach peak at %0.f", a, peak)
	}
}

func TestHillClimberSetAnchor(t *testing.T) {
	h := NewHillClimber(2, 256, metrics.AvgIPC)
	h.Decide(nil)
	h.SetAnchor(resource.Shares{64, 192})
	a := h.Anchor()
	if a[0] != 64 || a[1] != 192 {
		t.Fatalf("anchor = %v", a)
	}
}

func TestEnumerateShares(t *testing.T) {
	var got []resource.Shares
	EnumerateShares(2, 256, 2, func(s resource.Shares) { got = append(got, s) })
	// MinShare..(256-MinShare) step 2 => 121 trials.
	if len(got) != 121 {
		t.Fatalf("%d trials, want 121", len(got))
	}
	for _, s := range got {
		if s.Sum() != 256 || s[0] < resource.MinShare || s[1] < resource.MinShare {
			t.Fatalf("bad shares %v", s)
		}
	}
	// Three threads with a coarse stride still cover the simplex.
	n := 0
	EnumerateShares(3, 256, 32, func(s resource.Shares) {
		n++
		if s.Sum() != 256 {
			t.Fatalf("bad 3-way shares %v", s)
		}
	})
	if n < 20 {
		t.Fatalf("3-way enumeration produced only %d trials", n)
	}
}

func TestOffLinePicksBestTrial(t *testing.T) {
	m := machineFor([]trace.Profile{mlpProfile(1), ilpProfile(2)}, nil)
	o := NewOffLine(m, metrics.AvgIPC, nil)
	o.EpochSize = testEpoch
	o.Stride = 32 // coarse for speed
	e := o.RunEpoch()
	if len(e.Trials) == 0 {
		t.Fatal("no trials recorded")
	}
	for _, tr := range e.Trials {
		if tr.Score > e.Score+1e-12 {
			t.Fatalf("winner score %f below trial %f", e.Score, tr.Score)
		}
	}
	// The machine advanced along the winner: its committed counts match
	// the epoch record.
	if e.Committed[0] == 0 && e.Committed[1] == 0 {
		t.Fatal("no progress in winning epoch")
	}
}

func TestOffLineBeatsWorstFixed(t *testing.T) {
	// Over several epochs OFF-LINE must accumulate at least as many
	// committed instructions as the worst fixed partitioning it
	// explored (it picks the best each epoch).
	profs := []trace.Profile{mlpProfile(3), ilpProfile(4)}
	o := NewOffLine(machineFor(profs, nil), metrics.AvgIPC, nil)
	o.EpochSize = testEpoch
	o.Stride = 48
	epochs := o.Run(4)

	worst := machineFor(profs, nil)
	worst.Resources().SetShares(resource.Shares{resource.MinShare, 256 - resource.MinShare})
	worst.CycleN(4 * testEpoch)

	var offline uint64
	for _, e := range epochs {
		offline += e.Committed[0] + e.Committed[1]
	}
	if offline < worst.Committed(0)+worst.Committed(1) {
		t.Fatalf("OFF-LINE committed %d, worst fixed %d", offline, worst.Committed(0)+worst.Committed(1))
	}
}

func TestRandHillRespectsBudget(t *testing.T) {
	m := machineFor([]trace.Profile{mlpProfile(1), ilpProfile(2)}, nil)
	r := NewRandHill(m, metrics.AvgIPC, nil)
	r.EpochSize = testEpoch
	r.MaxIters = 12
	e := r.RunEpoch()
	if len(e.Trials) > 13 { // budget + the initial anchor evaluation
		t.Fatalf("RAND-HILL ran %d trials with budget 12", len(e.Trials))
	}
	for _, tr := range e.Trials {
		if tr.Shares.Sum() != 256 {
			t.Fatalf("trial shares %v", tr.Shares)
		}
		if tr.Score > e.Score+1e-12 {
			t.Fatal("winner is not the best trial")
		}
	}
}

func TestRandHillDeterministic(t *testing.T) {
	run := func() []Trial {
		m := machineFor([]trace.Profile{mlpProfile(1), ilpProfile(2)}, nil)
		r := NewRandHill(m, metrics.AvgIPC, nil)
		r.EpochSize = 4096
		r.MaxIters = 8
		return r.RunEpoch().Trials
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("trial counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].Score != b[i].Score {
			t.Fatalf("trial %d diverged", i)
		}
	}
}

func TestStaticAndFixedDistributors(t *testing.T) {
	s := NewStatic(2, 256)
	if got := s.Decide(nil); got[0] != 128 || got[1] != 128 {
		t.Fatalf("static shares %v", got)
	}
	f := &Fixed{Shares: resource.Shares{100, 156}}
	if got := f.Decide(nil); got[0] != 100 {
		t.Fatalf("fixed shares %v", got)
	}
	if s.OverheadCycles() != 0 || f.OverheadCycles() != 0 {
		t.Fatal("static/fixed should have no overhead")
	}
}

func TestNoneNames(t *testing.T) {
	if (None{}).Name() != "none" || (None{Label: "DCRA"}).Name() != "DCRA" {
		t.Fatal("None naming wrong")
	}
}

func TestHillOverheadCharged(t *testing.T) {
	m := machineFor([]trace.Profile{ilpProfile(1), ilpProfile(2)}, nil)
	hill := NewHillClimber(2, 256, metrics.AvgIPC)
	r := NewRunner(m, hill, metrics.AvgIPC)
	r.EpochSize = testEpoch
	withOverhead := r.Run(6)

	m2 := machineFor([]trace.Profile{ilpProfile(1), ilpProfile(2)}, nil)
	hill2 := NewHillClimber(2, 256, metrics.AvgIPC)
	hill2.Overhead = 0
	r2 := NewRunner(m2, hill2, metrics.AvgIPC)
	r2.EpochSize = testEpoch
	without := r2.Run(6)

	var a, b uint64
	for i := range withOverhead {
		a += withOverhead[i].Committed[0] + withOverhead[i].Committed[1]
		b += without[i].Committed[0] + without[i].Committed[1]
	}
	if a >= b {
		t.Fatalf("200-cycle overhead did not cost anything: %d vs %d", a, b)
	}
}

func TestPhaseHillRunsAndLearns(t *testing.T) {
	// A phased workload: the generator alternates between pole A and B.
	p := mlpProfile(1)
	p.Kind = trace.PhaseLow
	p.SegLen = 30_000
	p.B = p.A
	p.B.MissBurstProb = 0
	p.B.ChainDep = 0.5
	m := machineFor([]trace.Profile{p, ilpProfile(2)}, nil)
	ph := NewPhaseHill(2, 256, metrics.AvgIPC)
	r := NewRunner(m, ph, metrics.AvgIPC)
	r.EpochSize = testEpoch
	r.Run(60)
	if ph.Phases() < 2 {
		t.Fatalf("detected %d phases in a phased workload", ph.Phases())
	}
}

func TestPhaseHillDecidesValidShares(t *testing.T) {
	ph := NewPhaseHill(2, 256, metrics.AvgIPC)
	var prev *EpochResult
	for i := 0; i < 50; i++ {
		s := ph.Decide(prev)
		if s.Sum() != 256 {
			t.Fatalf("iteration %d shares %v", i, s)
		}
		bbv := make([][pipeline.BBVEntries]uint32, 2)
		bbv[0][i%8] = 100 // rotate signatures to create phases
		prev = &EpochResult{Score: 1, Shares: s, BBV: bbv}
	}
}

func TestTotalsSince(t *testing.T) {
	m := machineFor([]trace.Profile{ilpProfile(1), ilpProfile(2)}, nil)
	r := NewRunner(m, None{}, metrics.AvgIPC)
	r.EpochSize = testEpoch
	r.Run(4)
	ipc := r.TotalsSince(0)
	if ipc[0] <= 0 || ipc[1] <= 0 {
		t.Fatalf("totals = %v", ipc)
	}
	half := r.TotalsSince(2)
	if half[0] <= 0 {
		t.Fatalf("partial totals = %v", half)
	}
}
