// Package multicore models a chip of M SMT cores: each core is a full
// pipeline.Machine (2 hardware contexts), all cores advance in
// lock-step behind a shared last-level cache (cache.SharedL3), and an
// allocation layer decides which threads share a core — re-paired at
// epoch boundaries through bounded migration.
//
// The paper's hill-climber distributes resources *within* one SMT core;
// the related thread-to-core allocation work (Navarro et al., SYNPA)
// asks the same question *across* cores. This package lets both levels
// run at once: per-core climbers keep splitting each core's rename
// window while a pairing policy searches the thread-to-core map.
//
// Everything here runs on one goroutine — the System is driven from a
// single lock-step cycle loop, exactly like a pipeline.Machine, so the
// package carries no locks and no shared (cross-goroutine) structs.
// Determinism contract: a System run is a pure function of its
// configuration, streams, and pairing policy; no maps are iterated and
// no wall-clock or math/rand state is consulted.
package multicore

import (
	"fmt"

	"smthill/internal/cache"
	"smthill/internal/isa"
	"smthill/internal/pipeline"
	"smthill/internal/telemetry"
)

// ContextsPerCore is the SMT width of each core. The related allocation
// papers (and this package's pairing policies) study 2-context cores.
const ContextsPerCore = 2

// Config sizes a multicore system.
type Config struct {
	// Cores is the number of SMT cores.
	Cores int
	// Core configures each core's pipeline (Threads must equal
	// ContextsPerCore).
	Core pipeline.Config
	// L3 configures the shared last-level cache; a zero SizeBytes
	// disables it (cores then miss straight to memory, as the
	// single-core model does).
	L3 cache.L3Config
}

// DefaultConfig returns the Table 1 core replicated cores times behind
// the default shared L3.
func DefaultConfig(cores int) Config {
	return Config{
		Cores: cores,
		Core:  pipeline.DefaultConfig(ContextsPerCore),
		L3:    cache.DefaultL3(),
	}
}

// Seat names one hardware context: context Ctx of core Core.
type Seat struct {
	Core int
	Ctx  int
}

// System is M cores advancing in lock-step behind a shared L3, plus the
// thread-to-seat map and the per-logical-thread statistics accounting
// that survives migrations.
type System struct {
	cfg   Config
	cores []*pipeline.Machine
	recs  []*telemetry.Recorder
	l3    *cache.SharedL3

	// assign maps logical thread -> seat; seat maps core/ctx -> logical
	// thread. Both are permutations of [0, Cores*ContextsPerCore).
	assign []Seat
	seat   [][]int

	// Pipeline counters are monotonic per *seat*; to report them per
	// *logical thread* across migrations, base[g] accumulates thread
	// g's totals from seats it has left, and seatBase[g] records the
	// current seat's counters at the moment g was installed there.
	base     []pipeline.ThreadStats
	seatBase []pipeline.ThreadStats

	migrations uint64
	cycles     uint64
}

// New builds a system of cfg.Cores cores. streams supplies one
// instruction stream per logical thread (Cores*ContextsPerCore of
// them); thread g starts on seat (g/2, g%2). pols supplies one per-core
// policy (nil, or a slice of Cores entries, nil entries meaning plain
// ICOUNT). Every logical thread gets a globally disjoint address-space
// base, so distinct threads never alias in the shared L3.
func New(cfg Config, streams []isa.Stream, pols []pipeline.Policy) *System {
	if cfg.Cores < 1 {
		panic(fmt.Sprintf("multicore: %d cores", cfg.Cores))
	}
	if cfg.Core.Threads != ContextsPerCore {
		panic(fmt.Sprintf("multicore: core config has %d contexts, want %d", cfg.Core.Threads, ContextsPerCore))
	}
	n := cfg.Cores * ContextsPerCore
	if len(streams) != n {
		panic(fmt.Sprintf("multicore: %d streams for %d contexts", len(streams), n))
	}
	if pols != nil && len(pols) != cfg.Cores {
		panic(fmt.Sprintf("multicore: %d policies for %d cores", len(pols), cfg.Cores))
	}
	s := &System{
		cfg:      cfg,
		cores:    make([]*pipeline.Machine, cfg.Cores),
		recs:     make([]*telemetry.Recorder, cfg.Cores),
		assign:   make([]Seat, n),
		seat:     make([][]int, cfg.Cores),
		base:     make([]pipeline.ThreadStats, n),
		seatBase: make([]pipeline.ThreadStats, n),
	}
	if cfg.L3.SizeBytes > 0 {
		s.l3 = cache.NewSharedL3(cfg.L3, cfg.Cores)
	}
	for c := 0; c < cfg.Cores; c++ {
		var pol pipeline.Policy
		if pols != nil {
			pol = pols[c]
		}
		m := pipeline.New(cfg.Core, streams[c*ContextsPerCore:(c+1)*ContextsPerCore], pol)
		s.cores[c] = m
		s.seat[c] = make([]int, ContextsPerCore)
		for ctx := 0; ctx < ContextsPerCore; ctx++ {
			g := c*ContextsPerCore + ctx
			m.SetAddrBase(ctx, pipeline.GlobalAddrBase(g))
			s.assign[g] = Seat{Core: c, Ctx: ctx}
			s.seat[c][ctx] = g
		}
		// Every core gets a recorder: its dispatch-stall attribution is
		// the signal the stall-pred pairing policy observes.
		s.recs[c] = telemetry.NewRecorder(ContextsPerCore)
		m.SetRecorder(s.recs[c])
		if s.l3 != nil {
			m.Mem().AttachL3(s.l3, c)
		}
	}
	return s
}

// Cores returns the number of cores.
func (s *System) Cores() int { return s.cfg.Cores }

// Threads returns the number of logical threads.
func (s *System) Threads() int { return s.cfg.Cores * ContextsPerCore }

// Core returns core c's machine.
func (s *System) Core(c int) *pipeline.Machine { return s.cores[c] }

// Recorder returns core c's telemetry recorder.
func (s *System) Recorder(c int) *telemetry.Recorder { return s.recs[c] }

// L3 returns the shared last-level cache (nil when disabled).
func (s *System) L3() *cache.SharedL3 { return s.l3 }

// Config returns the system configuration.
func (s *System) Config() Config { return s.cfg }

// Cycles returns the lock-step cycles run so far.
func (s *System) Cycles() uint64 { return s.cycles }

// Migrations returns the total thread moves performed (a swap moves
// two threads).
func (s *System) Migrations() uint64 { return s.migrations }

// SeatOf returns the seat logical thread g currently occupies.
func (s *System) SeatOf(g int) Seat { return s.assign[g] }

// ThreadAt returns the logical thread on context ctx of core c.
func (s *System) ThreadAt(c, ctx int) int { return s.seat[c][ctx] }

// Cycle advances every core by one cycle in lock-step. The shared L3's
// bandwidth window opens once per system cycle, so same-cycle misses
// from different cores queue against each other in core order —
// deterministic inter-core contention.
func (s *System) Cycle() {
	if s.l3 != nil {
		s.l3.Tick()
	}
	for _, m := range s.cores {
		m.Cycle()
	}
	s.cycles++
}

// CycleN advances the system n cycles.
func (s *System) CycleN(n int) {
	for i := 0; i < n; i++ {
		s.Cycle()
	}
}

// addTS and subTS are field-wise ThreadStats arithmetic for the
// migration accounting.
func addTS(a, b pipeline.ThreadStats) pipeline.ThreadStats {
	a.Fetched += b.Fetched
	a.Dispatched += b.Dispatched
	a.Issued += b.Issued
	a.Committed += b.Committed
	a.Flushes += b.Flushes
	a.Flushed += b.Flushed
	a.Mispredicts += b.Mispredicts
	return a
}

func subTS(a, b pipeline.ThreadStats) pipeline.ThreadStats {
	a.Fetched -= b.Fetched
	a.Dispatched -= b.Dispatched
	a.Issued -= b.Issued
	a.Committed -= b.Committed
	a.Flushes -= b.Flushes
	a.Flushed -= b.Flushed
	a.Mispredicts -= b.Mispredicts
	return a
}

// ThreadStats returns logical thread g's pipeline counters, summed over
// every seat it has occupied.
func (s *System) ThreadStats(g int) pipeline.ThreadStats {
	st := s.assign[g]
	cur := s.cores[st.Core].ThreadStats(st.Ctx)
	return addTS(s.base[g], subTS(cur, s.seatBase[g]))
}

// Committed returns the instructions logical thread g has committed
// across all seats.
func (s *System) Committed(g int) uint64 { return s.ThreadStats(g).Committed }

// Swap exchanges logical threads a and b between their seats. Each
// thread's uncommitted window is squashed on its old core and replayed
// on the new one (pipeline.ExtractContext / InstallContext); its
// address base travels with it, so its working set stays put in the
// shared L3. Statistics accounting is settled so ThreadStats remains
// continuous across the move.
func (s *System) Swap(a, b int) {
	if a == b {
		return
	}
	sa, sb := s.assign[a], s.assign[b]
	ma, mb := s.cores[sa.Core], s.cores[sb.Core]

	s.base[a] = addTS(s.base[a], subTS(ma.ThreadStats(sa.Ctx), s.seatBase[a]))
	s.base[b] = addTS(s.base[b], subTS(mb.ThreadStats(sb.Ctx), s.seatBase[b]))

	ca := ma.ExtractContext(sa.Ctx)
	cb := mb.ExtractContext(sb.Ctx)
	ma.InstallContext(sa.Ctx, cb)
	mb.InstallContext(sb.Ctx, ca)

	s.assign[a], s.assign[b] = sb, sa
	s.seat[sa.Core][sa.Ctx] = b
	s.seat[sb.Core][sb.Ctx] = a
	s.seatBase[a] = mb.ThreadStats(sb.Ctx)
	s.seatBase[b] = ma.ThreadStats(sa.Ctx)
	s.migrations += 2
}
