package multicore

import (
	"fmt"
	"strconv"

	"smthill/internal/core"
	"smthill/internal/resource"
	"smthill/internal/telemetry"
)

// DefaultAllocEvery is how many epochs run between reallocation points.
// Pairing decisions need a few epochs of per-core climbing to produce a
// meaningful IPC/stall signal, and migrations cost refetch; every 8
// epochs (~0.5M cycles at the default epoch size) balances the two.
const DefaultAllocEvery = 8

// DefaultMaxMoves bounds the swaps applied per reallocation point, so a
// noisy pairing decision cannot thrash every core at once.
const DefaultMaxMoves = 2

// Driver runs the two-level learning loop: per-core Runners (each with
// its own distributor, typically a HillClimber splitting that core's
// rename window) advance in lock-step through epochs, and every
// AllocEvery epochs the Pairing policy re-decides which threads share a
// core, applied as at most MaxMoves bounded migrations.
type Driver struct {
	// Sys is the machine.
	Sys *System
	// Runners holds one epoch runner per core, in core order. Their
	// EpochSize must equal the driver's.
	Runners []*core.Runner
	// Pairing re-decides the thread grouping (nil never reallocates —
	// the static baseline).
	Pairing Pairing
	// EpochSize is the epoch length in cycles.
	EpochSize int
	// AllocEvery is the reallocation period in epochs
	// (DefaultAllocEvery when 0).
	AllocEvery int
	// MaxMoves bounds swaps per reallocation (DefaultMaxMoves when 0).
	MaxMoves int
	// RenameRegs is each core's integer rename file size, used to reset
	// a migrated core's climber anchor to the equal split (the learned
	// partition was for the old pair). Defaults to the Table 1 size.
	RenameRegs int
	// Trace, when non-nil, receives migration and per-core occupancy
	// events labelled TraceLabel.
	Trace      telemetry.Sink
	TraceLabel string

	epoch int
	obs   []Obs
	// Reallocation-window accounting: committed counts per logical
	// thread and dispatch-stall sums per seat at the window start.
	windowBase   []uint64
	prevDispatch [][]uint64
	windowCycles uint64
}

func (d *Driver) ensure() {
	if d.EpochSize == 0 {
		d.EpochSize = core.DefaultEpochSize
	}
	if d.AllocEvery == 0 {
		d.AllocEvery = DefaultAllocEvery
	}
	if d.MaxMoves == 0 {
		d.MaxMoves = DefaultMaxMoves
	}
	if d.RenameRegs == 0 {
		d.RenameRegs = resource.DefaultSizes()[resource.IntRename]
	}
	if d.obs == nil {
		n := d.Sys.Threads()
		d.obs = make([]Obs, n)
		d.windowBase = make([]uint64, n)
		for g := 0; g < n; g++ {
			d.windowBase[g] = d.Sys.Committed(g)
		}
		d.prevDispatch = make([][]uint64, d.Sys.Cores())
		for c := range d.prevDispatch {
			d.prevDispatch[c] = make([]uint64, ContextsPerCore)
			for ctx := 0; ctx < ContextsPerCore; ctx++ {
				d.prevDispatch[c][ctx] = d.dispatchStalls(c, ctx)
			}
		}
	}
}

// dispatchStalls sums core c context ctx's dispatch-stall counters.
func (d *Driver) dispatchStalls(c, ctx int) uint64 {
	t := &d.Sys.Recorder(c).Threads[ctx]
	var sum uint64
	for _, v := range t.Dispatch {
		sum += v
	}
	return sum
}

// Epoch returns the epochs run so far.
func (d *Driver) Epoch() int { return d.epoch }

// Obs returns the most recent per-thread observations (valid after the
// first reallocation point).
func (d *Driver) Obs() []Obs { return d.obs }

// RunEpoch advances every core one epoch in lock-step — all runners
// prepare, the system cycles, all runners finish — then, at
// reallocation points, lets the pairing policy re-group threads. It
// returns the per-core epoch results in core order.
func (d *Driver) RunEpoch() []core.EpochResult {
	d.ensure()
	for _, r := range d.Runners {
		r.PrepareEpoch()
	}
	d.Sys.CycleN(d.EpochSize)
	results := make([]core.EpochResult, len(d.Runners))
	for i, r := range d.Runners {
		results[i] = r.FinishEpoch()
	}
	d.epoch++
	d.windowCycles += uint64(d.EpochSize)
	d.emitOccupancy(results)
	if d.Pairing != nil && d.epoch%d.AllocEvery == 0 {
		d.reallocate()
	}
	return results
}

// Run executes n epochs.
func (d *Driver) Run(n int) {
	for i := 0; i < n; i++ {
		d.RunEpoch()
	}
}

// emitOccupancy reports each core's shared-L3 footprint and IPC for the
// finished epoch.
func (d *Driver) emitOccupancy(results []core.EpochResult) {
	if d.Trace == nil || d.Sys.L3() == nil {
		return
	}
	cores := d.Sys.Cores()
	occ := make([]int, cores)
	ipc := make([]float64, cores)
	for c := 0; c < cores; c++ {
		occ[c] = d.Sys.L3().Occupancy(c)
		for _, v := range results[c].IPC {
			ipc[c] += v
		}
	}
	d.Trace.Emit(telemetry.Event{
		Type:   telemetry.TypeOccupancy,
		Run:    d.TraceLabel,
		Epoch:  d.epoch - 1,
		Thread: telemetry.None,
		Shares: occ,
		IPC:    ipc,
	})
}

// updateObs folds the reallocation window's counters into per-thread
// observations: IPC from committed deltas, stall fraction from the
// per-seat dispatch-stall attribution (seats map to a fixed thread for
// the whole window, since migrations only happen at window ends).
func (d *Driver) updateObs() {
	cycles := float64(d.windowCycles)
	if cycles == 0 {
		return
	}
	for g := range d.obs {
		now := d.Sys.Committed(g)
		d.obs[g].IPC = float64(now-d.windowBase[g]) / cycles
	}
	for c := 0; c < d.Sys.Cores(); c++ {
		for ctx := 0; ctx < ContextsPerCore; ctx++ {
			now := d.dispatchStalls(c, ctx)
			g := d.Sys.ThreadAt(c, ctx)
			d.obs[g].StallFrac = float64(now-d.prevDispatch[c][ctx]) / cycles
		}
	}
}

// resetWindow re-baselines the observation window after a reallocation.
func (d *Driver) resetWindow() {
	for g := range d.windowBase {
		d.windowBase[g] = d.Sys.Committed(g)
	}
	for c := range d.prevDispatch {
		for ctx := 0; ctx < ContextsPerCore; ctx++ {
			d.prevDispatch[c][ctx] = d.dispatchStalls(c, ctx)
		}
	}
	d.windowCycles = 0
}

// reallocate asks the pairing policy for a target grouping and applies
// it with at most MaxMoves swaps, in deterministic core order. Cores
// whose membership changed get their hill-climber anchor reset to the
// equal split: the learned partition belonged to the old pair.
func (d *Driver) reallocate() {
	d.updateObs()
	cores := d.Sys.Cores()
	groups := make([][]int, cores)
	for c := 0; c < cores; c++ {
		groups[c] = []int{d.Sys.ThreadAt(c, 0), d.Sys.ThreadAt(c, 1)}
	}
	target := d.Pairing.Pair(d.obs, groups, d.epoch)
	checkGrouping(target, d.Sys.Threads())
	target = d.relabel(target)

	moves := 0
	touched := make([]bool, cores)
	for c := 0; c < cores && moves < d.MaxMoves; c++ {
		for _, want := range target[c] {
			if moves >= d.MaxMoves {
				break
			}
			if d.Sys.SeatOf(want).Core == c {
				continue
			}
			out, ok := d.evictable(c, target[c])
			if !ok {
				continue
			}
			d.swap(want, out)
			touched[c] = true
			touched[d.Sys.SeatOf(out).Core] = true
			moves++
		}
	}
	if moves > 0 {
		for c, t := range touched {
			if t {
				d.resetClimber(c)
			}
		}
	}
	d.resetWindow()
}

// relabel reassigns target groups to cores so the grouping is reached
// with the fewest migrations: a pairing decides who shares a core, not
// which physical core hosts the pair, and migrating a pair that is
// already together onto a different core would squash pipelines and
// cool private caches for nothing. Exact matches keep their core
// first, then best-overlap groups, in deterministic core order.
func (d *Driver) relabel(target [][]int) [][]int {
	cores := d.Sys.Cores()
	out := make([][]int, cores)
	used := make([]bool, len(target))
	for pass := ContextsPerCore; pass >= 0; pass-- {
		for c := 0; c < cores; c++ {
			if out[c] != nil {
				continue
			}
			for ti, grp := range target {
				if used[ti] || d.overlap(c, grp) < pass {
					continue
				}
				out[c] = grp
				used[ti] = true
				break
			}
		}
	}
	return out
}

// overlap counts how many of grp's threads already sit on core c.
func (d *Driver) overlap(c int, grp []int) int {
	n := 0
	for _, g := range grp {
		if d.Sys.SeatOf(g).Core == c {
			n++
		}
	}
	return n
}

// evictable returns a thread on core c that the target grouping does
// not want there.
func (d *Driver) evictable(c int, want []int) (int, bool) {
	for ctx := 0; ctx < ContextsPerCore; ctx++ {
		g := d.Sys.ThreadAt(c, ctx)
		if g != want[0] && g != want[1] {
			return g, true
		}
	}
	return 0, false
}

// swap migrates threads a and b between their cores and emits one
// migration event per moved thread.
func (d *Driver) swap(a, b int) {
	sa, sb := d.Sys.SeatOf(a), d.Sys.SeatOf(b)
	d.Sys.Swap(a, b)
	d.emitMigration(a, sa.Core, sb.Core)
	d.emitMigration(b, sb.Core, sa.Core)
}

func (d *Driver) emitMigration(g, from, to int) {
	if d.Trace == nil {
		return
	}
	d.Trace.Emit(telemetry.Event{
		Type:   telemetry.TypeMigration,
		Run:    d.TraceLabel,
		Epoch:  d.epoch,
		Thread: g,
		Attrs: map[string]string{
			"from":   strconv.Itoa(from),
			"to":     strconv.Itoa(to),
			"policy": d.Pairing.Name(),
		},
	})
}

// resetClimber restores core c's climber anchor to the equal partition
// after its thread pair changed. Any anchored distributor qualifies —
// the round-robin HillClimber and the batched Steepest both learn a
// partition that belonged to the old pair.
func (d *Driver) resetClimber(c int) {
	if h, ok := d.Runners[c].Dist.(interface{ SetAnchor(resource.Shares) }); ok {
		h.SetAnchor(resource.EqualShares(ContextsPerCore, d.RenameRegs))
	}
}

// checkGrouping panics unless groups is a permutation of [0, n) in
// ContextsPerCore-sized groups — the contract every Pairing must meet.
func checkGrouping(groups [][]int, n int) {
	seen := make([]bool, n)
	count := 0
	for _, grp := range groups {
		if len(grp) != ContextsPerCore {
			panic(fmt.Sprintf("multicore: pairing returned a %d-thread group", len(grp)))
		}
		for _, g := range grp {
			if g < 0 || g >= n || seen[g] {
				panic(fmt.Sprintf("multicore: pairing grouping is not a permutation: %v", groups))
			}
			seen[g] = true
			count++
		}
	}
	if count != n {
		panic(fmt.Sprintf("multicore: pairing grouped %d of %d threads", count, n))
	}
}
