package multicore

import (
	"testing"

	"smthill/internal/core"
	"smthill/internal/metrics"
	"smthill/internal/resource"
)

// swappedLabels relabels the current grouping onto different cores
// without changing who shares a core — the no-op case relabel must
// recognise.
type swappedLabels struct{}

func (swappedLabels) Name() string { return "swapped-labels" }
func (swappedLabels) Pair(obs []Obs, groups [][]int, epoch int) [][]int {
	out := make([][]int, len(groups))
	for c := range groups {
		out[c] = append([]int(nil), groups[(c+1)%len(groups)]...)
	}
	return out
}

// forceSwap demands threads 0 and 3 trade places on every call.
type forceSwap struct{}

func (forceSwap) Name() string { return "force-swap" }
func (forceSwap) Pair(obs []Obs, groups [][]int, epoch int) [][]int {
	out := make([][]int, len(groups))
	for c := range groups {
		out[c] = append([]int(nil), groups[c]...)
	}
	for c := range out {
		for i, g := range out[c] {
			switch g {
			case 0:
				out[c][i] = 3
			case 3:
				out[c][i] = 0
			}
		}
	}
	return out
}

func newTestDriver(t *testing.T, cores int, p Pairing) *Driver {
	t.Helper()
	sys := newTestSystem(t, cores)
	renameRegs := resource.DefaultSizes()[resource.IntRename]
	runners := make([]*core.Runner, cores)
	for c := 0; c < cores; c++ {
		h := core.NewHillClimber(ContextsPerCore, renameRegs, metrics.WeightedIPC)
		r := core.NewRunner(sys.Core(c), h, metrics.WeightedIPC)
		r.EpochSize = 2048
		runners[c] = r
	}
	return &Driver{Sys: sys, Runners: runners, Pairing: p, EpochSize: 2048, AllocEvery: 2}
}

// TestDriverRelabelSkipsNoopMigrations: a pairing that only permutes
// core labels (same thread pairs) must cause zero migrations — the
// grouping is about who shares a core, not which core hosts a pair.
func TestDriverRelabelSkipsNoopMigrations(t *testing.T) {
	d := newTestDriver(t, 2, swappedLabels{})
	d.Run(6)
	if got := d.Sys.Migrations(); got != 0 {
		t.Fatalf("label-only re-pairing caused %d migrations, want 0", got)
	}
}

// TestDriverAppliesBoundedSwaps: a pairing that genuinely regroups gets
// its migration, and the per-reallocation move bound holds.
func TestDriverAppliesBoundedSwaps(t *testing.T) {
	d := newTestDriver(t, 2, forceSwap{})
	d.MaxMoves = 1
	d.Run(2) // one reallocation point
	if got := d.Sys.Migrations(); got != 2 {
		t.Fatalf("forced swap performed %d migrations, want 2 (one bounded swap)", got)
	}
	if d.Sys.ThreadAt(0, 0) != 3 || d.Sys.SeatOf(0).Core != 1 {
		t.Fatal("forced swap did not move threads 0 and 3")
	}
	// The next reallocation wants them swapped back.
	d.Run(2)
	if got := d.Sys.Migrations(); got != 4 {
		t.Fatalf("second reallocation performed %d total migrations, want 4", got)
	}
}

// TestDriverEpochResultsMatchRunners: RunEpoch surfaces each runner's
// epoch result in core order.
func TestDriverEpochResultsMatchRunners(t *testing.T) {
	d := newTestDriver(t, 2, nil)
	results := d.RunEpoch()
	if len(results) != 2 {
		t.Fatalf("%d results for 2 cores", len(results))
	}
	for c, res := range results {
		if len(res.IPC) != ContextsPerCore {
			t.Fatalf("core %d: %d per-thread IPCs", c, len(res.IPC))
		}
	}
	if d.Epoch() != 1 {
		t.Fatalf("Epoch() = %d after one RunEpoch", d.Epoch())
	}
}

// TestDriverDeterministic: two identical driver runs with the learning
// stack and an active pairing land on identical thread state.
func TestDriverDeterministic(t *testing.T) {
	run := func() ([]uint64, uint64) {
		d := newTestDriver(t, 2, IPCPairing{})
		d.Run(8)
		out := make([]uint64, d.Sys.Threads())
		for g := range out {
			out[g] = d.Sys.Committed(g)
		}
		return out, d.Sys.Migrations()
	}
	c1, m1 := run()
	c2, m2 := run()
	if m1 != m2 {
		t.Fatalf("migration counts diverged: %d vs %d", m1, m2)
	}
	for g := range c1 {
		if c1[g] != c2[g] {
			t.Fatalf("thread %d committed %d vs %d across identical runs", g, c1[g], c2[g])
		}
	}
}

// TestDriverSteepestPerCore: the batched steepest climber drops in as a
// per-core distributor. Its probes clone the live core's machine into a
// MachineBatch, detach from the shared L3 (phantom execution must not
// pollute real state), and survive context migrations — a thread swap
// replaces a seat's stream wholesale, forcing the probe batch to
// re-adopt its shared-decode feeds on the next refill. Two identical
// runs must land on identical thread state.
func TestDriverSteepestPerCore(t *testing.T) {
	run := func() ([]uint64, uint64) {
		sys := newTestSystem(t, 2)
		renameRegs := resource.DefaultSizes()[resource.IntRename]
		runners := make([]*core.Runner, 2)
		for c := 0; c < 2; c++ {
			st := core.NewSteepest(ContextsPerCore, renameRegs, metrics.WeightedIPC)
			st.M = sys.Core(c)
			st.ProbeCycles = 512
			r := core.NewRunner(sys.Core(c), st, metrics.WeightedIPC)
			r.EpochSize = 2048
			st.Singles = r.Singles
			runners[c] = r
		}
		d := &Driver{Sys: sys, Runners: runners, Pairing: forceSwap{},
			EpochSize: 2048, AllocEvery: 2, RenameRegs: renameRegs}
		d.Run(8)
		for c := 0; c < 2; c++ {
			st := runners[c].Dist.(*core.Steepest)
			if got := st.Anchor().Sum(); got != renameRegs {
				t.Fatalf("core %d anchor sums %d, want %d", c, got, renameRegs)
			}
		}
		out := make([]uint64, sys.Threads())
		for g := range out {
			out[g] = sys.Committed(g)
		}
		return out, sys.Migrations()
	}
	c1, m1 := run()
	c2, m2 := run()
	if m1 == 0 {
		t.Fatal("force-swap pairing caused no migrations; the re-adoption path went unexercised")
	}
	if m1 != m2 {
		t.Fatalf("migration counts diverged: %d vs %d", m1, m2)
	}
	for g := range c1 {
		if c1[g] != c2[g] {
			t.Fatalf("thread %d committed %d vs %d across identical runs", g, c1[g], c2[g])
		}
	}
}

// TestDriverObservationsPopulated: after a reallocation point the
// per-thread observations carry live IPC and stall signals.
func TestDriverObservationsPopulated(t *testing.T) {
	d := newTestDriver(t, 2, IPCPairing{})
	d.Run(8)
	obs := d.Obs()
	var ipc, stall float64
	for _, o := range obs {
		ipc += o.IPC
		stall += o.StallFrac
	}
	if ipc == 0 {
		t.Fatal("no IPC observed after a reallocation point")
	}
	if stall == 0 {
		t.Fatal("no dispatch-stall signal observed after a reallocation point")
	}
}
