package multicore

import (
	"fmt"
	"sort"

	"smthill/internal/rng"
)

// Obs is what the allocation layer knows about one logical thread at a
// reallocation point: its IPC over the recent epochs on its current
// core, and the fraction of cycles its dispatch head was blocked on a
// shared structure (from the per-core telemetry recorders).
type Obs struct {
	IPC       float64
	StallFrac float64
}

// Pairing decides which threads share a core. Pair receives the
// per-thread observations, the current groups (groups[c] lists the
// logical threads on core c), and the epoch ordinal; it returns the
// desired groups in the same shape. Implementations must be
// deterministic functions of their inputs and any internal seeded
// state.
type Pairing interface {
	// Name identifies the policy in reports and cache keys.
	Name() string
	// Pair returns the desired thread grouping.
	Pair(obs []Obs, groups [][]int, epoch int) [][]int
}

// PairingNames lists the known pairing policies in presentation order.
func PairingNames() []string { return []string{"random", "ipc-pred", "stall-pred"} }

// PairingByName builds the named pairing policy. seed feeds the random
// policy's generator (the prediction-based policies are deterministic
// functions of their observations and ignore it).
func PairingByName(name string, seed uint64) (Pairing, error) {
	switch name {
	case "random":
		return NewRandomPairing(seed), nil
	case "ipc-pred":
		return IPCPairing{}, nil
	case "stall-pred":
		return StallPairing{}, nil
	}
	return nil, fmt.Errorf("multicore: unknown pairing policy %q; valid: %v", name, PairingNames())
}

// RandomPairing shuffles threads onto cores — the control arm the
// related allocation papers compare against.
type RandomPairing struct {
	rng rng.Rng
}

// NewRandomPairing returns a random pairing seeded deterministically.
func NewRandomPairing(seed uint64) *RandomPairing {
	return &RandomPairing{rng: rng.New(seed ^ 0xa11c0e5)}
}

// Name implements Pairing.
func (*RandomPairing) Name() string { return "random" }

// Pair implements Pairing: a Fisher-Yates shuffle of the thread ids,
// chunked per core.
func (p *RandomPairing) Pair(obs []Obs, groups [][]int, epoch int) [][]int {
	n := len(obs)
	ids := make([]int, n)
	for i := range ids {
		ids[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := p.rng.Intn(i + 1)
		ids[i], ids[j] = ids[j], ids[i]
	}
	return fold(ids, len(groups), false)
}

// IPCPairing pairs high- and low-ILP threads (per Navarro et al.): sort
// by observed IPC and fold the list, so the fastest thread shares a
// core with the slowest. Co-scheduling two high-ILP threads makes them
// fight for the window; pairing complementary demands does not.
type IPCPairing struct{}

// Name implements Pairing.
func (IPCPairing) Name() string { return "ipc-pred" }

// Pair implements Pairing.
func (IPCPairing) Pair(obs []Obs, groups [][]int, epoch int) [][]int {
	ids := sortedBy(len(obs), func(a, b int) bool {
		if obs[a].IPC > obs[b].IPC {
			return true
		}
		if obs[a].IPC < obs[b].IPC {
			return false
		}
		return a < b
	})
	return fold(ids, len(groups), true)
}

// StallPairing is IPCPairing with dispatch-stall attribution as the
// interference signal: a thread whose dispatch head is often blocked on
// shared structures is a heavy window consumer, so it is paired with
// the thread blocked least.
type StallPairing struct{}

// Name implements Pairing.
func (StallPairing) Name() string { return "stall-pred" }

// Pair implements Pairing.
func (StallPairing) Pair(obs []Obs, groups [][]int, epoch int) [][]int {
	ids := sortedBy(len(obs), func(a, b int) bool {
		if obs[a].StallFrac > obs[b].StallFrac {
			return true
		}
		if obs[a].StallFrac < obs[b].StallFrac {
			return false
		}
		return a < b
	})
	return fold(ids, len(groups), true)
}

// sortedBy returns [0, n) ordered by less (a deterministic total order:
// callers tie-break on the id).
func sortedBy(n int, less func(a, b int) bool) []int {
	ids := make([]int, n)
	for i := range ids {
		ids[i] = i
	}
	sort.Slice(ids, func(i, j int) bool { return less(ids[i], ids[j]) })
	return ids
}

// fold chunks ids into cores groups. With complement set, core i gets
// ids[i] and ids[2*cores-1-i] — the sorted-fold that pairs the list's
// extremes; otherwise cores are filled in order (random chunking).
func fold(ids []int, cores int, complement bool) [][]int {
	out := make([][]int, cores)
	for c := 0; c < cores; c++ {
		if complement {
			out[c] = []int{ids[c], ids[2*cores-1-c]}
		} else {
			out[c] = []int{ids[2*c], ids[2*c+1]}
		}
	}
	return out
}
