package multicore

import (
	"testing"

	"smthill/internal/cache"
	"smthill/internal/pipeline"
	"smthill/internal/workload"
)

// testStreams resolves n applications' instruction streams from the
// workload catalog.
func testStreams(t *testing.T, list string, n int) workload.Workload {
	t.Helper()
	w, err := workload.Parse(list)
	if err != nil {
		t.Fatal(err)
	}
	if w.Threads() != n {
		t.Fatalf("workload %q has %d threads, want %d", list, w.Threads(), n)
	}
	return w
}

func newTestSystem(t *testing.T, cores int) *System {
	t.Helper()
	lists := map[int]string{
		1: "art,mcf",
		2: "art,mcf,fma3d,gcc",
		4: "art,mcf,fma3d,gcc,gzip,twolf,bzip2,mesa",
	}
	w := testStreams(t, lists[cores], cores*ContextsPerCore)
	return New(DefaultConfig(cores), w.Streams(), nil)
}

// TestSingleCoreEquivalence pins the hot-path guarantee: a 1-core
// System with the L3 disabled is cycle-identical to a bare
// pipeline.Machine — the multicore wrapper adds no simulation effects
// of its own.
func TestSingleCoreEquivalence(t *testing.T) {
	const cycles = 30000
	w := testStreams(t, "art,mcf", 2)

	cfg := DefaultConfig(1)
	cfg.L3 = cache.L3Config{} // zero SizeBytes: no shared L3
	sys := New(cfg, w.Streams(), nil)

	bare := pipeline.New(pipeline.DefaultConfig(ContextsPerCore), w.Streams(), nil)

	sys.CycleN(cycles)
	bare.CycleN(cycles)
	for th := 0; th < ContextsPerCore; th++ {
		if got, want := sys.Committed(th), bare.Committed(th); got != want {
			t.Errorf("thread %d: system committed %d, bare machine %d", th, got, want)
		}
		if got, want := sys.ThreadStats(th), bare.ThreadStats(th); got != want {
			t.Errorf("thread %d: system stats %+v, bare machine %+v", th, got, want)
		}
	}
}

// TestSharedL3CouplesCores verifies the cores actually contend: with
// the shared L3 enabled, a core's progress depends on the other core's
// traffic, so a 2-core run differs from the same workloads run behind
// private hierarchies.
func TestSharedL3CouplesCores(t *testing.T) {
	const cycles = 30000
	w := testStreams(t, "art,mcf,fma3d,gcc", 4)

	shared := New(DefaultConfig(2), w.Streams(), nil)
	cfg := DefaultConfig(2)
	cfg.L3 = cache.L3Config{}
	private := New(cfg, w.Streams(), nil)

	shared.CycleN(cycles)
	private.CycleN(cycles)
	same := true
	for g := 0; g < 4; g++ {
		if shared.Committed(g) != private.Committed(g) {
			same = false
		}
	}
	if same {
		t.Fatal("shared L3 had no effect on any thread's progress")
	}
	if shared.L3().Stats.Accesses == 0 {
		t.Fatal("shared L3 saw no accesses")
	}
}

// TestSwapPreservesThreadState is the migration golden: thread state
// survives a core move. Committed counts are continuous across the
// swap, both migrated threads keep making forward progress on their
// new cores, and the full run is deterministic — pinned counts below
// were produced by this simulator and must only change when the
// simulation semantics deliberately do.
func TestSwapPreservesThreadState(t *testing.T) {
	const half = 8192
	run := func() (*System, [4]uint64) {
		sys := newTestSystem(t, 2)
		sys.CycleN(half)

		before := make([]pipeline.ThreadStats, 4)
		for g := 0; g < 4; g++ {
			before[g] = sys.ThreadStats(g)
		}
		sys.Swap(0, 3)
		for g := 0; g < 4; g++ {
			if got := sys.ThreadStats(g); got != before[g] {
				t.Fatalf("thread %d: stats changed across Swap: %+v -> %+v", g, before[g], got)
			}
		}
		if sys.SeatOf(0) != (Seat{Core: 1, Ctx: 1}) || sys.SeatOf(3) != (Seat{Core: 0, Ctx: 0}) {
			t.Fatalf("seats after Swap(0,3): %+v, %+v", sys.SeatOf(0), sys.SeatOf(3))
		}
		if sys.ThreadAt(0, 0) != 3 || sys.ThreadAt(1, 1) != 0 {
			t.Fatal("seat map inconsistent with assignment after Swap")
		}

		sys.CycleN(half)
		var got [4]uint64
		for g := 0; g < 4; g++ {
			got[g] = sys.Committed(g)
			if got[g] <= before[g].Committed {
				t.Errorf("thread %d made no progress after the swap (%d -> %d)",
					g, before[g].Committed, got[g])
			}
		}
		if sys.Migrations() != 2 {
			t.Fatalf("migrations = %d, want 2", sys.Migrations())
		}
		return sys, got
	}

	_, first := run()
	_, second := run()
	if first != second {
		t.Fatalf("migration run is not deterministic: %v vs %v", first, second)
	}
	// Golden: art,mcf,fma3d,gcc on 2 cores, 8192 cycles, Swap(0,3),
	// 8192 more. Changes only when the simulation semantics change.
	want := [4]uint64{6610, 1667, 2970, 1930}
	if first != want {
		t.Fatalf("migration golden drifted: got %v, want %v", first, want)
	}
}

// TestSwapSelfIsNoop pins that Swap(g, g) does nothing.
func TestSwapSelfIsNoop(t *testing.T) {
	sys := newTestSystem(t, 2)
	sys.CycleN(1000)
	before := sys.ThreadStats(1)
	sys.Swap(1, 1)
	if sys.Migrations() != 0 {
		t.Fatalf("self-swap counted %d migrations", sys.Migrations())
	}
	if sys.ThreadStats(1) != before {
		t.Fatal("self-swap disturbed thread state")
	}
}

// TestNewRejectsBadShapes locks the constructor's contract panics.
func TestNewRejectsBadShapes(t *testing.T) {
	w := testStreams(t, "art,mcf,fma3d,gcc", 4)
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		f()
	}
	mustPanic("zero cores", func() {
		New(Config{Cores: 0, Core: pipeline.DefaultConfig(2)}, nil, nil)
	})
	mustPanic("wrong context count", func() {
		New(Config{Cores: 2, Core: pipeline.DefaultConfig(4)}, w.Streams(), nil)
	})
	mustPanic("wrong stream count", func() {
		New(DefaultConfig(4), w.Streams(), nil)
	})
	mustPanic("wrong policy count", func() {
		New(DefaultConfig(2), w.Streams(), make([]pipeline.Policy, 3))
	})
}

// TestL3OccupancyAccounting checks the shared-cache bookkeeping: the
// per-core occupancies sum to the lines actually resident, and
// cross-core evictions register once both cores stream through it.
func TestL3OccupancyAccounting(t *testing.T) {
	w := testStreams(t, "art,mcf,fma3d,gcc", 4)
	cfg := DefaultConfig(2)
	// Shrink the L3 so 40k cycles of a MEM-heavy mix actually contends
	// for capacity (the default 4MB would take millions of cycles to
	// fill).
	cfg.L3.SizeBytes = 64 << 10
	sys := New(cfg, w.Streams(), nil)
	sys.CycleN(40000)
	l3 := sys.L3()
	total := 0
	for c := 0; c < sys.Cores(); c++ {
		occ := l3.Occupancy(c)
		if occ < 0 {
			t.Fatalf("core %d: negative occupancy %d", c, occ)
		}
		if occ != l3.CoreStats(c).Occupancy {
			t.Fatalf("core %d: Occupancy()=%d but CoreStats says %d", c, occ, l3.CoreStats(c).Occupancy)
		}
		total += occ
	}
	l3cfg := l3.Config()
	lines := l3cfg.SizeBytes / l3cfg.BlockSize
	if total > lines {
		t.Fatalf("occupancies sum to %d, cache has %d lines", total, lines)
	}
	evicted := l3.CoreStats(0).EvictedByOthers + l3.CoreStats(1).EvictedByOthers
	if evicted == 0 {
		t.Fatal("no cross-core evictions after 40k cycles of a 4-MEM/ILP mix")
	}
}
