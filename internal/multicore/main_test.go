package multicore

import (
	"os"
	"testing"

	"smthill/internal/lint/leakcheck"
)

// TestMain gates the suite on goroutine leaks. The package itself is
// single-goroutine by design, so any goroutine surviving a test here
// means simulation state escaped onto a background routine — a
// determinism bug, not just a leak.
func TestMain(m *testing.M) {
	os.Exit(leakcheck.Main(m))
}
