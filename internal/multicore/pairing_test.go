package multicore

import (
	"reflect"
	"testing"
)

func groupsEqual(a, b [][]int) bool { return reflect.DeepEqual(a, b) }

// TestIPCPairingFoldsExtremes pins the complement fold: fastest with
// slowest, second-fastest with second-slowest.
func TestIPCPairingFoldsExtremes(t *testing.T) {
	obs := []Obs{{IPC: 3}, {IPC: 1}, {IPC: 4}, {IPC: 2}}
	groups := [][]int{{0, 1}, {2, 3}}
	got := IPCPairing{}.Pair(obs, groups, 0)
	// Sorted by IPC desc: 2(4), 0(3), 3(2), 1(1); fold pairs 2+1, 0+3.
	want := [][]int{{2, 1}, {0, 3}}
	if !groupsEqual(got, want) {
		t.Fatalf("Pair = %v, want %v", got, want)
	}
}

// TestStallPairingFoldsExtremes does the same for the stall signal.
func TestStallPairingFoldsExtremes(t *testing.T) {
	obs := []Obs{{StallFrac: 0.1}, {StallFrac: 0.9}, {StallFrac: 0.4}, {StallFrac: 0.6}}
	groups := [][]int{{0, 1}, {2, 3}}
	got := StallPairing{}.Pair(obs, groups, 0)
	// Sorted by stall desc: 1, 3, 2, 0; fold pairs 1+0, 3+2.
	want := [][]int{{1, 0}, {3, 2}}
	if !groupsEqual(got, want) {
		t.Fatalf("Pair = %v, want %v", got, want)
	}
}

// TestPairingTiesBreakOnThreadID pins the deterministic total order:
// equal signals sort by thread id, never by map or comparison-sort
// happenstance.
func TestPairingTiesBreakOnThreadID(t *testing.T) {
	obs := make([]Obs, 4) // all-zero signals: pure tie
	groups := [][]int{{0, 1}, {2, 3}}
	want := [][]int{{0, 3}, {1, 2}}
	if got := (IPCPairing{}).Pair(obs, groups, 0); !groupsEqual(got, want) {
		t.Fatalf("ipc-pred tie fold = %v, want %v", got, want)
	}
	if got := (StallPairing{}).Pair(obs, groups, 0); !groupsEqual(got, want) {
		t.Fatalf("stall-pred tie fold = %v, want %v", got, want)
	}
}

// TestPairingsReturnPermutations property-checks every policy against
// the grouping contract the driver enforces.
func TestPairingsReturnPermutations(t *testing.T) {
	for _, cores := range []int{2, 4, 8} {
		n := cores * ContextsPerCore
		obs := make([]Obs, n)
		for i := range obs {
			obs[i] = Obs{IPC: float64((i * 7) % 5), StallFrac: float64((i * 3) % 4)}
		}
		groups := make([][]int, cores)
		for c := range groups {
			groups[c] = []int{2 * c, 2*c + 1}
		}
		for _, name := range PairingNames() {
			p, err := PairingByName(name, 42)
			if err != nil {
				t.Fatal(err)
			}
			for epoch := 0; epoch < 5; epoch++ {
				got := p.Pair(obs, groups, epoch)
				checkGrouping(got, n) // panics on violation
			}
		}
	}
}

// TestRandomPairingDeterministicPerSeed pins that the control arm is
// replayable: same seed, same shuffle sequence; different seed,
// different sequence.
func TestRandomPairingDeterministicPerSeed(t *testing.T) {
	obs := make([]Obs, 8)
	groups := [][]int{{0, 1}, {2, 3}, {4, 5}, {6, 7}}
	a, b := NewRandomPairing(1), NewRandomPairing(1)
	diverged := false
	c := NewRandomPairing(2)
	for epoch := 0; epoch < 10; epoch++ {
		ga, gb := a.Pair(obs, groups, epoch), b.Pair(obs, groups, epoch)
		if !groupsEqual(ga, gb) {
			t.Fatalf("epoch %d: same seed diverged: %v vs %v", epoch, ga, gb)
		}
		if !groupsEqual(ga, c.Pair(obs, groups, epoch)) {
			diverged = true
		}
	}
	if !diverged {
		t.Fatal("seeds 1 and 2 produced identical shuffles for 10 epochs")
	}
}

// TestPairingByNameRejectsUnknown locks the error vocabulary.
func TestPairingByNameRejectsUnknown(t *testing.T) {
	for _, name := range PairingNames() {
		p, err := PairingByName(name, 0)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if p.Name() != name {
			t.Fatalf("PairingByName(%q).Name() = %q", name, p.Name())
		}
	}
	if _, err := PairingByName("round-robin", 0); err == nil {
		t.Fatal("unknown pairing accepted")
	}
}
