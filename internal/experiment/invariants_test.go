package experiment

import (
	"testing"

	"smthill/internal/workload"
)

// TestFigure9UnderInvariantChecks runs a small fig9 configuration — the
// on-line hill-climber against the baselines, on a 2-thread and a
// 4-thread MEM4 workload — with per-cycle invariant checking enabled on
// every machine. This is the in-process form of the Makefile's
// `experiments -check ... fig9` smoke: resource conservation,
// program-order commit, and the wakeup/ready-queue invariants must hold
// on the real experiment path (including every checkpoint trial cloned
// inside the searchers), not just in unit fixtures. A violation panics.
func TestFigure9UnderInvariantChecks(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a full (small) fig9 sweep with per-cycle checks")
	}
	workload.CheckMachines = true
	defer func() { workload.CheckMachines = false }()

	cfg := tiny()
	cfg.Epochs = 3
	loads := []workload.Workload{
		workload.ByName("art-mcf"),
		workload.ByName("ammp-applu-art-mcf"),
	}
	rows := Figure9(cfg, loads)
	if len(rows) != len(loads) {
		t.Fatalf("got %d rows, want %d", len(rows), len(loads))
	}
	for _, r := range rows {
		if r.Scores["HILL"] <= 0 {
			t.Errorf("%s: HILL score %.3f, want > 0", r.Workload, r.Scores["HILL"])
		}
	}
}
