package experiment

import (
	"io"

	"smthill/internal/core"
	"smthill/internal/metrics"
	"smthill/internal/pipeline"
	"smthill/internal/resource"
	"smthill/internal/workload"
)

// Figure12Row is one epoch of a time-varying partitioning trace: the
// partition hill-climbing chose, the partition an exhaustive search of
// the same epoch would have chosen, and the epoch's score curve over all
// sampled partitionings (the figure's gray scale).
type Figure12Row struct {
	Epoch int
	// HillShare is thread 0's rename-register share under HILL-WIPC.
	HillShare int
	// BestShare is thread 0's share at the epoch's true peak.
	BestShare int
	// Curve holds the normalised score of each sampled partitioning
	// (index i is share MinShare + i*stride for thread 0).
	Curve []float64
}

// Figure12Workloads lists the five representative workloads of the
// figure with their behaviour classes.
func Figure12Workloads() map[string]string {
	return map[string]string{
		"swim-mcf":   "TS (temporally-stable)",
		"applu-ammp": "SS (spatially-stable)",
		"mcf-eon":    "TL (temporally-limited)",
		"art-mcf":    "SL (spatially-limited)",
		"swim-twolf": "JL (jitter-limited)",
	}
}

// Figure12 runs HILL-WIPC on a 2-thread workload and, at every epoch,
// synchronises an exhaustive search to the hill-climber's state
// (Section 4.4.1's methodology, with OFF-LINE synchronised to HILL).
func Figure12(cfg Config, w workload.Workload) []Figure12Row {
	singles := Singles(cfg, w)
	m := w.NewMachine(nil)
	m.CycleN(cfg.WarmupEpochs * cfg.EpochSize)
	hill := core.NewHillClimber(w.Threads(), m.Resources().Sizes()[renameKind], metrics.WeightedIPC)
	r := core.NewRunner(m, hill, metrics.WeightedIPC)
	r.EpochSize = cfg.EpochSize
	r.ReferenceSingles = singles

	total := m.Resources().Sizes()[renameKind]
	rows := make([]Figure12Row, 0, cfg.Epochs)
	var scratch *pipeline.Machine // reused across probe trials via CloneInto
	for e := 0; e < cfg.Epochs; e++ {
		// Exhaustive search of this epoch from the hill-climber's state.
		base := commitVector(m)
		var curve []float64
		bestShare, bestScore := 0, -1.0
		core.EnumerateShares(w.Threads(), total, cfg.OffLineStride, func(s resource.Shares) {
			scratch = m.CloneInto(scratch)
			trial := scratch
			trial.Resources().SetShares(s)
			trial.CycleN(cfg.EpochSize)
			score := metrics.WeightedIPC.Eval(ipcSince(trial, base, cfg.EpochSize), singles)
			curve = append(curve, score)
			if score > bestScore {
				bestScore, bestShare = score, s[0]
			}
		})
		if bestScore > 0 {
			for i := range curve {
				curve[i] /= bestScore
			}
		}
		res := r.RunEpoch()
		hillShare := 0
		if res.Shares != nil {
			hillShare = res.Shares[0]
		}
		rows = append(rows, Figure12Row{
			Epoch: e, HillShare: hillShare, BestShare: bestShare, Curve: curve,
		})
	}
	return rows
}

// WriteFigure12 renders the trace; the curve is drawn as a coarse
// ASCII gray scale (space < . < - < + < #) over thread 0's share.
func WriteFigure12(w io.Writer, rows []Figure12Row) {
	t := table{w}
	t.row("%5s %6s %6s  %s", "Epoch", "HILL", "BEST", "score curve over thread-0 share ->")
	for _, r := range rows {
		shade := make([]byte, len(r.Curve))
		for i, v := range r.Curve {
			switch {
			case v >= 0.99:
				shade[i] = '#'
			case v >= 0.97:
				shade[i] = '+'
			case v >= 0.93:
				shade[i] = '-'
			case v >= 0.85:
				shade[i] = '.'
			default:
				shade[i] = ' '
			}
		}
		t.row("%5d %6d %6d  |%s|", r.Epoch, r.HillShare, r.BestShare, string(shade))
	}
}

// TrackingError summarises a Figure 12 trace: the mean absolute distance
// (in registers) between the hill-climber's partition and the epoch's
// true best, and the mean fraction of the ideal epoch score achieved.
func TrackingError(rows []Figure12Row, stride int) (meanDist float64, meanFrac float64) {
	if len(rows) == 0 {
		return 0, 0
	}
	sumD, sumF := 0.0, 0.0
	for _, r := range rows {
		d := r.HillShare - r.BestShare
		if d < 0 {
			d = -d
		}
		sumD += float64(d)
		// Locate the hill share on the curve to read its relative score.
		idx := (r.HillShare - resource.MinShare) / stride
		if idx >= 0 && idx < len(r.Curve) {
			sumF += r.Curve[idx]
		}
	}
	return sumD / float64(len(rows)), sumF / float64(len(rows))
}
