package experiment

import (
	"io"

	"smthill/internal/core"
	"smthill/internal/metrics"
	"smthill/internal/resource"
	"smthill/internal/stats"
	"smthill/internal/workload"
)

// QualitativeRow quantifies one of the Section 3.3.2 observations about
// why performance-feedback learning beats indicator-driven policies, on a
// purpose-built two-thread scenario.
type QualitativeRow struct {
	// Scenario names the observation.
	Scenario string
	// Apps are the two threads (the subject thread first).
	Apps [2]string
	// BestShare is the subject thread's mean rename-register share at
	// the per-epoch exhaustive optimum.
	BestShare float64
	// DCRAShare is the subject thread's mean share under DCRA's
	// per-cycle caps (sampled once per epoch).
	DCRAShare float64
	// BestScore and DCRAScore are the weighted-IPC scores of the
	// exhaustive optimum and of DCRA over the same epochs.
	BestScore float64
	DCRAScore float64
}

// Qualitative reproduces the paper's two qualitative findings:
//
//  1. Cache-miss clustering: for a thread with clustered independent
//     misses, the learned optimum gives it a large partition to expose
//     the memory-level parallelism; indicator-driven policies contain it.
//  2. Compute-intensive low-ILP threads: a thread that rarely misses but
//     has deep dependence chains and poor branch prediction is treated as
//     "fast" by DCRA (and favoured by ICOUNT), yet the learned optimum
//     contracts its partition because extra resources do not help it.
func Qualitative(cfg Config) []QualitativeRow {
	return []QualitativeRow{
		qualitativeScenario(cfg, "cache-miss clustering", "swim", "eon"),
		qualitativeScenario(cfg, "compute-intensive low-ILP", "perlbmk", "swim"),
	}
}

// qualitativeScenario measures subject+partner: the mean per-epoch
// exhaustive-best share of the subject, and DCRA's share of the subject.
func qualitativeScenario(cfg Config, name, subject, partner string) QualitativeRow {
	w := workload.Workload{Apps: []string{subject, partner}, Group: "QUAL"}
	singles := Singles(cfg, w)

	// Exhaustive per-epoch best (OFF-LINE).
	m := w.NewMachine(nil)
	m.CycleN(cfg.WarmupEpochs * cfg.EpochSize)
	o := core.NewOffLine(m, metrics.WeightedIPC, singles)
	o.EpochSize = cfg.EpochSize
	o.Stride = cfg.OffLineStride
	var bestShares, bestScores []float64
	for e := 0; e < cfg.Epochs; e++ {
		res := o.RunEpoch()
		bestShares = append(bestShares, float64(res.Shares[0]))
		bestScores = append(bestScores, res.Score)
	}

	// DCRA on the same workload, sampling the subject's cap per epoch.
	md := w.NewMachine(pipelinePolicy("DCRA"))
	md.CycleN(cfg.WarmupEpochs * cfg.EpochSize)
	base := commitVector(md)
	var dcraShares, dcraScores []float64
	for e := 0; e < cfg.Epochs; e++ {
		md.CycleN(cfg.EpochSize)
		dcraShares = append(dcraShares, float64(md.Resources().Limit(0, resource.IntRename)))
		ipc := ipcSince(md, base, cfg.EpochSize)
		base = commitVector(md)
		dcraScores = append(dcraScores, metrics.WeightedIPC.Eval(ipc, singles))
	}

	return QualitativeRow{
		Scenario:  name,
		Apps:      [2]string{subject, partner},
		BestShare: stats.Mean(bestShares),
		DCRAShare: stats.Mean(dcraShares),
		BestScore: stats.Mean(bestScores),
		DCRAScore: stats.Mean(dcraScores),
	}
}

// WriteQualitative renders the comparison.
func WriteQualitative(w io.Writer, rows []QualitativeRow) {
	t := table{w}
	t.row("%-28s %-18s %10s %10s %10s %10s", "Scenario", "subject+partner",
		"bestShare", "dcraShare", "bestWIPC", "dcraWIPC")
	for _, r := range rows {
		t.row("%-28s %-18s %10.1f %10.1f %10.3f %10.3f",
			r.Scenario, r.Apps[0]+"+"+r.Apps[1], r.BestShare, r.DCRAShare, r.BestScore, r.DCRAScore)
	}
}
