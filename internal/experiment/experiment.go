// Package experiment regenerates every table and figure of the paper's
// evaluation from the rebuilt system. Each experiment returns structured
// rows; cmd/experiments formats them as text, and bench_test.go exposes
// each one as a benchmark.
//
// The paper simulates 100M–1B instructions per run; the Config defaults
// are scaled down so the whole suite regenerates in minutes. Shapes —
// which technique wins, by roughly what factor, and where the crossovers
// fall — are the reproduction target, not absolute IPCs (see DESIGN.md).
package experiment

import (
	"fmt"
	"io"

	"smthill/internal/core"
	"smthill/internal/metrics"
	"smthill/internal/pipeline"
	"smthill/internal/policy"
	"smthill/internal/resource"
	"smthill/internal/telemetry"
	"smthill/internal/workload"
)

// renameKind is the partition axis (integer rename registers).
const renameKind = resource.IntRename

// Config scales the experiments.
type Config struct {
	// EpochSize is the epoch length in cycles (the paper's 64K).
	EpochSize int
	// Epochs is the number of measured epochs per workload/technique.
	Epochs int
	// WarmupEpochs run before measurement to fill caches and predictors.
	WarmupEpochs int
	// OffLineStride is the exhaustive-search step in rename registers
	// (the paper's 2; larger is proportionally cheaper).
	OffLineStride int
	// RandHillIters bounds RAND-HILL's per-epoch trial budget (the
	// paper's 128).
	RandHillIters int
	// SoloCycles sizes the stand-alone reference runs for SingleIPC.
	SoloCycles int
}

// Default returns the scaled-down configuration used by the benchmarks.
func Default() Config {
	return Config{
		EpochSize:     core.DefaultEpochSize,
		Epochs:        40,
		WarmupEpochs:  2,
		OffLineStride: 16,
		RandHillIters: 24,
		SoloCycles:    8 * core.DefaultEpochSize,
	}
}

// Paper returns the full-scale configuration matching the paper's
// methodology (expensive: hours of simulation).
func Paper() Config {
	c := Default()
	c.Epochs = 240 // ~1B instructions at the paper's IPCs
	c.OffLineStride = 2
	c.RandHillIters = 128
	c.SoloCycles = 64 * core.DefaultEpochSize
	return c
}

// soloIPC measures an application's stand-alone IPC on a fresh machine
// with full resources.
func soloIPC(app workload.App, cycles int) float64 {
	w := workload.Workload{Apps: []string{app.Name}}
	m := w.NewMachine(nil)
	m.CycleN(cycles)
	return float64(m.Committed(0)) / float64(cycles)
}

// Singles returns the stand-alone reference IPC of each member of w. The
// runs go through the sweep engine, so repeated requests for the same
// application (across workloads, experiments, or cached invocations) are
// computed once.
func Singles(cfg Config, w workload.Workload) []float64 {
	return singlesFor(soloBatch(cfg, []workload.Workload{w}), w)
}

// tele receives run-level telemetry (epoch events, hill moves) from the
// experiment run helpers; nil means tracing is off. cmd/experiments
// installs a sink via SetTelemetry for its -trace flag. Sinks must be
// concurrency-safe: jobs run in parallel on the sweep pool. Experiment
// stdout stays byte-identical with or without a sink — telemetry is a
// side stream, never an input.
var tele telemetry.Sink

// SetTelemetry installs the trace sink used by the experiment run
// helpers (nil disables tracing). Like SetEngine, it is not safe to swap
// concurrently with a running experiment.
func SetTelemetry(s telemetry.Sink) { tele = s }

// traceMachine attaches a stall-attribution recorder to m when tracing
// is on, and returns the run label "<workload>/<technique>".
func traceMachine(m *pipeline.Machine, w workload.Workload, tech string) string {
	if tele != nil {
		m.SetRecorder(telemetry.NewRecorder(m.Threads()))
	}
	return w.Name() + "/" + tech
}

// techniques returns the baseline per-cycle policies of the comparison.
func baselineNames() []string { return []string{"ICOUNT", "FLUSH", "DCRA"} }

// runBaseline measures one baseline policy on w and returns the
// per-thread IPCs over the measured epochs.
func runBaseline(cfg Config, w workload.Workload, polName string) []float64 {
	m := w.NewMachine(policy.ByName(polName))
	label := traceMachine(m, w, polName)
	m.CycleN(cfg.WarmupEpochs * cfg.EpochSize)
	r := core.NewRunner(m, core.None{Label: polName}, metrics.WeightedIPC)
	r.EpochSize = cfg.EpochSize
	r.SamplePeriod = 0 // baselines do not sample
	r.Trace = tele
	r.TraceLabel = label
	r.Run(cfg.Epochs)
	return r.TotalsSince(0)
}

// runHill measures hill-climbing with the given feedback metric on w.
func runHill(cfg Config, w workload.Workload, feedback metrics.Kind) []float64 {
	m := w.NewMachine(nil)
	label := traceMachine(m, w, "HILL-"+feedback.String())
	m.CycleN(cfg.WarmupEpochs * cfg.EpochSize)
	hill := core.NewHillClimber(w.Threads(), m.Resources().Sizes()[renameKind], feedback)
	hill.Trace = tele
	hill.TraceLabel = label
	r := core.NewRunner(m, hill, feedback)
	r.EpochSize = cfg.EpochSize
	r.Trace = tele
	r.TraceLabel = label
	r.Run(cfg.Epochs)
	return r.TotalsSince(0)
}

// pipelinePolicy returns a fresh per-cycle policy instance by name.
func pipelinePolicy(name string) pipeline.Policy { return policy.ByName(name) }

// commitVector snapshots per-thread committed counts.
func commitVector(m *pipeline.Machine) []uint64 {
	out := make([]uint64, m.Threads())
	for th := range out {
		out[th] = m.Committed(th)
	}
	return out
}

// ipcSince converts committed-count deltas into per-thread IPCs.
func ipcSince(m *pipeline.Machine, base []uint64, cycles int) []float64 {
	out := make([]float64, m.Threads())
	for th := range out {
		out[th] = float64(m.Committed(th)-base[th]) / float64(cycles)
	}
	return out
}

// Fprintf-style row writer shared by the CLI.
type table struct {
	w io.Writer
}

func (t table) row(format string, args ...any) {
	fmt.Fprintf(t.w, format+"\n", args...)
}
