package experiment

import (
	"io"

	"smthill/internal/core"
	"smthill/internal/metrics"
	"smthill/internal/pipeline"
	"smthill/internal/workload"
)

// Figure5Row is one epoch of the synchronized time-varying comparison:
// every technique executes the same epoch from the same checkpoint
// (Section 3.3's synchronization methodology).
type Figure5Row struct {
	Epoch int
	// Scores maps technique name to its weighted IPC for the epoch.
	Scores map[string]float64
}

// Figure5 reproduces the synchronized time-varying experiment (the paper
// shows art-mcf): an OFF-LINE run whose per-epoch checkpoints also seed
// ICOUNT, FLUSH, and DCRA for one epoch each.
func Figure5(cfg Config, w workload.Workload) []Figure5Row {
	singles := Singles(cfg, w)
	m := w.NewMachine(nil)
	m.CycleN(cfg.WarmupEpochs * cfg.EpochSize)
	o := core.NewOffLine(m, metrics.WeightedIPC, singles)
	o.EpochSize = cfg.EpochSize
	o.Stride = cfg.OffLineStride

	rows := make([]Figure5Row, 0, cfg.Epochs)
	var scratch *pipeline.Machine // reused across baseline trials via CloneInto
	for e := 0; e < cfg.Epochs; e++ {
		scores := map[string]float64{}
		// Baselines run the epoch from OFF-LINE's checkpoint.
		for _, polName := range baselineNames() {
			scratch = o.M.CloneInto(scratch)
			trial := scratch
			trial.SetPolicy(pipelinePolicy(polName))
			trial.Resources().ClearPartitions()
			base := commitVector(trial)
			trial.CycleN(cfg.EpochSize)
			ipc := ipcSince(trial, base, cfg.EpochSize)
			scores[polName] = metrics.WeightedIPC.Eval(ipc, singles)
		}
		res := o.RunEpoch()
		scores["OFF-LINE"] = res.Score
		rows = append(rows, Figure5Row{Epoch: e, Scores: scores})
	}
	return rows
}

// WriteFigure5 renders the per-epoch series.
func WriteFigure5(w io.Writer, rows []Figure5Row) {
	t := table{w}
	techs := []string{"ICOUNT", "FLUSH", "DCRA", "OFF-LINE"}
	t.row("%5s %10s %10s %10s %10s", "Epoch", techs[0], techs[1], techs[2], techs[3])
	for _, r := range rows {
		t.row("%5d %10.3f %10.3f %10.3f %10.3f", r.Epoch,
			r.Scores[techs[0]], r.Scores[techs[1]], r.Scores[techs[2]], r.Scores[techs[3]])
	}
}

// WinFractions returns, for each baseline, the fraction of epochs in
// which OFF-LINE scored at least as high (the paper reports OFF-LINE
// wins 100% of epochs vs ICOUNT/FLUSH and 97.2% vs DCRA).
func WinFractions(rows []Figure5Row) map[string]float64 {
	wins := map[string]int{}
	for _, r := range rows {
		off := r.Scores["OFF-LINE"]
		for _, b := range baselineNames() {
			if off >= r.Scores[b] {
				wins[b]++
			}
		}
	}
	out := map[string]float64{}
	for _, b := range baselineNames() {
		out[b] = float64(wins[b]) / float64(len(rows))
	}
	return out
}
