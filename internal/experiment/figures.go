package experiment

import (
	"fmt"
	"io"
	"sort"

	"smthill/internal/core"
	"smthill/internal/metrics"
	"smthill/internal/sweep"
	"smthill/internal/workload"
)

// CompareRow holds one workload's end performance under several
// techniques, evaluated with a single metric.
type CompareRow struct {
	Workload string
	Group    string
	// Scores maps technique name to the end metric value.
	Scores map[string]float64
}

// endScore evaluates the end metric from aggregate per-thread IPCs and
// the reference stand-alone IPCs.
func endScore(metric metrics.Kind, ipc, singles []float64) float64 {
	return metric.Eval(ipc, singles)
}

// runOffLine measures the OFF-LINE ideal on w and returns per-thread IPCs
// over the measured epochs.
func runOffLine(cfg Config, w workload.Workload, singles []float64) []float64 {
	m := w.NewMachine(nil)
	m.CycleN(cfg.WarmupEpochs * cfg.EpochSize)
	o := core.NewOffLine(m, metrics.WeightedIPC, singles)
	o.EpochSize = cfg.EpochSize
	o.Stride = cfg.OffLineStride
	o.Trace = tele
	o.TraceLabel = w.Name() + "/OFF-LINE"
	epochs := o.Run(cfg.Epochs)
	return aggregateIPC(epochs, w.Threads(), cfg.EpochSize)
}

// runRandHill measures the RAND-HILL ideal on w.
func runRandHill(cfg Config, w workload.Workload, singles []float64) []float64 {
	m := w.NewMachine(nil)
	m.CycleN(cfg.WarmupEpochs * cfg.EpochSize)
	r := core.NewRandHill(m, metrics.WeightedIPC, singles)
	r.EpochSize = cfg.EpochSize
	r.MaxIters = cfg.RandHillIters
	r.Trace = tele
	r.TraceLabel = w.Name() + "/RAND-HILL"
	epochs := r.Run(cfg.Epochs)
	return aggregateIPC(epochs, w.Threads(), cfg.EpochSize)
}

func aggregateIPC(epochs []core.OffLineEpoch, threads, epochSize int) []float64 {
	committed := make([]uint64, threads)
	for _, e := range epochs {
		for th := 0; th < threads; th++ {
			committed[th] += e.Committed[th]
		}
	}
	ipc := make([]float64, threads)
	for th := 0; th < threads; th++ {
		ipc[th] = float64(committed[th]) / float64(len(epochs)*epochSize)
	}
	return ipc
}

// Figure4 reproduces the limit study: OFF-LINE exhaustive learning versus
// ICOUNT, FLUSH, and DCRA on the 2-thread workloads, under weighted IPC.
// All runs are submitted to the sweep engine in one batch; rows are
// assembled serially in loads order, so output is independent of the
// engine's parallelism.
func Figure4(cfg Config, loads []workload.Workload) []CompareRow {
	solos := soloBatch(cfg, loads)
	var jobs []sweep.Job[[]float64]
	for _, w := range loads {
		for _, pol := range baselineNames() {
			jobs = append(jobs, baselineJob(cfg, w, pol))
		}
		jobs = append(jobs, offLineJob(cfg, w, singlesFor(solos, w)))
	}
	runs := mustRun(jobs)

	rows := make([]CompareRow, 0, len(loads))
	for _, w := range loads {
		singles := singlesFor(solos, w)
		scores := map[string]float64{}
		for _, pol := range baselineNames() {
			scores[pol] = endScore(metrics.WeightedIPC, runs[baselineKey(cfg, w, pol)], singles)
		}
		scores["OFF-LINE"] = endScore(metrics.WeightedIPC, runs[offLineKey(cfg, w)], singles)
		rows = append(rows, CompareRow{Workload: w.Name(), Group: w.Group, Scores: scores})
	}
	return rows
}

// Figure9 reproduces the main on-line result: hill-climbing (weighted IPC
// feedback) versus ICOUNT, FLUSH, and DCRA across workloads.
func Figure9(cfg Config, loads []workload.Workload) []CompareRow {
	solos := soloBatch(cfg, loads)
	var jobs []sweep.Job[[]float64]
	for _, w := range loads {
		for _, pol := range baselineNames() {
			jobs = append(jobs, baselineJob(cfg, w, pol))
		}
		jobs = append(jobs, hillJob(cfg, w, metrics.WeightedIPC))
	}
	runs := mustRun(jobs)

	rows := make([]CompareRow, 0, len(loads))
	for _, w := range loads {
		singles := singlesFor(solos, w)
		scores := map[string]float64{}
		for _, pol := range baselineNames() {
			scores[pol] = endScore(metrics.WeightedIPC, runs[baselineKey(cfg, w, pol)], singles)
		}
		scores["HILL"] = endScore(metrics.WeightedIPC, runs[hillKey(cfg, w, metrics.WeightedIPC)], singles)
		rows = append(rows, CompareRow{Workload: w.Name(), Group: w.Group, Scores: scores})
	}
	return rows
}

// Techniques lists the technique names present in rows, reference
// baselines first.
func Techniques(rows []CompareRow) []string {
	seen := map[string]bool{}
	for _, r := range rows {
		for k := range r.Scores {
			seen[k] = true
		}
	}
	order := []string{"ICOUNT", "FLUSH", "DCRA", "STATIC", "HILL", "HILL-IPC", "HILL-WIPC", "HILL-HWIPC", "HILL+PHASE", "OFF-LINE", "RAND-HILL"}
	out := []string{}
	for _, n := range order {
		if seen[n] {
			out = append(out, n)
			delete(seen, n)
		}
	}
	rest := make([]string, 0, len(seen))
	for n := range seen {
		rest = append(rest, n)
	}
	sort.Strings(rest)
	return append(out, rest...)
}

// GroupMeans averages each technique's score within each workload group
// (and "ALL"), mirroring the paper's group summaries.
func GroupMeans(rows []CompareRow) map[string]map[string]float64 {
	sums := map[string]map[string]float64{}
	counts := map[string]map[string]int{}
	add := func(group, tech string, v float64) {
		if sums[group] == nil {
			sums[group] = map[string]float64{}
			counts[group] = map[string]int{}
		}
		sums[group][tech] += v
		counts[group][tech]++
	}
	for _, r := range rows {
		for tech, v := range r.Scores {
			add(r.Group, tech, v)
			add("ALL", tech, v)
		}
	}
	out := map[string]map[string]float64{}
	for g, m := range sums {
		out[g] = map[string]float64{}
		for tech, s := range m {
			out[g][tech] = s / float64(counts[g][tech])
		}
	}
	return out
}

// Gains reports the mean per-workload relative gain of technique a over
// technique b across rows (the paper's "x% over ICOUNT" numbers).
func Gains(rows []CompareRow, a, b string) float64 {
	sum, n := 0.0, 0
	for _, r := range rows {
		va, okA := r.Scores[a]
		vb, okB := r.Scores[b]
		if okA && okB && vb > 0 {
			sum += va/vb - 1
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// WriteCompare renders comparison rows with one column per technique.
func WriteCompare(w io.Writer, rows []CompareRow) {
	techs := Techniques(rows)
	t := table{w}
	header := fmt.Sprintf("%-7s %-28s", "Group", "Workload")
	for _, tech := range techs {
		header += fmt.Sprintf(" %10s", tech)
	}
	t.row("%s", header)
	for _, r := range rows {
		line := fmt.Sprintf("%-7s %-28s", r.Group, r.Workload)
		for _, tech := range techs {
			line += fmt.Sprintf(" %10.3f", r.Scores[tech])
		}
		t.row("%s", line)
	}
	// Group summary block.
	means := GroupMeans(rows)
	groups := make([]string, 0, len(means))
	for g := range means {
		if g != "ALL" {
			groups = append(groups, g)
		}
	}
	sort.Strings(groups)
	groups = append(groups, "ALL")
	t.row("%s", "")
	for _, g := range groups {
		line := fmt.Sprintf("%-7s %-28s", g, "(mean)")
		for _, tech := range techs {
			line += fmt.Sprintf(" %10.3f", means[g][tech])
		}
		t.row("%s", line)
	}
}
