package experiment

import (
	"context"
	"encoding/json"
	"fmt"
	"strconv"

	"smthill/internal/metrics"
	"smthill/internal/sweep"
	"smthill/internal/workload"
)

// This file makes every experiment job family executable *by key*: a
// job key already encodes the workload, technique, and exactly the
// Config fields its result depends on (see jobs.go), so a node that
// receives only the key can rebuild the identical job and run it on
// its local engine. That is the property the distributed fabric
// (internal/fabric) rests on — closures cannot cross the wire, keys
// can. Every executor re-derives the job through the same constructor
// the native path uses and then asserts the rebuilt key matches the
// requested one, so key-grammar drift fails loudly instead of caching
// a wrong result.

// ExecKey executes the experiment job identified by key on the engine
// installed with SetEngine and returns the exact raw JSON bytes the
// engine stored for it. ok=false means the key belongs to no known
// experiment family (the caller should try other registries or run
// locally); an error means the key named a family but could not be
// rebuilt or run.
func ExecKey(ctx context.Context, key string) (raw json.RawMessage, ok bool, err error) {
	return ExecKeyOn(ctx, engine, key)
}

// ExecKeyOn is ExecKey against an explicit engine. A fabric worker runs
// received keys on its own engine rather than the process-global one,
// so an in-process cluster (tests, fabric-smoke) can host several
// workers without the coordinator's experiment run and the workers'
// executions fighting over SetEngine.
func ExecKeyOn(ctx context.Context, eng *sweep.Engine, key string) (raw json.RawMessage, ok bool, err error) {
	prefix, params, perr := sweep.ParseKey(key)
	if perr != nil {
		return nil, false, nil // not a canonical key; not ours
	}
	family, verOK := splitFamily(prefix)
	if !verOK {
		return nil, false, nil
	}
	p := keyParams{key: key, params: params}
	switch family {
	case "solo":
		app, cycles := p.str("app"), p.num("cycles")
		if err := p.finish(); err != nil {
			return nil, true, err
		}
		if !knownApp(app) {
			return nil, true, fmt.Errorf("experiment: exec %s: unknown application %q", key, app)
		}
		return execJob(ctx, eng, key, soloJob(app, cycles))
	case "baseline":
		cfg, w, err := p.geometry()
		pol := p.str("pol")
		if err2 := firstErr(err, p.finish()); err2 != nil {
			return nil, true, err2
		}
		return execJob(ctx, eng, key, baselineJob(cfg, w, pol))
	case "hill":
		cfg, w, err := p.geometry()
		kind, kerr := metricByName(p.str("metric"))
		if err2 := firstErr(err, kerr, p.finish()); err2 != nil {
			return nil, true, err2
		}
		return execJob(ctx, eng, key, hillJob(cfg, w, kind))
	case "offline":
		cfg, w, err := p.geometry()
		cfg.OffLineStride = p.num("stride")
		cfg.SoloCycles = p.num("sc")
		if err2 := firstErr(err, p.finish()); err2 != nil {
			return nil, true, err2
		}
		singles, serr := singlesOn(ctx, eng, cfg, w)
		if serr != nil {
			return nil, true, serr
		}
		return execJob(ctx, eng, key, offLineJob(cfg, w, singles))
	case "randhill":
		cfg, w, err := p.geometry()
		cfg.RandHillIters = p.num("iters")
		cfg.SoloCycles = p.num("sc")
		if err2 := firstErr(err, p.finish()); err2 != nil {
			return nil, true, err2
		}
		singles, serr := singlesOn(ctx, eng, cfg, w)
		if serr != nil {
			return nil, true, serr
		}
		return execJob(ctx, eng, key, randHillJob(cfg, w, singles))
	case "hillwidth":
		cfg, w, err := p.geometry()
		cfg.OffLineStride = p.num("stride")
		cfg.SoloCycles = p.num("sc")
		if err2 := firstErr(err, p.finish()); err2 != nil {
			return nil, true, err2
		}
		singles, serr := singlesOn(ctx, eng, cfg, w)
		if serr != nil {
			return nil, true, serr
		}
		return execJob(ctx, eng, key, hillWidthJob(cfg, w, singles))
	case "table2":
		cfg := Default()
		app := p.str("app")
		cfg.SoloCycles = p.num("sc")
		if err := p.finish(); err != nil {
			return nil, true, err
		}
		if !knownApp(app) {
			return nil, true, fmt.Errorf("experiment: exec %s: unknown application %q", key, app)
		}
		return execJob(ctx, eng, key, table2Job(cfg, app))
	case "mcpair":
		cfg, w, err := p.geometry()
		cores := p.num("cores")
		pair := p.str("pair")
		if err2 := firstErr(err, p.finish()); err2 != nil {
			return nil, true, err2
		}
		return execJob(ctx, eng, key, mcpairJob(cfg, w, cores, pair))
	case "phasehill":
		cfg, w, err := p.geometry()
		if err2 := firstErr(err, p.finish()); err2 != nil {
			return nil, true, err2
		}
		return execJob(ctx, eng, key, phaseHillJob(cfg, w))
	}
	return nil, false, nil
}

// splitFamily peels "v<resultsVersion>|<family>" apart, refusing other
// result versions: a version-skewed peer must recompute locally rather
// than receive bytes produced under different semantics.
func splitFamily(prefix string) (string, bool) {
	want := fmt.Sprintf("v%d|", resultsVersion)
	if len(prefix) <= len(want) || prefix[:len(want)] != want {
		return "", false
	}
	return prefix[len(want):], true
}

// keyParams accumulates parameter lookups and their first error, so
// family handlers read fields linearly and report one precise failure.
type keyParams struct {
	key    string
	params map[string]string
	err    error
}

func (p *keyParams) str(name string) string {
	v, ok := p.params[name]
	if !ok && p.err == nil {
		p.err = fmt.Errorf("experiment: exec %s: missing parameter %q", p.key, name)
	}
	return v
}

func (p *keyParams) num(name string) int {
	s := p.str(name)
	if p.err != nil {
		return 0
	}
	n, err := strconv.Atoi(s)
	if err != nil {
		p.err = fmt.Errorf("experiment: exec %s: bad %s %q", p.key, name, s)
		return 0
	}
	return n
}

// geometry reads the epoch-geometry triple shared by every
// workload-keyed family and resolves the workload itself.
func (p *keyParams) geometry() (Config, workload.Workload, error) {
	cfg := Default()
	cfg.EpochSize = p.num("es")
	cfg.Epochs = p.num("ep")
	cfg.WarmupEpochs = p.num("wu")
	wl := p.str("wl")
	if p.err != nil {
		return cfg, workload.Workload{}, p.err
	}
	w, err := workload.Parse(wl)
	if err != nil {
		return cfg, workload.Workload{}, fmt.Errorf("experiment: exec %s: %v", p.key, err)
	}
	return cfg, w, nil
}

func (p *keyParams) finish() error { return p.err }

func firstErr(errs ...error) error {
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// execJob runs one rebuilt job on the installed engine and returns the
// engine's stored bytes — the same bytes a local computation of that
// key would have produced and memoised, so remote and local results
// are interchangeable.
func execJob[R any](ctx context.Context, eng *sweep.Engine, key string, j sweep.Job[R]) (json.RawMessage, bool, error) {
	if j.Key != key {
		return nil, true, fmt.Errorf("experiment: exec %s: rebuilt job keys to %s (key grammar drift)", key, j.Key)
	}
	if _, err := sweep.Run(ctx, eng, []sweep.Job[R]{j}); err != nil {
		return nil, true, err
	}
	raw, _, ok := eng.Lookup(ctx, key)
	if !ok {
		return nil, true, fmt.Errorf("experiment: exec %s: result is not cacheable", key)
	}
	return raw, true, nil
}

// singlesOn computes Singles on an explicit engine: the stand-alone
// reference IPCs the ideal techniques score against, via the same solo
// job keys the native path uses, so the per-app runs memoise and cache
// identically.
func singlesOn(ctx context.Context, eng *sweep.Engine, cfg Config, w workload.Workload) ([]float64, error) {
	var jobs []sweep.Job[float64]
	seen := map[string]bool{}
	for _, app := range w.Apps {
		if !seen[app] {
			seen[app] = true
			jobs = append(jobs, soloJob(app, cfg.SoloCycles))
		}
	}
	res, err := sweep.Run(ctx, eng, jobs)
	if err != nil {
		return nil, err
	}
	out := make([]float64, w.Threads())
	for i, app := range w.Apps {
		out[i] = res[soloKey(app, cfg.SoloCycles)]
	}
	return out, nil
}

// metricByName inverts metrics.Kind.String for the kinds job keys use.
func metricByName(name string) (metrics.Kind, error) {
	for k := metrics.Kind(0); k < metrics.NumKinds; k++ {
		if k.String() == name {
			return k, nil
		}
	}
	return 0, fmt.Errorf("experiment: unknown metric %q", name)
}

func knownApp(name string) bool {
	for _, n := range workload.Names() {
		if n == name {
			return true
		}
	}
	return false
}
