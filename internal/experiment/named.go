package experiment

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"

	"smthill/internal/pipeline"
	"smthill/internal/resource"
	"smthill/internal/workload"
)

// names lists every runnable experiment, in "all" order.
var names = []string{
	"table1", "table2", "table3", "fig2", "fig4", "fig5", "fig7",
	"fig9", "fig10", "fig11", "fig12", "qual", "sec5", "mcpair",
}

// Names returns the runnable experiment names in "all" order (excluding
// the "all" meta-experiment itself).
func Names() []string { return append([]string(nil), names...) }

// RunOptions carries the non-scaling knobs of a named-experiment run.
type RunOptions struct {
	// Workloads optionally restricts an experiment to a comma-separated
	// workload subset (empty = the experiment's own set).
	Workloads string
	// Fig12Workload selects fig12's workload (empty = "mcf-eon").
	Fig12Workload string
	// JSONRows emits JSON lines instead of tables for fig4/fig9/fig11.
	JSONRows bool
}

// RunNamed regenerates one named experiment (or "all") into w. It is
// the single entry point behind cmd/experiments and the service
// daemon's /v1/experiments endpoint: unknown names, bad workload
// subsets, and cancelled runs come back as errors — with the valid
// vocabulary in the message — never as panics or process exits. The
// simulations inside run as keyed jobs on the engine installed with
// SetEngine, so results are shared and cached across callers.
func RunNamed(cfg Config, name string, opts RunOptions, w io.Writer) (err error) {
	// mustRun panics on a job failure (a recovered simulation panic or
	// the run context's cancellation); surface it as an error here so
	// long-lived callers outlive one bad run.
	defer func() {
		if p := recover(); p != nil {
			if e, ok := p.(error); ok {
				err = e
				return
			}
			panic(p)
		}
	}()
	if opts.Fig12Workload == "" {
		opts.Fig12Workload = "mcf-eon"
	}
	switch name {
	case "table1":
		writeTable1(cfg, w)
	case "table2":
		fmt.Fprintln(w, "== Table 2: application characterisation ==")
		WriteTable2(w, Table2(cfg))
	case "table3":
		fmt.Fprintln(w, "== Table 3: multiprogrammed workloads ==")
		WriteTable3(w, Table3())
	case "fig2":
		fmt.Fprintln(w, "== Figure 2: IPC vs resource distribution (mesa/vortex/fma3d) ==")
		WriteFigure2(w, Figure2(cfg, 16))
	case "fig4":
		loads, err := pick(opts.Workloads, workload.TwoThread())
		if err != nil {
			return err
		}
		rows := Figure4(cfg, loads)
		if opts.JSONRows {
			return writeCompareJSON(w, "fig4", rows)
		}
		fmt.Fprintln(w, "== Figure 4: OFF-LINE vs ICOUNT/FLUSH/DCRA (2-thread, weighted IPC) ==")
		WriteCompare(w, rows)
		for _, b := range []string{"ICOUNT", "FLUSH", "DCRA"} {
			fmt.Fprintf(w, "OFF-LINE gain over %s: %+.1f%%\n", b, 100*Gains(rows, "OFF-LINE", b))
		}
	case "fig5":
		fmt.Fprintln(w, "== Figure 5: synchronized time-varying performance (art-mcf) ==")
		rows := Figure5(cfg, workload.ByName("art-mcf"))
		WriteFigure5(w, rows)
		wins := WinFractions(rows)
		baselines := make([]string, 0, len(wins))
		for b := range wins {
			baselines = append(baselines, b)
		}
		sort.Strings(baselines)
		for _, b := range baselines {
			fmt.Fprintf(w, "OFF-LINE >= %s in %.1f%% of epochs\n", b, 100*wins[b])
		}
	case "fig7":
		loads, err := pick(opts.Workloads, workload.TwoThread())
		if err != nil {
			return err
		}
		fmt.Fprintln(w, "== Figures 6/7: hill-width analysis (2-thread) ==")
		WriteHillWidths(w, HillWidths(cfg, loads))
	case "fig9":
		loads, err := pick(opts.Workloads, workload.All())
		if err != nil {
			return err
		}
		rows := Figure9(cfg, loads)
		if opts.JSONRows {
			return writeCompareJSON(w, "fig9", rows)
		}
		fmt.Fprintln(w, "== Figure 9: HILL-WIPC vs ICOUNT/FLUSH/DCRA (42 workloads) ==")
		WriteCompare(w, rows)
		for _, b := range []string{"ICOUNT", "FLUSH", "DCRA"} {
			fmt.Fprintf(w, "HILL gain over %s: %+.1f%%\n", b, 100*Gains(rows, "HILL", b))
		}
	case "fig10":
		loads, err := pick(opts.Workloads, workload.All())
		if err != nil {
			return err
		}
		fmt.Fprintln(w, "== Figure 10: metric matrix by workload group ==")
		cells := Figure10(cfg, loads)
		WriteFigure10(w, cells)
		fmt.Fprintf(w, "matched-metric advantage: %+.1f%%\n", 100*MatchedMetricAdvantage(cells))
	case "fig11":
		two, err := pick(opts.Workloads, workload.TwoThread())
		if err != nil {
			return err
		}
		four, err := pick(opts.Workloads, workload.FourThread())
		if err != nil {
			return err
		}
		top := Figure11TwoThread(cfg, two)
		bottom := Figure11FourThread(cfg, four)
		if opts.JSONRows {
			if err := writeFigure11JSON(w, "fig11-2t", top); err != nil {
				return err
			}
			return writeFigure11JSON(w, "fig11-4t", bottom)
		}
		fmt.Fprintln(w, "== Figure 11 (top): HILL-WIPC vs OFF-LINE, 2-thread ==")
		WriteFigure11(w, top)
		fmt.Fprintf(w, "HILL-WIPC achieves %.1f%% of OFF-LINE\n", 100*FractionOfIdeal(top, "OFF-LINE"))
		fmt.Fprintln(w, "== Figure 11 (bottom): DCRA vs HILL-WIPC vs RAND-HILL, 4-thread ==")
		WriteFigure11(w, bottom)
		fmt.Fprintf(w, "HILL-WIPC achieves %.1f%% of RAND-HILL\n", 100*FractionOfIdeal(bottom, "RAND-HILL"))
		fmt.Fprintf(w, "RAND-HILL gain over DCRA: %+.1f%%\n", 100*fig11Gain(bottom))
	case "fig12":
		if _, err := workload.Parse(opts.Fig12Workload); err != nil {
			return err
		}
		fmt.Fprintf(w, "== Figure 12: time-varying behaviour (%s) ==\n", opts.Fig12Workload)
		rows := Figure12(cfg, workload.ByName(opts.Fig12Workload))
		WriteFigure12(w, rows)
		dist, frac := TrackingError(rows, cfg.OffLineStride)
		fmt.Fprintf(w, "mean |HILL-BEST| = %.1f regs; HILL achieves %.1f%% of per-epoch ideal\n", dist, 100*frac)
	case "qual":
		fmt.Fprintln(w, "== Section 3.3.2: qualitative analysis scenarios ==")
		WriteQualitative(w, Qualitative(cfg))
	case "mcpair":
		rows := McPair(cfg, []int{2, 4})
		if opts.JSONRows {
			return writeCompareJSON(w, "mcpair", rows)
		}
		fmt.Fprintln(w, "== Multi-core pairing: allocation policies vs random (aggregate IPC) ==")
		WriteCompare(w, rows)
		for _, p := range []string{"ipc-pred", "stall-pred"} {
			fmt.Fprintf(w, "%s gain over random: %+.1f%%\n", p, 100*Gains(rows, p, "random"))
		}
	case "sec5":
		loads, err := pick(opts.Workloads, workload.All())
		if err != nil {
			return err
		}
		fmt.Fprintln(w, "== Section 5: phase detection and prediction ==")
		WriteSection5(w, Section5(cfg, loads))
	case "all":
		for _, n := range names {
			if err := RunNamed(cfg, n, opts, w); err != nil {
				return err
			}
			fmt.Fprintln(w)
		}
	default:
		return fmt.Errorf("unknown experiment %q; valid experiments:\n  %s",
			name, strings.Join(append(Names(), "all"), " "))
	}
	return nil
}

// pick resolves a comma-separated workload subset, or returns def when
// empty. Unknown names error with the full list of valid ones.
func pick(subset string, def []workload.Workload) ([]workload.Workload, error) {
	if subset == "" {
		return def, nil
	}
	byName := map[string]workload.Workload{}
	all := make([]string, 0, len(workload.All()))
	for _, w := range workload.All() {
		byName[w.Name()] = w
		all = append(all, w.Name())
	}
	var out []workload.Workload
	for _, n := range splitComma(subset) {
		w, ok := byName[n]
		if !ok {
			return nil, fmt.Errorf("unknown workload %q; valid workloads:\n  %s",
				n, strings.Join(all, "\n  "))
		}
		out = append(out, w)
	}
	return out, nil
}

// splitComma splits a comma-separated list, dropping empty elements.
func splitComma(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if part != "" {
			out = append(out, part)
		}
	}
	return out
}

// jsonRow is the JSON-lines row format of the compare-style experiments,
// feeding bench-trajectory tooling. Derived/Predicted appear only for
// fig11 rows.
type jsonRow struct {
	Experiment string             `json:"experiment"`
	Workload   string             `json:"workload"`
	Group      string             `json:"group"`
	Scores     map[string]float64 `json:"scores"`
	Derived    string             `json:"derived,omitempty"`
	Predicted  string             `json:"predicted,omitempty"`
}

func writeCompareJSON(w io.Writer, name string, rows []CompareRow) error {
	enc := json.NewEncoder(w)
	for _, r := range rows {
		if err := enc.Encode(jsonRow{
			Experiment: name, Workload: r.Workload, Group: r.Group, Scores: r.Scores,
		}); err != nil {
			return err
		}
	}
	return nil
}

func writeFigure11JSON(w io.Writer, name string, rows []Figure11Row) error {
	enc := json.NewEncoder(w)
	for _, r := range rows {
		if err := enc.Encode(jsonRow{
			Experiment: name, Workload: r.Workload, Group: r.Group, Scores: r.Scores,
			Derived: r.Derived, Predicted: r.Predicted,
		}); err != nil {
			return err
		}
	}
	return nil
}

func fig11Gain(rows []Figure11Row) float64 {
	sum, n := 0.0, 0
	for _, r := range rows {
		if d := r.Scores["DCRA"]; d > 0 {
			sum += r.Scores["RAND-HILL"]/d - 1
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

func writeTable1(cfg Config, w io.Writer) {
	c := pipeline.DefaultConfig(2)
	fmt.Fprintln(w, "== Table 1: SMT simulator settings ==")
	fmt.Fprintf(w, "Bandwidth          %d-Fetch, %d-Issue, %d-Commit\n", c.FetchWidth, c.IssueWidth, c.CommitWidth)
	fmt.Fprintf(w, "Queue size         %d-IFQ/thread, %d-Int IQ, %d-FP IQ, %d-LSQ\n",
		c.IFQSize, c.Resources[resource.IntIQ], c.Resources[resource.FpIQ], c.Resources[resource.LSQ])
	fmt.Fprintf(w, "Rename reg / ROB   %d-Int, %d-FP / %d entry\n",
		c.Resources[resource.IntRename], c.Resources[resource.FpRename], c.Resources[resource.ROB])
	fmt.Fprintf(w, "Functional units   %d-Int Add, %d-Int Mul/Div, %d-Mem Port, %d-FP Add, %d-FP Mul/Div\n",
		c.FUs.IntAlu, c.FUs.IntMul, c.FUs.MemPorts, c.FUs.FpAlu, c.FUs.FpMul)
	fmt.Fprintf(w, "Branch predictor   hybrid %d-entry gshare / %d-entry bimodal, %d meta, %dx%d BTB, %d RAS\n",
		c.Bpred.GshareEntries, c.Bpred.BimodalEntries, c.Bpred.MetaEntries, c.Bpred.BTBSets, c.Bpred.BTBWays, c.Bpred.RASEntries)
	fmt.Fprintf(w, "IL1/DL1            %dKB, %dB block, %d-way, %d-cycle\n",
		c.Mem.IL1.SizeBytes>>10, c.Mem.IL1.BlockSize, c.Mem.IL1.Ways, c.Mem.IL1.Latency)
	fmt.Fprintf(w, "UL2                %dMB, %dB block, %d-way, %d-cycle\n",
		c.Mem.UL2.SizeBytes>>20, c.Mem.UL2.BlockSize, c.Mem.UL2.Ways, c.Mem.UL2.Latency)
	fmt.Fprintf(w, "Memory             %d-cycle first chunk, %d-cycle inter-chunk\n", c.Mem.MemFirst, c.Mem.MemInter)
	fmt.Fprintf(w, "Epoch              %d cycles; mispredict penalty %d cycles\n", cfg.EpochSize, c.MispredictPenalty)
}
