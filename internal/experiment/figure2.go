package experiment

import (
	"io"

	"smthill/internal/core"
	"smthill/internal/pipeline"
	"smthill/internal/resource"
	"smthill/internal/workload"
)

// Figure2Point is one sample of the IPC surface of Figure 2: the
// machine's IPC during one interval under a specific 3-way resource
// distribution.
type Figure2Point struct {
	// Shares holds the rename-register distribution (thread order
	// matches Figure2's workload: mesa, vortex, fma3d).
	Shares resource.Shares
	// IPC is the aggregate IPC of the interval.
	IPC float64
}

// Figure2 sweeps the resource-distribution simplex for the paper's
// motivating example — mesa, vortex, and fma3d co-scheduled — measuring
// each distribution over the same interval from a common checkpoint
// (the paper uses a 32K-cycle interval). The returned surface is
// hill-shaped with a single clear peak.
func Figure2(cfg Config, stride int) []Figure2Point {
	w := workload.Workload{Apps: []string{"mesa", "vortex", "fma3d"}, Group: "FIG2"}
	m := w.NewMachine(nil)
	m.CycleN(cfg.WarmupEpochs * cfg.EpochSize)

	interval := 32 * 1024
	var points []Figure2Point
	total := m.Resources().Sizes()[resource.IntRename]
	var scratch *pipeline.Machine // reused across trials via CloneInto
	core.EnumerateShares(3, total, stride, func(s resource.Shares) {
		scratch = m.CloneInto(scratch)
		trial := scratch
		trial.Resources().SetShares(s)
		base := trial.Stats().Committed
		trial.CycleN(interval)
		ipc := float64(trial.Stats().Committed-base) / float64(interval)
		points = append(points, Figure2Point{Shares: s, IPC: ipc})
	})
	return points
}

// Peak returns the best point of a Figure 2 surface.
func Peak(points []Figure2Point) Figure2Point {
	best := points[0]
	for _, p := range points {
		if p.IPC > best.IPC {
			best = p
		}
	}
	return best
}

// WriteFigure2 renders the surface as (mesa, vortex, fma3d, IPC) rows and
// marks the peak.
func WriteFigure2(w io.Writer, points []Figure2Point) {
	t := table{w}
	peak := Peak(points)
	t.row("%8s %8s %8s %8s", "mesa", "vortex", "fma3d", "IPC")
	for _, p := range points {
		mark := ""
		if p.Shares[0] == peak.Shares[0] && p.Shares[1] == peak.Shares[1] {
			mark = "  <- peak"
		}
		t.row("%8d %8d %8d %8.3f%s", p.Shares[0], p.Shares[1], p.Shares[2], p.IPC, mark)
	}
}
