package experiment

import (
	"context"
	"fmt"
	"io"

	"smthill/internal/core"
	"smthill/internal/metrics"
	"smthill/internal/sweep"
	"smthill/internal/workload"
)

// HillWidthLevels are the performance levels N at which the paper
// measures hill-width (Figures 6 and 7).
var HillWidthLevels = []float64{0.99, 0.98, 0.97, 0.95, 0.90}

// HillWidthRow holds one workload's hill-width_N values, averaged over
// epochs, in integer rename registers.
type HillWidthRow struct {
	Workload string
	Group    string
	// Width[i] corresponds to HillWidthLevels[i].
	Width []float64
}

// widthAt computes the width of the hill containing the maximal peak at
// level N×max, in units of trials, then scales by the enumeration stride
// to express it in registers.
func widthAt(scores []float64, level float64, stride int) int {
	best, bestIdx := scores[0], 0
	for i, s := range scores {
		if s > best {
			best, bestIdx = s, i
		}
	}
	cut := level * best
	lo := bestIdx
	for lo > 0 && scores[lo-1] >= cut {
		lo--
	}
	hi := bestIdx
	for hi < len(scores)-1 && scores[hi+1] >= cut {
		hi++
	}
	return (hi - lo + 1) * stride
}

// hillWidthKey identifies one workload's hill-width measurement. It is
// an OFF-LINE run reduced to mean widths, so it shares OFF-LINE's
// dependencies (the levels themselves are constants, covered by
// resultsVersion).
func hillWidthKey(cfg Config, w workload.Workload) string {
	return fmt.Sprintf("v%d|hillwidth|wl=%s|es=%d|ep=%d|wu=%d|stride=%d|sc=%d",
		resultsVersion, w.Name(), cfg.EpochSize, cfg.Epochs, cfg.WarmupEpochs,
		cfg.OffLineStride, cfg.SoloCycles)
}

// hillWidthJob measures one workload's mean per-epoch hill widths by
// running the exhaustive search and reducing its trial curves in-job, so
// the cached result stays a small []float64 rather than full epochs.
func hillWidthJob(cfg Config, w workload.Workload, singles []float64) sweep.Job[[]float64] {
	return sweep.Job[[]float64]{
		Key: hillWidthKey(cfg, w),
		Run: func(context.Context) ([]float64, error) {
			m := w.NewMachine(nil)
			m.CycleN(cfg.WarmupEpochs * cfg.EpochSize)
			o := core.NewOffLine(m, metrics.WeightedIPC, singles)
			o.EpochSize = cfg.EpochSize
			o.Stride = cfg.OffLineStride
			epochs := o.Run(cfg.Epochs)

			sums := make([]float64, len(HillWidthLevels))
			for _, e := range epochs {
				scores := make([]float64, len(e.Trials))
				for i, tr := range e.Trials {
					scores[i] = tr.Score
				}
				for li, level := range HillWidthLevels {
					sums[li] += float64(widthAt(scores, level, cfg.OffLineStride))
				}
			}
			widths := make([]float64, len(HillWidthLevels))
			for i := range widths {
				widths[i] = sums[i] / float64(len(epochs))
			}
			return widths, nil
		},
	}
}

// HillWidths runs OFF-LINE on each 2-thread workload and measures the
// sharpness of its per-epoch performance hills (Figure 7). The per-epoch
// trial curves come from the exhaustive search itself (Figure 6 is one
// such curve).
func HillWidths(cfg Config, loads []workload.Workload) []HillWidthRow {
	solos := soloBatch(cfg, loads)
	var jobs []sweep.Job[[]float64]
	for _, w := range loads {
		jobs = append(jobs, hillWidthJob(cfg, w, singlesFor(solos, w)))
	}
	runs := mustRun(jobs)

	rows := make([]HillWidthRow, 0, len(loads))
	for _, w := range loads {
		rows = append(rows, HillWidthRow{
			Workload: w.Name(), Group: w.Group, Width: runs[hillWidthKey(cfg, w)],
		})
	}
	return rows
}

// WriteHillWidths renders the Figure 7 table.
func WriteHillWidths(w io.Writer, rows []HillWidthRow) {
	t := table{w}
	header := fmt.Sprintf("%-8s%-28s", "Group", "Workload")
	for _, l := range HillWidthLevels {
		header += fmt.Sprintf(" %7s", fmt.Sprintf("w%.2f", l))
	}
	t.row("%s", header)
	for _, r := range rows {
		line := fmt.Sprintf("%-8s%-28s", r.Group, r.Workload)
		for _, v := range r.Width {
			line += fmt.Sprintf(" %7.1f", v)
		}
		t.row("%s", line)
	}
}
