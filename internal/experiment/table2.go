package experiment

import (
	"context"
	"fmt"
	"io"
	"sort"

	"smthill/internal/resource"
	"smthill/internal/sweep"
	"smthill/internal/workload"
)

// Table2Row characterises one application model the way the paper's
// Table 2 and Section 4.4.2 do.
type Table2Row struct {
	App string
	// Type is "ILP" or "MEM"; FP marks floating-point benchmarks.
	Type string
	FP   bool
	// Freq is the requirement-variation label ("High"/"Low"/"No").
	Freq string
	// SoloIPC is the stand-alone IPC with full resources.
	SoloIPC float64
	// Rsc is the measured resource requirement: the smallest number of
	// integer rename registers achieving 95% of SoloIPC (Section 4.4.2).
	Rsc int
	// MispredictRate and DL1/L2 miss rates characterise the model.
	MispredictRate float64
	DL1Miss        float64
	L2Miss         float64
}

// rscSweep measures an app's solo IPC as its rename-register allocation
// shrinks, returning the smallest allocation achieving frac of the
// full-resource IPC.
func rscSweep(app workload.App, cycles int, frac float64) (full float64, rsc int) {
	run := func(regs int) float64 {
		w := workload.Workload{Apps: []string{app.Name}}
		m := w.NewMachine(nil)
		m.Resources().SetShares(resource.Shares{regs})
		m.CycleN(cycles)
		return float64(m.Committed(0)) / float64(cycles)
	}
	total := resource.DefaultSizes()[resource.IntRename]
	full = run(total)
	rsc = total
	for regs := total - 16; regs >= 16; regs -= 16 {
		if run(regs) >= frac*full {
			rsc = regs
		} else {
			break
		}
	}
	return full, rsc
}

// table2Key identifies one application's characterisation run; both the
// solo machine and the requirement sweep are sized by SoloCycles.
func table2Key(cfg Config, app string) string {
	return fmt.Sprintf("v%d|table2|app=%s|sc=%d", resultsVersion, app, cfg.SoloCycles)
}

// table2Job characterises one application: a stand-alone run for the
// miss/mispredict rates plus the shrinking-allocation requirement sweep.
func table2Job(cfg Config, name string) sweep.Job[Table2Row] {
	return sweep.Job[Table2Row]{
		Key: table2Key(cfg, name),
		Run: func(context.Context) (Table2Row, error) {
			app := workload.Get(name)
			w := workload.Workload{Apps: []string{name}}
			m := w.NewMachine(nil)
			m.CycleN(cfg.SoloCycles)
			full, rsc := rscSweep(app, cfg.SoloCycles/2, 0.95)
			return Table2Row{
				App:            name,
				Type:           app.Type.String(),
				FP:             app.FP,
				Freq:           app.Profile.Kind.String(),
				SoloIPC:        full,
				Rsc:            rsc,
				MispredictRate: m.MispredictRate(),
				DL1Miss:        m.Mem().DL1.Stats.MissRate(),
				L2Miss:         m.Mem().UL2.Stats.MissRate(),
			}, nil
		},
	}
}

// Table2 measures every catalog application through the sweep engine.
// Rows are sorted by name.
func Table2(cfg Config) []Table2Row {
	names := workload.Names()
	jobs := make([]sweep.Job[Table2Row], 0, len(names))
	for _, name := range names {
		jobs = append(jobs, table2Job(cfg, name))
	}
	runs := mustRun(jobs)
	rows := make([]Table2Row, 0, len(names))
	for _, name := range names {
		rows = append(rows, runs[table2Key(cfg, name)])
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].App < rows[j].App })
	return rows
}

// WriteTable2 renders the rows in the paper's column layout.
func WriteTable2(w io.Writer, rows []Table2Row) {
	t := table{w}
	t.row("%-10s %-4s %-5s %-5s %8s %6s %9s %8s %8s",
		"App", "Type", "Int", "Freq", "SoloIPC", "Rsc", "Mispred", "DL1miss", "L2miss")
	for _, r := range rows {
		intFp := "Int"
		if r.FP {
			intFp = "FP"
		}
		t.row("%-10s %-4s %-5s %-5s %8.3f %6d %8.1f%% %7.1f%% %7.1f%%",
			r.App, r.Type, intFp, r.Freq, r.SoloIPC, r.Rsc,
			100*r.MispredictRate, 100*r.DL1Miss, 100*r.L2Miss)
	}
}

// Table3Row summarises one workload as in the paper's Table 3.
type Table3Row struct {
	Workload string
	Group    string
	RscSum   int
}

// Table3 lists all 42 workloads with their summed resource requirements.
func Table3() []Table3Row {
	all := workload.All()
	rows := make([]Table3Row, len(all))
	for i, w := range all {
		rows[i] = Table3Row{Workload: w.Name(), Group: w.Group, RscSum: w.RscSum()}
	}
	return rows
}

// WriteTable3 renders the workload table.
func WriteTable3(w io.Writer, rows []Table3Row) {
	t := table{w}
	t.row("%-6s %-36s %6s", "Group", "Workload", "Rsc")
	for _, r := range rows {
		t.row("%-6s %-36s %6d", r.Group, r.Workload, r.RscSum)
	}
}
