package experiment

import (
	"fmt"
	"io"

	"smthill/internal/metrics"
	"smthill/internal/sweep"
	"smthill/internal/workload"
)

// Figure10Cell holds one workload's per-thread IPC vector under one
// technique, from which any end metric can be evaluated.
type Figure10Cell struct {
	Workload string
	Group    string
	Tech     string
	IPC      []float64
	Singles  []float64
}

// Figure10Techniques lists the techniques of Figure 10: the baselines
// plus hill-climbing driven by each feedback metric.
func Figure10Techniques() []string {
	return []string{"ICOUNT", "FLUSH", "DCRA", "HILL-IPC", "HILL-WIPC", "HILL-HWIPC"}
}

// hillVariants maps each Figure 10 HILL technique to its feedback metric.
var hillVariants = []struct {
	Tech   string
	Metric metrics.Kind
}{
	{"HILL-IPC", metrics.AvgIPC},
	{"HILL-WIPC", metrics.WeightedIPC},
	{"HILL-HWIPC", metrics.HmeanWeightedIPC},
}

// Figure10 measures every technique on every workload once, recording
// per-thread IPCs so all three evaluation metrics can be applied
// (Figure 10's three panels). All runs go through the sweep engine as
// one batch.
func Figure10(cfg Config, loads []workload.Workload) []Figure10Cell {
	solos := soloBatch(cfg, loads)
	var jobs []sweep.Job[[]float64]
	for _, w := range loads {
		for _, pol := range baselineNames() {
			jobs = append(jobs, baselineJob(cfg, w, pol))
		}
		for _, v := range hillVariants {
			jobs = append(jobs, hillJob(cfg, w, v.Metric))
		}
	}
	runs := mustRun(jobs)

	var cells []Figure10Cell
	for _, w := range loads {
		singles := singlesFor(solos, w)
		add := func(tech string, ipc []float64) {
			cells = append(cells, Figure10Cell{
				Workload: w.Name(), Group: w.Group, Tech: tech,
				IPC: ipc, Singles: singles,
			})
		}
		for _, pol := range baselineNames() {
			add(pol, runs[baselineKey(cfg, w, pol)])
		}
		for _, v := range hillVariants {
			add(v.Tech, runs[hillKey(cfg, w, v.Metric)])
		}
	}
	return cells
}

// Figure10Summary evaluates the cells under the given metric and averages
// by group, returning group -> technique -> score.
func Figure10Summary(cells []Figure10Cell, metric metrics.Kind) map[string]map[string]float64 {
	rows := map[string]map[string][]float64{}
	for _, c := range cells {
		if rows[c.Group] == nil {
			rows[c.Group] = map[string][]float64{}
		}
		rows[c.Group][c.Tech] = append(rows[c.Group][c.Tech], metric.Eval(c.IPC, c.Singles))
	}
	out := map[string]map[string]float64{}
	for g, m := range rows {
		out[g] = map[string]float64{}
		for tech, vs := range m {
			sum := 0.0
			for _, v := range vs {
				sum += v
			}
			out[g][tech] = sum / float64(len(vs))
		}
	}
	return out
}

// WriteFigure10 renders the three panels.
func WriteFigure10(w io.Writer, cells []Figure10Cell) {
	t := table{w}
	techs := Figure10Techniques()
	for _, metric := range []metrics.Kind{metrics.WeightedIPC, metrics.AvgIPC, metrics.HmeanWeightedIPC} {
		t.row("-- evaluated under %s --", metric)
		summary := Figure10Summary(cells, metric)
		header := fmt.Sprintf("%-7s", "Group")
		for _, tech := range techs {
			header += fmt.Sprintf(" %11s", tech)
		}
		t.row("%s", header)
		for _, g := range workload.Groups() {
			m, ok := summary[g]
			if !ok {
				continue
			}
			line := fmt.Sprintf("%-7s", g)
			for _, tech := range techs {
				line += fmt.Sprintf(" %11.3f", m[tech])
			}
			t.row("%s", line)
		}
	}
}

// MatchedMetricAdvantage quantifies the paper's claim that hill-climbing
// performs best under a metric when that same metric drives learning:
// for each evaluation metric it compares the matched HILL variant against
// the mean of the mismatched ones, returning the mean relative advantage.
func MatchedMetricAdvantage(cells []Figure10Cell) float64 {
	variants := map[metrics.Kind]string{
		metrics.AvgIPC:           "HILL-IPC",
		metrics.WeightedIPC:      "HILL-WIPC",
		metrics.HmeanWeightedIPC: "HILL-HWIPC",
	}
	// Gather per-workload scores.
	byKey := map[string]Figure10Cell{}
	workloads := map[string]bool{}
	for _, c := range cells {
		byKey[c.Workload+"/"+c.Tech] = c
		workloads[c.Workload] = true
	}
	sum, n := 0.0, 0
	for metric, matched := range variants {
		for wl := range workloads {
			mc, ok := byKey[wl+"/"+matched]
			if !ok {
				continue
			}
			matchedScore := metric.Eval(mc.IPC, mc.Singles)
			mismatched, k := 0.0, 0
			for other, tech := range variants {
				if other == metric {
					continue
				}
				if oc, ok := byKey[wl+"/"+tech]; ok {
					mismatched += metric.Eval(oc.IPC, oc.Singles)
					k++
				}
			}
			if k > 0 && mismatched > 0 {
				sum += matchedScore/(mismatched/float64(k)) - 1
				n++
			}
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}
