package experiment

import (
	"bytes"
	"context"
	"testing"

	"smthill/internal/metrics"
	"smthill/internal/sweep"
	"smthill/internal/workload"
)

// TestExecKeyMatchesNativeJobs is the fabric's core correctness
// property: executing a job *by key* on a fresh engine produces byte
// for byte the result the native closure produces — so a remote
// worker's answer is interchangeable with local compute.
func TestExecKeyMatchesNativeJobs(t *testing.T) {
	cfg := tiny()
	cfg.Epochs = 3
	cfg.EpochSize = 4 * 1024
	cfg.SoloCycles = 8 * 1024
	w := workload.ByName("art-mcf")
	t.Cleanup(func() { SetEngine(sweep.NewEngine(0)) })

	native := sweep.NewEngine(0)
	SetEngine(native)
	singles := Singles(cfg, w)

	cases := []struct {
		family string
		key    string
		run    func()
	}{
		{"solo", soloKey("art", cfg.SoloCycles),
			func() { mustRun([]sweep.Job[float64]{soloJob("art", cfg.SoloCycles)}) }},
		{"baseline", baselineKey(cfg, w, "ICOUNT"),
			func() { mustRun([]sweep.Job[[]float64]{baselineJob(cfg, w, "ICOUNT")}) }},
		{"hill", hillKey(cfg, w, metrics.WeightedIPC),
			func() { mustRun([]sweep.Job[[]float64]{hillJob(cfg, w, metrics.WeightedIPC)}) }},
		{"offline", offLineKey(cfg, w),
			func() { mustRun([]sweep.Job[[]float64]{offLineJob(cfg, w, singles)}) }},
		{"randhill", randHillKey(cfg, w),
			func() { mustRun([]sweep.Job[[]float64]{randHillJob(cfg, w, singles)}) }},
		{"hillwidth", hillWidthKey(cfg, w),
			func() { mustRun([]sweep.Job[[]float64]{hillWidthJob(cfg, w, singles)}) }},
		{"table2", table2Key(cfg, "art"),
			func() { mustRun([]sweep.Job[Table2Row]{table2Job(cfg, "art")}) }},
		{"phasehill", phaseHillKey(cfg, w),
			func() { mustRun([]sweep.Job[phaseHillResult]{phaseHillJob(cfg, w)}) }},
	}

	for _, c := range cases {
		SetEngine(native)
		c.run()
		want, _, ok := native.Lookup(context.Background(), c.key)
		if !ok {
			t.Fatalf("%s: native run left no memo entry for %s", c.family, c.key)
		}

		fresh := sweep.NewEngine(0)
		SetEngine(fresh)
		got, handled, err := ExecKey(context.Background(), c.key)
		if err != nil || !handled {
			t.Fatalf("%s: ExecKey(%s) handled=%v err=%v", c.family, c.key, handled, err)
		}
		if !bytes.Equal(got, want) {
			t.Errorf("%s: ExecKey bytes differ from native\n exec:   %s\n native: %s", c.family, got, want)
		}
	}
}

func TestExecKeyDeclinesForeignKeys(t *testing.T) {
	t.Cleanup(func() { SetEngine(sweep.NewEngine(0)) })
	for _, key := range []string{
		"v1|simjob|wl=art-mcf|tech=ICOUNT|ep=3|es=1024|wu=1|d=4|seed=0", // simjob family
		"v99|hill|wl=art-mcf", // foreign results version
		"not a key at all",
		"v1|nosuchfamily|wl=art-mcf",
	} {
		if _, handled, err := ExecKey(context.Background(), key); handled || err != nil {
			t.Errorf("ExecKey(%q) = handled=%v err=%v, want declined", key, handled, err)
		}
	}
}

func TestExecKeyRejectsBadFamilyKeys(t *testing.T) {
	t.Cleanup(func() { SetEngine(sweep.NewEngine(0)) })
	for _, key := range []string{
		"v1|hill|wl=art-mcf", // missing geometry
		"v1|hill|wl=art-mcf|metric=nope|es=1024|ep=2|wu=1", // unknown metric
		"v1|baseline|wl=zzz|pol=ICOUNT|es=1024|ep=2|wu=1",  // unknown workload
		"v1|solo|app=zzz|cycles=1024",                      // unknown app
		"v1|solo|app=art|cycles=banana",                    // non-numeric
	} {
		if _, handled, err := ExecKey(context.Background(), key); !handled || err == nil {
			t.Errorf("ExecKey(%q) = handled=%v err=%v, want handled error", key, handled, err)
		}
	}
}
