package experiment

import (
	"context"
	"fmt"
	"strconv"
	"strings"

	"smthill/internal/multicore"
	"smthill/internal/simjob"
	"smthill/internal/sweep"
	"smthill/internal/workload"
)

// The mcpair experiment compares thread-to-core allocation policies on
// the multi-core system (internal/multicore): M 2-context SMT cores
// behind a shared L3, each running its own hill-climber, with the outer
// pairing policy re-grouping threads at reallocation points. The
// comparison axis is the pairing policy — random (the control arm),
// ipc-pred, and stall-pred — scored by aggregate IPC.

// McPairResult is one multi-core pairing run's cached outcome.
type McPairResult struct {
	TotalIPC   float64   `json:"total_ipc"`
	CoreIPC    []float64 `json:"core_ipc"`
	Migrations uint64    `json:"migrations"`
	L3MissRate float64   `json:"l3_miss_rate"`
}

// MulticoreWorkloads returns the workload set for an M-core run: mixes
// of 2*M applications spanning the ILP/MEM spectrum, built from the
// same Table 2 applications as the single-core experiments.
func MulticoreWorkloads(cores int) []workload.Workload {
	var lists []string
	switch cores {
	case 2:
		lists = []string{
			"art,mcf,fma3d,gcc",
			"gzip,twolf,bzip2,mcf",
			"swim,twolf,gzip,vortex",
		}
	case 4:
		lists = []string{
			"art,mcf,fma3d,gcc,gzip,twolf,bzip2,mesa",
			"swim,lucas,vortex,gap,equake,parser,crafty,applu",
		}
	default:
		panic(fmt.Sprintf("experiment: no multicore workload set for %d cores", cores))
	}
	out := make([]workload.Workload, len(lists))
	for i, l := range lists {
		w, err := workload.Parse(l)
		if err != nil {
			panic(err)
		}
		out[i] = w
	}
	return out
}

// mcpairSpec builds the simjob spec for one multi-core pairing run. The
// workload travels as the comma-separated application list, the one
// spelling workload.Parse accepts for any mix.
func mcpairSpec(cfg Config, w workload.Workload, cores int, pairing string) simjob.Spec {
	return simjob.Spec{
		Workload:  strings.Join(w.Apps, ","),
		Tech:      "HILL-WIPC",
		Epochs:    cfg.Epochs,
		EpochSize: cfg.EpochSize,
		Warmup:    cfg.WarmupEpochs,
		Cores:     cores,
		Pairing:   pairing,
	}
}

// mcpairKey identifies one multi-core pairing run. The runs go through
// simjob with Seed 0, so workload, geometry, core count, and pairing
// policy fully determine the result.
func mcpairKey(cfg Config, w workload.Workload, cores int, pairing string) string {
	return sweep.KeyFrom(keyPrefix("mcpair"), map[string]string{
		"wl":    strings.Join(w.Apps, ","),
		"pair":  pairing,
		"cores": strconv.Itoa(cores),
		"es":    strconv.Itoa(cfg.EpochSize),
		"ep":    strconv.Itoa(cfg.Epochs),
		"wu":    strconv.Itoa(cfg.WarmupEpochs),
	})
}

func mcpairJob(cfg Config, w workload.Workload, cores int, pairing string) sweep.Job[McPairResult] {
	return sweep.Job[McPairResult]{
		Key: mcpairKey(cfg, w, cores, pairing),
		Run: func(ctx context.Context) (McPairResult, error) {
			res, err := simjob.Run(ctx, mcpairSpec(cfg, w, cores, pairing), tele)
			if err != nil {
				return McPairResult{}, err
			}
			return McPairResult{
				TotalIPC:   res.TotalIPC,
				CoreIPC:    res.CoreIPC,
				Migrations: res.Migrations,
				L3MissRate: res.L3MissRate,
			}, nil
		},
	}
}

// McPair runs every pairing policy over the multicore workload sets of
// the given core counts and returns one row per (core count, workload)
// with aggregate IPC per policy. Rows group as "<M>core".
func McPair(cfg Config, coreCounts []int) []CompareRow {
	var jobs []sweep.Job[McPairResult]
	for _, cores := range coreCounts {
		for _, w := range MulticoreWorkloads(cores) {
			for _, pairing := range multicore.PairingNames() {
				jobs = append(jobs, mcpairJob(cfg, w, cores, pairing))
			}
		}
	}
	res := mustRun(jobs)
	var rows []CompareRow
	for _, cores := range coreCounts {
		for _, w := range MulticoreWorkloads(cores) {
			row := CompareRow{
				Workload: w.Name(),
				Group:    fmt.Sprintf("%dcore", cores),
				Scores:   map[string]float64{},
			}
			for _, pairing := range multicore.PairingNames() {
				row.Scores[pairing] = res[mcpairKey(cfg, w, cores, pairing)].TotalIPC
			}
			rows = append(rows, row)
		}
	}
	return rows
}
