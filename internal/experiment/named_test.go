package experiment

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func TestSplitComma(t *testing.T) {
	cases := map[string][]string{
		"":        nil,
		"a":       {"a"},
		"a,b":     {"a", "b"},
		"a,,b,":   {"a", "b"},
		",x":      {"x"},
		"a,b,c,d": {"a", "b", "c", "d"},
	}
	for in, want := range cases {
		got := splitComma(in)
		if len(got) != len(want) {
			t.Fatalf("splitComma(%q) = %v, want %v", in, got, want)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("splitComma(%q) = %v, want %v", in, got, want)
			}
		}
	}
}

func TestFig11Gain(t *testing.T) {
	rows := []Figure11Row{
		{Scores: map[string]float64{"DCRA": 1.0, "RAND-HILL": 1.1}},
		{Scores: map[string]float64{"DCRA": 2.0, "RAND-HILL": 2.0}},
	}
	if g := fig11Gain(rows); g < 0.049 || g > 0.051 {
		t.Fatalf("gain = %f, want 0.05", g)
	}
	if g := fig11Gain(nil); g != 0 {
		t.Fatalf("empty gain = %f", g)
	}
}

func TestPickResolvesNames(t *testing.T) {
	loads, err := pick("art-mcf,gzip-bzip2", nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(loads) != 2 || loads[0].Name() != "art-mcf" || loads[1].Name() != "gzip-bzip2" {
		t.Fatalf("loads = %v", loads)
	}
}

func TestPickRejectsUnknownNameWithListing(t *testing.T) {
	_, err := pick("not-a-workload", nil)
	if err == nil {
		t.Fatal("unknown workload accepted")
	}
	msg := err.Error()
	if !strings.Contains(msg, "not-a-workload") {
		t.Fatalf("error does not name the offender: %s", msg)
	}
	// The error must teach the valid vocabulary.
	for _, want := range []string{"art-mcf", "gzip-bzip2", "art-mcf-swim-twolf"} {
		if !strings.Contains(msg, want) {
			t.Fatalf("error listing missing %q: %s", want, msg)
		}
	}
}

func TestWriteCompareJSON(t *testing.T) {
	rows := []CompareRow{
		{Workload: "a-b", Group: "MIX2", Scores: map[string]float64{"HILL": 1.25, "ICOUNT": 1.0}},
		{Workload: "c-d", Group: "ILP2", Scores: map[string]float64{"HILL": 2.5, "ICOUNT": 2.0}},
	}
	var buf bytes.Buffer
	if err := writeCompareJSON(&buf, "fig9", rows); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("%d lines", len(lines))
	}
	var got jsonRow
	if err := json.Unmarshal([]byte(lines[0]), &got); err != nil {
		t.Fatal(err)
	}
	if got.Experiment != "fig9" || got.Workload != "a-b" || got.Scores["HILL"] != 1.25 {
		t.Fatalf("row = %+v", got)
	}
	if got.Derived != "" || got.Predicted != "" {
		t.Fatalf("compare row carries fig11 labels: %+v", got)
	}
}

func TestWriteFigure11JSON(t *testing.T) {
	rows := []Figure11Row{{
		Workload: "a-b", Group: "MEM2", Derived: "LG(L)", Predicted: "TL",
		Scores: map[string]float64{"HILL-WIPC": 1.1, "OFF-LINE": 1.2},
	}}
	var buf bytes.Buffer
	if err := writeFigure11JSON(&buf, "fig11-2t", rows); err != nil {
		t.Fatal(err)
	}
	var got jsonRow
	if err := json.Unmarshal(buf.Bytes(), &got); err != nil {
		t.Fatal(err)
	}
	if got.Experiment != "fig11-2t" || got.Derived != "LG(L)" || got.Predicted != "TL" {
		t.Fatalf("row = %+v", got)
	}
	if got.Scores["OFF-LINE"] != 1.2 {
		t.Fatalf("scores = %v", got.Scores)
	}
}

func TestRunNamedRejectsUnknownExperiment(t *testing.T) {
	var buf bytes.Buffer
	err := RunNamed(Default(), "fig99", RunOptions{}, &buf)
	if err == nil {
		t.Fatal("unknown experiment accepted")
	}
	if !strings.Contains(err.Error(), "fig9") || !strings.Contains(err.Error(), "all") {
		t.Fatalf("error does not list valid experiments: %v", err)
	}
}

func TestRunNamedRejectsUnknownWorkloadSubset(t *testing.T) {
	var buf bytes.Buffer
	err := RunNamed(Default(), "fig4", RunOptions{Workloads: "nope"}, &buf)
	if err == nil || !strings.Contains(err.Error(), "nope") {
		t.Fatalf("bad subset error = %v", err)
	}
}

func TestRunNamedTable1(t *testing.T) {
	var buf bytes.Buffer
	if err := RunNamed(Default(), "table1", RunOptions{}, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "Table 1") || !strings.Contains(buf.String(), "Rename reg") {
		t.Fatalf("table1 output:\n%s", buf.String())
	}
}
