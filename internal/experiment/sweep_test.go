package experiment

import (
	"bytes"
	"sync/atomic"
	"testing"

	"smthill/internal/sweep"
	"smthill/internal/workload"
)

// withEngine runs fn with e installed as the experiment engine, then
// restores the previous one.
func withEngine(e *sweep.Engine, fn func()) {
	old := engine
	engine = e
	defer func() { engine = old }()
	fn()
}

// renderFig4 runs Figure4 and renders it exactly as cmd/experiments
// would, returning the bytes the user sees.
func renderFig4(cfg Config, loads []workload.Workload) string {
	var buf bytes.Buffer
	WriteCompare(&buf, Figure4(cfg, loads))
	return buf.String()
}

func renderFig9(cfg Config, loads []workload.Workload) string {
	var buf bytes.Buffer
	WriteCompare(&buf, Figure9(cfg, loads))
	return buf.String()
}

// TestParallelOutputByteIdentical is the sweep engine's determinism
// guarantee: the rendered experiment output is byte-for-byte the same
// whether jobs run on one worker or many. Each simulation owns its
// machine and rng state, so parallelism cannot change results.
func TestParallelOutputByteIdentical(t *testing.T) {
	cfg := tiny()
	cfg.Epochs = 3
	loads := tinyLoads()

	var serial4, parallel4, serial9, parallel9 string
	withEngine(sweep.NewEngine(1), func() { serial4 = renderFig4(cfg, loads) })
	withEngine(sweep.NewEngine(4), func() { parallel4 = renderFig4(cfg, loads) })
	if serial4 != parallel4 {
		t.Fatalf("fig4 output differs between -j 1 and -j 4:\n--- serial ---\n%s--- parallel ---\n%s", serial4, parallel4)
	}
	withEngine(sweep.NewEngine(1), func() { serial9 = renderFig9(cfg, loads) })
	withEngine(sweep.NewEngine(4), func() { parallel9 = renderFig9(cfg, loads) })
	if serial9 != parallel9 {
		t.Fatalf("fig9 output differs between -j 1 and -j 4:\n--- serial ---\n%s--- parallel ---\n%s", serial9, parallel9)
	}
}

// TestCachedOutputByteIdentical: a second invocation served entirely
// from the on-disk cache renders byte-identical output. This is what
// makes `experiments -cache-dir` safe to use for paper figures.
func TestCachedOutputByteIdentical(t *testing.T) {
	cfg := tiny()
	cfg.Epochs = 3
	loads := tinyLoads()[:1]
	cache, err := sweep.NewCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}

	var first, second string
	e1 := sweep.NewEngine(4)
	e1.SetCache(cache)
	withEngine(e1, func() { first = renderFig4(cfg, loads) })

	// A fresh engine (empty memo) on the same cache directory must serve
	// every job from disk and reproduce the output exactly.
	var computed, hits atomic.Int64
	e2 := sweep.NewEngine(4)
	e2.SetCache(cache)
	e2.SetObserver(func(ev sweep.Event) {
		if ev.Kind != sweep.JobDone {
			return
		}
		if ev.Source == sweep.FromRun {
			computed.Add(1)
		} else {
			hits.Add(1)
		}
	})
	withEngine(e2, func() { second = renderFig4(cfg, loads) })

	if first != second {
		t.Fatalf("cached output differs:\n--- first ---\n%s--- second ---\n%s", first, second)
	}
	if computed.Load() != 0 {
		t.Fatalf("%d jobs recomputed on a warm cache (hits=%d)", computed.Load(), hits.Load())
	}
	if hits.Load() == 0 {
		t.Fatal("no cache hits recorded")
	}
}

// TestSharedRunsComputedOnce: experiments sharing sub-results (Figure 9
// and Section 5 both need the HILL-WIPC runs and solo references) hit
// the engine memo instead of re-simulating, which is the engine's
// cross-experiment saving in `experiments all`.
func TestSharedRunsComputedOnce(t *testing.T) {
	cfg := tiny()
	cfg.Epochs = 2
	loads := tinyLoads()[:1]

	e := sweep.NewEngine(2)
	var computed atomic.Int64
	seen := map[string]int{}
	e.SetObserver(func(ev sweep.Event) {
		if ev.Kind == sweep.JobDone && ev.Source == sweep.FromRun {
			computed.Add(1)
			seen[ev.Key]++
		}
	})
	withEngine(e, func() {
		Figure9(cfg, loads)
		Section5(cfg, loads)
	})
	for key, n := range seen {
		if n > 1 {
			t.Fatalf("job %s computed %d times", key, n)
		}
	}
	// Section 5 after Figure 9 adds only the PhaseHill runs: solos,
	// baselines, and the HILL-WIPC run must all be memo hits.
	// Figure9: 2 solos + 3 baselines + 1 hill; Section5: + 1 phasehill.
	if got := computed.Load(); got != 7 {
		t.Fatalf("%d unique jobs computed, want 7", got)
	}
}
