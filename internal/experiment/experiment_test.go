package experiment

import (
	"bytes"
	"strings"
	"testing"

	"smthill/internal/core"
	"smthill/internal/metrics"
	"smthill/internal/workload"
)

// tiny returns a configuration small enough for unit tests.
func tiny() Config {
	return Config{
		EpochSize:     8 * 1024,
		Epochs:        6,
		WarmupEpochs:  1,
		OffLineStride: 64,
		RandHillIters: 6,
		SoloCycles:    16 * 1024,
	}
}

func tinyLoads() []workload.Workload {
	return []workload.Workload{
		workload.ByName("gzip-bzip2"),
		workload.ByName("art-mcf"),
	}
}

func TestSingles(t *testing.T) {
	s := Singles(tiny(), workload.ByName("art-mcf"))
	if len(s) != 2 || s[0] <= 0 || s[1] <= 0 {
		t.Fatalf("singles = %v", s)
	}
}

func TestTable2Shape(t *testing.T) {
	cfg := tiny()
	rows := Table2(cfg)
	if len(rows) != 22 {
		t.Fatalf("%d rows", len(rows))
	}
	for _, r := range rows {
		if r.SoloIPC <= 0 || r.SoloIPC > 8 {
			t.Errorf("%s solo IPC %.3f", r.App, r.SoloIPC)
		}
		if r.Rsc < 16 || r.Rsc > 256 {
			t.Errorf("%s Rsc %d", r.App, r.Rsc)
		}
	}
	var buf bytes.Buffer
	WriteTable2(&buf, rows)
	if !strings.Contains(buf.String(), "mcf") {
		t.Fatal("rendered table missing apps")
	}
}

func TestTable2TypesAreSeparated(t *testing.T) {
	// Needs warmed caches, so run longer solos than tiny()'s.
	const cycles = 3 * 64 * 1024
	var ilpMin, memMax float64
	ilpMin = 99
	for _, name := range workload.Names() {
		app := workload.Get(name)
		ipc := soloIPC(app, cycles)
		if app.Type == workload.ILP && ipc < ilpMin {
			ilpMin = ipc
		}
		if app.Type == workload.MEM && ipc > memMax {
			memMax = ipc
		}
	}
	if memMax >= ilpMin {
		t.Fatalf("MEM apps (max %.2f) overlap ILP apps (min %.2f) in solo IPC", memMax, ilpMin)
	}
}

func TestTable3(t *testing.T) {
	rows := Table3()
	if len(rows) != 42 {
		t.Fatalf("%d workloads", len(rows))
	}
	var buf bytes.Buffer
	WriteTable3(&buf, rows)
	if !strings.Contains(buf.String(), "art-mcf") {
		t.Fatal("rendered table missing workloads")
	}
}

func TestFigure2SurfaceIsHillShaped(t *testing.T) {
	cfg := tiny()
	points := Figure2(cfg, 48)
	if len(points) < 6 {
		t.Fatalf("only %d surface points", len(points))
	}
	peak := Peak(points)
	if peak.IPC <= 0 {
		t.Fatal("zero peak")
	}
	// The surface must not be flat: the worst point is clearly below
	// the peak.
	worst := peak
	for _, p := range points {
		if p.IPC < worst.IPC {
			worst = p
		}
	}
	if worst.IPC > 0.97*peak.IPC {
		t.Fatalf("surface is flat: worst %.3f vs peak %.3f", worst.IPC, peak.IPC)
	}
	var buf bytes.Buffer
	WriteFigure2(&buf, points)
	if !strings.Contains(buf.String(), "<- peak") {
		t.Fatal("peak not marked")
	}
}

func TestFigure4Rows(t *testing.T) {
	rows := Figure4(tiny(), tinyLoads()[:1])
	if len(rows) != 1 {
		t.Fatalf("%d rows", len(rows))
	}
	for _, tech := range []string{"ICOUNT", "FLUSH", "DCRA", "OFF-LINE"} {
		if rows[0].Scores[tech] <= 0 {
			t.Fatalf("%s score missing: %+v", tech, rows[0].Scores)
		}
	}
	var buf bytes.Buffer
	WriteCompare(&buf, rows)
	if !strings.Contains(buf.String(), "OFF-LINE") {
		t.Fatal("render missing technique")
	}
}

func TestFigure9Rows(t *testing.T) {
	rows := Figure9(tiny(), tinyLoads()[1:])
	if rows[0].Scores["HILL"] <= 0 {
		t.Fatalf("HILL score missing: %+v", rows[0].Scores)
	}
}

func TestGroupMeansAndGains(t *testing.T) {
	rows := []CompareRow{
		{Workload: "a", Group: "G1", Scores: map[string]float64{"X": 1, "Y": 2}},
		{Workload: "b", Group: "G1", Scores: map[string]float64{"X": 3, "Y": 3}},
	}
	means := GroupMeans(rows)
	if means["G1"]["X"] != 2 || means["ALL"]["Y"] != 2.5 {
		t.Fatalf("means = %v", means)
	}
	// Gains: mean of (2/1-1, 3/3-1) = 0.5.
	if g := Gains(rows, "Y", "X"); g < 0.49 || g > 0.51 {
		t.Fatalf("gain = %f", g)
	}
}

func TestFigure5Synchronized(t *testing.T) {
	cfg := tiny()
	rows := Figure5(cfg, workload.ByName("art-mcf"))
	if len(rows) != cfg.Epochs {
		t.Fatalf("%d rows", len(rows))
	}
	wins := WinFractions(rows)
	for _, b := range []string{"ICOUNT", "FLUSH", "DCRA"} {
		if wins[b] < 0 || wins[b] > 1 {
			t.Fatalf("win fraction %f", wins[b])
		}
	}
	// OFF-LINE picks the best trial of each epoch, so it should win
	// most epochs against the weakest baseline.
	if wins["FLUSH"] < 0.5 {
		t.Fatalf("OFF-LINE beat FLUSH in only %.0f%% of epochs", 100*wins["FLUSH"])
	}
	var buf bytes.Buffer
	WriteFigure5(&buf, rows)
	if len(strings.Split(strings.TrimSpace(buf.String()), "\n")) != cfg.Epochs+1 {
		t.Fatal("rendered row count wrong")
	}
}

func TestHillWidthsRows(t *testing.T) {
	cfg := tiny()
	rows := HillWidths(cfg, []workload.Workload{workload.ByName("gzip-bzip2")})
	if len(rows) != 1 || len(rows[0].Width) != len(HillWidthLevels) {
		t.Fatalf("rows = %+v", rows)
	}
	// Widths grow (or stay equal) as the level drops.
	for i := 1; i < len(rows[0].Width); i++ {
		if rows[0].Width[i] < rows[0].Width[i-1] {
			t.Fatalf("widths not monotone: %v", rows[0].Width)
		}
	}
	var buf bytes.Buffer
	WriteHillWidths(&buf, rows)
	if !strings.Contains(buf.String(), "w0.90") {
		t.Fatal("header missing levels")
	}
}

func TestWidthAt(t *testing.T) {
	scores := []float64{0.2, 0.8, 1.0, 0.9, 0.3}
	if got := widthAt(scores, 0.99, 2); got != 2 {
		t.Fatalf("width at 0.99 = %d", got)
	}
	if got := widthAt(scores, 0.85, 2); got != 4 {
		t.Fatalf("width at 0.85 = %d", got)
	}
	if got := widthAt(scores, 0.75, 2); got != 6 {
		t.Fatalf("width at 0.75 = %d", got)
	}
	if got := widthAt(scores, 0.10, 2); got != 10 {
		t.Fatalf("width at 0.10 = %d", got)
	}
}

func TestFigure10CellsAndSummary(t *testing.T) {
	cfg := tiny()
	cfg.Epochs = 4
	cells := Figure10(cfg, []workload.Workload{workload.ByName("gzip-bzip2")})
	if len(cells) != len(Figure10Techniques()) {
		t.Fatalf("%d cells", len(cells))
	}
	sum := Figure10Summary(cells, metrics.AvgIPC)
	if sum["ILP2"]["ICOUNT"] <= 0 {
		t.Fatalf("summary = %v", sum)
	}
	var buf bytes.Buffer
	WriteFigure10(&buf, cells)
	if !strings.Contains(buf.String(), "HILL-HWIPC") {
		t.Fatal("render missing technique")
	}
	_ = MatchedMetricAdvantage(cells) // smoke: no panic on small inputs
}

func TestDeriveLabel(t *testing.T) {
	cases := map[string]string{
		"gzip-bzip2": "SM",     // 83+72 = 155 <= 256
		"art-mcf":    "LG(L)",  // 176+97 > 256; art steady, mcf Low
		"mcf-twolf":  "LG(LH)", // 97+184 > 256; mcf Low, twolf High
		"swim-twolf": "LG(H)",  // 213+184 > 256, twolf High
		"swim-mcf":   "LG(L)",  // 213+97 > 256, mcf Low
	}
	for name, want := range cases {
		got := DeriveLabel(workload.ByName(name))
		if got != want {
			t.Errorf("DeriveLabel(%s) = %s, want %s", name, got, want)
		}
	}
}

func TestPredictBehaviour(t *testing.T) {
	cases := map[string]string{"SM": "SS", "LG(H)": "JL", "LG(L)": "TL", "LG(LH)": "TLJL", "LG": "TL"}
	for in, want := range cases {
		if got := PredictBehaviour(in); got != want {
			t.Errorf("PredictBehaviour(%s) = %s", in, got)
		}
	}
}

func TestFigure11TwoThread(t *testing.T) {
	cfg := tiny()
	rows := Figure11TwoThread(cfg, []workload.Workload{workload.ByName("gzip-bzip2")})
	if rows[0].Scores["OFF-LINE"] <= 0 || rows[0].Scores["HILL-WIPC"] <= 0 {
		t.Fatalf("scores = %v", rows[0].Scores)
	}
	if f := FractionOfIdeal(rows, "OFF-LINE"); f <= 0 || f > 1.5 {
		t.Fatalf("fraction of ideal = %f", f)
	}
	var buf bytes.Buffer
	WriteFigure11(&buf, rows)
	if !strings.Contains(buf.String(), "Derived") {
		t.Fatal("render missing labels")
	}
}

func TestFigure11FourThread(t *testing.T) {
	cfg := tiny()
	cfg.Epochs = 3
	rows := Figure11FourThread(cfg, []workload.Workload{workload.ByName("art-mcf-vpr-swim")})
	for _, tech := range []string{"DCRA", "HILL-WIPC", "RAND-HILL"} {
		if rows[0].Scores[tech] <= 0 {
			t.Fatalf("%s missing: %v", tech, rows[0].Scores)
		}
	}
}

func TestFigure12Trace(t *testing.T) {
	cfg := tiny()
	rows := Figure12(cfg, workload.ByName("gzip-bzip2"))
	if len(rows) != cfg.Epochs {
		t.Fatalf("%d rows", len(rows))
	}
	for _, r := range rows {
		if len(r.Curve) == 0 {
			t.Fatal("empty curve")
		}
		if r.BestShare < 8 || r.BestShare > 248 {
			t.Fatalf("best share %d", r.BestShare)
		}
	}
	dist, frac := TrackingError(rows, cfg.OffLineStride)
	if dist < 0 || frac < 0 || frac > 1.001 {
		t.Fatalf("tracking error = (%f, %f)", dist, frac)
	}
	var buf bytes.Buffer
	WriteFigure12(&buf, rows)
	if !strings.Contains(buf.String(), "|") {
		t.Fatal("render missing curve")
	}
}

func TestSection5Rows(t *testing.T) {
	cfg := tiny()
	rows := Section5(cfg, []workload.Workload{workload.ByName("art-mcf")})
	if rows[0].Hill <= 0 || rows[0].PhaseHill <= 0 {
		t.Fatalf("rows = %+v", rows)
	}
	overall, tl := Section5Boost(rows)
	if overall < -1 || overall > 1 || tl < -1 || tl > 1 {
		t.Fatalf("boost = (%f, %f)", overall, tl)
	}
	var buf bytes.Buffer
	WriteSection5(&buf, rows)
	if !strings.Contains(buf.String(), "phase extension boost") {
		t.Fatal("render missing summary")
	}
}

func TestConfigs(t *testing.T) {
	d, p := Default(), Paper()
	if d.EpochSize != core.DefaultEpochSize {
		t.Fatal("default epoch size wrong")
	}
	if p.Epochs <= d.Epochs || p.OffLineStride >= d.OffLineStride {
		t.Fatal("paper config is not larger-scale than default")
	}
}

func TestQualitativeScenarios(t *testing.T) {
	cfg := tiny()
	cfg.Epochs = 3
	rows := Qualitative(cfg)
	if len(rows) != 2 {
		t.Fatalf("%d scenarios", len(rows))
	}
	for _, r := range rows {
		if r.BestShare < 8 || r.BestShare > 248 {
			t.Errorf("%s best share %.1f out of range", r.Scenario, r.BestShare)
		}
		if r.DCRAShare < 1 || r.DCRAShare > 256 {
			t.Errorf("%s DCRA share %.1f out of range", r.Scenario, r.DCRAShare)
		}
		if r.BestScore <= 0 || r.DCRAScore <= 0 {
			t.Errorf("%s scores %.3f/%.3f", r.Scenario, r.BestScore, r.DCRAScore)
		}
	}
	var buf bytes.Buffer
	WriteQualitative(&buf, rows)
	if !strings.Contains(buf.String(), "clustering") {
		t.Fatal("render missing scenario")
	}
}
