package experiment

import (
	"fmt"
	"io"

	"smthill/internal/metrics"
	"smthill/internal/sweep"
	"smthill/internal/trace"
	"smthill/internal/workload"
)

// Figure11Row compares hill-climbing against the idealised learner on one
// workload and carries the paper's derived characterisation labels.
type Figure11Row struct {
	Workload string
	Group    string
	Scores   map[string]float64
	// Derived is the "derived characteristics" label: SM, LG(H), LG(L),
	// or LG(LH) (Section 4.4.2).
	Derived string
	// Predicted is the behaviour predicted from Derived: SS, JL, TL, or
	// TLJL.
	Predicted string
}

// DeriveLabel computes the paper's SM/LG(H/L/LH) label for a workload
// from the per-application resource requirements and variation
// frequencies of Table 2. The threshold is 256 rename registers for
// 2-thread workloads and 440 for 4-thread ones (Section 4.4.2).
func DeriveLabel(w workload.Workload) string {
	threshold := 256
	if w.Threads() == 4 {
		threshold = 440
	}
	if w.RscSum() <= threshold {
		return "SM"
	}
	hasHigh, hasLow := false, false
	for _, name := range w.Apps {
		switch workload.Get(name).Profile.Kind {
		case trace.PhaseHigh:
			hasHigh = true
		case trace.PhaseLow:
			hasLow = true
		}
	}
	switch {
	case hasHigh && hasLow:
		return "LG(LH)"
	case hasHigh:
		return "LG(H)"
	case hasLow:
		return "LG(L)"
	default:
		return "LG"
	}
}

// PredictBehaviour maps a derived label to the expected time-varying
// behaviour class (Section 4.4.2: SM -> SS, LG(H) -> JL, LG(L) -> TL).
func PredictBehaviour(label string) string {
	switch label {
	case "SM":
		return "SS"
	case "LG(H)":
		return "JL"
	case "LG(L)":
		return "TL"
	case "LG(LH)":
		return "TLJL"
	default:
		return "TL"
	}
}

// Figure11TwoThread compares HILL-WIPC against OFF-LINE on the 2-thread
// workloads (the figure's top panel). Runs are one sweep-engine batch.
func Figure11TwoThread(cfg Config, loads []workload.Workload) []Figure11Row {
	solos := soloBatch(cfg, loads)
	var jobs []sweep.Job[[]float64]
	for _, w := range loads {
		jobs = append(jobs,
			hillJob(cfg, w, metrics.WeightedIPC),
			offLineJob(cfg, w, singlesFor(solos, w)))
	}
	runs := mustRun(jobs)

	rows := make([]Figure11Row, 0, len(loads))
	for _, w := range loads {
		singles := singlesFor(solos, w)
		label := DeriveLabel(w)
		rows = append(rows, Figure11Row{
			Workload: w.Name(), Group: w.Group,
			Scores: map[string]float64{
				"HILL-WIPC": endScore(metrics.WeightedIPC, runs[hillKey(cfg, w, metrics.WeightedIPC)], singles),
				"OFF-LINE":  endScore(metrics.WeightedIPC, runs[offLineKey(cfg, w)], singles),
			},
			Derived:   label,
			Predicted: PredictBehaviour(label),
		})
	}
	return rows
}

// Figure11FourThread compares DCRA, HILL-WIPC, and RAND-HILL on the
// 4-thread workloads (the figure's bottom panel).
func Figure11FourThread(cfg Config, loads []workload.Workload) []Figure11Row {
	solos := soloBatch(cfg, loads)
	var jobs []sweep.Job[[]float64]
	for _, w := range loads {
		jobs = append(jobs,
			baselineJob(cfg, w, "DCRA"),
			hillJob(cfg, w, metrics.WeightedIPC),
			randHillJob(cfg, w, singlesFor(solos, w)))
	}
	runs := mustRun(jobs)

	rows := make([]Figure11Row, 0, len(loads))
	for _, w := range loads {
		singles := singlesFor(solos, w)
		label := DeriveLabel(w)
		rows = append(rows, Figure11Row{
			Workload: w.Name(), Group: w.Group,
			Scores: map[string]float64{
				"DCRA":      endScore(metrics.WeightedIPC, runs[baselineKey(cfg, w, "DCRA")], singles),
				"HILL-WIPC": endScore(metrics.WeightedIPC, runs[hillKey(cfg, w, metrics.WeightedIPC)], singles),
				"RAND-HILL": endScore(metrics.WeightedIPC, runs[randHillKey(cfg, w)], singles),
			},
			Derived:   label,
			Predicted: PredictBehaviour(label),
		})
	}
	return rows
}

// WriteFigure11 renders rows with their labels.
func WriteFigure11(w io.Writer, rows []Figure11Row) {
	if len(rows) == 0 {
		return
	}
	var techs []string
	for _, cand := range []string{"DCRA", "HILL-WIPC", "OFF-LINE", "RAND-HILL"} {
		if _, ok := rows[0].Scores[cand]; ok {
			techs = append(techs, cand)
		}
	}
	t := table{w}
	header := fmt.Sprintf("%-7s %-28s %-8s %-9s", "Group", "Workload", "Derived", "Predicted")
	for _, tech := range techs {
		header += fmt.Sprintf(" %10s", tech)
	}
	t.row("%s", header)
	for _, r := range rows {
		line := fmt.Sprintf("%-7s %-28s %-8s %-9s", r.Group, r.Workload, r.Derived, r.Predicted)
		for _, tech := range techs {
			line += fmt.Sprintf(" %10.3f", r.Scores[tech])
		}
		t.row("%s", line)
	}
}

// FractionOfIdeal returns the mean ratio of hill-climbing's score to the
// idealised learner's across rows (the paper reports 96.6% of OFF-LINE
// and 94.1% of RAND-HILL).
func FractionOfIdeal(rows []Figure11Row, ideal string) float64 {
	sum, n := 0.0, 0
	for _, r := range rows {
		if iv, ok := r.Scores[ideal]; ok && iv > 0 {
			sum += r.Scores["HILL-WIPC"] / iv
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}
