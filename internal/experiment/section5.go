package experiment

import (
	"context"
	"fmt"
	"io"

	"smthill/internal/core"
	"smthill/internal/metrics"
	"smthill/internal/sweep"
	"smthill/internal/workload"
)

// Section5Row compares plain hill-climbing with the phase-detection and
// -prediction extension on one workload.
type Section5Row struct {
	Workload string
	Group    string
	// Behaviour is the predicted time-varying behaviour label (the
	// extension mainly helps TL workloads).
	Behaviour string
	Hill      float64
	PhaseHill float64
	// Phases is the number of distinct phases detected.
	Phases int
	// Jumps counts anchor restorations from the phase table.
	Jumps int
}

// phaseHillResult is the cacheable outcome of one PhaseHill run.
type phaseHillResult struct {
	IPC    []float64
	Phases int
	Jumps  int
}

// phaseHillKey identifies one Section 5 run; like plain hill-climbing it
// samples SingleIPC on-line, so only the epoch geometry matters.
func phaseHillKey(cfg Config, w workload.Workload) string {
	return fmt.Sprintf("v%d|phasehill|wl=%s|es=%d|ep=%d|wu=%d",
		resultsVersion, w.Name(), cfg.EpochSize, cfg.Epochs, cfg.WarmupEpochs)
}

// phaseHillJob measures the Section 5 technique on w.
func phaseHillJob(cfg Config, w workload.Workload) sweep.Job[phaseHillResult] {
	return sweep.Job[phaseHillResult]{
		Key: phaseHillKey(cfg, w),
		Run: func(context.Context) (phaseHillResult, error) {
			m := w.NewMachine(nil)
			m.CycleN(cfg.WarmupEpochs * cfg.EpochSize)
			ph := core.NewPhaseHill(w.Threads(), m.Resources().Sizes()[renameKind], metrics.WeightedIPC)
			r := core.NewRunner(m, ph, metrics.WeightedIPC)
			r.EpochSize = cfg.EpochSize
			r.Run(cfg.Epochs)
			return phaseHillResult{IPC: r.TotalsSince(0), Phases: ph.Phases(), Jumps: ph.Jumps}, nil
		},
	}
}

// Section5 measures HILL-WIPC with and without phase support. The plain
// hill runs share their job keys with Figure 9, so under one engine they
// are computed (or cached) once across the whole suite.
func Section5(cfg Config, loads []workload.Workload) []Section5Row {
	solos := soloBatch(cfg, loads)
	hillJobs := make([]sweep.Job[[]float64], 0, len(loads))
	phaseJobs := make([]sweep.Job[phaseHillResult], 0, len(loads))
	for _, w := range loads {
		hillJobs = append(hillJobs, hillJob(cfg, w, metrics.WeightedIPC))
		phaseJobs = append(phaseJobs, phaseHillJob(cfg, w))
	}
	hills := mustRun(hillJobs)
	phases := mustRun(phaseJobs)

	rows := make([]Section5Row, 0, len(loads))
	for _, w := range loads {
		singles := singlesFor(solos, w)
		ph := phases[phaseHillKey(cfg, w)]
		rows = append(rows, Section5Row{
			Workload:  w.Name(),
			Group:     w.Group,
			Behaviour: PredictBehaviour(DeriveLabel(w)),
			Hill:      endScore(metrics.WeightedIPC, hills[hillKey(cfg, w, metrics.WeightedIPC)], singles),
			PhaseHill: endScore(metrics.WeightedIPC, ph.IPC, singles),
			Phases:    ph.Phases,
			Jumps:     ph.Jumps,
		})
	}
	return rows
}

// Section5Boost returns the mean relative gain of the phase extension,
// overall and restricted to TL-class workloads (the paper reports 0.4%
// overall and 2.1% on TL workloads).
func Section5Boost(rows []Section5Row) (overall, tlOnly float64) {
	sum, n := 0.0, 0
	tlSum, tlN := 0.0, 0
	for _, r := range rows {
		if r.Hill <= 0 {
			continue
		}
		g := r.PhaseHill/r.Hill - 1
		sum += g
		n++
		if r.Behaviour == "TL" || r.Behaviour == "TLJL" {
			tlSum += g
			tlN++
		}
	}
	if n > 0 {
		overall = sum / float64(n)
	}
	if tlN > 0 {
		tlOnly = tlSum / float64(tlN)
	}
	return overall, tlOnly
}

// WriteSection5 renders the comparison.
func WriteSection5(w io.Writer, rows []Section5Row) {
	t := table{w}
	t.row("%-7s %-28s %-9s %10s %12s %7s %6s", "Group", "Workload", "Behaviour", "HILL", "HILL+PHASE", "Phases", "Jumps")
	for _, r := range rows {
		t.row("%-7s %-28s %-9s %10.3f %12.3f %7d %6d",
			r.Group, r.Workload, r.Behaviour, r.Hill, r.PhaseHill, r.Phases, r.Jumps)
	}
	overall, tl := Section5Boost(rows)
	t.row("%s", "")
	t.row("phase extension boost: %+.2f%% overall, %+.2f%% on TL workloads",
		100*overall, 100*tl)
}
