package experiment

import (
	"io"

	"smthill/internal/core"
	"smthill/internal/metrics"
	"smthill/internal/workload"
)

// Section5Row compares plain hill-climbing with the phase-detection and
// -prediction extension on one workload.
type Section5Row struct {
	Workload string
	Group    string
	// Behaviour is the predicted time-varying behaviour label (the
	// extension mainly helps TL workloads).
	Behaviour string
	Hill      float64
	PhaseHill float64
	// Phases is the number of distinct phases detected.
	Phases int
	// Jumps counts anchor restorations from the phase table.
	Jumps int
}

// runPhaseHill measures the Section 5 technique on w.
func runPhaseHill(cfg Config, w workload.Workload) ([]float64, *core.PhaseHill) {
	m := w.NewMachine(nil)
	m.CycleN(cfg.WarmupEpochs * cfg.EpochSize)
	ph := core.NewPhaseHill(w.Threads(), m.Resources().Sizes()[renameKind], metrics.WeightedIPC)
	r := core.NewRunner(m, ph, metrics.WeightedIPC)
	r.EpochSize = cfg.EpochSize
	r.Run(cfg.Epochs)
	return r.TotalsSince(0), ph
}

// Section5 measures HILL-WIPC with and without phase support.
func Section5(cfg Config, loads []workload.Workload) []Section5Row {
	rows := make([]Section5Row, 0, len(loads))
	for _, w := range loads {
		singles := Singles(cfg, w)
		hill := endScoreW(cfg, w, singles)
		ipc, ph := runPhaseHill(cfg, w)
		rows = append(rows, Section5Row{
			Workload:  w.Name(),
			Group:     w.Group,
			Behaviour: PredictBehaviour(DeriveLabel(w)),
			Hill:      hill,
			PhaseHill: endScore(metrics.WeightedIPC, ipc, singles),
			Phases:    ph.Phases(),
			Jumps:     ph.Jumps,
		})
	}
	return rows
}

// Section5Boost returns the mean relative gain of the phase extension,
// overall and restricted to TL-class workloads (the paper reports 0.4%
// overall and 2.1% on TL workloads).
func Section5Boost(rows []Section5Row) (overall, tlOnly float64) {
	sum, n := 0.0, 0
	tlSum, tlN := 0.0, 0
	for _, r := range rows {
		if r.Hill <= 0 {
			continue
		}
		g := r.PhaseHill/r.Hill - 1
		sum += g
		n++
		if r.Behaviour == "TL" || r.Behaviour == "TLJL" {
			tlSum += g
			tlN++
		}
	}
	if n > 0 {
		overall = sum / float64(n)
	}
	if tlN > 0 {
		tlOnly = tlSum / float64(tlN)
	}
	return overall, tlOnly
}

// WriteSection5 renders the comparison.
func WriteSection5(w io.Writer, rows []Section5Row) {
	t := table{w}
	t.row("%-7s %-28s %-9s %10s %12s %7s %6s", "Group", "Workload", "Behaviour", "HILL", "HILL+PHASE", "Phases", "Jumps")
	for _, r := range rows {
		t.row("%-7s %-28s %-9s %10.3f %12.3f %7d %6d",
			r.Group, r.Workload, r.Behaviour, r.Hill, r.PhaseHill, r.Phases, r.Jumps)
	}
	overall, tl := Section5Boost(rows)
	t.row("%s", "")
	t.row("phase extension boost: %+.2f%% overall, %+.2f%% on TL workloads",
		100*overall, 100*tl)
}
