package experiment

import (
	"strings"
	"testing"

	"smthill/internal/workload"
)

func TestFigure12WorkloadsAreValid(t *testing.T) {
	wls := Figure12Workloads()
	if len(wls) != 5 {
		t.Fatalf("%d representative workloads, want 5", len(wls))
	}
	wantClasses := map[string]bool{"TS": false, "SS": false, "TL": false, "SL": false, "JL": false}
	for name, label := range wls {
		workload.ByName(name) // panics if unknown
		matched := false
		for class := range wantClasses {
			if strings.HasPrefix(label, class) {
				wantClasses[class] = true
				matched = true
			}
		}
		if !matched {
			t.Errorf("workload %s has unclassified label %q", name, label)
		}
	}
	for class, seen := range wantClasses {
		if !seen {
			t.Errorf("behaviour class %s missing from the representative set", class)
		}
	}
}

func TestFigure12WorkloadsAreTwoThread(t *testing.T) {
	for name := range Figure12Workloads() {
		if w := workload.ByName(name); w.Threads() != 2 {
			t.Errorf("%s has %d threads; Figure 12 uses 2-thread workloads", name, w.Threads())
		}
	}
}
