package experiment

import (
	"bytes"
	"context"
	"encoding/json"
	"testing"

	"smthill/internal/sweep"
)

func renderMcPair(cfg Config) string {
	var buf bytes.Buffer
	WriteCompare(&buf, McPair(cfg, []int{2}))
	return buf.String()
}

// TestMcPairParallelByteIdentical extends the engine-determinism
// contract to the multi-core family: the rendered mcpair comparison is
// byte-for-byte identical on one worker and on four.
func TestMcPairParallelByteIdentical(t *testing.T) {
	cfg := tiny()
	cfg.Epochs = 3

	var serial, parallel string
	withEngine(sweep.NewEngine(1), func() { serial = renderMcPair(cfg) })
	withEngine(sweep.NewEngine(4), func() { parallel = renderMcPair(cfg) })
	if serial != parallel {
		t.Fatalf("mcpair output differs between -j 1 and -j 4:\n--- serial ---\n%s--- parallel ---\n%s", serial, parallel)
	}
	if serial == "" {
		t.Fatal("mcpair rendered nothing")
	}
}

// TestMcPairExecKey: mcpair job keys are executable by key, the
// property the distributed fabric needs, and the bytes match a native
// run of the same job.
func TestMcPairExecKey(t *testing.T) {
	cfg := tiny()
	cfg.Epochs = 2
	w := MulticoreWorkloads(2)[0]
	key := mcpairKey(cfg, w, 2, "stall-pred")

	eng := sweep.NewEngine(2)
	raw, ok, err := ExecKeyOn(context.Background(), eng, key)
	if err != nil || !ok {
		t.Fatalf("ExecKeyOn(%q) = ok=%v err=%v", key, ok, err)
	}
	var res McPairResult
	if err := json.Unmarshal(raw, &res); err != nil {
		t.Fatal(err)
	}
	if res.TotalIPC <= 0 || len(res.CoreIPC) != 2 {
		t.Fatalf("exec-by-key result = %+v", res)
	}

	var native McPairResult
	withEngine(sweep.NewEngine(1), func() {
		native = mustRun([]sweep.Job[McPairResult]{mcpairJob(cfg, w, 2, "stall-pred")})[key]
	})
	nb, err := json.Marshal(native)
	if err != nil {
		t.Fatal(err)
	}
	if string(nb) != string(raw) {
		t.Fatalf("exec-by-key bytes differ from native run:\n%s\n%s", raw, nb)
	}
}

// TestMcPairExecKeyRejectsBadParams: a key naming the family but
// carrying a broken parameter set errors instead of silently running
// something else.
func TestMcPairExecKeyRejectsBadParams(t *testing.T) {
	for _, key := range []string{
		"v1|mcpair|wl=art,mcf|es=1024|ep=2|wu=1",                             // missing cores/pair
		"v1|mcpair|wl=art,mcf|pair=ipc-pred|cores=x|es=1024|ep=2|wu=1",       // bad cores
		"v1|mcpair|wl=no-such-app,art|pair=random|cores=1|es=1024|ep=2|wu=1", // unknown app
	} {
		_, ok, err := ExecKeyOn(context.Background(), sweep.NewEngine(1), key)
		if !ok || err == nil {
			t.Errorf("ExecKeyOn(%q) = ok=%v err=%v, want ok=true with error", key, ok, err)
		}
	}
}

// TestMulticoreWorkloadsShape: every advertised workload set has
// exactly 2 applications per core.
func TestMulticoreWorkloadsShape(t *testing.T) {
	for _, cores := range []int{2, 4} {
		loads := MulticoreWorkloads(cores)
		if len(loads) == 0 {
			t.Fatalf("%d cores: empty workload set", cores)
		}
		for _, w := range loads {
			if w.Threads() != 2*cores {
				t.Errorf("%d cores: workload %s has %d threads", cores, w.Name(), w.Threads())
			}
		}
	}
}
