package experiment

import (
	"context"
	"fmt"
	"strconv"

	"smthill/internal/metrics"
	"smthill/internal/sweep"
	"smthill/internal/workload"
)

// resultsVersion is folded into every job key. Bump it whenever the
// simulator or the experiment semantics change in a result-affecting
// way, so stale disk-cache entries from older builds are never reused.
const resultsVersion = 1

// engine executes every experiment's simulation jobs. The default runs
// parallel with no disk cache; cmd/experiments installs a configured one
// via SetEngine. All experiment output is byte-identical regardless of
// the engine's worker count or cache state (see internal/sweep's
// determinism contract): job results are pure functions of their keys,
// and row assembly happens serially in workload order.
var engine = sweep.NewEngine(0)

// SetEngine installs the sweep engine used by every experiment function.
// Call it before running experiments; it is not safe to swap engines
// concurrently with a running experiment.
func SetEngine(e *sweep.Engine) {
	if e != nil {
		engine = e
	}
}

// runCtx cancels every experiment's simulation batches. The default is
// never cancelled; cmd/experiments installs a signal-bound context via
// SetContext so Ctrl-C stops in-flight sweeps cleanly (workers drain,
// the disk cache keeps only complete, atomically written entries), and
// the service daemon installs its shutdown context.
var runCtx = context.Background()

// SetContext installs the cancellation context used by every experiment
// function (nil restores the default never-cancelled context). Like
// SetEngine, it is not safe to swap concurrently with a running
// experiment.
func SetContext(ctx context.Context) {
	if ctx == nil {
		ctx = context.Background()
	}
	runCtx = ctx
}

// mustRun submits a batch and panics on failure. Job errors can only be
// recovered panics from inside a simulation (or cancellation), which in
// the pre-engine serial code would have propagated as panics too;
// RunNamed converts the panic back into an error for long-lived callers.
func mustRun[R any](jobs []sweep.Job[R]) map[string]R {
	res, err := sweep.Run(runCtx, engine, jobs)
	if err != nil {
		panic(err)
	}
	return res
}

// Job keys encode the workload, technique, and exactly the Config fields
// the run's result depends on — no more, so results shared between
// experiments (solo runs, baseline runs) hit the memo and cache across
// differing irrelevant fields; no fewer, or the cache would serve wrong
// results. Constants compiled into the simulator (core.DefaultDelta,
// sampling defaults, hill-width levels, ...) are covered by
// resultsVersion.

// keyPrefix stamps a job family with the results version.
func keyPrefix(family string) string {
	return fmt.Sprintf("v%d|%s", resultsVersion, family)
}

// soloKey identifies a stand-alone reference run of one application.
func soloKey(app string, cycles int) string {
	return sweep.KeyFrom(keyPrefix("solo"), map[string]string{
		"app":    app,
		"cycles": strconv.Itoa(cycles),
	})
}

func soloJob(app string, cycles int) sweep.Job[float64] {
	return sweep.Job[float64]{
		Key: soloKey(app, cycles),
		Run: func(context.Context) (float64, error) {
			return soloIPC(workload.Get(app), cycles), nil
		},
	}
}

// soloBatch computes the stand-alone IPC of every distinct member
// application of loads through the engine, returning app name -> IPC.
func soloBatch(cfg Config, loads []workload.Workload) map[string]float64 {
	var jobs []sweep.Job[float64]
	seen := map[string]bool{}
	for _, w := range loads {
		for _, app := range w.Apps {
			if !seen[app] {
				seen[app] = true
				jobs = append(jobs, soloJob(app, cfg.SoloCycles))
			}
		}
	}
	res := mustRun(jobs)
	out := make(map[string]float64, len(seen))
	for app := range seen {
		out[app] = res[soloKey(app, cfg.SoloCycles)]
	}
	return out
}

// singlesFor assembles a workload's per-thread SingleIPC vector from a
// soloBatch result.
func singlesFor(solos map[string]float64, w workload.Workload) []float64 {
	out := make([]float64, w.Threads())
	for i, app := range w.Apps {
		out[i] = solos[app]
	}
	return out
}

// baselineKey identifies one baseline-policy run. Baselines use no
// learning and no sampling, so only the epoch geometry matters.
func baselineKey(cfg Config, w workload.Workload, pol string) string {
	return sweep.KeyFrom(keyPrefix("baseline"), map[string]string{
		"wl":  w.Name(),
		"pol": pol,
		"es":  strconv.Itoa(cfg.EpochSize),
		"ep":  strconv.Itoa(cfg.Epochs),
		"wu":  strconv.Itoa(cfg.WarmupEpochs),
	})
}

func baselineJob(cfg Config, w workload.Workload, pol string) sweep.Job[[]float64] {
	return sweep.Job[[]float64]{
		Key: baselineKey(cfg, w, pol),
		Run: func(context.Context) ([]float64, error) {
			return runBaseline(cfg, w, pol), nil
		},
	}
}

// hillKey identifies one on-line hill-climbing run. Hill-climbing
// samples SingleIPC on-line (it never sees reference singles), so
// SoloCycles does not enter the key.
func hillKey(cfg Config, w workload.Workload, feedback metrics.Kind) string {
	return sweep.KeyFrom(keyPrefix("hill"), map[string]string{
		"wl":     w.Name(),
		"metric": feedback.String(),
		"es":     strconv.Itoa(cfg.EpochSize),
		"ep":     strconv.Itoa(cfg.Epochs),
		"wu":     strconv.Itoa(cfg.WarmupEpochs),
	})
}

func hillJob(cfg Config, w workload.Workload, feedback metrics.Kind) sweep.Job[[]float64] {
	return sweep.Job[[]float64]{
		Key: hillKey(cfg, w, feedback),
		Run: func(context.Context) ([]float64, error) {
			return runHill(cfg, w, feedback), nil
		},
	}
}

// offLineKey identifies one OFF-LINE ideal run. Its trial scoring reads
// the reference singles, which are fully determined by the workload's
// apps plus SoloCycles, so SoloCycles stands in for them in the key.
func offLineKey(cfg Config, w workload.Workload) string {
	return sweep.KeyFrom(keyPrefix("offline"), map[string]string{
		"wl":     w.Name(),
		"es":     strconv.Itoa(cfg.EpochSize),
		"ep":     strconv.Itoa(cfg.Epochs),
		"wu":     strconv.Itoa(cfg.WarmupEpochs),
		"stride": strconv.Itoa(cfg.OffLineStride),
		"sc":     strconv.Itoa(cfg.SoloCycles),
	})
}

func offLineJob(cfg Config, w workload.Workload, singles []float64) sweep.Job[[]float64] {
	return sweep.Job[[]float64]{
		Key: offLineKey(cfg, w),
		Run: func(context.Context) ([]float64, error) {
			return runOffLine(cfg, w, singles), nil
		},
	}
}

// randHillKey identifies one RAND-HILL ideal run (same singles
// dependency as OFF-LINE).
func randHillKey(cfg Config, w workload.Workload) string {
	return sweep.KeyFrom(keyPrefix("randhill"), map[string]string{
		"wl":    w.Name(),
		"es":    strconv.Itoa(cfg.EpochSize),
		"ep":    strconv.Itoa(cfg.Epochs),
		"wu":    strconv.Itoa(cfg.WarmupEpochs),
		"iters": strconv.Itoa(cfg.RandHillIters),
		"sc":    strconv.Itoa(cfg.SoloCycles),
	})
}

func randHillJob(cfg Config, w workload.Workload, singles []float64) sweep.Job[[]float64] {
	return sweep.Job[[]float64]{
		Key: randHillKey(cfg, w),
		Run: func(context.Context) ([]float64, error) {
			return runRandHill(cfg, w, singles), nil
		},
	}
}
