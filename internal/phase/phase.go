// Package phase implements the program-phase machinery of the paper's
// Section 5: Basic Block Vector (BBV) signature analysis for detecting
// which epochs are similar (Sherwood et al., PACT 2001) and a run-length
// encoded Markov predictor for predicting the next epoch's phase
// (Sherwood et al., ISCA 2003).
//
// The paper uses a 64-entry BBV per SMT context, a table of 128 unique
// phase IDs, and a 2048-entry RLE Markov predictor.
package phase

// DefaultMaxPhases is the phase-table capacity (the paper stores 128
// unique phase IDs).
const DefaultMaxPhases = 128

// DefaultThreshold is the Manhattan-distance threshold (on signatures
// normalised to sum 1) below which two epochs belong to the same phase.
const DefaultThreshold = 0.35

// Detector classifies epochs into phases by their concatenated
// per-context BBV signatures.
type Detector struct {
	// Threshold is the Manhattan-distance match threshold.
	Threshold float64
	// MaxPhases caps the number of tracked phases; the least recently
	// seen phase is evicted when the table is full.
	MaxPhases int

	sigs    [][]float64 // normalised signatures, indexed by phase ID
	lastUse []int
	clock   int
}

// NewDetector returns a Detector with the paper's parameters.
func NewDetector() *Detector {
	return &Detector{Threshold: DefaultThreshold, MaxPhases: DefaultMaxPhases}
}

// Phases returns the number of distinct phases seen so far.
func (d *Detector) Phases() int { return len(d.sigs) }

// normalize scales sig to sum 1 (all-zero signatures stay zero).
func normalize(sig []uint32) []float64 {
	out := make([]float64, len(sig))
	sum := 0.0
	for _, v := range sig {
		sum += float64(v)
	}
	if sum == 0 {
		return out
	}
	for i, v := range sig {
		out[i] = float64(v) / sum
	}
	return out
}

// manhattan returns the L1 distance between two equal-length vectors.
func manhattan(a, b []float64) float64 {
	dist := 0.0
	for i := range a {
		d := a[i] - b[i]
		if d < 0 {
			d = -d
		}
		dist += d
	}
	return dist
}

// Classify assigns the epoch signature sig (the concatenation of every
// context's BBV) to a phase ID, creating a new phase when no stored
// signature is within Threshold. Signatures passed to the same Detector
// must have equal length.
func (d *Detector) Classify(sig []uint32) int {
	n := normalize(sig)
	d.clock++

	bestID, bestDist := -1, d.Threshold
	for id, s := range d.sigs {
		if len(s) != len(n) {
			continue
		}
		if dist := manhattan(s, n); dist < bestDist {
			bestID, bestDist = id, dist
		}
	}
	if bestID >= 0 {
		// Drift the stored signature toward the new observation so a
		// phase's representative tracks its slow evolution.
		s := d.sigs[bestID]
		for i := range s {
			s[i] = 0.75*s[i] + 0.25*n[i]
		}
		d.lastUse[bestID] = d.clock
		return bestID
	}

	if len(d.sigs) < d.MaxPhases {
		d.sigs = append(d.sigs, n)
		d.lastUse = append(d.lastUse, d.clock)
		return len(d.sigs) - 1
	}
	// Evict the least recently seen phase and reuse its ID.
	victim := 0
	for id, t := range d.lastUse {
		if t < d.lastUse[victim] {
			victim = id
		}
	}
	d.sigs[victim] = n
	d.lastUse[victim] = d.clock
	return victim
}

// DefaultPredictorEntries is the RLE Markov predictor size (2048 in the
// paper).
const DefaultPredictorEntries = 2048

type markovEntry struct {
	tag   uint32
	next  int32
	valid bool
}

// Predictor is a run-length encoded Markov phase predictor: it learns,
// for each (phase, run length) pair, which phase followed, and predicts
// the next epoch's phase from the current run.
type Predictor struct {
	entries []markovEntry

	lastPhase int
	runLen    int
	primed    bool
}

// NewPredictor returns a Predictor with the paper's table size.
func NewPredictor() *Predictor {
	return &Predictor{entries: make([]markovEntry, DefaultPredictorEntries)}
}

// hash mixes a (phase, runLength) pair into a table index and tag.
func (p *Predictor) hash(phase, run int) (int, uint32) {
	x := uint64(phase)*0x9e3779b97f4a7c15 + uint64(run)*0xc4ceb9fe1a85ec53
	x ^= x >> 29
	return int(x % uint64(len(p.entries))), uint32(x >> 32)
}

// Observe feeds the phase ID of the epoch that just completed.
func (p *Predictor) Observe(phase int) {
	if !p.primed {
		p.lastPhase, p.runLen, p.primed = phase, 1, true
		return
	}
	if phase == p.lastPhase {
		p.runLen++
		return
	}
	// The run (lastPhase, runLen) ended with a transition to phase.
	idx, tag := p.hash(p.lastPhase, p.runLen)
	p.entries[idx] = markovEntry{tag: tag, next: int32(phase), valid: true}
	p.lastPhase, p.runLen = phase, 1
}

// Predict returns the predicted phase of the next epoch. Without a
// matching run-length pattern it predicts the run continues (last-value
// prediction, the natural fallback).
func (p *Predictor) Predict() int {
	if !p.primed {
		return 0
	}
	idx, tag := p.hash(p.lastPhase, p.runLen)
	if e := p.entries[idx]; e.valid && e.tag == tag {
		return int(e.next)
	}
	return p.lastPhase
}
