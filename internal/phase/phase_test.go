package phase

import (
	"testing"

	"smthill/internal/rng"
)

// sig builds a 64-entry signature concentrated on blocks [lo, hi).
func sig(lo, hi int, weight uint32) []uint32 {
	s := make([]uint32, 64)
	for i := lo; i < hi; i++ {
		s[i] = weight
	}
	return s
}

func TestSameSignatureSamePhase(t *testing.T) {
	d := NewDetector()
	a := d.Classify(sig(0, 16, 10))
	b := d.Classify(sig(0, 16, 10))
	if a != b {
		t.Fatalf("identical signatures classified as %d and %d", a, b)
	}
}

func TestDistinctSignaturesDistinctPhases(t *testing.T) {
	d := NewDetector()
	a := d.Classify(sig(0, 16, 10))
	b := d.Classify(sig(32, 48, 10))
	if a == b {
		t.Fatal("disjoint signatures classified as the same phase")
	}
	if d.Phases() != 2 {
		t.Fatalf("Phases() = %d", d.Phases())
	}
}

func TestNoisyVariantMatches(t *testing.T) {
	d := NewDetector()
	a := d.Classify(sig(0, 16, 100))
	noisy := sig(0, 16, 100)
	noisy[20] = 10 // small out-of-profile component
	if b := d.Classify(noisy); a != b {
		t.Fatalf("small perturbation created new phase %d (was %d)", b, a)
	}
}

func TestScaleInvariance(t *testing.T) {
	// Signatures are normalised: the same distribution at different
	// magnitudes is the same phase.
	d := NewDetector()
	a := d.Classify(sig(0, 16, 5))
	b := d.Classify(sig(0, 16, 5000))
	if a != b {
		t.Fatal("classification is not scale invariant")
	}
}

func TestEvictionAtCapacity(t *testing.T) {
	d := NewDetector()
	d.MaxPhases = 4
	for i := 0; i < 6; i++ {
		id := d.Classify(sig(i*10, i*10+8, 10))
		if id >= 4 {
			t.Fatalf("phase ID %d exceeds capacity 4", id)
		}
	}
	if d.Phases() != 4 {
		t.Fatalf("Phases() = %d, want capacity 4", d.Phases())
	}
}

func TestZeroSignature(t *testing.T) {
	d := NewDetector()
	a := d.Classify(make([]uint32, 64))
	b := d.Classify(make([]uint32, 64))
	if a != b {
		t.Fatal("zero signatures classified inconsistently")
	}
}

func TestPredictorLearnsAlternation(t *testing.T) {
	p := NewPredictor()
	// Alternating phases with run length 3: 000111000111...
	seq := []int{0, 0, 0, 1, 1, 1, 0, 0, 0, 1, 1, 1, 0, 0, 0, 1, 1, 1}
	for _, ph := range seq {
		p.Observe(ph)
	}
	// We are at the end of a run of three 1s: the learned transition is
	// to phase 0.
	if got := p.Predict(); got != 0 {
		t.Fatalf("Predict() = %d after learned 3-run of 1s, want 0", got)
	}
}

func TestPredictorLastValueFallback(t *testing.T) {
	p := NewPredictor()
	for i := 0; i < 10; i++ {
		p.Observe(7)
	}
	if got := p.Predict(); got != 7 {
		t.Fatalf("steady phase predicted as %d", got)
	}
}

func TestPredictorUnprimed(t *testing.T) {
	p := NewPredictor()
	if got := p.Predict(); got != 0 {
		t.Fatalf("unprimed Predict() = %d", got)
	}
}

func TestPredictorAccuracyOnPeriodicSchedule(t *testing.T) {
	p := NewPredictor()
	r := rng.New(1)
	correct, total := 0, 0
	phaseOf := func(e int) int { return (e / 5) % 3 } // 5-epoch runs over 3 phases
	for e := 0; e < 600; e++ {
		ph := phaseOf(e)
		if e > 100 { // after warmup
			if p.Predict() == phaseOf(e) {
				correct++
			}
			total++
		}
		p.Observe(ph)
		_ = r
	}
	if acc := float64(correct) / float64(total); acc < 0.9 {
		t.Fatalf("periodic schedule predicted with accuracy %.2f", acc)
	}
}

func TestManhattan(t *testing.T) {
	if d := manhattan([]float64{1, 0}, []float64{0, 1}); d != 2 {
		t.Fatalf("manhattan = %f", d)
	}
	if d := manhattan([]float64{0.5, 0.5}, []float64{0.5, 0.5}); d != 0 {
		t.Fatalf("manhattan = %f", d)
	}
}

func TestNormalize(t *testing.T) {
	n := normalize([]uint32{1, 3})
	if n[0] != 0.25 || n[1] != 0.75 {
		t.Fatalf("normalize = %v", n)
	}
}
