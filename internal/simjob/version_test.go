package simjob

import (
	"encoding/json"
	"strings"
	"testing"
)

func TestSpecVersionRoundTrip(t *testing.T) {
	s := Spec{Version: WireVersion, Workload: "art-mcf", Tech: "HILL-WIPC"}
	b, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(b), `"version":2`) {
		t.Fatalf("marshalled spec missing version: %s", b)
	}
	var back Spec
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	if back != s {
		t.Fatalf("round-trip = %+v, want %+v", back, s)
	}
	if err := back.Validate(); err != nil {
		t.Fatalf("current-version spec rejected: %v", err)
	}
	// Version never enters the cache key: the same simulation at
	// different wire versions shares one entry.
	if s.Key() != (Spec{Workload: "art-mcf", Tech: "HILL-WIPC"}).Key() {
		t.Fatal("Version leaked into Spec.Key")
	}
}

func TestSpecVersionZeroOmitted(t *testing.T) {
	b, err := json.Marshal(Spec{Workload: "art-mcf", Tech: "ICOUNT"})
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(b), "version") {
		t.Fatalf("zero version serialised: %s", b)
	}
}

func TestSpecUnknownVersionRejected(t *testing.T) {
	s := Spec{Version: WireVersion + 1, Workload: "art-mcf", Tech: "ICOUNT"}
	err := s.Validate()
	if err == nil {
		t.Fatal("future wire version accepted")
	}
	if !strings.Contains(err.Error(), "wire version") {
		t.Fatalf("unhelpful rejection: %v", err)
	}
	if (Spec{Version: -1, Workload: "art-mcf", Tech: "ICOUNT"}).Validate() == nil {
		t.Fatal("negative wire version accepted")
	}
}

func TestResultVersionRoundTripAndRejection(t *testing.T) {
	r := Result{Version: WireVersion, Workload: "art-mcf", Tech: "ICOUNT"}
	b, err := json.Marshal(r)
	if err != nil {
		t.Fatal(err)
	}
	var back Result
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	if back.Version != WireVersion {
		t.Fatalf("Version lost in round-trip: %+v", back)
	}
	if err := back.CheckVersion(); err != nil {
		t.Fatal(err)
	}
	back.Version = WireVersion + 7
	if back.CheckVersion() == nil {
		t.Fatal("future Result wire version accepted")
	}
	// Legacy payloads (no version field) remain acceptable.
	var legacy Result
	if err := json.Unmarshal([]byte(`{"workload":"art-mcf"}`), &legacy); err != nil {
		t.Fatal(err)
	}
	if err := legacy.CheckVersion(); err != nil {
		t.Fatalf("versionless Result rejected: %v", err)
	}
}

func TestSpecFromKeyRoundTrip(t *testing.T) {
	specs := []Spec{
		{Workload: "art-mcf", Tech: "HILL-WIPC"},
		{Workload: "art,mcf,gzip", Tech: "ICOUNT", Epochs: 7, EpochSize: 1024, Warmup: 1, Seed: 42},
		{Workload: "ammp-applu-art-mcf", Tech: "DCRA", Delta: 8},
	}
	for _, s := range specs {
		key := s.Key()
		back, ok, err := SpecFromKey(key)
		if err != nil || !ok {
			t.Fatalf("SpecFromKey(%q) = %v, %v", key, ok, err)
		}
		if back.Key() != key {
			t.Fatalf("rebuilt spec %+v keys to %q, want %q", back, back.Key(), key)
		}
		if back != s.Normalize() {
			t.Fatalf("SpecFromKey(%q) = %+v, want %+v", key, back, s.Normalize())
		}
	}
}

func TestSpecFromKeyForeignFamily(t *testing.T) {
	if _, ok, err := SpecFromKey("v1|hill|wl=art-mcf|metric=WIPC|es=1024|ep=3|wu=1"); ok || err != nil {
		t.Fatalf("foreign family: ok=%v err=%v, want false, nil", ok, err)
	}
}

func TestSpecFromKeyRejectsBadKeys(t *testing.T) {
	for _, key := range []string{
		"v1|simjob|wl=art-mcf", // missing fields
		"v1|simjob|wl=no-such-wl|tech=ICOUNT|ep=3|es=1024|wu=1|d=4|seed=0", // unknown workload
	} {
		if _, _, err := SpecFromKey(key); err == nil {
			t.Errorf("SpecFromKey(%q) accepted", key)
		}
	}
}
