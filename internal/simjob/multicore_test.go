package simjob

import (
	"context"
	"encoding/json"
	"strings"
	"testing"
)

func TestMulticoreSpecValidation(t *testing.T) {
	valid := Spec{Workload: "art,mcf,fma3d,gcc", Tech: "HILL-WIPC", Cores: 2}
	if err := valid.Validate(); err != nil {
		t.Fatalf("valid multicore spec rejected: %v", err)
	}
	cases := []struct {
		name string
		s    Spec
		want string
	}{
		{"negative cores", Spec{Workload: "art-mcf", Tech: "ICOUNT", Cores: -1}, "cores"},
		{"too many cores", Spec{Workload: "art-mcf", Tech: "ICOUNT", Cores: MaxCores + 1}, "cores"},
		{"thread count mismatch", Spec{Workload: "art-mcf", Tech: "ICOUNT", Cores: 2}, "applications"},
		{"unknown pairing", Spec{Workload: "art,mcf,fma3d,gcc", Cores: 2, Pairing: "affinity"}, "pairing"},
		{"pairing without cores", Spec{Workload: "art-mcf", Tech: "ICOUNT", Pairing: "random"}, "cores > 1"},
		{"phase tech on multicore", Spec{Workload: "art,mcf,fma3d,gcc", Tech: "HILL-PHASE", Cores: 2}, "single-core"},
	}
	for _, tc := range cases {
		err := tc.s.Validate()
		if err == nil {
			t.Errorf("%s: accepted", tc.name)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.want)
		}
	}
}

// TestMulticoreOldWireVersionsAccepted mirrors the PR-6 wire-version
// contract for the version-2 fields: every version up to the current
// one validates, anything newer is refused.
func TestMulticoreOldWireVersionsAccepted(t *testing.T) {
	for v := 0; v <= WireVersion; v++ {
		s := Spec{Version: v, Workload: "art,mcf,fma3d,gcc", Cores: 2}
		if err := s.Validate(); err != nil {
			t.Errorf("wire version %d rejected: %v", v, err)
		}
	}
	s := Spec{Version: WireVersion + 1, Workload: "art,mcf,fma3d,gcc", Cores: 2}
	err := s.Validate()
	if err == nil || !strings.Contains(err.Error(), "wire version") {
		t.Fatalf("future wire version: err = %v", err)
	}
}

func TestMulticoreKeyRoundTrip(t *testing.T) {
	specs := []Spec{
		{Workload: "art,mcf,fma3d,gcc", Tech: "HILL-WIPC", Cores: 2},
		{Workload: "art,mcf,fma3d,gcc", Cores: 2, Pairing: "stall-pred", Epochs: 7, Seed: 3},
		{Workload: "art,mcf,fma3d,gcc,gzip,twolf,bzip2,mesa", Tech: "ICOUNT", Cores: 4, Pairing: "random"},
	}
	for _, s := range specs {
		key := s.Key()
		back, ok, err := SpecFromKey(key)
		if err != nil || !ok {
			t.Fatalf("SpecFromKey(%q) = %v, %v", key, ok, err)
		}
		if back.Key() != key {
			t.Fatalf("rebuilt spec %+v keys to %q, want %q", back, back.Key(), key)
		}
		if back != s.Normalize() {
			t.Fatalf("SpecFromKey(%q) = %+v, want %+v", key, back, s.Normalize())
		}
	}
}

// TestSingleCoreKeyUnchanged pins cache compatibility: single-core
// specs key exactly as they did before the multicore fields existed, so
// no pre-existing sweep cache entry is orphaned.
func TestSingleCoreKeyUnchanged(t *testing.T) {
	key := Spec{Workload: "art-mcf", Tech: "HILL-WIPC"}.Key()
	if strings.Contains(key, "cores=") || strings.Contains(key, "pair=") {
		t.Fatalf("single-core key grew multicore params: %s", key)
	}
	if key != (Spec{Workload: "art-mcf", Tech: "HILL-WIPC", Cores: 1}).Key() {
		t.Fatal("Cores: 1 keys differently from Cores: 0")
	}
}

// TestSingleCoreResultJSONUnchanged pins the wire: a single-core Result
// marshals without any of the version-2 multicore fields, byte-
// identical to what a wire-version-1 peer produced.
func TestSingleCoreResultJSONUnchanged(t *testing.T) {
	b, err := json.Marshal(Result{Workload: "art-mcf", Tech: "ICOUNT", TotalIPC: 1.5})
	if err != nil {
		t.Fatal(err)
	}
	for _, field := range []string{"cores", "pairing", "migrations", "core_ipc", "l3_miss_rate"} {
		if strings.Contains(string(b), field) {
			t.Fatalf("single-core Result serialised multicore field %q: %s", field, b)
		}
	}
}

// TestRunMulticore runs the full multi-core path end to end at a small
// scale and checks the Result's multicore surface.
func TestRunMulticore(t *testing.T) {
	s := Spec{
		Workload: "art,mcf,fma3d,gcc", Tech: "HILL-WIPC",
		Epochs: 4, EpochSize: 2048, Warmup: 1, Cores: 2,
	}
	run := func() Result {
		res, err := Run(context.Background(), s, nil)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	res := run()
	if res.Cores != 2 || res.Pairing != "ipc-pred" {
		t.Fatalf("result header = %d cores, pairing %q", res.Cores, res.Pairing)
	}
	if len(res.CoreIPC) != 2 {
		t.Fatalf("CoreIPC has %d entries", len(res.CoreIPC))
	}
	if len(res.Threads) != 4 {
		t.Fatalf("%d thread results", len(res.Threads))
	}
	if res.TotalIPC <= 0 {
		t.Fatal("no aggregate progress")
	}
	if res.L3MissRate < 0 || res.L3MissRate > 1 {
		t.Fatalf("L3MissRate = %v", res.L3MissRate)
	}

	// Determinism: a second identical run serialises to identical bytes.
	b1, err := json.Marshal(res)
	if err != nil {
		t.Fatal(err)
	}
	b2, err := json.Marshal(run())
	if err != nil {
		t.Fatal(err)
	}
	if string(b1) != string(b2) {
		t.Fatalf("multicore Run is not deterministic:\n%s\n%s", b1, b2)
	}
}

// TestBuildRejectsMulticore pins that the single-machine constructor
// refuses multi-core specs instead of silently dropping fields.
func TestBuildRejectsMulticore(t *testing.T) {
	_, _, _, err := Build(Spec{Workload: "art,mcf,fma3d,gcc", Cores: 2})
	if err == nil {
		t.Fatal("Build accepted a multi-core spec")
	}
}
