package simjob

import (
	"context"
	"encoding/json"
	"strings"
	"testing"

	"smthill/internal/telemetry"
)

// tiny returns a spec small enough for unit tests (one epoch of 2K
// cycles plus one warmup epoch).
func tiny(tech string) Spec {
	return Spec{Workload: "art-mcf", Tech: tech, Epochs: 2, EpochSize: 2048, Warmup: 1}
}

func TestValidate(t *testing.T) {
	good := []Spec{
		{Workload: "art-mcf"},
		{Workload: "art,gzip", Tech: "DCRA"},
		tiny("HILL-WIPC"),
		{Workload: "art-mcf", Tech: "STATIC", Seed: 7},
	}
	for _, s := range good {
		if err := s.Validate(); err != nil {
			t.Fatalf("Validate(%+v) = %v", s, err)
		}
	}
	bad := []Spec{
		{},                                   // empty workload
		{Workload: "no-such-workload"},       // unknown workload
		{Workload: "art-mcf", Tech: "BOGUS"}, // unknown technique
		{Workload: "art-mcf", Epochs: -1},    // negative epochs
		{Workload: "art-mcf", Epochs: MaxEpochs + 1},
		{Workload: "art-mcf", EpochSize: MaxEpochSize + 1},
		{Workload: "art-mcf", Warmup: MaxWarmup + 1},
		{Workload: "art-mcf", Delta: -4},
	}
	for _, s := range bad {
		if err := s.Validate(); err == nil {
			t.Fatalf("Validate(%+v) accepted invalid spec", s)
		}
	}
}

func TestValidateErrorsTeachVocabulary(t *testing.T) {
	err := Spec{Workload: "art-mcf", Tech: "BOGUS"}.Validate()
	if err == nil || !strings.Contains(err.Error(), "HILL-WIPC") {
		t.Fatalf("technique error does not list valid techniques: %v", err)
	}
}

func TestKeyNormalisesDefaults(t *testing.T) {
	implicit := Spec{Workload: "art-mcf"}.Key()
	explicit := Spec{Workload: "art-mcf", Tech: "HILL-WIPC", Epochs: 50,
		EpochSize: 64 * 1024, Warmup: 2, Delta: 4}.Key()
	if implicit != explicit {
		t.Fatalf("defaulted key %q != explicit key %q", implicit, explicit)
	}
	seeded := Spec{Workload: "art-mcf", Seed: 1}
	if (Spec{Workload: "art-mcf"}).Key() == seeded.Key() {
		t.Fatal("seed not folded into key")
	}
}

func TestRunDeterministicAndMirrorsMachine(t *testing.T) {
	a, err := Run(context.Background(), tiny("ICOUNT"), nil)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(context.Background(), tiny("ICOUNT"), nil)
	if err != nil {
		t.Fatal(err)
	}
	ja, _ := json.Marshal(a)
	jb, _ := json.Marshal(b)
	if string(ja) != string(jb) {
		t.Fatalf("two runs of one spec differ:\n%s\n%s", ja, jb)
	}
	if len(a.Threads) != 2 || a.Threads[0].App != "art" || a.Threads[1].App != "mcf" {
		t.Fatalf("threads = %+v", a.Threads)
	}
	sum := a.Threads[0].IPC + a.Threads[1].IPC
	if a.TotalIPC < 0.999*sum || a.TotalIPC > 1.001*sum {
		t.Fatalf("TotalIPC %f != sum of per-thread %f", a.TotalIPC, sum)
	}
	if a.Threads[0].Committed == 0 || a.Threads[1].Committed == 0 {
		t.Fatalf("no instructions committed: %+v", a.Threads)
	}
	if a.Workload != "art-mcf" || a.Tech != "ICOUNT" || a.Epochs != 2 {
		t.Fatalf("spec echo wrong: %+v", a)
	}
}

func TestRunHillReportsShares(t *testing.T) {
	spec := tiny("HILL-WIPC")
	spec.Epochs = 6 // the first Threads() epochs are SingleIPC samples
	res, err := Run(context.Background(), spec, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.FinalShares) != 2 {
		t.Fatalf("hill run reported no partition: %+v", res)
	}
}

func TestRunSeedPerturbsStreams(t *testing.T) {
	base, err := Run(context.Background(), tiny("ICOUNT"), nil)
	if err != nil {
		t.Fatal(err)
	}
	s := tiny("ICOUNT")
	s.Seed = 12345
	replica, err := Run(context.Background(), s, nil)
	if err != nil {
		t.Fatal(err)
	}
	if base.Threads[0].Committed == replica.Threads[0].Committed &&
		base.Threads[1].Committed == replica.Threads[1].Committed {
		t.Fatalf("seed perturbation produced identical streams: %+v", replica.Threads)
	}
	// The replica must itself be deterministic.
	again, err := Run(context.Background(), s, nil)
	if err != nil {
		t.Fatal(err)
	}
	if again.Threads[0].Committed != replica.Threads[0].Committed {
		t.Fatal("seeded replica not deterministic")
	}
}

func TestRunCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := Run(ctx, tiny("ICOUNT"), nil); err != context.Canceled {
		t.Fatalf("cancelled run returned %v, want context.Canceled", err)
	}
}

func TestRunEmitsTelemetry(t *testing.T) {
	sink := &telemetry.MemorySink{}
	spec := tiny("HILL-WIPC")
	spec.Epochs = 6 // sampling epochs emit no move events
	if _, err := Run(context.Background(), spec, sink); err != nil {
		t.Fatal(err)
	}
	epochs, moves := 0, 0
	for _, ev := range sink.Events() {
		switch ev.Type {
		case telemetry.TypeEpoch:
			epochs++
		case telemetry.TypeMove:
			moves++
		}
	}
	if epochs == 0 {
		t.Fatal("no epoch events emitted")
	}
	if moves == 0 {
		t.Fatal("no move events emitted")
	}
}

func TestBuildRejectsWithoutPanicking(t *testing.T) {
	if _, _, _, err := Build(Spec{Workload: "nope"}); err == nil {
		t.Fatal("Build accepted unknown workload")
	}
	if _, _, _, err := Build(Spec{Workload: "art-mcf", Tech: "nope"}); err == nil {
		t.Fatal("Build accepted unknown technique")
	}
}
