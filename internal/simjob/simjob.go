// Package simjob defines the one simulation-job schema shared by the
// command-line tools (cmd/smtsim -json) and the service daemon
// (internal/serve): a JSON Spec describing a single workload/technique
// run, non-panicking validation, a canonical sweep cache key, and a
// context-aware runner producing a machine-readable Result that mirrors
// cmd/smtsim's text output field for field.
//
// Determinism contract: Run is a pure function of the (normalised) Spec.
// Two equal specs produce identical Results regardless of which process
// computes them, so Result may be memoised and disk-cached under
// Spec.Key() by the sweep engine (see internal/sweep).
package simjob

import (
	"context"
	"fmt"
	"strconv"
	"strings"

	"smthill/internal/core"
	"smthill/internal/metrics"
	"smthill/internal/multicore"
	"smthill/internal/pipeline"
	"smthill/internal/policy"
	"smthill/internal/resource"
	"smthill/internal/sweep"
	"smthill/internal/telemetry"
	"smthill/internal/workload"
)

// Limits bound a Spec so a hosted daemon cannot be asked for an
// unboundedly expensive simulation through the public API. They are
// generous for interactive use: the defaults admit paper-scale runs.
const (
	// MaxEpochs bounds Spec.Epochs (the paper's methodology uses 240).
	MaxEpochs = 4096
	// MaxEpochSize bounds Spec.EpochSize in cycles (the paper's 64K).
	MaxEpochSize = 1 << 20
	// MaxWarmup bounds Spec.Warmup in epochs.
	MaxWarmup = 64
	// MaxCores bounds Spec.Cores (each core simulates a full 2-context
	// pipeline, so cost grows linearly in cores).
	MaxCores = 8
)

// schemaVersion is folded into Key so cached Results from an older
// incompatible Result layout are never served. Bump on breaking changes
// to Result or to the simulation semantics behind it.
const schemaVersion = 1

// WireVersion is the current Spec/Result JSON wire version. It exists
// so the distributed fabric's coordinator/worker exchange can evolve
// without silent skew: a sender stamps Version, a receiver rejects
// versions newer than it understands instead of misinterpreting the
// payload. Version zero (the field omitted) always means "current", so
// standalone clients and cached entries never need restamping.
// WireVersion is deliberately separate from schemaVersion: bumping the
// wire version adds fields the other side may not know, bumping the
// schema version changes what a cached Result means.
//
// Version history: 1 added the version field itself; 2 added the
// multicore fields (Spec.Cores/Pairing, Result.Cores/Pairing/
// Migrations/CoreIPC/L3MissRate).
const WireVersion = 2

// Techniques lists the distribution techniques a Spec may name, in
// presentation order (the baselines, then static partitioning, then the
// paper's learners).
func Techniques() []string {
	return []string{
		"ICOUNT", "STALL", "FLUSH", "DCRA", "STATIC",
		"HILL-IPC", "HILL-WIPC", "HILL-HWIPC", "HILL-PHASE",
		"STEEP-WIPC",
	}
}

// Spec is one simulation request: a workload, a resource-distribution
// technique, and the epoch geometry. The zero value of every optional
// field selects the cmd/smtsim default.
type Spec struct {
	// Version is the wire version the producing client speaks (0 means
	// current; see WireVersion). It never enters Key — equal specs at
	// different wire versions are the same simulation.
	Version int `json:"version,omitempty"`
	// Workload is a Table 3 workload name ("art-mcf") or a
	// comma-separated list of catalog application names.
	Workload string `json:"workload"`
	// Tech is the distribution technique (see Techniques).
	Tech string `json:"tech"`
	// Epochs is the number of measured epochs (default 50).
	Epochs int `json:"epochs,omitempty"`
	// EpochSize is the epoch length in cycles (default 64K).
	EpochSize int `json:"epoch_size,omitempty"`
	// Warmup is the number of warmup epochs before measurement
	// (default 2).
	Warmup int `json:"warmup,omitempty"`
	// Delta is the hill-climbing step in rename registers (default 4;
	// ignored by non-hill techniques).
	Delta int `json:"delta,omitempty"`
	// Seed perturbs every member application's stream seed, giving an
	// independent replica of the same workload (0 = the catalog's
	// canonical seeds). It also seeds the random pairing policy.
	Seed uint64 `json:"seed,omitempty"`
	// Cores, when > 1, runs the workload on a multi-core system of that
	// many 2-context SMT cores behind a shared L3 (see
	// internal/multicore). The workload must then supply exactly
	// 2*Cores applications. 0 or 1 is the classic single-core run.
	Cores int `json:"cores,omitempty"`
	// Pairing is the thread-to-core allocation policy for a multi-core
	// run: "random", "ipc-pred", or "stall-pred" (default "ipc-pred").
	// It must be empty when Cores <= 1.
	Pairing string `json:"pairing,omitempty"`
}

// Normalize returns s with defaults filled in. Key and Run both
// normalise internally, so a zero-valued optional field and its explicit
// default address the same cache entry.
func (s Spec) Normalize() Spec {
	if s.Tech == "" {
		s.Tech = "HILL-WIPC"
	}
	if s.Epochs == 0 {
		s.Epochs = 50
	}
	if s.EpochSize == 0 {
		s.EpochSize = core.DefaultEpochSize
	}
	if s.Warmup == 0 {
		s.Warmup = 2
	}
	if s.Delta == 0 {
		s.Delta = core.DefaultDelta
	}
	if s.Cores > 1 && s.Pairing == "" {
		s.Pairing = "ipc-pred"
	}
	return s
}

// Validate checks s without panicking: the workload must parse, the
// technique must be known, and the geometry must fall inside the Limits.
// The returned error is safe to surface verbatim to an API client.
func (s Spec) Validate() error {
	s = s.Normalize()
	w, err := workload.Parse(s.Workload)
	if err != nil {
		return err
	}
	if err := s.validateShape(); err != nil {
		return err
	}
	if s.Cores > 1 && w.Threads() != s.Cores*multicore.ContextsPerCore {
		return fmt.Errorf("simjob: %d-core run needs exactly %d applications, workload %q has %d",
			s.Cores, s.Cores*multicore.ContextsPerCore, s.Workload, w.Threads())
	}
	return nil
}

// validateShape checks everything but the workload name: technique and
// geometry. Split out so runs on an already-resolved workload (custom
// .profile models, see RunWorkload) validate the same way.
func (s Spec) validateShape() error {
	if err := checkWireVersion(s.Version); err != nil {
		return err
	}
	if !validTech(s.Tech) {
		return fmt.Errorf("simjob: unknown technique %q; valid techniques: %s",
			s.Tech, strings.Join(Techniques(), " "))
	}
	switch {
	case s.Epochs < 1 || s.Epochs > MaxEpochs:
		return fmt.Errorf("simjob: epochs %d outside [1, %d]", s.Epochs, MaxEpochs)
	case s.EpochSize < 1 || s.EpochSize > MaxEpochSize:
		return fmt.Errorf("simjob: epoch_size %d outside [1, %d]", s.EpochSize, MaxEpochSize)
	case s.Warmup < 0 || s.Warmup > MaxWarmup:
		return fmt.Errorf("simjob: warmup %d outside [0, %d]", s.Warmup, MaxWarmup)
	case s.Delta < 1:
		return fmt.Errorf("simjob: delta %d must be positive", s.Delta)
	case s.Cores < 0 || s.Cores > MaxCores:
		return fmt.Errorf("simjob: cores %d outside [0, %d]", s.Cores, MaxCores)
	}
	if s.Cores > 1 {
		if _, err := multicore.PairingByName(s.Pairing, 0); err != nil {
			return err
		}
		if s.Tech == "HILL-PHASE" {
			return fmt.Errorf("simjob: technique HILL-PHASE is single-core only")
		}
	} else if s.Pairing != "" {
		return fmt.Errorf("simjob: pairing %q requires cores > 1", s.Pairing)
	}
	return nil
}

func validTech(name string) bool {
	for _, t := range Techniques() {
		if t == name {
			return true
		}
	}
	return false
}

// Key returns the canonical sweep-engine cache key of s. Equal
// normalised specs share a key; every field that affects the Result is
// included.
func (s Spec) Key() string {
	s = s.Normalize()
	params := map[string]string{
		"wl":   s.Workload,
		"tech": s.Tech,
		"ep":   strconv.Itoa(s.Epochs),
		"es":   strconv.Itoa(s.EpochSize),
		"wu":   strconv.Itoa(s.Warmup),
		"d":    strconv.Itoa(s.Delta),
		"seed": strconv.FormatUint(s.Seed, 10),
	}
	// Multicore params appear only when active, so every pre-existing
	// single-core key (and its cached Result) stays stable.
	if s.Cores > 1 {
		params["cores"] = strconv.Itoa(s.Cores)
		params["pair"] = s.Pairing
	}
	return sweep.KeyFrom(fmt.Sprintf("v%d|simjob", schemaVersion), params)
}

// ThreadResult is one hardware context's share of a Result.
type ThreadResult struct {
	// Thread is the context index.
	Thread int `json:"thread"`
	// App is the application model running on the context.
	App string `json:"app"`
	// IPC is the thread's committed IPC over the measured epochs.
	IPC float64 `json:"ipc"`
	// Committed, Flushed, and Mispredicts are lifetime counters
	// (including warmup), matching cmd/smtsim's per-thread line.
	Committed   uint64 `json:"committed"`
	Flushed     uint64 `json:"flushed"`
	Mispredicts uint64 `json:"mispredicts"`
}

// Result is the machine-readable outcome of one simulation job. It
// carries exactly the quantities cmd/smtsim prints, so the CLI's -json
// mode and the daemon's job API share one schema.
type Result struct {
	// Version is the wire version of the producing node (0 means
	// current; see WireVersion). Omitted on the standalone path so CLI
	// and daemon output are unchanged; the fabric stamps it on exec
	// responses and the coordinator rejects versions it does not speak.
	Version int `json:"version,omitempty"`
	// Workload, Tech, Epochs, and EpochSize echo the normalised Spec.
	Workload  string `json:"workload"`
	Tech      string `json:"tech"`
	Epochs    int    `json:"epochs"`
	EpochSize int    `json:"epoch_size"`
	// Threads holds per-context statistics in context order.
	Threads []ThreadResult `json:"threads"`
	// TotalIPC is the sum of per-thread measured IPCs.
	TotalIPC float64 `json:"total_ipc"`
	// MispredictRate, DL1MissRate, and L2MissRate are lifetime machine
	// rates in [0, 1].
	MispredictRate float64 `json:"mispredict_rate"`
	DL1MissRate    float64 `json:"dl1_miss_rate"`
	L2MissRate     float64 `json:"l2_miss_rate"`
	// Flushes counts policy-initiated flush events machine-wide.
	Flushes uint64 `json:"flushes"`
	// FinalShares is the last partition vector a learning technique
	// adopted (rename registers per thread); empty for unpartitioned
	// techniques.
	FinalShares []int `json:"final_shares,omitempty"`

	// The remaining fields are set only by multi-core runs (Cores > 1);
	// they are all omitted on the single-core path, so its JSON output
	// is byte-identical to wire version 1.
	//
	// Cores and Pairing echo the normalised Spec.
	Cores   int    `json:"cores,omitempty"`
	Pairing string `json:"pairing,omitempty"`
	// Migrations counts thread moves between cores (a swap moves two).
	Migrations uint64 `json:"migrations,omitempty"`
	// CoreIPC is each core's aggregate IPC over the measured epochs.
	CoreIPC []float64 `json:"core_ipc,omitempty"`
	// L3MissRate is the shared last-level cache's lifetime miss rate.
	L3MissRate float64 `json:"l3_miss_rate,omitempty"`
}

// checkWireVersion rejects wire versions this build does not speak.
// Zero (field omitted) and every version up to WireVersion are
// accepted — the schema only grows within a wire version.
func checkWireVersion(v int) error {
	if v < 0 || v > WireVersion {
		return fmt.Errorf("simjob: unsupported wire version %d (this build speaks <= %d); upgrade the older node", v, WireVersion)
	}
	return nil
}

// CheckVersion validates a received Result's wire version; see
// checkWireVersion for the acceptance rule.
func (r Result) CheckVersion() error { return checkWireVersion(r.Version) }

// SpecFromKey reconstructs the Spec addressed by a canonical simjob
// cache key (the inverse of Spec.Key). ok=false means the key belongs
// to some other job family; an error means the key claims to be a
// simjob key but does not parse or validate. This is how a fabric
// worker turns a dispatched key back into runnable work.
func SpecFromKey(key string) (Spec, bool, error) {
	prefix, params, err := sweep.ParseKey(key)
	if err != nil {
		return Spec{}, false, err
	}
	if prefix != fmt.Sprintf("v%d|simjob", schemaVersion) {
		return Spec{}, false, nil
	}
	var s Spec
	s.Workload = params["wl"]
	s.Tech = params["tech"]
	fields := []struct {
		name string
		dst  *int
	}{
		{"ep", &s.Epochs}, {"es", &s.EpochSize}, {"wu", &s.Warmup}, {"d", &s.Delta},
	}
	for _, f := range fields {
		v, err := strconv.Atoi(params[f.name])
		if err != nil {
			return Spec{}, false, fmt.Errorf("simjob: key %q: bad %s: %v", key, f.name, err)
		}
		*f.dst = v
	}
	seed, err := strconv.ParseUint(params["seed"], 10, 64)
	if err != nil {
		return Spec{}, false, fmt.Errorf("simjob: key %q: bad seed: %v", key, err)
	}
	s.Seed = seed
	if v, ok := params["cores"]; ok {
		cores, err := strconv.Atoi(v)
		if err != nil {
			return Spec{}, false, fmt.Errorf("simjob: key %q: bad cores: %v", key, err)
		}
		s.Cores = cores
		s.Pairing = params["pair"]
	}
	if err := s.Validate(); err != nil {
		return Spec{}, false, err
	}
	if got := s.Key(); got != key {
		// A key that parses but does not round-trip would address a
		// different cache entry than it executes; refuse it.
		return Spec{}, false, fmt.Errorf("simjob: key %q does not round-trip (rebuilt %q)", key, got)
	}
	return s, true, nil
}

// Build constructs the machine, distributor, and feedback metric for a
// validated spec. It is the non-exiting counterpart of what cmd/smtsim
// historically wired inline; unknown inputs return an error instead of
// panicking, so a network daemon can surface them as a 400.
func Build(s Spec) (*pipeline.Machine, core.Distributor, metrics.Kind, error) {
	s = s.Normalize()
	if err := s.Validate(); err != nil {
		return nil, nil, 0, err
	}
	if s.Cores > 1 {
		return nil, nil, 0, fmt.Errorf("simjob: Build constructs a single-core machine; run multi-core specs through Run")
	}
	w, err := s.Resolve()
	if err != nil {
		return nil, nil, 0, err
	}
	return buildWorkload(w, s)
}

// Resolve parses (and, with a non-zero Seed, reseeds) the spec's
// workload.
func (s Spec) Resolve() (workload.Workload, error) {
	w, err := workload.Parse(s.Workload)
	if err != nil {
		return workload.Workload{}, err
	}
	if s.Seed != 0 {
		return reseed(w, s.Seed)
	}
	return w, nil
}

// buildWorkload wires the machine for an already-resolved workload.
// s must be normalized and shape-valid.
func buildWorkload(w workload.Workload, s Spec) (*pipeline.Machine, core.Distributor, metrics.Kind, error) {
	renameRegs := resource.DefaultSizes()[resource.IntRename]
	switch s.Tech {
	case "ICOUNT", "STALL", "FLUSH", "DCRA":
		m := w.NewMachine(policy.ByName(s.Tech))
		return m, core.None{Label: s.Tech}, metrics.WeightedIPC, nil
	case "STATIC":
		return w.NewMachine(nil), core.NewStatic(w.Threads(), renameRegs), metrics.WeightedIPC, nil
	case "HILL-IPC":
		h := core.NewHillClimber(w.Threads(), renameRegs, metrics.AvgIPC)
		h.Delta = s.Delta
		return w.NewMachine(nil), h, metrics.AvgIPC, nil
	case "HILL-WIPC":
		h := core.NewHillClimber(w.Threads(), renameRegs, metrics.WeightedIPC)
		h.Delta = s.Delta
		return w.NewMachine(nil), h, metrics.WeightedIPC, nil
	case "HILL-HWIPC":
		h := core.NewHillClimber(w.Threads(), renameRegs, metrics.HmeanWeightedIPC)
		h.Delta = s.Delta
		return w.NewMachine(nil), h, metrics.HmeanWeightedIPC, nil
	case "HILL-PHASE":
		ph := core.NewPhaseHill(w.Threads(), renameRegs, metrics.WeightedIPC)
		ph.Hill.Delta = s.Delta
		return w.NewMachine(nil), ph, metrics.WeightedIPC, nil
	case "STEEP-WIPC":
		st := core.NewSteepest(w.Threads(), renameRegs, metrics.WeightedIPC)
		st.Delta = s.Delta
		m := w.NewMachine(nil)
		st.M = m
		return m, st, metrics.WeightedIPC, nil
	}
	return nil, nil, 0, fmt.Errorf("simjob: unknown technique %q", s.Tech)
}

// reseed rebuilds w with every member application's stream seed
// perturbed by seed, yielding an independent but equally distributed
// replica of the workload. The perturbation is a pure function of
// (profile seed, seed, context index), so the replica is deterministic.
func reseed(w workload.Workload, seed uint64) (workload.Workload, error) {
	profiles := w.Profiles()
	for i := range profiles {
		profiles[i].Seed ^= (seed + uint64(i)) * 0x9e3779b97f4a7c15
	}
	rw, err := workload.Custom(profiles)
	if err != nil {
		return workload.Workload{}, err
	}
	return rw, nil
}

// Run executes the spec to completion, emitting one telemetry epoch (and
// move) event per epoch to trace when non-nil. Cancellation is checked
// at every epoch boundary — including warmup — so a cancelled job stops
// within one epoch (sub-second at default geometry) and returns
// ctx.Err().
func Run(ctx context.Context, s Spec, sink telemetry.Sink) (Result, error) {
	s = s.Normalize()
	if err := s.Validate(); err != nil {
		return Result{}, err
	}
	w, err := s.Resolve()
	if err != nil {
		return Result{}, err
	}
	return RunWorkload(ctx, w, s, sink, false)
}

// RunWorkload is Run for an already-resolved workload — the entry point
// for workloads a Spec cannot name, such as external .profile models
// loaded by cmd/smtsim (s.Workload and s.Seed are ignored in favour of
// w). checks enables per-cycle invariant checking on the machine;
// violations panic, so enable it only in diagnostic runs.
func RunWorkload(ctx context.Context, w workload.Workload, s Spec, sink telemetry.Sink, checks bool) (Result, error) {
	s = s.Normalize()
	if err := s.validateShape(); err != nil {
		return Result{}, err
	}
	if s.Cores > 1 {
		return runMulticore(ctx, w, s, sink, checks)
	}
	m, dist, feedback, err := buildWorkload(w, s)
	if err != nil {
		return Result{}, err
	}
	if checks {
		m.SetInvariantChecks(true)
	}

	label := w.Name() + "/" + dist.Name()
	switch d := dist.(type) {
	case *core.HillClimber:
		d.Trace = sink
		d.TraceLabel = label
	case *core.PhaseHill:
		d.Hill.Trace = sink
		d.Hill.TraceLabel = label
	}
	if sink != nil {
		m.SetRecorder(telemetry.NewRecorder(m.Threads()))
	}

	for i := 0; i < s.Warmup; i++ {
		if err := ctx.Err(); err != nil {
			return Result{}, err
		}
		m.CycleN(s.EpochSize)
	}
	r := core.NewRunner(m, dist, feedback)
	r.EpochSize = s.EpochSize
	r.Trace = sink
	r.TraceLabel = label
	if st, ok := dist.(*core.Steepest); ok {
		st.Singles = r.Singles
	}
	for i := 0; i < s.Epochs; i++ {
		if err := ctx.Err(); err != nil {
			return Result{}, err
		}
		r.RunEpoch()
	}
	return assemble(s, w, m, r), nil
}

// assemble folds the finished run into the shared Result schema.
func assemble(s Spec, w workload.Workload, m *pipeline.Machine, r *core.Runner) Result {
	ipc := r.TotalsSince(0)
	per := m.PerThreadStats()
	res := Result{
		Workload:  w.Name(),
		Tech:      s.Tech,
		Epochs:    s.Epochs,
		EpochSize: s.EpochSize,
	}
	for th, v := range ipc {
		ts := per[th]
		res.Threads = append(res.Threads, ThreadResult{
			Thread: th, App: w.Apps[th], IPC: v,
			Committed: ts.Committed, Flushed: ts.Flushed, Mispredicts: ts.Mispredicts,
		})
		res.TotalIPC += v
	}
	st := m.Stats()
	res.MispredictRate = m.MispredictRate()
	res.DL1MissRate = m.Mem().DL1.Stats.MissRate()
	res.L2MissRate = m.Mem().UL2.Stats.MissRate()
	res.Flushes = st.Flushes
	res.FinalShares = lastShares(r)
	return res
}

// lastShares returns the most recent partition vector the run adopted,
// or nil when every epoch ran unpartitioned.
func lastShares(r *core.Runner) []int {
	res := r.Results()
	for i := len(res) - 1; i >= 0; i-- {
		if res[i].Shares != nil {
			return append([]int(nil), res[i].Shares...)
		}
	}
	return nil
}
