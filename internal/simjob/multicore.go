package simjob

import (
	"context"
	"fmt"

	"smthill/internal/core"
	"smthill/internal/metrics"
	"smthill/internal/multicore"
	"smthill/internal/pipeline"
	"smthill/internal/policy"
	"smthill/internal/resource"
	"smthill/internal/telemetry"
	"smthill/internal/workload"
)

// buildCores constructs one policy and distributor per core for a
// multi-core spec — the per-core analogue of buildWorkload. Every core
// runs the same technique over its own 2-context pipeline; the learning
// techniques get an independent climber per core (the inner level of
// the two-level search).
func buildCores(s Spec) ([]pipeline.Policy, []core.Distributor, metrics.Kind, error) {
	renameRegs := resource.DefaultSizes()[resource.IntRename]
	pols := make([]pipeline.Policy, s.Cores)
	dists := make([]core.Distributor, s.Cores)
	var feedback metrics.Kind
	for c := 0; c < s.Cores; c++ {
		switch s.Tech {
		case "ICOUNT", "STALL", "FLUSH", "DCRA":
			pols[c] = policy.ByName(s.Tech)
			dists[c] = core.None{Label: s.Tech}
			feedback = metrics.WeightedIPC
		case "STATIC":
			dists[c] = core.NewStatic(multicore.ContextsPerCore, renameRegs)
			feedback = metrics.WeightedIPC
		case "HILL-IPC", "HILL-WIPC", "HILL-HWIPC":
			metric := metrics.WeightedIPC
			switch s.Tech {
			case "HILL-IPC":
				metric = metrics.AvgIPC
			case "HILL-HWIPC":
				metric = metrics.HmeanWeightedIPC
			}
			h := core.NewHillClimber(multicore.ContextsPerCore, renameRegs, metric)
			h.Delta = s.Delta
			dists[c] = h
			feedback = metric
		case "STEEP-WIPC":
			st := core.NewSteepest(multicore.ContextsPerCore, renameRegs, metrics.WeightedIPC)
			st.Delta = s.Delta
			dists[c] = st
			feedback = metrics.WeightedIPC
		default:
			return nil, nil, 0, fmt.Errorf("simjob: technique %q is not available on multi-core runs", s.Tech)
		}
	}
	return pols, dists, feedback, nil
}

// runMulticore is RunWorkload's Cores > 1 path: a lock-step
// multicore.System with a per-core runner each (the inner hill-climbing
// level) and the spec's pairing policy re-grouping threads at
// reallocation points (the outer level). s must be normalized and
// shape-valid.
func runMulticore(ctx context.Context, w workload.Workload, s Spec, sink telemetry.Sink, checks bool) (Result, error) {
	n := s.Cores * multicore.ContextsPerCore
	if w.Threads() != n {
		return Result{}, fmt.Errorf("simjob: %d-core run needs exactly %d applications, workload %q has %d",
			s.Cores, n, w.Name(), w.Threads())
	}
	pairing, err := multicore.PairingByName(s.Pairing, s.Seed)
	if err != nil {
		return Result{}, err
	}
	pols, dists, feedback, err := buildCores(s)
	if err != nil {
		return Result{}, err
	}

	sys := multicore.New(multicore.DefaultConfig(s.Cores), w.Streams(), pols)
	if checks {
		for c := 0; c < s.Cores; c++ {
			sys.Core(c).SetInvariantChecks(true)
		}
	}

	label := w.Name() + "/" + s.Tech + "+" + pairing.Name()
	runners := make([]*core.Runner, s.Cores)
	for c := 0; c < s.Cores; c++ {
		r := core.NewRunner(sys.Core(c), dists[c], feedback)
		r.EpochSize = s.EpochSize
		if st, ok := dists[c].(*core.Steepest); ok {
			st.M = sys.Core(c)
			st.Singles = r.Singles
		}
		if sink != nil {
			coreLabel := fmt.Sprintf("%s#c%d", label, c)
			r.Trace = sink
			r.TraceLabel = coreLabel
			if h, ok := dists[c].(*core.HillClimber); ok {
				h.Trace = sink
				h.TraceLabel = coreLabel
			}
		}
		runners[c] = r
	}

	for i := 0; i < s.Warmup; i++ {
		if err := ctx.Err(); err != nil {
			return Result{}, err
		}
		sys.CycleN(s.EpochSize)
	}

	d := &multicore.Driver{
		Sys:        sys,
		Runners:    runners,
		Pairing:    pairing,
		EpochSize:  s.EpochSize,
		Trace:      sink,
		TraceLabel: label,
	}
	// Measurement baselines, taken after warmup.
	baseThread := make([]uint64, n)
	for g := 0; g < n; g++ {
		baseThread[g] = sys.Committed(g)
	}
	baseCore := make([]uint64, s.Cores)
	for c := 0; c < s.Cores; c++ {
		baseCore[c] = sys.Core(c).Stats().Committed
	}
	for i := 0; i < s.Epochs; i++ {
		if err := ctx.Err(); err != nil {
			return Result{}, err
		}
		d.RunEpoch()
	}
	return assembleMulticore(s, w, sys, baseThread, baseCore), nil
}

// assembleMulticore folds a finished multi-core run into the shared
// Result schema. Per-thread IPCs follow each logical thread across
// migrations (the System's accounting); CoreIPC reports what each core
// slot achieved regardless of which threads passed through it.
func assembleMulticore(s Spec, w workload.Workload, sys *multicore.System, baseThread, baseCore []uint64) Result {
	cycles := uint64(s.Epochs) * uint64(s.EpochSize)
	res := Result{
		Workload:  w.Name(),
		Tech:      s.Tech,
		Epochs:    s.Epochs,
		EpochSize: s.EpochSize,
		Cores:     s.Cores,
		Pairing:   s.Pairing,
	}
	for g := 0; g < sys.Threads(); g++ {
		ts := sys.ThreadStats(g)
		ipc := float64(sys.Committed(g)-baseThread[g]) / float64(cycles)
		res.Threads = append(res.Threads, ThreadResult{
			Thread: g, App: w.Apps[g], IPC: ipc,
			Committed: ts.Committed, Flushed: ts.Flushed, Mispredicts: ts.Mispredicts,
		})
		res.TotalIPC += ipc
	}
	var dl1, ul2 struct{ acc, miss uint64 }
	var mispredict float64
	for c := 0; c < sys.Cores(); c++ {
		m := sys.Core(c)
		res.CoreIPC = append(res.CoreIPC,
			float64(m.Stats().Committed-baseCore[c])/float64(cycles))
		res.Flushes += m.Stats().Flushes
		dl1.acc += m.Mem().DL1.Stats.Accesses
		dl1.miss += m.Mem().DL1.Stats.Misses
		ul2.acc += m.Mem().UL2.Stats.Accesses
		ul2.miss += m.Mem().UL2.Stats.Misses
		mispredict += m.MispredictRate()
	}
	if dl1.acc > 0 {
		res.DL1MissRate = float64(dl1.miss) / float64(dl1.acc)
	}
	if ul2.acc > 0 {
		res.L2MissRate = float64(ul2.miss) / float64(ul2.acc)
	}
	// MispredictRate is the unweighted mean over cores (each core has
	// its own predictor; a committed-weighted mean would need predictor
	// counters the single-core schema does not expose).
	res.MispredictRate = mispredict / float64(sys.Cores())
	if l3 := sys.L3(); l3 != nil {
		res.L3MissRate = l3.Stats.MissRate()
	}
	res.Migrations = sys.Migrations()
	return res
}
