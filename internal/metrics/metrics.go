// Package metrics implements the three SMT performance metrics of the
// paper's Section 3.1.1 (equations 1–3). Each reflects a different goal:
// average IPC quantifies throughput, average weighted IPC quantifies
// execution-time reduction, and the harmonic mean of weighted IPC
// balances performance and fairness.
//
// A key property of learning-based resource distribution is that any of
// these can drive the learning directly — the technique optimises
// whichever goal the user selects — so the same Kind values are used both
// for feedback during learning and for end evaluation.
package metrics

import "fmt"

// Kind selects a performance metric.
type Kind int

const (
	// AvgIPC is equation (1): the arithmetic mean of per-thread IPCs.
	AvgIPC Kind = iota
	// WeightedIPC is equation (2): the mean of IPC_i / SingleIPC_i.
	WeightedIPC
	// HmeanWeightedIPC is equation (3): T / Σ (SingleIPC_i / IPC_i).
	HmeanWeightedIPC
	// NumKinds is the number of metrics.
	NumKinds
)

// String returns the metric's name as used in the paper's figures.
func (k Kind) String() string {
	switch k {
	case AvgIPC:
		return "avg-ipc"
	case WeightedIPC:
		return "weighted-ipc"
	case HmeanWeightedIPC:
		return "hmean-weighted-ipc"
	default:
		return fmt.Sprintf("metric(%d)", int(k))
	}
}

// NeedsSingleIPC reports whether the metric requires each thread's
// stand-alone IPC. AvgIPC does not; the weighted metrics do, which is why
// the hill-climbing implementation samples SingleIPC on-line
// (Section 4.2).
func (k Kind) NeedsSingleIPC() bool { return k != AvgIPC }

// Eval computes the metric from per-thread IPCs and stand-alone IPCs.
// single may be nil for AvgIPC. Threads whose stand-alone IPC is unknown
// (zero) contribute a neutral weight of 1 so early epochs remain
// comparable before sampling completes.
func (k Kind) Eval(ipc, single []float64) float64 {
	t := len(ipc)
	if t == 0 {
		return 0
	}
	switch k {
	case AvgIPC:
		sum := 0.0
		for _, v := range ipc {
			sum += v
		}
		return sum / float64(t)
	case WeightedIPC:
		sum := 0.0
		for i, v := range ipc {
			sum += v / singleOf(single, i)
		}
		return sum / float64(t)
	case HmeanWeightedIPC:
		den := 0.0
		for i, v := range ipc {
			if v <= 0 {
				// A fully stalled thread makes the harmonic mean zero.
				return 0
			}
			den += singleOf(single, i) / v
		}
		return float64(t) / den
	default:
		panic("metrics: unknown metric")
	}
}

// singleOf returns the stand-alone IPC to weight thread i by, defaulting
// to 1 when unknown.
func singleOf(single []float64, i int) float64 {
	if i >= len(single) || single[i] <= 0 {
		return 1
	}
	return single[i]
}
