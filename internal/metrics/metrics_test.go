package metrics

import (
	"math"
	"testing"
	"testing/quick"

	"smthill/internal/rng"
)

func almost(a, b float64) bool { return math.Abs(a-b) < 1e-12 }

func TestAvgIPC(t *testing.T) {
	if got := AvgIPC.Eval([]float64{2, 4}, nil); !almost(got, 3) {
		t.Fatalf("AvgIPC = %f", got)
	}
}

func TestWeightedIPC(t *testing.T) {
	// Each thread at half its stand-alone speed -> weighted IPC 0.5.
	got := WeightedIPC.Eval([]float64{1, 2}, []float64{2, 4})
	if !almost(got, 0.5) {
		t.Fatalf("WeightedIPC = %f", got)
	}
}

func TestHmeanWeightedIPC(t *testing.T) {
	// Equal slowdowns: harmonic mean equals the common weighted IPC.
	got := HmeanWeightedIPC.Eval([]float64{1, 2}, []float64{2, 4})
	if !almost(got, 0.5) {
		t.Fatalf("HmeanWeightedIPC = %f", got)
	}
	// Unfair distribution scores below the fair one with the same total.
	fair := HmeanWeightedIPC.Eval([]float64{1, 1}, []float64{2, 2})
	unfair := HmeanWeightedIPC.Eval([]float64{1.8, 0.2}, []float64{2, 2})
	if unfair >= fair {
		t.Fatalf("harmonic mean did not penalise unfairness: %f vs %f", unfair, fair)
	}
}

func TestHmeanZeroThread(t *testing.T) {
	if got := HmeanWeightedIPC.Eval([]float64{0, 2}, []float64{2, 4}); got != 0 {
		t.Fatalf("stalled thread should zero the harmonic mean, got %f", got)
	}
}

func TestUnknownSingleDefaultsToOne(t *testing.T) {
	if got := WeightedIPC.Eval([]float64{2, 3}, nil); !almost(got, 2.5) {
		t.Fatalf("nil singles WeightedIPC = %f", got)
	}
	if got := WeightedIPC.Eval([]float64{2, 3}, []float64{0, 0}); !almost(got, 2.5) {
		t.Fatalf("zero singles WeightedIPC = %f", got)
	}
}

func TestNeedsSingleIPC(t *testing.T) {
	if AvgIPC.NeedsSingleIPC() {
		t.Fatal("AvgIPC should not need SingleIPC")
	}
	if !WeightedIPC.NeedsSingleIPC() || !HmeanWeightedIPC.NeedsSingleIPC() {
		t.Fatal("weighted metrics need SingleIPC")
	}
}

func TestNames(t *testing.T) {
	seen := map[string]bool{}
	for k := Kind(0); k < NumKinds; k++ {
		s := k.String()
		if s == "" || seen[s] {
			t.Fatalf("bad or duplicate name %q", s)
		}
		seen[s] = true
	}
}

func TestEmpty(t *testing.T) {
	for k := Kind(0); k < NumKinds; k++ {
		if got := k.Eval(nil, nil); got != 0 {
			t.Fatalf("%v.Eval(nil) = %f", k, got)
		}
	}
}

// Monotonicity: improving any thread's IPC (with positive singles) never
// decreases any metric.
func TestMonotonicity(t *testing.T) {
	if err := quick.Check(func(seed uint64) bool {
		r := rng.New(seed)
		n := 2 + r.Intn(3)
		ipc := make([]float64, n)
		single := make([]float64, n)
		for i := range ipc {
			ipc[i] = 0.1 + 3*r.Float64()
			single[i] = ipc[i] + 2*r.Float64()
		}
		up := append([]float64(nil), ipc...)
		up[r.Intn(n)] *= 1.1
		for k := Kind(0); k < NumKinds; k++ {
			if k.Eval(up, single) < k.Eval(ipc, single)-1e-12 {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Harmonic <= weighted arithmetic mean, always (AM-HM inequality on the
// per-thread speedups).
func TestHarmonicBelowArithmetic(t *testing.T) {
	if err := quick.Check(func(seed uint64) bool {
		r := rng.New(seed)
		n := 2 + r.Intn(3)
		ipc := make([]float64, n)
		single := make([]float64, n)
		for i := range ipc {
			ipc[i] = 0.1 + 3*r.Float64()
			single[i] = 0.5 + 3*r.Float64()
		}
		return HmeanWeightedIPC.Eval(ipc, single) <= WeightedIPC.Eval(ipc, single)+1e-12
	}, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
