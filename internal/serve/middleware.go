package serve

import (
	"context"
	"fmt"
	"net"
	"net/http"
	"runtime/debug"
	"time"

	"smthill/internal/obs"
)

// statusWriter records the response status for metrics and whether
// anything was written (so the panic handler knows if a 500 can still
// be sent). It forwards Flush for SSE.
type statusWriter struct {
	http.ResponseWriter
	status int
	wrote  bool
}

func (sw *statusWriter) WriteHeader(code int) {
	if !sw.wrote {
		sw.status = code
		sw.wrote = true
	}
	sw.ResponseWriter.WriteHeader(code)
}

func (sw *statusWriter) Write(b []byte) (int, error) {
	if !sw.wrote {
		sw.status = http.StatusOK
		sw.wrote = true
	}
	return sw.ResponseWriter.Write(b)
}

// Flush implements http.Flusher when the underlying writer does.
func (sw *statusWriter) Flush() {
	if f, ok := sw.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// handle registers pattern on mux wrapped in the daemon middleware
// stack: panic isolation (a handler panic becomes a logged 500, never a
// dead process), optional per-client rate limiting, an optional request
// deadline, per-route latency/status metrics, and (tracer configured) a
// server span continuing the request's traceparent or opening a new
// root. Routes that outlive RequestTimeout by design — the SSE stream,
// and the experiments endpoint with its own bounded wait — pass
// deadline=false so their r.Context() only ends on client disconnect or
// server shutdown.
//
// The metrics route label is always the registration pattern, with the
// catch-all "/" pattern normalised to "other": label cardinality is
// bounded by the route table, never by what clients request.
func (s *Server) handle(mux *http.ServeMux, pattern string, limited, deadline bool, h http.HandlerFunc) {
	route := pattern
	if route == "/" {
		route = "other"
	}
	mux.HandleFunc(pattern, func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		sw := &statusWriter{ResponseWriter: w}
		// Only API routes open spans: monitoring endpoints are scraped on
		// a cadence and would drown the trace ring in probe roots. The
		// limited flag is exactly the /v1 API set.
		var span *obs.Span
		if limited {
			var ctx context.Context
			ctx, span = s.tracer.StartRemote(r.Context(), obs.Extract(r.Header), route, obs.KindServer)
			r = r.WithContext(ctx)
		}
		defer func() {
			if p := recover(); p != nil {
				s.cfg.Logf("serve: %s panic: %v\n%s", pattern, p, debug.Stack())
				if !sw.wrote {
					writeError(sw, http.StatusInternalServerError, "internal error")
				}
			}
			status := sw.status
			if status == 0 {
				// Handler wrote nothing; net/http sends an implicit 200.
				// Every route writes explicitly today, so this is a
				// belt-and-braces default for the metrics label.
				status = http.StatusOK
			}
			s.metrics.observeHTTP(route, status, time.Since(start))
			span.SetAttr("status", fmt.Sprintf("%d", status))
			if status >= http.StatusInternalServerError {
				span.End(fmt.Errorf("HTTP %d", status))
			} else {
				span.End(nil)
			}
		}()

		if limited {
			if ok, retry := s.limits.allow(clientKey(r)); !ok {
				s.metrics.jobRejected("rate_limited")
				secs := int(retry/time.Second) + 1
				sw.Header().Set("Retry-After", fmt.Sprintf("%d", secs))
				writeError(sw, http.StatusTooManyRequests,
					"rate limit exceeded; retry in %ds", secs)
				return
			}
		}
		if deadline {
			ctx, cancel := context.WithTimeout(r.Context(), s.cfg.RequestTimeout)
			defer cancel()
			r = r.WithContext(ctx)
		}
		h(sw, r)
	})
}

// clientKey identifies a client for rate limiting: the remote host
// without the ephemeral port.
func clientKey(r *http.Request) string {
	host, _, err := net.SplitHostPort(r.RemoteAddr)
	if err != nil {
		return r.RemoteAddr
	}
	return host
}
