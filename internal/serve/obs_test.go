package serve_test

import (
	"bytes"
	"encoding/json"
	"net/http"
	"strings"
	"testing"

	"smthill/internal/obs"
	"smthill/internal/serve"
)

// TestUnknownRoutesCollapseToOther is the route-cardinality regression
// (PR 7 S2): requests for paths outside the route table must all count
// under the single route="other" label — a client scanning random URLs
// cannot mint new metric series.
func TestUnknownRoutesCollapseToOther(t *testing.T) {
	_, ts := newTestServer(t, serve.Config{Workers: 1})
	paths := []string{
		"/nope",
		"/v2/secret-probe",
		"/admin/../../etc/passwd",
		"/v1/jobsX",
	}
	for _, p := range paths {
		resp, err := http.Get(ts.URL + p)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Errorf("GET %s = %d, want 404", p, resp.StatusCode)
		}
	}

	body := getText(t, ts.URL+"/metrics")
	if !strings.Contains(body, `smtserved_http_requests_total{route="other",status="404"} 4`) {
		t.Errorf("unknown routes not collapsed into route=\"other\":\n%s", body)
	}
	for _, raw := range []string{"nope", "secret-probe", "passwd", "jobsX"} {
		if strings.Contains(body, raw) {
			t.Errorf("raw request path %q leaked into the metrics exposition", raw)
		}
	}
}

// TestServeTraceContinuation checks the daemon side of distributed
// tracing: a traced submit request opens a server span, the async job
// continues the same trace, and /debug/traces serves both. With no
// tracer configured the debug endpoint reports tracing disabled.
func TestServeTraceContinuation(t *testing.T) {
	tracer := obs.NewTracer(obs.TracerConfig{Node: "daemon", SampleN: 1})
	_, ts := newTestServer(t, serve.Config{Workers: 1, Tracer: tracer})

	parent := obs.SpanContext{
		Trace:   "aaaabbbbccccddddaaaabbbbccccdddd",
		Span:    "aaaabbbbccccdddd",
		Sampled: true,
	}
	body, _ := json.Marshal(tinySpec())
	req, err := http.NewRequest("POST", ts.URL+"/v1/jobs", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(obs.TraceparentHeader, parent.Traceparent())
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	var v jobView
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit returned %d", resp.StatusCode)
	}
	waitState(t, ts.URL, v.ID, "done")

	spans := tracer.CollectTrace(parent.Trace)
	names := map[string]bool{}
	for _, d := range spans {
		names[d.Name] = true
	}
	if !names["POST /v1/jobs"] {
		t.Errorf("no API server span in trace: %v", names)
	}
	if !names["serve.job"] {
		t.Errorf("async job did not continue the submit trace: %v", names)
	}

	// The trace is served over HTTP.
	dbg := getText(t, ts.URL+"/debug/traces?trace="+parent.Trace)
	if !strings.Contains(dbg, "serve.job") {
		t.Errorf("/debug/traces view missing the job span:\n%s", dbg)
	}

	// Monitoring endpoints must not open spans: scrape twice, then check
	// no span named for the metrics route exists.
	getText(t, ts.URL+"/metrics")
	getText(t, ts.URL+"/healthz")
	for _, d := range tracer.Spans() {
		if strings.Contains(d.Name, "/metrics") || strings.Contains(d.Name, "/healthz") {
			t.Errorf("monitoring endpoint opened a span: %q", d.Name)
		}
	}
}

// TestDebugTracesDisabledWithoutTracer pins the tracing-off behaviour of
// the debug endpoint.
func TestDebugTracesDisabledWithoutTracer(t *testing.T) {
	_, ts := newTestServer(t, serve.Config{Workers: 1})
	resp, err := http.Get(ts.URL + "/debug/traces")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("/debug/traces without a tracer = %d, want 404", resp.StatusCode)
	}
}
