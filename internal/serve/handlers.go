package serve

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"time"

	"smthill/internal/experiment"
	"smthill/internal/obs"
	"smthill/internal/simjob"
)

// jobView is the JSON representation of a job returned by the API.
type jobView struct {
	ID         string         `json:"id"`
	Kind       string         `json:"kind"`
	State      JobState       `json:"state"`
	Spec       *simjob.Spec   `json:"spec,omitempty"`
	Experiment string         `json:"experiment,omitempty"`
	Source     string         `json:"source,omitempty"`
	Result     *simjob.Result `json:"result,omitempty"`
	Output     string         `json:"output,omitempty"`
	Error      string         `json:"error,omitempty"`
	EventsURL  string         `json:"events_url"`
	CreatedAt  string         `json:"created_at,omitempty"`
	StartedAt  string         `json:"started_at,omitempty"`
	FinishedAt string         `json:"finished_at,omitempty"`
}

func (s *Server) view(j *job) jobView {
	state, source, result, output, errMsg, created, started, finished := j.snapshot()
	v := jobView{
		ID:        j.id,
		State:     state,
		Source:    string(source),
		Result:    result,
		Output:    output,
		Error:     errMsg,
		EventsURL: "/v1/jobs/" + j.id + "/events",
	}
	switch j.kind {
	case kindSim:
		v.Kind = "sim"
		spec := j.spec
		v.Spec = &spec
	case kindExperiment:
		v.Kind = "experiment"
		v.Experiment = j.expName
	}
	if !created.IsZero() {
		v.CreatedAt = created.UTC().Format(time.RFC3339Nano)
	}
	if !started.IsZero() {
		v.StartedAt = started.UTC().Format(time.RFC3339Nano)
	}
	if !finished.IsZero() {
		v.FinishedAt = finished.UTC().Format(time.RFC3339Nano)
	}
	return v
}

// buildRoutes wires the endpoint table. Monitoring endpoints bypass the
// rate limiter so scrapes and health probes never contend with API
// clients. The SSE stream and the experiments endpoint carry no
// middleware deadline: the former lives as long as the job, the latter
// bounds its own synchronous wait (see handleExperiment) and must
// outlive RequestTimeout for ?wait= values beyond it.
func (s *Server) buildRoutes() http.Handler {
	mux := http.NewServeMux()
	s.handle(mux, "POST /v1/jobs", true, true, s.handleSubmit)
	s.handle(mux, "GET /v1/jobs/{id}", true, true, s.handleJobGet)
	s.handle(mux, "GET /v1/jobs/{id}/events", true, false, s.handleJobEvents)
	s.handle(mux, "GET /v1/experiments/{name}", true, false, s.handleExperiment)
	s.handle(mux, "GET /healthz", false, true, s.handleHealthz)
	s.handle(mux, "GET /metrics", false, true, s.handleMetrics)
	s.handle(mux, "GET /debug/traces", false, true, s.handleDebugTraces)
	// Catch-all: unmatched URLs are answered (and counted) under the
	// single "other" route label instead of falling through to the
	// mux's unobserved 404, so unknown paths cannot mint metric series.
	s.handle(mux, "/", false, true, s.handleNotFound)
	return mux
}

// handleDebugTraces serves the trace ring (404 when tracing is off).
func (s *Server) handleDebugTraces(w http.ResponseWriter, r *http.Request) {
	s.tracer.DebugHandler().ServeHTTP(w, r)
}

func (s *Server) handleNotFound(w http.ResponseWriter, r *http.Request) {
	writeError(w, http.StatusNotFound, "no such endpoint: %s %s", r.Method, r.URL.Path)
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, map[string]string{"error": fmt.Sprintf(format, args...)})
}

// handleSubmit admits one simulation job: validate the spec (never
// panicking on user input), mint a job, and enqueue it. A full queue is
// 429 + Retry-After; a draining server is 503.
func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	var spec simjob.Spec
	if err := dec.Decode(&spec); err != nil {
		writeError(w, http.StatusBadRequest, "bad job spec: %v", err)
		return
	}
	spec = spec.Normalize()
	if err := spec.Validate(); err != nil {
		writeError(w, http.StatusBadRequest, "bad job spec: %v", err)
		return
	}

	j := &job{
		id:    s.store.nextID(),
		kind:  kindSim,
		spec:  spec,
		key:   spec.Key(),
		hub:   newHub(s.cfg.EventBuffer),
		done:  make(chan struct{}),
		trace: obs.FromContext(r.Context()).Context(),
	}
	j.state = StateQueued
	j.created = time.Now()
	s.store.add(j)
	if err := s.admit(w, j); err != nil {
		return
	}
	w.Header().Set("Location", "/v1/jobs/"+j.id)
	writeJSON(w, http.StatusAccepted, s.view(j))
}

// admit enqueues j, translating admission failures to HTTP errors and
// un-registering the rejected job.
func (s *Server) admit(w http.ResponseWriter, j *job) error {
	err := s.enqueue(j)
	switch err {
	case nil:
		return nil
	case errQueueFull:
		s.store.remove(j.id)
		s.metrics.jobRejected("queue_full")
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusTooManyRequests,
			"job queue full (%d queued); retry later", s.cfg.QueueDepth)
	case errDraining:
		s.store.remove(j.id)
		s.metrics.jobRejected("draining")
		writeError(w, http.StatusServiceUnavailable, "server is draining")
	default:
		s.store.remove(j.id)
		writeError(w, http.StatusInternalServerError, "%v", err)
	}
	return err
}

func (s *Server) handleJobGet(w http.ResponseWriter, r *http.Request) {
	j, ok := s.store.get(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "unknown job %q", r.PathValue("id"))
		return
	}
	writeJSON(w, http.StatusOK, s.view(j))
}

// handleJobEvents streams the job's event hub as Server-Sent Events:
// full replay of the retained history (state transitions, per-epoch
// telemetry, hill-climbing moves, sweep progress), then live events
// until the job reaches a terminal state. Clients may resume from a
// Last-Event-ID header.
func (s *Server) handleJobEvents(w http.ResponseWriter, r *http.Request) {
	j, ok := s.store.get(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "unknown job %q", r.PathValue("id"))
		return
	}
	flusher, ok := w.(http.Flusher)
	if !ok {
		writeError(w, http.StatusInternalServerError, "streaming unsupported")
		return
	}
	from := 0
	if lei := r.Header.Get("Last-Event-ID"); lei != "" {
		if id, err := strconv.Atoi(lei); err == nil {
			from = id + 1
		}
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)
	flusher.Flush()

	for {
		ev, ok, err := j.hub.next(r.Context(), from)
		if err != nil || !ok {
			// Client went away, or the stream is complete.
			return
		}
		fmt.Fprintf(w, "id: %d\nevent: %s\ndata: %s\n\n", ev.id, ev.name, ev.data)
		flusher.Flush()
		from = ev.id + 1
	}
}

// handleExperiment submits a named experiment as a job through the same
// admission control and waits up to RequestTimeout (or ?wait=, which may
// exceed it — the route carries no middleware deadline) for it to
// finish: 200 with the rendered output when done in time, otherwise 202
// with the job view for polling. The 202 is also written on client
// disconnect; net/http discards it if nobody is listening, but it keeps
// this handler's only bodyless return the panic path.
func (s *Server) handleExperiment(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	if !knownExperiment(name) {
		writeError(w, http.StatusNotFound,
			"unknown experiment %q; valid: %v or all", name, experiment.Names())
		return
	}
	q := r.URL.Query()
	cfg := s.cfg.Experiments
	if e := q.Get("epochs"); e != "" {
		n, err := strconv.Atoi(e)
		if err != nil || n <= 0 || n > simjob.MaxEpochs {
			writeError(w, http.StatusBadRequest, "bad epochs %q", e)
			return
		}
		cfg.Epochs = n
	}
	opts := experiment.RunOptions{
		Workloads:     q.Get("workloads"),
		Fig12Workload: q.Get("fig12-workload"),
		JSONRows:      boolParam(q.Get("json")),
	}

	j := &job{
		id:      s.store.nextID(),
		kind:    kindExperiment,
		expName: name,
		expCfg:  cfg,
		expOpts: opts,
		hub:     newHub(s.cfg.EventBuffer),
		done:    make(chan struct{}),
		trace:   obs.FromContext(r.Context()).Context(),
	}
	j.state = StateQueued
	j.created = time.Now()
	s.store.add(j)
	if err := s.admit(w, j); err != nil {
		return
	}

	wait := s.cfg.RequestTimeout
	if wq := q.Get("wait"); wq != "" {
		if d, err := time.ParseDuration(wq); err == nil && d >= 0 && d <= time.Hour {
			wait = d
		}
	}
	timer := time.NewTimer(wait)
	defer timer.Stop()
	select {
	case <-j.done:
		state, _, _, output, errMsg, _, _, _ := j.snapshot()
		switch state {
		case StateDone:
			w.Header().Set("Content-Type", "text/plain; charset=utf-8")
			w.WriteHeader(http.StatusOK)
			fmt.Fprint(w, output)
		case StateCanceled:
			writeError(w, http.StatusServiceUnavailable, "%s", errMsg)
		default:
			writeError(w, http.StatusUnprocessableEntity, "%s", errMsg)
		}
	case <-timer.C:
		w.Header().Set("Location", "/v1/jobs/"+j.id)
		writeJSON(w, http.StatusAccepted, s.view(j))
	case <-r.Context().Done():
		// Client gone (this route has no middleware deadline); the job
		// keeps running and stays pollable at the Location below.
		w.Header().Set("Location", "/v1/jobs/"+j.id)
		writeJSON(w, http.StatusAccepted, s.view(j))
	}
}

func knownExperiment(name string) bool {
	if name == "all" {
		return true
	}
	for _, n := range experiment.Names() {
		if n == name {
			return true
		}
	}
	return false
}

func boolParam(v string) bool {
	return v == "1" || v == "true" || v == "yes"
}

// handleHealthz reports liveness: 200 while serving, 503 once draining
// (so load balancers stop routing during shutdown).
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	code := http.StatusOK
	status := "ok"
	if s.Draining() {
		code = http.StatusServiceUnavailable
		status = "draining"
	}
	body := map[string]any{
		"status":                 status,
		"queue_depth":            len(s.queue),
		"queue_capacity":         s.cfg.QueueDepth,
		"experiment_queue_depth": len(s.expQueue),
		"inflight":               s.inflight.Load(),
		"workers":                s.cfg.Workers,
	}
	if s.cfg.ExtraHealth != nil {
		// Merging map into map is order-insensitive; JSON encoding sorts
		// the keys.
		for k, v := range s.cfg.ExtraHealth() {
			body[k] = v
		}
	}
	writeJSON(w, code, body)
}

// handleMetrics renders the text exposition: the registry (the
// server's own series plus anything attached via Config.Registry),
// then any ExtraMetrics sections verbatim.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	w.WriteHeader(http.StatusOK)
	s.expose.Write(w)
	for _, write := range s.cfg.ExtraMetrics {
		write(w)
	}
}
