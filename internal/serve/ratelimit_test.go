package serve

import (
	"fmt"
	"testing"
	"time"
)

// fakeClock drives the limiter deterministically.
type fakeClock struct{ t time.Time }

func (c *fakeClock) now() time.Time          { return c.t }
func (c *fakeClock) advance(d time.Duration) { c.t = c.t.Add(d) }

func newTestLimiter(rate float64, burst int) (*limiter, *fakeClock) {
	l := newLimiter(rate, burst)
	c := &fakeClock{t: time.Unix(1000, 0)}
	l.now = c.now
	return l, c
}

func TestLimiterBurstThenRefill(t *testing.T) {
	l, c := newTestLimiter(1, 3)
	for i := 0; i < 3; i++ {
		if ok, _ := l.allow("a"); !ok {
			t.Fatalf("burst request %d rejected", i)
		}
	}
	ok, retry := l.allow("a")
	if ok {
		t.Fatal("over-burst request allowed")
	}
	if retry <= 0 || retry > time.Second {
		t.Fatalf("retry = %v, want (0, 1s]", retry)
	}
	c.advance(time.Second)
	if ok, _ := l.allow("a"); !ok {
		t.Fatal("refilled token not granted")
	}
}

func TestLimiterClientsAreIndependent(t *testing.T) {
	l, _ := newTestLimiter(1, 1)
	if ok, _ := l.allow("a"); !ok {
		t.Fatal("first client rejected")
	}
	if ok, _ := l.allow("b"); !ok {
		t.Fatal("second client inherited first client's spend")
	}
	if ok, _ := l.allow("a"); ok {
		t.Fatal("first client's second request allowed with empty bucket")
	}
}

func TestLimiterCapsAtBurst(t *testing.T) {
	l, c := newTestLimiter(100, 2)
	l.allow("a")
	l.allow("a")
	// A long idle period must not bank more than burst tokens.
	c.advance(time.Hour)
	for i := 0; i < 2; i++ {
		if ok, _ := l.allow("a"); !ok {
			t.Fatalf("post-idle request %d rejected", i)
		}
	}
	if ok, _ := l.allow("a"); ok {
		t.Fatal("idle period banked more than burst")
	}
}

func TestLimiterDisabled(t *testing.T) {
	l, _ := newTestLimiter(-1, 1)
	for i := 0; i < 100; i++ {
		if ok, _ := l.allow("a"); !ok {
			t.Fatal("disabled limiter rejected a request")
		}
	}
}

func TestLimiterEvictsLRUWhenFull(t *testing.T) {
	l, c := newTestLimiter(10, 10)
	// Fill the map with clients that are all recently active (total
	// elapsed time stays far below the burst/rate refill horizon, so
	// pruning removes none of them).
	for i := 0; i < maxClients; i++ {
		l.allow(fmt.Sprintf("client-%04d", i))
		c.advance(100 * time.Microsecond)
	}
	if len(l.clients) != maxClients {
		t.Fatalf("clients = %d, want %d", len(l.clients), maxClients)
	}
	l.allow("fresh")
	if len(l.clients) != maxClients {
		t.Fatalf("post-evict clients = %d, want %d (bound not enforced)", len(l.clients), maxClients)
	}
	if _, ok := l.clients["client-0000"]; ok {
		t.Fatal("least-recently-used bucket survived eviction")
	}
	if _, ok := l.clients["fresh"]; !ok {
		t.Fatal("new client not tracked after eviction")
	}
}

func TestLimiterPrunesIdleClients(t *testing.T) {
	l, c := newTestLimiter(10, 10)
	for i := 0; i < maxClients; i++ {
		l.allow(string(rune('a')) + time.Duration(i).String())
	}
	if len(l.clients) != maxClients {
		t.Fatalf("clients = %d, want %d", len(l.clients), maxClients)
	}
	// All existing buckets refill fully after burst/rate seconds; a new
	// client then triggers the prune.
	c.advance(2 * time.Second)
	l.allow("fresh")
	if len(l.clients) != 1 {
		t.Fatalf("post-prune clients = %d, want 1", len(l.clients))
	}
}
