package serve

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"
)

func collect(t *testing.T, h *hub, from int) []hubEvent {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	var out []hubEvent
	for {
		ev, ok, err := h.next(ctx, from)
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			return out
		}
		out = append(out, ev)
		from = ev.id + 1
	}
}

func TestHubReplayThenClose(t *testing.T) {
	h := newHub(16)
	h.publish("a", "1")
	h.publish("b", "2")
	h.close()
	got := collect(t, h, 0)
	if len(got) != 2 || got[0].name != "a" || got[1].name != "b" {
		t.Fatalf("replay = %+v", got)
	}
	if got[0].id != 0 || got[1].id != 1 {
		t.Fatalf("ids = %d,%d", got[0].id, got[1].id)
	}
}

func TestHubResumeFrom(t *testing.T) {
	h := newHub(16)
	for i := 0; i < 5; i++ {
		h.publish("e", fmt.Sprintf("%d", i))
	}
	h.close()
	got := collect(t, h, 3)
	if len(got) != 2 || got[0].data != "3" || got[1].data != "4" {
		t.Fatalf("resume = %+v", got)
	}
}

func TestHubBlocksUntilPublish(t *testing.T) {
	h := newHub(16)
	done := make(chan hubEvent, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		ev, ok, err := h.next(ctx, 0)
		if err != nil || !ok {
			close(done)
			return
		}
		done <- ev
	}()
	time.Sleep(10 * time.Millisecond)
	h.publish("late", "x")
	select {
	case ev, ok := <-done:
		if !ok || ev.name != "late" {
			t.Fatalf("blocked next = %+v ok=%v", ev, ok)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("next never woke")
	}
}

func TestHubNextHonorsContext(t *testing.T) {
	h := newHub(16)
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(10 * time.Millisecond)
		cancel()
	}()
	_, _, err := h.next(ctx, 0)
	if err == nil {
		t.Fatal("next returned without error on a cancelled context")
	}
}

func TestHubTrimsOldestBeyondMax(t *testing.T) {
	h := newHub(4)
	for i := 0; i < 10; i++ {
		h.publish("e", fmt.Sprintf("%d", i))
	}
	h.close()
	got := collect(t, h, 0) // position 0 was trimmed; skips forward
	if len(got) != 4 {
		t.Fatalf("retained %d events, want 4", len(got))
	}
	if got[0].data != "6" || got[3].data != "9" {
		t.Fatalf("retained window = %+v", got)
	}
	if got[0].id != 6 {
		t.Fatalf("ids not preserved across trim: %d", got[0].id)
	}
}

func TestHubPublishAfterCloseIsNoop(t *testing.T) {
	h := newHub(4)
	h.publish("a", "1")
	h.close()
	h.publish("b", "2")
	if got := collect(t, h, 0); len(got) != 1 {
		t.Fatalf("post-close publish leaked: %+v", got)
	}
}

func TestHubConcurrentPublishersAndSubscribers(t *testing.T) {
	h := newHub(1 << 14)
	const publishers, each = 4, 200
	var wg sync.WaitGroup
	for p := 0; p < publishers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < each; i++ {
				h.publish("e", fmt.Sprintf("%d-%d", p, i))
			}
		}(p)
	}
	subs := make(chan int, 3)
	for s := 0; s < 3; s++ {
		// No t.Fatal off the test goroutine: count manually; a short
		// count fails the assertion below.
		go func() {
			ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
			defer cancel()
			n, from := 0, 0
			for {
				ev, ok, err := h.next(ctx, from)
				if err != nil || !ok {
					break
				}
				n++
				from = ev.id + 1
			}
			subs <- n
		}()
	}
	wg.Wait()
	h.close()
	for s := 0; s < 3; s++ {
		if n := <-subs; n != publishers*each {
			t.Fatalf("subscriber saw %d events, want %d", n, publishers*each)
		}
	}
	if h.len() != publishers*each {
		t.Fatalf("retained %d", h.len())
	}
}
