// Package serve exposes the simulator as a long-running HTTP service:
// simulation jobs and named experiments submitted over JSON, executed
// on the internal/sweep engine (sharing its memo and content-addressed
// disk cache across clients), with Server-Sent-Events progress
// streaming, admission control, and graceful drain.
//
// Architecture: submissions pass a per-client token-bucket limiter and
// a bounded FIFO queue (full queue = 429 + Retry-After, never an
// unbounded backlog). A fixed pool of workers drains the queue; each
// simulation job runs as a single-key sweep batch, so the engine's
// determinism contract, panic isolation, memoisation, and disk cache
// all apply unchanged — a second submission of an identical spec is
// answered from cache, visible in /metrics as the sweep hit ratio.
// Experiment jobs reuse experiment.RunNamed through the same engine,
// on a dedicated single-worker lane so their global serialisation
// never parks sim workers. Finished jobs stay pollable until the
// retention policy (RetainJobs/RetainFor) evicts them, keeping the
// store bounded over the daemon's lifetime.
//
// Every job owns an event hub bridging the engine's observer stream and
// the simulator's telemetry sink to SSE subscribers, with replay: a
// client attaching late (or after completion) receives the retained
// history. Shutdown stops admission, lets running jobs finish, cancels
// still-queued ones, then cancels stragglers when the drain context
// expires.
//
// The package deliberately sits outside the simulator's determinism
// boundary (see internal/lint's nondeterminism rule): it may read the
// wall clock for timestamps and latency metrics, but nothing here feeds
// simulator state.
package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"smthill/internal/experiment"
	"smthill/internal/obs"
	"smthill/internal/simjob"
	"smthill/internal/sweep"
	"smthill/internal/telemetry"
)

// Config parameterises a Server. The zero value of every field selects
// a sensible default (see withDefaults).
type Config struct {
	// Workers is the size of the job worker pool and the sweep engine's
	// parallelism (default: GOMAXPROCS).
	Workers int
	// QueueDepth bounds the FIFO job queue; submissions beyond it are
	// rejected with 429 (default 64).
	QueueDepth int
	// JobTimeout bounds one job's execution (default 10m).
	JobTimeout time.Duration
	// RequestTimeout bounds non-streaming request handling, including
	// the experiments endpoint's synchronous wait (default 30s).
	RequestTimeout time.Duration
	// RatePerSec and Burst configure the per-client token-bucket
	// limiter on /v1 endpoints (default 50/s, burst 100; RatePerSec < 0
	// disables limiting, 0 selects the default).
	RatePerSec float64
	Burst      int
	// CacheDir enables the sweep engine's content-addressed disk cache
	// (empty = memo only).
	CacheDir string
	// Backend, when set, is installed as the engine's result store in
	// place of CacheDir — a fabric node composes its disk cache into a
	// shared-store client (see internal/fabric.StoreClient) and passes
	// the composite here.
	Backend sweep.Backend
	// Remote, when set, is installed as the engine's remote-execution
	// delegate (e.g. a fabric coordinator): each job is offered to it
	// before running locally, and any decline falls back to local
	// compute.
	Remote sweep.Remote
	// ExtraMetrics appends additional sections to the /metrics
	// exposition (e.g. fabric dispatch and store counters). Prefer
	// Registry where possible: attached registries render as one
	// sorted, validated exposition; ExtraMetrics output is appended
	// verbatim.
	ExtraMetrics []func(io.Writer)
	// Registry, when set, is the node-wide metric registry: the
	// server's own series are attached into it and /metrics renders it
	// whole, so fabric components sharing the registry appear on the
	// same scrape without double-rendering.
	Registry *obs.Registry
	// Tracer, when set, traces /v1/* requests (continuing a client's
	// traceparent or opening a new sampled root), the jobs they spawn,
	// and the learning epochs inside those jobs; /debug/traces serves
	// the recorded spans.
	Tracer *obs.Tracer
	// ExtraHealth merges additional keys into the /healthz body (e.g.
	// fabric role and peer liveness).
	ExtraHealth func() map[string]any
	// EventBuffer caps each job's SSE replay buffer (default 8192).
	EventBuffer int
	// RetainJobs caps how many finished jobs stay pollable; beyond it
	// the oldest-finished are evicted, releasing their replay buffers
	// (default 1024). Queued and running jobs are never evicted.
	RetainJobs int
	// RetainFor bounds how long a finished job stays pollable before
	// eviction (default 15m).
	RetainFor time.Duration
	// Experiments scales /v1/experiments runs (zero value =
	// experiment.Default()).
	Experiments experiment.Config
	// Logf receives operational log lines (nil = discard).
	Logf func(format string, args ...any)
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 64
	}
	if c.JobTimeout <= 0 {
		c.JobTimeout = 10 * time.Minute
	}
	if c.RequestTimeout <= 0 {
		c.RequestTimeout = 30 * time.Second
	}
	if c.RatePerSec == 0 {
		c.RatePerSec = 50
	}
	if c.Burst <= 0 {
		c.Burst = 100
	}
	if c.EventBuffer <= 0 {
		c.EventBuffer = 8192
	}
	if c.RetainJobs <= 0 {
		c.RetainJobs = 1024
	}
	if c.RetainFor <= 0 {
		c.RetainFor = 15 * time.Minute
	}
	if c.Experiments.Epochs == 0 {
		c.Experiments = experiment.Default()
	}
	if c.Logf == nil {
		c.Logf = func(string, ...any) {}
	}
	return c
}

// Server is the daemon: an http.Handler plus the worker pool behind it.
// Create with New, serve with net/http, stop with Shutdown.
//
// Note: New wires the process-global experiment engine (see
// experiment.SetEngine), so run one Server per process if the
// experiments endpoint is used.
type Server struct {
	cfg   Config
	eng   *sweep.Engine
	store *store
	queue chan *job
	// expQueue is the experiments' own lane: experiment jobs serialise
	// on the process-global experiment engine/context (see expMu), so
	// running them on the shared pool would park up to Workers pool
	// slots behind one lock. A dedicated single worker drains this
	// queue instead; sim workers never block on experiments.
	expQueue chan *job
	metrics  *metricsSet
	limits   *limiter
	routes   http.Handler
	tracer   *obs.Tracer
	expose   *obs.Registry // what /metrics renders (node-wide or own)

	baseCtx    context.Context
	cancelBase context.CancelFunc
	wg         sync.WaitGroup

	// admitMu serialises enqueue against Shutdown's queue close;
	// draining flips once and is also read lock-free on the worker path.
	admitMu  sync.Mutex
	draining atomic.Bool
	inflight atomic.Int64

	// keyMu guards the sweep-key -> watching-jobs index used to route
	// engine observer events to job hubs.
	keyMu    sync.Mutex
	watchers map[string]map[*job]struct{} // guarded by keyMu

	// expMu serialises experiment jobs: experiment's engine/context
	// installation is process-global, so at most one named experiment
	// runs at a time (its inner simulations still fan out on the
	// engine's worker pool). The dedicated expQueue worker makes it
	// uncontended in practice; the lock stays as a guard against any
	// other caller reaching runExperiment.
	expMu  sync.Mutex
	expJob atomic.Pointer[job]
}

// New builds a Server and starts its worker pool.
func New(cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	ctx, cancel := context.WithCancel(context.Background())
	s := &Server{
		cfg:        cfg,
		eng:        sweep.NewEngine(cfg.Workers),
		store:      newStore(),
		queue:      make(chan *job, cfg.QueueDepth),
		expQueue:   make(chan *job, cfg.QueueDepth),
		metrics:    newMetrics(time.Now()),
		limits:     newLimiter(cfg.RatePerSec, cfg.Burst),
		baseCtx:    ctx,
		cancelBase: cancel,
		watchers:   make(map[string]map[*job]struct{}),
		tracer:     cfg.Tracer,
	}
	s.metrics.registerServerGauges(s)
	if cfg.Registry != nil {
		cfg.Registry.Attach(s.metrics.reg)
		s.expose = cfg.Registry
	} else {
		s.expose = s.metrics.reg
	}
	switch {
	case cfg.Backend != nil:
		s.eng.SetBackend(cfg.Backend)
	case cfg.CacheDir != "":
		c, err := sweep.NewCache(cfg.CacheDir)
		if err != nil {
			cancel()
			return nil, fmt.Errorf("serve: open cache: %w", err)
		}
		c.SetLogf(cfg.Logf)
		s.eng.SetCache(c)
	}
	if cfg.Remote != nil {
		s.eng.SetRemote(cfg.Remote)
	}
	s.eng.AddObserver(s.observeSweep)
	experiment.SetEngine(s.eng)
	s.routes = s.buildRoutes()
	s.wg.Add(cfg.Workers + 1)
	for i := 0; i < cfg.Workers; i++ {
		go s.worker(s.queue)
	}
	go s.worker(s.expQueue)
	go s.janitor()
	return s, nil
}

// janitor periodically evicts finished jobs past the retention policy,
// keeping the store (and each evicted job's replay buffer) bounded over
// a long-running daemon's lifetime. It exits when the base context is
// cancelled at the end of Shutdown.
func (s *Server) janitor() {
	tick := s.cfg.RetainFor / 4
	if tick > 30*time.Second {
		tick = 30 * time.Second
	}
	if tick < 10*time.Millisecond {
		tick = 10 * time.Millisecond
	}
	t := time.NewTicker(tick)
	defer t.Stop()
	for {
		select {
		case <-s.baseCtx.Done():
			return
		case now := <-t.C:
			if n := s.store.evictTerminal(now, s.cfg.RetainFor, s.cfg.RetainJobs); n > 0 {
				s.cfg.Logf("serve: evicted %d finished jobs past retention", n)
			}
		}
	}
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.routes.ServeHTTP(w, r)
}

// Engine returns the sweep engine, for tests that pre-warm the cache.
func (s *Server) Engine() *sweep.Engine { return s.eng }

// errQueueFull and errDraining are admission-control outcomes.
var (
	errQueueFull = errors.New("job queue full")
	errDraining  = errors.New("server is draining")
)

// enqueue admits a job to its kind's FIFO queue (experiments have a
// dedicated lane, see expQueue), or reports why it cannot.
func (s *Server) enqueue(j *job) error {
	s.admitMu.Lock()
	defer s.admitMu.Unlock()
	if s.draining.Load() {
		return errDraining
	}
	q := s.queue
	if j.kind == kindExperiment {
		q = s.expQueue
	}
	select {
	case q <- j:
		j.publishState() // "queued"
		s.metrics.jobSubmitted()
		return nil
	default:
		return errQueueFull
	}
}

// worker drains one queue until Shutdown closes it. Once draining,
// still-queued jobs are cancelled rather than started.
func (s *Server) worker(queue chan *job) {
	defer s.wg.Done()
	for j := range queue {
		if s.draining.Load() {
			j.fail(StateCanceled, "canceled: server shutting down", time.Now())
			s.metrics.jobFinished(StateCanceled)
			continue
		}
		s.runJob(j)
	}
}

// runJob executes one job with panic isolation: a panic that escapes
// the sweep engine's own recovery (or lives in serve's glue) fails the
// job, never the worker.
func (s *Server) runJob(j *job) {
	s.inflight.Add(1)
	defer s.inflight.Add(-1)
	defer func() {
		if p := recover(); p != nil {
			s.cfg.Logf("serve: job %s panic: %v", j.id, p)
			j.fail(StateFailed, fmt.Sprintf("internal error: %v", p), time.Now())
			s.metrics.jobFinished(StateFailed)
		}
	}()

	j.setRunning(time.Now())
	ctx, cancel := context.WithTimeout(s.baseCtx, s.cfg.JobTimeout)
	defer cancel()

	// The job runs after its submit request returned 202, so the submit
	// span has ended; continue its trace from the SpanContext captured
	// at admission. With tracing off (or an unsampled submit) this is a
	// nil no-op span.
	ctx, span := s.tracer.StartFrom(ctx, j.trace, "serve.job", obs.KindInternal)
	span.SetAttr("job", j.id)
	if j.kind == kindSim {
		span.SetAttr("key", j.key)
	} else {
		span.SetAttr("experiment", j.expName)
	}

	switch j.kind {
	case kindSim:
		s.runSim(ctx, j)
	case kindExperiment:
		s.runExperiment(ctx, j)
	}
	state, _, _, _, _, _, _, _ := j.snapshot()
	span.SetAttr("state", string(state))
	if state == StateFailed {
		span.End(errors.New("job failed"))
	} else {
		span.End(nil)
	}
	s.metrics.jobFinished(state)
}

// runSim executes a simulation job as a single-key sweep batch, so
// memoisation, disk caching, and the engine's panic recovery apply.
// Per-epoch telemetry is bridged onto the job's hub.
func (s *Server) runSim(ctx context.Context, j *job) {
	sink := telemetry.SinkFunc(func(ev telemetry.Event) {
		if b, err := json.Marshal(ev); err == nil {
			j.hub.publish(ev.Type, string(b))
		}
	})
	s.watch(j.key, j)
	defer s.unwatch(j.key, j)

	jobs := []sweep.Job[simjob.Result]{{
		Key: j.key,
		Run: func(ctx context.Context) (simjob.Result, error) {
			// EpochSpans slices the compute span into per-epoch child
			// spans; with no span in ctx it returns sink unchanged.
			return simjob.Run(ctx, j.spec, obs.EpochSpans(ctx, sink))
		},
	}}
	res, err := sweep.Run(ctx, s.eng, jobs)
	if r, ok := res[j.key]; ok {
		// Completed even if the context fired during teardown.
		s.metrics.observeSim(r)
		j.completeSim(r, time.Now())
		return
	}
	s.finishError(j, ctx, err)
}

// runExperiment renders one named experiment through
// experiment.RunNamed on the shared engine. Experiments are serialised
// (see expMu); their inner simulation batches still run in parallel.
func (s *Server) runExperiment(ctx context.Context, j *job) {
	s.expMu.Lock()
	defer s.expMu.Unlock()
	s.expJob.Store(j)
	defer s.expJob.Store(nil)
	experiment.SetContext(ctx)
	defer experiment.SetContext(nil)

	var buf bytes.Buffer
	err := experiment.RunNamed(j.expCfg, j.expName, j.expOpts, &buf)
	if err == nil {
		j.completeText(buf.String(), time.Now())
		return
	}
	s.finishError(j, ctx, err)
}

// finishError maps a run error to a terminal state: shutdown
// cancellation is "canceled" (not a failure — see the sweep package's
// cancellation contract), a deadline is a failure with a timeout
// message, anything else is a plain failure.
func (s *Server) finishError(j *job, ctx context.Context, err error) {
	now := time.Now()
	switch {
	case errors.Is(err, context.DeadlineExceeded):
		j.fail(StateFailed, fmt.Sprintf("job timed out after %s", s.cfg.JobTimeout), now)
	case errors.Is(err, context.Canceled):
		j.fail(StateCanceled, "canceled: server shutting down", now)
	case err != nil:
		j.fail(StateFailed, err.Error(), now)
	default:
		j.fail(StateFailed, "job produced no result", now)
	}
}

// watch registers j to receive engine events for key.
func (s *Server) watch(key string, j *job) {
	s.keyMu.Lock()
	m, ok := s.watchers[key]
	if !ok {
		m = make(map[*job]struct{})
		s.watchers[key] = m
	}
	m[j] = struct{}{}
	s.keyMu.Unlock()
}

func (s *Server) unwatch(key string, j *job) {
	s.keyMu.Lock()
	if m, ok := s.watchers[key]; ok {
		delete(m, j)
		if len(m) == 0 {
			delete(s.watchers, key)
		}
	}
	s.keyMu.Unlock()
}

// sweepEventJSON is the SSE payload for engine progress events.
type sweepEventJSON struct {
	Kind      string  `json:"kind"`
	Key       string  `json:"key"`
	Source    string  `json:"source,omitempty"`
	Seconds   float64 `json:"seconds,omitempty"`
	Done      int     `json:"done"`
	Total     int     `json:"total"`
	CacheHits int     `json:"cache_hits"`
}

func sweepKindName(k sweep.EventKind) string {
	switch k {
	case sweep.JobQueued:
		return "queued"
	case sweep.JobStarted:
		return "started"
	case sweep.JobDone:
		return "done"
	}
	return "unknown"
}

// observeSweep is the engine observer: it feeds the cache-hit metrics,
// records a sim job's result source, and routes progress events to the
// hubs of jobs watching that key (plus the current experiment job's
// hub, so experiment SSE streams show per-simulation progress).
func (s *Server) observeSweep(ev sweep.Event) {
	s.metrics.observeSweep(ev)

	s.keyMu.Lock()
	var watching []*job
	// Order across distinct jobs' hubs is immaterial: each hub receives
	// the same event, and per-hub event order is fixed by the engine's
	// observer mutex, not by this collection order.
	for j := range s.watchers[ev.Key] {
		//smtlint:ignore map-order fan-out set; every element gets an identical event
		watching = append(watching, j)
	}
	s.keyMu.Unlock()

	exp := s.expJob.Load()
	if len(watching) == 0 && exp == nil {
		return
	}
	payload := sweepEventJSON{
		Kind: sweepKindName(ev.Kind), Key: ev.Key, Source: string(ev.Source),
		Seconds: ev.Duration.Seconds(), Done: ev.Done, Total: ev.Total,
		CacheHits: ev.CacheHits,
	}
	if ev.Kind != sweep.JobDone {
		payload.Source = ""
	}
	b, err := json.Marshal(payload)
	if err != nil {
		return
	}
	data := string(b)
	for _, j := range watching {
		if ev.Kind == sweep.JobDone {
			j.setSource(ev.Source)
		}
		j.hub.publish("sweep", data)
	}
	if exp != nil {
		exp.hub.publish("sweep", data)
	}
}

// Shutdown gracefully stops the Server: admission closes (new
// submissions get 503), running jobs finish, still-queued jobs are
// cancelled. If ctx expires first, running jobs are cancelled too (they
// stop at their next epoch boundary) and Shutdown waits for the workers
// to exit before returning ctx's error. A nil error means every
// in-flight job completed.
func (s *Server) Shutdown(ctx context.Context) error {
	s.admitMu.Lock()
	if s.draining.Swap(true) {
		s.admitMu.Unlock()
		return nil
	}
	close(s.queue)
	close(s.expQueue)
	s.admitMu.Unlock()

	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	var err error
	select {
	case <-done:
	case <-ctx.Done():
		err = ctx.Err()
		s.cancelBase()
		<-done
	}
	s.cancelBase()
	return err
}

// Draining reports whether Shutdown has begun.
func (s *Server) Draining() bool { return s.draining.Load() }
