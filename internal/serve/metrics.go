package serve

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"sync"
	"time"

	"smthill/internal/sweep"
	"smthill/internal/telemetry"
)

// metricsSet accumulates the daemon's counters: job admission and
// completion, sweep-engine cache effectiveness, and per-route HTTP
// request latency histograms (reusing telemetry.Hist's power-of-two
// buckets, observed in milliseconds). All methods are safe for
// concurrent use.
type metricsSet struct {
	mu               sync.Mutex
	start            time.Time
	submitted        uint64
	rejectedQueue    uint64
	rejectedRate     uint64
	rejectedDraining uint64
	finishedDone     uint64
	finishedFailed   uint64
	finishedCanceled uint64
	sweepDone        uint64
	sweepHits        uint64
	sweepRemote      uint64
	httpCount        map[string]map[string]uint64 // route -> status -> count
	httpLat          map[string]*telemetry.Hist   // route -> latency (ms)
}

func newMetrics(now time.Time) *metricsSet {
	return &metricsSet{
		start:     now,
		httpCount: make(map[string]map[string]uint64),
		httpLat:   make(map[string]*telemetry.Hist),
	}
}

func (m *metricsSet) jobSubmitted() {
	m.mu.Lock()
	m.submitted++
	m.mu.Unlock()
}

// jobRejected counts one admission failure by reason: "queue_full",
// "rate_limited", or "draining".
func (m *metricsSet) jobRejected(reason string) {
	m.mu.Lock()
	switch reason {
	case "queue_full":
		m.rejectedQueue++
	case "rate_limited":
		m.rejectedRate++
	case "draining":
		m.rejectedDraining++
	}
	m.mu.Unlock()
}

// jobFinished counts one terminal transition.
func (m *metricsSet) jobFinished(state JobState) {
	m.mu.Lock()
	switch state {
	case StateDone:
		m.finishedDone++
	case StateFailed:
		m.finishedFailed++
	case StateCanceled:
		m.finishedCanceled++
	}
	m.mu.Unlock()
}

// observeSweep counts completed sweep jobs, memo/disk-cache hits, and
// fabric-remote completions. A remote result is neither a local compute
// nor a cache hit — it keeps its own counter so the hit ratio still
// measures store effectiveness.
func (m *metricsSet) observeSweep(ev sweep.Event) {
	if ev.Kind != sweep.JobDone {
		return
	}
	m.mu.Lock()
	m.sweepDone++
	switch ev.Source {
	case sweep.FromRun, sweep.FromRemote:
		if ev.Source == sweep.FromRemote {
			m.sweepRemote++
		}
	default:
		m.sweepHits++
	}
	m.mu.Unlock()
}

// observeHTTP records one served request.
func (m *metricsSet) observeHTTP(route string, status int, elapsed time.Duration) {
	statusKey := strconv.Itoa(status)
	m.mu.Lock()
	byStatus, ok := m.httpCount[route]
	if !ok {
		byStatus = make(map[string]uint64)
		m.httpCount[route] = byStatus
	}
	byStatus[statusKey]++
	h, ok := m.httpLat[route]
	if !ok {
		h = &telemetry.Hist{}
		m.httpLat[route] = h
	}
	h.Observe(int(elapsed.Milliseconds()))
	m.mu.Unlock()
}

// gauges is the point-in-time state the server contributes to an
// exposition (the counters above are cumulative; these are live).
type gauges struct {
	queueDepth    int
	queueCapacity int
	expQueueDepth int
	inflight      int
	workers       int
	jobsStored    int
}

// write renders the Prometheus-style text exposition. Map-keyed series
// are emitted in sorted-key order so the output is stable (and diffable
// in tests).
func (m *metricsSet) write(w io.Writer, g gauges, now time.Time) {
	m.mu.Lock()
	defer m.mu.Unlock()

	fmt.Fprintf(w, "smtserved_uptime_seconds %.3f\n", now.Sub(m.start).Seconds())
	fmt.Fprintf(w, "smtserved_queue_depth %d\n", g.queueDepth)
	fmt.Fprintf(w, "smtserved_queue_capacity %d\n", g.queueCapacity)
	fmt.Fprintf(w, "smtserved_experiment_queue_depth %d\n", g.expQueueDepth)
	fmt.Fprintf(w, "smtserved_jobs_inflight %d\n", g.inflight)
	fmt.Fprintf(w, "smtserved_workers %d\n", g.workers)
	fmt.Fprintf(w, "smtserved_jobs_stored %d\n", g.jobsStored)
	fmt.Fprintf(w, "smtserved_jobs_submitted_total %d\n", m.submitted)
	fmt.Fprintf(w, "smtserved_jobs_rejected_total{reason=\"queue_full\"} %d\n", m.rejectedQueue)
	fmt.Fprintf(w, "smtserved_jobs_rejected_total{reason=\"rate_limited\"} %d\n", m.rejectedRate)
	fmt.Fprintf(w, "smtserved_jobs_rejected_total{reason=\"draining\"} %d\n", m.rejectedDraining)
	fmt.Fprintf(w, "smtserved_jobs_finished_total{state=\"done\"} %d\n", m.finishedDone)
	fmt.Fprintf(w, "smtserved_jobs_finished_total{state=\"failed\"} %d\n", m.finishedFailed)
	fmt.Fprintf(w, "smtserved_jobs_finished_total{state=\"canceled\"} %d\n", m.finishedCanceled)
	fmt.Fprintf(w, "smtserved_sweep_jobs_total %d\n", m.sweepDone)
	fmt.Fprintf(w, "smtserved_sweep_cache_hits_total %d\n", m.sweepHits)
	fmt.Fprintf(w, "smtserved_sweep_remote_total %d\n", m.sweepRemote)
	ratio := 0.0
	if m.sweepDone > 0 {
		ratio = float64(m.sweepHits) / float64(m.sweepDone)
	}
	fmt.Fprintf(w, "smtserved_sweep_cache_hit_ratio %.6f\n", ratio)

	routes := make([]string, 0, len(m.httpCount))
	for r := range m.httpCount {
		routes = append(routes, r)
	}
	sort.Strings(routes)
	for _, r := range routes {
		statuses := make([]string, 0, len(m.httpCount[r]))
		for s := range m.httpCount[r] {
			statuses = append(statuses, s)
		}
		sort.Strings(statuses)
		for _, s := range statuses {
			fmt.Fprintf(w, "smtserved_http_requests_total{route=%q,status=%q} %d\n", r, s, m.httpCount[r][s])
		}
	}

	latRoutes := make([]string, 0, len(m.httpLat))
	for r := range m.httpLat {
		latRoutes = append(latRoutes, r)
	}
	sort.Strings(latRoutes)
	for _, r := range latRoutes {
		h := m.httpLat[r]
		var cum uint64
		for i := 0; i < telemetry.HistBuckets; i++ {
			cum += h.Buckets[i]
			le := "+Inf"
			if i < telemetry.HistBuckets-1 {
				// Bucket i holds integer milliseconds in
				// [BucketLo(i), 2*BucketLo(i)), so the inclusive upper
				// bound is the next bucket's low edge minus one.
				le = strconv.Itoa(telemetry.BucketLo(i+1) - 1)
			}
			fmt.Fprintf(w, "smtserved_http_request_ms_bucket{route=%q,le=%q} %d\n", r, le, cum)
		}
		fmt.Fprintf(w, "smtserved_http_request_ms_sum{route=%q} %d\n", r, h.Sum)
		fmt.Fprintf(w, "smtserved_http_request_ms_count{route=%q} %d\n", r, h.Count)
	}
}

// snapshot returns (sweepDone, sweepHits) for tests and handlers.
func (m *metricsSet) sweepCounts() (done, hits uint64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.sweepDone, m.sweepHits
}
