package serve

import (
	"strconv"
	"time"

	"smthill/internal/obs"
	"smthill/internal/simjob"
	"smthill/internal/sweep"
)

// metricsSet is the daemon's instrumentation, backed by an obs.Registry
// (PR 7): job admission and completion counters, sweep-engine cache
// effectiveness, per-route HTTP latency histograms, and live gauges
// registered as functions over server state. The registry validates
// names and renders the exposition; all methods are safe for concurrent
// use.
type metricsSet struct {
	reg *obs.Registry

	submitted   *obs.Counter
	rejected    *obs.CounterVec // reason
	finished    *obs.CounterVec // state
	sweepDone   *obs.Counter
	sweepHits   *obs.Counter
	sweepRemote *obs.Counter
	mcJobs      *obs.Counter
	migrations  *obs.Counter
	httpReq     *obs.CounterVec // route, status
	httpLat     *obs.HistVec    // route
}

func newMetrics(now time.Time) *metricsSet {
	reg := obs.NewRegistry()
	m := &metricsSet{
		reg: reg,
		submitted: reg.Counter("smtserved_jobs_submitted_total",
			"jobs admitted to a queue"),
		rejected: reg.CounterVec("smtserved_jobs_rejected_total",
			"admission failures by reason", "reason"),
		finished: reg.CounterVec("smtserved_jobs_finished_total",
			"terminal job transitions by state", "state"),
		sweepDone: reg.Counter("smtserved_sweep_jobs_total",
			"sweep jobs completed (any source)"),
		sweepHits: reg.Counter("smtserved_sweep_cache_hits_total",
			"sweep jobs served from memo or cache"),
		sweepRemote: reg.Counter("smtserved_sweep_remote_total",
			"sweep jobs computed by a fabric remote"),
		mcJobs: reg.Counter("smtserved_multicore_jobs_total",
			"completed simulation jobs that ran multi-core"),
		migrations: reg.Counter("smtserved_thread_migrations_total",
			"thread-to-core migrations reported by completed multi-core jobs"),
		httpReq: reg.CounterVec("smtserved_http_requests_total",
			"served requests by route and status", "route", "status"),
		httpLat: reg.HistVec("smtserved_http_request_ms",
			"request latency in milliseconds by route", "route"),
	}
	// Materialize the full label vocabulary so zero-valued series render.
	for _, r := range []string{"queue_full", "rate_limited", "draining"} {
		m.rejected.With(r)
	}
	for _, st := range []string{"done", "failed", "canceled"} {
		m.finished.With(st)
	}
	reg.GaugeFunc("smtserved_uptime_seconds",
		"seconds since the daemon started",
		func() float64 { return time.Since(now).Seconds() })
	reg.GaugeFunc("smtserved_sweep_cache_hit_ratio",
		"fraction of completed sweep jobs served from memo or cache",
		func() float64 {
			done := m.sweepDone.Value()
			if done == 0 {
				return 0
			}
			return float64(m.sweepHits.Value()) / float64(done)
		})
	return m
}

// registerServerGauges adds the live point-in-time gauges, which need
// the constructed Server. Called once from New, before the first
// scrape.
func (m *metricsSet) registerServerGauges(s *Server) {
	m.reg.GaugeFunc("smtserved_queue_depth",
		"simulation jobs waiting in the FIFO queue",
		func() float64 { return float64(len(s.queue)) })
	m.reg.GaugeFunc("smtserved_queue_capacity",
		"FIFO queue capacity",
		func() float64 { return float64(s.cfg.QueueDepth) })
	m.reg.GaugeFunc("smtserved_experiment_queue_depth",
		"experiment jobs waiting in their dedicated lane",
		func() float64 { return float64(len(s.expQueue)) })
	m.reg.GaugeFunc("smtserved_jobs_inflight",
		"jobs currently executing",
		func() float64 { return float64(s.inflight.Load()) })
	m.reg.GaugeFunc("smtserved_workers",
		"worker-pool size",
		func() float64 { return float64(s.cfg.Workers) })
	m.reg.GaugeFunc("smtserved_jobs_stored",
		"jobs retained in the store (pollable)",
		func() float64 { return float64(s.store.count()) })
}

func (m *metricsSet) jobSubmitted() { m.submitted.Inc() }

// jobRejected counts one admission failure by reason: "queue_full",
// "rate_limited", or "draining".
func (m *metricsSet) jobRejected(reason string) {
	switch reason {
	case "queue_full", "rate_limited", "draining":
		m.rejected.With(reason).Inc()
	}
}

// jobFinished counts one terminal transition.
func (m *metricsSet) jobFinished(state JobState) {
	switch state {
	case StateDone, StateFailed, StateCanceled:
		m.finished.With(string(state)).Inc()
	}
}

// observeSweep counts completed sweep jobs, memo/disk-cache hits, and
// fabric-remote completions. A remote result is neither a local compute
// nor a cache hit — it keeps its own counter so the hit ratio still
// measures store effectiveness.
func (m *metricsSet) observeSweep(ev sweep.Event) {
	if ev.Kind != sweep.JobDone {
		return
	}
	m.sweepDone.Inc()
	switch ev.Source {
	case sweep.FromRun:
	case sweep.FromRemote:
		m.sweepRemote.Inc()
	default:
		m.sweepHits.Inc()
	}
}

// observeSim records result-level facts of one completed simulation
// job: a multi-core run counts once and contributes the thread
// migrations its allocation layer performed. Cache-served results count
// too — the counter tracks what the daemon reported, not what it
// computed.
func (m *metricsSet) observeSim(r simjob.Result) {
	if r.Cores > 1 {
		m.mcJobs.Inc()
		m.migrations.Add(r.Migrations)
	}
}

// observeHTTP records one served request. route must come from the
// bounded registration-pattern set (see Server.handle) — never from the
// request URL — so label cardinality cannot grow with client behaviour.
func (m *metricsSet) observeHTTP(route string, status int, elapsed time.Duration) {
	m.httpReq.With(route, strconv.Itoa(status)).Inc()
	m.httpLat.With(route).Observe(int(elapsed.Milliseconds()))
}

// sweepCounts returns (sweepDone, sweepHits) for tests and handlers.
func (m *metricsSet) sweepCounts() (done, hits uint64) {
	return m.sweepDone.Value(), m.sweepHits.Value()
}
