package serve

import (
	"sync"
	"time"
)

// limiter is a per-client token bucket: each client key (the request's
// remote host) accrues rate tokens per second up to burst, and every
// API request spends one. It shields the job queue from a single
// misbehaving client without globally throttling the daemon.
type limiter struct {
	mu      sync.Mutex
	rate    float64 // immutable; tokens per second
	burst   float64 // immutable; bucket capacity
	now     func() time.Time
	clients map[string]*clientBucket // guarded by mu
}

type clientBucket struct {
	tokens float64
	last   time.Time
}

// maxClients is a hard bound on the client map: at capacity, buckets
// idle long enough to have refilled completely are pruned first (their
// removal is behaviour-neutral), and if every bucket is still active
// the least-recently-used one is evicted to make room.
const maxClients = 1024

// newLimiter returns a limiter granting rate requests/second with the
// given burst. rate <= 0 disables limiting (allow always succeeds).
func newLimiter(rate float64, burst int) *limiter {
	if burst < 1 {
		burst = 1
	}
	return &limiter{
		rate:    rate,
		burst:   float64(burst),
		now:     time.Now,
		clients: make(map[string]*clientBucket),
	}
}

// allow spends one token for client, reporting whether the request may
// proceed and, if not, how long until a token is available.
func (l *limiter) allow(client string) (bool, time.Duration) {
	if l.rate <= 0 {
		return true, 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	now := l.now()
	b, ok := l.clients[client]
	if !ok {
		if len(l.clients) >= maxClients {
			l.pruneLocked(now)
		}
		if len(l.clients) >= maxClients {
			l.evictOldestLocked()
		}
		b = &clientBucket{tokens: l.burst, last: now}
		l.clients[client] = b
	}
	b.tokens += now.Sub(b.last).Seconds() * l.rate
	if b.tokens > l.burst {
		b.tokens = l.burst
	}
	b.last = now
	if b.tokens >= 1 {
		b.tokens--
		return true, 0
	}
	wait := time.Duration((1 - b.tokens) / l.rate * float64(time.Second))
	return false, wait
}

// pruneLocked drops buckets that have been idle long enough to refill
// completely — forgetting them is behaviour-neutral.
func (l *limiter) pruneLocked(now time.Time) {
	full := time.Duration(l.burst / l.rate * float64(time.Second))
	for k, b := range l.clients {
		if now.Sub(b.last) > full {
			delete(l.clients, k)
		}
	}
}

// evictOldestLocked removes the least-recently-used bucket (ties broken
// by key, so the choice is deterministic). The evicted client starts
// over with a full bucket on its next request — a small grant of extra
// burst, accepted to keep the map genuinely bounded under many
// concurrently active clients.
func (l *limiter) evictOldestLocked() {
	var oldestKey string
	var oldestAt time.Time
	found := false
	for k, b := range l.clients {
		if !found || b.last.Before(oldestAt) ||
			(b.last.Equal(oldestAt) && k < oldestKey) {
			found = true
			oldestKey, oldestAt = k, b.last
		}
	}
	if found {
		delete(l.clients, oldestKey)
	}
}
