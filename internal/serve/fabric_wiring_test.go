package serve_test

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"

	"smthill/internal/fabric"
	"smthill/internal/serve"
)

// TestFabricWiring checks the serve-side fabric plumbing that
// cmd/smtserved's coordinator role uses: the coordinator's store backs
// the engine, its counters extend /metrics in scrape format, and its
// peer state extends /healthz — all without disturbing the base series.
func TestFabricWiring(t *testing.T) {
	coord := fabric.NewCoordinator(fabric.CoordinatorConfig{Logf: t.Logf})
	_, ts := newTestServer(t, serve.Config{
		Workers:      2,
		Backend:      coord.Backend(),
		Remote:       coord,
		ExtraMetrics: []func(io.Writer){coord.WriteMetrics},
		ExtraHealth:  coord.Health,
	})

	// An empty fabric declines every job: the sim must still complete
	// locally, with the result landing in the coordinator's store.
	v, _ := submit(t, ts.URL, tinySpec())
	waitState(t, ts.URL, v.ID, "done")
	if _, ok := coord.Backend().Get(context.Background(), tinySpec().Key()); !ok {
		t.Error("completed job result missing from the coordinator store")
	}

	body := getText(t, ts.URL+"/metrics")
	for _, want := range []string{
		// Base series stay intact, including the new remote carve-out.
		"smtserved_sweep_jobs_total 1",
		"smtserved_sweep_remote_total 0",
		// The fabric section follows in the same exposition.
		`smtserved_fabric_peers{state="alive"} 0`,
		"smtserved_fabric_local_fallback_total 1",
		`smtserved_fabric_dispatch_total{kind="owner"} 0`,
		`smtserved_fabric_exec_ms_bucket{le="+Inf"} 0`,
		"smtserved_fabric_exec_ms_count 0",
		`smtserved_fabric_store_requests_total{op="get",outcome="hit"} 0`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("metrics missing %q", want)
		}
	}
	if t.Failed() {
		t.Logf("exposition:\n%s", body)
	}

	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var h struct {
		Status          string          `json:"status"`
		FabricRole      string          `json:"fabric_role"`
		FabricAlive     int             `json:"fabric_peers_alive"`
		FabricStoreKeys json.RawMessage `json:"fabric_store_keys"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if h.Status != "ok" || h.FabricRole != "coordinator" {
		t.Errorf("healthz = status %q role %q, want ok/coordinator", h.Status, h.FabricRole)
	}
	if string(h.FabricStoreKeys) == "" || string(h.FabricStoreKeys) == "0" {
		t.Errorf("healthz fabric_store_keys = %s, want > 0 after a completed job", h.FabricStoreKeys)
	}
}
