package serve

import (
	"testing"
	"time"
)

// TestEvictTerminal exercises the retention policy directly: TTL expiry
// first, then the count cap on what remains, with running jobs immune
// to both.
func TestEvictTerminal(t *testing.T) {
	st := newStore()
	now := time.Unix(2000, 0)
	mk := func(state JobState, finished time.Time) *job {
		j := &job{id: st.nextID(), hub: newHub(4), done: make(chan struct{})}
		j.state = state
		j.finished = finished
		st.add(j)
		return j
	}
	running := mk(StateRunning, time.Time{})
	old := mk(StateDone, now.Add(-time.Hour))
	mid := mk(StateDone, now.Add(-2*time.Minute))
	newer := mk(StateFailed, now.Add(-time.Minute))
	newest := mk(StateCanceled, now.Add(-time.Second))

	// TTL pass: only the hour-old job is past a 15m retention.
	if n := st.evictTerminal(now, 15*time.Minute, 10); n != 1 {
		t.Fatalf("ttl pass evicted %d, want 1", n)
	}
	if _, ok := st.get(old.id); ok {
		t.Fatal("expired job survived TTL eviction")
	}

	// Count pass: keep only the newest terminal job; the running job is
	// not a candidate and must survive.
	if n := st.evictTerminal(now, 15*time.Minute, 1); n != 2 {
		t.Fatalf("count pass evicted %d, want 2", n)
	}
	for _, gone := range []*job{mid, newer} {
		if _, ok := st.get(gone.id); ok {
			t.Fatalf("job %s survived count-capped eviction", gone.id)
		}
	}
	for _, kept := range []*job{running, newest} {
		if _, ok := st.get(kept.id); !ok {
			t.Fatalf("job %s wrongly evicted", kept.id)
		}
	}

	// Idempotent once within policy.
	if n := st.evictTerminal(now, 15*time.Minute, 1); n != 0 {
		t.Fatalf("steady-state eviction removed %d jobs", n)
	}
}
