package serve_test

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"smthill/internal/serve"
	"smthill/internal/simjob"
)

// tinySpec is a simulation that completes in milliseconds.
func tinySpec() simjob.Spec {
	return simjob.Spec{
		Workload: "art-mcf", Tech: "ICOUNT",
		Epochs: 2, EpochSize: 2048, Warmup: 1,
	}
}

// slowSpec is a simulation that runs (much) longer than any test, to
// exercise queueing and cancellation. It still stops promptly: the
// runner checks its context at every epoch boundary.
func slowSpec() simjob.Spec {
	return simjob.Spec{
		Workload: "art-mcf", Tech: "ICOUNT",
		Epochs: simjob.MaxEpochs, EpochSize: 1 << 18, Warmup: 1,
	}
}

// newTestServer stands up a Server (rate limiting off — tests poll
// aggressively) behind httptest.
func newTestServer(t *testing.T, cfg serve.Config) (*serve.Server, *httptest.Server) {
	t.Helper()
	if cfg.RatePerSec == 0 {
		cfg.RatePerSec = -1
	}
	if cfg.Logf == nil {
		cfg.Logf = t.Logf
	}
	srv, err := serve.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
	})
	return srv, ts
}

// jobView mirrors the API's job JSON.
type jobView struct {
	ID        string         `json:"id"`
	Kind      string         `json:"kind"`
	State     string         `json:"state"`
	Source    string         `json:"source"`
	Result    *simjob.Result `json:"result"`
	Output    string         `json:"output"`
	Error     string         `json:"error"`
	EventsURL string         `json:"events_url"`
}

func submit(t *testing.T, base string, spec simjob.Spec) (jobView, *http.Response) {
	t.Helper()
	body, _ := json.Marshal(spec)
	resp, err := http.Post(base+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var v jobView
	if resp.StatusCode == http.StatusAccepted {
		if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
			t.Fatal(err)
		}
	}
	return v, resp
}

func getJob(t *testing.T, base, id string) jobView {
	t.Helper()
	resp, err := http.Get(base + "/v1/jobs/" + id)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET job %s: status %d", id, resp.StatusCode)
	}
	var v jobView
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		t.Fatal(err)
	}
	return v
}

// waitState polls until the job reaches state (or any terminal state,
// which fails the test if it isn't the wanted one).
func waitState(t *testing.T, base, id, state string) jobView {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for time.Now().Before(deadline) {
		v := getJob(t, base, id)
		if v.State == state {
			return v
		}
		if v.State == "done" || v.State == "failed" || v.State == "canceled" {
			t.Fatalf("job %s reached %q (error %q), want %q", id, v.State, v.Error, state)
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("job %s never reached %q", id, state)
	return jobView{}
}

func TestSubmitAndComplete(t *testing.T) {
	_, ts := newTestServer(t, serve.Config{Workers: 2})
	v, resp := submit(t, ts.URL, tinySpec())
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if loc := resp.Header.Get("Location"); loc != "/v1/jobs/"+v.ID {
		t.Fatalf("Location = %q", loc)
	}
	got := waitState(t, ts.URL, v.ID, "done")
	if got.Result == nil {
		t.Fatal("done job has no result")
	}
	if got.Source != "run" {
		t.Fatalf("source = %q, want run", got.Source)
	}

	// The daemon's result must equal a direct library run: one schema,
	// one simulator, byte-identical numbers.
	want, err := simjob.Run(context.Background(), tinySpec(), nil)
	if err != nil {
		t.Fatal(err)
	}
	gotJSON, _ := json.Marshal(got.Result)
	wantJSON, _ := json.Marshal(want)
	if !bytes.Equal(gotJSON, wantJSON) {
		t.Fatalf("daemon result != library result\n got %s\nwant %s", gotJSON, wantJSON)
	}
}

func TestSecondSubmissionServedFromMemo(t *testing.T) {
	_, ts := newTestServer(t, serve.Config{Workers: 2})
	v1, _ := submit(t, ts.URL, tinySpec())
	waitState(t, ts.URL, v1.ID, "done")

	v2, _ := submit(t, ts.URL, tinySpec())
	got := waitState(t, ts.URL, v2.ID, "done")
	if got.Source != "memo" {
		t.Fatalf("second submission source = %q, want memo", got.Source)
	}
	if got.Result == nil {
		t.Fatal("memo-served job has no result")
	}

	// The shared-cache effect must be visible in /metrics.
	body := getText(t, ts.URL+"/metrics")
	if !strings.Contains(body, "smtserved_sweep_cache_hits_total 1") {
		t.Fatalf("metrics missing cache hit:\n%s", grep(body, "sweep"))
	}
	if !strings.Contains(body, "smtserved_sweep_cache_hit_ratio 0.5") {
		t.Fatalf("metrics missing hit ratio:\n%s", grep(body, "sweep"))
	}
}

func TestDiskCacheSharedAcrossRestarts(t *testing.T) {
	dir := t.TempDir()

	srv1, ts1 := newTestServer(t, serve.Config{Workers: 2, CacheDir: dir})
	v1, _ := submit(t, ts1.URL, tinySpec())
	waitState(t, ts1.URL, v1.ID, "done")
	ts1.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := srv1.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}

	_, ts2 := newTestServer(t, serve.Config{Workers: 2, CacheDir: dir})
	v2, _ := submit(t, ts2.URL, tinySpec())
	got := waitState(t, ts2.URL, v2.ID, "done")
	if got.Source != "cache" {
		t.Fatalf("post-restart source = %q, want cache", got.Source)
	}
}

func TestQueueOverflowRejectsWith429(t *testing.T) {
	srv, ts := newTestServer(t, serve.Config{Workers: 1, QueueDepth: 1, JobTimeout: time.Hour})

	v1, _ := submit(t, ts.URL, slowSpec())
	waitState(t, ts.URL, v1.ID, "running")

	// Worker busy; this one fills the queue. Distinct seed so it is a
	// distinct job (no memo short-circuit).
	spec2 := slowSpec()
	spec2.Seed = 1
	v2, resp2 := submit(t, ts.URL, spec2)
	if resp2.StatusCode != http.StatusAccepted {
		t.Fatalf("second submit status = %d", resp2.StatusCode)
	}

	spec3 := slowSpec()
	spec3.Seed = 2
	_, resp3 := submit(t, ts.URL, spec3)
	if resp3.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("overflow status = %d, want 429", resp3.StatusCode)
	}
	if resp3.Header.Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After")
	}
	body := getText(t, ts.URL+"/metrics")
	if !strings.Contains(body, `smtserved_jobs_rejected_total{reason="queue_full"} 1`) {
		t.Fatalf("metrics missing queue_full rejection:\n%s", grep(body, "rejected"))
	}

	// Forced shutdown: the drain deadline passes immediately, so the
	// running job is cancelled at its next epoch boundary and the queued
	// one never starts.
	expired, cancel := context.WithTimeout(context.Background(), time.Millisecond)
	defer cancel()
	if err := srv.Shutdown(expired); err == nil {
		t.Fatal("forced shutdown reported a clean drain")
	}
	if got := getJob(t, ts.URL, v1.ID); got.State != "canceled" {
		t.Fatalf("running job state after forced shutdown = %q", got.State)
	}
	if got := getJob(t, ts.URL, v2.ID); got.State != "canceled" {
		t.Fatalf("queued job state after forced shutdown = %q", got.State)
	}

	// Draining servers refuse new work and fail their health probe.
	_, resp4 := submit(t, ts.URL, tinySpec())
	if resp4.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("submit while draining = %d, want 503", resp4.StatusCode)
	}
	hresp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	hresp.Body.Close()
	if hresp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("healthz while draining = %d, want 503", hresp.StatusCode)
	}
}

// sseEvent is one parsed server-sent event.
type sseEvent struct {
	id   string
	name string
	data string
}

// readSSE consumes the stream until EOF or until stop returns true.
func readSSE(t *testing.T, resp *http.Response, stop func(sseEvent) bool) []sseEvent {
	t.Helper()
	defer resp.Body.Close()
	var events []sseEvent
	var cur sseEvent
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case line == "":
			if cur.name != "" || cur.data != "" {
				events = append(events, cur)
				if stop != nil && stop(cur) {
					return events
				}
			}
			cur = sseEvent{}
		case strings.HasPrefix(line, "id: "):
			cur.id = line[4:]
		case strings.HasPrefix(line, "event: "):
			cur.name = line[7:]
		case strings.HasPrefix(line, "data: "):
			cur.data = line[6:]
		}
	}
	return events
}

func countByName(events []sseEvent, name string) int {
	n := 0
	for _, e := range events {
		if e.name == name {
			n++
		}
	}
	return n
}

func TestSSEStreamsEpochAndMoveEvents(t *testing.T) {
	_, ts := newTestServer(t, serve.Config{Workers: 2})

	// A hill-climbing run long enough to get past its sampling epochs,
	// so the stream carries move events too.
	spec := simjob.Spec{
		Workload: "art-mcf", Tech: "HILL-WIPC",
		Epochs: 8, EpochSize: 2048, Warmup: 1,
	}
	v, _ := submit(t, ts.URL, spec)

	// Attach immediately — for a running job the stream is replay plus
	// live events; it ends when the job reaches a terminal state.
	resp, err := http.Get(ts.URL + v.EventsURL)
	if err != nil {
		t.Fatal(err)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("Content-Type = %q", ct)
	}
	events := readSSE(t, resp, nil)

	if n := countByName(events, "epoch"); n < spec.Epochs {
		t.Fatalf("stream carried %d epoch events, want >= %d", n, spec.Epochs)
	}
	if countByName(events, "move") == 0 {
		t.Fatal("stream carried no move events")
	}
	if countByName(events, "sweep") == 0 {
		t.Fatal("stream carried no sweep events")
	}
	last := events[len(events)-1]
	if last.name != "state" || !strings.Contains(last.data, `"done"`) {
		t.Fatalf("stream did not end with the terminal state: %+v", last)
	}

	// A late subscriber to the finished job gets the same full replay.
	resp2, err := http.Get(ts.URL + v.EventsURL)
	if err != nil {
		t.Fatal(err)
	}
	replay := readSSE(t, resp2, nil)
	if len(replay) != len(events) {
		t.Fatalf("replay has %d events, live stream had %d", len(replay), len(events))
	}

	// Last-Event-ID resumes mid-stream instead of replaying everything.
	req, _ := http.NewRequest("GET", ts.URL+v.EventsURL, nil)
	req.Header.Set("Last-Event-ID", events[len(events)-2].id)
	resp3, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	tail := readSSE(t, resp3, nil)
	if len(tail) != 1 || tail[0].name != "state" {
		t.Fatalf("resumed stream = %+v, want just the final state event", tail)
	}
}

func TestExperimentEndpoint(t *testing.T) {
	_, ts := newTestServer(t, serve.Config{Workers: 2})

	body := getText(t, ts.URL+"/v1/experiments/table1")
	if !strings.Contains(body, "Table 1") || !strings.Contains(body, "Rename reg") {
		t.Fatalf("table1 output:\n%s", body)
	}

	resp, err := http.Get(ts.URL + "/v1/experiments/fig99")
	if err != nil {
		t.Fatal(err)
	}
	b := readAll(t, resp)
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown experiment status = %d", resp.StatusCode)
	}
	if !strings.Contains(b, "fig9") || !strings.Contains(b, "table1") {
		t.Fatalf("404 does not teach the vocabulary: %s", b)
	}

	resp2, err := http.Get(ts.URL + "/v1/experiments/fig4?epochs=bogus")
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad epochs status = %d", resp2.StatusCode)
	}
}

func TestExperimentAsyncPolling(t *testing.T) {
	_, ts := newTestServer(t, serve.Config{Workers: 2})

	// wait=0 forces the async path: 202 with a job view to poll.
	resp, err := http.Get(ts.URL + "/v1/experiments/table3?wait=0")
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("status = %d, want 202", resp.StatusCode)
	}
	var v jobView
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if v.Kind != "experiment" {
		t.Fatalf("kind = %q", v.Kind)
	}
	got := waitState(t, ts.URL, v.ID, "done")
	if !strings.Contains(got.Output, "Table 3") {
		t.Fatalf("experiment output:\n%s", got.Output)
	}
}

// slowExperimentPath is a named-experiment request that runs simulations
// for several seconds (OFF-LINE search on one workload) — long enough to
// outlive any test RequestTimeout, short enough to finish within the
// waitState budget.
const slowExperimentPath = "/v1/experiments/fig4?workloads=art-mcf&epochs=2"

// TestExperimentSlowerThanRequestTimeout pins the polling fallback: an
// experiment that outlives the server's RequestTimeout must come back
// as a real 202 with a job view to poll — not a bodyless implicit 200
// from an expired middleware deadline (the route carries none).
func TestExperimentSlowerThanRequestTimeout(t *testing.T) {
	_, ts := newTestServer(t, serve.Config{Workers: 2, RequestTimeout: 100 * time.Millisecond})
	resp, err := http.Get(ts.URL + slowExperimentPath)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("slow experiment status = %d, want 202 (body %q)", resp.StatusCode, readAll(t, resp))
	}
	var v jobView
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		t.Fatalf("202 carried no job view: %v", err)
	}
	resp.Body.Close()
	if v.Kind != "experiment" || v.ID == "" {
		t.Fatalf("202 job view = %+v", v)
	}
	got := waitState(t, ts.URL, v.ID, "done")
	if !strings.Contains(got.Output, "Figure 4") {
		t.Fatalf("experiment output:\n%s", got.Output)
	}
}

// TestExperimentWaitBeyondRequestTimeout pins that ?wait= is honoured
// past RequestTimeout instead of being silently truncated by a
// middleware deadline.
func TestExperimentWaitBeyondRequestTimeout(t *testing.T) {
	_, ts := newTestServer(t, serve.Config{Workers: 2, RequestTimeout: 50 * time.Millisecond})
	body := getText(t, ts.URL+slowExperimentPath+"&wait=60s")
	if !strings.Contains(body, "Figure 4") {
		t.Fatalf("long-wait experiment returned 200 without output:\n%q", body)
	}
}

// TestFinishedJobsEvicted pins the retention policy end to end: a
// finished job eventually 404s once RetainFor passes, so the store (and
// /metrics jobs_stored) stays bounded on a long-running daemon.
func TestFinishedJobsEvicted(t *testing.T) {
	_, ts := newTestServer(t, serve.Config{Workers: 2, RetainFor: 50 * time.Millisecond})
	v, _ := submit(t, ts.URL, tinySpec())
	waitState(t, ts.URL, v.ID, "done")

	deadline := time.Now().Add(10 * time.Second)
	for {
		resp, err := http.Get(ts.URL + "/v1/jobs/" + v.ID)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode == http.StatusNotFound {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("finished job was never evicted")
		}
		time.Sleep(10 * time.Millisecond)
	}
	body := getText(t, ts.URL+"/metrics")
	if !strings.Contains(body, "smtserved_jobs_stored 0") {
		t.Fatalf("store not emptied after eviction:\n%s", grep(body, "jobs_stored"))
	}
}

func TestBadSubmissionsNeverCrash(t *testing.T) {
	_, ts := newTestServer(t, serve.Config{Workers: 1})
	cases := []string{
		`{"workload":"not-a-workload"}`,
		`{"workload":"art-mcf","tech":"NOPE"}`,
		`{"workload":"art-mcf","epochs":-5}`,
		`{"workload":"art-mcf","epochs":100000}`,
		`{"workload":"art-mcf","unknown_field":1}`,
		`{not json`,
		``,
	}
	for _, c := range cases {
		resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(c))
		if err != nil {
			t.Fatal(err)
		}
		b := readAll(t, resp)
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("spec %q: status %d, body %s", c, resp.StatusCode, b)
		}
		if !strings.Contains(b, "error") {
			t.Fatalf("spec %q: no error message: %s", c, b)
		}
	}
	// The server is still healthy after all that abuse.
	v, _ := submit(t, ts.URL, tinySpec())
	waitState(t, ts.URL, v.ID, "done")
}

func TestUnknownJob404(t *testing.T) {
	_, ts := newTestServer(t, serve.Config{Workers: 1})
	for _, path := range []string{"/v1/jobs/j999999", "/v1/jobs/j999999/events"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Fatalf("%s: status %d", path, resp.StatusCode)
		}
	}
}

func TestRateLimiting(t *testing.T) {
	_, ts := newTestServer(t, serve.Config{Workers: 1, RatePerSec: 0.01, Burst: 2})
	statuses := make([]int, 0, 3)
	for i := 0; i < 3; i++ {
		resp, err := http.Get(ts.URL + "/v1/jobs/nope")
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		statuses = append(statuses, resp.StatusCode)
		if resp.StatusCode == http.StatusTooManyRequests && resp.Header.Get("Retry-After") == "" {
			t.Fatal("429 without Retry-After")
		}
	}
	if statuses[0] != http.StatusNotFound || statuses[1] != http.StatusNotFound {
		t.Fatalf("burst requests = %v, want two 404s", statuses)
	}
	if statuses[2] != http.StatusTooManyRequests {
		t.Fatalf("third request = %v, want 429", statuses)
	}
	// Monitoring endpoints are exempt.
	for i := 0; i < 5; i++ {
		resp, err := http.Get(ts.URL + "/healthz")
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("healthz rate-limited: %d", resp.StatusCode)
		}
	}
}

func TestMetricsExposition(t *testing.T) {
	_, ts := newTestServer(t, serve.Config{Workers: 2})
	v, _ := submit(t, ts.URL, tinySpec())
	waitState(t, ts.URL, v.ID, "done")

	body := getText(t, ts.URL+"/metrics")
	for _, want := range []string{
		"smtserved_uptime_seconds ",
		"smtserved_queue_depth 0",
		"smtserved_jobs_submitted_total 1",
		`smtserved_jobs_finished_total{state="done"} 1`,
		"smtserved_sweep_jobs_total 1",
		`smtserved_http_requests_total{route="POST /v1/jobs",status="202"} 1`,
		`smtserved_http_request_ms_count{route="POST /v1/jobs"} 1`,
		`smtserved_http_request_ms_bucket{route="POST /v1/jobs",le="+Inf"} 1`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("metrics missing %q", want)
		}
	}
	if t.Failed() {
		t.Logf("exposition:\n%s", body)
	}

	// The exposition is stable: identical state renders identical text
	// apart from the uptime line (maporder discipline).
	a := stripUptime(getText(t, ts.URL+"/metrics"))
	b := stripUptime(getText(t, ts.URL+"/metrics"))
	// Latency series for GET /metrics itself advance between scrapes;
	// drop them too.
	a, b = stripRoute(a, "GET /metrics"), stripRoute(b, "GET /metrics")
	if a != b {
		t.Fatalf("exposition unstable:\n--- first\n%s\n--- second\n%s", a, b)
	}
}

func TestHealthz(t *testing.T) {
	_, ts := newTestServer(t, serve.Config{Workers: 3, QueueDepth: 7})
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var h struct {
		Status        string `json:"status"`
		QueueCapacity int    `json:"queue_capacity"`
		Workers       int    `json:"workers"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || h.Status != "ok" || h.QueueCapacity != 7 || h.Workers != 3 {
		t.Fatalf("healthz = %d %+v", resp.StatusCode, h)
	}
}

func TestConcurrentSubmissions(t *testing.T) {
	_, ts := newTestServer(t, serve.Config{Workers: 4, QueueDepth: 32})
	// Several distinct specs plus duplicates, submitted concurrently:
	// everything completes, duplicates may be deduplicated by the memo.
	type res struct {
		id   string
		code int
	}
	results := make(chan res, 12)
	for i := 0; i < 12; i++ {
		go func(i int) {
			spec := tinySpec()
			spec.Seed = uint64(i % 4)
			body, _ := json.Marshal(spec)
			resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", bytes.NewReader(body))
			if err != nil {
				results <- res{code: -1}
				return
			}
			defer resp.Body.Close()
			var v jobView
			json.NewDecoder(resp.Body).Decode(&v)
			results <- res{id: v.ID, code: resp.StatusCode}
		}(i)
	}
	var ids []string
	for i := 0; i < 12; i++ {
		r := <-results
		if r.code != http.StatusAccepted {
			t.Fatalf("concurrent submit status = %d", r.code)
		}
		ids = append(ids, r.id)
	}
	for _, id := range ids {
		got := waitState(t, ts.URL, id, "done")
		if got.Result == nil {
			t.Fatalf("job %s done without result", id)
		}
	}
}

func getText(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	b := readAll(t, resp)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d body %s", url, resp.StatusCode, b)
	}
	return b
}

func readAll(t *testing.T, resp *http.Response) string {
	t.Helper()
	defer resp.Body.Close()
	var sb strings.Builder
	if _, err := fmt.Fprint(&sb, readBody(resp)); err != nil {
		t.Fatal(err)
	}
	return sb.String()
}

func readBody(resp *http.Response) string {
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	return buf.String()
}

// grep returns the lines of s containing sub, for focused failure
// output.
func grep(s, sub string) string {
	var out []string
	for _, line := range strings.Split(s, "\n") {
		if strings.Contains(line, sub) {
			out = append(out, line)
		}
	}
	return strings.Join(out, "\n")
}

func stripUptime(s string) string {
	var out []string
	for _, line := range strings.Split(s, "\n") {
		if !strings.HasPrefix(line, "smtserved_uptime_seconds") {
			out = append(out, line)
		}
	}
	return strings.Join(out, "\n")
}

func stripRoute(s, route string) string {
	var out []string
	for _, line := range strings.Split(s, "\n") {
		if !strings.Contains(line, fmt.Sprintf("route=%q", route)) {
			out = append(out, line)
		}
	}
	return strings.Join(out, "\n")
}

// TestMulticoreJobAndMigrationMetrics: a multi-core spec runs through
// the daemon like any job, its Result carries the multicore fields, and
// the migration counters surface in /metrics.
func TestMulticoreJobAndMigrationMetrics(t *testing.T) {
	_, ts := newTestServer(t, serve.Config{Workers: 2})
	spec := simjob.Spec{
		Workload: "art,mcf,fma3d,gcc", Tech: "HILL-WIPC",
		Epochs: 16, EpochSize: 1024, Warmup: 1,
		Cores: 2, Pairing: "stall-pred",
	}
	v, _ := submit(t, ts.URL, spec)
	got := waitState(t, ts.URL, v.ID, "done")
	if got.Result == nil || got.Result.Cores != 2 || got.Result.Pairing != "stall-pred" {
		t.Fatalf("multicore result = %+v", got.Result)
	}
	if len(got.Result.CoreIPC) != 2 {
		t.Fatalf("CoreIPC = %v", got.Result.CoreIPC)
	}

	body := getText(t, ts.URL+"/metrics")
	if !strings.Contains(body, "smtserved_multicore_jobs_total 1") {
		t.Errorf("metrics missing multicore job count:\n%s", body)
	}
	want := fmt.Sprintf("smtserved_thread_migrations_total %d", got.Result.Migrations)
	if !strings.Contains(body, want) {
		t.Errorf("metrics missing %q:\n%s", want, body)
	}
}
