package serve

import (
	"os"
	"testing"

	"smthill/internal/lint/leakcheck"
)

// TestMain gates the suite on goroutine leaks: watchers, hub
// broadcasters, and job runners must all drain when their server or
// context shuts down.
func TestMain(m *testing.M) {
	os.Exit(leakcheck.Main(m))
}
