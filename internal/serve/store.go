package serve

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"smthill/internal/experiment"
	"smthill/internal/obs"
	"smthill/internal/simjob"
	"smthill/internal/sweep"
)

// JobState is the lifecycle phase of a daemon job.
type JobState string

const (
	// StateQueued means the job is in the FIFO queue, not yet picked up.
	StateQueued JobState = "queued"
	// StateRunning means a worker is executing the job.
	StateRunning JobState = "running"
	// StateDone means the job finished and its result is available.
	StateDone JobState = "done"
	// StateFailed means the job errored (simulation panic, timeout, bad
	// experiment parameters).
	StateFailed JobState = "failed"
	// StateCanceled means the job was cancelled before completing
	// (server shutdown while it was queued or running).
	StateCanceled JobState = "canceled"
)

// terminal reports whether a state is final.
func (s JobState) terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCanceled
}

// jobKind discriminates the two job families the daemon runs.
type jobKind int

const (
	kindSim jobKind = iota
	kindExperiment
)

// job is one submitted unit of work: a single simulation or a named
// experiment. Mutable fields are guarded by mu; the identity fields
// (id, kind, spec, key, hub, done) are set once at creation and read
// freely.
type job struct {
	id   string
	kind jobKind

	// Sim jobs.
	spec simjob.Spec
	key  string

	// Experiment jobs.
	expName string
	expCfg  experiment.Config
	expOpts experiment.RunOptions

	// hub streams this job's events to SSE subscribers; closed when the
	// job reaches a terminal state.
	hub *hub
	// done is closed on the terminal transition, for callers that wait
	// on completion (the experiments handler, tests).
	done chan struct{}
	// trace is the submit request's span context, captured at admission
	// so the job — which runs after the submit response was written —
	// can continue the same distributed trace. Zero when untraced.
	trace obs.SpanContext

	mu       sync.Mutex
	state    JobState       // guarded by mu
	source   sweep.Source   // guarded by mu; where a sim result came from (run/memo/cache)
	result   *simjob.Result // guarded by mu
	output   string         // guarded by mu; experiment text output
	errMsg   string         // guarded by mu
	created  time.Time      // guarded by mu
	started  time.Time      // guarded by mu
	finished time.Time      // guarded by mu
}

// setRunning transitions queued -> running and announces it on the hub.
func (j *job) setRunning(now time.Time) {
	j.mu.Lock()
	j.state = StateRunning
	j.started = now
	j.mu.Unlock()
	j.publishState()
}

// setSource records where the sim result came from (observer callback).
func (j *job) setSource(src sweep.Source) {
	j.mu.Lock()
	j.source = src
	j.mu.Unlock()
}

// completeSim finishes a sim job with its result.
func (j *job) completeSim(res simjob.Result, now time.Time) {
	j.mu.Lock()
	j.state = StateDone
	j.result = &res
	j.finished = now
	j.mu.Unlock()
	j.finishHub()
}

// completeText finishes an experiment job with its rendered output.
func (j *job) completeText(out string, now time.Time) {
	j.mu.Lock()
	j.state = StateDone
	j.output = out
	j.finished = now
	j.mu.Unlock()
	j.finishHub()
}

// fail finishes the job in a terminal non-success state.
func (j *job) fail(state JobState, msg string, now time.Time) {
	j.mu.Lock()
	j.state = state
	j.errMsg = msg
	j.finished = now
	j.mu.Unlock()
	j.finishHub()
}

// publishState mirrors the current state onto the hub as a "state"
// event, so SSE consumers see lifecycle transitions inline with the
// telemetry stream.
func (j *job) publishState() {
	j.mu.Lock()
	data := fmt.Sprintf(`{"id":%q,"state":%q`, j.id, j.state)
	if j.errMsg != "" {
		data += fmt.Sprintf(`,"error":%q`, j.errMsg)
	}
	data += "}"
	j.mu.Unlock()
	j.hub.publish("state", data)
}

// finishHub announces the terminal state, closes the event stream, and
// releases waiters.
func (j *job) finishHub() {
	j.publishState()
	j.hub.close()
	close(j.done)
}

// terminalAt reports whether the job has reached a terminal state and,
// if so, when it finished.
func (j *job) terminalAt() (bool, time.Time) {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state.terminal(), j.finished
}

// snapshot returns a consistent copy of the mutable fields.
func (j *job) snapshot() (state JobState, source sweep.Source, result *simjob.Result, output, errMsg string, created, started, finished time.Time) {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state, j.source, j.result, j.output, j.errMsg, j.created, j.started, j.finished
}

// store indexes jobs by ID. IDs come from a monotone counter — the
// daemon never needs entropy, and predictable IDs make logs and tests
// readable.
type store struct {
	mu   sync.Mutex
	seq  int             // guarded by mu
	jobs map[string]*job // guarded by mu
}

func newStore() *store {
	return &store{jobs: make(map[string]*job)}
}

// nextID mints a fresh job ID.
func (st *store) nextID() string {
	st.mu.Lock()
	defer st.mu.Unlock()
	st.seq++
	return fmt.Sprintf("j%06d", st.seq)
}

func (st *store) add(j *job) {
	st.mu.Lock()
	st.jobs[j.id] = j
	st.mu.Unlock()
}

func (st *store) get(id string) (*job, bool) {
	st.mu.Lock()
	defer st.mu.Unlock()
	j, ok := st.jobs[id]
	return j, ok
}

// remove forgets a job (used when admission rejects an already-minted
// job so its ID never resolves).
func (st *store) remove(id string) {
	st.mu.Lock()
	delete(st.jobs, id)
	st.mu.Unlock()
}

// count returns the number of stored jobs.
func (st *store) count() int {
	st.mu.Lock()
	defer st.mu.Unlock()
	return len(st.jobs)
}

// evictTerminal bounds the store for a long-running daemon: finished
// jobs older than ttl are dropped, and if more than keep remain the
// oldest-finished go too. Queued and running jobs are never touched.
// Evicting a job releases its retained hub buffer (subscribers already
// attached keep streaming from their own reference; new ones get 404).
// Returns the number evicted.
func (st *store) evictTerminal(now time.Time, ttl time.Duration, keep int) int {
	st.mu.Lock()
	defer st.mu.Unlock()
	type fin struct {
		id string
		at time.Time
	}
	var finished []fin
	evicted := 0
	for id, j := range st.jobs {
		done, at := j.terminalAt()
		if !done {
			continue
		}
		if ttl > 0 && now.Sub(at) > ttl {
			delete(st.jobs, id)
			evicted++
			continue
		}
		finished = append(finished, fin{id: id, at: at})
	}
	if keep > 0 && len(finished) > keep {
		sort.Slice(finished, func(i, k int) bool {
			if !finished[i].at.Equal(finished[k].at) {
				return finished[i].at.Before(finished[k].at)
			}
			return finished[i].id < finished[k].id
		})
		for _, f := range finished[:len(finished)-keep] {
			delete(st.jobs, f.id)
			evicted++
		}
	}
	return evicted
}
