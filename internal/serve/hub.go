package serve

import (
	"context"
	"sync"
)

// hubEvent is one server-sent event: a monotone ID (the SSE `id:`
// field, so clients can resume with Last-Event-ID), an event name, and
// a single-line JSON payload.
type hubEvent struct {
	id   int
	name string
	data string
}

// hub is a per-job event channel with replay: it buffers every
// published event (up to max, oldest dropped first) so a subscriber
// attaching mid-run — or after the job finished — receives the full
// retained history before live events. Publish never blocks on slow
// subscribers: consumers pull at their own pace via next.
type hub struct {
	mu      sync.Mutex
	max     int             // immutable after newHub
	base    int             // guarded by mu; id of events[0]
	events  []hubEvent      // guarded by mu
	waiters []chan struct{} // guarded by mu
	closed  bool            // guarded by mu
}

// newHub returns a hub retaining at most max events (<=0 selects a
// default sized for a full laptop-scale run's epoch stream).
func newHub(max int) *hub {
	if max <= 0 {
		max = 8192
	}
	return &hub{max: max}
}

// publish appends an event and wakes blocked subscribers. Publishing to
// a closed hub is a no-op (late telemetry after a terminal state).
func (h *hub) publish(name, data string) {
	h.mu.Lock()
	if h.closed {
		h.mu.Unlock()
		return
	}
	h.events = append(h.events, hubEvent{id: h.base + len(h.events), name: name, data: data})
	if len(h.events) > h.max {
		drop := len(h.events) - h.max
		h.events = append(h.events[:0], h.events[drop:]...)
		h.base += drop
	}
	h.wakeLocked()
	h.mu.Unlock()
}

// close marks the stream complete and releases blocked subscribers.
func (h *hub) close() {
	h.mu.Lock()
	h.closed = true
	h.wakeLocked()
	h.mu.Unlock()
}

func (h *hub) wakeLocked() {
	for _, w := range h.waiters {
		close(w)
	}
	h.waiters = nil
}

// next returns the first retained event with id >= from. It blocks
// until one is published, the hub closes (ok=false: stream complete),
// or ctx is done (err). If the requested position was trimmed from the
// replay buffer, next skips forward to the oldest retained event.
func (h *hub) next(ctx context.Context, from int) (ev hubEvent, ok bool, err error) {
	for {
		h.mu.Lock()
		if from < h.base {
			from = h.base
		}
		if from < h.base+len(h.events) {
			ev := h.events[from-h.base]
			h.mu.Unlock()
			return ev, true, nil
		}
		if h.closed {
			h.mu.Unlock()
			return hubEvent{}, false, nil
		}
		w := make(chan struct{})
		h.waiters = append(h.waiters, w)
		h.mu.Unlock()
		select {
		case <-w:
		case <-ctx.Done():
			return hubEvent{}, false, ctx.Err()
		}
	}
}

// len returns the number of retained events.
func (h *hub) len() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return len(h.events)
}
