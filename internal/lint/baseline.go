package lint

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
)

// A baseline grandfathers known findings so new rules can land strict
// without blocking on a repo-wide cleanup: `smtlint -write-baseline`
// snapshots the current findings, the committed file suppresses exactly
// those, and anything new still fails the build. Entries match on
// (file, rule, message) — deliberately not on line, so edits elsewhere
// in a file do not churn the baseline — and matching is a multiset:
// three identical findings baseline three, a fourth fails.

// Baseline is a committed set of grandfathered findings.
type Baseline struct {
	// Version is the format version (currently 1).
	Version int `json:"version"`
	// Findings are the grandfathered entries, sorted.
	Findings []BaselineEntry `json:"findings"`
}

// BaselineEntry matches findings by file, rule, and message.
type BaselineEntry struct {
	File string `json:"file"`
	Rule string `json:"rule"`
	Msg  string `json:"msg"`
}

func baselineKey(file, rule, msg string) string {
	return file + "\x00" + rule + "\x00" + msg
}

// LoadBaseline reads a baseline file; a missing file is an empty
// baseline, any other error is fatal (a corrupt baseline silently
// suppressing nothing — or everything — must not pass).
func LoadBaseline(path string) (*Baseline, error) {
	b, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return &Baseline{Version: 1}, nil
	}
	if err != nil {
		return nil, fmt.Errorf("lint: %w", err)
	}
	var base Baseline
	if err := json.Unmarshal(b, &base); err != nil {
		return nil, fmt.Errorf("lint: baseline %s: %w", path, err)
	}
	if base.Version != 1 {
		return nil, fmt.Errorf("lint: baseline %s: unsupported version %d", path, base.Version)
	}
	return &base, nil
}

// Apply splits findings into the survivors and the baselined, consuming
// baseline entries multiset-style.
func (b *Baseline) Apply(findings []Finding) (kept, suppressed []Finding) {
	budget := map[string]int{}
	for _, e := range b.Findings {
		budget[baselineKey(e.File, e.Rule, e.Msg)]++
	}
	for _, f := range findings {
		k := baselineKey(f.Pos.Filename, f.Rule, f.Msg)
		if budget[k] > 0 {
			budget[k]--
			suppressed = append(suppressed, f)
			continue
		}
		kept = append(kept, f)
	}
	return kept, suppressed
}

// WriteBaseline snapshots findings (paths must already be root-relative)
// to path in sorted, stable form.
func WriteBaseline(path string, findings []Finding) error {
	base := Baseline{Version: 1}
	for _, f := range findings {
		base.Findings = append(base.Findings, BaselineEntry{File: f.Pos.Filename, Rule: f.Rule, Msg: f.Msg})
	}
	sort.Slice(base.Findings, func(i, j int) bool {
		a, c := base.Findings[i], base.Findings[j]
		if a.File != c.File {
			return a.File < c.File
		}
		if a.Rule != c.Rule {
			return a.Rule < c.Rule
		}
		return a.Msg < c.Msg
	})
	b, err := json.MarshalIndent(base, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}
