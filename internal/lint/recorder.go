package lint

import (
	"fmt"
	"go/ast"
	"go/types"
)

// RecorderGuardRule enforces the telemetry overhead contract inside the
// pipeline hot stages: a telemetry.Recorder (or telemetry.Sink) hanging
// off the machine is nil whenever tracing is off, and every dereference
// must therefore be dominated by a nil check. A missed guard is a
// guaranteed panic the moment someone runs without -trace — but only on
// the specific path that dereferences, so it survives ordinary testing.
//
// The analysis is lexical, not a full dataflow: an access to expression E
// is considered guarded when it appears
//
//   - inside the then-branch of "if E != nil",
//   - inside the else-branch of "if E == nil",
//   - after "if E == nil { return/panic/continue/break }" in the same
//     statement list,
//   - on the right of "E != nil && ..." in one condition, or
//   - through an alias "v := E" that is itself guarded by any of the
//     above.
//
// Guarded-ness is tracked by the expression's printed form ("m.rec"),
// which is exactly as precise as the hot-loop style this repo uses. The
// escape hatch for exotic control flow is //smtlint:ignore.
type RecorderGuardRule struct {
	// Packages selects where the rule applies (matchPackage semantics).
	Packages []string
	// Types lists the guarded pointer/interface types as
	// "import/path.TypeName".
	Types []string
}

// NewRecorderGuardRule returns the rule configured for this repository:
// inside internal/pipeline, *telemetry.Recorder and telemetry.Sink
// values must be nil-checked before use.
func NewRecorderGuardRule() *RecorderGuardRule {
	return &RecorderGuardRule{
		Packages: []string{"internal/pipeline"},
		Types: []string{
			"smthill/internal/telemetry.Recorder",
			"smthill/internal/telemetry.Sink",
		},
	}
}

// Name implements Rule.
func (r *RecorderGuardRule) Name() string { return "recorder-guard" }

// Doc implements Rule.
func (r *RecorderGuardRule) Doc() string {
	return "telemetry recorder/sink dereferences in pipeline code must be behind a nil check"
}

// Check implements Rule.
func (r *RecorderGuardRule) Check(p *Package) []Finding {
	if !matchPackage(p.Path, r.Packages) {
		return nil
	}
	var out []Finding
	for _, fd := range funcDecls(p) {
		w := &guardWalker{rule: r, pkg: p}
		// A receiver or parameter that is itself one of the guarded types
		// arrives with its nil-ness already decided by the caller's guard;
		// treat it as guarded so helper methods on the recorder types (and
		// helpers taking a checked recorder) don't re-check.
		for _, field := range funcParams(fd) {
			for _, name := range field.Names {
				if obj := p.Info.Defs[name]; obj != nil && r.matchesType(obj.Type()) {
					w.addGuard(name.Name)
				}
			}
		}
		w.stmtList(fd.Body.List, w.snapshot())
		out = append(out, w.findings...)
	}
	return out
}

// matchesType reports whether t (after stripping one pointer level) is
// one of the rule's guarded named types.
func (r *RecorderGuardRule) matchesType(t types.Type) bool {
	if pt, ok := t.(*types.Pointer); ok {
		t = pt.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj == nil || obj.Pkg() == nil {
		return false
	}
	full := obj.Pkg().Path() + "." + obj.Name()
	for _, want := range r.Types {
		if full == want {
			return true
		}
	}
	return false
}

// funcParams yields the receiver and parameter fields of a function.
func funcParams(fd *ast.FuncDecl) []*ast.Field {
	var out []*ast.Field
	if fd.Recv != nil {
		out = append(out, fd.Recv.List...)
	}
	if fd.Type.Params != nil {
		out = append(out, fd.Type.Params.List...)
	}
	return out
}

// guardWalker walks one function body tracking which recorder-typed
// expressions are known non-nil at each point.
type guardWalker struct {
	rule     *RecorderGuardRule
	pkg      *Package
	guards   map[string]bool
	findings []Finding
}

func (w *guardWalker) addGuard(expr string) {
	if w.guards == nil {
		w.guards = map[string]bool{}
	}
	w.guards[expr] = true
}

// snapshot returns a copy of the current guard set, for scoped branches.
func (w *guardWalker) snapshot() map[string]bool {
	c := make(map[string]bool, len(w.guards))
	for k := range w.guards {
		c[k] = true
	}
	return c
}

func (w *guardWalker) restore(s map[string]bool) { w.guards = s }

// stmtList walks statements in order. base is the guard set on entry;
// guards established by early-return nil checks accumulate for the
// remainder of the list.
func (w *guardWalker) stmtList(list []ast.Stmt, base map[string]bool) {
	w.restore(base)
	for _, s := range list {
		w.stmt(s)
	}
}

func (w *guardWalker) stmt(s ast.Stmt) {
	switch s := s.(type) {
	case *ast.IfStmt:
		if s.Init != nil {
			w.stmt(s.Init)
		}
		w.ifStmt(s)
	case *ast.AssignStmt:
		w.assign(s)
	case *ast.BlockStmt:
		saved := w.snapshot()
		w.stmtList(s.List, w.snapshot())
		w.restore(saved)
	case *ast.ForStmt:
		if s.Init != nil {
			w.stmt(s.Init)
		}
		if s.Cond != nil {
			w.expr(s.Cond)
		}
		saved := w.snapshot()
		w.stmtList(s.Body.List, w.snapshot())
		w.restore(saved)
		if s.Post != nil {
			w.stmt(s.Post)
		}
	case *ast.RangeStmt:
		w.expr(s.X)
		saved := w.snapshot()
		w.stmtList(s.Body.List, w.snapshot())
		w.restore(saved)
	case *ast.SwitchStmt:
		if s.Init != nil {
			w.stmt(s.Init)
		}
		if s.Tag != nil {
			w.expr(s.Tag)
		}
		w.caseBodies(s.Body)
	case *ast.TypeSwitchStmt:
		w.caseBodies(s.Body)
	case *ast.SelectStmt:
		w.caseBodies(s.Body)
	default:
		// Every other statement: scan contained expressions as-is.
		ast.Inspect(s, func(n ast.Node) bool {
			if e, ok := n.(ast.Expr); ok {
				w.expr(e)
				return false
			}
			return true
		})
	}
}

// caseBodies walks each case clause with an isolated guard scope.
func (w *guardWalker) caseBodies(body *ast.BlockStmt) {
	saved := w.snapshot()
	for _, c := range body.List {
		switch c := c.(type) {
		case *ast.CaseClause:
			for _, e := range c.List {
				w.expr(e)
			}
			w.stmtList(c.Body, w.snapshot())
		case *ast.CommClause:
			if c.Comm != nil {
				w.stmt(c.Comm)
			}
			w.stmtList(c.Body, w.snapshot())
		}
		w.restore(saved)
	}
}

// ifStmt handles the guard-establishing forms.
func (w *guardWalker) ifStmt(s *ast.IfStmt) {
	outer := w.snapshot()
	w.cond(s.Cond)

	if e, ok := w.nilCheck(s.Cond, true); ok { // if E != nil { guarded }
		w.addGuard(e)
		w.stmtList(s.Body.List, w.snapshot())
		w.restore(outer)
		if s.Else != nil {
			w.elseBranch(s.Else, outer)
		}
		return
	}
	if e, ok := w.nilCheck(s.Cond, false); ok { // if E == nil { ... }
		w.stmtList(s.Body.List, w.snapshot())
		w.restore(outer)
		if s.Else != nil {
			w.addGuard(e)
			w.elseBranch(s.Else, w.snapshot())
			w.restore(outer)
		}
		// A terminating then-branch guards the rest of the list.
		if terminates(s.Body) {
			w.addGuard(e)
		}
		return
	}
	w.stmtList(s.Body.List, w.snapshot())
	w.restore(outer)
	if s.Else != nil {
		w.elseBranch(s.Else, outer)
	}
}

func (w *guardWalker) elseBranch(e ast.Stmt, base map[string]bool) {
	saved := w.snapshot()
	w.restore(base)
	switch e := e.(type) {
	case *ast.BlockStmt:
		w.stmtList(e.List, w.snapshot())
	default:
		w.stmt(e)
	}
	w.restore(saved)
}

// nilCheck matches "E != nil" (wantNonNil) or "E == nil" where E has a
// guarded type, returning E's printed form.
func (w *guardWalker) nilCheck(cond ast.Expr, wantNonNil bool) (string, bool) {
	be, ok := cond.(*ast.BinaryExpr)
	if !ok {
		return "", false
	}
	op := be.Op.String()
	if (wantNonNil && op != "!=") || (!wantNonNil && op != "==") {
		return "", false
	}
	var e ast.Expr
	switch {
	case isNil(w.pkg, be.Y):
		e = be.X
	case isNil(w.pkg, be.X):
		e = be.Y
	default:
		return "", false
	}
	tv, ok := w.pkg.Info.Types[e]
	if !ok || tv.Type == nil || !w.rule.matchesType(tv.Type) {
		return "", false
	}
	return exprString(e), true
}

// cond walks a condition expression, extending guards across && so that
// "E != nil && E.X ..." passes.
func (w *guardWalker) cond(e ast.Expr) {
	be, ok := e.(*ast.BinaryExpr)
	if ok && be.Op.String() == "&&" {
		w.cond(be.X)
		saved := w.snapshot()
		if g, isGuard := w.nilCheck(be.X, true); isGuard {
			w.addGuard(g)
		}
		w.cond(be.Y)
		w.restore(saved)
		return
	}
	w.expr(e)
}

// assign tracks aliases: "v := E" makes v share E's guard state; any
// other assignment to v invalidates it. The RHS itself is scanned.
func (w *guardWalker) assign(s *ast.AssignStmt) {
	for _, rhs := range s.Rhs {
		w.expr(rhs)
	}
	if len(s.Lhs) != len(s.Rhs) {
		return
	}
	for i, lhs := range s.Lhs {
		id, ok := lhs.(*ast.Ident)
		if !ok || id.Name == "_" {
			continue
		}
		rhsStr := exprString(s.Rhs[i])
		if w.guards[rhsStr] {
			w.addGuard(id.Name)
		} else {
			delete(w.guards, id.Name)
		}
	}
}

// expr scans an expression for unguarded dereferences of guarded types.
// Embedded && chains (in return values, assignments, nested conditions)
// get the same guard extension as if-conditions.
func (w *guardWalker) expr(e ast.Expr) {
	if e == nil {
		return
	}
	if be, ok := e.(*ast.BinaryExpr); ok && be.Op.String() == "&&" {
		w.cond(be)
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		if be, ok := n.(*ast.BinaryExpr); ok && be.Op.String() == "&&" {
			w.cond(be)
			return false
		}
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		// Package selectors (telemetry.NewRecorder) are not dereferences.
		if id, ok := sel.X.(*ast.Ident); ok {
			if _, isPkg := w.pkg.Info.Uses[id].(*types.PkgName); isPkg {
				return true
			}
		}
		tv, ok := w.pkg.Info.Types[sel.X]
		if !ok || tv.Type == nil || !w.rule.matchesType(tv.Type) {
			return true
		}
		if x := exprString(sel.X); !w.guards[x] {
			w.findings = append(w.findings, Finding{
				Pos:  w.pkg.Fset.Position(sel.Pos()),
				Rule: w.rule.Name(),
				Msg: fmt.Sprintf("%s.%s dereferences a telemetry recorder/sink without a dominating %s != nil check (tracing-off runs carry nil here)",
					x, sel.Sel.Name, x),
			})
		}
		return true
	})
}

// terminates reports whether a block always transfers control out
// (return, panic, continue, break, goto).
func terminates(b *ast.BlockStmt) bool {
	if len(b.List) == 0 {
		return false
	}
	switch last := b.List[len(b.List)-1].(type) {
	case *ast.ReturnStmt, *ast.BranchStmt:
		return true
	case *ast.ExprStmt:
		if call, ok := last.X.(*ast.CallExpr); ok {
			if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "panic" {
				return true
			}
		}
	}
	return false
}

// isNil reports whether e is the untyped nil.
func isNil(p *Package, e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	if !ok {
		return false
	}
	_, isNilObj := p.Info.Uses[id].(*types.Nil)
	return isNilObj || id.Name == "nil"
}

// exprString renders a simple expression (identifiers and selector
// chains) to its source form for guard matching; anything more complex
// renders uniquely by position so it never matches a guard.
func exprString(e ast.Expr) string {
	switch e := e.(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		return exprString(e.X) + "." + e.Sel.Name
	case *ast.ParenExpr:
		return exprString(e.X)
	default:
		return fmt.Sprintf("<expr@%d>", e.Pos())
	}
}
