package lint

import (
	"fmt"
	"go/ast"
	"go/types"
	"regexp"
)

// LockGuardRule enforces annotated mutex discipline: a struct field whose
// declaration carries a "guarded by <mu>" comment may only be read or
// written while <mu> is held on the same receiver expression. The serve
// job store, the fabric coordinator's membership map, and the obs
// registry all share state between HTTP handlers, worker goroutines, and
// heartbeat loops; the race detector only catches the interleavings a
// test happens to schedule, while the annotation makes the locking
// contract part of the type declaration and this rule makes violating it
// a build failure.
//
//	type store struct {
//	    mu   sync.Mutex
//	    jobs map[string]*job // guarded by mu
//	}
//
// Dominance is lexical (see locks.go): Lock/RLock establish the guard,
// Unlock drops it, deferred Unlock holds it to function end, and
// conditional branches do not leak acquisitions. Reads require at least
// RLock when the guard is a sync.RWMutex; writes always require Lock.
//
// Three conventions mark a function as entered with the lock held:
// a "Callers hold <mu>" doc sentence, a method name ending in "Locked",
// or an explicit "//smtlint:locked <mu>" doc directive. Values freshly
// constructed from a composite literal in the same function are exempt
// until they escape (constructors initialize fields before the value is
// shared, and no lock can be required yet).
type LockGuardRule struct {
	// Packages selects where the rule applies (matchPackage semantics;
	// empty selects every package, since annotations opt structs in).
	Packages []string
}

// NewLockGuardRule returns the project configuration: every package —
// the annotations themselves scope the rule.
func NewLockGuardRule() *LockGuardRule { return &LockGuardRule{} }

// Name implements Rule.
func (r *LockGuardRule) Name() string { return "lockguard" }

// Doc implements Rule.
func (r *LockGuardRule) Doc() string {
	return `fields annotated "guarded by <mu>" may only be accessed with the mutex held`
}

// guardedByRe extracts the mutex name from a field annotation.
var guardedByRe = regexp.MustCompile(`guarded by ([A-Za-z_][A-Za-z0-9_]*)`)

// guardInfo records one annotated field's contract.
type guardInfo struct {
	mu string // guarding mutex field name on the same struct
	rw bool   // guard is a sync.RWMutex (RLock suffices for reads)
}

// Check implements Rule.
func (r *LockGuardRule) Check(p *Package) []Finding {
	if !matchPackage(p.Path, r.Packages) {
		return nil
	}
	guards, out := collectGuards(p)
	if len(guards) == 0 {
		return out
	}
	for _, fd := range funcDecls(p) {
		w := newLockTracker(p)
		w.onAccess = func(w *lockTracker, sel *ast.SelectorExpr, write bool) {
			selInfo, ok := p.Info.Selections[sel]
			if !ok || selInfo.Kind() != types.FieldVal {
				return
			}
			f, ok := selInfo.Obj().(*types.Var)
			if !ok {
				return
			}
			g, ok := guards[f]
			if !ok {
				return
			}
			if id, isIdent := sel.X.(*ast.Ident); isIdent && w.fresh[id.Name] {
				return
			}
			need := exprString(sel.X) + "." + g.mu
			l, held := w.held[need]
			if held && (l.mode == 'w' || !write) {
				return
			}
			verb := "read"
			if write {
				verb = "write"
			}
			want := need + ".Lock"
			if g.rw && !write {
				want = need + ".RLock"
			} else if held && l.mode == 'r' && write {
				verb = "write (under RLock only)"
			}
			out = append(out, Finding{
				Pos:  p.Fset.Position(sel.Sel.Pos()),
				Rule: r.Name(),
				Msg: fmt.Sprintf("%s of %s requires holding %s (field is guarded by %s); acquire the lock or justify with //smtlint:ignore lockguard <reason>",
					verb, exprString(sel), want, g.mu),
			})
		}
		w.walkFunc(fd.Body, entryHeldLocks(p, fd))
	}
	return out
}

// collectGuards gathers the package's "guarded by" field annotations,
// validating each names a mutex field of the same struct. Malformed
// annotations come back as findings — a guard naming a missing mutex
// would silently enforce nothing.
func collectGuards(p *Package) (map[*types.Var]guardInfo, []Finding) {
	guards := map[*types.Var]guardInfo{}
	var out []Finding
	for _, file := range p.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			ts, ok := n.(*ast.TypeSpec)
			if !ok {
				return true
			}
			st, ok := ts.Type.(*ast.StructType)
			if !ok {
				return true
			}
			// Index the struct's mutex fields by name first.
			mutexes := map[string]bool{} // name -> is RWMutex
			rwMutexes := map[string]bool{}
			for _, fl := range st.Fields.List {
				for _, name := range fl.Names {
					if v, ok := p.Info.Defs[name].(*types.Var); ok {
						if isMutexType(v.Type()) {
							mutexes[name.Name] = true
							rwMutexes[name.Name] = isRWMutexType(v.Type())
						}
					}
				}
			}
			for _, fl := range st.Fields.List {
				ann := ""
				if fl.Doc != nil {
					ann += fl.Doc.Text() + "\n"
				}
				if fl.Comment != nil {
					ann += fl.Comment.Text()
				}
				m := guardedByRe.FindStringSubmatch(ann)
				if m == nil {
					continue
				}
				mu := m[1]
				if !mutexes[mu] {
					out = append(out, Finding{
						Pos:  p.Fset.Position(fl.Pos()),
						Rule: "lockguard",
						Msg:  fmt.Sprintf("field declares 'guarded by %s' but %s has no sync.Mutex/RWMutex field named %s", mu, ts.Name.Name, mu),
					})
					continue
				}
				for _, name := range fl.Names {
					if v, ok := p.Info.Defs[name].(*types.Var); ok {
						guards[v] = guardInfo{mu: mu, rw: rwMutexes[mu]}
					}
				}
			}
			return true
		})
	}
	return guards, out
}
