// Package ctxpropbad exercises every context-drop shape on paths
// reachable from a ctx-carrying entry point.
package ctxpropbad

import (
	"context"
	"net/http"
	"time"
)

// Handle is a root: it receives the caller's context.
func Handle(ctx context.Context, c *http.Client) error {
	wait()
	return fetch(c)
}

func wait() {
	time.Sleep(time.Millisecond)
}

func fetch(c *http.Client) error {
	ctx := context.Background()
	_ = ctx
	req, err := http.NewRequest("GET", "http://localhost/x", nil)
	if err != nil {
		return err
	}
	resp, err := c.Do(req)
	if err != nil {
		return err
	}
	return resp.Body.Close()
}

// ServeIt is a root through its *http.Request parameter.
func ServeIt(w http.ResponseWriter, r *http.Request, c *http.Client) {
	resp, err := c.Get("http://localhost/y")
	if err != nil {
		return
	}
	resp.Body.Close()
}

// Boot owns a fresh context: no ctx parameter, unreachable from roots,
// so its Background() is legitimate and must stay silent.
func Boot() context.Context {
	return context.Background()
}
