// Package maporderbad lets map-iteration order escape three ways:
// printing, appending to an outer slice that is never sorted, and
// sending on a channel.
package maporderbad

import "fmt"

// Print emits lines in randomised order.
func Print(m map[string]int) {
	for k, v := range m {
		fmt.Printf("%s=%d\n", k, v)
	}
}

// Collect returns keys in randomised order (no sort follows).
func Collect(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	return keys
}

// Send streams values in randomised order.
func Send(m map[string]int, ch chan<- int) {
	for _, v := range m {
		ch <- v
	}
}
