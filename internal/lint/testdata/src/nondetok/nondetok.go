// Package nondetok is the fixed form of nondetbad: deterministic seeds
// via internal/rng, and time used only as a unit type.
package nondetok

import (
	"time"

	"smthill/internal/rng"
)

// Seed derives randomness from a fixed, replayable source.
func Seed(seed uint64) uint64 {
	r := rng.New(seed)
	return r.Uint64()
}

// Budget is pure arithmetic on duration values; no clock is read.
func Budget(perCycle time.Duration, cycles int64) time.Duration {
	return perCycle * time.Duration(cycles)
}
