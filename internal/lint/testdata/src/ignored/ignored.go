// Package ignored carries suppressed violations, exercising both the
// same-line and line-above directive placements.
package ignored

import "time"

// Stamp is a deliberate wall-clock read, suppressed on the same line.
func Stamp() int64 {
	return time.Now().UnixNano() //smtlint:ignore nondeterminism fixture: suppression test
}

// Stamp2 is suppressed from the line above.
func Stamp2() int64 {
	//smtlint:ignore nondeterminism fixture: suppression test
	return time.Now().UnixNano()
}

// Stamp3 is NOT suppressed: the directive names a different rule.
func Stamp3() int64 {
	//smtlint:ignore float-compare fixture: wrong rule on purpose
	return time.Now().UnixNano()
}
