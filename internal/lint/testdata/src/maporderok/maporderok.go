// Package maporderok shows the sanctioned forms: sorted-keys collection
// before any output, and order-insensitive aggregation.
package maporderok

import (
	"fmt"
	"sort"
)

// Print sorts the keys before emitting anything.
func Print(m map[string]int) {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Printf("%s=%d\n", k, m[k])
	}
}

// Filtered collects conditionally — still fine, the sort below erases
// the map's order.
func Filtered(m map[string]int) []string {
	var keys []string
	for k := range m {
		if k != "ALL" {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	return keys
}

// Sum accumulates commutatively; order cannot escape.
func Sum(m map[string]int) int {
	total := 0
	for _, v := range m {
		total += v
	}
	return total
}

// Invert aggregates map-to-map; both sides are unordered.
func Invert(m map[string]int) map[int]string {
	out := make(map[int]string, len(m))
	for k, v := range m {
		out[v] = k
	}
	return out
}
