// Package recorderok shows every guarded form the rule accepts.
package recorderok

// Recorder stands in for telemetry.Recorder; the test configures the
// rule's Types to point here.
type Recorder struct {
	Cycles  int
	Threads []int
}

// Machine carries an optional recorder, nil when tracing is off.
type Machine struct {
	rec *Recorder
}

// Tick uses the then-branch of a != nil check.
func (m *Machine) Tick() {
	if m.rec != nil {
		m.rec.Cycles++
	}
}

// Sample uses an early return on == nil, then a checked alias.
func (m *Machine) Sample(th int) {
	rec := m.rec
	if rec == nil {
		return
	}
	rec.Threads[th]++
}

// Busy guards across && in a single condition.
func (m *Machine) Busy() bool {
	return m.rec != nil && m.rec.Cycles > 0
}

// Reset uses the else-branch of a == nil check.
func (m *Machine) Reset() {
	if m.rec == nil {
		return
	} else {
		m.rec.Cycles = 0
	}
}

// Flush receives an already-guarded recorder as a parameter.
func Flush(rec *Recorder) {
	rec.Cycles = 0
}

// Totals is a method on the recorder itself; the receiver arrives
// checked by the caller.
func (r *Recorder) Totals() int {
	return r.Cycles
}
