// Package ctxpropok holds the fixed forms: the context threads through
// every hop of the request path.
package ctxpropok

import (
	"context"
	"net/http"
	"time"
)

// Handle is a root: it receives and propagates the caller's context.
func Handle(ctx context.Context, c *http.Client) error {
	if err := wait(ctx); err != nil {
		return err
	}
	return fetch(ctx, c)
}

func wait(ctx context.Context) error {
	select {
	case <-time.After(time.Millisecond):
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

func fetch(ctx context.Context, c *http.Client) error {
	req, err := http.NewRequestWithContext(ctx, "GET", "http://localhost/x", nil)
	if err != nil {
		return err
	}
	resp, err := c.Do(req)
	if err != nil {
		return err
	}
	return resp.Body.Close()
}

// Boot owns a fresh context: no ctx parameter means no caller context to
// drop.
func Boot() context.Context {
	return context.Background()
}
