// Package hotallocok is the fixed form: hot-path allocations carry
// ignore justifications, cold and unreachable paths allocate freely.
package hotallocok

// Machine mimics the simulator's hot-loop owner.
type Machine struct{ buf []int }

// Cycle is the hot-loop root the rule walks from.
func (m *Machine) Cycle() {
	m.step()
	m.record()
}

func (m *Machine) step() {
	//smtlint:ignore hotalloc bounded high-water growth, recycled via buf[:0]
	m.buf = append(m.buf, 1)
}

// record is configured cold in the test (the telemetry path is outside
// the steady-state contract), so its allocation is not reported.
func (m *Machine) record() {
	m.buf = append(m.buf, 2)
}

// Batch mimics the lock-step batch owner — the second hot-loop root. It
// reuses the machine's already-justified hot path, so the shared
// subgraph must not be re-reported.
type Batch struct{ m Machine }

// CycleAll is the batched hot-loop root.
func (b *Batch) CycleAll() { b.m.step() }

// reset is unreachable from Cycle.
func (m *Machine) reset() {
	m.buf = make([]int, 0, 8)
}

// use keeps reset referenced without putting it on the hot path.
var use = (*Machine).reset
