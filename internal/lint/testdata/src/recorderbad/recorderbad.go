// Package recorderbad dereferences a nil-when-off recorder without a
// dominating nil check, in both direct and aliased form.
package recorderbad

// Recorder stands in for telemetry.Recorder; the test configures the
// rule's Types to point here.
type Recorder struct {
	Cycles  int
	Threads []int
}

// Machine carries an optional recorder, nil when tracing is off.
type Machine struct {
	rec *Recorder
}

// Tick dereferences m.rec with no guard at all.
func (m *Machine) Tick() {
	m.rec.Cycles++
}

// Sample aliases the recorder but never checks the alias.
func (m *Machine) Sample(th int) {
	rec := m.rec
	rec.Threads[th]++
}

// Wrong guards one expression but dereferences another.
func (m *Machine) Wrong(other *Machine) {
	if m.rec != nil {
		other.rec.Cycles++
	}
}
