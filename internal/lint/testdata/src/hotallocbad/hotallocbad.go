// Package hotallocbad exercises the hotalloc rule: allocation builtins
// reachable from the hot-loop root without a justification directive.
package hotallocbad

// Machine mimics the simulator's hot-loop owner.
type Machine struct {
	buf  []int
	ring [][]int
}

// Cycle is the hot-loop root the rule walks from.
func (m *Machine) Cycle() {
	m.step()
	m.helper()
}

func (m *Machine) step() {
	m.buf = append(m.buf, 1) // flagged: direct callee of Cycle
}

func (m *Machine) helper() { m.grow() }

func (m *Machine) grow() {
	m.ring = append(m.ring, make([]int, 4)) // flagged twice: append and make
}

// Batch mimics the lock-step batch owner — the second hot-loop root.
type Batch struct{ ms []*Machine }

// CycleAll is the batched hot-loop root.
func (b *Batch) CycleAll() { b.gather() }

func (b *Batch) gather() {
	b.ms = append(b.ms, nil) // flagged: reachable only from the batch root
}

// cold is never called from Cycle, so its allocation is not reported.
func (m *Machine) cold() {
	m.buf = append(m.buf, 2)
}

// use keeps cold referenced without putting it on the hot path.
var use = (*Machine).cold
