// Package goleakok holds the fixed forms: every spawned loop has a
// termination path.
package goleakok

import "context"

// Start spawns goroutines whose lifetimes are tied to ctx or channel
// closure.
func Start(ctx context.Context, ch chan int, tick func()) {
	go func() {
		for {
			select {
			case <-ctx.Done():
				return
			case v := <-ch:
				_ = v
				tick()
			}
		}
	}()
	go func() {
		for range ch {
			tick()
		}
	}()
	go func() {
		for i := 0; i < 3; i++ {
			tick()
		}
	}()
	go drain(ch, tick)
}

func drain(ch chan int, tick func()) {
	for {
		_, ok := <-ch
		if !ok {
			return
		}
		tick()
	}
}

// pump loops forever but is never spawned with go: callers own the
// blocking decision.
func pump(tick func()) {
	for {
		tick()
	}
}

var _ = pump
