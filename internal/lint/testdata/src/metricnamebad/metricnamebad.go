// Package metricnamebad registers metrics with invalid Prometheus names,
// bad label charsets, and a colliding duplicate registration.
package metricnamebad

// Registry stands in for obs.Registry; the test configures the rule's
// RegistryTypes to point here.
type Registry struct{}

func (r *Registry) Counter(name, help string) *Counter                  { return nil }
func (r *Registry) CounterVec(name, help string, labels ...string) *Vec { return nil }
func (r *Registry) Gauge(name, help string) *Counter                    { return nil }
func (r *Registry) GaugeVec(name, help string, labels ...string) *Vec   { return nil }
func (r *Registry) GaugeFunc(name, help string, fn func() float64)      {}
func (r *Registry) Hist(name, help string) *Counter                     { return nil }
func (r *Registry) HistVec(name, help string, labels ...string) *Vec    { return nil }
func (r *Registry) NotARegistration(name string) *Counter               { return nil }

// Counter and Vec are opaque stand-ins for the metric handles.
type Counter struct{}
type Vec struct{}

func register(reg *Registry) {
	reg.Counter("jobs-submitted", "dash is not in the metric charset")
	reg.Gauge("9queue_depth", "leading digit")
	reg.CounterVec("http_requests_total", "ok name, bad label", "route", "status-code")
	reg.Counter("dup_total", "first registration is fine")
	reg.Counter("dup_total", "second registration collides")
	reg.HistVec("latency ms", "space in name", "route")
	// Non-literal names are outside the rule's reach: no finding.
	name := "computed_total"
	reg.Counter(name, "runtime-validated only")
	// Non-registration methods are ignored even with a bad literal.
	reg.NotARegistration("not a metric!")
}
