// Package floatbad compares floating-point values with exact equality.
package floatbad

// Same compares two IPC-like scores exactly.
func Same(a, b float64) bool {
	return a == b
}

// Changed mixes arithmetic into an exact inequality.
func Changed(prev, next float64) bool {
	return next/prev != 1.0
}
