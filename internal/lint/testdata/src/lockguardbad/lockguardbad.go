// Package lockguardbad exercises every lockguard violation shape.
package lockguardbad

import "sync"

// Store is a shared table with annotated guards.
type Store struct {
	mu sync.Mutex
	rw sync.RWMutex

	jobs map[string]int // guarded by mu
	hits int            // guarded by rw
	oops int            // guarded by nosuch
}

func (s *Store) Get(k string) int {
	return s.jobs[k] // read with no lock at all
}

func (s *Store) Put(k string, v int) {
	s.mu.Lock()
	s.mu.Unlock()
	s.jobs[k] = v // write after the unlock
}

func (s *Store) Bump() {
	s.rw.RLock()
	defer s.rw.RUnlock()
	s.hits++ // write under RLock only
}

func (s *Store) MaybeGuarded(cond bool, k string) int {
	if cond {
		s.mu.Lock()
		defer s.mu.Unlock()
	}
	return s.jobs[k] // branch-only lock does not dominate
}

func (s *Store) WrongLock(k string, v int) {
	s.rw.Lock()
	defer s.rw.Unlock()
	s.jobs[k] = v // holds rw, but jobs is guarded by mu
}
