// Package lockguardok holds the fixed forms: every guarded access is
// dominated by its lock or covered by an entry-held convention.
package lockguardok

import "sync"

// Store is a shared table with annotated guards.
type Store struct {
	mu sync.Mutex
	rw sync.RWMutex

	jobs map[string]int // guarded by mu
	hits int            // guarded by rw
}

// NewStore builds a store; the fresh local is exempt until it escapes.
func NewStore() *Store {
	s := &Store{}
	s.jobs = map[string]int{}
	return s
}

func (s *Store) Get(k string) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.jobs[k]
}

func (s *Store) Put(k string, v int) {
	s.mu.Lock()
	s.jobs[k] = v
	s.mu.Unlock()
}

func (s *Store) Hits() int {
	s.rw.RLock()
	defer s.rw.RUnlock()
	return s.hits
}

func (s *Store) Bump() {
	s.rw.Lock()
	s.hits++
	s.rw.Unlock()
}

// putLocked inserts; the Locked suffix marks callers as holding mu.
func (s *Store) putLocked(k string, v int) {
	s.jobs[k] = v
}

// flush drains the table. Callers hold mu.
func (s *Store) flush() {
	for k := range s.jobs {
		delete(s.jobs, k)
	}
}

//smtlint:locked mu
func (s *Store) size() int {
	return len(s.jobs)
}

func (s *Store) Reset() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.flush()
	s.putLocked("seed", 1)
	_ = s.size()
}
