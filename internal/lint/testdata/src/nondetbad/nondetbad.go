// Package nondetbad exercises every nondeterminism-rule trigger: an
// entropy import and wall-clock/process-entropy calls.
package nondetbad

import (
	"math/rand"
	"os"
	"time"
)

// Seed leaks process entropy into "simulator" state.
func Seed() int64 {
	return time.Now().UnixNano() + int64(os.Getpid()) + int64(rand.Int())
}

// Elapsed reads the wall clock twice.
func Elapsed(start time.Time) time.Duration {
	return time.Since(start)
}
