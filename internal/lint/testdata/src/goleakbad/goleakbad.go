// Package goleakbad exercises the leak shapes: goroutines whose loops
// have no exit at all.
package goleakbad

// Start spawns two unkillable goroutines.
func Start(tick func()) {
	go func() {
		for {
			tick()
		}
	}()
	go pump(tick)
}

func pump(tick func()) {
	for {
		tick()
	}
}
