// Package lockorderok holds the fixed forms: one global acquisition
// order, sequential (not nested) same-class locking, and goroutines
// that start from an empty lock set.
package lockorderok

import "sync"

// A is acquired before B everywhere.
type A struct {
	mu sync.Mutex
	n  int
}

// B is the inner lock class.
type B struct {
	mu sync.Mutex
	n  int
}

// TakeAB nests in the global order.
func TakeAB(a *A, b *B) {
	a.mu.Lock()
	defer a.mu.Unlock()
	b.mu.Lock()
	b.n++
	b.mu.Unlock()
}

// AlsoAB locks sequentially: release before the next class.
func AlsoAB(a *A, b *B) {
	a.mu.Lock()
	a.n++
	a.mu.Unlock()
	b.mu.Lock()
	b.n++
	b.mu.Unlock()
}

// bump increments; callers hold mu.
func (a *A) bump() {
	a.n++
}

// Spawn acquires A.mu on a fresh goroutine while holding B.mu: the
// spawner's lock imposes no ordering on the goroutine, so no B->A edge.
func Spawn(a *A, b *B) {
	b.mu.Lock()
	defer b.mu.Unlock()
	go func() {
		a.mu.Lock()
		a.n++
		a.mu.Unlock()
	}()
}

// Reenter calls the entry-held helper without re-locking.
func Reenter(a *A) {
	a.mu.Lock()
	a.bump()
	a.mu.Unlock()
}
