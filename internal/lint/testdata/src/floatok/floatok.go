// Package floatok shows the sanctioned comparisons: tolerances, the
// exact-zero sentinel idiom, and integer equality.
package floatok

import "math"

// Close compares under a tolerance.
func Close(a, b float64) bool {
	return math.Abs(a-b) < 1e-9
}

// Unset uses the exact-zero sentinel for a defaulted config field.
func Unset(v float64) bool {
	return v == 0
}

// SameCount compares integers; equality is exact there.
func SameCount(a, b int64) bool {
	return a == b
}
