// Package lockorderbad exercises every lockorder deadlock shape.
package lockorderbad

import "sync"

// A is one lock class.
type A struct {
	mu sync.Mutex
	n  int
}

// B is another lock class.
type B struct {
	mu sync.Mutex
	n  int
}

// TakeAB nests B.mu inside A.mu.
func TakeAB(a *A, b *B) {
	a.mu.Lock()
	defer a.mu.Unlock()
	b.mu.Lock()
	b.n++
	b.mu.Unlock()
}

// TakeBA nests A.mu inside B.mu, through a call: the cycle.
func TakeBA(a *A, b *B) {
	b.mu.Lock()
	defer b.mu.Unlock()
	lockA(a)
}

func lockA(a *A) {
	a.mu.Lock()
	a.n++
	a.mu.Unlock()
}

// R has an upgradeable lock.
type R struct {
	rw sync.RWMutex
	n  int
}

// Upgrade takes Lock while holding RLock.
func Upgrade(r *R) {
	r.rw.RLock()
	r.rw.Lock()
	r.n++
	r.rw.Unlock()
	r.rw.RUnlock()
}

// Twice re-acquires a held mutex.
func Twice(a *A) {
	a.mu.Lock()
	a.mu.Lock()
	a.mu.Unlock()
	a.mu.Unlock()
}

// Pair nests two instances of the same class.
func Pair(x, y *A) {
	x.mu.Lock()
	y.mu.Lock()
	y.n, x.n = x.n, y.n
	y.mu.Unlock()
	x.mu.Unlock()
}
