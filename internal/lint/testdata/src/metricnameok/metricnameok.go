// Package metricnameok registers metrics the way the daemon does:
// valid Prometheus names and labels, each family exactly once.
package metricnameok

// Registry stands in for obs.Registry; the test configures the rule's
// RegistryTypes to point here.
type Registry struct{}

func (r *Registry) Counter(name, help string) *Counter                  { return nil }
func (r *Registry) CounterVec(name, help string, labels ...string) *Vec { return nil }
func (r *Registry) Gauge(name, help string) *Counter                    { return nil }
func (r *Registry) GaugeVec(name, help string, labels ...string) *Vec   { return nil }
func (r *Registry) GaugeFunc(name, help string, fn func() float64)      {}
func (r *Registry) Hist(name, help string) *Counter                     { return nil }
func (r *Registry) HistVec(name, help string, labels ...string) *Vec    { return nil }

// Counter and Vec are opaque stand-ins for the metric handles.
type Counter struct{}
type Vec struct{}

func register(reg *Registry) {
	reg.Counter("jobs_submitted_total", "valid snake_case")
	reg.Gauge("queue_depth", "valid")
	reg.CounterVec("http_requests_total", "valid labels", "route", "status")
	reg.GaugeFunc("uptime_seconds", "valid", func() float64 { return 0 })
	reg.HistVec("request_ms", "valid", "route")
	reg.Counter("fabric:dispatch_total", "colons are legal in metric names")
}
