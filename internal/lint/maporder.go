package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// MapOrderRule flags ranging over a map when the loop body feeds an
// order-sensitive sink: appending to a slice that outlives the loop,
// printing/formatting, writing to a writer or hash, or sending on a
// channel. Go randomises map iteration order per run, so any of these
// lets the randomisation escape into output, cache keys, or simulator
// state.
//
// The sanctioned pattern — collect the keys (or values) into a slice,
// sort it, then iterate the slice — is recognised and exempt: appending
// to an outer slice is allowed when that slice is later passed to a
// sort.* or slices.* call within the same function, since the sort
// erases whatever order the map handed out.
type MapOrderRule struct {
	// Packages selects where the rule applies (empty = everywhere).
	Packages []string
}

// NewMapOrderRule returns the rule applied to every package: experiment
// output, job keys, and simulator state construction all run through
// ordinary package code.
func NewMapOrderRule() *MapOrderRule { return &MapOrderRule{} }

// Name implements Rule.
func (r *MapOrderRule) Name() string { return "map-order" }

// Doc implements Rule.
func (r *MapOrderRule) Doc() string {
	return "flag map iteration feeding an order-sensitive sink without sorting keys first"
}

// Check implements Rule.
func (r *MapOrderRule) Check(p *Package) []Finding {
	if !matchPackage(p.Path, r.Packages) {
		return nil
	}
	var out []Finding
	for _, fd := range funcDecls(p) {
		fd := fd
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			rs, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			tv, ok := p.Info.Types[rs.X]
			if !ok || tv.Type == nil {
				return true
			}
			if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
				return true
			}
			if sink, pos := orderSink(p, fd, rs); sink != "" {
				out = append(out, Finding{
					Pos:  p.Fset.Position(pos),
					Rule: r.Name(),
					Msg: fmt.Sprintf("map iteration %s; iteration order is randomised — collect and sort the keys first",
						sink),
				})
			}
			return true
		})
	}
	return out
}

// orderSink scans a range body for the first order-sensitive sink and
// describes it; "" means the body is order-insensitive (e.g. it only
// aggregates into another map, accumulates commutatively, or collects
// into a slice the function sorts afterwards).
func orderSink(p *Package, fd *ast.FuncDecl, rs *ast.RangeStmt) (string, token.Pos) {
	var sink string
	var at ast.Node
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		if sink != "" {
			return false
		}
		switch n := n.(type) {
		case *ast.SendStmt:
			sink, at = "sends on a channel", n
			return false
		case *ast.AssignStmt:
			if tgt, obj, ok := outerAppendTarget(p, rs, n); ok {
				if obj != nil && sortedAfter(p, fd, rs, obj) {
					return true // sorted-collect pattern: order erased below
				}
				sink, at = fmt.Sprintf("appends to slice %q that outlives the loop", tgt), n
				return false
			}
		case *ast.CallExpr:
			if desc := sinkCall(p, n); desc != "" {
				sink, at = desc, n
				return false
			}
		}
		return true
	})
	if at == nil {
		at = rs
	}
	return sink, at.Pos()
}

// outerAppendTarget reports whether the assignment appends to a slice
// declared outside the range statement (or held in a struct field), and
// names the target. The object is nil for field targets, which cannot be
// tracked to a later sort.
func outerAppendTarget(p *Package, rs *ast.RangeStmt, as *ast.AssignStmt) (string, types.Object, bool) {
	if len(as.Rhs) != 1 || len(as.Lhs) != 1 {
		return "", nil, false
	}
	call, ok := as.Rhs[0].(*ast.CallExpr)
	if !ok || !isBuiltin(p, call.Fun, "append") {
		return "", nil, false
	}
	switch lhs := as.Lhs[0].(type) {
	case *ast.Ident:
		obj := p.Info.Uses[lhs]
		if obj == nil {
			obj = p.Info.Defs[lhs]
		}
		if obj != nil && obj.Pos().IsValid() && obj.Pos() < rs.Pos() {
			return lhs.Name, obj, true
		}
	case *ast.SelectorExpr:
		// A field always outlives the loop.
		return lhs.Sel.Name, nil, true
	}
	return "", nil, false
}

// sinkCall describes a call that is order-sensitive: fmt printing and
// formatting, writer/hash/sink methods, and error construction that
// embeds iteration-ordered text.
func sinkCall(p *Package, call *ast.CallExpr) string {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	if id, ok := sel.X.(*ast.Ident); ok {
		if obj, ok := p.Info.Uses[id].(*types.PkgName); ok {
			switch obj.Imported().Path() {
			case "fmt":
				return "formats output via fmt." + sel.Sel.Name
			}
			return ""
		}
	}
	switch sel.Sel.Name {
	case "Write", "WriteString", "WriteByte", "WriteRune", "Emit", "Encode", "Sum":
		return fmt.Sprintf("feeds a writer/hash via .%s", sel.Sel.Name)
	}
	return ""
}

// isBuiltin reports whether fun resolves to the named builtin.
func isBuiltin(p *Package, fun ast.Expr, name string) bool {
	id, ok := fun.(*ast.Ident)
	if !ok || id.Name != name {
		return false
	}
	_, ok = p.Info.Uses[id].(*types.Builtin)
	return ok
}

// sortedAfter reports whether target is passed to a sort.* / slices.*
// call after the range statement ends, within the same function.
func sortedAfter(p *Package, fd *ast.FuncDecl, rs *ast.RangeStmt, target types.Object) bool {
	sorted := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if sorted || n == nil || n.Pos() <= rs.End() {
			return !sorted
		}
		c, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := c.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		pkg, ok := sel.X.(*ast.Ident)
		if !ok {
			return true
		}
		pn, ok := p.Info.Uses[pkg].(*types.PkgName)
		if !ok {
			return true
		}
		path := pn.Imported().Path()
		if path != "sort" && path != "slices" {
			return true
		}
		for _, a := range c.Args {
			if id, ok := a.(*ast.Ident); ok && p.Info.Uses[id] == target {
				sorted = true
			}
		}
		return true
	})
	return sorted
}
