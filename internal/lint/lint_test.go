package lint

import (
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

// sharedLoader memoises one Loader across all tests: the stdlib source
// importer's type-checking of fmt/time/etc. dominates fixture load time,
// and the results are position-independent.
var (
	loaderOnce sync.Once
	loader     *Loader
	loaderErr  error
)

func fixture(t *testing.T, name string) *Package {
	t.Helper()
	loaderOnce.Do(func() {
		root, err := filepath.Abs(filepath.Join("..", ".."))
		if err != nil {
			loaderErr = err
			return
		}
		loader, loaderErr = NewLoader(root)
	})
	if loaderErr != nil {
		t.Fatalf("loader: %v", loaderErr)
	}
	dir := filepath.Join("testdata", "src", name)
	p, err := loader.LoadDir(dir, "smthill/internal/lint/testdata/src/"+name)
	if err != nil {
		t.Fatalf("load fixture %s: %v", name, err)
	}
	return p
}

// wantFindings checks rule output against expected (line, substring)
// pairs, in order.
func wantFindings(t *testing.T, got []Finding, want []struct {
	line int
	sub  string
}) {
	t.Helper()
	if len(got) != len(want) {
		for _, f := range got {
			t.Logf("finding: %s", f)
		}
		t.Fatalf("got %d findings, want %d", len(got), len(want))
	}
	for i, w := range want {
		if got[i].Pos.Line != w.line {
			t.Errorf("finding %d at line %d, want %d (%s)", i, got[i].Pos.Line, w.line, got[i].Msg)
		}
		if !strings.Contains(got[i].Msg, w.sub) {
			t.Errorf("finding %d msg %q does not mention %q", i, got[i].Msg, w.sub)
		}
	}
}

func TestNondetRuleFires(t *testing.T) {
	p := fixture(t, "nondetbad")
	got := (&NondetRule{}).Check(p)
	wantFindings(t, got, []struct {
		line int
		sub  string
	}{
		{6, "math/rand"},   // flagged at the import; covers every rand.* call
		{13, "time.Now"},   // wall clock
		{13, "os.Getpid"},  // process id
		{18, "time.Since"}, // wall clock
	})
}

func TestNondetRuleSilentOnFixedForm(t *testing.T) {
	p := fixture(t, "nondetok")
	if got := (&NondetRule{}).Check(p); len(got) != 0 {
		t.Fatalf("unexpected findings on fixed form: %v", got)
	}
}

func TestNondetRuleRespectsPackageSelection(t *testing.T) {
	p := fixture(t, "nondetbad")
	r := &NondetRule{SimPackages: []string{"internal/pipeline"}}
	if got := r.Check(p); len(got) != 0 {
		t.Fatalf("rule fired outside its package selection: %v", got)
	}
	r = &NondetRule{Allow: []string{"testdata/src/nondetbad"}}
	if got := r.Check(p); len(got) != 0 {
		t.Fatalf("rule fired inside its allowlist: %v", got)
	}
}

func TestMapOrderRuleFires(t *testing.T) {
	p := fixture(t, "maporderbad")
	got := NewMapOrderRule().Check(p)
	wantFindings(t, got, []struct {
		line int
		sub  string
	}{
		{11, "fmt.Printf"},
		{19, `slice "keys"`},
		{27, "channel"},
	})
}

func TestMapOrderRuleSilentOnFixedForm(t *testing.T) {
	p := fixture(t, "maporderok")
	if got := NewMapOrderRule().Check(p); len(got) != 0 {
		t.Fatalf("unexpected findings on fixed form: %v", got)
	}
}

func recorderRule(path string) *RecorderGuardRule {
	return &RecorderGuardRule{
		Types: []string{"smthill/internal/lint/testdata/src/" + path + ".Recorder"},
	}
}

func TestRecorderGuardRuleFires(t *testing.T) {
	p := fixture(t, "recorderbad")
	got := recorderRule("recorderbad").Check(p)
	wantFindings(t, got, []struct {
		line int
		sub  string
	}{
		{19, "m.rec.Cycles"},
		{25, "rec.Threads"},
		{31, "other.rec.Cycles"},
	})
}

func TestRecorderGuardRuleSilentOnFixedForm(t *testing.T) {
	p := fixture(t, "recorderok")
	if got := recorderRule("recorderok").Check(p); len(got) != 0 {
		t.Fatalf("unexpected findings on fixed form: %v", got)
	}
}

func TestFloatCompareRuleFires(t *testing.T) {
	p := fixture(t, "floatbad")
	got := NewFloatCompareRule().Check(p)
	wantFindings(t, got, []struct {
		line int
		sub  string
	}{
		{6, "=="},
		{11, "!="},
	})
}

func TestFloatCompareRuleSilentOnFixedForm(t *testing.T) {
	p := fixture(t, "floatok")
	if got := NewFloatCompareRule().Check(p); len(got) != 0 {
		t.Fatalf("unexpected findings on fixed form: %v", got)
	}
}

func TestFloatCompareRuleWithoutZeroExemption(t *testing.T) {
	p := fixture(t, "floatok")
	r := &FloatCompareRule{AllowZero: false}
	got := r.Check(p)
	if len(got) != 1 || got[0].Pos.Line != 14 {
		t.Fatalf("want exactly the zero-sentinel finding at line 14, got %v", got)
	}
}

func hotAllocRule(path string) *HotAllocRule {
	return &HotAllocRule{
		Packages: []string{"testdata/src/" + path},
		Roots: []FuncRef{
			{Recv: "Machine", Name: "Cycle"},
			{Recv: "Batch", Name: "CycleAll"},
		},
		Cold: []string{"record"},
	}
}

func TestHotAllocRuleFires(t *testing.T) {
	p := fixture(t, "hotallocbad")
	got := hotAllocRule("hotallocbad").Check(p)
	wantFindings(t, got, []struct {
		line int
		sub  string
	}{
		{18, "append"}, // direct callee of Cycle
		{34, "append"}, // reachable only from the batch root
		{24, "append"}, // two levels deep via helper -> grow
		{24, "make"},   // nested inside the append call
	})
	// The chain rendering names the discovery path from each root.
	if !strings.Contains(got[1].Msg, "Batch.CycleAll -> Batch.gather") {
		t.Errorf("finding msg %q does not show the batch-root chain", got[1].Msg)
	}
	if !strings.Contains(got[2].Msg, "Machine.Cycle -> Machine.helper -> Machine.grow") {
		t.Errorf("finding msg %q does not show the call chain", got[2].Msg)
	}
}

func TestHotAllocRuleSilentOnFixedForm(t *testing.T) {
	p := fixture(t, "hotallocok")
	// Run (not Check) so the ignore directive in the fixture applies; the
	// cold telemetry path and the unreachable reset are exempt by design.
	if got := Run([]Rule{hotAllocRule("hotallocok")}, []*Package{p}); len(got) != 0 {
		t.Fatalf("unexpected findings on fixed form: %v", got)
	}
}

func TestHotAllocRuleRespectsPackageSelection(t *testing.T) {
	p := fixture(t, "hotallocbad")
	r := hotAllocRule("hotallocbad")
	r.Packages = []string{"internal/pipeline"}
	if got := r.Check(p); len(got) != 0 {
		t.Fatalf("rule fired outside its package selection: %v", got)
	}
}

func metricNameRule(path string) *MetricNameRule {
	return &MetricNameRule{
		RegistryTypes: []string{"smthill/internal/lint/testdata/src/" + path + ".Registry"},
	}
}

func TestMetricNameRuleFires(t *testing.T) {
	p := fixture(t, "metricnamebad")
	got := metricNameRule("metricnamebad").Check(p)
	wantFindings(t, got, []struct {
		line int
		sub  string
	}{
		{23, `"jobs-submitted"`},
		{24, `"9queue_depth"`},
		{25, `"status-code"`},
		{27, "collides"},
		{28, `"latency ms"`},
	})
	// The collision finding points back at the first registration.
	if !strings.Contains(got[3].Msg, "metricnamebad.go:26") {
		t.Errorf("collision msg %q does not cite the first registration site", got[3].Msg)
	}
}

func TestMetricNameRuleSilentOnFixedForm(t *testing.T) {
	p := fixture(t, "metricnameok")
	if got := metricNameRule("metricnameok").Check(p); len(got) != 0 {
		t.Fatalf("unexpected findings on fixed form: %v", got)
	}
}

func TestMetricNameRuleRespectsPackageSelection(t *testing.T) {
	p := fixture(t, "metricnamebad")
	r := metricNameRule("metricnamebad")
	r.Packages = []string{"internal/serve"}
	if got := r.Check(p); len(got) != 0 {
		t.Fatalf("rule fired outside its package selection: %v", got)
	}
}

func TestIgnoreDirectives(t *testing.T) {
	p := fixture(t, "ignored")
	got := Run([]Rule{&NondetRule{}}, []*Package{p})
	wantFindings(t, got, []struct {
		line int
		sub  string
	}{
		{21, "time.Now"}, // Stamp3: directive names the wrong rule
	})
}

func TestRunSortsFindings(t *testing.T) {
	pa := fixture(t, "floatbad")
	pb := fixture(t, "nondetbad")
	got := Run([]Rule{&NondetRule{}, NewFloatCompareRule()}, []*Package{pb, pa})
	for i := 1; i < len(got); i++ {
		a, b := got[i-1], got[i]
		if a.Pos.Filename > b.Pos.Filename ||
			(a.Pos.Filename == b.Pos.Filename && a.Pos.Line > b.Pos.Line) {
			t.Fatalf("findings out of order: %s before %s", got[i-1], got[i])
		}
	}
	if len(got) == 0 {
		t.Fatal("expected findings from both packages")
	}
}

func TestMatchPackage(t *testing.T) {
	cases := []struct {
		path string
		pats []string
		want bool
	}{
		{"smthill/internal/pipeline", nil, true},
		{"smthill/internal/pipeline", []string{"internal/pipeline"}, true},
		{"smthill/internal/pipeline", []string{"smthill/internal/pipeline"}, true},
		{"smthill/internal/pipeline/sub", []string{"internal/pipeline"}, true},
		{"smthill/internal/policy", []string{"internal/pipeline"}, false},
		{"smthill/internal/rng", []string{"internal/rng"}, true},
	}
	for _, c := range cases {
		if got := matchPackage(c.path, c.pats); got != c.want {
			t.Errorf("matchPackage(%q, %v) = %v, want %v", c.path, c.pats, got, c.want)
		}
	}
}

// TestRepoIsClean is the in-process form of "make lint": the full module
// must produce zero findings under the default rules, including the
// unusedignore audit (no //smtlint:ignore may suppress nothing).
func TestRepoIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("loads the whole module")
	}
	loaderOnce.Do(func() {}) // reuse if already built, but load fresh root
	root, err := filepath.Abs(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	l, err := NewLoader(root)
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := l.LoadAll()
	if err != nil {
		t.Fatal(err)
	}
	if got := RunAudit(DefaultRules(), pkgs); len(got) != 0 {
		for _, f := range got {
			t.Errorf("%s", f)
		}
	}
}
