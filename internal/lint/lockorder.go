package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// LockOrderRule builds the module-wide lock-acquisition graph and
// reports the shapes that deadlock: cycles between lock classes (thread
// one acquires store.mu then job.mu while thread two does the reverse),
// re-acquisition of a held mutex (sync locks are not reentrant), and
// RLock→Lock upgrades on the same RWMutex (the writer waits for the
// reader that is waiting to become the writer).
//
// A lock class is a mutex's declaration site — "serve.store.mu" for a
// field, "serve.shutdownMu" for a package-level var — so every instance
// of a type shares a class. Nodes are classes; there is an edge A→B when
// some function acquires a B with an A held, either directly or through
// any chain of statically resolvable calls (the transitive closure is a
// fixpoint over the module call graph). Acquisitions inside `go`
// statements start from an empty lock set — the spawner's locks impose
// no ordering on the goroutine — and do not propagate to the spawner's
// transitive set.
//
// Known blind spots, shared with every static lock analysis at this
// scale: dynamic dispatch (interface calls, stored closures such as
// sweep's observer callbacks) and mutexes aliased through pointer fields
// (sweep.batch.mu points at Engine.eventMu) do not contribute edges.
// The rule is a ModuleRule: cross-package chains like
// fabric.Coordinator.mu → obs.metricFamily.mu are exactly the edges a
// per-package analysis would miss.
type LockOrderRule struct {
	// Packages selects where acquisitions are collected (matchPackage
	// semantics; empty selects every package).
	Packages []string
}

// NewLockOrderRule returns the project configuration: the whole module.
func NewLockOrderRule() *LockOrderRule { return &LockOrderRule{} }

// Name implements Rule.
func (r *LockOrderRule) Name() string { return "lockorder" }

// Doc implements Rule.
func (r *LockOrderRule) Doc() string {
	return "the module-wide lock-acquisition graph must be acyclic, with no re-acquisition or RLock->Lock upgrade"
}

// Check implements Rule; lockorder only runs module-wide.
func (r *LockOrderRule) Check(p *Package) []Finding { return nil }

// loAcq is one direct lock acquisition with its lexical context.
type loAcq struct {
	class   string              // acquired lock class ("" for locals)
	expr    string              // acquired mutex expression
	mode    byte                // 'r' or 'w'
	held    map[string]heldLock // expr -> lock held across the acquisition
	pos     token.Pos
	fn      string // enclosing function label, for messages
	pkg     *Package
	spawned bool // inside a `go` statement's body
}

// loCall is one statically resolvable call with the locks held at the
// call site.
type loCall struct {
	callee  *types.Func
	held    map[string]heldLock
	pos     token.Pos
	fn      string
	pkg     *Package
	spawned bool
}

// loFunc collects one function's acquisitions and calls.
type loFunc struct {
	fn    *types.Func
	acqs  []loAcq
	calls []loCall
}

// CheckModule implements ModuleRule.
func (r *LockOrderRule) CheckModule(pkgs []*Package) []Finding {
	// Phase 1: per-function acquisition and call records.
	recs := map[*types.Func]*loFunc{}
	var order []*loFunc
	for _, p := range pkgs {
		if !matchPackage(p.Path, r.Packages) {
			continue
		}
		for _, fd := range funcDecls(p) {
			fn, ok := p.Info.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			rec := &loFunc{fn: fn}
			label := funcLabel(fn)
			p := p
			w := newLockTracker(p)
			w.onAcquire = func(w *lockTracker, expr string, l heldLock, pos token.Pos) {
				rec.acqs = append(rec.acqs, loAcq{
					class: l.class, expr: expr, mode: l.mode,
					held: copyHeld(w.held), pos: pos, fn: label, pkg: p,
					spawned: w.inGo > 0,
				})
			}
			w.onCall = func(w *lockTracker, call *ast.CallExpr) {
				callee := calleeAnyPkg(p, call)
				if callee == nil {
					return
				}
				rec.calls = append(rec.calls, loCall{
					callee: callee, held: copyHeld(w.held), pos: call.Pos(),
					fn: label, pkg: p, spawned: w.inGo > 0,
				})
			}
			w.walkFunc(fd.Body, entryHeldLocks(p, fd))
			recs[fn] = rec
			order = append(order, rec)
		}
	}

	// Phase 2: fixpoint of each function's transitively acquired classes.
	// Spawned acquisitions and calls are excluded: they happen on another
	// goroutine, after the spawner's frame may be gone.
	trans := map[*types.Func]map[string]bool{}
	for _, rec := range order {
		set := map[string]bool{}
		for _, a := range rec.acqs {
			if a.class != "" && !a.spawned {
				set[a.class] = true
			}
		}
		trans[rec.fn] = set
	}
	for changed := true; changed; {
		changed = false
		for _, rec := range order {
			set := trans[rec.fn]
			for _, c := range rec.calls {
				if c.spawned {
					continue
				}
				for cls := range trans[c.callee] {
					if !set[cls] {
						set[cls] = true
						changed = true
					}
				}
			}
		}
	}

	// Phase 3: edges and direct findings.
	type loEdge struct{ from, to string }
	type witness struct {
		pos token.Position
		via string
	}
	edges := map[loEdge]witness{}
	addEdge := func(from, to string, pos token.Position, via string) {
		e := loEdge{from, to}
		wit, ok := edges[e]
		if !ok || posLess(pos, wit.pos) {
			edges[e] = witness{pos, via}
		}
	}
	var out []Finding
	for _, rec := range order {
		for _, a := range rec.acqs {
			heldKeys := make([]string, 0, len(a.held))
			for k := range a.held {
				heldKeys = append(heldKeys, k)
			}
			sort.Strings(heldKeys)
			for _, heldExpr := range heldKeys {
				hl := a.held[heldExpr]
				if hl.class == "" {
					// A local mutex cannot order against anything
					// module-wide, but re-acquiring the same local is
					// still a self-deadlock.
					if heldExpr == a.expr {
						out = append(out, selfDeadlock(a, hl))
					}
					continue
				}
				if hl.class == a.class && heldExpr == a.expr {
					out = append(out, selfDeadlock(a, hl))
					continue
				}
				if a.class == "" {
					continue
				}
				addEdge(hl.class, a.class, a.pkg.Fset.Position(a.pos), a.fn)
			}
		}
		for _, c := range rec.calls {
			acquired := trans[c.callee]
			if len(acquired) == 0 {
				continue
			}
			classes := make([]string, 0, len(acquired))
			for cls := range acquired {
				classes = append(classes, cls)
			}
			sort.Strings(classes)
			for _, hl := range c.held {
				if hl.class == "" {
					continue
				}
				for _, cls := range classes {
					addEdge(hl.class, cls, c.pkg.Fset.Position(c.pos), c.fn+" -> "+funcLabel(c.callee))
				}
			}
		}
	}

	// Phase 4: cycles. Self-loops (same class nested, via a second
	// instance or a call chain) and multi-class strongly connected
	// components are both deadlock shapes.
	nodes := map[string]bool{}
	adj := map[string][]string{}
	sortedEdges := make([]loEdge, 0, len(edges))
	for e := range edges {
		sortedEdges = append(sortedEdges, e)
	}
	sort.Slice(sortedEdges, func(i, j int) bool {
		if sortedEdges[i].from != sortedEdges[j].from {
			return sortedEdges[i].from < sortedEdges[j].from
		}
		return sortedEdges[i].to < sortedEdges[j].to
	})
	for _, e := range sortedEdges {
		if e.from == e.to {
			// Same-class nesting (a second instance, directly or through
			// a call chain) is its own finding, not a graph cycle.
			wit := edges[e]
			out = append(out, Finding{
				Pos:  wit.pos,
				Rule: r.Name(),
				Msg: fmt.Sprintf("lock class %s acquired while another %s is already held (in %s): same-class nesting deadlocks unless instances are globally ordered",
					e.from, e.to, wit.via),
			})
			continue
		}
		nodes[e.from], nodes[e.to] = true, true
		adj[e.from] = append(adj[e.from], e.to)
	}
	for n := range adj {
		sort.Strings(adj[n])
	}
	for _, scc := range tarjanSCC(nodes, adj) {
		if len(scc) == 1 {
			continue
		}
		sort.Strings(scc)
		inSCC := map[string]bool{}
		for _, n := range scc {
			inSCC[n] = true
		}
		var parts []string
		first := token.Position{}
		for _, from := range scc {
			for _, to := range adj[from] {
				if !inSCC[to] {
					continue
				}
				wit := edges[loEdge{from, to}]
				parts = append(parts, fmt.Sprintf("%s -> %s (%s:%d in %s)", from, to, wit.pos.Filename, wit.pos.Line, wit.via))
				if first.Filename == "" || posLess(wit.pos, first) {
					first = wit.pos
				}
			}
		}
		out = append(out, Finding{
			Pos:  first,
			Rule: r.Name(),
			Msg: fmt.Sprintf("lock-order cycle among {%s}: %s; acquire these locks in one global order",
				strings.Join(scc, ", "), strings.Join(parts, "; ")),
		})
	}
	return out
}

// selfDeadlock renders a same-expression re-acquisition finding.
func selfDeadlock(a loAcq, held heldLock) Finding {
	msg := fmt.Sprintf("%s re-acquired while already held in %s: sync mutexes are not reentrant (self-deadlock)", a.expr, a.fn)
	if held.mode == 'r' && a.mode == 'w' {
		msg = fmt.Sprintf("Lock of %s while holding its RLock in %s: RLock->Lock upgrades deadlock sync.RWMutex", a.expr, a.fn)
	}
	return Finding{Pos: a.pkg.Fset.Position(a.pos), Rule: "lockorder", Msg: msg}
}

// copyHeld snapshots a held map (the tracker mutates it in place).
func copyHeld(held map[string]heldLock) map[string]heldLock {
	if len(held) == 0 {
		return nil
	}
	out := make(map[string]heldLock, len(held))
	for k, v := range held {
		out[k] = v
	}
	return out
}

// posLess orders positions by file, line, column.
func posLess(a, b token.Position) bool {
	if a.Filename != b.Filename {
		return a.Filename < b.Filename
	}
	if a.Line != b.Line {
		return a.Line < b.Line
	}
	return a.Column < b.Column
}

// calleeAnyPkg resolves the static callee of a call to a declared
// function in any module package (unlike hotalloc's callee, which stays
// intra-package). Builtins, interface methods, and function values
// resolve to nil.
func calleeAnyPkg(p *Package, call *ast.CallExpr) *types.Func {
	e := call.Fun
	for {
		paren, ok := e.(*ast.ParenExpr)
		if !ok {
			break
		}
		e = paren.X
	}
	var obj types.Object
	switch fun := e.(type) {
	case *ast.Ident:
		obj = p.Info.Uses[fun]
	case *ast.SelectorExpr:
		obj = p.Info.Uses[fun.Sel]
	}
	fn, ok := obj.(*types.Func)
	if !ok {
		return nil
	}
	return fn
}

// tarjanSCC returns the strongly connected components of the class
// graph, in a deterministic order (roots visited in sorted node order).
func tarjanSCC(nodes map[string]bool, adj map[string][]string) [][]string {
	sorted := make([]string, 0, len(nodes))
	for n := range nodes {
		sorted = append(sorted, n)
	}
	sort.Strings(sorted)

	index := map[string]int{}
	low := map[string]int{}
	onStack := map[string]bool{}
	var stack []string
	var sccs [][]string
	next := 0

	var strongconnect func(v string)
	strongconnect = func(v string) {
		index[v] = next
		low[v] = next
		next++
		stack = append(stack, v)
		onStack[v] = true
		for _, w := range adj[v] {
			if _, seen := index[w]; !seen {
				strongconnect(w)
				if low[w] < low[v] {
					low[v] = low[w]
				}
			} else if onStack[w] && index[w] < low[v] {
				low[v] = index[w]
			}
		}
		if low[v] == index[v] {
			var scc []string
			for {
				w := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				onStack[w] = false
				scc = append(scc, w)
				if w == v {
					break
				}
			}
			// Single nodes only matter when they self-loop; keep them
			// all and let the caller filter on edge existence.
			sccs = append(sccs, scc)
		}
	}
	for _, n := range sorted {
		if _, seen := index[n]; !seen {
			strongconnect(n)
		}
	}
	return sccs
}
