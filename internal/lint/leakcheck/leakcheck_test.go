package leakcheck

import (
	"strings"
	"testing"
)

func block(id, fn string) string {
	return "goroutine " + id + " [chan receive]:\n" + fn + "()\n\t/tmp/x.go:1 +0x10"
}

func TestLeaksInFiltersAndDiffs(t *testing.T) {
	before := map[string]bool{"1": true, "7": true}
	gs := []string{
		block("1", "smthill/internal/serve.run"),                    // pre-existing: not a leak
		block("9", "smthill/internal/fabric.heartbeat"),             // new + module frame: leak
		block("10", "net/http.(*persistConn).readLoop"),             // new but not ours
		block("11", selfMarker+".TestLeaksInFiltersAndDiffs.func1"), // leakcheck itself
	}
	got := leaksIn(gs, before)
	if len(got) != 1 || !strings.Contains(got[0], "fabric.heartbeat") {
		t.Fatalf("leaksIn = %v, want exactly the fabric goroutine", got)
	}
}

func TestGoroutineID(t *testing.T) {
	cases := []struct{ in, want string }{
		{"goroutine 42 [running]:\nmain.main()", "42"},
		{"goroutine 7 [chan receive, 3 minutes]:\nx()", "7"},
		{"garbage with no header", "garbage with no header"},
	}
	for _, c := range cases {
		if got := goroutineID(c.in); got != c.want {
			t.Errorf("goroutineID(%q) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestStacksSeesSelf(t *testing.T) {
	gs := stacks()
	if len(gs) == 0 {
		t.Fatal("no goroutines captured")
	}
	var found bool
	for _, g := range gs {
		if strings.Contains(g, "TestStacksSeesSelf") {
			found = true
		}
		if !strings.HasPrefix(g, "goroutine ") {
			t.Errorf("block without header: %q", g)
		}
	}
	if !found {
		t.Error("current test goroutine missing from snapshot")
	}
}
