// Package leakcheck fails test binaries that leave project goroutines
// running after the suite finishes. It is the dynamic complement to the
// static goleak lint rule: the rule catches goroutines with no exit
// path at all, this package catches goroutines whose exit path exists
// but was never taken (a Close that forgot to signal, a ctx that was
// never cancelled).
//
// Wire it into a package's tests with:
//
//	func TestMain(m *testing.M) {
//		os.Exit(leakcheck.Main(m))
//	}
//
// Main snapshots the live goroutines before the suite, runs it, and
// then re-snapshots: any goroutine that is new since the start, has a
// frame in this module, and survives a short settle window is reported
// with its full stack and fails the binary. Goroutine IDs are never
// reused by the runtime, so the before/after diff is exact. Stdlib and
// runtime service goroutines (netpoll, finalizers, timer wheels) have
// no module frames and are ignored; leakcheck's own goroutines are
// excluded explicitly.
package leakcheck

import (
	"fmt"
	"os"
	"runtime"
	"strings"
	"testing"
	"time"
)

// modulePrefix identifies stack frames that belong to this project; a
// goroutine with no such frame is not ours to police.
const modulePrefix = "smthill/"

// selfMarker excludes leakcheck's own frames (and its tests') from the
// report.
const selfMarker = "smthill/internal/lint/leakcheck"

// settle is how long Main waits for shutdown-in-progress goroutines to
// drain before declaring them leaked. Graceful teardown (server Close,
// context cancellation fan-out) is asynchronous; two seconds is far
// beyond any legitimate drain in this repo's suites.
const settle = 2 * time.Second

// Main wraps m.Run with the goroutine-leak gate. Returns the exit code
// for os.Exit: the suite's own code when it fails (a leak report on top
// of a real failure is noise), otherwise 0 iff no goroutines leaked.
func Main(m *testing.M) int {
	before := idSet(stacks())
	code := m.Run()
	if code != 0 {
		return code
	}
	deadline := time.Now().Add(settle)
	for {
		leaked := leaksIn(stacks(), before)
		if len(leaked) == 0 {
			return 0
		}
		if time.Now().After(deadline) {
			fmt.Fprintf(os.Stderr, "leakcheck: %d goroutine(s) still running after the suite:\n\n%s\n",
				len(leaked), strings.Join(leaked, "\n\n"))
			return 1
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// leaksIn returns the goroutine blocks that are new relative to before
// and carry at least one module frame. Pure so tests can feed synthetic
// blocks.
func leaksIn(gs []string, before map[string]bool) []string {
	var out []string
	for _, g := range gs {
		if before[goroutineID(g)] {
			continue
		}
		if !strings.Contains(g, modulePrefix) || strings.Contains(g, selfMarker) {
			continue
		}
		out = append(out, g)
	}
	return out
}

// stacks captures every goroutine's stack as one block per goroutine.
func stacks() []string {
	buf := make([]byte, 1<<20)
	for {
		n := runtime.Stack(buf, true)
		if n < len(buf) {
			buf = buf[:n]
			break
		}
		buf = make([]byte, len(buf)*2)
	}
	var out []string
	for _, g := range strings.Split(string(buf), "\n\n") {
		if strings.TrimSpace(g) != "" {
			out = append(out, g)
		}
	}
	return out
}

func idSet(gs []string) map[string]bool {
	ids := make(map[string]bool, len(gs))
	for _, g := range gs {
		ids[goroutineID(g)] = true
	}
	return ids
}

// goroutineID extracts the numeric id from a block header of the form
// "goroutine 42 [running]:". Unknown shapes return the whole block so
// they compare by content rather than colliding on "".
func goroutineID(g string) string {
	rest, ok := strings.CutPrefix(g, "goroutine ")
	if !ok {
		return g
	}
	if i := strings.IndexByte(rest, ' '); i > 0 {
		return rest[:i]
	}
	return g
}
