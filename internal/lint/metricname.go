package lint

import (
	"fmt"
	"go/ast"
	"go/types"
	"strconv"
)

// MetricNameRule validates metric registrations statically. The
// obs.Registry panics at runtime on an invalid Prometheus name or a
// duplicate registration — but registration happens in constructors, so
// a bad name in a rarely-built component (a worker-only counter, a flag-
// gated gauge) survives until that component first starts. This rule
// moves both failures to lint time: every string-literal name passed to
// a Registry registration method must match the Prometheus metric
// charset [a-zA-Z_:][a-zA-Z0-9_:]*, every literal label must match the
// label charset [a-zA-Z_][a-zA-Z0-9_]*, and no two registrations in the
// same package may claim the same name (Attach composes per-component
// registries into one node-wide exposition, where a duplicate family is
// a runtime panic).
//
// Non-literal names (built with fmt.Sprintf or passed through a helper)
// are outside the rule's reach and stay a runtime concern.
type MetricNameRule struct {
	// Packages selects where the rule applies (matchPackage semantics;
	// empty = everywhere).
	Packages []string
	// RegistryTypes lists the registry types whose registration methods
	// are checked, as "import/path.TypeName".
	RegistryTypes []string
}

// NewMetricNameRule returns the rule configured for this repository:
// registrations on obs.Registry, checked everywhere.
func NewMetricNameRule() *MetricNameRule {
	return &MetricNameRule{
		RegistryTypes: []string{"smthill/internal/obs.Registry"},
	}
}

// Name implements Rule.
func (r *MetricNameRule) Name() string { return "metricname" }

// Doc implements Rule.
func (r *MetricNameRule) Doc() string {
	return "metric registrations must use valid Prometheus names/labels and not collide within a package"
}

// registrationMethods maps each obs.Registry registration method to the
// index where its label-name arguments start (after name and help);
// methods without labels use -1.
var registrationMethods = map[string]int{
	"Counter":    -1,
	"Gauge":      -1,
	"Hist":       -1,
	"GaugeFunc":  -1,
	"CounterVec": 2,
	"GaugeVec":   2,
	"HistVec":    2,
}

// Check implements Rule.
func (r *MetricNameRule) Check(p *Package) []Finding {
	if !matchPackage(p.Path, r.Packages) {
		return nil
	}
	var out []Finding
	// seen maps a registered literal name to where it first appeared, for
	// collision detection across the whole package.
	seen := map[string]string{}
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			labelStart, isReg := registrationMethods[sel.Sel.Name]
			if !isReg || !r.isRegistry(p, sel.X) || len(call.Args) == 0 {
				return true
			}
			if name, lit := stringLit(call.Args[0]); lit {
				pos := p.Fset.Position(call.Args[0].Pos())
				if !validMetricName(name) {
					out = append(out, Finding{
						Pos:  pos,
						Rule: r.Name(),
						Msg: fmt.Sprintf("metric name %q does not match the Prometheus charset [a-zA-Z_:][a-zA-Z0-9_:]* (registration would panic)",
							name),
					})
				} else if first, dup := seen[name]; dup {
					out = append(out, Finding{
						Pos:  pos,
						Rule: r.Name(),
						Msg: fmt.Sprintf("metric name %q collides with the registration at %s (duplicate family panics at Attach/scrape time)",
							name, first),
					})
				} else {
					seen[name] = fmt.Sprintf("%s:%d", pos.Filename, pos.Line)
				}
			}
			if labelStart < 0 {
				return true
			}
			for _, arg := range call.Args[labelStart:] {
				label, lit := stringLit(arg)
				if !lit || validLabelName(label) {
					continue
				}
				out = append(out, Finding{
					Pos:  p.Fset.Position(arg.Pos()),
					Rule: r.Name(),
					Msg: fmt.Sprintf("label name %q does not match the Prometheus charset [a-zA-Z_][a-zA-Z0-9_]* (registration would panic)",
						label),
				})
			}
			return true
		})
	}
	return out
}

// isRegistry reports whether e's type (after stripping one pointer
// level) is one of the rule's registry types.
func (r *MetricNameRule) isRegistry(p *Package, e ast.Expr) bool {
	tv, ok := p.Info.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	t := tv.Type
	if pt, ok := t.(*types.Pointer); ok {
		t = pt.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj == nil || obj.Pkg() == nil {
		return false
	}
	full := obj.Pkg().Path() + "." + obj.Name()
	for _, want := range r.RegistryTypes {
		if full == want {
			return true
		}
	}
	return false
}

// stringLit unquotes a string-literal expression.
func stringLit(e ast.Expr) (string, bool) {
	bl, ok := e.(*ast.BasicLit)
	if !ok || bl.Kind.String() != "STRING" {
		return "", false
	}
	s, err := strconv.Unquote(bl.Value)
	if err != nil {
		return "", false
	}
	return s, true
}

// validMetricName mirrors obs.ValidMetricName: [a-zA-Z_:][a-zA-Z0-9_:]*.
func validMetricName(s string) bool {
	if s == "" {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		ok := c == '_' || c == ':' ||
			(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(i > 0 && c >= '0' && c <= '9')
		if !ok {
			return false
		}
	}
	return true
}

// validLabelName mirrors obs.ValidLabelName: [a-zA-Z_][a-zA-Z0-9_]*.
func validLabelName(s string) bool {
	if s == "" {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		ok := c == '_' ||
			(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(i > 0 && c >= '0' && c <= '9')
		if !ok {
			return false
		}
	}
	return true
}
