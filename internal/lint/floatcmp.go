package lint

import (
	"fmt"
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
)

// FloatCompareRule forbids == and != between floating-point expressions.
// IPC scores, metric evaluations, and gradient deltas are all float64;
// exact equality on them is either a rounding-sensitive bug or a test
// assertion that belongs behind a tolerance helper — and _test.go files
// are outside the linted set for exactly that reason.
//
// Comparisons against the exact constant 0 are allowed by default: zero
// is exactly representable and "field == 0" is the Go idiom for an unset
// configuration value (see trace.Profile.Defaulted).
type FloatCompareRule struct {
	// Packages selects where the rule applies (empty = everywhere).
	Packages []string
	// AllowZero permits comparisons where one side is the exact constant
	// zero (the unset-field sentinel idiom).
	AllowZero bool
}

// NewFloatCompareRule returns the rule applied project-wide with the
// zero-sentinel exemption.
func NewFloatCompareRule() *FloatCompareRule { return &FloatCompareRule{AllowZero: true} }

// Name implements Rule.
func (r *FloatCompareRule) Name() string { return "float-compare" }

// Doc implements Rule.
func (r *FloatCompareRule) Doc() string {
	return "forbid ==/!= on floating-point expressions (compare with a tolerance; exact-zero sentinels allowed)"
}

// Check implements Rule.
func (r *FloatCompareRule) Check(p *Package) []Finding {
	if !matchPackage(p.Path, r.Packages) {
		return nil
	}
	var out []Finding
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			be, ok := n.(*ast.BinaryExpr)
			if !ok || (be.Op != token.EQL && be.Op != token.NEQ) {
				return true
			}
			if !isFloat(p, be.X) && !isFloat(p, be.Y) {
				return true
			}
			if r.AllowZero && (isExactZero(p, be.X) || isExactZero(p, be.Y)) {
				return true
			}
			out = append(out, Finding{
				Pos:  p.Fset.Position(be.OpPos),
				Rule: r.Name(),
				Msg: fmt.Sprintf("floating-point %s comparison; use a tolerance (or an integer representation) instead",
					be.Op),
			})
			return true
		})
	}
	return out
}

// isFloat reports whether e's type is a floating-point (or untyped
// float constant) type.
func isFloat(p *Package, e ast.Expr) bool {
	tv, ok := p.Info.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	b, ok := tv.Type.Underlying().(*types.Basic)
	if !ok {
		return false
	}
	return b.Info()&types.IsFloat != 0
}

// isExactZero reports whether e is a constant equal to exactly zero.
func isExactZero(p *Package, e ast.Expr) bool {
	tv, ok := p.Info.Types[e]
	if !ok || tv.Value == nil {
		return false
	}
	v := constant.ToFloat(tv.Value)
	if v.Kind() != constant.Float && v.Kind() != constant.Int {
		return false
	}
	return constant.Compare(v, token.EQL, constant.MakeInt64(0))
}
