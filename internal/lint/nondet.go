package lint

import (
	"fmt"
	"go/ast"
	"go/types"
)

// NondetRule forbids wall-clock and process-entropy sources inside
// simulation packages. Epoch-level learning compares per-epoch IPC deltas
// of a few percent between otherwise identical runs; any entropy reaching
// simulator state destroys that comparison silently. internal/rng is the
// sanctioned randomness source (seeded, value-copyable, replayable), and
// the orchestration layers may read the wall clock for utilisation
// reporting only.
type NondetRule struct {
	// SimPackages selects the packages the rule applies to (matchPackage
	// semantics; empty = all packages).
	SimPackages []string
	// Allow lists packages exempt from the rule even when matched by
	// SimPackages.
	Allow []string
}

// NewNondetRule returns the rule configured for this repository: the
// cycle-level simulator and everything feeding it are simulation
// packages; internal/rng is the sanctioned entropy source, and
// internal/sweep plus internal/telemetry may time wall-clock work.
func NewNondetRule() *NondetRule {
	return &NondetRule{
		SimPackages: []string{
			"internal/pipeline", "internal/core", "internal/bpred",
			"internal/cache", "internal/workload", "internal/trace",
			"internal/resource", "internal/policy", "internal/phase",
			"internal/metrics", "internal/stats", "internal/isa",
			"internal/experiment", "internal/simjob", "internal/multicore",
		},
		// internal/fabric sits outside the determinism boundary like
		// internal/serve: heartbeat timers, dispatch latency, and liveness
		// clocks never feed simulator state (results cross the wire as
		// key-addressed bytes).
		Allow: []string{"internal/rng", "internal/sweep", "internal/telemetry", "internal/fabric"},
	}
}

// Name implements Rule.
func (r *NondetRule) Name() string { return "nondeterminism" }

// Doc implements Rule.
func (r *NondetRule) Doc() string {
	return "forbid wall-clock and process-entropy sources in simulation packages (use internal/rng)"
}

// entropyImports are packages whose mere import into a simulation package
// is a violation: all their useful API is entropy.
var entropyImports = map[string]string{
	"math/rand":    "global math/rand is process-seeded",
	"math/rand/v2": "math/rand/v2 is process-seeded",
	"crypto/rand":  "crypto/rand is pure entropy",
}

// entropyFuncs are individual functions whose call (or mention) in a
// simulation package is a violation, keyed by package path then name.
var entropyFuncs = map[string]map[string]string{
	"time": {
		"Now":       "wall-clock read",
		"Since":     "wall-clock read",
		"Until":     "wall-clock read",
		"After":     "wall-clock timer",
		"Tick":      "wall-clock timer",
		"NewTicker": "wall-clock timer",
		"NewTimer":  "wall-clock timer",
		"Sleep":     "wall-clock dependence",
	},
	"os": {
		"Getpid":   "process-id entropy",
		"Getppid":  "process-id entropy",
		"Hostname": "host-identity entropy",
		"Environ":  "environment-dependent input",
		"Getenv":   "environment-dependent input",
	},
}

// Check implements Rule.
func (r *NondetRule) Check(p *Package) []Finding {
	if !matchPackage(p.Path, r.SimPackages) {
		return nil
	}
	// An empty Allow list allows nothing (matchPackage treats empty as
	// match-all, which is right for SimPackages but backwards here).
	if len(r.Allow) > 0 && matchPackage(p.Path, r.Allow) {
		return nil
	}
	var out []Finding
	for _, f := range p.Files {
		for _, imp := range f.Imports {
			path := importPath(imp)
			if why, ok := entropyImports[path]; ok {
				out = append(out, Finding{
					Pos:  p.Fset.Position(imp.Pos()),
					Rule: r.Name(),
					Msg: fmt.Sprintf("simulation package imports %s (%s); use internal/rng, seeded from the workload",
						path, why),
				})
			}
		}
		ast.Inspect(f, func(n ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if !ok {
				return true
			}
			obj := p.Info.Uses[id]
			if obj == nil || obj.Pkg() == nil {
				return true
			}
			if names, ok := entropyFuncs[obj.Pkg().Path()]; ok {
				if _, isFunc := obj.(*types.Func); isFunc {
					if why, ok := names[obj.Name()]; ok {
						out = append(out, Finding{
							Pos:  p.Fset.Position(id.Pos()),
							Rule: r.Name(),
							Msg: fmt.Sprintf("simulation package calls %s.%s (%s); simulator state must be a pure function of seeds and config",
								obj.Pkg().Path(), obj.Name(), why),
						})
					}
				}
			}
			return true
		})
	}
	return out
}

// importPath returns the unquoted import path of an import spec.
func importPath(s *ast.ImportSpec) string {
	p := s.Path.Value
	if len(p) >= 2 {
		p = p[1 : len(p)-1]
	}
	return p
}
