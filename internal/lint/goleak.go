package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// GoLeakRule flags goroutines with no termination path: a `go` statement
// whose body (a function literal, or the intra-package function it
// calls) contains an infinite `for` loop with no way out — no return, no
// break, no goto. Such a goroutine outlives every Shutdown, holds its
// captures forever, and turns graceful drain into a hang; the serve
// janitor, fabric heartbeat, and sweep feeder loops all carry a
//
//	select {
//	case <-ctx.Done():
//	    return
//	...
//	}
//
// arm for exactly this reason, and the lint/leakcheck test helper
// enforces the same contract dynamically after each package's test
// suite.
//
// The check is shallow and syntactic by design: loops with a bound
// (`for cond {}`) and range loops (`for v := range ch` ends when the
// channel closes) pass, and any reachable return/break/goto in the loop
// body counts as a termination path, even a conditional one — the rule
// catches the loop that *cannot* exit, not the one that merely might
// not. Bodies of nested function literals are excluded when looking for
// exits (their returns do not break the loop).
type GoLeakRule struct {
	// Packages selects where the rule applies (matchPackage semantics).
	Packages []string
}

// NewGoLeakRule returns the project configuration: the layers that spawn
// long-lived goroutines.
func NewGoLeakRule() *GoLeakRule {
	return &GoLeakRule{Packages: []string{
		"internal/serve", "internal/fabric", "internal/sweep", "internal/obs", "internal/telemetry",
	}}
}

// Name implements Rule.
func (r *GoLeakRule) Name() string { return "goleak" }

// Doc implements Rule.
func (r *GoLeakRule) Doc() string {
	return "a goroutine's infinite for-loop must have an exit (return/break) tied to a ctx or done channel"
}

// Check implements Rule.
func (r *GoLeakRule) Check(p *Package) []Finding {
	if !matchPackage(p.Path, r.Packages) {
		return nil
	}
	decls := map[*types.Func]*ast.FuncDecl{}
	for _, fd := range funcDecls(p) {
		if fn, ok := p.Info.Defs[fd.Name].(*types.Func); ok {
			decls[fn] = fd
		}
	}
	var out []Finding
	for _, fd := range funcDecls(p) {
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			g, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			var body *ast.BlockStmt
			switch fun := g.Call.Fun.(type) {
			case *ast.FuncLit:
				body = fun.Body
			default:
				// go s.worker(...): check the spawned function's own
				// body when it is declared in this package.
				if fn := callee(p, g.Call); fn != nil {
					if d, ok := decls[fn]; ok {
						body = d.Body
					}
				}
			}
			if body == nil {
				return true
			}
			for _, loop := range endlessLoops(body) {
				out = append(out, Finding{
					Pos:  p.Fset.Position(loop.Pos()),
					Rule: r.Name(),
					Msg:  "goroutine loops forever with no return or break; add a select arm on ctx.Done() (or a done channel) that returns, or justify with //smtlint:ignore goleak <reason>",
				})
			}
			return true
		})
	}
	return out
}

// endlessLoops returns the `for {}` loops in body (excluding nested
// function literals) that contain no exit statement.
func endlessLoops(body *ast.BlockStmt) []*ast.ForStmt {
	var out []*ast.ForStmt
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		loop, ok := n.(*ast.ForStmt)
		if !ok || loop.Cond != nil {
			return true
		}
		if !hasExit(loop.Body) {
			out = append(out, loop)
		}
		return true
	})
	return out
}

// hasExit reports whether the loop body contains any return, break, or
// goto outside nested function literals. Unlabeled breaks in nested
// selects or switches technically exit only the inner statement, but
// counting them errs toward silence — the rule hunts loops with no exit
// at all.
func hasExit(body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch s := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.ReturnStmt:
			found = true
			return false
		case *ast.BranchStmt:
			if s.Tok == token.BREAK || s.Tok == token.GOTO {
				found = true
				return false
			}
		case *ast.ExprStmt:
			if call, ok := s.X.(*ast.CallExpr); ok {
				if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "panic" {
					found = true
					return false
				}
			}
		}
		return true
	})
	return found
}
