package lint

import (
	"fmt"
	"go/ast"
	"go/types"
	"strings"
)

// CtxPropRule enforces context propagation on request paths. In the
// service layers a handler's context carries the request deadline, the
// client-gone signal, and (since PR 7) the trace parent; a helper that
// calls context.Background(), sleeps unconditionally, or issues a
// context-free HTTP request detaches all three — shutdown hangs on it,
// cancellation never reaches it, and its spans orphan.
//
// The rule roots the intra-package call graph at every function that
// receives a context.Context or *http.Request parameter (handlers,
// worker entry points, RPC helpers) and flags, in any function reachable
// from such a root, calls to:
//
//   - context.Background / context.TODO — manufacture a detached context
//     on a path that already has one,
//   - time.Sleep — unconditional blocking; a select on time.After and
//     ctx.Done cancels,
//   - http.NewRequest — use http.NewRequestWithContext,
//   - http.Get/Post/Head/PostForm and the equivalent *http.Client
//     methods — they build context-free requests internally.
//
// Functions that legitimately own a fresh context (constructors like
// serve.New, which mints the server's base context before any request
// exists) have no context parameter and are unreachable from rooted
// functions, so they are not flagged. Deliberate detachment on a request
// path carries an //smtlint:ignore ctxprop justification.
type CtxPropRule struct {
	// Packages selects where the rule applies (matchPackage semantics).
	Packages []string
}

// NewCtxPropRule returns the project configuration: the service layers
// whose request paths carry contexts.
func NewCtxPropRule() *CtxPropRule {
	return &CtxPropRule{Packages: []string{"internal/serve", "internal/fabric", "internal/sweep"}}
}

// Name implements Rule.
func (r *CtxPropRule) Name() string { return "ctxprop" }

// Doc implements Rule.
func (r *CtxPropRule) Doc() string {
	return "code reachable from a ctx-carrying entry point must not drop the context (Background/TODO, bare Sleep, context-free HTTP)"
}

// Check implements Rule.
func (r *CtxPropRule) Check(p *Package) []Finding {
	if !matchPackage(p.Path, r.Packages) {
		return nil
	}
	decls := map[*types.Func]*ast.FuncDecl{}
	var roots []*types.Func
	for _, fd := range funcDecls(p) {
		fn, ok := p.Info.Defs[fd.Name].(*types.Func)
		if !ok {
			continue
		}
		decls[fn] = fd
		if hasCtxParam(p, fd) {
			roots = append(roots, fn)
		}
	}
	if len(roots) == 0 {
		return nil
	}

	// Breadth-first reachability from every root, with discovery edges
	// for chain rendering (the hotalloc walk, rooted at many nodes).
	parent := map[*types.Func]*types.Func{}
	var reached []*types.Func
	seen := map[*types.Func]bool{}
	for _, root := range roots {
		if !seen[root] {
			seen[root] = true
			reached = append(reached, root)
		}
	}
	for i := 0; i < len(reached); i++ {
		caller := reached[i]
		ast.Inspect(decls[caller].Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := callee(p, call)
			if fn == nil || seen[fn] {
				return true
			}
			if _, hasBody := decls[fn]; !hasBody {
				return true
			}
			seen[fn] = true
			parent[fn] = caller
			reached = append(reached, fn)
			return true
		})
	}

	chain := func(fn *types.Func) string {
		var parts []string
		for f := fn; f != nil; f = parent[f] {
			parts = append(parts, funcLabel(f))
		}
		for i, j := 0, len(parts)-1; i < j; i, j = i+1, j-1 {
			parts[i], parts[j] = parts[j], parts[i]
		}
		return strings.Join(parts, " -> ")
	}

	var out []Finding
	for _, fn := range reached {
		path := chain(fn)
		ast.Inspect(decls[fn].Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			bad, fix := ctxDropCall(p, call)
			if bad == "" {
				return true
			}
			out = append(out, Finding{
				Pos:  p.Fset.Position(call.Pos()),
				Rule: r.Name(),
				Msg: fmt.Sprintf("%s on a context-carrying path (%s) drops the caller's context; %s or justify with //smtlint:ignore ctxprop <reason>",
					bad, path, fix),
			})
			return true
		})
	}
	return out
}

// hasCtxParam reports whether fd takes a context.Context or
// *net/http.Request parameter.
func hasCtxParam(p *Package, fd *ast.FuncDecl) bool {
	fn, ok := p.Info.Defs[fd.Name].(*types.Func)
	if !ok {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return false
	}
	for i := 0; i < sig.Params().Len(); i++ {
		t := sig.Params().At(i).Type()
		if isNamedType(t, "context", "Context") || isNamedType(derefType(t), "net/http", "Request") {
			return true
		}
	}
	return false
}

// isNamedType reports whether t is the named type pkgPath.name.
func isNamedType(t types.Type, pkgPath, name string) bool {
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	return obj.Name() == name && obj.Pkg() != nil && obj.Pkg().Path() == pkgPath
}

// ctxDropCall classifies a call that drops the context, returning a
// description and the sanctioned fix ("" when the call is fine).
func ctxDropCall(p *Package, call *ast.CallExpr) (string, string) {
	e := call.Fun
	for {
		paren, ok := e.(*ast.ParenExpr)
		if !ok {
			break
		}
		e = paren.X
	}
	var obj types.Object
	switch fun := e.(type) {
	case *ast.Ident:
		obj = p.Info.Uses[fun]
	case *ast.SelectorExpr:
		obj = p.Info.Uses[fun.Sel]
	}
	fn, ok := obj.(*types.Func)
	if !ok || fn.Pkg() == nil {
		return "", ""
	}
	name := fn.Name()
	switch fn.Pkg().Path() {
	case "context":
		if name == "Background" || name == "TODO" {
			return "context." + name + "()", "thread the incoming ctx through"
		}
	case "time":
		if name == "Sleep" {
			return "time.Sleep", "select on time.After and ctx.Done instead"
		}
	case "net/http":
		switch name {
		case "NewRequest":
			return "http.NewRequest", "use http.NewRequestWithContext(ctx, ...)"
		case "Get", "Post", "Head", "PostForm":
			// Only the package-level helpers and (*http.Client) methods
			// build context-free requests; same-named methods on other
			// net/http types (http.Header.Get) are fine.
			sig, _ := fn.Type().(*types.Signature)
			if sig == nil {
				return "", ""
			}
			if recv := sig.Recv(); recv != nil {
				if !isNamedType(derefType(recv.Type()), "net/http", "Client") {
					return "", ""
				}
				return "(*http.Client)." + name, "build the request with http.NewRequestWithContext and Do it"
			}
			return "http." + name, "build the request with http.NewRequestWithContext and Do it"
		}
	}
	return "", ""
}
