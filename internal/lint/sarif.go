package lint

import (
	"encoding/json"
	"io"
)

// Minimal SARIF 2.1.0 output so findings land in code-review UIs
// (GitHub code scanning, VS Code SARIF viewers) without any dependency:
// one run, one tool, one result per finding, physical locations with
// root-relative URIs.

type sarifLog struct {
	Schema  string     `json:"$schema"`
	Version string     `json:"version"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool    sarifTool     `json:"tool"`
	Results []sarifResult `json:"results"`
}

type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

type sarifDriver struct {
	Name           string          `json:"name"`
	InformationURI string          `json:"informationUri,omitempty"`
	Rules          []sarifRuleMeta `json:"rules"`
}

type sarifRuleMeta struct {
	ID               string       `json:"id"`
	ShortDescription sarifMessage `json:"shortDescription"`
}

type sarifMessage struct {
	Text string `json:"text"`
}

type sarifResult struct {
	RuleID    string          `json:"ruleId"`
	Level     string          `json:"level"`
	Message   sarifMessage    `json:"message"`
	Locations []sarifLocation `json:"locations"`
}

type sarifLocation struct {
	PhysicalLocation sarifPhysical `json:"physicalLocation"`
}

type sarifPhysical struct {
	ArtifactLocation sarifArtifact `json:"artifactLocation"`
	Region           sarifRegion   `json:"region"`
}

type sarifArtifact struct {
	URI string `json:"uri"`
}

type sarifRegion struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn,omitempty"`
}

// WriteSARIF renders findings as a SARIF 2.1.0 log. Rule metadata comes
// from rules; findings for rules outside the set (unusedignore) get a
// synthesized entry.
func WriteSARIF(w io.Writer, rules []Rule, findings []Finding) error {
	metaByID := map[string]string{}
	var ids []string
	for _, r := range rules {
		if _, ok := metaByID[r.Name()]; !ok {
			ids = append(ids, r.Name())
		}
		metaByID[r.Name()] = r.Doc()
	}
	for _, f := range findings {
		if _, ok := metaByID[f.Rule]; !ok {
			ids = append(ids, f.Rule)
			metaByID[f.Rule] = "synthesized rule (no registered metadata)"
		}
	}
	var metas []sarifRuleMeta
	for _, id := range ids {
		metas = append(metas, sarifRuleMeta{ID: id, ShortDescription: sarifMessage{Text: metaByID[id]}})
	}
	results := make([]sarifResult, 0, len(findings))
	for _, f := range findings {
		results = append(results, sarifResult{
			RuleID:  f.Rule,
			Level:   "error",
			Message: sarifMessage{Text: f.Msg},
			Locations: []sarifLocation{{
				PhysicalLocation: sarifPhysical{
					ArtifactLocation: sarifArtifact{URI: f.Pos.Filename},
					Region:           sarifRegion{StartLine: f.Pos.Line, StartColumn: f.Pos.Column},
				},
			}},
		})
	}
	log := sarifLog{
		Schema:  "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/Schemata/sarif-schema-2.1.0.json",
		Version: "2.1.0",
		Runs: []sarifRun{{
			Tool:    sarifTool{Driver: sarifDriver{Name: "smtlint", Rules: metas}},
			Results: results,
		}},
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(log)
}
