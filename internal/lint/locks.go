package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"strings"
)

// This file is the shared substrate of the lock rules: a lexical tracker
// that walks a function body statement by statement maintaining the set
// of mutexes held at each point, in the style of recorder.go's
// nil-guard dominance walker. Both lockguard (field accesses must be
// dominated by the right Lock) and lockorder (the cross-function
// acquisition graph must be acyclic) drive it through callbacks.
//
// The tracker is lexical, not path-sensitive: a lock acquired inside a
// conditional branch is forgotten when the branch ends, and a deferred
// Unlock keeps the mutex held to the end of the function. Goroutine
// bodies start with an empty lock set (the spawner's locks are not
// ordered with respect to the goroutine), while function literals passed
// as call arguments inherit the current set (the synchronous-callback
// assumption: sort.Slice and friends run the closure before returning).

// heldLock describes one held mutex.
type heldLock struct {
	// mode is 'w' for Lock, 'r' for RLock.
	mode byte
	// class is the module-wide lock-class identity ("pkg.Type.field" or
	// "pkg.var"), or "" for locals and parameters.
	class string
}

// lockTracker walks one function body tracking the held-lock set.
type lockTracker struct {
	p     *Package
	held  map[string]heldLock // mutex exprString -> held state
	fresh map[string]bool     // locals created from composite literals, not yet escaped
	inGo  int                 // >0 while scanning a `go` statement's call (and body)

	// onAccess fires for every selector expression (field reads and
	// writes, including selector bases of deeper chains).
	onAccess func(w *lockTracker, sel *ast.SelectorExpr, write bool)
	// onAcquire fires on Lock/RLock, before held is updated, so the
	// callback sees the locks held across the acquisition.
	onAcquire func(w *lockTracker, expr string, l heldLock, pos token.Pos)
	// onCall fires for every non-lock call expression with the current
	// held set live in w.held.
	onCall func(w *lockTracker, call *ast.CallExpr)
}

func newLockTracker(p *Package) *lockTracker {
	return &lockTracker{p: p, held: map[string]heldLock{}, fresh: map[string]bool{}}
}

// walkFunc analyzes body with the given entry-held set (nil for none).
func (w *lockTracker) walkFunc(body *ast.BlockStmt, entry map[string]heldLock) {
	w.held = map[string]heldLock{}
	for k, v := range entry {
		w.held[k] = v
	}
	w.fresh = map[string]bool{}
	w.stmts(body.List)
}

func (w *lockTracker) snapshot() (map[string]heldLock, map[string]bool) {
	h := make(map[string]heldLock, len(w.held))
	for k, v := range w.held {
		h[k] = v
	}
	f := make(map[string]bool, len(w.fresh))
	for k, v := range w.fresh {
		f[k] = v
	}
	return h, f
}

func (w *lockTracker) restore(h map[string]heldLock, f map[string]bool) {
	w.held, w.fresh = h, f
}

func (w *lockTracker) stmts(list []ast.Stmt) {
	for _, s := range list {
		w.stmt(s)
	}
}

func (w *lockTracker) stmt(s ast.Stmt) {
	switch s := s.(type) {
	case nil:
	case *ast.ExprStmt:
		w.scanExpr(s.X, false)
	case *ast.AssignStmt:
		w.assign(s)
	case *ast.IncDecStmt:
		w.scanExpr(s.X, true)
	case *ast.DeferStmt:
		if mu, method, ok := asLockOp(w.p, s.Call); ok {
			// defer mu.Unlock() keeps the lock held to function end;
			// defer mu.Lock() is nonsense and ignored.
			if method == "Lock" || method == "RLock" {
				return
			}
			w.scanExpr(mu, false)
			return
		}
		// A deferred closure runs at return, usually with whatever the
		// function still holds; approximate with the current set.
		w.scanExpr(s.Call, false)
	case *ast.GoStmt:
		// The goroutine runs concurrently: it starts with no locks of
		// its own, and the spawner's locks impose no ordering on it.
		h, f := w.snapshot()
		w.held = map[string]heldLock{}
		w.fresh = map[string]bool{}
		w.inGo++
		w.scanExpr(s.Call, false)
		w.inGo--
		w.restore(h, f)
	case *ast.SendStmt:
		w.scanExpr(s.Chan, false)
		w.scanExpr(s.Value, false)
		w.killFresh(s.Value)
	case *ast.ReturnStmt:
		for _, r := range s.Results {
			w.scanExpr(r, false)
			w.killFresh(r)
		}
	case *ast.IfStmt:
		w.stmt(s.Init)
		w.scanExpr(s.Cond, false)
		h, f := w.snapshot()
		w.stmts(s.Body.List)
		w.restore(h, f)
		if s.Else != nil {
			h, f = w.snapshot()
			w.stmt(s.Else)
			w.restore(h, f)
		}
	case *ast.ForStmt:
		w.stmt(s.Init)
		w.scanExpr(s.Cond, false)
		h, f := w.snapshot()
		w.stmts(s.Body.List)
		w.stmt(s.Post)
		w.restore(h, f)
	case *ast.RangeStmt:
		w.scanExpr(s.X, false)
		h, f := w.snapshot()
		for _, e := range []ast.Expr{s.Key, s.Value} {
			if id, ok := e.(*ast.Ident); ok {
				delete(w.fresh, id.Name)
			}
		}
		w.stmts(s.Body.List)
		w.restore(h, f)
	case *ast.SwitchStmt:
		w.stmt(s.Init)
		w.scanExpr(s.Tag, false)
		for _, c := range s.Body.List {
			cc := c.(*ast.CaseClause)
			h, f := w.snapshot()
			for _, e := range cc.List {
				w.scanExpr(e, false)
			}
			w.stmts(cc.Body)
			w.restore(h, f)
		}
	case *ast.TypeSwitchStmt:
		w.stmt(s.Init)
		w.stmt(s.Assign)
		for _, c := range s.Body.List {
			cc := c.(*ast.CaseClause)
			h, f := w.snapshot()
			w.stmts(cc.Body)
			w.restore(h, f)
		}
	case *ast.SelectStmt:
		for _, c := range s.Body.List {
			cc := c.(*ast.CommClause)
			h, f := w.snapshot()
			w.stmt(cc.Comm)
			w.stmts(cc.Body)
			w.restore(h, f)
		}
	case *ast.BlockStmt:
		// Plain blocks do not scope locks: an acquisition inside persists.
		w.stmts(s.List)
	case *ast.LabeledStmt:
		w.stmt(s.Stmt)
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, v := range vs.Values {
						w.scanExpr(v, false)
					}
					for i, name := range vs.Names {
						if i < len(vs.Values) && isCompositeCreation(vs.Values[i]) {
							w.fresh[name.Name] = true
						}
					}
				}
			}
		}
	}
}

// assign scans an assignment: RHS reads, LHS writes, freshness updates.
func (w *lockTracker) assign(s *ast.AssignStmt) {
	for _, rhs := range s.Rhs {
		w.scanExpr(rhs, false)
	}
	oneToOne := len(s.Lhs) == len(s.Rhs)
	for i, lhs := range s.Lhs {
		switch l := lhs.(type) {
		case *ast.Ident:
			if l.Name == "_" {
				continue
			}
			if oneToOne && isCompositeCreation(s.Rhs[i]) {
				w.fresh[l.Name] = true
			} else {
				delete(w.fresh, l.Name)
			}
		default:
			w.scanExpr(lhs, true)
		}
	}
	// A fresh local copied wholesale to another variable has aliased:
	// stop exempting it.
	for _, rhs := range s.Rhs {
		w.killFresh(rhs)
	}
}

// killFresh drops the freshness of e when it is a bare local (or its
// address): passing it to a call, returning it, sending it, or aliasing
// it publishes the value to code that may run under different locks.
func (w *lockTracker) killFresh(e ast.Expr) {
	switch e := e.(type) {
	case *ast.Ident:
		delete(w.fresh, e.Name)
	case *ast.UnaryExpr:
		if e.Op == token.AND {
			w.killFresh(e.X)
		}
	case *ast.ParenExpr:
		w.killFresh(e.X)
	}
}

// isCompositeCreation reports whether e constructs a value in place:
// T{...} or &T{...}.
func isCompositeCreation(e ast.Expr) bool {
	if u, ok := e.(*ast.UnaryExpr); ok && u.Op == token.AND {
		e = u.X
	}
	_, ok := e.(*ast.CompositeLit)
	return ok
}

// scanExpr walks an expression, firing access/call hooks and applying
// lock operations encountered along the way. write marks e itself as a
// store target (assignment LHS, IncDec operand, address-taken selector).
func (w *lockTracker) scanExpr(e ast.Expr, write bool) {
	switch e := e.(type) {
	case nil:
	case *ast.Ident, *ast.BasicLit:
	case *ast.SelectorExpr:
		w.scanExpr(e.X, false)
		if w.onAccess != nil {
			w.onAccess(w, e, write)
		}
	case *ast.CallExpr:
		if mu, method, ok := asLockOp(w.p, e); ok {
			w.lockOp(mu, method)
			return
		}
		w.scanExpr(e.Fun, false)
		for _, a := range e.Args {
			if fl, ok := a.(*ast.FuncLit); ok {
				// Synchronous-callback assumption: the callee runs the
				// closure before returning, under the current locks.
				h, f := w.snapshot()
				w.stmts(fl.Body.List)
				w.restore(h, f)
				continue
			}
			w.scanExpr(a, false)
			w.killFresh(a)
		}
		if w.onCall != nil {
			w.onCall(w, e)
		}
	case *ast.FuncLit:
		// A closure not in call position runs later, with no claim on
		// the current lock set.
		h, f := w.snapshot()
		w.held = map[string]heldLock{}
		w.fresh = map[string]bool{}
		w.stmts(e.Body.List)
		w.restore(h, f)
	case *ast.UnaryExpr:
		if e.Op == token.AND {
			switch e.X.(type) {
			case *ast.SelectorExpr, *ast.IndexExpr:
				// Handing out the address lets the recipient mutate.
				w.scanExpr(e.X, true)
				return
			}
		}
		w.scanExpr(e.X, false)
	case *ast.StarExpr:
		w.scanExpr(e.X, false)
	case *ast.ParenExpr:
		w.scanExpr(e.X, write)
	case *ast.IndexExpr:
		w.scanExpr(e.X, write)
		w.scanExpr(e.Index, false)
	case *ast.SliceExpr:
		w.scanExpr(e.X, false)
		w.scanExpr(e.Low, false)
		w.scanExpr(e.High, false)
		w.scanExpr(e.Max, false)
	case *ast.BinaryExpr:
		w.scanExpr(e.X, false)
		w.scanExpr(e.Y, false)
	case *ast.TypeAssertExpr:
		w.scanExpr(e.X, false)
	case *ast.KeyValueExpr:
		w.scanExpr(e.Value, false)
		w.killFresh(e.Value)
	case *ast.CompositeLit:
		structLit := false
		if tv, ok := w.p.Info.Types[e]; ok && tv.Type != nil {
			_, structLit = derefType(tv.Type).Underlying().(*types.Struct)
		}
		for _, el := range e.Elts {
			if kv, ok := el.(*ast.KeyValueExpr); ok {
				if !structLit {
					w.scanExpr(kv.Key, false)
				}
				w.scanExpr(kv.Value, false)
				w.killFresh(kv.Value)
				continue
			}
			w.scanExpr(el, false)
			w.killFresh(el)
		}
	}
}

// lockOp applies a Lock/RLock/Unlock/RUnlock on the mutex expression.
func (w *lockTracker) lockOp(mu ast.Expr, method string) {
	w.scanExpr(mu, false)
	key := exprString(mu)
	switch method {
	case "Lock", "RLock", "TryLock", "TryRLock":
		mode := byte('w')
		if method == "RLock" || method == "TryRLock" {
			mode = 'r'
		}
		l := heldLock{mode: mode, class: lockClass(w.p, mu)}
		if w.onAcquire != nil {
			w.onAcquire(w, key, l, mu.Pos())
		}
		w.held[key] = l
	case "Unlock", "RUnlock":
		delete(w.held, key)
	}
}

// asLockOp recognizes a call as a sync.Mutex/RWMutex lock-family method
// on an explicit receiver expression, returning the mutex expression and
// method name. Embedded (promoted) mutex methods are not recognized —
// the project convention is a named mu field.
func asLockOp(p *Package, call *ast.CallExpr) (ast.Expr, string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return nil, "", false
	}
	switch sel.Sel.Name {
	case "Lock", "RLock", "Unlock", "RUnlock", "TryLock", "TryRLock":
	default:
		return nil, "", false
	}
	tv, ok := p.Info.Types[sel.X]
	if !ok || !isMutexType(tv.Type) {
		return nil, "", false
	}
	return sel.X, sel.Sel.Name, true
}

// isMutexType reports whether t is sync.Mutex or sync.RWMutex (possibly
// behind a pointer).
func isMutexType(t types.Type) bool {
	n, ok := derefType(t).(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "sync" &&
		(obj.Name() == "Mutex" || obj.Name() == "RWMutex")
}

// isRWMutexType reports whether t is sync.RWMutex (possibly behind a
// pointer).
func isRWMutexType(t types.Type) bool {
	n, ok := derefType(t).(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "sync" && obj.Name() == "RWMutex"
}

// derefType strips one level of pointer.
func derefType(t types.Type) types.Type {
	if p, ok := t.(*types.Pointer); ok {
		return p.Elem()
	}
	return t
}

// lockClass computes the module-wide identity of a mutex expression:
// "pkg.Type.field" for a struct field, "pkg.var" for a package-level
// variable, "" for locals and parameters (which cannot participate in a
// cross-function ordering).
func lockClass(p *Package, e ast.Expr) string {
	switch e := e.(type) {
	case *ast.ParenExpr:
		return lockClass(p, e.X)
	case *ast.Ident:
		v, ok := p.Info.Uses[e].(*types.Var)
		if ok && !v.IsField() && v.Pkg() != nil && v.Parent() == v.Pkg().Scope() {
			return v.Pkg().Name() + "." + v.Name()
		}
		return ""
	case *ast.SelectorExpr:
		selInfo, ok := p.Info.Selections[e]
		if !ok || selInfo.Kind() != types.FieldVal {
			// Could be a qualified package-level var: pkg.someMu.
			if obj, ok := p.Info.Uses[e.Sel].(*types.Var); ok && !obj.IsField() &&
				obj.Pkg() != nil && obj.Parent() == obj.Pkg().Scope() {
				return obj.Pkg().Name() + "." + obj.Name()
			}
			return ""
		}
		f, ok := selInfo.Obj().(*types.Var)
		if !ok {
			return ""
		}
		if named, ok := derefType(selInfo.Recv()).(*types.Named); ok && named.Obj().Pkg() != nil {
			return named.Obj().Pkg().Name() + "." + named.Obj().Name() + "." + f.Name()
		}
		return ""
	}
	return ""
}

// callersHoldRe matches the doc convention "Callers hold mu." (and the
// singular/must variants) that fabric and sweep already use.
var callersHoldRe = regexp.MustCompile(`(?i)\bcallers?\s+(?:must\s+)?holds?\s+([A-Za-z_][A-Za-z0-9_]*)`)

// lockedDirectiveRe matches the explicit //smtlint:locked <mu> directive.
var lockedDirectiveRe = regexp.MustCompile(`^smtlint:locked\s+([A-Za-z_][A-Za-z0-9_]*)`)

// entryHeldLocks returns the lock set a function's callers are
// documented to hold on entry, keyed by "<recv>.<mu>" (or "<mu>" for a
// package-level mutex). Three conventions grant entry-held state:
//
//   - a doc sentence matching "Callers hold <mu>",
//   - a "//smtlint:locked <mu>" doc line,
//   - a method name ending in "Locked", which grants every mutex field
//     of the receiver type.
func entryHeldLocks(p *Package, fd *ast.FuncDecl) map[string]heldLock {
	recv := ""
	if fd.Recv != nil && len(fd.Recv.List) > 0 && len(fd.Recv.List[0].Names) > 0 {
		recv = fd.Recv.List[0].Names[0].Name
	}
	var names []string
	if fd.Doc != nil {
		for _, m := range callersHoldRe.FindAllStringSubmatch(fd.Doc.Text(), -1) {
			names = append(names, m[1])
		}
		for _, c := range fd.Doc.List {
			text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
			if m := lockedDirectiveRe.FindStringSubmatch(text); m != nil {
				names = append(names, m[1])
			}
		}
	}
	if recv != "" && strings.HasSuffix(fd.Name.Name, "Locked") {
		names = append(names, mutexFieldNames(p, fd)...)
	}
	if len(names) == 0 {
		return nil
	}
	out := map[string]heldLock{}
	for _, n := range names {
		key := n
		class := ""
		if recv != "" {
			if cls, ok := recvMutexClass(p, fd, n); ok {
				key, class = recv+"."+n, cls
			}
		}
		if key == n {
			// Fall back to a package-level mutex of that name.
			if v, ok := p.Types.Scope().Lookup(n).(*types.Var); ok && isMutexType(v.Type()) {
				class = p.Types.Name() + "." + n
			}
		}
		out[key] = heldLock{mode: 'w', class: class}
	}
	return out
}

// recvMutexClass resolves mutex field name on fd's receiver type to its
// lock class.
func recvMutexClass(p *Package, fd *ast.FuncDecl, name string) (string, bool) {
	fn, ok := p.Info.Defs[fd.Name].(*types.Func)
	if !ok {
		return "", false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return "", false
	}
	named, ok := derefType(sig.Recv().Type()).(*types.Named)
	if !ok {
		return "", false
	}
	st, ok := named.Underlying().(*types.Struct)
	if !ok {
		return "", false
	}
	for i := 0; i < st.NumFields(); i++ {
		f := st.Field(i)
		if f.Name() == name && isMutexType(f.Type()) {
			return named.Obj().Pkg().Name() + "." + named.Obj().Name() + "." + name, true
		}
	}
	return "", false
}

// mutexFieldNames lists the mutex-typed field names of fd's receiver
// struct type.
func mutexFieldNames(p *Package, fd *ast.FuncDecl) []string {
	fn, ok := p.Info.Defs[fd.Name].(*types.Func)
	if !ok {
		return nil
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return nil
	}
	named, ok := derefType(sig.Recv().Type()).(*types.Named)
	if !ok {
		return nil
	}
	st, ok := named.Underlying().(*types.Struct)
	if !ok {
		return nil
	}
	var out []string
	for i := 0; i < st.NumFields(); i++ {
		if isMutexType(st.Field(i).Type()) {
			out = append(out, st.Field(i).Name())
		}
	}
	return out
}
